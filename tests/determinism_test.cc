// Determinism golden tests (docs/SIMULATOR.md).
//
// Runs whole testbeds — a Fig-4-style interference scenario and a faulted
// scenario exercising stalls, media errors, link flaps, a device failure
// and a tenant crash — with the event tracer on, and hashes the full event
// trace (timestamp, event name, tenant, ssd, args) into one digest. For
// each seed the digest must be
//
//   * identical run-to-run (the simulation is deterministic), and
//   * identical between the timing-wheel event queue and the reference
//     binary heap (the hot-path overhaul changed no simulated result).
//
// Any ordering bug in the timing wheel, any stray RNG draw, or any event
// scheduled differently between the engines changes the digest.
#include <gtest/gtest.h>

#include <cstdint>

#include "obs/obs.h"
#include "sim/event_queue.h"
#include "workload/runner.h"

namespace gimbal {
namespace {

using workload::FioSpec;
using workload::Scheme;
using workload::SsdCondition;
using workload::Testbed;
using workload::TestbedConfig;

// Large enough that neither scenario ever drops events; a drop would only
// weaken the digest, but dropped() is hashed too, so check it anyway.
constexpr size_t kTraceLimit = 4u << 20;

uint64_t InterferenceDigest(sim::EventQueue::Impl impl, uint64_t seed) {
  obs::Observability obs;
  obs.tracer.Enable(kTraceLimit);
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.condition = SsdCondition::kClean;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.queue_impl = impl;
  cfg.obs = &obs;
  cfg.run_label = "determinism";
  Testbed bed(cfg);
  // Fig 4's shape, shrunk: a 4KB random-read victim sharing the SSD with a
  // 128KB write neighbour — exercises the DRR, pacing pokes, write staging
  // and the credit feedback loop.
  FioSpec victim;
  victim.io_bytes = 4096;
  victim.queue_depth = 32;
  victim.seed = seed;
  bed.AddWorker(victim);
  FioSpec neighbor;
  neighbor.io_bytes = 131072;
  neighbor.queue_depth = 8;
  neighbor.read_ratio = 0.0;
  neighbor.seed = seed + 1000;
  bed.AddWorker(neighbor);
  bed.Run(Milliseconds(10), Milliseconds(30));
  EXPECT_EQ(obs.tracer.dropped(), 0u);
  return obs.tracer.Digest();
}

uint64_t FaultedDigest(sim::EventQueue::Impl impl, uint64_t seed) {
  obs::Observability obs;
  obs.tracer.Enable(kTraceLimit);
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.condition = SsdCondition::kClean;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.queue_impl = impl;
  cfg.obs = &obs;
  cfg.run_label = "determinism_faults";
  cfg.fault_seed = seed;
  cfg.retry.io_timeout = Milliseconds(2);
  cfg.retry.keepalive_interval = Milliseconds(1);
  cfg.target.session_timeout = Milliseconds(5);
  cfg.faults.stalls.push_back(
      {0, Milliseconds(10), Milliseconds(18), Microseconds(500)});
  cfg.faults.media_errors.push_back(
      {0, Milliseconds(20), Milliseconds(28), 0.1, Microseconds(200)});
  cfg.faults.link_flaps.push_back(
      {Milliseconds(24), Milliseconds(27), 0.05, Microseconds(10)});
  cfg.faults.failures.push_back({0, Milliseconds(30), Milliseconds(34)});
  Testbed bed(cfg);
  for (int i = 0; i < 2; ++i) {
    FioSpec spec;
    spec.io_bytes = 4096;
    spec.queue_depth = 8;
    spec.seed = seed + 100 * static_cast<uint64_t>(i + 1);
    bed.AddWorker(spec, 0);
  }
  // One tenant crashes mid-run: exercises timeout timers, the keepalive
  // and the target's session reaper on top of the fault windows.
  fabric::Initiator& crasher = bed.workers()[0]->initiator();
  bed.faults().ScheduleTenantCrash(Milliseconds(22), crasher.tenant(),
                                   [&crasher]() { crasher.Crash(); });
  for (auto& w : bed.workers()) w->Start();
  bed.sim().RunUntil(Milliseconds(45));
  for (auto& w : bed.workers()) w->Stop();
  for (auto& ini : bed.initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  bed.sim().Run();
  EXPECT_EQ(obs.tracer.dropped(), 0u);
  return obs.tracer.Digest();
}

// Multi-SSD testbed → the sharded engine (docs/SIMULATOR.md): shard 0 is
// the client domain, each used target core a shard of its own. The digest
// must not depend on how many worker threads execute the shards.
uint64_t ShardedDigest(sim::EventQueue::Impl impl, int threads,
                       uint64_t seed) {
  obs::Observability obs;
  obs.tracer.Enable(kTraceLimit);
  TestbedConfig cfg;
  cfg.num_ssds = 3;  // < target cores (4): one pipeline per core shard
  cfg.scheme = Scheme::kGimbal;
  cfg.condition = SsdCondition::kClean;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.queue_impl = impl;
  cfg.threads = threads;
  cfg.obs = &obs;
  cfg.run_label = "determinism_sharded";
  Testbed bed(cfg);
  for (int s = 0; s < cfg.num_ssds; ++s) {
    FioSpec victim;
    victim.io_bytes = 4096;
    victim.queue_depth = 16;
    victim.seed = seed + static_cast<uint64_t>(s);
    bed.AddWorker(victim, s);
    FioSpec neighbor;
    neighbor.io_bytes = 131072;
    neighbor.queue_depth = 4;
    neighbor.read_ratio = 0.0;
    neighbor.seed = seed + 1000 + static_cast<uint64_t>(s);
    bed.AddWorker(neighbor, s);
  }
  bed.Run(Milliseconds(5), Milliseconds(15));
  EXPECT_EQ(obs.tracer.dropped(), 0u);
  return obs.tracer.Digest();
}

// The faulted variant stresses the riskiest cross-shard machinery: per-SSD
// fault RNG streams, link-flap draws at barrier replay, a device failure
// on one shard and a tenant crash timer on the client shard.
uint64_t ShardedFaultedDigest(int threads, uint64_t seed) {
  obs::Observability obs;
  obs.tracer.Enable(kTraceLimit);
  TestbedConfig cfg;
  cfg.num_ssds = 2;
  cfg.scheme = Scheme::kGimbal;
  cfg.condition = SsdCondition::kClean;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.threads = threads;
  cfg.obs = &obs;
  cfg.run_label = "determinism_sharded_faults";
  cfg.fault_seed = seed;
  cfg.retry.io_timeout = Milliseconds(2);
  cfg.retry.keepalive_interval = Milliseconds(1);
  cfg.target.session_timeout = Milliseconds(5);
  cfg.faults.stalls.push_back(
      {0, Milliseconds(8), Milliseconds(14), Microseconds(500)});
  cfg.faults.media_errors.push_back(
      {1, Milliseconds(12), Milliseconds(20), 0.1, Microseconds(200)});
  cfg.faults.link_flaps.push_back(
      {Milliseconds(16), Milliseconds(19), 0.05, Microseconds(10)});
  cfg.faults.failures.push_back({0, Milliseconds(22), Milliseconds(26)});
  Testbed bed(cfg);
  for (int s = 0; s < cfg.num_ssds; ++s) {
    FioSpec spec;
    spec.io_bytes = 4096;
    spec.queue_depth = 8;
    spec.seed = seed + 100 * static_cast<uint64_t>(s + 1);
    bed.AddWorker(spec, s);
  }
  fabric::Initiator& crasher = bed.workers()[0]->initiator();
  bed.faults().ScheduleTenantCrash(Milliseconds(18), crasher.tenant(),
                                   [&crasher]() { crasher.Crash(); });
  for (auto& w : bed.workers()) w->Start();
  bed.sim().RunUntil(Milliseconds(32));
  for (auto& w : bed.workers()) w->Stop();
  for (auto& ini : bed.initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  bed.sim().Run();
  EXPECT_EQ(obs.tracer.dropped(), 0u);
  return obs.tracer.Digest();
}

class DeterminismGolden : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismGolden, InterferenceTraceDigestIsStable) {
  const uint64_t seed = GetParam();
  const uint64_t wheel1 =
      InterferenceDigest(sim::EventQueue::Impl::kTimingWheel, seed);
  const uint64_t wheel2 =
      InterferenceDigest(sim::EventQueue::Impl::kTimingWheel, seed);
  EXPECT_EQ(wheel1, wheel2) << "timing wheel not deterministic, seed "
                            << seed;
  const uint64_t heap =
      InterferenceDigest(sim::EventQueue::Impl::kReferenceHeap, seed);
  EXPECT_EQ(wheel1, heap)
      << "timing wheel and reference heap diverged, seed " << seed;
}

TEST_P(DeterminismGolden, FaultedTraceDigestIsStable) {
  const uint64_t seed = GetParam();
  const uint64_t wheel1 =
      FaultedDigest(sim::EventQueue::Impl::kTimingWheel, seed);
  const uint64_t wheel2 =
      FaultedDigest(sim::EventQueue::Impl::kTimingWheel, seed);
  EXPECT_EQ(wheel1, wheel2) << "timing wheel not deterministic, seed "
                            << seed;
  const uint64_t heap =
      FaultedDigest(sim::EventQueue::Impl::kReferenceHeap, seed);
  EXPECT_EQ(wheel1, heap)
      << "timing wheel and reference heap diverged, seed " << seed;
}

TEST_P(DeterminismGolden, ShardedDigestInvariantAcrossThreadCounts) {
  const uint64_t seed = GetParam();
  const uint64_t serial =
      ShardedDigest(sim::EventQueue::Impl::kTimingWheel, 1, seed);
  const uint64_t t2 =
      ShardedDigest(sim::EventQueue::Impl::kTimingWheel, 2, seed);
  EXPECT_EQ(serial, t2) << "threads=2 diverged from serial, seed " << seed;
  const uint64_t t4 =
      ShardedDigest(sim::EventQueue::Impl::kTimingWheel, 4, seed);
  EXPECT_EQ(serial, t4) << "threads=4 diverged from serial, seed " << seed;
  const uint64_t heap4 =
      ShardedDigest(sim::EventQueue::Impl::kReferenceHeap, 4, seed);
  EXPECT_EQ(serial, heap4)
      << "reference heap at threads=4 diverged, seed " << seed;
}

TEST_P(DeterminismGolden, ShardedFaultedDigestInvariantAcrossThreadCounts) {
  const uint64_t seed = GetParam();
  const uint64_t serial = ShardedFaultedDigest(1, seed);
  const uint64_t t2 = ShardedFaultedDigest(2, seed);
  EXPECT_EQ(serial, t2) << "threads=2 diverged from serial, seed " << seed;
  const uint64_t t4 = ShardedFaultedDigest(4, seed);
  EXPECT_EQ(serial, t4) << "threads=4 diverged from serial, seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismGolden,
                         ::testing::Values(1u, 7u, 42u));

// Digests must also *differ* when the workload differs — a constant hash
// would pass the equality tests above while checking nothing.
TEST(DeterminismGolden, DigestDiscriminatesDifferentRuns) {
  const uint64_t a =
      InterferenceDigest(sim::EventQueue::Impl::kTimingWheel, 1);
  const uint64_t b =
      InterferenceDigest(sim::EventQueue::Impl::kTimingWheel, 2);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace gimbal
