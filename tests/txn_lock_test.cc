// Randomized lock-manager property test (docs/TESTING.md): drives the 2PL
// LockManager directly — no simulator, no coordinator — with a fleet of
// model transaction slots executing random lock plans back to back, and
// cross-checks every observable against a reference mirror built purely
// from the manager's own grant reports. Per protocol × 3 seeds, a 40k
// lock-op budget each (>100k lock operations per protocol):
//
//   * mutual exclusion — no two conflicting grants are ever outstanding,
//   * introspection (Holds / held_count / total_waiting) matches the
//     mirror at every step,
//   * NO_WAIT never queues a waiter (zero kWaiting outcomes, waits == 0),
//   * WAIT_DIE / WOUND_WAIT are deadlock-free: the harness asserts there
//     is always a runnable transaction until every plan has committed,
//   * every transaction eventually commits (wound/die victims retry with
//     their original timestamp and must win in bounded time),
//   * the table drains to idle with acquires == releases.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "kv/txn.h"

namespace gimbal::kv {
namespace {

constexpr int kSlots = 48;
constexpr int kKeys = 16;  // small keyspace: force heavy conflicts
constexpr uint64_t kOpsBudget = 40'000;  // Acquire calls per seed
constexpr int kMaxSteps = 2'000'000;     // livelock backstop

struct Slot {
  uint64_t ts = 0;    // conflict priority of the current logical txn
  TxnId id = kNoTxn;  // current attempt id, kNoTxn between attempts
  std::vector<std::pair<Key, LockMode>> plan;
  size_t pos = 0;
  std::map<Key, LockMode> held;  // mirror, built from grant reports only
  bool waiting = false;
  bool wounded = false;
  bool need_restart = false;
  bool done = false;  // budget exhausted and last txn committed
  uint64_t committed = 0;
  uint64_t restarts = 0;
};

class Harness {
 public:
  Harness(TxnProtocol protocol, uint64_t seed)
      : protocol_(protocol), lm_(protocol), rng_(seed) {
    lm_.AttachObservability(nullptr, /*instance=*/0);
    slots_.resize(kSlots);
    for (int i = 0; i < kSlots; ++i) NewTxn(i);
  }

  LockManager& lm() { return lm_; }
  uint64_t total_ops() const { return total_ops_; }
  uint64_t total_commits() const {
    uint64_t n = 0;
    for (const Slot& s : slots_) n += s.committed;
    return n;
  }

  // Random-schedules the slots until the op budget is spent and every
  // in-flight transaction committed. Fails on deadlock (no runnable slot
  // while work remains) or on step exhaustion (livelock).
  bool RunToCompletion() {
    for (int step = 0; step < kMaxSteps; ++step) {
      std::vector<int> runnable;
      bool live = false;
      for (int i = 0; i < kSlots; ++i) {
        const Slot& s = slots_[static_cast<size_t>(i)];
        if (s.done) continue;
        live = true;
        if (!s.waiting) runnable.push_back(i);
      }
      if (!live) return true;
      if (runnable.empty()) {
        std::ostringstream dump;
        for (int i = 0; i < kSlots; ++i) {
          const Slot& s = slots_[static_cast<size_t>(i)];
          if (s.done) continue;
          dump << "\n  slot " << i << " id=" << s.id << " ts=" << s.ts
               << " pos=" << s.pos << "/" << s.plan.size()
               << (s.wounded ? " wounded" : "") << " wants ";
          if (s.pos < s.plan.size()) {
            dump << s.plan[s.pos].first
                 << (s.plan[s.pos].second == LockMode::kExclusive ? "X"
                                                                  : "S");
          } else {
            dump << "-";
          }
          dump << " holds";
          for (const auto& [k, m] : s.held) {
            dump << " " << k << (m == LockMode::kExclusive ? "X" : "S");
          }
        }
        ADD_FAILURE() << "deadlock: all live transactions are waiting ("
                      << ToString(protocol_) << ")" << dump.str();
        return false;
      }
      StepOne(runnable[rng_.NextBounded(runnable.size())]);
      if (step % 512 == 0) FullCrossCheck();
    }
    ADD_FAILURE() << "livelock: work remained after " << kMaxSteps
                  << " steps (" << ToString(protocol_) << ")";
    return false;
  }

  void FullCrossCheck() {
    // Mutual exclusion over the mirror: per key at most one X holder and
    // never S alongside another transaction's X.
    for (int k = 0; k < kKeys; ++k) {
      int holders = 0, xholders = 0;
      for (const Slot& s : slots_) {
        auto it = s.held.find(static_cast<Key>(k));
        if (it == s.held.end()) continue;
        ++holders;
        if (it->second == LockMode::kExclusive) ++xholders;
      }
      ASSERT_LE(xholders, 1) << "two X holders on key " << k;
      if (xholders == 1) {
        ASSERT_EQ(holders, 1) << "S holder alongside X on key " << k;
      }
    }
    // Introspection agrees with the mirror.
    size_t waiting = 0;
    for (const Slot& s : slots_) {
      if (s.waiting) ++waiting;
      if (s.id == kNoTxn) continue;
      ASSERT_EQ(lm_.held_count(s.id), s.held.size());
      for (const auto& [key, mode] : s.held) {
        (void)mode;
        ASSERT_TRUE(lm_.Holds(s.id, key));
      }
    }
    ASSERT_EQ(lm_.total_waiting(), waiting);
  }

 private:
  void NewTxn(int i) {
    Slot& s = slots_[static_cast<size_t>(i)];
    s.ts = next_ts_++;
    s.plan.clear();
    const size_t ops = 2 + rng_.NextBounded(6);
    for (size_t j = 0; j < ops; ++j) {
      s.plan.emplace_back(static_cast<Key>(rng_.NextBounded(kKeys)),
                          rng_.NextBool(0.4) ? LockMode::kExclusive
                                             : LockMode::kShared);
    }
    BeginAttempt(i);
  }

  void BeginAttempt(int i) {
    Slot& s = slots_[static_cast<size_t>(i)];
    s.id = next_id_++;
    s.pos = 0;
    s.held.clear();
    s.waiting = false;
    s.wounded = false;
    s.need_restart = false;
    // The coordinator's contract: a parked victim aborts inside the wound
    // callback (it has no pending event to abort from later); a "running"
    // victim (mid-IO in the real system) defers to its next step.
    lm_.Begin(s.id, s.ts, [this, i]() { OnWound(i); });
  }

  void OnWound(int i) {
    Slot& s = slots_[static_cast<size_t>(i)];
    s.wounded = true;
    if (s.waiting) {
      s.waiting = false;
      AbortAttempt(i);
    }
  }

  void OnGrant(int i, Key key, LockMode mode) {
    Slot& s = slots_[static_cast<size_t>(i)];
    s.waiting = false;
    NoteHeld(s, key, mode);
    ++s.pos;
  }

  static void NoteHeld(Slot& s, Key key, LockMode mode) {
    auto it = s.held.find(key);
    if (it == s.held.end()) {
      s.held.emplace(key, mode);
    } else if (mode == LockMode::kExclusive) {
      it->second = LockMode::kExclusive;
    }
  }

  void AbortAttempt(int i) {
    Slot& s = slots_[static_cast<size_t>(i)];
    lm_.ReleaseAll(s.id);
    s.id = kNoTxn;
    s.held.clear();
    s.need_restart = true;  // retries later with the same ts
    ++s.restarts;
  }

  void StepOne(int i) {
    Slot& s = slots_[static_cast<size_t>(i)];
    if (s.need_restart) {
      BeginAttempt(i);
      return;
    }
    if (s.wounded) {
      AbortAttempt(i);
      return;
    }
    if (s.pos >= s.plan.size()) {
      lm_.PinCommit(s.id);
      lm_.ReleaseAll(s.id);
      s.id = kNoTxn;
      s.held.clear();
      ++s.committed;
      if (total_ops_ < kOpsBudget) {
        NewTxn(i);  // closed loop: next logical transaction, fresh ts
      } else {
        s.done = true;
      }
      return;
    }
    const auto [key, mode] = s.plan[s.pos];
    ++total_ops_;
    auto it = s.held.find(key);
    const bool reacquire =
        it != s.held.end() && (it->second == LockMode::kExclusive ||
                               mode == LockMode::kShared);
    // Armed BEFORE the call (the coordinator's idiom): a WOUND_WAIT
    // requester that wounds a parked victim can be granted synchronously
    // inside Acquire — the victim's abort releases the key and promotes
    // the requester's freshly queued request — so the grant (which clears
    // the flag) may fire before Acquire returns kWaiting.
    s.waiting = true;
    const LockManager::Outcome out = lm_.Acquire(
        s.id, key, mode, [this, i, key, mode]() { OnGrant(i, key, mode); });
    switch (out) {
      case LockManager::Outcome::kGranted:
        s.waiting = false;
        NoteHeld(s, key, mode);
        ++s.pos;
        break;
      case LockManager::Outcome::kWaiting:
        EXPECT_FALSE(reacquire) << "re-acquire of a held lock queued";
        EXPECT_NE(protocol_, TxnProtocol::kNoWait)
            << "NO_WAIT returned kWaiting";
        break;  // s.waiting may already be false again (grant or wound)
      case LockManager::Outcome::kAbort:
        s.waiting = false;
        EXPECT_FALSE(reacquire) << "re-acquire of a held lock aborted";
        EXPECT_NE(protocol_, TxnProtocol::kWoundWait)
            << "WOUND_WAIT aborted the requester";
        AbortAttempt(i);
        break;
    }
  }

  TxnProtocol protocol_;
  LockManager lm_;
  Rng rng_;
  std::vector<Slot> slots_;
  TxnId next_id_ = 1;
  uint64_t next_ts_ = 1;
  uint64_t total_ops_ = 0;
};

void RunProperty(TxnProtocol protocol) {
  uint64_t ops = 0, commits = 0;
  for (uint64_t seed : {11u, 42u, 1009u}) {
    Harness h(protocol, seed);
    ASSERT_TRUE(h.RunToCompletion())
        << ToString(protocol) << " seed=" << seed;
    h.FullCrossCheck();
    // Strict 2PL drained: every lock came back, nothing waits, no state.
    EXPECT_TRUE(h.lm().idle()) << ToString(protocol) << " seed=" << seed;
    EXPECT_EQ(h.lm().total_waiting(), 0u);
    EXPECT_EQ(h.lm().table_keys(), 0u);
    const auto& s = h.lm().stats();
    // An upgrade is an acquire that does not add a held key, so each key
    // still releases exactly once: acquires = releases + upgrades.
    EXPECT_EQ(s.acquires, s.releases + s.upgrades)
        << ToString(protocol) << " seed=" << seed;
    if (protocol == TxnProtocol::kNoWait) {
      EXPECT_EQ(s.waits, 0u) << "NO_WAIT queued a waiter";
      EXPECT_EQ(s.wounds, 0u);
    }
    if (protocol == TxnProtocol::kWaitDie) {
      EXPECT_EQ(s.wounds, 0u);
    }
    ops += h.total_ops();
    commits += h.total_commits();
  }
  // The sweep must be a real stress, not a vacuous no-op. (NO_WAIT on a
  // 16-key 40%-exclusive keyspace aborts most attempts, so its commit
  // count is far below the waiting protocols' — the floor reflects that.)
  EXPECT_GT(ops, 100'000u) << ToString(protocol);
  EXPECT_GT(commits, 500u) << ToString(protocol);
}

TEST(TxnLockProperty, NoWaitNeverWaits) { RunProperty(TxnProtocol::kNoWait); }

TEST(TxnLockProperty, WaitDieDeadlockFree) {
  RunProperty(TxnProtocol::kWaitDie);
}

TEST(TxnLockProperty, WoundWaitDeadlockFree) {
  RunProperty(TxnProtocol::kWoundWait);
}

}  // namespace
}  // namespace gimbal::kv
