// Tests for the NVMe-oF fabric: network serialization, the five-step
// request flow through the target, initiator flow-control modes, and the
// baseline policies in isolation (NULL device).
#include <gtest/gtest.h>

#include "baselines/flashfq_policy.h"
#include "baselines/parda_policy.h"
#include "baselines/reflex_policy.h"
#include "fabric/initiator.h"
#include "fabric/network.h"
#include "fabric/target.h"
#include "ssd/null_device.h"
#include "workload/runner.h"

namespace gimbal {
namespace {

using fabric::Direction;
using fabric::Network;

TEST(Network, BaseLatencyDominatesSmallMessages) {
  sim::Simulator sim;
  Network net(sim);
  Tick arrival = -1;
  net.Send(Direction::kClientToTarget, 64, [&]() { arrival = sim.now(); });
  sim.Run();
  // 64B at 12.5 GB/s ~ 5ns serialization + 5us base.
  EXPECT_GE(arrival, Microseconds(5));
  EXPECT_LT(arrival, Microseconds(6));
}

TEST(Network, LargeMessageSerializationCost) {
  sim::Simulator sim;
  Network net(sim);
  Tick arrival = -1;
  net.Send(Direction::kTargetToClient, 1 << 20, [&]() { arrival = sim.now(); });
  sim.Run();
  // 1 MiB at 12.5 GB/s ~ 84us + 5us base.
  EXPECT_GT(arrival, Microseconds(80));
  EXPECT_LT(arrival, Microseconds(100));
}

TEST(Network, SharedLinkSerializes) {
  sim::Simulator sim;
  Network net(sim);
  Tick first = -1, second = -1;
  net.Send(Direction::kClientToTarget, 1 << 20, [&]() { first = sim.now(); });
  net.Send(Direction::kClientToTarget, 1 << 20, [&]() { second = sim.now(); });
  sim.Run();
  EXPECT_GT(second, first + Microseconds(70));  // queued behind the first
}

TEST(Network, DirectionsAreIndependent) {
  sim::Simulator sim;
  Network net(sim);
  Tick up = -1, down = -1;
  net.Send(Direction::kClientToTarget, 1 << 20, [&]() { up = sim.now(); });
  net.Send(Direction::kTargetToClient, 1 << 20, [&]() { down = sim.now(); });
  sim.Run();
  // Full duplex: both complete around the same time.
  EXPECT_NEAR(static_cast<double>(up), static_cast<double>(down), 1000.0);
}

// ---------------------------------------------------------------------------
// Target + Initiator round trips
// ---------------------------------------------------------------------------

struct FabricRig {
  sim::Simulator sim;
  Network net{sim};
  fabric::Target target;
  ssd::NullDevice* null_dev = nullptr;

  explicit FabricRig(fabric::TargetConfig cfg = {})
      : target(sim, net, cfg) {
    auto dev = std::make_unique<ssd::NullDevice>(sim);
    null_dev = dev.get();
    owned_dev_ = std::move(dev);
    target.AddPipeline(
        std::make_unique<baselines::FcfsPolicy>(sim, *null_dev));
  }

 private:
  std::unique_ptr<ssd::BlockDevice> owned_dev_;
};

TEST(FabricRoundTrip, ReadLatencyComposition) {
  FabricRig rig;
  fabric::Initiator init(rig.sim, rig.net, rig.target, 0, 1);
  Tick e2e = -1;
  init.Submit(IoType::kRead, 0, 4096, IoPriority::kNormal,
              [&](const IoCompletion&, Tick lat) { e2e = lat; });
  rig.sim.Run();
  // capsule (5us) + submit cpu + null dev (2us) + complete cpu + staging +
  // data+capsule back (5us + ~0.3us serialization) ~= 15-20us.
  EXPECT_GT(e2e, Microseconds(12));
  EXPECT_LT(e2e, Microseconds(25));
}

TEST(FabricRoundTrip, WritePaysRdmaReadTrip) {
  FabricRig rig;
  fabric::Initiator init(rig.sim, rig.net, rig.target, 0, 1);
  Tick read_lat = -1, write_lat = -1;
  init.Submit(IoType::kRead, 0, 65536, IoPriority::kNormal,
              [&](const IoCompletion&, Tick lat) { read_lat = lat; });
  rig.sim.Run();
  init.Submit(IoType::kWrite, 0, 65536, IoPriority::kNormal,
              [&](const IoCompletion&, Tick lat) { write_lat = lat; });
  rig.sim.Run();
  // The write's payload needs an extra control+data round trip.
  EXPECT_GT(write_lat, read_lat);
}

TEST(FabricRoundTrip, CompletionCarriesTenant) {
  FabricRig rig;
  fabric::Initiator init(rig.sim, rig.net, rig.target, 0, 7);
  IoCompletion got;
  init.Submit(IoType::kRead, 4096, 4096, IoPriority::kHigh,
              [&](const IoCompletion& c, Tick) { got = c; });
  rig.sim.Run();
  EXPECT_EQ(got.tenant, 7u);
  EXPECT_EQ(got.length, 4096u);
  EXPECT_EQ(got.type, IoType::kRead);
}

TEST(FabricRoundTrip, ManyOutstandingAllComplete) {
  FabricRig rig;
  fabric::Initiator init(rig.sim, rig.net, rig.target, 0, 1);
  int done = 0;
  for (int i = 0; i < 500; ++i) {
    init.Submit(IoType::kRead, static_cast<uint64_t>(i) * 4096, 4096,
                IoPriority::kNormal,
                [&](const IoCompletion&, Tick) { ++done; });
  }
  rig.sim.Run();
  EXPECT_EQ(done, 500);
  EXPECT_EQ(init.inflight(), 0u);
}

TEST(FabricRoundTrip, AddedCostSlowsPipeline) {
  fabric::TargetConfig slow;
  slow.added_cost = Microseconds(50);
  FabricRig fast_rig, slow_rig(slow);
  auto run = [](FabricRig& rig) {
    fabric::Initiator init(rig.sim, rig.net, rig.target, 0, 1);
    Tick e2e = 0;
    init.Submit(IoType::kRead, 0, 4096, IoPriority::kNormal,
                [&](const IoCompletion&, Tick lat) { e2e = lat; });
    rig.sim.Run();
    return e2e;
  };
  EXPECT_GT(run(slow_rig), run(fast_rig) + Microseconds(45));
}

TEST(Initiator, CreditThrottleLimitsInflight) {
  FabricRig rig;
  // Credit mode with no Gimbal switch: the FCFS policy grants no credit
  // updates, so the initial credit (8) caps inflight.
  fabric::Initiator init(rig.sim, rig.net, rig.target, 0, 1,
                         fabric::ThrottleMode::kCredit);
  for (int i = 0; i < 64; ++i) {
    init.Submit(IoType::kRead, 0, 4096, IoPriority::kNormal, nullptr);
  }
  EXPECT_LE(init.inflight(), 8u);
  EXPECT_EQ(init.queued(), 64u - init.inflight());
  rig.sim.Run();
  EXPECT_EQ(init.inflight(), 0u);
  EXPECT_EQ(init.queued(), 0u);
}

TEST(Initiator, PardaWindowShrinksUnderHighLatency) {
  baselines::PardaParams pp;
  pp.latency_threshold = Microseconds(10);  // absurdly tight on purpose
  pp.epoch = Microseconds(50);
  FabricRig rig;
  fabric::Initiator init(rig.sim, rig.net, rig.target, 0, 1,
                         fabric::ThrottleMode::kParda, pp);
  for (int i = 0; i < 2000; ++i) {
    init.Submit(IoType::kRead, 0, 4096, IoPriority::kNormal, nullptr);
  }
  rig.sim.Run();
  // Observed latency (~15us) >> threshold (10us): window collapses.
  EXPECT_LT(init.parda_window(), 8.0);
}

TEST(Initiator, PardaWindowGrowsUnderLowLatency) {
  baselines::PardaParams pp;
  pp.latency_threshold = Milliseconds(2);
  pp.epoch = Microseconds(50);
  FabricRig rig;
  fabric::Initiator init(rig.sim, rig.net, rig.target, 0, 1,
                         fabric::ThrottleMode::kParda, pp);
  for (int i = 0; i < 2000; ++i) {
    init.Submit(IoType::kRead, 0, 4096, IoPriority::kNormal, nullptr);
  }
  rig.sim.Run();
  EXPECT_GT(init.parda_window(), 8.0);
}

// ---------------------------------------------------------------------------
// Baseline policies on a NULL device
// ---------------------------------------------------------------------------

TEST(ReflexPolicy, EnforcesTokenRate) {
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30, Microseconds(1));
  baselines::ReflexParams rp;
  rp.token_rate = 10000;  // 10K 4K-reads/sec
  baselines::ReflexPolicy policy(sim, dev, rp);
  uint64_t done = 0;
  policy.set_completion_fn(
      [&](const IoRequest&, const IoCompletion&) { ++done; });
  for (int i = 0; i < 1000; ++i) {
    IoRequest r;
    r.id = static_cast<uint64_t>(i) + 1;
    r.tenant = 1;
    r.type = IoType::kRead;
    r.length = 4096;
    policy.OnRequest(r);
  }
  sim.RunUntil(Milliseconds(100));
  // 100ms at 10K IOPS ~ 1000 IOs; allow bucket burst slack.
  EXPECT_GT(done, 800u);
  EXPECT_LE(done, 1000u);
}

TEST(ReflexPolicy, WritesCostMoreTokens) {
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30, Microseconds(1));
  baselines::ReflexParams rp;
  rp.token_rate = 9000;
  rp.write_cost = 9.0;
  baselines::ReflexPolicy policy(sim, dev, rp);
  uint64_t reads = 0, writes = 0;
  policy.set_completion_fn([&](const IoRequest& r, const IoCompletion&) {
    (r.type == IoType::kRead ? reads : writes)++;
  });
  for (int i = 0; i < 2000; ++i) {
    IoRequest r;
    r.id = static_cast<uint64_t>(i) + 1;
    r.tenant = (i % 2) ? 1 : 2;
    r.type = (i % 2) ? IoType::kRead : IoType::kWrite;
    r.length = 4096;
    policy.OnRequest(r);
  }
  sim.RunUntil(Milliseconds(100));
  // Token costs are 1 vs 9: reads complete ~9x as fast.
  ASSERT_GT(writes, 0u);
  EXPECT_GT(reads, 4 * writes);
}

TEST(FlashFqPolicy, ThrottledDispatchBoundsOutstanding) {
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30, Microseconds(100));
  baselines::FlashFqParams fp;
  fp.depth = 4;
  baselines::FlashFqPolicy policy(sim, dev, fp);
  policy.set_completion_fn([](const IoRequest&, const IoCompletion&) {});
  for (int i = 0; i < 100; ++i) {
    IoRequest r;
    r.id = static_cast<uint64_t>(i) + 1;
    r.tenant = 1;
    r.type = IoType::kRead;
    r.length = 4096;
    policy.OnRequest(r);
  }
  EXPECT_LE(dev.inflight(), 4u);
  sim.Run();
}

TEST(FlashFqPolicy, FairBetweenEqualFlows) {
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30, Microseconds(50));
  baselines::FlashFqPolicy policy(sim, dev);
  uint64_t per_tenant[3] = {0, 0, 0};
  policy.set_completion_fn([&](const IoRequest& r, const IoCompletion&) {
    ++per_tenant[r.tenant];
  });
  // Tenant 1 floods; tenant 2 offers the same; SFQ serves them equally.
  for (int i = 0; i < 400; ++i) {
    for (TenantId t : {1u, 2u}) {
      IoRequest r;
      r.id = static_cast<uint64_t>(i * 2 + t);
      r.tenant = t;
      r.type = IoType::kRead;
      r.length = 4096;
      policy.OnRequest(r);
    }
  }
  sim.RunUntil(Milliseconds(10));
  ASSERT_GT(per_tenant[1], 0u);
  double ratio = static_cast<double>(per_tenant[1]) /
                 static_cast<double>(per_tenant[2]);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(FlashFqPolicy, SizeWeightedVirtualTime) {
  // A flow of large IOs should get ~the same *bytes*, not the same IOPS.
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30, Microseconds(50));
  baselines::FlashFqPolicy policy(sim, dev);
  uint64_t bytes[3] = {0, 0, 0};
  policy.set_completion_fn([&](const IoRequest& r, const IoCompletion&) {
    bytes[r.tenant] += r.length;
  });
  for (int i = 0; i < 600; ++i) {
    IoRequest small;
    small.id = static_cast<uint64_t>(i) * 2 + 1;
    small.tenant = 1;
    small.type = IoType::kRead;
    small.length = 4096;
    policy.OnRequest(small);
    if (i % 8 == 0) {
      IoRequest big;
      big.id = static_cast<uint64_t>(i) * 2 + 2;
      big.tenant = 2;
      big.type = IoType::kRead;
      big.length = 32768;
      policy.OnRequest(big);
    }
  }
  sim.RunUntil(Milliseconds(8));
  ASSERT_GT(bytes[2], 0u);
  double ratio =
      static_cast<double>(bytes[1]) / static_cast<double>(bytes[2]);
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.6);
}

}  // namespace
}  // namespace gimbal
