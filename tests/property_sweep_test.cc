// Parameterized property sweeps: invariants that must hold across the
// device-geometry and Gimbal-parameter space, not just at the defaults.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "check/invariants.h"
#include "common/rng.h"
#include "core/gimbal_switch.h"
#include "obs/schema.h"
#include "ssd/ssd.h"
#include "workload/runner.h"

namespace gimbal {
namespace {

// --------------------------------------------------------------------------
// SSD geometry sweep: conservation and sanity across configurations.
// --------------------------------------------------------------------------

struct Geometry {
  int channels;
  int dies_per_channel;
  uint32_t pages_per_block;
  uint64_t logical_mb;
};

class GeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(GeometrySweep, MixedTrafficInvariants) {
  auto [channels, dpc, ppb, logical_mb] = GetParam();
  sim::Simulator sim;
  ssd::SsdConfig cfg;
  cfg.channels = channels;
  cfg.dies_per_channel = dpc;
  cfg.pages_per_block = ppb;
  cfg.logical_bytes = logical_mb << 20;
  ssd::Ssd dev(sim, cfg);
  dev.PreconditionFragmented(2.0);

  // Drive a mixed closed loop.
  Rng rng(99);
  uint64_t reads_done = 0, writes_done = 0, bytes_done = 0;
  Tick max_latency = 0;
  std::function<void()> issue = [&]() {
    ssd::DeviceIo io;
    bool write = rng.NextBool(0.3);
    io.type = write ? IoType::kWrite : IoType::kRead;
    io.length = 4096u << rng.NextBounded(3);  // 4/8/16 KiB
    uint64_t slots = cfg.logical_bytes / io.length;
    io.offset = rng.NextBounded(slots) * io.length;
    dev.Submit(io, [&](const ssd::DeviceCompletion& cpl) {
      (cpl.type == IoType::kRead ? reads_done : writes_done)++;
      bytes_done += cpl.length;
      max_latency = std::max(max_latency, cpl.latency());
      issue();
    });
  };
  for (int i = 0; i < 16; ++i) issue();
  sim.RunUntil(Milliseconds(200));

  // Invariants: progress on both classes, WA sane, latencies positive and
  // bounded, free-block floor respected on every die.
  EXPECT_GT(reads_done, 50u);
  EXPECT_GT(writes_done, 20u);
  EXPECT_GE(dev.ftl().stats().WriteAmplification(), 1.0);
  EXPECT_LT(dev.ftl().stats().WriteAmplification(), 20.0);
  EXPECT_GT(max_latency, 0);
  EXPECT_LT(max_latency, Seconds(1));
  for (int d = 0; d < cfg.dies(); ++d) {
    EXPECT_GE(dev.ftl().FreeBlocks(d), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(Geometry{2, 2, 64, 64},     // tiny, coarse blocks
                      Geometry{4, 4, 128, 128},   // mid
                      Geometry{8, 4, 128, 256},   // default-like
                      Geometry{8, 8, 64, 256},    // many dies, small blocks
                      Geometry{1, 4, 128, 64}));  // single channel

// --------------------------------------------------------------------------
// Gimbal parameter sweep: the switch must stay live and fair-ish for any
// sane parameterization, not just §4.2's defaults.
// --------------------------------------------------------------------------

struct Params {
  Tick thresh_min;
  Tick thresh_max;
  double beta;
  uint32_t slots_threshold;
};

class GimbalParamSweep : public ::testing::TestWithParam<Params> {};

TEST_P(GimbalParamSweep, TwoTenantsStayLiveAndBalanced) {
  auto [tmin, tmax, beta, slots] = GetParam();
  workload::TestbedConfig cfg;
  cfg.scheme = workload::Scheme::kGimbal;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.gimbal.thresh_min = tmin;
  cfg.gimbal.thresh_max = tmax;
  cfg.gimbal.beta = beta;
  cfg.gimbal.slots_threshold = slots;
  workload::Testbed bed(cfg);
  for (int i = 0; i < 2; ++i) {
    workload::FioSpec spec;
    spec.io_bytes = 4096;
    spec.queue_depth = 32;
    spec.seed = static_cast<uint64_t>(i) + 1;
    bed.AddWorker(spec);
  }
  bed.Run(Milliseconds(200), Milliseconds(400));
  uint64_t a = bed.workers()[0]->stats().total_bytes();
  uint64_t b = bed.workers()[1]->stats().total_bytes();
  ASSERT_GT(a, 0u);
  ASSERT_GT(b, 0u);
  double ratio = static_cast<double>(std::max(a, b)) /
                 static_cast<double>(std::min(a, b));
  EXPECT_LT(ratio, 1.5) << "equal tenants diverged under params";
  // Liveness: once the workers stop, everything queued at the switch must
  // drain (no stranded requests under any parameterization).
  for (auto& w : bed.workers()) w->Stop();
  bed.sim().RunUntil(bed.sim().now() + Seconds(2));
  core::GimbalSwitch* sw = bed.gimbal_switch(0);
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(sw->scheduler().queued_total(), 0u)
      << "requests stranded after drain window";
  EXPECT_EQ(sw->io_outstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ParamSpace, GimbalParamSweep,
    ::testing::Values(
        Params{Microseconds(250), Microseconds(1500), 8, 8},   // paper
        Params{Microseconds(100), Microseconds(800), 8, 8},    // tight
        Params{Microseconds(500), Milliseconds(3), 8, 8},      // loose (P3600)
        Params{Microseconds(250), Microseconds(1500), 1, 8},   // slow probe
        Params{Microseconds(250), Microseconds(1500), 16, 8},  // fast probe
        Params{Microseconds(250), Microseconds(1500), 8, 2},   // few slots
        Params{Microseconds(250), Microseconds(1500), 8, 64}));  // many slots

// --------------------------------------------------------------------------
// Cross-scheme liveness: every policy must complete a hostile little mix
// without stranding IOs.
// --------------------------------------------------------------------------

class SchemeLiveness
    : public ::testing::TestWithParam<workload::Scheme> {};

TEST_P(SchemeLiveness, HostileMixDrains) {
  workload::TestbedConfig cfg;
  cfg.scheme = GetParam();
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.condition = workload::SsdCondition::kFragmented;
  workload::Testbed bed(cfg);
  // Odd sizes, mixed types, bursty QD.
  uint32_t sizes[] = {4096, 12288, 65536, 131072};
  for (int i = 0; i < 4; ++i) {
    workload::FioSpec spec;
    spec.io_bytes = sizes[i];
    spec.read_ratio = i % 2 == 0 ? 0.9 : 0.2;
    spec.queue_depth = 1 + static_cast<uint32_t>(i) * 7;
    spec.seed = static_cast<uint64_t>(i) + 1;
    bed.AddWorker(spec);
  }
  for (auto& w : bed.workers()) w->Start();
  bed.sim().RunUntil(Milliseconds(150));
  for (auto& w : bed.workers()) w->Stop();
  bed.sim().RunUntil(Seconds(3));
  EXPECT_TRUE(bed.sim().idle()) << "stranded events / undrained IOs";
  for (auto& w : bed.workers()) {
    EXPECT_GT(w->stats().total_ios(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeLiveness,
    ::testing::Values(workload::Scheme::kVanilla, workload::Scheme::kReflex,
                      workload::Scheme::kParda, workload::Scheme::kFlashFq,
                      workload::Scheme::kGimbal,
                      workload::Scheme::kTimeslice));

// --------------------------------------------------------------------------
// Policy matrix: every scheme x workload mix x seed runs under the online
// invariant checker (src/check/invariants.h) and must finish with zero
// violations and a closed end-of-run balance. This replaces scattered
// hand-rolled conservation asserts: the checker verifies IO conservation,
// credit law, DRR bounds, token buckets, slot occupancy and latency sanity
// at every event, not just at the end.
// --------------------------------------------------------------------------

std::string ViolationReport(const check::InvariantChecker& chk) {
  std::string out;
  size_t shown = std::min<size_t>(chk.violations().size(), 3);
  for (size_t i = 0; i < shown; ++i) {
    const auto& v = chk.violations()[i];
    out += "\n  [" + std::to_string(v.when) + "] " + v.invariant +
           " tenant=" + std::to_string(v.tenant) +
           " ssd=" + std::to_string(v.ssd) + ": " + v.detail;
  }
  if (chk.violations().size() > shown) {
    out += "\n  ... and " +
           std::to_string(chk.violations().size() - shown) + " more";
  }
  return out;
}

enum class WorkMix { kSmallReads, kWritePressure, kRaggedMix };

class PolicyMatrix
    : public ::testing::TestWithParam<
          std::tuple<workload::Scheme, WorkMix, uint64_t>> {};

TEST_P(PolicyMatrix, CheckerCleanAndDrained) {
  auto [scheme, mix, seed] = GetParam();
  check::InvariantChecker chk(/*fail_fast=*/false);
  workload::TestbedConfig cfg;
  cfg.scheme = scheme;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.condition = workload::SsdCondition::kFragmented;
  cfg.check = &chk;
  workload::Testbed bed(cfg);
  switch (mix) {
    case WorkMix::kSmallReads:
      // Three symmetric 4KiB readers: pure DRR / credit exercise.
      for (int i = 0; i < 3; ++i) {
        workload::FioSpec spec;
        spec.io_bytes = 4096;
        spec.queue_depth = 16;
        spec.seed = seed * 17 + static_cast<uint64_t>(i);
        bed.AddWorker(spec);
      }
      break;
    case WorkMix::kWritePressure:
      // Two big writers against one reader: write-cost estimation and the
      // token bucket's write path.
      for (int i = 0; i < 2; ++i) {
        workload::FioSpec spec;
        spec.io_bytes = 128 * 1024;
        spec.read_ratio = 0.0;
        spec.queue_depth = 8;
        spec.seed = seed * 17 + static_cast<uint64_t>(i);
        bed.AddWorker(spec);
      }
      {
        workload::FioSpec rd;
        rd.io_bytes = 4096;
        rd.queue_depth = 16;
        rd.seed = seed * 17 + 2;
        bed.AddWorker(rd);
      }
      break;
    case WorkMix::kRaggedMix: {
      // Odd sizes, asymmetric ratios, one rate-capped tenant: MDTS splits,
      // per-tenant rate limiting and mixed read/write accounting.
      uint32_t sizes[] = {4096, 12288, 65536};
      for (int i = 0; i < 3; ++i) {
        workload::FioSpec spec;
        spec.io_bytes = sizes[i];
        spec.read_ratio = i % 2 == 0 ? 0.9 : 0.2;
        spec.queue_depth = 2 + static_cast<uint32_t>(i) * 5;
        if (i == 1) spec.rate_cap_bps = 50.0 * 1024 * 1024;
        spec.seed = seed * 17 + static_cast<uint64_t>(i);
        bed.AddWorker(spec);
      }
      break;
    }
  }
  for (auto& w : bed.workers()) w->Start();
  bed.sim().RunUntil(Milliseconds(100));
  for (auto& w : bed.workers()) w->Stop();
  for (auto& ini : bed.initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  bed.sim().Run();
  ASSERT_TRUE(bed.sim().idle()) << "stranded events / undrained IOs";
  for (auto& w : bed.workers()) {
    EXPECT_GT(w->stats().total_ios(), 0u) << "a tenant never ran";
  }
  EXPECT_GT(chk.checks_run(), 0u) << "checker not attached";
  EXPECT_TRUE(chk.CheckDrained()) << ViolationReport(chk);
  EXPECT_TRUE(chk.ok()) << ViolationReport(chk);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesMixesSeeds, PolicyMatrix,
    ::testing::Combine(
        ::testing::Values(workload::Scheme::kVanilla,
                          workload::Scheme::kReflex, workload::Scheme::kParda,
                          workload::Scheme::kFlashFq,
                          workload::Scheme::kGimbal),
        ::testing::Values(WorkMix::kSmallReads, WorkMix::kWritePressure,
                          WorkMix::kRaggedMix),
        ::testing::Values(1u, 7u, 42u)));

// --------------------------------------------------------------------------
// Fault sweep: no IO is ever lost. Under every fault plan and seed, each
// request the initiator admitted reaches exactly one terminal status
// (completed or failed) once the testbed drains — nothing stuck behind a
// dead device, lost to a dropped capsule, or leaked by a crashed tenant.
// --------------------------------------------------------------------------

enum class FaultMix { kMedia, kStall, kFailure, kLinkFlap, kEverything };

class FaultSweep
    : public ::testing::TestWithParam<std::tuple<FaultMix, uint64_t>> {};

TEST_P(FaultSweep, NoIoLost) {
  auto [mix, seed] = GetParam();
  obs::Observability obs;
  check::InvariantChecker chk(/*fail_fast=*/false);
  workload::TestbedConfig cfg;
  cfg.scheme = workload::Scheme::kGimbal;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.check = &chk;
  cfg.fault_seed = seed;
  cfg.retry.io_timeout = Milliseconds(2);
  cfg.retry.keepalive_interval = Milliseconds(1);
  cfg.target.session_timeout = Milliseconds(5);
  cfg.obs = &obs;
  cfg.run_label = "fault_sweep";
  const bool media = mix == FaultMix::kMedia || mix == FaultMix::kEverything;
  const bool stall = mix == FaultMix::kStall || mix == FaultMix::kEverything;
  const bool failure =
      mix == FaultMix::kFailure || mix == FaultMix::kEverything;
  const bool flap =
      mix == FaultMix::kLinkFlap || mix == FaultMix::kEverything;
  if (media) {
    cfg.faults.media_errors.push_back(
        {0, Milliseconds(10), Milliseconds(30), 0.1, Microseconds(200)});
  }
  if (stall) {
    cfg.faults.stalls.push_back(
        {0, Milliseconds(15), Milliseconds(35), Microseconds(800)});
  }
  if (failure) {
    cfg.faults.failures.push_back({0, Milliseconds(40), Milliseconds(48)});
  }
  if (flap) {
    cfg.faults.link_flaps.push_back(
        {Milliseconds(20), Milliseconds(28), 0.1, Microseconds(10)});
  }
  workload::Testbed bed(cfg);
  for (int i = 0; i < 3; ++i) {
    workload::FioSpec spec;
    spec.io_bytes = 4096u << (i % 2);
    spec.read_ratio = i == 2 ? 0.5 : 1.0;
    spec.queue_depth = 8;
    spec.seed = seed * 31 + static_cast<uint64_t>(i);
    bed.AddWorker(spec);
  }
  // The crash path rides along in the everything mix.
  if (mix == FaultMix::kEverything) {
    fabric::Initiator& crasher = bed.workers()[2]->initiator();
    bed.faults().ScheduleTenantCrash(Milliseconds(25), crasher.tenant(),
                                     [&crasher]() { crasher.Crash(); });
  }
  for (auto& w : bed.workers()) w->Start();
  bed.sim().RunUntil(Milliseconds(70));
  for (auto& w : bed.workers()) w->Stop();
  for (auto& ini : bed.initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  bed.sim().Run();
  EXPECT_TRUE(bed.sim().idle());

  // The checker's ledgers subsume the old hand-rolled metric diffs: per
  // (tenant, ssd), admitted == terminal with nothing in flight, and every
  // online invariant (credits, DRR, buckets, health transitions) held
  // throughout the fault windows.
  EXPECT_GT(chk.checks_run(), 0u) << "checker not attached";
  EXPECT_TRUE(chk.CheckDrained()) << ViolationReport(chk);
  EXPECT_TRUE(chk.ok()) << ViolationReport(chk);
  for (auto& ini : bed.initiators()) {
    const obs::Labels l = obs::Labels::TenantSsd(
        static_cast<int32_t>(ini->tenant()), ini->pipeline());
    const uint64_t submitted =
        obs.metrics.GetCounter(obs::schema::kInitiatorSubmitted, l).value();
    EXPECT_GT(submitted, 0u) << "tenant " << ini->tenant() << " never ran";
  }
  // Nothing left queued at the switch either.
  core::GimbalSwitch* sw = bed.gimbal_switch(0);
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(sw->scheduler().queued_total(), 0u);
  EXPECT_EQ(sw->scheduler().tenant_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    PlansAndSeeds, FaultSweep,
    ::testing::Combine(::testing::Values(FaultMix::kMedia, FaultMix::kStall,
                                         FaultMix::kFailure,
                                         FaultMix::kLinkFlap,
                                         FaultMix::kEverything),
                       ::testing::Values(1u, 7u, 42u)));

}  // namespace
}  // namespace gimbal
