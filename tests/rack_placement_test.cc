// Failure-domain replica placement (docs/SIMULATOR.md, §4.3 extended):
//
//   * Property (randomized): across random rack shapes, credit landscapes
//     and allocation interleavings, the hierarchical blob allocator never
//     places a shadow replica on the primary's node — and with the node
//     map unset, its choices are bit-identical to the historical
//     per-backend exclusion.
//   * End-to-end: on a live rack cluster, a node failure plus rebuild
//     re-establishes node-disjointness for every blob — the
//     kv.placement.domain invariant observes every replicated write
//     (including re-replication) and stays silent, and the dirty ledger
//     drains.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "common/rng.h"
#include "kv/cluster.h"
#include "kv/hba.h"
#include "obs/obs.h"

namespace gimbal::kv {
namespace {

// Randomized allocator property: for every (nodes, ssds-per-node, credit
// landscape, interleaving) drawn from the seed, a micro allocation that
// excludes a backend never lands on that backend's node.
TEST(RackPlacement, ShadowNeverSharesPrimaryNode) {
  Rng rng(20260808);
  for (int iter = 0; iter < 200; ++iter) {
    const int nodes = 2 + static_cast<int>(rng.NextBounded(3));      // 2..4
    const int per_node = 1 + static_cast<int>(rng.NextBounded(3));   // 1..3
    const int backends = nodes * per_node;
    HbaConfig hcfg;
    hcfg.backend_bytes = 16ull << 20;
    hcfg.mega_bytes = 1ull << 20;
    GlobalBlobAllocator global(backends, hcfg);
    // Random but fixed credit landscape; re-drawn per allocation below to
    // shuffle the preferred backend mid-run.
    std::vector<uint32_t> credits(static_cast<size_t>(backends));
    auto redraw = [&] {
      for (auto& c : credits) c = static_cast<uint32_t>(rng.NextBounded(64));
    };
    redraw();
    LocalBlobAllocator alloc(
        global, [&credits](int b) { return credits[static_cast<size_t>(b)]; });
    std::vector<int> node_of(static_cast<size_t>(backends));
    for (int b = 0; b < backends; ++b) node_of[b] = b / per_node;
    alloc.SetNodeMap(node_of);

    std::vector<BlobAddr> live;
    for (int op = 0; op < 120; ++op) {
      if (rng.NextBounded(100) < 70) redraw();
      auto primary = alloc.AllocateMicro();
      if (!primary) break;  // rack full: nothing left to prove
      auto shadow = alloc.AllocateMicro(primary->backend);
      if (shadow) {
        ASSERT_NE(node_of[static_cast<size_t>(primary->backend)],
                  node_of[static_cast<size_t>(shadow->backend)])
            << "iter " << iter << " op " << op << ": primary backend "
            << primary->backend << " shadow backend " << shadow->backend;
        live.push_back(*shadow);
      }
      live.push_back(*primary);
      // Free a random live blob occasionally so reuse paths are exercised.
      if (!live.empty() && rng.NextBounded(100) < 30) {
        size_t pick = rng.NextBounded(live.size());
        alloc.FreeMicro(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
    }
  }
}

// Regression pin: with no node map, domain exclusion degenerates to the
// historical per-backend exclusion — same preferred backend, every time.
TEST(RackPlacement, EmptyNodeMapMatchesPerBackendExclusion) {
  Rng rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    const int backends = 2 + static_cast<int>(rng.NextBounded(5));
    HbaConfig hcfg;
    hcfg.backend_bytes = 16ull << 20;
    hcfg.mega_bytes = 1ull << 20;
    GlobalBlobAllocator g1(backends, hcfg), g2(backends, hcfg);
    std::vector<uint32_t> credits(static_cast<size_t>(backends));
    for (auto& c : credits) c = static_cast<uint32_t>(rng.NextBounded(64));
    auto credit_of = [&credits](int b) {
      return credits[static_cast<size_t>(b)];
    };
    LocalBlobAllocator plain(g1, credit_of);
    LocalBlobAllocator mapped(g2, credit_of);
    // Identity map: node == backend, the documented no-map equivalence.
    std::vector<int> identity(static_cast<size_t>(backends));
    for (int b = 0; b < backends; ++b) identity[b] = b;
    mapped.SetNodeMap(identity);
    for (int ex = -1; ex < backends; ++ex) {
      EXPECT_EQ(plain.PreferredBackend(ex), mapped.PreferredBackend(ex))
          << "backends=" << backends << " exclude=" << ex;
    }
  }
}

// End-to-end: a whole-node outage mid-YCSB forces degraded writes; after
// the node heals, the rebuild scanner re-replicates every dirty blob. The
// checker's kv.placement.domain invariant observes every replicated write
// in the run, so a silent checker plus a drained ledger proves every blob
// ended node-disjoint again.
TEST(RackPlacement, RebuildRestoresNodeDisjointReplicas) {
  check::InvariantChecker chk(/*fail_fast=*/false);
  obs::Observability obs;
  KvClusterConfig cfg;
  cfg.testbed.num_ssds = 4;
  cfg.testbed.nodes = 2;
  cfg.testbed.target.cores = 2;
  cfg.testbed.scheme = workload::Scheme::kGimbal;
  cfg.testbed.ssd.logical_bytes = 128ull << 20;
  cfg.testbed.condition = workload::SsdCondition::kClean;
  cfg.testbed.faults.node_failures.push_back(
      {1, Milliseconds(20), Milliseconds(80)});
  cfg.testbed.check = &chk;
  cfg.testbed.obs = &obs;
  cfg.testbed.retry.io_timeout = Milliseconds(2);
  cfg.hba.backend_bytes = 128ull << 20;
  cfg.db.memtable_bytes = 256 * 1024;
  cfg.db.sstable_target_bytes = 256 * 1024;
  cfg.db.level1_bytes = 1 << 20;
  KvCluster cluster(cfg);

  std::vector<KvCluster::Instance*> insts;
  std::vector<std::unique_ptr<YcsbClient>> clients;
  for (int i = 0; i < 2; ++i) {
    auto& inst = cluster.AddInstance();
    insts.push_back(&inst);
    inst.db->BulkLoad(4'000, 1024);
    workload::YcsbSpec spec;
    spec.workload = workload::YcsbWorkload::kA;
    spec.record_count = 4'000;
    spec.seed = 11 + static_cast<uint64_t>(i);
    clients.push_back(std::make_unique<YcsbClient>(cluster.sim(), *inst.db,
                                                   spec, /*concurrency=*/4));
  }
  for (auto& c : clients) c->Start();
  cluster.sim().RunUntil(Milliseconds(150));
  for (auto& c : clients) c->Stop();
  cluster.sim().RunUntil(Milliseconds(600));
  for (auto& ini : cluster.bed().initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  cluster.sim().Run();
  cluster.bed().FlushObservability();

  uint64_t dirty_recorded = 0;
  for (size_t i = 0; i < insts.size(); ++i) {
    const auto& bs = insts[i]->blobs->stats();
    dirty_recorded += bs.dirty_recorded;
    // Drained: no blob is missing a replica.
    EXPECT_EQ(insts[i]->blobs->dirty_count(), 0u) << "inst " << i;
    EXPECT_EQ(bs.dirty_repaired + bs.dirty_dropped, bs.dirty_recorded)
        << "inst " << i;
  }
  // The outage must actually have broken replica pairs, or this proves
  // nothing.
  EXPECT_GT(dirty_recorded, 0u);
  EXPECT_TRUE(chk.CheckDrained());
  EXPECT_TRUE(chk.ok());
  for (const auto& v : chk.violations()) {
    EXPECT_NE(v.invariant, "kv.placement.domain") << v.detail;
  }
}

}  // namespace
}  // namespace gimbal::kv
