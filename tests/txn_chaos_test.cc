// Transactional chaos sweep (docs/TESTING.md): TPC-C-lite terminals
// running multi-key transactions under strict 2PL while the fault injector
// runs media-error bursts, a replica outage, and staggered backend kills.
// Every mix × seed must satisfy, with a collect-everything
// (fail_fast=false) invariant checker:
//   * no committed transaction is ever lost (txn.commit.lost never fires),
//   * lock ledgers balance (drain.txn.locks silent, tables idle),
//   * every submitted transaction reaches a terminal state,
//   * the serializability oracle saw zero stamp mismatches,
//   * the merged trace digest is bit-identical at --threads=1/2/4.
//
// The mixes are deliberately non-crash: a process crash can leave a
// durable-but-unacked WAL write whose replayed stamp the oracle never
// advanced to — a legitimate recovery artifact, not a 2PL bug. Crash
// coverage lives in kv_chaos_test.cc.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "kv/cluster.h"
#include "kv/txn.h"
#include "obs/obs.h"

namespace gimbal::kv {
namespace {

constexpr size_t kTraceLimit = 4u << 20;

std::string ViolationReport(const check::InvariantChecker& chk) {
  std::string out;
  size_t shown = std::min<size_t>(chk.violations().size(), 3);
  for (size_t i = 0; i < shown; ++i) {
    const auto& v = chk.violations()[i];
    out += "\n  [" + std::to_string(v.when) + "] " + v.invariant +
           " tenant=" + std::to_string(v.tenant) +
           " ssd=" + std::to_string(v.ssd) + ": " + v.detail;
  }
  if (chk.violations().size() > shown) {
    out += "\n  ... and " + std::to_string(chk.violations().size() - shown) +
           " more";
  }
  return out;
}

enum class Mix {
  kMediaBothSsds,  // correlated media-error bursts on both backends
  kReplicaOutage,  // one backend dark for 60ms, then recovers
  kStaggeredKill,  // both backends fail, staggered, both recover
};
constexpr Mix kAllMixes[] = {Mix::kMediaBothSsds, Mix::kReplicaOutage,
                             Mix::kStaggeredKill};
constexpr TxnProtocol kAllProtocols[] = {
    TxnProtocol::kNoWait, TxnProtocol::kWaitDie, TxnProtocol::kWoundWait};

const char* Name(Mix m) {
  switch (m) {
    case Mix::kMediaBothSsds: return "media-both";
    case Mix::kReplicaOutage: return "replica-outage";
    case Mix::kStaggeredKill: return "staggered-kill";
  }
  return "?";
}

// All faults heal before the drain window so every mix can assert full
// convergence (same windows as kv_chaos_test.cc).
fault::FaultPlan PlanFor(Mix m) {
  fault::FaultPlan plan;
  switch (m) {
    case Mix::kMediaBothSsds:
      plan.media_errors.push_back(
          {0, Milliseconds(20), Milliseconds(120), 0.25, Microseconds(150)});
      plan.media_errors.push_back(
          {1, Milliseconds(30), Milliseconds(110), 0.25, Microseconds(150)});
      break;
    case Mix::kReplicaOutage:
      plan.failures.push_back({1, Milliseconds(20), Milliseconds(80)});
      break;
    case Mix::kStaggeredKill:
      plan.failures.push_back({0, Milliseconds(20), Milliseconds(60)});
      plan.failures.push_back({1, Milliseconds(70), Milliseconds(110)});
      break;
  }
  return plan;
}

struct ChaosOutcome {
  uint64_t submitted = 0;
  uint64_t commits = 0;
  uint64_t failed = 0;
  uint64_t digest = 0;
};

// One chaos run: 2 DB instances over 2 replicated backends, one TPC-C-lite
// coordinator per instance on a single hot warehouse, faults per `mix`,
// full drain, all convergence asserts.
ChaosOutcome RunChaos(Mix mix, TxnProtocol protocol, uint64_t seed,
                      int threads) {
  check::InvariantChecker chk(/*fail_fast=*/false);
  obs::Observability obs;
  obs.tracer.Enable(kTraceLimit);

  KvClusterConfig cfg;
  cfg.testbed.num_ssds = 2;
  cfg.testbed.scheme = workload::Scheme::kGimbal;
  cfg.testbed.ssd.logical_bytes = 128ull << 20;
  cfg.testbed.condition = workload::SsdCondition::kClean;
  cfg.testbed.faults = PlanFor(mix);
  cfg.testbed.fault_seed = seed;
  cfg.testbed.check = &chk;
  cfg.testbed.obs = &obs;
  cfg.testbed.threads = threads;
  cfg.hba.backend_bytes = 128ull << 20;
  cfg.db.memtable_bytes = 256 * 1024;  // rotate often: WAL + flush traffic
  cfg.db.sstable_target_bytes = 256 * 1024;
  cfg.db.level1_bytes = 1 << 20;

  KvCluster cluster(cfg);
  std::vector<std::unique_ptr<TxnCoordinator>> coords;
  std::vector<std::unique_ptr<TxnClient>> clients;
  for (int i = 0; i < 2; ++i) {
    auto& inst = cluster.AddInstance();
    TxnCoordinator::Config ccfg;
    ccfg.protocol = protocol;
    ccfg.max_attempts = 0;  // retry until committed; drain sets give_up
    coords.push_back(
        std::make_unique<TxnCoordinator>(cluster.sim(), *inst.db, ccfg));
    coords.back()->AttachObservability(&obs, inst.id);
    coords.back()->AttachChecker(&chk);
    workload::TpccSpec spec;
    spec.warehouses = 1;  // every terminal on the same hot rows
    spec.seed = seed * 97 + static_cast<uint64_t>(i);
    clients.push_back(std::make_unique<TxnClient>(
        cluster.sim(), *coords.back(), spec, /*concurrency=*/4));
  }

  for (auto& c : clients) c->Start();
  cluster.sim().RunUntil(Milliseconds(150));
  // Faults have healed. Stop the terminals, let in-flight transactions
  // terminate (aborted attempts stop retrying), then drain the fabric.
  for (auto& c : clients) c->Stop();
  for (auto& co : coords) co->set_give_up(true);
  cluster.sim().RunUntil(Milliseconds(600));
  for (auto& ini : cluster.bed().initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  cluster.sim().Run();
  cluster.bed().FlushObservability();

  std::string label = std::string(Name(mix)) + "/" + ToString(protocol) +
                      " seed=" + std::to_string(seed) +
                      " t=" + std::to_string(threads);
  ChaosOutcome out;
  for (int i = 0; i < 2; ++i) {
    const auto& cs = coords[static_cast<size_t>(i)]->stats();
    out.submitted += cs.submitted;
    out.commits += cs.commits;
    out.failed += cs.failed;
    // The oracle is the serializability witness: a lock manager that let a
    // writer slip past a held lock shows up here, chaos or not.
    EXPECT_EQ(cs.stamp_mismatches, 0u) << label << " inst " << i;
    // Strict 2PL drained: every lock came back.
    EXPECT_TRUE(coords[static_cast<size_t>(i)]->locks().idle())
        << label << " inst " << i;
    // Each held key releases exactly once; upgrades are acquires that do
    // not add a key: acquires = releases + upgrades.
    const auto& ls = coords[static_cast<size_t>(i)]->locks().stats();
    EXPECT_EQ(ls.acquires, ls.releases + ls.upgrades)
        << label << " inst " << i;
  }
  EXPECT_GT(out.commits, 0u) << label;
  EXPECT_EQ(out.submitted, out.commits + out.failed) << label;
  // The collect-everything checker: txn.commit.lost (a committed
  // transaction whose write lost its last durable copy), drain.txn.locks
  // (unbalanced lock ledger) and every other invariant must be silent.
  EXPECT_TRUE(chk.CheckDrained()) << label << ViolationReport(chk);
  EXPECT_TRUE(chk.ok()) << label << ViolationReport(chk);
  for (const auto& v : chk.violations()) {
    EXPECT_NE(v.invariant, "txn.commit.lost") << label << ": " << v.detail;
    EXPECT_NE(v.invariant, "drain.txn.locks") << label << ": " << v.detail;
  }
  out.digest = obs.tracer.Digest();
  EXPECT_EQ(obs.tracer.dropped(), 0u) << label;
  return out;
}

// Satellite: every fault mix × 3 seeds survives with zero lost committed
// transactions and balanced lock ledgers; rotating the protocol with the
// seed gives every protocol × mix pair exactly one run.
TEST(TxnChaos, SweepAllMixesAndSeeds) {
  const uint64_t seeds[] = {1, 7, 23};
  for (int m = 0; m < 3; ++m) {
    for (int s = 0; s < 3; ++s) {
      RunChaos(kAllMixes[m], kAllProtocols[(m + s) % 3], seeds[s],
               /*threads=*/1);
    }
  }
}

// Determinism contract under chaos: the merged trace digest is
// bit-identical at any worker-thread count. ("Sharded" in the name keys
// this test into the TSan CI shard.)
TEST(TxnChaos, ShardedDigestIdenticalAcrossThreadCounts) {
  ChaosOutcome t1 =
      RunChaos(Mix::kMediaBothSsds, TxnProtocol::kWaitDie, 5, /*threads=*/1);
  ChaosOutcome t2 =
      RunChaos(Mix::kMediaBothSsds, TxnProtocol::kWaitDie, 5, /*threads=*/2);
  ChaosOutcome t4 =
      RunChaos(Mix::kMediaBothSsds, TxnProtocol::kWaitDie, 5, /*threads=*/4);
  EXPECT_EQ(t1.digest, t2.digest);
  EXPECT_EQ(t1.digest, t4.digest);
  EXPECT_EQ(t1.commits, t2.commits);
  EXPECT_EQ(t1.commits, t4.commits);
}

}  // namespace
}  // namespace gimbal::kv
