// Fault-injection subsystem (docs/FAULTS.md): injector windows and health
// transitions, retry backoff arithmetic, schedule determinism, and the
// end-to-end crash → keepalive-timeout → reap path.
#include <gtest/gtest.h>

#include <vector>

#include "fabric/initiator.h"
#include "fault/fault.h"
#include "fault/health.h"
#include "obs/obs.h"
#include "obs/schema.h"
#include "workload/runner.h"

namespace gimbal {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::SsdHealth;
using workload::FioSpec;
using workload::Scheme;
using workload::SsdCondition;
using workload::Testbed;
using workload::TestbedConfig;

// --------------------------------------------------------------------------
// Health state machine.
// --------------------------------------------------------------------------

TEST(SsdHealthTest, TransitionTable) {
  using H = SsdHealth;
  // Legal edges of the diagram in fault/health.h.
  EXPECT_TRUE(fault::ValidTransition(H::kHealthy, H::kDegraded));
  EXPECT_TRUE(fault::ValidTransition(H::kHealthy, H::kFailed));
  EXPECT_TRUE(fault::ValidTransition(H::kDegraded, H::kHealthy));
  EXPECT_TRUE(fault::ValidTransition(H::kDegraded, H::kFailed));
  EXPECT_TRUE(fault::ValidTransition(H::kFailed, H::kRecovering));
  EXPECT_TRUE(fault::ValidTransition(H::kRecovering, H::kHealthy));
  EXPECT_TRUE(fault::ValidTransition(H::kRecovering, H::kFailed));
  // Self-transitions are no-ops, not errors.
  EXPECT_TRUE(fault::ValidTransition(H::kFailed, H::kFailed));
  // A dead device cannot silently resurrect.
  EXPECT_FALSE(fault::ValidTransition(H::kFailed, H::kHealthy));
  EXPECT_FALSE(fault::ValidTransition(H::kFailed, H::kDegraded));
  EXPECT_FALSE(fault::ValidTransition(H::kHealthy, H::kRecovering));
  EXPECT_FALSE(fault::ValidTransition(H::kDegraded, H::kRecovering));
}

TEST(SsdHealthTest, MachineIgnoresInvalidTransitions) {
  fault::SsdHealthMachine m;
  EXPECT_EQ(m.health(), SsdHealth::kHealthy);
  EXPECT_TRUE(m.Set(SsdHealth::kDegraded, 0));
  EXPECT_TRUE(m.Set(SsdHealth::kFailed, 0));
  // A stall window ending after the device failed must not resurrect it.
  EXPECT_FALSE(m.Set(SsdHealth::kHealthy, 0));
  EXPECT_EQ(m.health(), SsdHealth::kFailed);
  EXPECT_TRUE(m.Set(SsdHealth::kRecovering, 0));
  EXPECT_TRUE(m.Set(SsdHealth::kHealthy, 0));
  // Same-state set reports no change.
  EXPECT_FALSE(m.Set(SsdHealth::kHealthy, 0));
}

// --------------------------------------------------------------------------
// Retry backoff arithmetic.
// --------------------------------------------------------------------------

TEST(RetryTest, BackoffDoublesUntilCap) {
  fabric::RetryParams p;
  p.backoff_base = Microseconds(50);
  p.backoff_cap = Milliseconds(5);
  EXPECT_EQ(fabric::BackoffFor(p, 1), Microseconds(50));
  EXPECT_EQ(fabric::BackoffFor(p, 2), Microseconds(100));
  EXPECT_EQ(fabric::BackoffFor(p, 3), Microseconds(200));
  EXPECT_EQ(fabric::BackoffFor(p, 4), Microseconds(400));
  // 50us * 2^7 = 6.4ms clamps to the cap.
  EXPECT_EQ(fabric::BackoffFor(p, 8), Milliseconds(5));
  // And stays there no matter how deep the retry chain goes.
  EXPECT_EQ(fabric::BackoffFor(p, 60), Milliseconds(5));
}

// --------------------------------------------------------------------------
// Injector windows drive IO decisions and health.
// --------------------------------------------------------------------------

TEST(FaultInjectorTest, WindowsForceStatusesAndHealth) {
  sim::Simulator sim;
  FaultInjector inj(sim, /*num_ssds=*/2, /*seed=*/7);
  FaultPlan plan;
  plan.media_errors.push_back(
      {0, Microseconds(10), Microseconds(20), 1.0, Microseconds(5)});
  plan.stalls.push_back(
      {1, Microseconds(10), Microseconds(20), Microseconds(3)});
  plan.failures.push_back({0, Microseconds(30), Microseconds(40)});
  plan.recovery_probation = Microseconds(5);
  inj.Schedule(plan);

  std::vector<SsdHealth> seen;
  inj.Subscribe(0, [&seen](SsdHealth h) { seen.push_back(h); });

  // Before any window: clean pass-through.
  auto f = inj.OnDeviceSubmit(0, IoType::kRead, sim.now());
  EXPECT_EQ(f.force_status, IoStatus::kOk);
  EXPECT_EQ(f.extra_latency, 0);

  sim.RunUntil(Microseconds(15));
  f = inj.OnDeviceSubmit(0, IoType::kRead, sim.now());
  EXPECT_EQ(f.force_status, IoStatus::kMediaError);  // p = 1.0
  EXPECT_EQ(f.fault_latency, Microseconds(5));
  auto s = inj.OnDeviceSubmit(1, IoType::kWrite, sim.now());
  EXPECT_EQ(s.force_status, IoStatus::kOk);
  EXPECT_EQ(s.extra_latency, Microseconds(3));
  EXPECT_EQ(inj.health(0), SsdHealth::kDegraded);
  EXPECT_EQ(inj.health(1), SsdHealth::kDegraded);

  sim.RunUntil(Microseconds(25));
  EXPECT_EQ(inj.health(0), SsdHealth::kHealthy);
  EXPECT_EQ(inj.health(1), SsdHealth::kHealthy);
  EXPECT_EQ(inj.OnDeviceSubmit(0, IoType::kRead, sim.now()).force_status,
            IoStatus::kOk);

  sim.RunUntil(Microseconds(35));
  EXPECT_EQ(inj.health(0), SsdHealth::kFailed);
  f = inj.OnDeviceSubmit(0, IoType::kRead, sim.now());
  EXPECT_EQ(f.force_status, IoStatus::kDeviceFailed);

  sim.RunUntil(Microseconds(42));
  EXPECT_EQ(inj.health(0), SsdHealth::kRecovering);
  sim.RunUntil(Microseconds(50));  // probation over at 45us
  EXPECT_EQ(inj.health(0), SsdHealth::kHealthy);

  EXPECT_EQ(seen, (std::vector<SsdHealth>{
                      SsdHealth::kDegraded, SsdHealth::kHealthy,
                      SsdHealth::kFailed, SsdHealth::kRecovering,
                      SsdHealth::kHealthy}));
  EXPECT_GE(inj.counters().media_errors, 1u);
  EXPECT_GE(inj.counters().device_failed_ios, 1u);
  EXPECT_GE(inj.counters().stalled_ios, 1u);
}

TEST(FaultInjectorTest, LinkFlapDropsAndDelays) {
  sim::Simulator sim;
  FaultInjector inj(sim, 1, /*seed=*/3);
  FaultPlan plan;
  // Certain drop in the first window, pure delay in the second.
  plan.link_flaps.push_back({Microseconds(10), Microseconds(20), 1.0, 0});
  plan.link_flaps.push_back(
      {Microseconds(30), Microseconds(40), 0.0, Microseconds(2)});
  inj.Schedule(plan);

  EXPECT_FALSE(inj.OnLinkMessage(Microseconds(5)).drop);
  EXPECT_TRUE(inj.OnLinkMessage(Microseconds(15)).drop);
  auto l = inj.OnLinkMessage(Microseconds(35));
  EXPECT_FALSE(l.drop);
  EXPECT_EQ(l.extra_delay, Microseconds(2));
  EXPECT_FALSE(inj.OnLinkMessage(Microseconds(45)).drop);
  EXPECT_GE(inj.counters().link_dropped, 1u);
  EXPECT_GE(inj.counters().link_delayed, 1u);
}

// --------------------------------------------------------------------------
// End-to-end scenarios on the testbed.
// --------------------------------------------------------------------------

struct ScenarioResult {
  uint64_t bytes[2] = {0, 0};
  uint64_t failed[2] = {0, 0};
  uint64_t retries[2] = {0, 0};
  uint64_t timeouts[2] = {0, 0};
  FaultInjector::FaultCounters faults;
};

TestbedConfig FaultedConfig(uint64_t seed) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.condition = SsdCondition::kClean;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.fault_seed = seed;
  cfg.retry.io_timeout = Milliseconds(2);
  cfg.retry.keepalive_interval = Milliseconds(1);
  cfg.target.session_timeout = Milliseconds(5);
  cfg.faults.stalls.push_back(
      {0, Milliseconds(10), Milliseconds(20), Microseconds(500)});
  cfg.faults.media_errors.push_back(
      {0, Milliseconds(25), Milliseconds(35), 0.1, Microseconds(200)});
  cfg.faults.link_flaps.push_back(
      {Milliseconds(30), Milliseconds(34), 0.05, Microseconds(10)});
  cfg.faults.failures.push_back({0, Milliseconds(40), Milliseconds(45)});
  return cfg;
}

ScenarioResult RunFaultedScenario(uint64_t seed) {
  Testbed bed(FaultedConfig(seed));
  for (int i = 0; i < 2; ++i) {
    FioSpec spec;
    spec.io_bytes = 4096;
    spec.queue_depth = 8;
    spec.seed = 100 + static_cast<uint64_t>(i);
    bed.AddWorker(spec, 0);
  }
  for (auto& w : bed.workers()) w->Start();
  bed.sim().RunUntil(Milliseconds(60));
  for (auto& w : bed.workers()) w->Stop();
  for (auto& ini : bed.initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  bed.sim().Run();

  ScenarioResult r;
  for (int i = 0; i < 2; ++i) {
    r.bytes[i] = bed.workers()[i]->stats().total_bytes();
    r.failed[i] = bed.workers()[i]->stats().failed_ios;
    r.retries[i] = bed.workers()[i]->initiator().retries();
    r.timeouts[i] = bed.workers()[i]->initiator().timeouts();
  }
  r.faults = bed.faults().counters();
  return r;
}

TEST(FaultE2eTest, SameSeedSameSchedule) {
  const ScenarioResult a = RunFaultedScenario(11);
  const ScenarioResult b = RunFaultedScenario(11);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(a.bytes[i], b.bytes[i]) << "tenant " << i;
    EXPECT_EQ(a.failed[i], b.failed[i]) << "tenant " << i;
    EXPECT_EQ(a.retries[i], b.retries[i]) << "tenant " << i;
    EXPECT_EQ(a.timeouts[i], b.timeouts[i]) << "tenant " << i;
  }
  EXPECT_EQ(a.faults.media_errors, b.faults.media_errors);
  EXPECT_EQ(a.faults.device_failed_ios, b.faults.device_failed_ios);
  EXPECT_EQ(a.faults.stalled_ios, b.faults.stalled_ios);
  EXPECT_EQ(a.faults.link_dropped, b.faults.link_dropped);
  EXPECT_EQ(a.faults.link_delayed, b.faults.link_delayed);
  // The plan actually fired: the device failure window fails IOs (either
  // at the device or fail-fast in the switch) and both tenants progressed.
  EXPECT_GT(a.failed[0] + a.failed[1], 0u);
  EXPECT_GT(a.bytes[0], 0u);
  EXPECT_GT(a.bytes[1], 0u);
}

TEST(FaultE2eTest, CrashedTenantIsReapedAndLeavesNoState) {
  obs::Observability obs;
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.condition = SsdCondition::kClean;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.retry.io_timeout = Milliseconds(2);
  cfg.retry.keepalive_interval = Milliseconds(1);
  cfg.target.session_timeout = Milliseconds(5);
  cfg.obs = &obs;
  cfg.run_label = "crash_test";
  Testbed bed(cfg);
  for (int i = 0; i < 2; ++i) {
    FioSpec spec;
    spec.io_bytes = 4096;
    spec.queue_depth = 8;
    spec.seed = 200 + static_cast<uint64_t>(i);
    bed.AddWorker(spec, 0);
  }
  fabric::Initiator& crasher = bed.workers()[0]->initiator();
  bed.faults().ScheduleTenantCrash(Milliseconds(20), crasher.tenant(),
                                   [&crasher]() { crasher.Crash(); });
  for (auto& w : bed.workers()) w->Start();
  bed.sim().RunUntil(Milliseconds(60));
  for (auto& w : bed.workers()) w->Stop();
  for (auto& ini : bed.initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  bed.sim().Run();

  EXPECT_TRUE(crasher.crashed());
  EXPECT_EQ(bed.faults().counters().crashes, 1u);
  // Keepalives stopped at the crash; the reaper noticed within
  // session_timeout and disconnected the tenant at the target.
  EXPECT_EQ(bed.target().sessions_reaped(), 1u);
  EXPECT_EQ(bed.target().session_count(), 0u);
  // No scheduler state survives the reap + graceful shutdowns.
  EXPECT_EQ(bed.gimbal_switch(0)->scheduler().tenant_count(), 0u);
  // The surviving tenant kept running after the crash.
  EXPECT_GT(bed.workers()[1]->stats().total_bytes(), 0u);

  // Every admitted IO of both tenants reached exactly one terminal status.
  for (auto& ini : bed.initiators()) {
    const obs::Labels l = obs::Labels::TenantSsd(
        static_cast<int32_t>(ini->tenant()), ini->pipeline());
    const uint64_t submitted =
        obs.metrics.GetCounter(obs::schema::kInitiatorSubmitted, l).value();
    const uint64_t terminal =
        obs.metrics.GetCounter(obs::schema::kClientCompleted, l).value() +
        obs.metrics.GetCounter(obs::schema::kClientFailed, l).value();
    EXPECT_EQ(submitted, terminal) << "tenant " << ini->tenant();
    EXPECT_GT(submitted, 0u) << "tenant " << ini->tenant();
  }
}

// --------------------------------------------------------------------------
// Timer lifecycle: the cancellable-timer adoption (docs/SIMULATOR.md).
// --------------------------------------------------------------------------

// A completion cancels the IO's timeout timer outright. After the workload
// drains and the initiators shut down (cancelling their keepalives), the
// event queue is empty *now* — no fired-and-ignored timeout events linger
// until io_timeout later.
TEST(TimerLifecycleTest, CompletionCancelsTimeoutTimerLeavingQueueEmpty) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kVanilla;
  cfg.condition = SsdCondition::kClean;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.retry.io_timeout = Milliseconds(500);  // far beyond the whole run
  cfg.retry.keepalive_interval = Milliseconds(1);
  Testbed bed(cfg);
  FioSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 8;
  spec.seed = 5;
  bed.AddWorker(spec, 0);
  bed.workers()[0]->Start();
  bed.sim().RunUntil(Milliseconds(10));
  bed.workers()[0]->Stop();
  bed.sim().RunUntil(Milliseconds(20));  // drain in-flight IOs
  for (auto& ini : bed.initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  bed.sim().RunUntil(Milliseconds(30));  // flush the disconnect capsule
  EXPECT_GT(bed.workers()[0]->stats().total_bytes(), 0u);
  // No IO timed out...
  EXPECT_EQ(bed.workers()[0]->initiator().timeouts(), 0u);
  // ...and no timer is still parked: every armed timeout was cancelled by
  // its completion, the keepalive by Shutdown.
  EXPECT_EQ(bed.sim().pending_events(), 0u);
}

// A stall longer than io_timeout makes IOs time out and *then* complete at
// the device. The late completion must not double-count: every submitted
// IO reaches exactly one terminal status.
TEST(TimerLifecycleTest, LateCompletionAfterFiredTimeoutCountsOnce) {
  obs::Observability obs;
  TestbedConfig cfg;
  cfg.scheme = Scheme::kVanilla;
  cfg.condition = SsdCondition::kClean;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.retry.io_timeout = Milliseconds(1);
  // No retry budget: the first fired timeout is terminal, so the stalled
  // device's eventual completion can only arrive as a late completion.
  cfg.retry.max_retries = 0;
  cfg.retry.keepalive_interval = Milliseconds(1);
  cfg.obs = &obs;
  cfg.run_label = "late_completion";
  // Every IO in the window takes ~4ms extra — 4x the timeout.
  cfg.faults.stalls.push_back(
      {0, Milliseconds(5), Milliseconds(15), Milliseconds(4)});
  Testbed bed(cfg);
  FioSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 4;
  spec.seed = 6;
  bed.AddWorker(spec, 0);
  bed.workers()[0]->Start();
  bed.sim().RunUntil(Milliseconds(30));
  bed.workers()[0]->Stop();
  for (auto& ini : bed.initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  bed.sim().Run();

  fabric::Initiator& ini = bed.workers()[0]->initiator();
  EXPECT_GT(ini.timeouts(), 0u);
  EXPECT_GT(ini.late_completions(), 0u);
  const obs::Labels l = obs::Labels::TenantSsd(
      static_cast<int32_t>(ini.tenant()), ini.pipeline());
  const uint64_t submitted =
      obs.metrics.GetCounter(obs::schema::kInitiatorSubmitted, l).value();
  const uint64_t terminal =
      obs.metrics.GetCounter(obs::schema::kClientCompleted, l).value() +
      obs.metrics.GetCounter(obs::schema::kClientFailed, l).value();
  EXPECT_EQ(submitted, terminal);
  EXPECT_GT(submitted, 0u);
}

// Crash() cancels the keepalive timer for good: once the reaper collects
// the dead session, no stray keepalive re-registers it, across many
// keepalive intervals.
TEST(TimerLifecycleTest, CrashedTenantKeepaliveDoesNotResurrectSession) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.condition = SsdCondition::kClean;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.retry.io_timeout = Milliseconds(2);
  cfg.retry.keepalive_interval = Milliseconds(1);
  cfg.target.session_timeout = Milliseconds(5);
  Testbed bed(cfg);
  FioSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 8;
  spec.seed = 7;
  bed.AddWorker(spec, 0);
  fabric::Initiator& crasher = bed.workers()[0]->initiator();
  bed.faults().ScheduleTenantCrash(Milliseconds(10), crasher.tenant(),
                                   [&crasher]() { crasher.Crash(); });
  bed.workers()[0]->Start();
  // Past crash + 1.5x session_timeout: the reap has happened.
  bed.sim().RunUntil(Milliseconds(20));
  EXPECT_TRUE(crasher.crashed());
  EXPECT_EQ(bed.target().sessions_reaped(), 1u);
  EXPECT_EQ(bed.target().session_count(), 0u);
  // 30 more keepalive intervals: a surviving keepalive timer would have
  // re-touched the session by now.
  bed.sim().RunUntil(Milliseconds(50));
  EXPECT_EQ(bed.target().sessions_reaped(), 1u);
  EXPECT_EQ(bed.target().session_count(), 0u);
  bed.workers()[0]->Stop();
  bed.sim().Run();
}

// Tearing down a fault plan cancels every scheduled window edge; the
// injector reports none pending and the events never fire.
TEST(TimerLifecycleTest, CancelScheduledTearsDownFaultPlan) {
  sim::Simulator sim;
  FaultInjector inj(sim, 1);
  FaultPlan plan;
  plan.stalls.push_back(
      {0, Milliseconds(10), Milliseconds(20), Microseconds(500)});
  plan.failures.push_back({0, Milliseconds(30), Milliseconds(40)});
  inj.Schedule(plan);
  EXPECT_GT(inj.pending_scheduled(), 0u);
  EXPECT_EQ(inj.pending_scheduled(), sim.pending_events());
  inj.CancelScheduled();
  EXPECT_EQ(inj.pending_scheduled(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.Run();
  // No transition ever fired.
  EXPECT_EQ(inj.health(0), SsdHealth::kHealthy);
}

}  // namespace
}  // namespace gimbal
