// Unit tests for the Gimbal core components: latency monitor (dynamic
// threshold + congestion states), dual token bucket, write-cost estimator,
// rate controller (Algorithm 1), virtual slots and the DRR scheduler
// (Algorithm 2).
#include <gtest/gtest.h>

#include "core/drr_scheduler.h"
#include "core/latency_monitor.h"
#include "core/params.h"
#include "core/rate_controller.h"
#include "core/token_bucket.h"
#include "core/virtual_slot.h"
#include "core/write_cost.h"

namespace gimbal::core {
namespace {

GimbalParams Params() { return GimbalParams{}; }

// ---------------------------------------------------------------------------
// LatencyMonitor
// ---------------------------------------------------------------------------

TEST(LatencyMonitor, LowLatencyIsUnderUtilized) {
  GimbalParams p = Params();
  LatencyMonitor m(p);
  EXPECT_EQ(m.Update(Microseconds(100)), CongestionState::kUnderUtilized);
}

TEST(LatencyMonitor, AboveMaxIsOverloaded) {
  GimbalParams p = Params();
  LatencyMonitor m(p);
  EXPECT_EQ(m.Update(Microseconds(5000)), CongestionState::kOverloaded);
  EXPECT_DOUBLE_EQ(m.threshold(), static_cast<double>(p.thresh_max));
}

TEST(LatencyMonitor, ThresholdDecaysTowardEwma) {
  GimbalParams p = Params();
  LatencyMonitor m(p);
  double t0 = m.threshold();
  m.Update(Microseconds(400));  // between min and initial threshold
  EXPECT_LT(m.threshold(), t0);
  // alpha_T = 0.5: threshold moves halfway toward the EWMA.
  EXPECT_NEAR(m.threshold(), (t0 + 400e3) / 2, 1);
}

TEST(LatencyMonitor, CongestionSignalWhenEwmaCrossesThreshold) {
  GimbalParams p = Params();
  LatencyMonitor m(p);
  // Drive the threshold down with moderate latencies...
  for (int i = 0; i < 20; ++i) m.Update(Microseconds(400));
  double low_thresh = m.threshold();
  EXPECT_LT(low_thresh, Microseconds(500));
  // ...then a latency jump crosses it -> congested, threshold jumps halfway
  // to max.
  CongestionState s = m.Update(Microseconds(900));
  EXPECT_EQ(s, CongestionState::kCongested);
  EXPECT_GT(m.threshold(), low_thresh);
  EXPECT_LE(m.threshold(), static_cast<double>(p.thresh_max));
}

TEST(LatencyMonitor, SignalsMoreFrequentNearMax) {
  // Once the threshold has jumped near max, smaller increases re-trigger.
  GimbalParams p = Params();
  LatencyMonitor m(p);
  for (int i = 0; i < 20; ++i) m.Update(Microseconds(400));
  m.Update(Microseconds(1200));  // first signal
  double t1 = m.threshold();
  int signals = 0;
  for (int i = 0; i < 20; ++i) {
    if (m.Update(Microseconds(1400)) == CongestionState::kCongested) ++signals;
  }
  EXPECT_GT(signals, 0);
  EXPECT_GE(m.threshold(), t1);
}

TEST(LatencyMonitor, ThresholdNeverBelowMin) {
  GimbalParams p = Params();
  LatencyMonitor m(p);
  for (int i = 0; i < 100; ++i) m.Update(Microseconds(50));
  EXPECT_GE(m.threshold(), static_cast<double>(p.thresh_min));
}

TEST(LatencyMonitor, StateNames) {
  EXPECT_STREQ(ToString(CongestionState::kOverloaded), "overloaded");
  EXPECT_STREQ(ToString(CongestionState::kUnderUtilized), "under-utilized");
}

// ---------------------------------------------------------------------------
// DualTokenBucket
// ---------------------------------------------------------------------------

TEST(DualTokenBucket, AccruesAtTargetRateSplitByWriteCost) {
  GimbalParams p = Params();
  DualTokenBucket b(p);
  b.Update(0, 100e6, /*write_cost=*/1.0);  // arms the clock
  b.Update(Milliseconds(1), 100e6, 1.0);   // 100 KB accrued, split 50/50
  EXPECT_NEAR(b.tokens(IoType::kRead), 50e3, 1e3);
  EXPECT_NEAR(b.tokens(IoType::kWrite), 50e3, 1e3);
}

TEST(DualTokenBucket, WriteCostSkewsSplit) {
  GimbalParams p = Params();
  DualTokenBucket b(p);
  b.Update(0, 100e6, 9.0);
  b.Update(Milliseconds(1), 100e6, 9.0);
  // Read bucket gets 9/10, write bucket 1/10.
  EXPECT_NEAR(b.tokens(IoType::kRead), 90e3, 1e3);
  EXPECT_NEAR(b.tokens(IoType::kWrite), 10e3, 1e3);
}

TEST(DualTokenBucket, OverflowTransfersBetweenBuckets) {
  GimbalParams p = Params();
  p.bucket_cap_bytes = 100 * 1024;
  DualTokenBucket b(p);
  b.Update(0, 800e6, 9.0);
  // After 2ms at 800 MB/s: 1.6 MB total; read share would be 1.44 MB but
  // caps at 100 KiB, spilling into the write bucket, which also caps.
  b.Update(Milliseconds(2), 800e6, 9.0);
  EXPECT_DOUBLE_EQ(b.tokens(IoType::kRead), 100.0 * 1024);
  EXPECT_DOUBLE_EQ(b.tokens(IoType::kWrite), 100.0 * 1024);
}

TEST(DualTokenBucket, ConsumeAndDiscard) {
  GimbalParams p = Params();
  DualTokenBucket b(p);
  b.Update(0, 100e6, 1.0);
  b.Update(Milliseconds(4), 100e6, 1.0);
  EXPECT_TRUE(b.HasTokens(IoType::kRead, 4096));
  b.Consume(IoType::kRead, 4096);
  double after = b.tokens(IoType::kRead);
  b.DiscardTokens();
  EXPECT_DOUBLE_EQ(b.tokens(IoType::kRead), 0);
  EXPECT_DOUBLE_EQ(b.tokens(IoType::kWrite), 0);
  EXPECT_GT(after, 0);
}

TEST(DualTokenBucket, NegativeBalanceAllowedViaConsume) {
  // The pacer admits an IO when tokens >= size; consuming exactly drains.
  GimbalParams p = Params();
  DualTokenBucket b(p);
  b.Update(0, 1e9, 1.0);
  b.Update(Milliseconds(1), 1e9, 1.0);  // 500 KB each side, capped at 256K
  EXPECT_TRUE(b.HasTokens(IoType::kWrite, 128 * 1024));
  b.Consume(IoType::kWrite, 128 * 1024);
  EXPECT_FALSE(b.HasTokens(IoType::kWrite, 256 * 1024));
}

TEST(DualTokenBucket, RefillEtaTrivialCases) {
  GimbalParams p = Params();
  DualTokenBucket b(p);
  b.Update(0, 100e6, 1.0);
  b.Update(Milliseconds(4), 100e6, 1.0);  // plenty on both sides
  EXPECT_EQ(b.RefillEta(IoType::kRead, 4096, 100e6, 1.0), 0);
  EXPECT_EQ(b.RefillEta(IoType::kWrite, 1 << 20, 0.0, 1.0),
            DualTokenBucket::kNever);
}

TEST(DualTokenBucket, RefillEtaWriteSideUsesSplitRate) {
  // Regression: with write cost 9 the write bucket earns only 1/(1+wc) =
  // 1/10 of the fill rate until the read bucket caps and spills. The old
  // estimate used the unsplit rate throughout, so write-side pacing pokes
  // fired up to 9x too early and Pump() busy-repolled with no tokens.
  GimbalParams p = Params();  // bucket_cap_bytes = 128 KiB
  DualTokenBucket b(p);
  b.Update(0, 100e6, 9.0);  // arm the clock; both buckets empty
  const uint64_t need = 128 * 1024;
  const Tick eta = b.RefillEta(IoType::kWrite, need, 100e6, 9.0);
  // Analytic: read side caps after 128 KiB / 90 MB/s ~ 1.46 ms, by which
  // the write side has ~14.6 KB; the rest arrives at the full 100 MB/s,
  // ~2.62 ms total. The naive unsplit estimate is 128 KiB / 100 MB/s
  // ~ 1.31 ms — firing there finds less than half the tokens.
  EXPECT_GT(eta, Microseconds(2500));
  EXPECT_LT(eta, Microseconds(2800));
  // The poke must not fire short: accruing until the ETA covers the IO...
  DualTokenBucket ok(p);
  ok.Update(0, 100e6, 9.0);
  ok.Update(eta, 100e6, 9.0);
  EXPECT_TRUE(ok.HasTokens(IoType::kWrite, need));
  // ...while the naive unsplit ETA would not even come close.
  DualTokenBucket early(p);
  early.Update(0, 100e6, 9.0);
  early.Update(Microseconds(1311), 100e6, 9.0);
  EXPECT_FALSE(early.HasTokens(IoType::kWrite, need));
}

TEST(DualTokenBucket, RefillEtaAccountsForSpillFromFullSibling) {
  // When the sibling bucket is already at capacity its share spills
  // immediately, so tokens arrive at the full rate from t=0.
  GimbalParams p = Params();
  DualTokenBucket b(p);
  b.Update(0, 800e6, 9.0);
  b.Update(Milliseconds(2), 800e6, 9.0);  // both buckets capped
  b.Consume(IoType::kWrite, 128 * 1024);  // drain the write side
  const Tick eta = b.RefillEta(IoType::kWrite, 128 * 1024, 100e6, 9.0);
  // 128 KiB at the full 100 MB/s ~ 1.31 ms; the split-rate-only estimate
  // would claim ~13 ms and stall the pacer for a decade of service time.
  EXPECT_GT(eta, Microseconds(1200));
  EXPECT_LT(eta, Microseconds(1450));
}

// ---------------------------------------------------------------------------
// WriteCostEstimator
// ---------------------------------------------------------------------------

TEST(WriteCost, StartsAtWorstCase) {
  GimbalParams p = Params();
  WriteCostEstimator w(p);
  EXPECT_DOUBLE_EQ(w.cost(), p.write_cost_worst);
}

TEST(WriteCost, DecaysWhileWritesAreFast) {
  GimbalParams p = Params();
  WriteCostEstimator w(p);
  // Buffered writes (~70us) are far below Thresh_min (250us).
  for (int i = 0; i < 16; ++i) w.PeriodicUpdate(70e3);
  EXPECT_DOUBLE_EQ(w.cost(), 1.0);  // floors at the read cost
}

TEST(WriteCost, JumpsHalfwayToWorstOnSlowWrites) {
  GimbalParams p = Params();
  WriteCostEstimator w(p);
  for (int i = 0; i < 16; ++i) w.PeriodicUpdate(70e3);
  ASSERT_DOUBLE_EQ(w.cost(), 1.0);
  w.PeriodicUpdate(800e3);  // above Thresh_min
  EXPECT_DOUBLE_EQ(w.cost(), (1.0 + p.write_cost_worst) / 2);
  w.PeriodicUpdate(800e3);
  EXPECT_GT(w.cost(), (1.0 + p.write_cost_worst) / 2);
}

TEST(WriteCost, IgnoresZeroLatency) {
  GimbalParams p = Params();
  WriteCostEstimator w(p);
  w.PeriodicUpdate(0);
  EXPECT_DOUBLE_EQ(w.cost(), p.write_cost_worst);
}

TEST(WriteCost, WeightedBytes) {
  GimbalParams p = Params();
  WriteCostEstimator w(p);
  EXPECT_EQ(w.WeightedBytes(false, 4096), 4096u);
  EXPECT_EQ(w.WeightedBytes(true, 4096), static_cast<uint64_t>(9 * 4096));
}

// ---------------------------------------------------------------------------
// RateController (Algorithm 1)
// ---------------------------------------------------------------------------

TEST(RateController, ProbesAggressivelyWhenUnderUtilized) {
  GimbalParams p = Params();
  RateController rc(p);
  double r0 = rc.target_rate();
  rc.OnCompletion(IoType::kRead, Microseconds(80), 128 * 1024, Microseconds(100));
  // under-utilized: +beta * size.
  EXPECT_NEAR(rc.target_rate(), r0 + p.beta * 128 * 1024, 1);
}

TEST(RateController, AdditiveIncreaseInCongestionAvoidance) {
  GimbalParams p = Params();
  RateController rc(p);
  // Latency between thresh_min and the (decayed) threshold.
  rc.OnCompletion(IoType::kRead, Microseconds(400), 4096, Microseconds(100));
  double r = rc.target_rate();
  rc.OnCompletion(IoType::kRead, Microseconds(400), 4096, Microseconds(200));
  EXPECT_NEAR(rc.target_rate(), r + 4096, 1);
}

TEST(RateController, DecreaseWhenCongested) {
  GimbalParams p = Params();
  RateController rc(p);
  // Drive threshold down, then spike to trigger congestion.
  for (int i = 0; i < 20; ++i) {
    rc.OnCompletion(IoType::kRead, Microseconds(400), 4096,
                    Microseconds(100 * (i + 1)));
  }
  double r = rc.target_rate();
  rc.OnCompletion(IoType::kRead, Microseconds(1000), 4096, Milliseconds(3));
  EXPECT_LT(rc.target_rate(), r);
}

TEST(RateController, OverloadSnapsToCompletionRate) {
  GimbalParams p = Params();
  p.completion_rate_window = Milliseconds(10);
  RateController rc(p);
  // Feed completions totalling ~40 MB over 10ms -> ~4 GB/s window rate,
  // then overload: rate snaps to the measured completion rate minus size.
  Tick t = 0;
  for (int i = 0; i < 400; ++i) {
    t += Microseconds(30);
    rc.OnCompletion(IoType::kRead, Microseconds(300), 128 * 1024, t);
  }
  double window_rate = rc.completion_rate();
  ASSERT_GT(window_rate, 0);
  // A 4 ms spike pushes the EWMA (alpha 0.5) past thresh_max: overloaded.
  rc.OnCompletion(IoType::kRead, Milliseconds(4), 128 * 1024,
                  t + Microseconds(30));
  EXPECT_NEAR(rc.target_rate(), window_rate - 128 * 1024, 1.0);
}

TEST(RateController, OverloadDiscardsTokens) {
  GimbalParams p = Params();
  RateController rc(p);
  // Buckets start empty (the clock arms on first use)...
  EXPECT_FALSE(rc.TrySubmit(IoType::kRead, 4096, Microseconds(0), 1.0));
  // ...and fill at the target rate: 2 ms at 400 MB/s is plenty for 4 KiB.
  ASSERT_TRUE(rc.TrySubmit(IoType::kRead, 4096, Milliseconds(2), 1.0));
  // Overload discards whatever accrued.
  rc.OnCompletion(IoType::kRead, Milliseconds(5), 4096, Milliseconds(2));
  EXPECT_DOUBLE_EQ(rc.bucket().tokens(IoType::kRead), 0);
}

TEST(RateController, RateNeverBelowFloor) {
  GimbalParams p = Params();
  RateController rc(p);
  for (int i = 0; i < 10000; ++i) {
    rc.OnCompletion(IoType::kRead, Milliseconds(10), 128 * 1024,
                    Microseconds(i * 10));
  }
  EXPECT_GE(rc.target_rate(), p.min_rate);
}

TEST(RateController, TrySubmitPacesToTargetRate) {
  GimbalParams p = Params();
  p.initial_rate = 8e6;  // 8 MB/s
  RateController rc(p);
  rc.TrySubmit(IoType::kRead, 1, 0, 1.0);  // arm the bucket clock
  // After 10ms at 8MB/s with cost 1: 40 KB in the read bucket.
  int admitted = 0;
  for (int i = 0; i < 32; ++i) {
    if (rc.TrySubmit(IoType::kRead, 4096, Milliseconds(10), 1.0)) ++admitted;
  }
  EXPECT_GE(admitted, 8);
  EXPECT_LE(admitted, 11);
}

TEST(RateController, PacingDelayEstimatesRefill) {
  GimbalParams p = Params();
  p.initial_rate = 1e6;  // 1 MB/s, read share 1/2 at cost 1
  RateController rc(p);
  rc.TrySubmit(IoType::kRead, 1, 0, 1.0);
  Tick d = rc.PacingDelay(IoType::kRead, 4096, 1.0);
  EXPECT_GT(d, 0);
  EXPECT_LE(d, Milliseconds(10));  // clamped
}

// ---------------------------------------------------------------------------
// VirtualSlot / TenantState
// ---------------------------------------------------------------------------

IoRequest MakeReq(TenantId t, IoType type, uint32_t len,
                  IoPriority prio = IoPriority::kNormal) {
  static uint64_t id = 0;
  IoRequest r;
  r.id = ++id;
  r.tenant = t;
  r.type = type;
  r.offset = 0;
  r.length = len;
  r.priority = prio;
  return r;
}

TEST(TenantState, SlotFillsAndCloses) {
  TenantState t(1);
  ASSERT_TRUE(t.TryOpenSlot(8));
  uint64_t sid = 0;
  for (int i = 0; i < 32; ++i) sid = t.ChargeSlot(4096, 128 * 1024);
  EXPECT_FALSE(t.HasOpenSlot());  // 32 x 4K = 128K -> closed
  EXPECT_EQ(t.SlotsInUse(), 1u);
  for (int i = 0; i < 31; ++i) EXPECT_FALSE(t.OnCompletion(sid));
  EXPECT_TRUE(t.OnCompletion(sid));  // last completion frees the slot
  EXPECT_EQ(t.SlotsInUse(), 0u);
  EXPECT_EQ(t.last_slot_io_count(), 32u);
}

TEST(TenantState, LargeWeightedIoFillsSlotAlone) {
  TenantState t(1);
  ASSERT_TRUE(t.TryOpenSlot(8));
  uint64_t sid = t.ChargeSlot(9ull * 128 * 1024, 128 * 1024);
  EXPECT_FALSE(t.HasOpenSlot());
  EXPECT_TRUE(t.OnCompletion(sid));
  EXPECT_EQ(t.last_slot_io_count(), 1u);
}

TEST(TenantState, AllotmentBoundsOpenSlots) {
  TenantState t(1);
  EXPECT_TRUE(t.TryOpenSlot(2));
  t.ChargeSlot(128 * 1024, 128 * 1024);  // close slot 1
  EXPECT_TRUE(t.TryOpenSlot(2));
  t.ChargeSlot(128 * 1024, 128 * 1024);  // close slot 2
  EXPECT_FALSE(t.TryOpenSlot(2));        // both in use
}

TEST(TenantState, PriorityQueuesWeightedRoundRobin) {
  TenantState t(1);
  for (int i = 0; i < 8; ++i) {
    t.Enqueue(MakeReq(1, IoType::kRead, 4096, IoPriority::kHigh));
    t.Enqueue(MakeReq(1, IoType::kRead, 4096, IoPriority::kLow));
  }
  int high_first = 0;
  for (int i = 0; i < 5; ++i) {
    IoRequest r = t.Pop();
    if (r.priority == IoPriority::kHigh) ++high_first;
  }
  // Weighted 4:1 in favour of high priority.
  EXPECT_GE(high_first, 3);
}

TEST(TenantState, DropEmptyOpenSlot) {
  TenantState t(1);
  ASSERT_TRUE(t.TryOpenSlot(8));
  EXPECT_EQ(t.SlotsInUse(), 1u);
  t.DropEmptyOpenSlot();
  EXPECT_EQ(t.SlotsInUse(), 0u);
  // A charged slot is not dropped.
  ASSERT_TRUE(t.TryOpenSlot(8));
  t.ChargeSlot(4096, 128 * 1024);
  t.DropEmptyOpenSlot();
  EXPECT_EQ(t.SlotsInUse(), 1u);
}

// ---------------------------------------------------------------------------
// DrrScheduler (Algorithm 2)
// ---------------------------------------------------------------------------

struct SchedulerHarness {
  GimbalParams params;
  WriteCostEstimator cost{params};
  DrrScheduler sched{params, cost};
};

TEST(DrrScheduler, EmptyDequeueReturnsNothing) {
  SchedulerHarness h;
  EXPECT_FALSE(h.sched.Dequeue().has_value());
}

TEST(DrrScheduler, SingleTenantFifo) {
  SchedulerHarness h;
  for (int i = 0; i < 4; ++i) {
    h.sched.Enqueue(MakeReq(1, IoType::kRead, 4096));
  }
  for (int i = 0; i < 4; ++i) {
    auto s = h.sched.Dequeue();
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->req.tenant, 1u);
  }
  EXPECT_FALSE(h.sched.Dequeue().has_value());
}

TEST(DrrScheduler, RoundRobinAcrossTenants) {
  SchedulerHarness h;
  for (int i = 0; i < 8; ++i) {
    h.sched.Enqueue(MakeReq(1, IoType::kRead, 128 * 1024));
    h.sched.Enqueue(MakeReq(2, IoType::kRead, 128 * 1024));
  }
  int count[3] = {0, 0, 0};
  for (int i = 0; i < 8; ++i) {
    auto s = h.sched.Dequeue();
    ASSERT_TRUE(s.has_value());
    ++count[s->req.tenant];
  }
  // Equal quanta, equal sizes: service alternates fairly.
  EXPECT_EQ(count[1], 4);
  EXPECT_EQ(count[2], 4);
}

TEST(DrrScheduler, SlotExhaustionDefersTenant) {
  SchedulerHarness h;
  // Single tenant, allotment = slots_threshold = 8 slots of 128K.
  for (int i = 0; i < 20; ++i) {
    h.sched.Enqueue(MakeReq(1, IoType::kRead, 128 * 1024));
  }
  std::vector<DrrScheduler::Scheduled> got;
  while (auto s = h.sched.Dequeue()) got.push_back(*s);
  // Exactly 8 x 128K IOs can be outstanding (one per slot).
  EXPECT_EQ(got.size(), 8u);
  // Completing one slot re-activates the tenant for exactly one more.
  h.sched.OnCompletion(1, got[0].slot_id);
  auto s = h.sched.Dequeue();
  ASSERT_TRUE(s.has_value());
  EXPECT_FALSE(h.sched.Dequeue().has_value());
}

TEST(DrrScheduler, AllotmentSharedAmongBusyTenants) {
  SchedulerHarness h;
  for (int i = 0; i < 20; ++i) {
    h.sched.Enqueue(MakeReq(1, IoType::kRead, 128 * 1024));
    h.sched.Enqueue(MakeReq(2, IoType::kRead, 128 * 1024));
  }
  EXPECT_EQ(h.sched.AllottedSlots(), 4u);  // 8 / 2 busy tenants
  int per_tenant[3] = {0, 0, 0};
  while (auto s = h.sched.Dequeue()) ++per_tenant[s->req.tenant];
  EXPECT_EQ(per_tenant[1], 4);
  EXPECT_EQ(per_tenant[2], 4);
}

TEST(DrrScheduler, MinimumOneSlotUnderHighConsolidation) {
  SchedulerHarness h;
  for (TenantId t = 1; t <= 20; ++t) {
    h.sched.Enqueue(MakeReq(t, IoType::kRead, 128 * 1024));
  }
  EXPECT_EQ(h.sched.AllottedSlots(), 1u);
  int served = 0;
  while (h.sched.Dequeue()) ++served;
  EXPECT_EQ(served, 20);  // every tenant gets its minimum slot
}

TEST(DrrScheduler, WriteCostWeightsDeficit) {
  SchedulerHarness h;
  // Write cost stays at worst (9). A 128K write weighs 9 quanta; a 128K
  // read weighs 1. While both tenants compete, the read tenant is served
  // ~9x as often (once either queue drains, DRR is work-conserving and
  // serves the remaining tenant freely, so we only inspect the contended
  // prefix).
  for (int i = 0; i < 60; ++i) {
    h.sched.Enqueue(MakeReq(1, IoType::kWrite, 128 * 1024));
    h.sched.Enqueue(MakeReq(2, IoType::kRead, 128 * 1024));
  }
  int reads = 0, writes = 0;
  for (int i = 0; i < 50; ++i) {
    auto s = h.sched.Dequeue();
    ASSERT_TRUE(s.has_value());
    if (s->req.type == IoType::kRead) ++reads; else ++writes;
    h.sched.OnCompletion(s->req.tenant, s->slot_id);
  }
  ASSERT_GT(writes, 0);
  EXPECT_GE(reads, 5 * writes);
}

TEST(DrrScheduler, DeferredTenantDeficitZeroed) {
  SchedulerHarness h;
  for (int i = 0; i < 20; ++i) {
    h.sched.Enqueue(MakeReq(1, IoType::kRead, 128 * 1024));
  }
  while (h.sched.Dequeue()) {
  }
  const TenantState* t = h.sched.FindTenant(1);
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->in_deferred);
  EXPECT_EQ(t->deficit, 0u);
}

TEST(DrrScheduler, CreditFollowsSlotIoCount) {
  SchedulerHarness h;
  // 32 x 4K reads fill one slot; credit = allotted(8) x 32 after it closes.
  std::vector<uint64_t> slots;
  for (int i = 0; i < 32; ++i) {
    h.sched.Enqueue(MakeReq(1, IoType::kRead, 4096));
  }
  std::vector<DrrScheduler::Scheduled> got;
  while (auto s = h.sched.Dequeue()) got.push_back(*s);
  ASSERT_EQ(got.size(), 32u);
  for (auto& s : got) h.sched.OnCompletion(1, s.slot_id);
  EXPECT_EQ(h.sched.CreditFor(1), 8u * 32u);
}

TEST(DrrScheduler, UnknownTenantGetsDefaultCredit) {
  SchedulerHarness h;
  EXPECT_GT(h.sched.CreditFor(42), 0u);
}

}  // namespace
}  // namespace gimbal::core
