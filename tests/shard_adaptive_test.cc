// Adaptive-epoch matrix for the sharded engine (docs/SIMULATOR.md).
//
// When exactly one shard holds pending events and no cross-shard send is
// buffered, the engine runs that shard's uniform sub-epochs back to back
// on the control thread instead of taking a full synchronization round at
// every T + W - 1 boundary. The contract this suite pins down:
//
//   * digests are identical to the serial (threads=1) run for sparse and
//     dense cross-shard traffic, at 1/2/4 threads, on both event-queue
//     engines, across seeds;
//   * coarsening changes how many *synchronization rounds* run, never the
//     schedule: forcing a full barrier per uniform epoch
//     (TestbedConfig::uniform_epochs) reproduces the same digest;
//   * coarsening actually pays: on sparse traffic the adaptive run
//     executes strictly fewer synchronization rounds than the uniform run;
//   * workers are never woken for epochs with nothing to claim: on sparse
//     traffic (single active shard per epoch → serial dispatch) the
//     idle-wakeup counter stays exactly 0 even with a full worker pool.
#include <gtest/gtest.h>

#include <cstdint>

#include "obs/obs.h"
#include "sim/event_queue.h"
#include "workload/runner.h"

namespace gimbal {
namespace {

using workload::FioSpec;
using workload::Scheme;
using workload::SsdCondition;
using workload::Testbed;
using workload::TestbedConfig;

constexpr size_t kTraceLimit = 4u << 20;

struct ShardRun {
  uint64_t digest = 0;
  uint64_t epochs = 0;
  uint64_t idle_wakeups = 0;
};

// Sparse: one queue-depth-1 tenant on one of three SSDs — long stretches
// where a single shard owns every pending event. Dense: every SSD loaded
// with a victim + write neighbour, so cross-shard sends buffer in nearly
// every epoch.
ShardRun RunSharded(sim::EventQueue::Impl impl, int threads, uint64_t seed,
                    bool sparse, bool uniform_epochs) {
  obs::Observability obs;
  obs.tracer.Enable(kTraceLimit);
  TestbedConfig cfg;
  cfg.num_ssds = 3;  // < target cores (4): one pipeline per core shard
  cfg.scheme = Scheme::kGimbal;
  cfg.condition = SsdCondition::kClean;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.queue_impl = impl;
  cfg.threads = threads;
  cfg.uniform_epochs = uniform_epochs;
  cfg.obs = &obs;
  cfg.run_label = sparse ? "adaptive_sparse" : "adaptive_dense";
  Testbed bed(cfg);
  if (sparse) {
    FioSpec lone;
    lone.io_bytes = 131072;
    lone.queue_depth = 1;
    lone.seed = seed;
    bed.AddWorker(lone, 0);
  } else {
    for (int s = 0; s < cfg.num_ssds; ++s) {
      FioSpec victim;
      victim.io_bytes = 4096;
      victim.queue_depth = 16;
      victim.seed = seed + static_cast<uint64_t>(s);
      bed.AddWorker(victim, s);
      FioSpec neighbor;
      neighbor.io_bytes = 131072;
      neighbor.queue_depth = 4;
      neighbor.read_ratio = 0.0;
      neighbor.seed = seed + 1000 + static_cast<uint64_t>(s);
      bed.AddWorker(neighbor, s);
    }
  }
  bed.Run(Milliseconds(5), Milliseconds(15));
  EXPECT_EQ(obs.tracer.dropped(), 0u);
  ShardRun out;
  out.digest = obs.tracer.Digest();
  EXPECT_NE(bed.engine(), nullptr) << "testbed unexpectedly unsharded";
  if (bed.engine() != nullptr) {
    out.epochs = bed.engine()->epochs();
    out.idle_wakeups = bed.engine()->idle_wakeups();
  }
  return out;
}

struct MatrixParam {
  uint64_t seed;
  bool sparse;
};

class AdaptiveEpochMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(AdaptiveEpochMatrix, ShardedDigestMatchesSerialAtEveryThreadCount) {
  const MatrixParam p = GetParam();
  const ShardRun serial = RunSharded(sim::EventQueue::Impl::kTimingWheel, 1,
                                     p.seed, p.sparse, false);
  for (int threads : {2, 4}) {
    const ShardRun run = RunSharded(sim::EventQueue::Impl::kTimingWheel,
                                    threads, p.seed, p.sparse, false);
    EXPECT_EQ(serial.digest, run.digest)
        << "threads=" << threads << " diverged from serial, seed " << p.seed
        << (p.sparse ? " (sparse)" : " (dense)");
    // The epoch chop is a pure function of queue states, so even the
    // barrier count is thread-count invariant.
    EXPECT_EQ(serial.epochs, run.epochs)
        << "epoch count changed with threads=" << threads;
  }
  const ShardRun heap = RunSharded(sim::EventQueue::Impl::kReferenceHeap, 4,
                                   p.seed, p.sparse, false);
  EXPECT_EQ(serial.digest, heap.digest)
      << "reference heap at threads=4 diverged, seed " << p.seed;
}

TEST_P(AdaptiveEpochMatrix, ShardedAdaptiveScheduleEqualsUniformSchedule) {
  const MatrixParam p = GetParam();
  const ShardRun adaptive = RunSharded(sim::EventQueue::Impl::kTimingWheel, 2,
                                       p.seed, p.sparse, false);
  const ShardRun uniform = RunSharded(sim::EventQueue::Impl::kTimingWheel, 2,
                                      p.seed, p.sparse, true);
  EXPECT_EQ(adaptive.digest, uniform.digest)
      << "coarsening changed the schedule, seed " << p.seed
      << (p.sparse ? " (sparse)" : " (dense)");
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AdaptiveEpochMatrix,
    ::testing::Values(MatrixParam{1u, true}, MatrixParam{7u, true},
                      MatrixParam{42u, true}, MatrixParam{1u, false},
                      MatrixParam{7u, false}, MatrixParam{42u, false}));

TEST(AdaptiveEpochMatrix, ShardedCoarseningReducesBarriersOnSparseTraffic) {
  const ShardRun adaptive =
      RunSharded(sim::EventQueue::Impl::kTimingWheel, 1, 1u, true, false);
  const ShardRun uniform =
      RunSharded(sim::EventQueue::Impl::kTimingWheel, 1, 1u, true, true);
  EXPECT_LT(adaptive.epochs, uniform.epochs)
      << "coarsening did not reduce the synchronization-round count";
}

TEST(AdaptiveEpochMatrix, ShardedSparseTrafficNeverWakesIdleWorkers) {
  // Full worker pool, but every sparse epoch has a single active shard and
  // a handful of live events — the serial dispatch path must handle all of
  // them without ringing a doorbell.
  const ShardRun run =
      RunSharded(sim::EventQueue::Impl::kTimingWheel, 4, 1u, true, false);
  EXPECT_EQ(run.idle_wakeups, 0u);
}

}  // namespace
}  // namespace gimbal
