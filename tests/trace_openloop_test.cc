// Tests for the open-loop (Poisson) worker, trace parsing/generation,
// trace replay, the timeslice baseline, and inline small-write capsules.
#include <gtest/gtest.h>

#include "baselines/timeslice_policy.h"
#include "ssd/null_device.h"
#include "workload/openloop.h"
#include "workload/runner.h"
#include "workload/trace.h"

namespace gimbal::workload {
namespace {

TestbedConfig NullBed(Scheme s = Scheme::kVanilla) {
  TestbedConfig cfg;
  cfg.scheme = s;
  cfg.use_null_device = true;
  return cfg;
}

TEST(OpenLoop, OfferedRateApproximatelyDelivered) {
  Testbed bed(NullBed());
  fabric::Initiator& init = bed.AddInitiator(0);
  OpenLoopSpec spec;
  spec.offered_iops = 20'000;
  spec.region_bytes = 1 << 30;
  OpenLoopWorker w(bed.sim(), init, spec);
  w.Start();
  bed.sim().RunUntil(Seconds(1));
  w.Stop();
  // Null device absorbs everything: completions ~ arrivals ~ offered rate.
  EXPECT_NEAR(static_cast<double>(w.stats().total_ios()), 20'000, 1'000);
  EXPECT_EQ(w.dropped(), 0u);
}

TEST(OpenLoop, ArrivalsIndependentOfCompletions) {
  // A saturated device cannot slow an open loop down: outstanding grows
  // and the cap eventually sheds arrivals instead of throttling them.
  TestbedConfig cfg;
  cfg.scheme = Scheme::kVanilla;
  cfg.ssd.logical_bytes = 128ull << 20;
  Testbed bed(cfg);
  fabric::Initiator& init = bed.AddInitiator(0);
  OpenLoopSpec spec;
  spec.offered_iops = 2'000'000;  // 5x the device's 4K read capacity
  spec.region_bytes = bed.device(0).capacity_bytes();
  spec.max_outstanding = 512;
  OpenLoopWorker w(bed.sim(), init, spec);
  w.Start();
  bed.sim().RunUntil(Milliseconds(100));
  w.Stop();
  EXPECT_GT(w.dropped(), 0u);
  EXPECT_LE(w.outstanding(), 512u);
}

TEST(OpenLoop, LatencyExplodesPastKnee) {
  auto p99_at = [](double iops) {
    TestbedConfig cfg;
    cfg.scheme = Scheme::kVanilla;
    cfg.ssd.logical_bytes = 128ull << 20;
    Testbed bed(cfg);
    fabric::Initiator& init = bed.AddInitiator(0);
    OpenLoopSpec spec;
    spec.offered_iops = iops;
    spec.region_bytes = bed.device(0).capacity_bytes();
    OpenLoopWorker w(bed.sim(), init, spec);
    w.Start();
    bed.sim().RunUntil(Milliseconds(400));
    return w.stats().read_latency.p99();
  };
  // Device 4K read capacity ~400K IOPS: 200K is comfortable, 500K is past
  // the knee — open-loop latency must blow up by an order of magnitude.
  EXPECT_GT(p99_at(500'000), 10 * p99_at(200'000));
}

TEST(TraceParse, ParsesAndSorts) {
  Trace t = ParseTrace(
      "# comment\n"
      "2000 W 8192 4096 2\n"
      "\n"
      "1000 R 0 4096\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].at, 1000);
  EXPECT_EQ(t[0].type, IoType::kRead);
  EXPECT_EQ(t[1].type, IoType::kWrite);
  EXPECT_EQ(t[1].priority, IoPriority::kLow);
}

TEST(TraceParse, RejectsGarbage) {
  EXPECT_THROW(ParseTrace("1000 X 0 4096\n"), std::runtime_error);
  EXPECT_THROW(ParseTrace("not a trace\n"), std::runtime_error);
  EXPECT_THROW(ParseTrace("-5 R 0 4096\n"), std::runtime_error);
}

TEST(TraceGen, BurstyAlternatesOnOff) {
  BurstySpec spec;
  spec.burst_iops = 100'000;
  spec.burst_duration = Milliseconds(10);
  spec.idle_duration = Milliseconds(40);
  spec.total = Milliseconds(200);
  spec.region_bytes = 1 << 30;
  Trace t = GenerateBurstyTrace(spec);
  ASSERT_GT(t.size(), 100u);
  // All arrivals fall inside ON windows (50 ms period, first 10 ms on).
  for (const auto& r : t) {
    Tick phase = r.at % Milliseconds(50);
    EXPECT_LT(phase, Milliseconds(10) + Microseconds(200));
  }
}

TEST(TraceReplay, IssuesAtRecordedTimes) {
  Testbed bed(NullBed());
  fabric::Initiator& init = bed.AddInitiator(0);
  Trace t = ParseTrace(
      "0 R 0 4096\n"
      "5000000 R 4096 4096\n"   // 5 ms
      "9000000 W 8192 4096\n");  // 9 ms
  TraceWorker w(bed.sim(), init, t);
  w.Start();
  bed.sim().RunUntil(Milliseconds(4));
  EXPECT_EQ(w.issued(), 1u);
  bed.sim().RunUntil(Milliseconds(8));
  EXPECT_EQ(w.issued(), 2u);
  bed.sim().RunUntil(Milliseconds(20));
  EXPECT_EQ(w.issued(), 3u);
  EXPECT_TRUE(w.finished());
  EXPECT_EQ(w.stats().write_ios, 1u);
}

TEST(TraceReplay, LoopsWhenAsked) {
  Testbed bed(NullBed());
  fabric::Initiator& init = bed.AddInitiator(0);
  Trace t = ParseTrace("0 R 0 4096\n1000000 R 4096 4096\n");
  TraceWorker w(bed.sim(), init, t, /*loop=*/true);
  w.Start();
  bed.sim().RunUntil(Milliseconds(10));
  w.Stop();
  EXPECT_GE(w.issued(), 10u);
}

// ---------------------------------------------------------------------------
// Timeslice baseline
// ---------------------------------------------------------------------------

TEST(Timeslice, ExclusiveSlices) {
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30, Microseconds(50));
  baselines::TimesliceParams params;
  params.quantum = Milliseconds(1);
  baselines::TimeslicePolicy policy(sim, dev, params);
  std::vector<TenantId> order;
  policy.set_completion_fn([&](const IoRequest& r, const IoCompletion&) {
    order.push_back(r.tenant);
  });
  uint64_t id = 0;
  for (int i = 0; i < 30; ++i) {
    for (TenantId t : {1u, 2u}) {
      IoRequest r;
      r.id = ++id;
      r.tenant = t;
      r.type = IoType::kRead;
      r.length = 4096;
      policy.OnRequest(r);
    }
  }
  sim.Run();
  ASSERT_EQ(order.size(), 60u);
  // Service comes in long single-tenant runs, not interleaved.
  int switches = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    if (order[i] != order[i - 1]) ++switches;
  }
  EXPECT_LE(switches, 4);
}

TEST(Timeslice, ResponsivenessPenaltyUnderConsolidation) {
  // §2.3's critique: with many tenants, a newcomer waits ~N x quantum.
  TestbedConfig cfg;
  cfg.scheme = Scheme::kTimeslice;
  cfg.timeslice.quantum = Milliseconds(2);
  cfg.ssd.logical_bytes = 128ull << 20;
  Testbed bed(cfg);
  for (int i = 0; i < 8; ++i) {
    FioSpec spec;
    spec.io_bytes = 4096;
    spec.queue_depth = 16;
    spec.seed = static_cast<uint64_t>(i) + 1;
    bed.AddWorker(spec);
  }
  bed.Run(Milliseconds(200), Milliseconds(400));
  LatencyHistogram all;
  for (auto& w : bed.workers()) all.Merge(w->stats().read_latency);
  // 8 tenants x 2 ms quantum: p99 ~ a full rotation, far above what the
  // same load costs under Gimbal (sub-3 ms, Fig 8-style).
  EXPECT_GT(all.p99(), Milliseconds(8));
}

TEST(Timeslice, WorkConservingWhenSingleTenant) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kTimeslice;
  cfg.ssd.logical_bytes = 128ull << 20;
  Testbed bed(cfg);
  FioSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 32;
  FioWorker& w = bed.AddWorker(spec);
  bed.Run(Milliseconds(200), Milliseconds(400));
  double mbps = BytesToMiB(w.stats().total_bytes()) / ToSec(bed.measured());
  EXPECT_GT(mbps, 700);  // a lone tenant gets the device continuously
}

// ---------------------------------------------------------------------------
// Inline small-write capsules
// ---------------------------------------------------------------------------

TEST(InlineWrite, SmallWriteSkipsRdmaRead) {
  Testbed bed(NullBed());
  fabric::Initiator& init = bed.AddInitiator(0);
  Tick small_lat = 0, large_lat = 0;
  init.Submit(IoType::kWrite, 0, 4096, IoPriority::kNormal,
              [&](const IoCompletion&, Tick l) { small_lat = l; });
  bed.sim().Run();
  init.Submit(IoType::kWrite, 0, 8192, IoPriority::kNormal,
              [&](const IoCompletion&, Tick l) { large_lat = l; });
  bed.sim().Run();
  // The 8K write pays the RDMA control+data round trip (~2 extra
  // base-latency hops); the inlined 4K one does not.
  EXPECT_GT(large_lat, small_lat + Microseconds(8));
}

}  // namespace
}  // namespace gimbal::workload
