// Unit tests for the transaction layer (kv/txn.h): LockManager protocol
// decisions driven directly, the TxnCoordinator end to end over the fully
// simulated disaggregated stack, and the TPC-C-lite generator's shape.
#include <gtest/gtest.h>

#include <vector>

#include "kv/cluster.h"
#include "kv/txn.h"
#include "workload/tpcc.h"

namespace gimbal::kv {
namespace {

// --- LockManager: protocol decision table ----------------------------------

TEST(LockManager, SharedCompatibleExclusiveConflicts) {
  LockManager lm(TxnProtocol::kNoWait);
  lm.Begin(1, 1, nullptr);
  lm.Begin(2, 2, nullptr);
  lm.Begin(3, 3, nullptr);
  EXPECT_EQ(lm.Acquire(1, 7, LockMode::kShared, nullptr),
            LockManager::Outcome::kGranted);
  EXPECT_EQ(lm.Acquire(2, 7, LockMode::kShared, nullptr),
            LockManager::Outcome::kGranted);
  // X conflicts with both sharers; NO_WAIT aborts the requester.
  EXPECT_EQ(lm.Acquire(3, 7, LockMode::kExclusive, nullptr),
            LockManager::Outcome::kAbort);
  EXPECT_TRUE(lm.Holds(1, 7));
  EXPECT_TRUE(lm.Holds(2, 7));
  EXPECT_FALSE(lm.Holds(3, 7));
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  lm.ReleaseAll(3);
  EXPECT_TRUE(lm.idle());
}

TEST(LockManager, ReacquireIsNoop) {
  LockManager lm(TxnProtocol::kNoWait);
  lm.Begin(1, 1, nullptr);
  EXPECT_EQ(lm.Acquire(1, 5, LockMode::kExclusive, nullptr),
            LockManager::Outcome::kGranted);
  // Same and weaker modes are no-ops; held_count does not grow.
  EXPECT_EQ(lm.Acquire(1, 5, LockMode::kExclusive, nullptr),
            LockManager::Outcome::kGranted);
  EXPECT_EQ(lm.Acquire(1, 5, LockMode::kShared, nullptr),
            LockManager::Outcome::kGranted);
  EXPECT_EQ(lm.held_count(1), 1u);
  EXPECT_EQ(lm.stats().acquires, 1u);
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.idle());
}

TEST(LockManager, UpgradeSoleHolderImmediate) {
  LockManager lm(TxnProtocol::kWaitDie);
  lm.Begin(1, 1, nullptr);
  EXPECT_EQ(lm.Acquire(1, 5, LockMode::kShared, nullptr),
            LockManager::Outcome::kGranted);
  EXPECT_EQ(lm.Acquire(1, 5, LockMode::kExclusive, nullptr),
            LockManager::Outcome::kGranted);
  EXPECT_EQ(lm.stats().upgrades, 1u);
  EXPECT_EQ(lm.held_count(1), 1u);  // an upgrade is not a new lock
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.stats().releases, 1u);
  EXPECT_TRUE(lm.idle());
}

TEST(LockManager, WaitDieOlderWaitsYoungerDies) {
  LockManager lm(TxnProtocol::kWaitDie);
  lm.Begin(1, 1, nullptr);   // older
  lm.Begin(2, 2, nullptr);   // middle
  lm.Begin(3, 3, nullptr);   // younger
  EXPECT_EQ(lm.Acquire(2, 9, LockMode::kExclusive, nullptr),
            LockManager::Outcome::kGranted);
  // Younger than the holder: dies.
  EXPECT_EQ(lm.Acquire(3, 9, LockMode::kExclusive, nullptr),
            LockManager::Outcome::kAbort);
  lm.ReleaseAll(3);
  // Older than the holder: waits, granted on release.
  bool granted = false;
  EXPECT_EQ(lm.Acquire(1, 9, LockMode::kExclusive,
                       [&]() { granted = true; }),
            LockManager::Outcome::kWaiting);
  EXPECT_EQ(lm.total_waiting(), 1u);
  lm.ReleaseAll(2);
  EXPECT_TRUE(granted);
  EXPECT_TRUE(lm.Holds(1, 9));
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.idle());
}

TEST(LockManager, WaitDieUpgradeRaceYoungerDies) {
  // Two S holders both upgrade — the classic upgrade deadlock. The younger
  // upgrader dies against the older co-holder; the older waits and its
  // upgrade is promoted out of queue order once it is the sole holder.
  LockManager lm(TxnProtocol::kWaitDie);
  lm.Begin(1, 1, nullptr);
  lm.Begin(2, 2, nullptr);
  ASSERT_EQ(lm.Acquire(1, 4, LockMode::kShared, nullptr),
            LockManager::Outcome::kGranted);
  ASSERT_EQ(lm.Acquire(2, 4, LockMode::kShared, nullptr),
            LockManager::Outcome::kGranted);
  bool older_granted = false;
  EXPECT_EQ(lm.Acquire(1, 4, LockMode::kExclusive,
                       [&]() { older_granted = true; }),
            LockManager::Outcome::kWaiting);
  EXPECT_EQ(lm.Acquire(2, 4, LockMode::kExclusive, nullptr),
            LockManager::Outcome::kAbort);
  lm.ReleaseAll(2);  // younger aborts, dropping its S
  EXPECT_TRUE(older_granted);
  EXPECT_TRUE(lm.Holds(1, 4));
  EXPECT_EQ(lm.stats().upgrades, 1u);
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.idle());
}

TEST(LockManager, WoundWaitWoundsYoungerHolder) {
  LockManager lm(TxnProtocol::kWoundWait);
  bool young_wounded = false;
  lm.Begin(1, 1, nullptr);
  lm.Begin(2, 2, [&]() { young_wounded = true; });
  ASSERT_EQ(lm.Acquire(2, 3, LockMode::kExclusive, nullptr),
            LockManager::Outcome::kGranted);
  bool older_granted = false;
  EXPECT_EQ(lm.Acquire(1, 3, LockMode::kExclusive,
                       [&]() { older_granted = true; }),
            LockManager::Outcome::kWaiting);
  EXPECT_TRUE(young_wounded);
  EXPECT_EQ(lm.stats().wounds, 1u);
  lm.ReleaseAll(2);  // the victim aborts
  EXPECT_TRUE(older_granted);
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.idle());
}

TEST(LockManager, WoundWaitPinnedHolderNotWounded) {
  LockManager lm(TxnProtocol::kWoundWait);
  bool young_wounded = false;
  lm.Begin(1, 1, nullptr);
  lm.Begin(2, 2, [&]() { young_wounded = true; });
  ASSERT_EQ(lm.Acquire(2, 3, LockMode::kExclusive, nullptr),
            LockManager::Outcome::kGranted);
  lm.PinCommit(2);  // mid-commit: releases in bounded time, safe to wait on
  bool older_granted = false;
  EXPECT_EQ(lm.Acquire(1, 3, LockMode::kExclusive,
                       [&]() { older_granted = true; }),
            LockManager::Outcome::kWaiting);
  EXPECT_FALSE(young_wounded);
  EXPECT_EQ(lm.stats().wounds, 0u);
  lm.ReleaseAll(2);  // commit completes
  EXPECT_TRUE(older_granted);
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.idle());
}

TEST(LockManager, WoundWaitQueuedConflictOvertakenNotWounded) {
  // A younger conflicting request parked in the queue holds nothing, so an
  // older X arriving on the same key does not wound it — the older request
  // simply overtakes it in the ts-ordered queue.
  LockManager lm(TxnProtocol::kWoundWait);
  bool parked_wounded = false;
  lm.Begin(1, 1, nullptr);
  lm.Begin(2, 2, nullptr);
  lm.Begin(3, 3, [&]() { parked_wounded = true; });
  ASSERT_EQ(lm.Acquire(2, 3, LockMode::kExclusive, nullptr),
            LockManager::Outcome::kGranted);
  lm.PinCommit(2);  // shield the holder so the queue builds up
  bool young_granted = false, old_granted = false;
  EXPECT_EQ(lm.Acquire(3, 3, LockMode::kExclusive,
                       [&]() { young_granted = true; }),
            LockManager::Outcome::kWaiting);
  EXPECT_EQ(lm.Acquire(1, 3, LockMode::kExclusive,
                       [&]() { old_granted = true; }),
            LockManager::Outcome::kWaiting);
  EXPECT_FALSE(parked_wounded);  // queued conflicts are overtaken, not shot
  lm.ReleaseAll(2);
  EXPECT_TRUE(old_granted);  // ts order: the older one goes first
  EXPECT_FALSE(young_granted);
  lm.ReleaseAll(1);
  EXPECT_TRUE(young_granted);
  lm.ReleaseAll(3);
  EXPECT_TRUE(lm.idle());
}

TEST(LockManager, WaitDieGrantRevalidationKillsYoungWaiter) {
  // Regression for the two-key deadlock: Z(30) holds k. H(20) waits
  // (older than Z). R(10) arrives, waits, and jumps ahead in ts order.
  // When Z releases, R is granted — and H, younger than the new holder,
  // must die (its wound callback fires), otherwise H could be waiting for
  // R here while R waits for H's X elsewhere.
  LockManager lm(TxnProtocol::kWaitDie);
  bool h_killed = false, h_granted = false, r_granted = false;
  lm.Begin(30, 30, nullptr);
  lm.Begin(20, 20, [&]() { h_killed = true; });
  lm.Begin(10, 10, nullptr);
  ASSERT_EQ(lm.Acquire(30, 6, LockMode::kExclusive, nullptr),
            LockManager::Outcome::kGranted);
  EXPECT_EQ(lm.Acquire(20, 6, LockMode::kExclusive,
                       [&]() { h_granted = true; }),
            LockManager::Outcome::kWaiting);
  EXPECT_EQ(lm.Acquire(10, 6, LockMode::kExclusive,
                       [&]() { r_granted = true; }),
            LockManager::Outcome::kWaiting);
  lm.ReleaseAll(30);
  EXPECT_TRUE(r_granted);
  EXPECT_TRUE(h_killed);
  EXPECT_FALSE(h_granted);
  lm.ReleaseAll(20);  // the killed waiter aborts
  lm.ReleaseAll(10);
  EXPECT_TRUE(lm.idle());
}

// --- TxnCoordinator over the simulated stack -------------------------------

KvClusterConfig SmallCluster() {
  KvClusterConfig cfg;
  cfg.testbed.num_ssds = 2;
  cfg.testbed.scheme = workload::Scheme::kGimbal;
  cfg.testbed.ssd.logical_bytes = 128ull << 20;
  cfg.testbed.condition = workload::SsdCondition::kClean;
  cfg.hba.backend_bytes = 128ull << 20;
  cfg.db.memtable_bytes = 256 * 1024;
  return cfg;
}

TxnRequest MakeReq(std::initializer_list<TxnOp> ops) {
  TxnRequest req;
  req.ops = ops;
  return req;
}

TEST(TxnCoordinator, SingleTxnCommitsDurably) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  TxnCoordinator coord(cluster.sim(), *inst.db);
  TxnResult res;
  bool done = false;
  coord.Submit(MakeReq({{101, true, 512, 0}, {102, true, 512, 0}}),
               [&](TxnResult r) {
                 res = r;
                 done = true;
               });
  cluster.sim().RunUntil(Milliseconds(20));
  ASSERT_TRUE(done);
  EXPECT_TRUE(res.committed);
  EXPECT_EQ(res.attempts, 1);
  EXPECT_GT(res.commit_stamp, 0u);
  EXPECT_TRUE(coord.locks().idle());  // strict 2PL: all released post-ack
  // The committed value is durable and readable with the commit stamp.
  bool found = false;
  Value got;
  inst.db->Get(101, [&](IoStatus, bool f, Value v) {
    found = f;
    got = v;
  });
  cluster.sim().RunUntil(Milliseconds(30));
  EXPECT_TRUE(found);
  EXPECT_EQ(got.stamp, res.commit_stamp);
}

TEST(TxnCoordinator, ReadOnlyTxnCommitsWithoutWrites) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  TxnCoordinator coord(cluster.sim(), *inst.db);
  bool done = false, committed = false;
  coord.Submit(MakeReq({{55, false, 0, 0}}), [&](TxnResult r) {
    done = true;
    committed = r.committed;
  });
  cluster.sim().RunUntil(Milliseconds(20));
  EXPECT_TRUE(done);
  EXPECT_TRUE(committed);
  EXPECT_EQ(coord.stats().writes, 0u);
  EXPECT_EQ(coord.stats().reads, 1u);
}

TEST(TxnCoordinator, NoWaitConflictFailsAtMaxAttempts) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  TxnCoordinator::Config cfg;
  cfg.protocol = TxnProtocol::kNoWait;
  cfg.max_attempts = 1;
  TxnCoordinator coord(cluster.sim(), *inst.db, cfg);
  TxnResult r1, r2;
  bool d1 = false, d2 = false;
  coord.Submit(MakeReq({{7, true, 512, 0}}), [&](TxnResult r) {
    r1 = r;
    d1 = true;
  });
  // T1 holds X(7) through its WAL commit; T2 conflicts immediately and
  // NO_WAIT aborts it — max_attempts=1 makes that terminal.
  coord.Submit(MakeReq({{7, true, 512, 0}}), [&](TxnResult r) {
    r2 = r;
    d2 = true;
  });
  EXPECT_TRUE(d2);  // failed synchronously, before any IO
  EXPECT_FALSE(r2.committed);
  EXPECT_EQ(r2.status, IoStatus::kAborted);
  EXPECT_EQ(r2.attempts, 1);
  cluster.sim().RunUntil(Milliseconds(20));
  ASSERT_TRUE(d1);
  EXPECT_TRUE(r1.committed);
  EXPECT_EQ(coord.stats().submitted, 2u);
  EXPECT_EQ(coord.stats().commits, 1u);
  EXPECT_EQ(coord.stats().failed, 1u);
}

TEST(TxnCoordinator, ConflictingRmwsRetryAndSerialize) {
  // Ten read-modify-write transactions on the same key, submitted in one
  // burst under WAIT_DIE with unbounded retries: all must commit, with
  // distinct monotone stamps and a clean serializability oracle.
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  TxnCoordinator::Config cfg;
  cfg.protocol = TxnProtocol::kWaitDie;
  TxnCoordinator coord(cluster.sim(), *inst.db, cfg);
  std::vector<TxnResult> results;
  for (int i = 0; i < 10; ++i) {
    coord.Submit(MakeReq({{900, false, 0, 0}, {900, true, 512, 0}}),
                 [&](TxnResult r) { results.push_back(r); });
  }
  cluster.sim().RunUntil(Milliseconds(200));
  ASSERT_EQ(results.size(), 10u);
  uint64_t last_stamp = 0;
  for (const TxnResult& r : results) {
    EXPECT_TRUE(r.committed);
    EXPECT_GT(r.commit_stamp, last_stamp);  // commit order == stamp order
    last_stamp = r.commit_stamp;
  }
  EXPECT_EQ(coord.stats().stamp_mismatches, 0u);
  EXPECT_TRUE(coord.locks().idle());
}

TEST(TxnCoordinator, GiveUpMakesRetriesTerminal) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  TxnCoordinator::Config cfg;
  cfg.protocol = TxnProtocol::kNoWait;
  TxnCoordinator coord(cluster.sim(), *inst.db, cfg);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    coord.Submit(MakeReq({{33, true, 512, 0}}),
                 [&](TxnResult) { ++done; });
  }
  cluster.sim().RunUntil(Microseconds(50));
  coord.set_give_up(true);  // drain contract: aborts become terminal
  cluster.sim().Run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(coord.stats().submitted,
            coord.stats().commits + coord.stats().failed);
  EXPECT_TRUE(coord.locks().idle());
}

// --- TPC-C-lite generator ---------------------------------------------------

TEST(TpccGenerator, MixAndShape) {
  workload::TpccSpec spec;
  spec.warehouses = 4;
  spec.seed = 7;
  workload::TpccGenerator gen(spec);
  int new_orders = 0, payments = 0;
  for (int i = 0; i < 2000; ++i) {
    workload::TpccTxn txn = gen.Next();
    if (txn.type == workload::TpccTxnType::kNewOrder) ++new_orders;
    else ++payments;
    ASSERT_GE(txn.ops.size(), 2u);
    EXPECT_LT(txn.warehouse, spec.warehouses);
    // Every transaction writes something, and reads precede the upgrade
    // write of the same key (S then X — the upgrade stressor).
    bool has_write = false, has_upgrade = false;
    for (size_t a = 0; a < txn.ops.size(); ++a) {
      has_write = has_write || txn.ops[a].write;
      if (!txn.ops[a].write) {
        for (size_t b = a + 1; b < txn.ops.size(); ++b) {
          if (txn.ops[b].write && txn.ops[b].key == txn.ops[a].key) {
            has_upgrade = true;
          }
        }
      }
    }
    EXPECT_TRUE(has_write);
    EXPECT_TRUE(has_upgrade);
  }
  // new_order_ratio = 0.55 ± sampling noise.
  EXPECT_GT(new_orders, 900);
  EXPECT_LT(new_orders, 1300);
  EXPECT_EQ(new_orders + payments, 2000);
}

TEST(TpccGenerator, DeterministicPerSeed) {
  workload::TpccSpec spec;
  spec.warehouses = 2;
  spec.seed = 11;
  workload::TpccGenerator a(spec), b(spec);
  for (int i = 0; i < 100; ++i) {
    workload::TpccTxn ta = a.Next(), tb = b.Next();
    ASSERT_EQ(ta.type, tb.type);
    ASSERT_EQ(ta.ops.size(), tb.ops.size());
    for (size_t j = 0; j < ta.ops.size(); ++j) {
      ASSERT_EQ(ta.ops[j].key, tb.ops[j].key);
      ASSERT_EQ(ta.ops[j].write, tb.ops[j].write);
    }
  }
}

}  // namespace
}  // namespace gimbal::kv
