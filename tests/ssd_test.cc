// Integration tests for the timed SSD model: latency composition, bandwidth
// asymmetries, write buffering, garbage collection interference — the §2.3
// phenomena the Gimbal algorithms depend on.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/histogram.h"
#include "common/rng.h"
#include "sim/simulator.h"
#include "ssd/null_device.h"
#include "ssd/ssd.h"

namespace gimbal::ssd {
namespace {

SsdConfig SmallConfig() {
  SsdConfig c;                     // DCT983-like timing
  c.logical_bytes = 256ull << 20;  // keep preconditioning fast in tests
  return c;
}

// Closed-loop driver hammering a raw device with `qd` outstanding IOs of
// one shape, collecting bytes completed and a latency histogram.
class ClosedLoop {
 public:
  ClosedLoop(sim::Simulator& sim, BlockDevice& dev, IoType type,
             uint32_t io_bytes, bool sequential, uint32_t qd,
             uint64_t region_bytes, uint64_t seed = 1)
      : sim_(sim), dev_(dev), type_(type), io_bytes_(io_bytes),
        sequential_(sequential), qd_(qd), region_bytes_(region_bytes),
        rng_(seed) {}

  void Start() {
    for (uint32_t i = 0; i < qd_; ++i) IssueOne();
  }

  uint64_t bytes_done = 0;
  uint64_t ios_done = 0;
  LatencyHistogram latency;

 private:
  void IssueOne() {
    DeviceIo io;
    io.type = type_;
    io.length = io_bytes_;
    uint64_t slots = region_bytes_ / io_bytes_;
    uint64_t slot = sequential_ ? (seq_cursor_++ % slots)
                                : rng_.NextBounded(slots);
    io.offset = slot * io_bytes_;
    dev_.Submit(io, [this](const DeviceCompletion& cpl) {
      bytes_done += cpl.length;
      ++ios_done;
      latency.Record(cpl.latency());
      IssueOne();
    });
  }

  sim::Simulator& sim_;
  BlockDevice& dev_;
  IoType type_;
  uint32_t io_bytes_;
  bool sequential_;
  uint32_t qd_;
  uint64_t region_bytes_;
  Rng rng_;
  uint64_t seq_cursor_ = 0;
};

double RunBandwidthMBps(sim::Simulator& sim, ClosedLoop& loop, Tick duration) {
  Tick start = sim.now();
  uint64_t bytes_before = loop.bytes_done;
  loop.Start();
  sim.RunUntil(start + duration);
  return BytesToMiB(loop.bytes_done - bytes_before) / ToSec(duration);
}

TEST(Ssd, UnloadedSmallReadLatency) {
  sim::Simulator sim;
  Ssd dev(sim, SmallConfig());
  dev.PreconditionClean();
  Tick lat = -1;
  DeviceIo io{.cookie = 1, .type = IoType::kRead, .offset = 0, .length = 4096};
  dev.Submit(io, [&](const DeviceCompletion& c) { lat = c.latency(); });
  sim.Run();
  // cmd cost (~2.4us) + sense (65us) + 4K channel transfer (~10us).
  EXPECT_GT(lat, Microseconds(60));
  EXPECT_LT(lat, Microseconds(120));
}

TEST(Ssd, UnloadedLargeReadLatencyScalesSublinearly) {
  sim::Simulator sim;
  Ssd dev(sim, SmallConfig());
  dev.PreconditionClean();
  Tick lat4k = 0, lat128k = 0;
  dev.Submit({.cookie = 1, .type = IoType::kRead, .offset = 0, .length = 4096},
             [&](const DeviceCompletion& c) { lat4k = c.latency(); });
  sim.Run();
  dev.Submit(
      {.cookie = 2, .type = IoType::kRead, .offset = 0, .length = 128 * 1024},
      [&](const DeviceCompletion& c) { lat128k = c.latency(); });
  sim.Run();
  EXPECT_GT(lat128k, lat4k);            // bigger IO is slower...
  EXPECT_LT(lat128k, 32 * lat4k / 4);   // ...but far from 32x (parallel dies)
}

TEST(Ssd, BufferedWriteIsFast) {
  sim::Simulator sim;
  Ssd dev(sim, SmallConfig());
  dev.PreconditionClean();
  Tick lat = -1;
  dev.Submit({.cookie = 1, .type = IoType::kWrite, .offset = 0, .length = 4096},
             [&](const DeviceCompletion& c) { lat = c.latency(); });
  sim.Run();
  // DRAM-buffered: roughly dram_latency + copy + cmd cost.
  EXPECT_LT(lat, Microseconds(30));
}

TEST(Ssd, ReadOfBufferedPageServedFromDram) {
  sim::Simulator sim;
  Ssd dev(sim, SmallConfig());
  dev.PreconditionClean();
  // Issue a write, then immediately read the same page before drain.
  dev.Submit({.cookie = 1, .type = IoType::kWrite, .offset = 4096, .length = 4096},
             [](const DeviceCompletion&) {});
  Tick lat = -1;
  dev.Submit({.cookie = 2, .type = IoType::kRead, .offset = 4096, .length = 4096},
             [&](const DeviceCompletion& c) { lat = c.latency(); });
  sim.Run();
  EXPECT_GT(dev.counters().buffer_hit_pages, 0u);
  EXPECT_LT(lat, Microseconds(25));  // no NAND sense involved
}

TEST(Ssd, UnmappedReadReturnsQuickly) {
  sim::Simulator sim;
  Ssd dev(sim, SmallConfig());  // no preconditioning
  Tick lat = -1;
  dev.Submit({.cookie = 1, .type = IoType::kRead, .offset = 0, .length = 8192},
             [&](const DeviceCompletion& c) { lat = c.latency(); });
  sim.Run();
  EXPECT_EQ(dev.counters().unmapped_pages, 2u);
  EXPECT_LT(lat, Microseconds(20));
}

TEST(Ssd, RandomReadBandwidth4k) {
  sim::Simulator sim;
  Ssd dev(sim, SmallConfig());
  dev.PreconditionClean();
  ClosedLoop loop(sim, dev, IoType::kRead, 4096, /*sequential=*/false, 64,
                  dev.capacity_bytes());
  double mbps = RunBandwidthMBps(sim, loop, Seconds(0.5));
  // Calibration target: ~1.6 GB/s (controller-bound small reads).
  EXPECT_GT(mbps, 1300);
  EXPECT_LT(mbps, 2000);
}

TEST(Ssd, LargeReadBandwidthHigherThanSmall) {
  sim::Simulator sim;
  Ssd dev(sim, SmallConfig());
  dev.PreconditionClean();
  ClosedLoop big(sim, dev, IoType::kRead, 128 * 1024, /*sequential=*/true, 8,
                 dev.capacity_bytes());
  double big_mbps = RunBandwidthMBps(sim, big, Seconds(0.5));
  // Calibration target: ~3.2 GB/s (channel-bound large reads).
  EXPECT_GT(big_mbps, 2700);
  EXPECT_LT(big_mbps, 3600);
}

TEST(Ssd, CleanSequentialWriteBandwidth) {
  sim::Simulator sim;
  Ssd dev(sim, SmallConfig());
  dev.PreconditionClean();
  ClosedLoop loop(sim, dev, IoType::kWrite, 128 * 1024, /*sequential=*/true, 4,
                  dev.capacity_bytes());
  double mbps = RunBandwidthMBps(sim, loop, Seconds(0.5));
  // Calibration target: ~1.0 GB/s program-bound.
  EXPECT_GT(mbps, 700);
  EXPECT_LT(mbps, 1300);
}

TEST(Ssd, FragmentedRandomWriteCollapses) {
  sim::Simulator sim;
  Ssd dev(sim, SmallConfig());
  dev.PreconditionFragmented();
  ClosedLoop loop(sim, dev, IoType::kWrite, 4096, /*sequential=*/false, 32,
                  dev.capacity_bytes());
  // Let GC reach steady state before measuring.
  loop.Start();
  sim.RunUntil(Seconds(0.5));
  uint64_t bytes_before = loop.bytes_done;
  Tick t0 = sim.now();
  sim.RunUntil(t0 + Seconds(1));
  double mbps = BytesToMiB(loop.bytes_done - bytes_before) / ToSec(Seconds(1));
  // Calibration target: ~180 MB/s (write cost vs 1.6 GB/s reads ~ 9).
  EXPECT_GT(mbps, 110);
  EXPECT_LT(mbps, 330);
  EXPECT_GT(dev.ftl().stats().WriteAmplification(), 2.0);
}

TEST(Ssd, FragmentedWritesTriggerGc) {
  sim::Simulator sim;
  Ssd dev(sim, SmallConfig());
  dev.PreconditionFragmented();
  ClosedLoop loop(sim, dev, IoType::kWrite, 4096, false, 32,
                  dev.capacity_bytes());
  loop.Start();
  sim.RunUntil(Seconds(0.3));
  EXPECT_GT(dev.counters().gc_runs, 0u);
  EXPECT_GT(dev.ftl().stats().gc_pages_relocated, 0u);
}

TEST(Ssd, WritesInterfereWithReads) {
  // §2.3 issue 1: a read stream loses bandwidth when a write stream joins.
  auto read_alone = [] {
    sim::Simulator sim;
    Ssd dev(sim, SmallConfig());
    dev.PreconditionFragmented();
    ClosedLoop rd(sim, dev, IoType::kRead, 4096, false, 32,
                  dev.capacity_bytes());
    return RunBandwidthMBps(sim, rd, Seconds(0.5));
  }();
  auto read_mixed = [] {
    sim::Simulator sim;
    Ssd dev(sim, SmallConfig());
    dev.PreconditionFragmented();
    ClosedLoop rd(sim, dev, IoType::kRead, 4096, false, 32,
                  dev.capacity_bytes());
    ClosedLoop wr(sim, dev, IoType::kWrite, 4096, false, 32,
                  dev.capacity_bytes(), 7);
    wr.Start();
    return RunBandwidthMBps(sim, rd, Seconds(0.5));
  }();
  EXPECT_LT(read_mixed, 0.7 * read_alone);
}

TEST(Ssd, LatencyRisesWithLoad) {
  // The load -> latency impulse response of Fig 17.
  auto p99_at_qd = [](uint32_t qd) {
    sim::Simulator sim;
    Ssd dev(sim, SmallConfig());
    dev.PreconditionClean();
    ClosedLoop rd(sim, dev, IoType::kRead, 4096, false, qd,
                  dev.capacity_bytes());
    rd.Start();
    sim.RunUntil(Seconds(0.3));
    return rd.latency.p99();
  };
  Tick low = p99_at_qd(4);
  Tick high = p99_at_qd(256);
  EXPECT_GT(high, 3 * low);
}

TEST(Ssd, WriteBufferFillsUnderSustainedLoad) {
  sim::Simulator sim;
  SsdConfig cfg = SmallConfig();
  cfg.write_buffer_bytes = 4ull << 20;
  Ssd dev(sim, cfg);
  dev.PreconditionFragmented();
  ClosedLoop wr(sim, dev, IoType::kWrite, 128 * 1024, true, 32,
                dev.capacity_bytes());
  wr.Start();
  sim.RunUntil(Seconds(0.5));
  // Sustained overload: buffer near capacity and write latency far above
  // the buffered fast path.
  EXPECT_GT(dev.buffer_used(), cfg.write_buffer_bytes / 2);
  EXPECT_GT(wr.latency.p99(), Microseconds(200));
}

TEST(Ssd, InflightAccounting) {
  sim::Simulator sim;
  Ssd dev(sim, SmallConfig());
  dev.PreconditionClean();
  dev.Submit({.cookie = 1, .type = IoType::kRead, .offset = 0, .length = 4096},
             [](const DeviceCompletion&) {});
  EXPECT_EQ(dev.inflight(), 1u);
  sim.Run();
  EXPECT_EQ(dev.inflight(), 0u);
}

TEST(Ssd, CountersTrackTraffic) {
  sim::Simulator sim;
  Ssd dev(sim, SmallConfig());
  dev.PreconditionClean();
  dev.Submit({.cookie = 1, .type = IoType::kRead, .offset = 0, .length = 8192},
             [](const DeviceCompletion&) {});
  dev.Submit({.cookie = 2, .type = IoType::kWrite, .offset = 0, .length = 4096},
             [](const DeviceCompletion&) {});
  sim.Run();
  EXPECT_EQ(dev.counters().read_commands, 1u);
  EXPECT_EQ(dev.counters().read_bytes, 8192u);
  EXPECT_EQ(dev.counters().write_commands, 1u);
  EXPECT_EQ(dev.counters().write_bytes, 4096u);
}

TEST(Ssd, FragmentedLargeReadSlowerThanClean) {
  // Appendix A / Fig 15: physical scatter costs extra senses.
  auto lat128k = [](bool fragmented) {
    sim::Simulator sim;
    Ssd dev(sim, SmallConfig());
    if (fragmented) {
      dev.PreconditionFragmented();
    } else {
      dev.PreconditionClean();
    }
    Tick lat = 0;
    dev.Submit(
        {.cookie = 1, .type = IoType::kRead, .offset = 0, .length = 128 * 1024},
        [&](const DeviceCompletion& c) { lat = c.latency(); });
    sim.Run();
    return lat;
  };
  EXPECT_GT(lat128k(true), lat128k(false));
}

TEST(NullDevice, CompletesInstantly) {
  sim::Simulator sim;
  NullDevice dev(sim);
  Tick lat = -1;
  dev.Submit({.cookie = 9, .type = IoType::kRead, .offset = 0, .length = 4096},
             [&](const DeviceCompletion& c) { lat = c.latency(); });
  EXPECT_EQ(dev.inflight(), 1u);
  sim.Run();
  EXPECT_EQ(lat, Microseconds(2));
  EXPECT_EQ(dev.inflight(), 0u);
}

struct IoShape {
  uint32_t bytes;
  bool sequential;
  IoType type;
};

class SsdShapeSweep : public ::testing::TestWithParam<IoShape> {};

TEST_P(SsdShapeSweep, CompletesAllRequests) {
  // Property: any IO shape completes, conserves bytes, and reports
  // monotone timestamps.
  auto [bytes, sequential, type] = GetParam();
  sim::Simulator sim;
  Ssd dev(sim, SmallConfig());
  dev.PreconditionClean();
  ClosedLoop loop(sim, dev, type, bytes, sequential, 16, dev.capacity_bytes());
  loop.Start();
  sim.RunUntil(Seconds(0.1));
  EXPECT_GT(loop.ios_done, 0u);
  EXPECT_EQ(loop.bytes_done, loop.ios_done * bytes);
  EXPECT_GT(loop.latency.min(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SsdShapeSweep,
    ::testing::Values(IoShape{4096, false, IoType::kRead},
                      IoShape{4096, true, IoType::kRead},
                      IoShape{16384, false, IoType::kRead},
                      IoShape{131072, true, IoType::kRead},
                      IoShape{262144, true, IoType::kRead},
                      IoShape{4096, false, IoType::kWrite},
                      IoShape{4096, true, IoType::kWrite},
                      IoShape{65536, true, IoType::kWrite},
                      IoShape{131072, true, IoType::kWrite}));

}  // namespace
}  // namespace gimbal::ssd
