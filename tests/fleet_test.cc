// Tests for the tenant-scale open-loop fleet (src/workload/fleet.h) and the
// per-tenant arena plumbing underneath it:
//
//   * churn storm — ~100k connect/disconnect cycles on a sharded 2-SSD
//     testbed must drain to nothing: no live target sessions, no scheduler
//     tenants, every arena slot recycled, ledgers balanced, and the trace
//     digest bit-identical at 1/2/4 worker threads;
//   * weight-leak regression — SetTenantWeight + Disconnect must reap the
//     whole tenant slot (the weight once lived in a side map the
//     disconnect path forgot to clear);
//   * SLO export — the tracker's p99/p99.9 gauges and violation counters
//     appear in the metrics JSON under their documented names.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/drr_scheduler.h"
#include "core/write_cost.h"
#include "obs/obs.h"
#include "obs/schema.h"
#include "workload/fleet.h"
#include "workload/runner.h"

namespace gimbal::workload {
namespace {

TestbedConfig ChurnConfig(int threads, obs::Observability* obs) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.condition = SsdCondition::kClean;
  cfg.num_ssds = 2;  // >1 SSD + fabric latency => sharded engine
  cfg.ssd.logical_bytes = 64ull << 20;
  cfg.threads = threads;
  cfg.obs = obs;
  cfg.run_label = "fleet_churn";
  return cfg;
}

FleetSpec ChurnSpec() {
  FleetSpec fs;
  // Seats * (run / lifetime) ≈ 4000 * 25 churn cycles ≈ 100k
  // connect/disconnect pairs; most sessions are too short to issue IO, so
  // the storm stresses the session/tenant bookkeeping, not the device.
  fs.sessions = 4000;
  fs.rates.mean_iops = 20.0;
  fs.rates.dist = RateDist::kPareto;
  fs.session_lifetime_mean = Milliseconds(2);
  fs.rampup = Milliseconds(2);
  fs.read_ratio = 0.7;  // writes exercise the staging/disconnect race
  fs.seed = 99;
  return fs;
}

struct ChurnResult {
  uint64_t connects = 0;
  uint64_t digest = 0;
};

ChurnResult RunChurnStorm(int threads) {
  obs::Observability obs;
  obs.tracer.Enable(4u << 20);
  Testbed bed(ChurnConfig(threads, &obs));
  OpenLoopFleet fleet(bed, ChurnSpec());
  fleet.Start();
  bed.sim().RunUntil(Milliseconds(50));
  fleet.Stop();
  // Run to idle: the storm's capsule backlog on the shared link can take
  // far longer than any fixed deadline to drain.
  bed.sim().Run();

  EXPECT_GE(fleet.connects(), 90000u) << "storm did not reach ~100k cycles";
  EXPECT_EQ(fleet.connects(), fleet.disconnects());
  EXPECT_EQ(fleet.active_sessions(), 0u);
  EXPECT_EQ(fleet.SweepGraveyard(), 0u) << "initiators still draining";

  // The target forgot nobody: every session slot was freed and recycled.
  EXPECT_EQ(bed.target().live_sessions(), 0u);

  // Every scheduler reaped every tenant, and the arenas recycled every
  // slot they ever carved (live + free == capacity, live == 0).
  for (int i = 0; i < bed.config().num_ssds; ++i) {
    core::GimbalSwitch* sw = bed.gimbal_switch(i);
    EXPECT_NE(sw, nullptr);
    if (sw == nullptr) continue;
    const core::DrrScheduler& drr = sw->scheduler();
    EXPECT_EQ(drr.tenant_count(), 0u) << "ssd " << i;
    EXPECT_EQ(drr.queued_total(), 0u) << "ssd " << i;
    EXPECT_EQ(drr.tenant_arena().size(), 0u) << "ssd " << i;
    EXPECT_EQ(drr.tenant_arena().capacity(),
              drr.tenant_arena().free_count())
        << "orphaned arena slots on ssd " << i;
  }

  // Ledger balance across the whole storm (admit == terminal everywhere).
  EXPECT_TRUE(bed.checker().CheckDrained());
  EXPECT_EQ(obs.tracer.dropped(), 0u);
  return {fleet.connects(), obs.tracer.Digest()};
}

TEST(FleetChurn, StormDrainsCleanAndIsThreadCountInvariant) {
  const ChurnResult t1 = RunChurnStorm(1);
  const ChurnResult t2 = RunChurnStorm(2);
  const ChurnResult t4 = RunChurnStorm(4);
  EXPECT_EQ(t1.connects, t2.connects);
  EXPECT_EQ(t1.connects, t4.connects);
  EXPECT_EQ(t1.digest, t2.digest) << "threads=2 diverged from serial";
  EXPECT_EQ(t1.digest, t4.digest) << "threads=4 diverged from serial";
}

TEST(DrrScheduler, DisconnectReapsWeightedTenant) {
  // Regression: the service weight used to live in a side map that
  // Disconnect never erased, so a weighted tenant leaked an entry per
  // churn cycle. Weights now ride in the arena slot and are reaped with
  // it.
  core::GimbalParams params;
  core::WriteCostEstimator cost(params);
  core::DrrScheduler drr(params, cost);
  for (TenantId t = 1; t <= 1000; ++t) {
    drr.SetTenantWeight(t, 4.0);
    EXPECT_EQ(drr.TenantWeight(t), 4.0);
    drr.Disconnect(t);
  }
  EXPECT_EQ(drr.tenant_count(), 0u);
  EXPECT_EQ(drr.tenant_arena().size(), 0u);
  EXPECT_EQ(drr.tenant_arena().capacity(), drr.tenant_arena().free_count());
  // A reaped tenant's weight reverts to the default.
  EXPECT_EQ(drr.TenantWeight(1), 1.0);
}

TEST(Slo, MetricsAppearInJsonExport) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.condition = SsdCondition::kClean;
  cfg.ssd.logical_bytes = 64ull << 20;
  Testbed bed(cfg);

  FleetSpec fs;
  fs.sessions = 16;
  fs.rates.dist = RateDist::kUniform;
  fs.rates.mean_iops = 2000.0;
  fs.seed = 5;
  fs.slo.read_p99 = Microseconds(1);  // absurdly tight: every window violates
  fs.slo.read_p999 = Microseconds(2);
  fs.slo.write_p99 = Microseconds(1);
  fs.slo.window = Milliseconds(1);
  OpenLoopFleet fleet(bed, fs);
  fleet.Start();
  bed.sim().RunUntil(Milliseconds(20));
  fleet.Stop();
  bed.sim().RunUntil(bed.sim().now() + Milliseconds(5));

  EXPECT_GT(fleet.slo().windows(), 0u);
  EXPECT_GT(fleet.slo().windows_violated(), 0u);
  EXPECT_GT(fleet.slo().time_in_violation(), 0u);

  obs::MetricsRegistry reg;
  fleet.ExportSlo(reg);
  const std::string json = reg.ToJson();
  for (const obs::MetricDef* def :
       {&obs::schema::kSloWindows, &obs::schema::kSloWindowsViolated,
        &obs::schema::kSloReadP99, &obs::schema::kSloReadP999,
        &obs::schema::kSloTimeInViolation, &obs::schema::kSloReadLatency}) {
    EXPECT_NE(json.find(def->name), std::string::npos)
        << "metric " << def->name << " missing from JSON export";
  }
}

}  // namespace
}  // namespace gimbal::workload
