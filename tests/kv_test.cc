// Unit tests for the key-value substrate: bloom filter, memtable,
// SSTable, hierarchical blob allocator, blobstore replication/balancing.
#include <gtest/gtest.h>

#include <set>

#include "kv/bloom.h"
#include "kv/hba.h"
#include "kv/memtable.h"
#include "kv/sstable.h"

namespace gimbal::kv {
namespace {

TEST(Bloom, NoFalseNegatives) {
  BloomFilter f(1000);
  for (uint64_t k = 0; k < 1000; ++k) f.Add(k * 7);
  for (uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(f.MayContain(k * 7));
}

TEST(Bloom, LowFalsePositiveRate) {
  BloomFilter f(10000);
  for (uint64_t k = 0; k < 10000; ++k) f.Add(k);
  int fp = 0;
  for (uint64_t k = 100000; k < 120000; ++k) {
    if (f.MayContain(k)) ++fp;
  }
  EXPECT_LT(fp, 20000 * 0.03);  // ~1% expected at 10 bits/key
}

TEST(Bloom, EmptyFilterRejectsEverything) {
  BloomFilter f(100);
  int hits = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    if (f.MayContain(k)) ++hits;
  }
  EXPECT_EQ(hits, 0);
}

TEST(Memtable, PutGetOverwrite) {
  Memtable m;
  m.Put(5, Value{1024, 1, false});
  EXPECT_EQ(m.Get(5)->stamp, 1u);
  m.Put(5, Value{1024, 2, false});
  EXPECT_EQ(m.Get(5)->stamp, 2u);
  EXPECT_FALSE(m.Get(6).has_value());
  EXPECT_EQ(m.count(), 1u);
}

TEST(Memtable, BytesAccounting) {
  Memtable m;
  m.Put(1, Value{1024, 1, false});
  m.Put(2, Value{1024, 1, false});
  EXPECT_EQ(m.bytes(), 2 * (1024 + Memtable::kEntryOverhead));
}

TEST(Memtable, SortedSnapshot) {
  Memtable m;
  m.Put(30, Value{8, 1, false});
  m.Put(10, Value{8, 2, false});
  m.Put(20, Value{8, 3, false});
  auto s = m.Sorted();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].first, 10u);
  EXPECT_EQ(s[2].first, 30u);
}

std::vector<std::pair<Key, Value>> MakeEntries(uint64_t n,
                                               uint32_t bytes = 1024) {
  std::vector<std::pair<Key, Value>> e;
  for (uint64_t k = 0; k < n; ++k) {
    e.emplace_back(k * 2, Value{bytes, k, false});
  }
  return e;
}

TEST(SsTable, RangeAndLookup) {
  SsTable t(1, MakeEntries(100));
  EXPECT_EQ(t.min_key(), 0u);
  EXPECT_EQ(t.max_key(), 198u);
  EXPECT_TRUE(t.KeyInRange(100));
  EXPECT_FALSE(t.KeyInRange(199));
  EXPECT_TRUE(t.Lookup(10).has_value());
  EXPECT_FALSE(t.Lookup(11).has_value());  // odd keys absent
  EXPECT_EQ(t.Lookup(10)->stamp, 5u);
}

TEST(SsTable, MayContainFiltersAbsentKeys) {
  SsTable t(1, MakeEntries(1000));
  int fp = 0;
  for (uint64_t k = 1; k < 1999; k += 2) {
    if (t.MayContain(k)) ++fp;  // odd keys are absent
  }
  EXPECT_LT(fp, 50);
  EXPECT_TRUE(t.MayContain(500));  // present key always passes
}

TEST(SsTable, BlockOffsetMonotoneAndAligned) {
  SsTable t(1, MakeEntries(1000));
  uint64_t prev = 0;
  for (uint64_t k = 0; k < 2000; k += 100) {
    uint64_t off = t.BlockOffsetOf(k);
    EXPECT_EQ(off % 4096, 0u);
    EXPECT_GE(off, prev);
    prev = off;
  }
  EXPECT_LT(prev, t.data_bytes());
}

TEST(SsTable, BlobForOffsetWalksPlacement) {
  SsTable t(1, MakeEntries(1000));  // ~1MB data
  t.primary_blobs = {{0, 0, 256 * 1024}, {1, 1 << 20, 256 * 1024},
                     {0, 2 << 20, 256 * 1024}, {2, 0, 256 * 1024}};
  auto [p0, s0] = t.BlobForOffset(0, 4096);
  EXPECT_EQ(p0.backend, 0);
  EXPECT_EQ(p0.offset, 0u);
  EXPECT_EQ(p0.bytes, 4096u);
  EXPECT_FALSE(s0.valid());
  auto [p1, s1] = t.BlobForOffset(256 * 1024 + 8192, 4096);
  EXPECT_EQ(p1.backend, 1);
  EXPECT_EQ(p1.offset, (1u << 20) + 8192u);
}

TEST(SsTable, ShadowPlacementMirrors) {
  SsTable t(1, MakeEntries(100));
  t.primary_blobs = {{0, 0, 256 * 1024}};
  t.shadow_blobs = {{1, 4096, 256 * 1024}};
  auto [p, s] = t.BlobForOffset(8192, 4096);
  EXPECT_EQ(p.backend, 0);
  EXPECT_EQ(s.backend, 1);
  EXPECT_EQ(s.offset, 4096u + 8192u);
}

// ---------------------------------------------------------------------------
// Hierarchical blob allocator
// ---------------------------------------------------------------------------

HbaConfig SmallHba() {
  HbaConfig h;
  h.backend_bytes = 64ull << 20;
  h.mega_bytes = 4ull << 20;
  h.micro_bytes = 256 * 1024;
  return h;
}

TEST(Hba, GlobalMegaBitmap) {
  GlobalBlobAllocator g(2, SmallHba());
  EXPECT_EQ(g.FreeMegasOn(0), 16u);
  auto m = g.AllocateMega(0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->backend, 0);
  EXPECT_EQ(m->bytes, 4u << 20);
  EXPECT_EQ(g.FreeMegasOn(0), 15u);
  g.FreeMega(*m);
  EXPECT_EQ(g.FreeMegasOn(0), 16u);
}

TEST(Hba, GlobalExhaustion) {
  GlobalBlobAllocator g(1, SmallHba());
  for (int i = 0; i < 16; ++i) EXPECT_TRUE(g.AllocateMega(0).has_value());
  EXPECT_FALSE(g.AllocateMega(0).has_value());
}

TEST(Hba, MegasDoNotOverlap) {
  GlobalBlobAllocator g(1, SmallHba());
  std::set<uint64_t> offsets;
  for (int i = 0; i < 16; ++i) {
    auto m = g.AllocateMega(0);
    ASSERT_TRUE(m);
    EXPECT_TRUE(offsets.insert(m->offset).second);
    EXPECT_LE(m->offset + m->bytes, 64ull << 20);
  }
}

TEST(Hba, LocalRefillsFromGlobal) {
  GlobalBlobAllocator g(2, SmallHba());
  LocalBlobAllocator local(g, nullptr);
  auto b = local.AllocateMicro();
  ASSERT_TRUE(b);
  EXPECT_EQ(b->bytes, 256u * 1024);
  // One mega = 16 micros; the rest are in the local pool.
  EXPECT_EQ(local.FreeMicrosOn(b->backend), 15u);
}

TEST(Hba, LoadAwarePlacement) {
  GlobalBlobAllocator g(3, SmallHba());
  // Backend 1 advertises the most credits -> preferred.
  LocalBlobAllocator local(g, [](int b) { return b == 1 ? 100u : 10u; });
  auto blob = local.AllocateMicro();
  ASSERT_TRUE(blob);
  EXPECT_EQ(blob->backend, 1);
}

TEST(Hba, ExcludeBackendForShadow) {
  GlobalBlobAllocator g(2, SmallHba());
  LocalBlobAllocator local(g, [](int) { return 10u; });
  auto primary = local.AllocateMicro();
  ASSERT_TRUE(primary);
  auto shadow = local.AllocateMicro(primary->backend);
  ASSERT_TRUE(shadow);
  EXPECT_NE(shadow->backend, primary->backend);
}

TEST(Hba, FreeMicroReturnsToPool) {
  GlobalBlobAllocator g(1, SmallHba());
  LocalBlobAllocator local(g, nullptr);
  auto b = local.AllocateMicro();
  ASSERT_TRUE(b);
  size_t before = local.FreeMicrosOn(0);
  local.FreeMicro(*b);
  EXPECT_EQ(local.FreeMicrosOn(0), before + 1);
}

TEST(Hba, MicroAllocationsDistinct) {
  GlobalBlobAllocator g(1, SmallHba());
  LocalBlobAllocator local(g, nullptr);
  std::set<uint64_t> offsets;
  for (int i = 0; i < 64; ++i) {
    auto b = local.AllocateMicro();
    ASSERT_TRUE(b);
    EXPECT_TRUE(offsets.insert(b->offset).second) << "overlapping micro";
  }
}

}  // namespace
}  // namespace gimbal::kv
