// KV fault tolerance (docs/FAULTS.md): status propagation through
// Blobstore/Db, failover reads, degraded writes + the dirty-replica
// ledger, background re-replication, WAL ack-holding under total replica
// loss, and crash/recovery WAL replay.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "kv/cluster.h"
#include "obs/obs.h"
#include "obs/schema.h"

namespace gimbal::kv {
namespace {

KvClusterConfig FaultCluster(int ssds = 2) {
  KvClusterConfig cfg;
  cfg.testbed.num_ssds = ssds;
  cfg.testbed.scheme = workload::Scheme::kGimbal;
  cfg.testbed.ssd.logical_bytes = 128ull << 20;
  cfg.testbed.condition = workload::SsdCondition::kClean;
  cfg.hba.backend_bytes = 128ull << 20;
  cfg.db.memtable_bytes = 256 * 1024;  // small so flushes happen in tests
  cfg.db.sstable_target_bytes = 256 * 1024;
  cfg.db.level1_bytes = 1 << 20;
  return cfg;
}

// Tentpole (1): a read whose chosen replica dies mid-burst retries the
// surviving copy and still resolves kOk.
TEST(KvFault, FailoverReadServesFromSurvivingReplica) {
  KvClusterConfig cfg = FaultCluster();
  // Every IO on SSD 0 fails while the burst is active.
  cfg.testbed.faults.media_errors.push_back(
      {0, Milliseconds(10), Milliseconds(120), 1.0, Microseconds(200)});
  KvCluster cluster(cfg);
  auto& inst = cluster.AddInstance();
  inst.db->BulkLoad(10'000, 1024);
  cluster.sim().RunUntil(Milliseconds(15));

  int ok = 0, found = 0, issued = 0;
  for (uint64_t k = 0; k < 60; ++k) {
    ++issued;
    inst.db->Get(k * 31, [&](IoStatus st, bool f, Value) {
      if (st == IoStatus::kOk) ++ok;
      if (f) ++found;
    });
  }
  cluster.sim().RunUntil(Milliseconds(100));
  EXPECT_EQ(ok, issued);
  EXPECT_EQ(found, issued);
  // Some of those reads must have tried SSD 0 first and failed over.
  EXPECT_GT(inst.blobs->stats().failover_reads, 0u);
  EXPECT_GT(inst.db->stats().data_block_reads, 0u);
}

// When both copies are gone the read fails cleanly with the fault status
// after the per-blob budget — it must not hang or invent a not-found=ok.
TEST(KvFault, ReadFailsCleanlyWhenBothCopiesDead) {
  KvClusterConfig cfg = FaultCluster();
  cfg.testbed.faults.failures.push_back(
      {0, Milliseconds(10), Milliseconds(100)});
  cfg.testbed.faults.failures.push_back(
      {1, Milliseconds(10), Milliseconds(100)});
  KvCluster cluster(cfg);
  auto& inst = cluster.AddInstance();
  inst.db->BulkLoad(5'000, 1024);
  cluster.sim().RunUntil(Milliseconds(15));

  bool called = false;
  IoStatus got = IoStatus::kOk;
  inst.db->Get(1234, [&](IoStatus st, bool f, Value) {
    called = true;
    got = st;
    EXPECT_FALSE(f);
  });
  cluster.sim().RunUntil(Milliseconds(60));
  EXPECT_TRUE(called);
  EXPECT_NE(got, IoStatus::kOk);
  cluster.sim().RunUntil(Milliseconds(200));  // let the windows close
}

// Satellite (2): once a backend is observed down, reads — including the
// every-16th forced load-balancer probe — steer to the surviving copy, so
// one dead SSD costs at most a couple of failovers, not one per probe.
TEST(KvFault, ProbeNeverTargetsObservedFailedBackend) {
  KvClusterConfig cfg = FaultCluster();
  cfg.testbed.faults.failures.push_back({1, Milliseconds(10), /*never*/ 0});
  KvCluster cluster(cfg);
  auto& inst = cluster.AddInstance();
  inst.db->BulkLoad(20'000, 1024);
  cluster.sim().RunUntil(Milliseconds(15));

  int ok = 0;
  std::function<void(int)> next = [&](int i) {
    if (i >= 100) return;
    inst.db->Get(static_cast<Key>(i) * 97, [&, i](IoStatus st, bool f, Value) {
      EXPECT_EQ(st, IoStatus::kOk) << "read " << i;
      EXPECT_TRUE(f);
      ++ok;
      next(i + 1);
    });
  };
  next(0);
  cluster.sim().RunUntil(Milliseconds(300));
  EXPECT_EQ(ok, 100);
  // Sequential reads: after the first kDeviceFailed marks SSD 1 down, no
  // further read (forced probe included) targets it. Without the
  // down-override ~1 in 16 reads would fail over.
  EXPECT_GE(inst.blobs->stats().failover_reads, 1u);
  EXPECT_LE(inst.blobs->stats().failover_reads, 5u);
}

// Tentpole (2): a replicated write with one dead backend acks degraded
// (quorum-of-available) and records the missing copy in the dirty ledger;
// tentpole (3): the rebuild scanner drains the ledger once the backend
// recovers, without any health subscription.
TEST(KvFault, DegradedWritesAckAndRebuildDrainsAfterRecovery) {
  obs::Observability obs;
  KvClusterConfig cfg = FaultCluster();
  cfg.testbed.obs = &obs;
  cfg.testbed.faults.failures.push_back(
      {1, Milliseconds(10), Milliseconds(60)});
  KvCluster cluster(cfg);
  auto& inst = cluster.AddInstance();
  cluster.sim().RunUntil(Milliseconds(12));

  int acked = 0, failed = 0;
  for (uint64_t k = 0; k < 300; ++k) {
    inst.db->Put(k, 1024, k + 1, [&](IoStatus st) {
      st == IoStatus::kOk ? ++acked : ++failed;
    });
  }
  cluster.sim().RunUntil(Milliseconds(55));
  // SSD 0 is alive the whole time: every write acks despite SSD 1 being
  // dark, and the missing copies are on the ledger.
  EXPECT_EQ(acked, 300);
  EXPECT_EQ(failed, 0);
  EXPECT_GT(inst.blobs->stats().degraded_writes, 0u);
  EXPECT_GT(inst.blobs->stats().dirty_recorded, 0u);

  // Recovery at 60ms (+probation): the scanner's probe-by-repair backoff
  // lands, repairs flow, and the ledger drains completely.
  cluster.sim().RunUntil(Milliseconds(500));
  EXPECT_EQ(inst.blobs->dirty_count(), 0u);
  const auto& bs = inst.blobs->stats();
  EXPECT_EQ(bs.dirty_repaired + bs.dirty_dropped, bs.dirty_recorded);
  EXPECT_GT(inst.rebuild->stats().repairs, 0u);
  EXPECT_GT(bs.rebuild_bytes, 0u);

  // Observability: the kv.* series carry the same story, and the
  // must-stay-zero counter is zero. Shard-local totals publish to the
  // session registry on flush.
  cluster.bed().FlushObservability();
  auto& m = obs.metrics;
  const obs::Labels l = obs::Labels::TenantSsd(inst.id, -1);
  EXPECT_GT(m.GetCounter(obs::schema::kKvDegradedWrites, l).value(), 0u);
  EXPECT_GT(m.GetCounter(obs::schema::kKvRebuildBytes, l).value(), 0u);
  EXPECT_EQ(m.GetCounter(obs::schema::kKvLostWrites, l).value(), 0u);
  EXPECT_EQ(m.GetGauge(obs::schema::kKvDirtyReplicas, l).value(), 0.0);
}

// Satellite (1) + tentpole invariant: when BOTH replicas of a WAL batch
// fail, the group commit must hold its waiters (the old code released
// them, losing acked writes), re-place the segment off the failed backend
// and retry until a copy lands. No ack before durability, ever.
TEST(KvFault, WalAckHeldUntilSomeReplicaIsDurable) {
  KvClusterConfig cfg = FaultCluster();
  cfg.db.memtable_bytes = 4ull << 20;  // WAL traffic only, no flush noise
  cfg.testbed.faults.failures.push_back(
      {0, Milliseconds(10), Milliseconds(40)});
  cfg.testbed.faults.failures.push_back(
      {1, Milliseconds(10), Milliseconds(40)});
  KvCluster cluster(cfg);
  auto& inst = cluster.AddInstance();
  cluster.sim().RunUntil(Milliseconds(15));

  bool acked = false;
  IoStatus final_st = IoStatus::kMediaError;
  inst.db->Put(7, 1024, 99, [&](IoStatus st) {
    acked = true;
    final_st = st;
  });
  // Deep inside the outage: the commit has been attempted and re-queued,
  // but the waiter must still be held.
  cluster.sim().RunUntil(Milliseconds(35));
  EXPECT_FALSE(acked);
  EXPECT_GT(inst.db->stats().wal_retries, 0u);

  // Both SSDs heal at 40ms; the next retry lands and the ack arrives kOk.
  cluster.sim().RunUntil(Milliseconds(200));
  EXPECT_TRUE(acked);
  EXPECT_EQ(final_st, IoStatus::kOk);
}

// Flush trims the WAL of a flushed memtable; dirty entries whose data died
// with the trim are invalidated instead of being repaired pointlessly.
TEST(KvFault, TrimInvalidatesObsoleteDirtyEntries) {
  KvClusterConfig cfg = FaultCluster();
  cfg.testbed.faults.failures.push_back({1, Milliseconds(10), /*never*/ 0});
  KvCluster cluster(cfg);
  auto& inst = cluster.AddInstance();
  cluster.sim().RunUntil(Milliseconds(12));
  // Enough traffic for several memtable rotations -> flushes -> WAL trims
  // while every shadow copy on dead SSD 1 goes onto the ledger.
  for (uint64_t k = 0; k < 900; ++k) {
    inst.db->Put(k, 1024, k, nullptr);
  }
  cluster.sim().RunUntil(Milliseconds(800));
  EXPECT_GT(inst.blobs->stats().dirty_recorded, 0u);
  EXPECT_GT(inst.blobs->stats().dirty_dropped, 0u);
  EXPECT_GT(inst.db->stats().flushes, 0u);
}

// Tentpole (4): crash + WAL replay. Every acked Put survives a process
// crash; un-acked work fails kAborted; the memtable converges to the
// pre-crash acked state.
TEST(KvFault, CrashRecoveryReplaysAckedWrites) {
  KvCluster cluster(FaultCluster());
  auto& inst = cluster.AddInstance();
  inst.db->BulkLoad(5'000, 1024);

  std::map<Key, uint64_t> acked;  // key -> stamp, ack'd before the crash
  for (uint64_t k = 0; k < 200; ++k) {
    Key key = 10'000 + k;
    uint64_t stamp = 1'000 + k;
    inst.db->Put(key, 512, stamp, [&acked, key, stamp](IoStatus st) {
      if (st == IoStatus::kOk) acked[key] = stamp;
    });
  }
  cluster.sim().RunUntil(Milliseconds(100));
  ASSERT_GT(acked.size(), 0u);

  // Ten more Puts issued and immediately crashed: never acked, must
  // resolve kAborted (not hang, not claim durability).
  int aborted = 0, late_ok = 0;
  for (uint64_t k = 0; k < 10; ++k) {
    inst.db->Put(20'000 + k, 512, 1, [&](IoStatus st) {
      st == IoStatus::kAborted ? ++aborted : ++late_ok;
    });
  }
  inst.db->SimulateCrash();
  EXPECT_EQ(inst.db->memtable_bytes(), 0u);  // volatile state gone

  bool recovered = false;
  inst.db->Recover([&](IoStatus st) {
    recovered = true;
    EXPECT_EQ(st, IoStatus::kOk);
  });
  cluster.sim().RunUntil(Milliseconds(200));
  EXPECT_TRUE(recovered);
  EXPECT_EQ(aborted, 10);
  EXPECT_EQ(late_ok, 0);
  EXPECT_EQ(inst.db->stats().crashes, 1u);
  EXPECT_EQ(inst.db->stats().recoveries, 1u);
  EXPECT_GT(inst.db->stats().replayed_records, 0u);

  // Convergence: every acked write is visible with its acked stamp.
  int checked = 0, correct = 0;
  for (const auto& [key, stamp] : acked) {
    ++checked;
    inst.db->Get(key, [&, stamp = stamp](IoStatus st, bool f, Value v) {
      if (st == IoStatus::kOk && f && v.stamp == stamp) ++correct;
    });
  }
  cluster.sim().RunUntil(Milliseconds(400));
  EXPECT_EQ(correct, checked);
}

// A second crash before any flush replays the same WAL again — replay is
// idempotent over the durable record list.
TEST(KvFault, DoubleCrashReplaysIdempotently) {
  KvClusterConfig cfg = FaultCluster();
  cfg.db.memtable_bytes = 4ull << 20;  // keep everything in WAL + memtable
  KvCluster cluster(cfg);
  auto& inst = cluster.AddInstance();
  std::map<Key, uint64_t> acked;
  for (uint64_t k = 0; k < 50; ++k) {
    Key key = 100 + k;
    inst.db->Put(key, 512, k + 1, [&acked, key, k](IoStatus st) {
      if (st == IoStatus::kOk) acked[key] = k + 1;
    });
  }
  cluster.sim().RunUntil(Milliseconds(50));
  ASSERT_EQ(acked.size(), 50u);

  for (int round = 0; round < 2; ++round) {
    inst.db->SimulateCrash();
    bool rec = false;
    inst.db->Recover([&](IoStatus) { rec = true; });
    cluster.sim().RunUntil(cluster.sim().now() + Milliseconds(100));
    ASSERT_TRUE(rec) << "round " << round;
  }
  int correct = 0;
  for (const auto& [key, stamp] : acked) {
    inst.db->Get(key, [&, stamp = stamp](IoStatus st, bool f, Value v) {
      if (st == IoStatus::kOk && f && v.stamp == stamp) ++correct;
    });
  }
  cluster.sim().RunUntil(cluster.sim().now() + Milliseconds(100));
  EXPECT_EQ(correct, 50);
  EXPECT_EQ(inst.db->stats().crashes, 2u);
  EXPECT_EQ(inst.db->stats().recoveries, 2u);
}

}  // namespace
}  // namespace gimbal::kv
