// Integration tests for the LSM DB running over the fully simulated
// disaggregated stack (blobstore -> initiators -> target -> Gimbal -> SSD).
#include <gtest/gtest.h>

#include "kv/cluster.h"
#include "kv/coro_adapters.h"
#include "sim/coro.h"

namespace gimbal::kv {
namespace {

KvClusterConfig SmallCluster(workload::Scheme scheme = workload::Scheme::kGimbal,
                             int ssds = 2) {
  KvClusterConfig cfg;
  cfg.testbed.num_ssds = ssds;
  cfg.testbed.scheme = scheme;
  cfg.testbed.ssd.logical_bytes = 128ull << 20;
  cfg.testbed.condition = workload::SsdCondition::kClean;
  cfg.hba.backend_bytes = 128ull << 20;
  cfg.db.memtable_bytes = 256 * 1024;   // small so flushes happen in tests
  cfg.db.sstable_target_bytes = 256 * 1024;
  cfg.db.level1_bytes = 1 << 20;
  return cfg;
}

TEST(KvDb, PutThenGetFromMemtable) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  bool put_done = false;
  inst.db->Put(42, 1024, 7, [&](IoStatus) { put_done = true; });
  bool found = false;
  Value got;
  inst.db->Get(42, [&](IoStatus, bool f, Value v) {
    found = f;
    got = v;
  });
  cluster.sim().RunUntil(Milliseconds(10));
  EXPECT_TRUE(put_done);
  EXPECT_TRUE(found);
  EXPECT_EQ(got.stamp, 7u);
  EXPECT_GT(inst.db->stats().memory_hits, 0u);
}

TEST(KvDb, GetMissingKey) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  bool called = false, found = true;
  inst.db->Get(999, [&](IoStatus, bool f, Value) {
    called = true;
    found = f;
  });
  cluster.sim().RunUntil(Milliseconds(10));
  EXPECT_TRUE(called);
  EXPECT_FALSE(found);
}

TEST(KvDb, DeleteHidesKey) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  inst.db->Put(5, 1024, 1, nullptr);
  inst.db->Delete(5, nullptr);
  bool found = true;
  inst.db->Get(5, [&](IoStatus, bool f, Value) { found = f; });
  cluster.sim().RunUntil(Milliseconds(10));
  EXPECT_FALSE(found);
}

TEST(KvDb, WalMakesPutsDurableBeforeCallback) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  Tick done_at = -1;
  inst.db->Put(1, 1024, 1, [&](IoStatus) { done_at = cluster.sim().now(); });
  cluster.sim().RunUntil(Milliseconds(20));
  // A WAL round trip through the fabric takes real simulated time.
  EXPECT_GT(done_at, Microseconds(10));
  EXPECT_GT(inst.db->stats().wal_writes, 0u);
  EXPECT_GT(inst.blobs->stats().writes, 0u);
}

TEST(KvDb, FlushCreatesL0Tables) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  // 512 x 1KB puts = 2 memtables' worth.
  for (uint64_t k = 0; k < 512; ++k) {
    inst.db->Put(k, 1024, k, nullptr);
  }
  cluster.sim().RunUntil(Milliseconds(200));
  EXPECT_GT(inst.db->stats().flushes, 0u);
  EXPECT_GT(inst.db->FilesAt(0) + inst.db->FilesAt(1), 0u);
  EXPECT_EQ(inst.db->immutable_count(), 0u);
}

TEST(KvDb, ReadYourWritesAcrossFlush) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  for (uint64_t k = 0; k < 600; ++k) {
    inst.db->Put(k, 1024, 1000 + k, nullptr);
  }
  cluster.sim().RunUntil(Milliseconds(300));
  // Spot-check keys that have certainly been flushed out of memory.
  int checked = 0, correct = 0;
  for (uint64_t k = 0; k < 600; k += 37) {
    ++checked;
    inst.db->Get(k, [&, k](IoStatus, bool f, Value v) {
      if (f && v.stamp == 1000 + k) ++correct;
    });
  }
  cluster.sim().RunUntil(cluster.sim().now() + Milliseconds(100));
  EXPECT_EQ(correct, checked);
}

TEST(KvDb, OverwriteNewestWinsAfterCompaction) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  for (int round = 0; round < 6; ++round) {
    for (uint64_t k = 0; k < 256; ++k) {
      inst.db->Put(k, 1024, static_cast<uint64_t>(round) * 1000 + k, nullptr);
    }
    cluster.sim().RunUntil(cluster.sim().now() + Milliseconds(100));
  }
  cluster.sim().RunUntil(cluster.sim().now() + Milliseconds(300));
  EXPECT_GT(inst.db->stats().compactions, 0u);
  int correct = 0;
  for (uint64_t k = 0; k < 256; k += 17) {
    inst.db->Get(k, [&, k](IoStatus, bool f, Value v) {
      if (f && v.stamp == 5000 + k) ++correct;
    });
  }
  cluster.sim().RunUntil(cluster.sim().now() + Milliseconds(100));
  EXPECT_EQ(correct, 16);
}

TEST(KvDb, BulkLoadServesReadsWithIo) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  inst.db->BulkLoad(10'000, 1024);
  bool found = false;
  Tick lat = 0;
  Tick start = cluster.sim().now();
  inst.db->Get(1234, [&](IoStatus, bool f, Value) {
    found = f;
    lat = cluster.sim().now() - start;
  });
  cluster.sim().RunUntil(Milliseconds(20));
  EXPECT_TRUE(found);
  EXPECT_GT(lat, Microseconds(50));  // paid a real data-block read
  EXPECT_GT(inst.db->stats().data_block_reads, 0u);
}

TEST(KvDb, ReplicationWritesBothCopies) {
  KvClusterConfig cfg = SmallCluster();
  cfg.db.replicate = true;
  KvCluster cluster(cfg);
  auto& inst = cluster.AddInstance();
  for (uint64_t k = 0; k < 300; ++k) inst.db->Put(k, 1024, k, nullptr);
  cluster.sim().RunUntil(Milliseconds(300));
  // Each flushed table must carry shadow placement on a distinct backend.
  ASSERT_GT(inst.db->FilesAt(0) + inst.db->FilesAt(1), 0u);
  uint64_t shadows = 0;
  for (int l = 0; l < 2; ++l) {
    (void)l;
  }
  // Blobstore stats: replicated writes are double single-copy writes.
  EXPECT_GT(inst.blobs->stats().writes, 2u);
  shadows = inst.blobs->stats().writes;
  (void)shadows;
}

TEST(KvDb, LoadBalancerSteersReadsToShadow) {
  KvClusterConfig cfg = SmallCluster(workload::Scheme::kGimbal, 2);
  cfg.load_balance_reads = true;
  KvCluster cluster(cfg);
  auto& inst = cluster.AddInstance();
  inst.db->BulkLoad(20'000, 1024);
  // Saturate backend 0 with a fio tenant so its credits drop.
  workload::FioSpec hog;
  hog.io_bytes = 128 * 1024;
  hog.sequential = true;
  hog.queue_depth = 16;
  workload::FioWorker& w = cluster.bed().AddWorker(hog, 0);
  w.Start();
  cluster.sim().RunUntil(Milliseconds(100));
  for (uint64_t k = 0; k < 2000; ++k) {
    inst.db->Get((k * 97) % 20000, nullptr);
    if (k % 50 == 0) {
      cluster.sim().RunUntil(cluster.sim().now() + Milliseconds(1));
    }
  }
  cluster.sim().RunUntil(cluster.sim().now() + Milliseconds(200));
  EXPECT_GT(inst.blobs->stats().balanced_to_shadow, 0u);
}

TEST(KvDb, WriteStallsUnderFloodEventuallyDrain) {
  KvClusterConfig cfg = SmallCluster();
  cfg.db.max_immutables = 1;
  KvCluster cluster(cfg);
  auto& inst = cluster.AddInstance();
  int done = 0;
  const int n = 3000;
  for (int k = 0; k < n; ++k) {
    inst.db->Put(static_cast<Key>(k), 1024, 1, [&](IoStatus) { ++done; });
  }
  cluster.sim().RunUntil(Seconds(3));
  EXPECT_EQ(done, n);
  EXPECT_GT(inst.db->stats().write_stalls, 0u);
}

TEST(YcsbClientTest, RunsAllWorkloads) {
  for (auto wl : {workload::YcsbWorkload::kA, workload::YcsbWorkload::kB,
                  workload::YcsbWorkload::kC, workload::YcsbWorkload::kD,
                  workload::YcsbWorkload::kF}) {
    KvCluster cluster(SmallCluster());
    auto& inst = cluster.AddInstance();
    inst.db->BulkLoad(5'000, 1024);
    workload::YcsbSpec spec;
    spec.workload = wl;
    spec.record_count = 5'000;
    YcsbClient client(cluster.sim(), *inst.db, spec, 4);
    client.Start();
    cluster.sim().RunUntil(Milliseconds(200));
    client.Stop();
    EXPECT_GT(client.stats().ops, 50u) << ToString(wl);
    if (wl != workload::YcsbWorkload::kC) {
      EXPECT_GT(client.stats().updates + client.stats().inserts +
                    client.stats().rmws,
                0u)
          << ToString(wl);
    }
  }
}

TEST(YcsbClientTest, ReadLatencyRecorded) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  inst.db->BulkLoad(5'000, 1024);
  workload::YcsbSpec spec;
  spec.workload = workload::YcsbWorkload::kC;
  spec.record_count = 5'000;
  YcsbClient client(cluster.sim(), *inst.db, spec, 8);
  client.Start();
  cluster.sim().RunUntil(Milliseconds(300));
  EXPECT_GT(client.stats().read_latency.count(), 100u);
  EXPECT_GT(client.stats().read_latency.mean(), 0.0);
}

}  // namespace
}  // namespace gimbal::kv

namespace gimbal::kv {
namespace {

TEST(YcsbClientTest, WorkloadEScans) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  inst.db->BulkLoad(5'000, 1024);
  workload::YcsbSpec spec;
  spec.workload = workload::YcsbWorkload::kE;
  spec.record_count = 5'000;
  YcsbClient client(cluster.sim(), *inst.db, spec, 4);
  client.Start();
  cluster.sim().RunUntil(Milliseconds(300));
  client.Stop();
  EXPECT_GT(client.stats().scans, 20u);
  EXPECT_GT(client.stats().scanned_records, client.stats().scans);
  EXPECT_GT(client.stats().inserts, 0u);
  EXPECT_GT(inst.db->stats().scan_block_reads, 0u);
}

}  // namespace
}  // namespace gimbal::kv

namespace gimbal::kv {
namespace {

// Coroutine adapters drive the DB with sequential-looking code.
sim::Task CoroClient(KvDb& db, bool& done) {
  co_await AwaitPut(db, 7, 1024, 42);
  auto [found, v] = co_await AwaitGet(db, 7);
  EXPECT_TRUE(found);
  EXPECT_EQ(v.stamp, 42u);
  auto [missing, v2] = co_await AwaitGet(db, 9999);
  (void)v2;
  EXPECT_FALSE(missing);
  auto rows = co_await AwaitScan(db, 0, 5);
  EXPECT_GE(rows.size(), 1u);
  done = true;
}

TEST(KvCoro, SequentialClient) {
  KvCluster cluster(SmallCluster());
  auto& inst = cluster.AddInstance();
  bool done = false;
  CoroClient(*inst.db, done);
  cluster.sim().RunUntil(Milliseconds(50));
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace gimbal::kv
