// KV chaos property sweep (docs/FAULTS.md, docs/TESTING.md): YCSB traffic
// over a replicated two-instance cluster while the fault injector runs a
// mix of media-error bursts, stall windows, SSD failures and a tenant
// crash. Every mix × seed must satisfy, with a collect-everything
// (fail_fast=false) invariant checker:
//   * no acked write is ever lost (kv.ack.lost never fires),
//   * the dirty-replica ledger balances and drains once faults heal
//     (replica count converges back to 2),
//   * the run drains clean (IO conservation, credit law, KV ledgers),
//   * the event schedule is bit-identical at --threads=1/2/4.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/invariants.h"
#include "kv/cluster.h"
#include "obs/obs.h"

namespace gimbal::kv {
namespace {

constexpr size_t kTraceLimit = 4u << 20;

std::string ViolationReport(const check::InvariantChecker& chk) {
  std::string out;
  size_t shown = std::min<size_t>(chk.violations().size(), 3);
  for (size_t i = 0; i < shown; ++i) {
    const auto& v = chk.violations()[i];
    out += "\n  [" + std::to_string(v.when) + "] " + v.invariant +
           " tenant=" + std::to_string(v.tenant) +
           " ssd=" + std::to_string(v.ssd) + ": " + v.detail;
  }
  if (chk.violations().size() > shown) {
    out += "\n  ... and " + std::to_string(chk.violations().size() - shown) +
           " more";
  }
  return out;
}

// The five fault mixes. All injected faults heal before the drain window,
// so every mix can assert full ledger convergence.
enum class Mix {
  kMediaBothSsds,   // correlated media-error bursts on both backends
  kReplicaOutage,   // one backend dark for 60ms, then recovers
  kStallPlusMedia,  // latency stall on SSD 0 while SSD 1 throws errors
  kStaggeredKill,   // both backends fail, staggered, both recover
  kTenantCrash,     // media burst + instance-0 process crash and recovery
};
constexpr Mix kAllMixes[] = {Mix::kMediaBothSsds, Mix::kReplicaOutage,
                             Mix::kStallPlusMedia, Mix::kStaggeredKill,
                             Mix::kTenantCrash};

const char* Name(Mix m) {
  switch (m) {
    case Mix::kMediaBothSsds: return "media-both";
    case Mix::kReplicaOutage: return "replica-outage";
    case Mix::kStallPlusMedia: return "stall+media";
    case Mix::kStaggeredKill: return "staggered-kill";
    case Mix::kTenantCrash: return "tenant-crash";
  }
  return "?";
}

fault::FaultPlan PlanFor(Mix m) {
  fault::FaultPlan plan;
  switch (m) {
    case Mix::kMediaBothSsds:
      plan.media_errors.push_back(
          {0, Milliseconds(20), Milliseconds(120), 0.25, Microseconds(150)});
      plan.media_errors.push_back(
          {1, Milliseconds(30), Milliseconds(110), 0.25, Microseconds(150)});
      break;
    case Mix::kReplicaOutage:
      plan.failures.push_back({1, Milliseconds(20), Milliseconds(80)});
      break;
    case Mix::kStallPlusMedia:
      plan.stalls.push_back(
          {0, Milliseconds(20), Milliseconds(100), Microseconds(300)});
      plan.media_errors.push_back(
          {1, Milliseconds(40), Milliseconds(90), 0.5, Microseconds(200)});
      break;
    case Mix::kStaggeredKill:
      plan.failures.push_back({0, Milliseconds(20), Milliseconds(60)});
      plan.failures.push_back({1, Milliseconds(70), Milliseconds(110)});
      break;
    case Mix::kTenantCrash:
      plan.media_errors.push_back(
          {0, Milliseconds(30), Milliseconds(100), 0.3, Microseconds(150)});
      break;
  }
  return plan;
}

struct ChaosOutcome {
  uint64_t ops = 0;
  uint64_t failed = 0;
  uint64_t aborted = 0;
  uint64_t dirty_recorded = 0;
  uint64_t digest = 0;
  size_t dropped = 0;
};

// One chaos run: 2 DB instances over 2 replicated backends, closed-loop
// YCSB-A clients, faults per `mix`, full drain, all convergence asserts.
ChaosOutcome RunChaos(Mix mix, uint64_t seed, int threads) {
  check::InvariantChecker chk(/*fail_fast=*/false);
  obs::Observability obs;
  obs.tracer.Enable(kTraceLimit);

  KvClusterConfig cfg;
  cfg.testbed.num_ssds = 2;
  cfg.testbed.scheme = workload::Scheme::kGimbal;
  cfg.testbed.ssd.logical_bytes = 128ull << 20;
  cfg.testbed.condition = workload::SsdCondition::kClean;
  cfg.testbed.faults = PlanFor(mix);
  cfg.testbed.fault_seed = seed;
  cfg.testbed.check = &chk;
  cfg.testbed.obs = &obs;
  cfg.testbed.threads = threads;
  cfg.hba.backend_bytes = 128ull << 20;
  cfg.db.memtable_bytes = 256 * 1024;  // rotate often: WAL + flush traffic
  cfg.db.sstable_target_bytes = 256 * 1024;
  cfg.db.level1_bytes = 1 << 20;

  KvCluster cluster(cfg);
  std::vector<KvCluster::Instance*> insts;
  std::vector<std::unique_ptr<YcsbClient>> clients;
  for (int i = 0; i < 2; ++i) {
    auto& inst = cluster.AddInstance();
    insts.push_back(&inst);
    inst.db->BulkLoad(4'000, 1024);
    workload::YcsbSpec spec;
    spec.workload = workload::YcsbWorkload::kA;
    spec.record_count = 4'000;
    spec.value_bytes = 1024;
    spec.seed = seed * 97 + static_cast<uint64_t>(i);
    clients.push_back(std::make_unique<YcsbClient>(cluster.sim(), *inst.db,
                                                   spec, /*concurrency=*/4));
  }

  int recovered = 0;
  if (mix == Mix::kTenantCrash) {
    // Instance 0 "process" dies mid-burst and replays its WAL. Scheduled
    // on the client shard, where the DB lives, so it is deterministic
    // under sharding.
    KvDb* db0 = insts[0]->db.get();
    cluster.sim().After(Milliseconds(60), [db0, &recovered] {
      db0->SimulateCrash();
      db0->Recover([&recovered](IoStatus st) {
        EXPECT_EQ(st, IoStatus::kOk);
        ++recovered;
      });
    });
  }

  for (auto& c : clients) c->Start();
  cluster.sim().RunUntil(Milliseconds(150));
  for (auto& c : clients) c->Stop();
  // Faults have healed; give inflight ops, WAL retries and the rebuild
  // scanners room to converge, then drain the fabric completely.
  cluster.sim().RunUntil(Milliseconds(600));
  for (auto& ini : cluster.bed().initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  cluster.sim().Run();
  cluster.bed().FlushObservability();

  std::string label = std::string(Name(mix)) + " seed=" +
                      std::to_string(seed) + " t=" + std::to_string(threads);
  ChaosOutcome out;
  for (size_t i = 0; i < clients.size(); ++i) {
    const auto& cs = clients[i]->stats();
    out.ops += cs.ops;
    out.failed += cs.failed;
    out.aborted += cs.aborted;
    const auto& bs = insts[i]->blobs->stats();
    out.dirty_recorded += bs.dirty_recorded;
    // Ledger balance + convergence: every dirty replica was repaired or
    // invalidated, and nothing is pending — replica count is 2 again.
    EXPECT_EQ(insts[i]->blobs->dirty_count(), 0u) << label << " inst " << i;
    EXPECT_EQ(bs.dirty_repaired + bs.dirty_dropped, bs.dirty_recorded)
        << label << " inst " << i;
  }
  EXPECT_GT(out.ops, 0u) << label;
  if (mix != Mix::kTenantCrash) {
    // No crash in the plan: nothing may resolve kAborted.
    EXPECT_EQ(out.aborted, 0u) << label;
  } else {
    EXPECT_EQ(recovered, 1) << label;
  }
  // The collect-everything checker: kv.ack.lost (an acked write with no
  // durable copy) and every other invariant must be silent, and the
  // drained state must balance.
  EXPECT_TRUE(chk.CheckDrained()) << label << ViolationReport(chk);
  EXPECT_TRUE(chk.ok()) << label << ViolationReport(chk);
  for (const auto& v : chk.violations()) {
    EXPECT_NE(v.invariant, "kv.ack.lost") << label << ": " << v.detail;
  }
  out.digest = obs.tracer.Digest();
  out.dropped = obs.tracer.dropped();
  EXPECT_EQ(out.dropped, 0u) << label;
  return out;
}

// Satellite: every fault mix × 3 seeds survives with zero lost acked
// writes and balanced ledgers.
TEST(KvChaos, SweepAllMixesAndSeeds) {
  for (Mix mix : kAllMixes) {
    uint64_t total_dirty = 0;
    for (uint64_t seed : {1u, 7u, 23u}) {
      ChaosOutcome out = RunChaos(mix, seed, /*threads=*/1);
      total_dirty += out.dirty_recorded;
    }
    // The outage mixes must actually exercise the degraded-write path,
    // otherwise the sweep is vacuous.
    if (mix == Mix::kReplicaOutage || mix == Mix::kStaggeredKill) {
      EXPECT_GT(total_dirty, 0u) << Name(mix);
    }
  }
}

// Tentpole determinism contract under chaos: the merged trace digest is
// bit-identical at any worker-thread count. ("Sharded" in the name keys
// this test into the TSan CI shard.)
TEST(KvChaos, ShardedDigestIdenticalAcrossThreadCounts) {
  for (Mix mix : {Mix::kStallPlusMedia, Mix::kTenantCrash}) {
    ChaosOutcome t1 = RunChaos(mix, /*seed=*/5, /*threads=*/1);
    ChaosOutcome t2 = RunChaos(mix, /*seed=*/5, /*threads=*/2);
    ChaosOutcome t4 = RunChaos(mix, /*seed=*/5, /*threads=*/4);
    EXPECT_EQ(t1.digest, t2.digest) << Name(mix);
    EXPECT_EQ(t1.digest, t4.digest) << Name(mix);
    EXPECT_EQ(t1.ops, t2.ops) << Name(mix);
    EXPECT_EQ(t1.ops, t4.ops) << Name(mix);
  }
}

}  // namespace
}  // namespace gimbal::kv
