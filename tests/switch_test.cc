// Focused tests for the assembled GimbalSwitch pipeline on controlled
// devices, plus cross-cutting properties (determinism, conservation).
#include <gtest/gtest.h>

#include "core/gimbal_switch.h"
#include "ssd/null_device.h"
#include "ssd/ssd.h"
#include "workload/runner.h"

namespace gimbal::core {
namespace {

IoRequest Req(uint64_t id, TenantId t, IoType type, uint32_t len,
              uint64_t offset = 0,
              IoPriority prio = IoPriority::kNormal) {
  IoRequest r;
  r.id = id;
  r.tenant = t;
  r.type = type;
  r.offset = offset;
  r.length = len;
  r.priority = prio;
  return r;
}

TEST(GimbalSwitch, CompletesEverythingOnNullDevice) {
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30, Microseconds(5));
  GimbalSwitch sw(sim, dev);
  uint64_t done = 0;
  sw.set_completion_fn([&](const IoRequest&, const IoCompletion&) { ++done; });
  for (uint64_t i = 0; i < 2000; ++i) {
    sw.OnRequest(Req(i + 1, static_cast<TenantId>(i % 4) + 1, IoType::kRead,
                     4096, (i % 256) * 4096));
  }
  sim.Run();
  EXPECT_EQ(done, 2000u);
  EXPECT_EQ(sw.io_outstanding(), 0u);
  EXPECT_EQ(sw.stats().requests, sw.stats().completions);
}

TEST(GimbalSwitch, CreditPiggybackedOnCompletions) {
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30, Microseconds(5));
  GimbalSwitch sw(sim, dev);
  uint32_t last_credit = 0;
  sw.set_completion_fn([&](const IoRequest&, const IoCompletion& cpl) {
    last_credit = cpl.credit;
  });
  for (uint64_t i = 0; i < 64; ++i) {
    sw.OnRequest(Req(i + 1, 1, IoType::kRead, 4096, i * 4096));
  }
  sim.Run();
  EXPECT_GT(last_credit, 0u);
  EXPECT_EQ(last_credit, sw.CreditFor(1));
}

TEST(GimbalSwitch, ViewReflectsWriteCostSplit) {
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30, Microseconds(5));
  GimbalSwitch sw(sim, dev);
  VirtualView v = sw.View(1);
  // Initial write cost = worst (9): the read headroom is 9x the write's.
  EXPECT_NEAR(v.read_headroom_bps / v.write_headroom_bps, 9.0, 1e-6);
  EXPECT_GT(v.credits, 0u);
}

TEST(GimbalSwitch, PriorityTagFastPath) {
  // With a backlog from one tenant, that tenant's high-priority requests
  // overtake its own normal-priority queue (§3.5 per-tenant priority
  // queues).
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30, Microseconds(50));
  GimbalSwitch sw(sim, dev);
  std::vector<uint64_t> completion_order;
  sw.set_completion_fn([&](const IoRequest& r, const IoCompletion&) {
    completion_order.push_back(r.id);
  });
  for (uint64_t i = 1; i <= 40; ++i) {
    sw.OnRequest(Req(i, 1, IoType::kRead, 4096, i * 4096,
                     IoPriority::kNormal));
  }
  sw.OnRequest(Req(100, 1, IoType::kRead, 4096, 0, IoPriority::kHigh));
  sim.Run();
  auto pos = std::find(completion_order.begin(), completion_order.end(),
                       uint64_t{100});
  ASSERT_NE(pos, completion_order.end());
  // The high-priority request completes well before the backlog drains.
  EXPECT_LT(pos - completion_order.begin(), 20);
}

TEST(GimbalSwitch, DeterministicAcrossRuns) {
  auto run = []() {
    workload::TestbedConfig cfg;
    cfg.scheme = workload::Scheme::kGimbal;
    cfg.condition = workload::SsdCondition::kFragmented;
    cfg.ssd.logical_bytes = 128ull << 20;
    workload::Testbed bed(cfg);
    workload::FioSpec spec;
    spec.read_ratio = 0.8;
    spec.io_bytes = 4096;
    spec.queue_depth = 16;
    spec.seed = 5;
    workload::FioWorker& w = bed.AddWorker(spec);
    bed.Run(Milliseconds(50), Milliseconds(200));
    return std::tuple(w.stats().total_bytes(), w.stats().read_ios,
                      w.stats().read_latency.p99(),
                      bed.sim().events_executed());
  };
  EXPECT_EQ(run(), run());
}

TEST(GimbalSwitch, ByteConservationThroughFullStack) {
  workload::TestbedConfig cfg;
  cfg.scheme = workload::Scheme::kGimbal;
  cfg.ssd.logical_bytes = 128ull << 20;
  workload::Testbed bed(cfg);
  workload::FioSpec spec;
  spec.read_ratio = 0.5;
  spec.io_bytes = 16384;
  spec.queue_depth = 8;
  spec.seed = 9;
  workload::FioWorker& w = bed.AddWorker(spec);
  w.Start();
  bed.sim().RunUntil(Milliseconds(200));
  w.Stop();
  bed.sim().RunUntil(Milliseconds(400));
  ASSERT_TRUE(bed.sim().idle());
  // Client-side accounting matches the device's: every byte the worker saw
  // completed was also counted by the SSD.
  const auto& c = bed.ssd(0)->counters();
  EXPECT_EQ(w.stats().read_bytes, c.read_bytes);
  EXPECT_EQ(w.stats().write_bytes, c.write_bytes);
}

TEST(GimbalSwitch, ManyTenantsAllServed) {
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30, Microseconds(20));
  GimbalSwitch sw(sim, dev);
  std::map<TenantId, int> served;
  sw.set_completion_fn([&](const IoRequest& r, const IoCompletion&) {
    ++served[r.tenant];
  });
  // 24 tenants (3x the slot threshold): everyone must still progress via
  // the min-one-slot rule.
  uint64_t id = 1;
  for (int round = 0; round < 50; ++round) {
    for (TenantId t = 1; t <= 24; ++t) {
      const uint64_t this_id = id++;
      sw.OnRequest(Req(this_id, t, IoType::kRead, 4096, (id % 128) * 4096));
    }
  }
  sim.Run();
  for (TenantId t = 1; t <= 24; ++t) {
    EXPECT_EQ(served[t], 50) << "tenant " << t;
  }
}

class SwitchWorkerSweep
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(SwitchWorkerSweep, EqualWorkersGetEqualService) {
  // Property: N identical workers sharing one Gimbal SSD end within 25% of
  // each other's bandwidth.
  auto [workers, io_bytes] = GetParam();
  workload::TestbedConfig cfg;
  cfg.scheme = workload::Scheme::kGimbal;
  cfg.ssd.logical_bytes = 256ull << 20;
  workload::Testbed bed(cfg);
  for (int i = 0; i < workers; ++i) {
    workload::FioSpec spec;
    spec.io_bytes = io_bytes;
    spec.queue_depth = io_bytes >= 131072 ? 4 : 32;
    spec.seed = static_cast<uint64_t>(i) + 1;
    bed.AddWorker(spec);
  }
  bed.Run(Milliseconds(300), Milliseconds(500));
  uint64_t lo = UINT64_MAX, hi = 0;
  for (auto& w : bed.workers()) {
    lo = std::min(lo, w->stats().total_bytes());
    hi = std::max(hi, w->stats().total_bytes());
  }
  ASSERT_GT(lo, 0u);
  EXPECT_LT(static_cast<double>(hi) / static_cast<double>(lo), 1.25);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, SwitchWorkerSweep,
    ::testing::Values(std::tuple(2, 4096u), std::tuple(4, 4096u),
                      std::tuple(8, 4096u), std::tuple(4, 131072u),
                      std::tuple(8, 131072u), std::tuple(16, 4096u)));

}  // namespace
}  // namespace gimbal::core
