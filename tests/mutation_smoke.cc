// Mutation smoke test (docs/TESTING.md): proves the invariant checker
// actually catches bugs, not just that clean runs stay quiet.
//
// Built with -DGIMBAL_MUTATIONS=1, which compiles nine seeded off-by-one
// bugs into the scheduler/flow-control/locking/placement hot paths behind
// a runtime selector (core/params.h). Each invocation activates one
// mutation, runs a small testbed with a fail_fast=false checker attached,
// and exits 0 iff the checker flagged the invariant family that mutation
// breaks:
//
//   none           no mutation; the run must be violation-free and the
//                  drain balance must close (guards against a checker that
//                  "catches" everything by crying wolf)
//   credit_leak    client issues with credit_total+1 -> client.credit.*
//   drr_skew       even tenants get 4x quantum grants  -> drr.*
//   bucket_overrun consume charges bytes/2             -> bucket.*
//   slot_overrun   TryOpenSlot allows allotted+1       -> slot.*
//   health_skip    transition validation bypassed      -> health.*
//   lock_leak      2PL ReleaseAll forgets a held lock  -> drain.txn.*
//   phantom_unlock ReleaseAll reports a lock twice     -> txn.lock.phantom
//   placement_collapse HBA excludes backend, not node  -> kv.placement.*
//   uplink_leak    node 0 skips uplink accounting      -> rack.uplink.*
//
// ctest runs all ten (tests/CMakeLists.txt).
#include <cstdio>
#include <cstring>
#include <string>

#include "check/invariants.h"
#include "core/drr_scheduler.h"
#include "core/params.h"
#include "core/write_cost.h"
#include "kv/cluster.h"
#include "kv/txn.h"
#include "workload/fio.h"
#include "workload/runner.h"

using namespace gimbal;
using workload::Scheme;
using workload::Testbed;
using workload::TestbedConfig;

namespace {

// Two-tenant 4KiB mix on one Gimbal SSD: exercises credits, DRR rounds,
// the token bucket and the latency monitor in ~120ms of simulated time.
void RunGimbalMix(check::InvariantChecker* chk) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.ssd.logical_bytes = 256ull << 20;
  cfg.check = chk;
  Testbed bed(cfg);
  for (int i = 0; i < 2; ++i) {
    workload::FioSpec spec;
    spec.io_bytes = 4096;
    spec.queue_depth = 16;
    spec.read_ratio = 0.7;
    spec.seed = 10 + static_cast<uint64_t>(i);
    bed.AddWorker(spec);
  }
  bed.Run(Milliseconds(20), Milliseconds(100));
}

// Drive the DRR scheduler directly: 32 slot-filling 128KiB reads from one
// tenant, dequeued without ever completing. Past the allotment the
// (mutated) scheduler opens one slot too many. In the full testbed the
// congestion control keeps occupancy below the cap on healthy devices, so
// the cap must be provoked at the unit level to be checkable at all.
void RunSlotPressure(check::InvariantChecker* chk) {
  core::GimbalParams params;
  core::WriteCostEstimator cost(params);
  core::DrrScheduler sched(params, cost);
  sched.AttachChecker(chk, 0);
  for (uint64_t i = 0; i < 32; ++i) {
    IoRequest req;
    req.id = i + 1;
    req.tenant = 1;
    req.type = IoType::kRead;
    req.offset = i * 128 * 1024;
    req.length = 128 * 1024;
    sched.Enqueue(req);
  }
  while (sched.Dequeue()) {
  }
}

// Stall window [10,30)ms on an SSD that hard-fails at 20ms with no
// recovery: at stall end the (mutated) fault layer drives an illegal
// failed->healthy transition.
void RunHealthConflict(check::InvariantChecker* chk) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.ssd.logical_bytes = 256ull << 20;
  cfg.check = chk;
  cfg.faults.stalls.push_back(
      {0, Milliseconds(10), Milliseconds(30), Milliseconds(1)});
  cfg.faults.failures.push_back({0, Milliseconds(20), /*recover_at=*/0});
  Testbed bed(cfg);
  bed.sim().RunUntil(Milliseconds(40));
}

// Drive the 2PL lock manager directly through one two-key transaction and
// then close the books: the (mutated) ReleaseAll forgets the last held
// key, so the checker's acquired/released ledger cannot balance at drain.
void RunLockLeak(check::InvariantChecker* chk) {
  kv::LockManager lm(kv::TxnProtocol::kWaitDie);
  lm.AttachObservability(nullptr, /*instance=*/0);
  lm.AttachChecker(chk);
  lm.Begin(1, 1, nullptr);
  lm.Acquire(1, 100, kv::LockMode::kExclusive, nullptr);
  lm.Acquire(1, 101, kv::LockMode::kExclusive, nullptr);
  lm.ReleaseAll(1);
  chk->CheckDrained();
}

// Single-key transaction whose (mutated) ReleaseAll reports the key
// released twice — the second release is of a lock no longer held.
void RunPhantomUnlock(check::InvariantChecker* chk) {
  kv::LockManager lm(kv::TxnProtocol::kWaitDie);
  lm.AttachObservability(nullptr, /*instance=*/0);
  lm.AttachChecker(chk);
  lm.Begin(1, 1, nullptr);
  lm.Acquire(1, 100, kv::LockMode::kExclusive, nullptr);
  lm.ReleaseAll(1);
}

// Fault-free two-node rack cluster: every replicated write (WAL chunks,
// memtable flushes) reports its (primary, shadow) nodes to the checker.
// The (mutated) allocator excludes only the exact primary backend instead
// of its whole node, so ties collapse onto the primary's node sibling and
// the very first replicated write trips kv.placement.domain.
void RunRackPlacement(check::InvariantChecker* chk) {
  kv::KvClusterConfig cfg;
  cfg.testbed.scheme = Scheme::kGimbal;
  cfg.testbed.num_ssds = 4;
  cfg.testbed.nodes = 2;
  cfg.testbed.target.cores = 2;
  cfg.testbed.ssd.logical_bytes = 128ull << 20;
  cfg.testbed.check = chk;
  cfg.hba.backend_bytes = 128ull << 20;
  cfg.db.memtable_bytes = 64 * 1024;
  kv::KvCluster cluster(cfg);
  auto& inst = cluster.AddInstance();
  for (uint64_t k = 0; k < 32; ++k) {
    inst.db->Put(k, 1024, /*stamp=*/0, [](IoStatus) {});
  }
  cluster.sim().RunUntil(Milliseconds(50));
}

// Two fio workers on a two-node rack: the (mutated) fabric skips the
// shared-uplink byte accounting for traffic from node 0, so the first
// node-0 message breaks the per-node vs. total conservation sum.
void RunRackMix(check::InvariantChecker* chk) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.num_ssds = 4;
  cfg.nodes = 2;
  cfg.target.cores = 2;
  cfg.ssd.logical_bytes = 256ull << 20;
  cfg.check = chk;
  Testbed bed(cfg);
  for (int i = 0; i < 2; ++i) {
    workload::FioSpec spec;
    spec.io_bytes = 4096;
    spec.queue_depth = 8;
    spec.read_ratio = 0.7;
    spec.seed = 10 + static_cast<uint64_t>(i);
    bed.AddWorker(spec, /*ssd_index=*/i);
  }
  bed.Run(Milliseconds(10), Milliseconds(50));
}

struct Case {
  const char* name;
  mut::Mutation mutation;
  const char* expect_prefix;  // nullptr: expect a clean run
  void (*run)(check::InvariantChecker*);
};

const Case kCases[] = {
    {"none", mut::Mutation::kNone, nullptr, RunGimbalMix},
    {"credit_leak", mut::Mutation::kCreditLeak, "client.credit", RunGimbalMix},
    {"drr_skew", mut::Mutation::kDrrSkew, "drr.", RunGimbalMix},
    {"bucket_overrun", mut::Mutation::kBucketOverrun, "bucket.", RunGimbalMix},
    {"slot_overrun", mut::Mutation::kSlotOverrun, "slot.", RunSlotPressure},
    {"health_skip", mut::Mutation::kHealthSkip, "health.", RunHealthConflict},
    {"lock_leak", mut::Mutation::kLockLeak, "drain.txn.", RunLockLeak},
    {"phantom_unlock", mut::Mutation::kPhantomUnlock, "txn.lock.phantom",
     RunPhantomUnlock},
    {"placement_collapse", mut::Mutation::kPlacementCollapse, "kv.placement",
     RunRackPlacement},
    {"uplink_leak", mut::Mutation::kUplinkLeak, "rack.uplink", RunRackMix},
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <mutation>\n  mutations:", argv[0]);
    for (const Case& c : kCases) std::fprintf(stderr, " %s", c.name);
    std::fprintf(stderr, "\n");
    return 2;
  }
  const Case* picked = nullptr;
  for (const Case& c : kCases) {
    if (std::strcmp(argv[1], c.name) == 0) picked = &c;
  }
  if (!picked) {
    std::fprintf(stderr, "unknown mutation '%s'\n", argv[1]);
    return 2;
  }

  mut::g_active = picked->mutation;
  check::InvariantChecker chk(/*fail_fast=*/false);
  picked->run(&chk);

  if (!picked->expect_prefix) {
    if (!chk.ok()) {
      std::fprintf(stderr, "FAIL: clean run produced %zu violation(s); "
                           "first: %s (%s)\n",
                   chk.violations().size(),
                   chk.violations()[0].invariant.c_str(),
                   chk.violations()[0].detail.c_str());
      return 1;
    }
    if (chk.checks_run() == 0) {
      std::fprintf(stderr, "FAIL: checker ran zero checks — not attached?\n");
      return 1;
    }
    std::printf("PASS: clean run, %llu checks, 0 violations\n",
                static_cast<unsigned long long>(chk.checks_run()));
    return 0;
  }

  for (const auto& v : chk.violations()) {
    if (v.invariant.compare(0, std::strlen(picked->expect_prefix),
                            picked->expect_prefix) == 0) {
      std::printf("PASS: mutation '%s' caught as %s at t=%lld (%s)\n",
                  picked->name, v.invariant.c_str(),
                  static_cast<long long>(v.when), v.detail.c_str());
      return 0;
    }
  }
  std::fprintf(stderr,
               "FAIL: mutation '%s' escaped — %zu violation(s), none "
               "matching '%s*'\n",
               picked->name, chk.violations().size(), picked->expect_prefix);
  for (size_t i = 0; i < chk.violations().size() && i < 5; ++i) {
    std::fprintf(stderr, "  got: %s\n",
                 chk.violations()[i].invariant.c_str());
  }
  return 1;
}
