// Unit tests for the dense index-pool containers (src/common/index_arena.h)
// that back every per-tenant hot-path map: SlabArena slot recycling and
// live-list bookkeeping under churn, and IdIndexMap's open-addressing
// semantics — overwrite, backshift deletion across wrapped probe chains,
// and growth.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/index_arena.h"
#include "common/rng.h"

namespace gimbal::common {
namespace {

struct Slot {
  explicit Slot(uint64_t k) : key(k) { scratch.reserve(4); }
  void Reset(uint64_t k) {
    key = k;
    ++resets;  // scratch capacity must survive recycling
    scratch.clear();
  }
  uint64_t key;
  int resets = 0;
  std::vector<int> scratch;
};

TEST(SlabArena, AllocateFreeRecyclesLifo) {
  SlabArena<Slot> a;
  const uint32_t s0 = a.Allocate(10);
  const uint32_t s1 = a.Allocate(11);
  const uint32_t s2 = a.Allocate(12);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.capacity(), 3u);

  a.Free(s1);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.free_count(), 1u);

  // LIFO recycling: the freed slot comes back first, Reset() not a fresh
  // construction.
  const uint32_t s3 = a.Allocate(13);
  EXPECT_EQ(s3, s1);
  EXPECT_EQ(a[s3].key, 13u);
  EXPECT_EQ(a[s3].resets, 1);
  EXPECT_EQ(a.capacity(), 3u);  // no new slot carved
  (void)s0;
  (void)s2;
}

TEST(SlabArena, LiveListTracksSwapRemove) {
  SlabArena<Slot> a;
  std::vector<uint32_t> slots;
  for (uint64_t k = 0; k < 8; ++k) slots.push_back(a.Allocate(k));
  a.Free(slots[2]);
  a.Free(slots[5]);

  std::set<uint32_t> live(a.live().begin(), a.live().end());
  EXPECT_EQ(live.size(), 6u);
  EXPECT_EQ(a.live().size(), a.size());
  EXPECT_FALSE(live.count(slots[2]));
  EXPECT_FALSE(live.count(slots[5]));
  for (uint32_t s : a.live()) EXPECT_LT(a[s].key, 8u);
}

TEST(SlabArena, ChurnStormLeavesNoOrphans) {
  // 100k alloc/free cycles over a 64-slot working set: capacity must stay
  // at the high-water mark (recycling, not growth) and every slot must end
  // up either live or on the free list.
  SlabArena<Slot> a;
  Rng rng(7);
  std::vector<uint32_t> held;
  for (int i = 0; i < 100000; ++i) {
    if (held.size() < 64 && (held.empty() || rng.NextBool(0.55))) {
      held.push_back(a.Allocate(static_cast<uint64_t>(i)));
    } else {
      const size_t j = rng.NextBounded(held.size());
      a.Free(held[j]);
      held[j] = held.back();
      held.pop_back();
    }
  }
  EXPECT_EQ(a.size(), held.size());
  EXPECT_LE(a.capacity(), 64u);
  EXPECT_EQ(a.capacity(), a.size() + a.free_count());
  for (uint32_t s : held) a.Free(s);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.capacity(), a.free_count());
}

TEST(IdIndexMap, PutFindEraseOverwrite) {
  IdIndexMap m;
  EXPECT_EQ(m.Find(42), IdIndexMap::kNotFound);
  m.Put(42, 7);
  EXPECT_EQ(m.Find(42), 7u);
  m.Put(42, 9);  // overwrite, not duplicate
  EXPECT_EQ(m.Find(42), 9u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.Erase(42));
  EXPECT_FALSE(m.Erase(42));
  EXPECT_EQ(m.Find(42), IdIndexMap::kNotFound);
  EXPECT_TRUE(m.empty());
}

TEST(IdIndexMap, GrowthPreservesAllEntries) {
  IdIndexMap m;
  for (uint64_t k = 0; k < 10000; ++k) m.Put(k, static_cast<uint32_t>(k * 3));
  EXPECT_EQ(m.size(), 10000u);
  for (uint64_t k = 0; k < 10000; ++k) {
    ASSERT_EQ(m.Find(k), static_cast<uint32_t>(k * 3)) << "key " << k;
  }
}

TEST(IdIndexMap, BackshiftDeletionKeepsProbeChainsIntact) {
  // Randomized differential test against a reference map: interleaved
  // insert/erase churn exercises backshift deletion across wrapped chains
  // (sequential-ish keys hash adjacently often enough after SplitMix64 at
  // high load).
  IdIndexMap m;
  std::set<uint64_t> ref;
  Rng rng(11);
  for (int i = 0; i < 200000; ++i) {
    const uint64_t key = rng.NextBounded(512);  // small space => collisions
    if (rng.NextBool(0.5)) {
      m.Put(key, static_cast<uint32_t>(key + 1));
      ref.insert(key);
    } else {
      EXPECT_EQ(m.Erase(key), ref.erase(key) > 0) << "key " << key;
    }
  }
  EXPECT_EQ(m.size(), ref.size());
  for (uint64_t k = 0; k < 512; ++k) {
    if (ref.count(k)) {
      ASSERT_EQ(m.Find(k), static_cast<uint32_t>(k + 1)) << "key " << k;
    } else {
      ASSERT_EQ(m.Find(k), IdIndexMap::kNotFound) << "key " << k;
    }
  }
}

}  // namespace
}  // namespace gimbal::common
