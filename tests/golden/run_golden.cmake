# Golden-figure regression step (docs/TESTING.md).
#
# Runs one bench binary in its --quick config with the trace digest enabled
# and compares stdout + digest byte-for-byte against the checked-in goldens.
# Invoked by ctest (registered in tests/CMakeLists.txt) as:
#
#   cmake -DBIN=<bench binary> -DNAME=<output name> [-DGOLDEN_NAME=<name>]
#         [-DEXTRA_ARGS="--queue=heap"] -DGOLDEN_DIR=<repo>/tests/golden
#         -DOUT_DIR=<build>/golden_out [-DREGEN=1] -P run_golden.cmake
#
# GOLDEN_NAME defaults to NAME; the wheel-vs-heap variants set NAME to
# <fig>.heap but compare against <fig>'s goldens — the digest must be
# engine-independent. REGEN=1 rewrites the goldens from this run instead of
# comparing (the `regen-goldens` build target drives this).
cmake_minimum_required(VERSION 3.16)

foreach(v BIN NAME GOLDEN_DIR OUT_DIR)
  if(NOT DEFINED ${v})
    message(FATAL_ERROR "run_golden.cmake: -D${v}= is required")
  endif()
endforeach()
if(NOT DEFINED GOLDEN_NAME)
  set(GOLDEN_NAME "${NAME}")
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(stdout_file "${OUT_DIR}/${NAME}.stdout")
set(digest_file "${OUT_DIR}/${NAME}.digest")

set(args --quick "--digest-out=${digest_file}")
if(DEFINED EXTRA_ARGS AND NOT EXTRA_ARGS STREQUAL "")
  separate_arguments(extra UNIX_COMMAND "${EXTRA_ARGS}")
  list(APPEND args ${extra})
endif()

execute_process(
  COMMAND "${BIN}" ${args}
  OUTPUT_FILE "${stdout_file}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "golden.${NAME}: '${BIN} --quick' exited with ${rc} "
                      "(a fail-fast invariant violation also lands here)")
endif()

if(REGEN)
  configure_file("${stdout_file}" "${GOLDEN_DIR}/${GOLDEN_NAME}.stdout"
                 COPYONLY)
  configure_file("${digest_file}" "${GOLDEN_DIR}/${GOLDEN_NAME}.digest"
                 COPYONLY)
  message(STATUS "golden.${NAME}: regenerated ${GOLDEN_NAME}.{stdout,digest}")
  return()
endif()

set(failed "")
foreach(kind stdout digest)
  set(got "${OUT_DIR}/${NAME}.${kind}")
  set(want "${GOLDEN_DIR}/${GOLDEN_NAME}.${kind}")
  if(NOT EXISTS "${want}")
    list(APPEND failed "missing golden ${want} — run the regen-goldens "
                       "target and commit the result")
    continue()
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${got}" "${want}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    if(kind STREQUAL "digest")
      file(READ "${got}" got_text)
      file(READ "${want}" want_text)
      string(STRIP "${got_text}" got_text)
      string(STRIP "${want_text}" want_text)
      list(APPEND failed
           "digest mismatch: got ${got_text}, want ${want_text}")
    else()
      list(APPEND failed "stdout mismatch: diff ${got} ${want}")
    endif()
  endif()
endforeach()

if(NOT failed STREQUAL "")
  string(JOIN "\n  " msg ${failed})
  message(FATAL_ERROR "golden.${NAME} FAILED:\n  ${msg}\n"
          "If the change is intentional, regenerate with: "
          "cmake --build <build> --target regen-goldens")
endif()
message(STATUS "golden.${NAME}: stdout and digest match")
