// End-to-end integration tests: full stack (workers -> initiators ->
// network -> target -> policy -> SSD model) via the Testbed harness,
// checking the qualitative behaviours the paper's evaluation hinges on.
#include <gtest/gtest.h>

#include "core/gimbal_switch.h"
#include "workload/runner.h"

namespace gimbal::workload {
namespace {

TestbedConfig BaseConfig(Scheme scheme,
                         SsdCondition cond = SsdCondition::kClean) {
  TestbedConfig cfg;
  cfg.scheme = scheme;
  cfg.condition = cond;
  cfg.ssd.logical_bytes = 256ull << 20;  // keep preconditioning cheap
  return cfg;
}

double WorkerMBps(const FioWorker& w, Tick window) {
  return BytesToMiB(w.spec().io_bytes > 0
                        ? const_cast<FioWorker&>(w).stats().total_bytes()
                        : 0) /
         ToSec(window);
}

TEST(EndToEnd, GimbalSingleTenantReachesDeviceBandwidth) {
  TestbedConfig cfg = BaseConfig(Scheme::kGimbal);
  Testbed bed(cfg);
  FioSpec spec;
  spec.io_bytes = 128 * 1024;
  spec.sequential = true;
  spec.queue_depth = 16;
  FioWorker& w = bed.AddWorker(spec);
  bed.Run(Milliseconds(300), Milliseconds(500));
  double mbps = WorkerMBps(w, bed.measured());
  // Congestion control should keep the device near its ~3.2 GB/s limit.
  EXPECT_GT(mbps, 2200);
}

TEST(EndToEnd, EverySchemeCompletesMixedTraffic) {
  for (Scheme s : {Scheme::kVanilla, Scheme::kReflex, Scheme::kParda,
                   Scheme::kFlashFq, Scheme::kGimbal}) {
    TestbedConfig cfg = BaseConfig(s);
    Testbed bed(cfg);
    FioSpec spec;
    spec.read_ratio = 0.7;
    spec.io_bytes = 4096;
    spec.queue_depth = 16;
    spec.seed = 3;
    FioWorker& w = bed.AddWorker(spec);
    bed.Run(Milliseconds(100), Milliseconds(200));
    EXPECT_GT(w.stats().read_ios, 0u) << ToString(s);
    EXPECT_GT(w.stats().write_ios, 0u) << ToString(s);
    EXPECT_GT(w.stats().read_latency.mean(), 0.0) << ToString(s);
  }
}

TEST(EndToEnd, GimbalCreditsFlowToClients) {
  TestbedConfig cfg = BaseConfig(Scheme::kGimbal);
  Testbed bed(cfg);
  FioSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 64;
  FioWorker& w = bed.AddWorker(spec);
  (void)w;
  bed.Run(Milliseconds(100), Milliseconds(100));
  // After slots complete, credits reflect allotted x slot IO count (8x32).
  core::GimbalSwitch* sw = bed.gimbal_switch(0);
  ASSERT_NE(sw, nullptr);
  EXPECT_GE(sw->CreditFor(1), 32u);
  EXPECT_GT(sw->stats().completions, 1000u);
}

TEST(EndToEnd, GimbalFairnessAcrossIoSizes) {
  // A 4KB-read tenant and a 128KB-read tenant share one clean SSD; Gimbal's
  // virtual slots should keep both near their fair f-Util (Fig 7a/d).
  TestbedConfig cfg = BaseConfig(Scheme::kGimbal);
  Testbed bed(cfg);
  FioSpec small;
  small.io_bytes = 4096;
  small.queue_depth = 32;
  small.seed = 11;
  FioSpec big;
  big.io_bytes = 128 * 1024;
  big.queue_depth = 4;
  big.seed = 12;
  FioWorker& ws = bed.AddWorker(small);
  FioWorker& wb = bed.AddWorker(big);
  bed.Run(Milliseconds(300), Milliseconds(700));
  double small_mb = BytesToMiB(ws.stats().total_bytes()) / ToSec(bed.measured());
  double big_mb = BytesToMiB(wb.stats().total_bytes()) / ToSec(bed.measured());
  // The large-IO tenant may earn somewhat more (its standalone max is ~2x),
  // but must not starve the small tenant the way FCFS would.
  EXPECT_GT(small_mb, 300);
  EXPECT_GT(big_mb, 300);
}

TEST(EndToEnd, GimbalWriterDoesNotStarveReader) {
  // Fragmented SSD, a 4K random reader against a 4K random writer
  // (Fig 7c/f: vanilla/ReFlex let the writer crush the reader).
  TestbedConfig cfg = BaseConfig(Scheme::kGimbal, SsdCondition::kFragmented);
  Testbed bed(cfg);
  FioSpec rd;
  rd.io_bytes = 4096;
  rd.queue_depth = 32;
  rd.seed = 21;
  FioSpec wr;
  wr.read_ratio = 0.0;
  wr.io_bytes = 4096;
  wr.queue_depth = 32;
  wr.seed = 22;
  FioWorker& wrd = bed.AddWorker(rd);
  FioWorker& wwr = bed.AddWorker(wr);
  bed.Run(Milliseconds(500), Seconds(1));
  double rd_mb = BytesToMiB(wrd.stats().total_bytes()) / ToSec(bed.measured());
  double wr_mb = BytesToMiB(wwr.stats().total_bytes()) / ToSec(bed.measured());
  // On a fragmented device GC throttles everything. With a single writer
  // whose stream fits the SSD's write buffer, Gimbal's write cost settles
  // near 1 (the §3.4/Fig 9 "accelerate buffered writes" behaviour), so
  // bytes split roughly evenly; what must not happen is the reader being
  // crushed the way an FCFS target lets it be (Fig 4's 59% collapse).
  EXPECT_GT(rd_mb, 40);
  EXPECT_GT(wr_mb, 5);
  EXPECT_GT(rd_mb, 0.5 * wr_mb);
}

TEST(EndToEnd, GimbalKeepsTailLatencyBelowFlashFq) {
  // Fig 8: FlashFQ has no flow control, so its p99 grows with
  // consolidation; Gimbal's credits keep queues at the client.
  auto p99_for = [](Scheme s) {
    TestbedConfig cfg = BaseConfig(s);
    Testbed bed(cfg);
    for (int i = 0; i < 8; ++i) {
      FioSpec spec;
      spec.io_bytes = 4096;
      spec.queue_depth = 64;
      spec.seed = 30 + static_cast<uint64_t>(i);
      bed.AddWorker(spec);
    }
    bed.Run(Milliseconds(300), Milliseconds(500));
    LatencyHistogram all;
    for (auto& w : bed.workers()) all.Merge(w->stats().read_latency);
    return all.p99();
  };
  // Device-side queueing under FlashFQ should exceed Gimbal's paced p99.
  EXPECT_LT(p99_for(Scheme::kGimbal), p99_for(Scheme::kFlashFq));
}

TEST(EndToEnd, GimbalUtilizationBeatsReflexOnCleanWrites) {
  // Fig 6 C-W: ReFlex's static worst-case write cost over-throttles clean
  // sequential writes; Gimbal's dynamic write cost converges down to ~1.
  auto write_mbps = [](Scheme s) {
    TestbedConfig cfg = BaseConfig(s);
    Testbed bed(cfg);
    for (int i = 0; i < 4; ++i) {
      FioSpec spec;
      spec.read_ratio = 0.0;
      spec.io_bytes = 128 * 1024;
      spec.sequential = true;
      spec.queue_depth = 4;
      spec.seed = 40 + static_cast<uint64_t>(i);
      bed.AddWorker(spec);
    }
    bed.Run(Milliseconds(300), Milliseconds(500));
    uint64_t bytes = 0;
    for (auto& w : bed.workers()) bytes += w->stats().total_bytes();
    return BytesToMiB(bytes) / ToSec(bed.measured());
  };
  double gimbal = write_mbps(Scheme::kGimbal);
  double reflex = write_mbps(Scheme::kReflex);
  EXPECT_GT(gimbal, 1.5 * reflex);
}

TEST(EndToEnd, WriteCostAdaptsDownWhenBufferAbsorbs) {
  // §3.4 / Fig 9: a single rate-capped writer is absorbed by the SSD's
  // write buffer; Gimbal's write cost should decay toward 1.
  TestbedConfig cfg = BaseConfig(Scheme::kGimbal);
  Testbed bed(cfg);
  FioSpec wr;
  wr.read_ratio = 0.0;
  wr.io_bytes = 4096;
  wr.queue_depth = 4;
  wr.rate_cap_bps = 60.0 * 1024 * 1024;  // Fig 9's 60 MB/s writer
  bed.AddWorker(wr);
  bed.Run(Milliseconds(200), Milliseconds(400));
  core::GimbalSwitch* sw = bed.gimbal_switch(0);
  ASSERT_NE(sw, nullptr);
  EXPECT_LT(sw->write_cost().cost(), 2.0);
}

TEST(EndToEnd, RateCapHonoured) {
  TestbedConfig cfg = BaseConfig(Scheme::kVanilla);
  Testbed bed(cfg);
  FioSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 8;
  spec.rate_cap_bps = 50.0 * 1024 * 1024;
  FioWorker& w = bed.AddWorker(spec);
  bed.Run(Milliseconds(200), Milliseconds(500));
  double mbps = BytesToMiB(w.stats().total_bytes()) / ToSec(bed.measured());
  EXPECT_NEAR(mbps, 50.0, 5.0);
}

TEST(EndToEnd, StandaloneBandwidthHelper) {
  TestbedConfig cfg = BaseConfig(Scheme::kGimbal);
  FioSpec spec;
  spec.io_bytes = 128 * 1024;
  spec.sequential = true;
  spec.queue_depth = 16;
  double bps = StandaloneBandwidth(cfg, spec);
  EXPECT_GT(bps, 2.0e9);
  // f-Util of a worker achieving exactly its share is 1.
  EXPECT_NEAR(FUtil(bps / 4, bps, 4), 1.0, 1e-9);
}

TEST(EndToEnd, NullDeviceModeWorks) {
  TestbedConfig cfg = BaseConfig(Scheme::kGimbal);
  cfg.use_null_device = true;
  Testbed bed(cfg);
  FioSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 32;
  FioWorker& w = bed.AddWorker(spec);
  bed.Run(Milliseconds(50), Milliseconds(100));
  EXPECT_GT(w.stats().read_ios, 1000u);
}

}  // namespace
}  // namespace gimbal::workload
