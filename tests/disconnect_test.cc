// Tenant lifecycle tests: graceful disconnect under load — queued IOs fail
// back, inflight IOs drain, scheduler state is reaped, and survivors
// inherit the freed share.
#include <gtest/gtest.h>

#include "core/gimbal_switch.h"
#include "ssd/null_device.h"
#include "workload/runner.h"

namespace gimbal {
namespace {

using workload::Scheme;
using workload::Testbed;
using workload::TestbedConfig;

TEST(Disconnect, SchedulerFailsQueuedAndReapsState) {
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30, Microseconds(100));
  core::GimbalSwitch sw(sim, dev);
  int ok_completions = 0, failed = 0;
  sw.set_completion_fn([&](const IoRequest&, const IoCompletion& cpl) {
    (cpl.ok() ? ok_completions : failed)++;
  });
  uint64_t id = 0;
  for (int i = 0; i < 200; ++i) {
    IoRequest r;
    r.id = ++id;
    r.tenant = 1;
    r.type = IoType::kRead;
    r.length = 4096;
    sw.OnRequest(r);
  }
  // Some are inflight/charged, the rest queued. Disconnect now.
  sw.OnTenantDisconnect(1);
  sim.Run();
  EXPECT_EQ(ok_completions + failed, 200);
  EXPECT_GT(failed, 0);
  EXPECT_GT(ok_completions, 0);  // inflight ones completed normally
  // All state reaped once the last inflight IO drained.
  EXPECT_EQ(sw.scheduler().tenant_count(), 0u);
  EXPECT_EQ(sw.io_outstanding(), 0u);
}

TEST(Disconnect, ChurnWithLateCompletionsLeavesNoGhostState) {
  // Regression: a completion arriving after its tenant's state was reaped
  // (disconnect + last inflight drained) used to re-create the tenant via
  // the GetTenant path — a ghost entry in tenants_/busy_flags_ that
  // nothing ever erased, so long-running targets leaked one entry per
  // churned tenant. Late/duplicate completions must be dropped and
  // counted, never resurrect state.
  core::GimbalParams p;
  core::WriteCostEstimator cost(p);
  core::DrrScheduler sched(p, cost);
  uint64_t id = 0;
  for (TenantId t = 1; t <= 2000; ++t) {
    // Two IOs: one goes inflight, one stays queued at disconnect.
    for (int k = 0; k < 2; ++k) {
      IoRequest r;
      r.id = ++id;
      r.tenant = t;
      r.type = IoType::kRead;
      r.length = 4096;
      sched.Enqueue(r);
    }
    auto s = sched.Dequeue();
    ASSERT_TRUE(s.has_value());
    std::vector<IoRequest> failed = sched.Disconnect(t);
    EXPECT_EQ(failed.size(), 1u);
    // The inflight IO's completion lands after the disconnect and reaps
    // the tenant; its duplicate (a retransmitted completion capsule) then
    // finds no state and must be dropped as an orphan.
    sched.OnCompletion(t, s->slot_id);
    sched.OnCompletion(t, s->slot_id);
  }
  EXPECT_EQ(sched.tenant_count(), 0u);
  EXPECT_EQ(sched.orphan_completions(), 2000u);
  EXPECT_EQ(sched.pass_exhausted(), 0u);
  EXPECT_FALSE(sched.Dequeue().has_value());
}

TEST(Disconnect, UnknownTenantIsNoop) {
  sim::Simulator sim;
  ssd::NullDevice dev(sim, 1ull << 30);
  core::GimbalSwitch sw(sim, dev);
  sw.OnTenantDisconnect(42);
  EXPECT_EQ(sw.scheduler().tenant_count(), 0u);
}

TEST(Disconnect, SurvivorInheritsBandwidth) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.ssd.logical_bytes = 256ull << 20;
  Testbed bed(cfg);
  workload::FioSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 32;
  spec.seed = 1;
  workload::FioWorker& a = bed.AddWorker(spec);
  spec.seed = 2;
  workload::FioWorker& b = bed.AddWorker(spec);
  a.Start();
  b.Start();
  bed.sim().RunUntil(Milliseconds(300));
  uint64_t a_mid = a.stats().total_bytes();
  // Tenant B leaves; A should speed up.
  b.Stop();
  bed.sim().RunUntil(Milliseconds(400));  // drain B's outstanding
  uint64_t a_before = a.stats().total_bytes();
  double shared_rate = static_cast<double>(a_mid) / 0.3;
  bed.sim().RunUntil(Milliseconds(700));
  double solo_rate = static_cast<double>(a.stats().total_bytes() - a_before) / 0.3;
  EXPECT_GT(solo_rate, 1.3 * shared_rate);
}

TEST(Disconnect, InitiatorShutdownFailsPendingAndStopsSubmits) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.use_null_device = true;
  Testbed bed(cfg);
  fabric::Initiator& init =
      bed.AddInitiator(0, fabric::ThrottleMode::kCredit);
  int ok = 0, failed = 0;
  for (int i = 0; i < 100; ++i) {
    init.Submit(IoType::kRead, 0, 4096, IoPriority::kNormal,
                [&](const IoCompletion& cpl, Tick) {
                  (cpl.ok() ? ok : failed)++;
                });
  }
  // Credit throttle (initial 8) keeps most queued locally.
  EXPECT_GT(init.queued(), 0u);
  init.Shutdown();
  bed.sim().Run();
  EXPECT_EQ(ok + failed, 100);
  EXPECT_GT(failed, 0);
  // Post-shutdown submits fail immediately.
  bool late_failed = false;
  init.Submit(IoType::kRead, 0, 4096, IoPriority::kNormal,
              [&](const IoCompletion& cpl, Tick) {
                late_failed = !cpl.ok();
              });
  bed.sim().Run();
  EXPECT_TRUE(late_failed);
  EXPECT_EQ(init.inflight(), 0u);
}

TEST(Disconnect, TargetPathReapsTenant) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.ssd.logical_bytes = 128ull << 20;
  Testbed bed(cfg);
  fabric::Initiator& init = bed.AddInitiator(0);
  for (int i = 0; i < 50; ++i) {
    init.Submit(IoType::kRead, static_cast<uint64_t>(i) * 4096, 4096,
                IoPriority::kNormal, nullptr);
  }
  bed.sim().RunUntil(Milliseconds(5));
  init.Shutdown();
  bed.sim().Run();
  core::GimbalSwitch* sw = bed.gimbal_switch(0);
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(sw->scheduler().tenant_count(), 0u);
}

}  // namespace
}  // namespace gimbal
