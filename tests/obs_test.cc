// Tests for the observability layer (src/obs): MetricsRegistry semantics,
// label dimensions and serialization; EventTracer ordering, cap and
// exports; and an end-to-end drained testbed run asserting per-tenant
// admit == complete across the whole pipeline.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>

#include "obs/obs.h"
#include "obs/schema.h"
#include "sim/simulator.h"
#include "workload/runner.h"

namespace gimbal::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON validator: enough of RFC 8259 to certify exporter output is
// well-formed without pulling in a JSON library.
// ---------------------------------------------------------------------------
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    pos_ = 0;
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!Digits()) return false;
    if (Peek() == '.') { ++pos_; if (!Digits()) return false; }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!Digits()) return false;
    }
    return pos_ > start;
  }

  bool Digits() {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    size_t n = std::string::traits_type::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  size_t pos_ = 0;
};

constexpr MetricDef kTestCounter{"test.counter", "ios", "a counter", "here"};
constexpr MetricDef kTestGauge{"test.gauge", "bytes/s", "a gauge", "here"};
constexpr MetricDef kTestHist{"test.hist", "ns", "a histogram", "here"};

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------
TEST(MetricsRegistry, CounterSemantics) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter(kTestCounter);
  EXPECT_EQ(c.value(), 0u);
  c.Add(1);
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistry, GaugeSemantics) {
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge(kTestGauge);
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  EXPECT_EQ(g.value(), 3.5);
  g.Set(-1.0);  // gauges go down too
  EXPECT_EQ(g.value(), -1.0);
}

TEST(MetricsRegistry, HistogramSemantics) {
  MetricsRegistry reg;
  Histogram& h = reg.GetHistogram(kTestHist);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.99), 0);  // empty quantile is defined, not NaN/UB
  for (int i = 1; i <= 1000; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_NEAR(static_cast<double>(h.Quantile(0.5)), 500.0, 500 * 0.04);
}

TEST(MetricsRegistry, SameKeyReturnsSameInstance) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter(kTestCounter, Labels::TenantSsd(1, 0));
  Counter& b = reg.GetCounter(kTestCounter, Labels::TenantSsd(1, 0));
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, LabelDimensionsAreDistinctSeries) {
  MetricsRegistry reg;
  Counter& t1 = reg.GetCounter(kTestCounter, Labels::TenantSsd(1, 0));
  Counter& t2 = reg.GetCounter(kTestCounter, Labels::TenantSsd(2, 0));
  Counter& s1 = reg.GetCounter(kTestCounter, Labels::TenantSsd(1, 1));
  Counter& none = reg.GetCounter(kTestCounter);
  EXPECT_NE(&t1, &t2);
  EXPECT_NE(&t1, &s1);
  EXPECT_NE(&t1, &none);
  t1.Add(7);
  EXPECT_EQ(t2.value(), 0u);
  EXPECT_EQ(reg.size(), 4u);
}

TEST(MetricsRegistry, RunLabelSeparatesSeries) {
  MetricsRegistry reg;
  reg.set_run("a");
  Counter& ca = reg.GetCounter(kTestCounter);
  ca.Add(5);
  reg.set_run("b");
  Counter& cb = reg.GetCounter(kTestCounter);
  EXPECT_NE(&ca, &cb);
  EXPECT_EQ(cb.value(), 0u);
  EXPECT_EQ(ca.value(), 5u);
}

TEST(MetricsRegistry, ResetRunResetsCountersKeepsGauges) {
  MetricsRegistry reg;
  reg.set_run("warm");
  Counter& c = reg.GetCounter(kTestCounter);
  Gauge& g = reg.GetGauge(kTestGauge);
  Histogram& h = reg.GetHistogram(kTestHist);
  c.Add(10);
  g.Set(2.5);
  h.Record(100);
  reg.set_run("other");
  Counter& other = reg.GetCounter(kTestCounter);
  other.Add(3);

  reg.ResetRun("warm");
  EXPECT_EQ(c.value(), 0u);        // counter restarted
  EXPECT_EQ(h.count(), 0u);        // histogram restarted
  EXPECT_EQ(g.value(), 2.5);       // gauge keeps warmed-up state
  EXPECT_EQ(other.value(), 3u);    // other runs untouched
}

TEST(MetricsRegistry, DrainDeltaPushesOnlyOnceAndAccumulates) {
  MetricsRegistry shard, session;
  shard.set_run("r");
  session.set_run("r");
  Counter& c = shard.GetCounter(kTestCounter);
  Histogram& h = shard.GetHistogram(kTestHist);
  c.Add(5);
  h.Record(100);
  shard.DrainDeltaInto(session);
  EXPECT_EQ(shard.last_drain_touched(), 2u);
  EXPECT_EQ(session.GetCounter(kTestCounter).value(), 5u);
  EXPECT_EQ(session.GetHistogram(kTestHist).count(), 1u);

  // The regression this pins: a second flush with nothing new must not
  // re-add the already-drained totals (the old MergeFrom path relied on an
  // external ResetRun to avoid exactly this double merge).
  shard.DrainDeltaInto(session);
  EXPECT_EQ(shard.last_drain_touched(), 0u);
  EXPECT_EQ(session.GetCounter(kTestCounter).value(), 5u);
  EXPECT_EQ(session.GetHistogram(kTestHist).count(), 1u);

  c.Add(3);
  shard.DrainDeltaInto(session);
  EXPECT_EQ(shard.last_drain_touched(), 1u);
  EXPECT_EQ(session.GetCounter(kTestCounter).value(), 8u);
}

TEST(MetricsRegistry, DrainDeltaGaugeSetOnceIsPushedOnce) {
  MetricsRegistry shard, session;
  shard.set_run("r");
  session.set_run("r");
  Gauge& g = shard.GetGauge(kTestGauge);
  g.Set(2.5);
  shard.DrainDeltaInto(session);
  EXPECT_EQ(shard.last_drain_touched(), 1u);
  EXPECT_EQ(session.GetGauge(kTestGauge).value(), 2.5);

  // Set once, flushed per epoch: every later flush must see it clean.
  for (int i = 0; i < 3; ++i) {
    shard.DrainDeltaInto(session);
    EXPECT_EQ(shard.last_drain_touched(), 0u);
  }
  EXPECT_EQ(session.GetGauge(kTestGauge).value(), 2.5);

  // Re-setting the same value is still clean; a new value pushes again —
  // including a return to 0.0, which a value-only dirty check would miss
  // if it treated zero as "never set".
  g.Set(2.5);
  shard.DrainDeltaInto(session);
  EXPECT_EQ(shard.last_drain_touched(), 0u);
  g.Set(0.0);
  shard.DrainDeltaInto(session);
  EXPECT_EQ(shard.last_drain_touched(), 1u);
  EXPECT_EQ(session.GetGauge(kTestGauge).value(), 0.0);
}

TEST(MetricsRegistry, DrainDeltaMatchesMergeFromTotals) {
  // Differential check: draining in three chunks must equal one MergeFrom
  // of the same history, for every kind and across label dimensions.
  MetricsRegistry shard_a, session_a;  // drained incrementally
  MetricsRegistry shard_b, session_b;  // merged once at the end
  shard_a.set_run("r");
  shard_b.set_run("r");
  session_a.set_run("r");
  session_b.set_run("r");
  for (int round = 0; round < 3; ++round) {
    for (MetricsRegistry* shard : {&shard_a, &shard_b}) {
      shard->GetCounter(kTestCounter).Add(10 + static_cast<uint64_t>(round));
      shard->GetCounter(kTestCounter, Labels::Ssd(1)).Add(2);
      shard->GetGauge(kTestGauge).Set(1.5 * (round + 1));
      shard->GetHistogram(kTestHist).Record(100 * (round + 1));
    }
    shard_a.DrainDeltaInto(session_a);
  }
  session_b.MergeFrom(shard_b);
  EXPECT_EQ(session_a.GetCounter(kTestCounter).value(),
            session_b.GetCounter(kTestCounter).value());
  EXPECT_EQ(session_a.GetCounter(kTestCounter, Labels::Ssd(1)).value(),
            session_b.GetCounter(kTestCounter, Labels::Ssd(1)).value());
  EXPECT_EQ(session_a.GetGauge(kTestGauge).value(),
            session_b.GetGauge(kTestGauge).value());
  EXPECT_EQ(session_a.GetHistogram(kTestHist).count(),
            session_b.GetHistogram(kTestHist).count());
  EXPECT_EQ(session_a.GetHistogram(kTestHist).mean(),
            session_b.GetHistogram(kTestHist).mean());
}

TEST(MetricsRegistry, JsonSnapshotIsValidAndComplete) {
  MetricsRegistry reg;
  reg.set_run("r \"quoted\",\n");  // hostile run label must be escaped
  reg.GetCounter(kTestCounter, Labels::TenantSsd(3, 1)).Add(12);
  reg.GetGauge(kTestGauge).Set(1.5e9);
  Histogram& h = reg.GetHistogram(kTestHist, Labels::Ssd(0));
  h.Record(1000);
  h.Record(2000);

  const std::string json = reg.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"test.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":12"), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ssd\":1"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistry, JsonRoundTripPreservesValues) {
  // Round-trip the scalar values through the JSON text: every counter and
  // gauge value written out must be recoverable from the snapshot.
  MetricsRegistry reg;
  reg.GetCounter(kTestCounter, Labels::TenantSsd(1, 0)).Add(111);
  reg.GetCounter(kTestCounter, Labels::TenantSsd(2, 0)).Add(222);
  reg.GetGauge(kTestGauge).Set(1234.5);
  const std::string json = reg.ToJson();
  ASSERT_TRUE(JsonChecker(json).Valid());

  auto value_after = [&](const std::string& anchor) {
    size_t at = json.find(anchor);
    EXPECT_NE(at, std::string::npos) << anchor;
    size_t v = json.find("\"value\":", at);
    return std::stod(json.substr(v + 8));
  };
  EXPECT_EQ(value_after("\"tenant\":1"), 111.0);
  EXPECT_EQ(value_after("\"tenant\":2"), 222.0);
  EXPECT_EQ(value_after("\"test.gauge\""), 1234.5);
}

TEST(MetricsRegistry, CsvSnapshotHasHeaderAndRows) {
  MetricsRegistry reg;
  reg.GetCounter(kTestCounter, Labels::Ssd(0)).Add(9);
  reg.GetHistogram(kTestHist).Record(50);
  const std::string csv = reg.ToCsv();
  std::istringstream in(csv);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "name,kind,unit,run,tenant,ssd,value,count,min,mean,p50,p95,p99,"
            "p999,max");
  int rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  EXPECT_EQ(rows, 2);
  EXPECT_NE(csv.find("test.counter,counter,ios,"), std::string::npos);
}

// ---------------------------------------------------------------------------
// EventTracer
// ---------------------------------------------------------------------------
TEST(EventTracer, DisabledRecordsNothing) {
  EventTracer tr;
  EXPECT_FALSE(tr.enabled());
  tr.Instant(100, "x", Labels::Ssd(0), {{"a", 1.0}});
  tr.Span(100, 50, "y", Labels::TenantSsd(1, 0));
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(EventTracer, RecordsInCallOrderWithCallerTimestamps) {
  EventTracer tr;
  tr.Enable();
  tr.Instant(10, "a", Labels::Ssd(0));
  tr.Instant(20, "b", Labels::Ssd(0));
  tr.Instant(30, "c", Labels::TenantSsd(7, 0), {{"k", 3.0}});
  ASSERT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.events()[0].ts, 10);
  EXPECT_EQ(tr.events()[1].ts, 20);
  EXPECT_EQ(tr.events()[2].ts, 30);
  EXPECT_STREQ(tr.events()[2].name, "c");
  EXPECT_EQ(tr.events()[2].labels.tenant, 7);
  EXPECT_EQ(tr.events()[2].nargs, 1u);
  EXPECT_EQ(tr.events()[2].args[0].value, 3.0);
}

TEST(EventTracer, OrderMatchesSimulatedTime) {
  // Events recorded from simulator callbacks carry sim::now() timestamps,
  // so the recorded sequence is nondecreasing in simulated time.
  sim::Simulator sim;
  EventTracer tr;
  tr.Enable();
  for (Tick t : {Tick(500), Tick(100), Tick(300)}) {
    sim.After(t, [&]() { tr.Instant(sim.now(), "tick", Labels::Ssd(0)); });
  }
  sim.Run();
  ASSERT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.events()[0].ts, 100);
  EXPECT_EQ(tr.events()[1].ts, 300);
  EXPECT_EQ(tr.events()[2].ts, 500);
}

TEST(EventTracer, CapDropsAndCounts) {
  EventTracer tr;
  tr.Enable(/*limit=*/4);
  for (int i = 0; i < 10; ++i) tr.Instant(i, "e", Labels::Ssd(0));
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);
  const std::string json = tr.ToChromeJson();
  EXPECT_NE(json.find("\"dropped_events\":6"), std::string::npos);
}

TEST(EventTracer, ChromeJsonIsValidAndTracksNamed) {
  EventTracer tr;
  tr.Enable();
  tr.Instant(1000, "io.admit", Labels::TenantSsd(2, 1), {{"bytes", 4096.0}});
  tr.Span(2000, 500, "io.complete", Labels::TenantSsd(2, 1));
  const std::string json = tr.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ssd 1\""), std::string::npos);     // process name
  EXPECT_NE(json.find("\"tenant 2\""), std::string::npos);  // thread name
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
}

TEST(EventTracer, JsonlOneValidObjectPerLine) {
  EventTracer tr;
  tr.Enable();
  tr.Instant(100, "a", Labels::TenantSsd(1, 0), {{"x", 1.5}});
  tr.Span(200, 50, "b", Labels::Ssd(0));
  std::istringstream in(tr.ToJsonl());
  int lines = 0;
  for (std::string line; std::getline(in, line);) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_TRUE(JsonChecker(line).Valid()) << line;
  }
  EXPECT_EQ(lines, 2);
}

TEST(EventTracer, ClearForgetsEverything) {
  EventTracer tr;
  tr.Enable(2);
  tr.Instant(1, "a", Labels::Ssd(0));
  tr.Instant(2, "b", Labels::Ssd(0));
  tr.Instant(3, "c", Labels::Ssd(0));
  EXPECT_EQ(tr.dropped(), 1u);
  tr.Clear();
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: a drained multi-tenant testbed run must balance its books —
// for every tenant, target admits == policy completions == client
// completions, and the trace contains exactly one io.admit per admit.
// ---------------------------------------------------------------------------
TEST(ObservabilityE2E, DrainedRunBalancesAdmitsAndCompletes) {
  Observability obs;
  obs.tracer.Enable();
  workload::TestbedConfig cfg;
  cfg.scheme = workload::Scheme::kGimbal;
  cfg.ssd.logical_bytes = 128ull << 20;
  cfg.obs = &obs;
  cfg.run_label = "e2e";
  workload::Testbed bed(cfg);
  for (int i = 0; i < 3; ++i) {
    workload::FioSpec spec;
    spec.io_bytes = 4096;
    spec.read_ratio = i == 2 ? 0.0 : 1.0;  // two readers, one writer
    spec.queue_depth = 8;
    spec.seed = static_cast<uint64_t>(i) + 1;
    bed.AddWorker(spec);
  }
  // No warmup: counters cover the whole run, then stop issuing and drain
  // every in-flight IO so admits and completions must balance exactly.
  bed.Run(/*warmup=*/0, Milliseconds(50));
  for (auto& w : bed.workers()) w->Stop();
  bed.sim().Run();

  namespace schema = gimbal::obs::schema;
  std::map<int32_t, uint64_t> admits_in_trace;
  for (const auto& ev : obs.tracer.events()) {
    if (std::string(ev.name) == schema::kEvAdmit) {
      ++admits_in_trace[ev.labels.tenant];
    }
  }
  ASSERT_EQ(obs.tracer.dropped(), 0u);

  uint64_t total = 0;
  for (int32_t tenant = 1; tenant <= 3; ++tenant) {
    const Labels l = Labels::TenantSsd(tenant, 0);
    uint64_t admitted =
        obs.metrics.GetCounter(schema::kTargetAdmitted, l).value();
    uint64_t dispatched =
        obs.metrics.GetCounter(schema::kPolicyDispatched, l).value();
    uint64_t completed =
        obs.metrics.GetCounter(schema::kPolicyCompleted, l).value();
    uint64_t client =
        obs.metrics.GetCounter(schema::kClientCompleted, l).value();
    EXPECT_GT(admitted, 0u) << "tenant " << tenant;
    EXPECT_EQ(admitted, dispatched) << "tenant " << tenant;
    EXPECT_EQ(admitted, completed) << "tenant " << tenant;
    EXPECT_EQ(admitted, client) << "tenant " << tenant;
    EXPECT_EQ(admitted, admits_in_trace[tenant]) << "tenant " << tenant;
    // The worker's own accounting agrees with the client-side metric.
    EXPECT_EQ(client, bed.workers()[static_cast<size_t>(tenant - 1)]
                          ->stats()
                          .total_ios());
    total += admitted;
  }
  // Latency histograms saw every completion.
  uint64_t hist_count = 0;
  for (int32_t tenant = 1; tenant <= 3; ++tenant) {
    hist_count += obs.metrics
                      .GetHistogram(schema::kDeviceLatency,
                                    Labels::TenantSsd(tenant, 0))
                      .count();
  }
  EXPECT_EQ(hist_count, total);
}

TEST(ObservabilityE2E, UnattachedTestbedEmitsNothing) {
  Observability obs;  // exists but is never attached
  workload::TestbedConfig cfg;
  cfg.scheme = workload::Scheme::kGimbal;
  cfg.ssd.logical_bytes = 128ull << 20;
  workload::Testbed bed(cfg);
  workload::FioSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 8;
  bed.AddWorker(spec);
  bed.Run(0, Milliseconds(10));
  EXPECT_GT(bed.workers()[0]->stats().total_ios(), 0u);
  EXPECT_EQ(obs.metrics.size(), 0u);
  EXPECT_EQ(obs.tracer.size(), 0u);
}

}  // namespace
}  // namespace gimbal::obs
