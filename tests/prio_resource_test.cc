// Tests for the two-priority resource used by NAND dies (host reads ahead
// of programs/GC/erase slices).
#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.h"

namespace gimbal::sim {
namespace {

TEST(PrioResource, HighPriorityJumpsQueue) {
  Simulator sim;
  PrioResource res(sim);
  std::vector<int> order;
  res.AcquireLow(Microseconds(100), [&]() { order.push_back(1); });  // runs
  res.AcquireLow(Microseconds(100), [&]() { order.push_back(2); });
  res.AcquireHigh(Microseconds(10), [&]() { order.push_back(3); });
  sim.Run();
  // The high-priority item overtakes the queued low item, but not the
  // occupant.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(PrioResource, NoPreemptionOfOccupant) {
  Simulator sim;
  PrioResource res(sim);
  Tick high_done = -1;
  res.AcquireLow(Milliseconds(3), nullptr);  // a long erase slice
  sim.At(Microseconds(10), [&]() {
    res.AcquireHigh(Microseconds(65), [&]() { high_done = sim.now(); });
  });
  sim.Run();
  // The read waits for the occupant (no mid-operation preemption).
  EXPECT_EQ(high_done, Milliseconds(3) + Microseconds(65));
}

TEST(PrioResource, HighQueueDrainsBeforeLow) {
  Simulator sim;
  PrioResource res(sim);
  std::vector<char> order;
  res.AcquireLow(Microseconds(10), [&]() { order.push_back('l'); });
  for (int i = 0; i < 3; ++i) {
    res.AcquireHigh(Microseconds(10), [&]() { order.push_back('h'); });
  }
  res.AcquireLow(Microseconds(10), [&]() { order.push_back('l'); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<char>{'l', 'h', 'h', 'h', 'l'}));
}

TEST(PrioResource, LowStillRunsWhenNoHigh) {
  Simulator sim;
  PrioResource res(sim);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    res.AcquireLow(Microseconds(10), [&]() { ++done; });
  }
  sim.Run();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(sim.now(), Microseconds(50));
}

TEST(PrioResource, BusyTimeAccountsBothClasses) {
  Simulator sim;
  PrioResource res(sim);
  res.AcquireHigh(Microseconds(10), nullptr);
  res.AcquireLow(Microseconds(20), nullptr);
  sim.Run();
  EXPECT_EQ(res.busy_time_total(), Microseconds(30));
  EXPECT_FALSE(res.busy());
}

TEST(PrioResource, InterleavedStream) {
  // A steady low-priority stream (GC) plus sporadic high arrivals: highs
  // always run next-after-current.
  Simulator sim;
  PrioResource res(sim);
  Tick high_latency = 0;
  for (int i = 0; i < 50; ++i) {
    res.AcquireLow(Microseconds(500), nullptr);
  }
  sim.At(Milliseconds(5), [&]() {
    Tick start = sim.now();
    res.AcquireHigh(Microseconds(65), [&, start]() {
      high_latency = sim.now() - start;
    });
  });
  sim.Run();
  // Waits at most one residual low op + its own service time.
  EXPECT_LE(high_latency, Microseconds(500 + 65));
  EXPECT_GT(high_latency, 0);
}

}  // namespace
}  // namespace gimbal::sim
