// Tests for features beyond the paper's core design: per-tenant DRR
// weights and the KV store's range scans.
#include <gtest/gtest.h>

#include "core/drr_scheduler.h"
#include "core/gimbal_switch.h"
#include "common/rng.h"
#include "kv/cluster.h"
#include "ssd/ssd.h"
#include "ssd/null_device.h"

namespace gimbal {
namespace {

using core::DrrScheduler;
using core::GimbalParams;
using core::WriteCostEstimator;

IoRequest Req(TenantId t, uint32_t len) {
  static uint64_t id = 0;
  IoRequest r;
  r.id = ++id;
  r.tenant = t;
  r.type = IoType::kRead;
  r.length = len;
  return r;
}

TEST(TenantWeights, DefaultWeightIsOne) {
  GimbalParams p;
  WriteCostEstimator cost(p);
  DrrScheduler sched(p, cost);
  EXPECT_DOUBLE_EQ(sched.TenantWeight(7), 1.0);
  sched.SetTenantWeight(7, 3.0);
  EXPECT_DOUBLE_EQ(sched.TenantWeight(7), 3.0);
}

TEST(TenantWeights, ProportionalService) {
  GimbalParams p;
  WriteCostEstimator cost(p);
  DrrScheduler sched(p, cost);
  sched.SetTenantWeight(1, 3.0);  // tenant 1 deserves 3x tenant 2
  for (int i = 0; i < 120; ++i) {
    sched.Enqueue(Req(1, 128 * 1024));
    sched.Enqueue(Req(2, 128 * 1024));
  }
  int served[3] = {0, 0, 0};
  for (int i = 0; i < 80; ++i) {
    auto s = sched.Dequeue();
    ASSERT_TRUE(s.has_value());
    ++served[s->req.tenant];
    sched.OnCompletion(s->req.tenant, s->slot_id);
  }
  ASSERT_GT(served[2], 0);
  double ratio = static_cast<double>(served[1]) / served[2];
  EXPECT_GT(ratio, 2.2);
  EXPECT_LT(ratio, 4.0);
}

TEST(TenantWeights, TinyWeightTenantStillProgresses) {
  // Regression: a weight so small that weight x quantum truncates to zero
  // whole bytes per round used to starve the tenant forever — every DRR
  // rotation granted nothing and Dequeue burned its pass budget. The
  // scheduler now bulk-grants the minimum number of whole rounds that
  // covers the head-of-line IO (BoostStarvedRound), so even a 1e-6-weight
  // tenant drains, with no pass-exhaustion fallback.
  GimbalParams p;
  WriteCostEstimator cost(p);
  DrrScheduler sched(p, cost);
  sched.SetTenantWeight(1, 1e-6);
  for (int i = 0; i < 16; ++i) sched.Enqueue(Req(1, 128 * 1024));
  int served = 0;
  for (int i = 0; i < 16; ++i) {
    auto s = sched.Dequeue();
    ASSERT_TRUE(s.has_value()) << "starved after " << served << " serves";
    EXPECT_EQ(s->req.tenant, 1u);
    ++served;
    sched.OnCompletion(s->req.tenant, s->slot_id);
  }
  EXPECT_EQ(served, 16);
  EXPECT_EQ(sched.pass_exhausted(), 0u);
  EXPECT_FALSE(sched.Dequeue().has_value());  // drained, not wedged
}

TEST(TenantWeights, TinyWeightSharesWithNormalTenant) {
  // Same fix, contended: the tiny-weight tenant must still make progress
  // (strict DRR proportions would make its turn astronomically rare; the
  // starvation boost only fires when a full rotation serves nothing, so
  // progress rides on the normal tenant going idle, not on proportions).
  GimbalParams p;
  WriteCostEstimator cost(p);
  DrrScheduler sched(p, cost);
  sched.SetTenantWeight(1, 1e-6);
  for (int i = 0; i < 4; ++i) sched.Enqueue(Req(1, 4096));
  for (int i = 0; i < 40; ++i) sched.Enqueue(Req(2, 128 * 1024));
  int served[3] = {0, 0, 0};
  for (int i = 0; i < 44; ++i) {
    auto s = sched.Dequeue();
    ASSERT_TRUE(s.has_value());
    ++served[s->req.tenant];
    sched.OnCompletion(s->req.tenant, s->slot_id);
  }
  EXPECT_EQ(served[1], 4);
  EXPECT_EQ(served[2], 40);
  EXPECT_EQ(sched.pass_exhausted(), 0u);
}

TEST(TenantWeights, EndToEndBandwidthSplit) {
  // Weights govern when the scheduler (not the per-tenant slot cap) is the
  // limiting stage: raise the slot threshold and let the SSD's capacity be
  // contended, so DRR dequeue order decides each tenant's share.
  sim::Simulator sim;
  ssd::SsdConfig scfg;
  scfg.logical_bytes = 128ull << 20;
  ssd::Ssd dev(sim, scfg);
  dev.PreconditionClean();
  core::GimbalParams params;
  params.slots_threshold = 256;
  core::GimbalSwitch sw(sim, dev, params);
  sw.SetTenantWeight(1, 4.0);
  uint64_t bytes[3] = {0, 0, 0};
  sw.set_completion_fn([&](const IoRequest& r, const IoCompletion&) {
    bytes[r.tenant] += r.length;
  });
  Rng rng(3);
  for (int i = 0; i < 30000; ++i) {
    IoRequest a = Req(1, 4096);
    a.offset = rng.NextBounded(scfg.logical_bytes / 4096) * 4096;
    sw.OnRequest(a);
    IoRequest b = Req(2, 4096);
    b.offset = rng.NextBounded(scfg.logical_bytes / 4096) * 4096;
    sw.OnRequest(b);
  }
  sim.RunUntil(Milliseconds(80));
  ASSERT_GT(bytes[2], 0u);
  double ratio = static_cast<double>(bytes[1]) / static_cast<double>(bytes[2]);
  EXPECT_GT(ratio, 2.0);  // weighted tenant clearly ahead under backlog
}

// ---------------------------------------------------------------------------
// KV range scans
// ---------------------------------------------------------------------------

kv::KvClusterConfig ScanCluster() {
  kv::KvClusterConfig cfg;
  cfg.testbed.num_ssds = 2;
  cfg.testbed.scheme = workload::Scheme::kGimbal;
  cfg.testbed.ssd.logical_bytes = 128ull << 20;
  cfg.hba.backend_bytes = 128ull << 20;
  cfg.db.memtable_bytes = 256 * 1024;
  cfg.db.sstable_target_bytes = 256 * 1024;
  cfg.db.level1_bytes = 1 << 20;
  return cfg;
}

TEST(KvScan, ScansBulkLoadedRange) {
  kv::KvCluster cluster(ScanCluster());
  auto& inst = cluster.AddInstance();
  inst.db->BulkLoad(10'000, 1024);
  std::vector<std::pair<kv::Key, kv::Value>> got;
  inst.db->Scan(500, 50, [&](IoStatus, auto results) { got = std::move(results); });
  cluster.sim().RunUntil(Milliseconds(50));
  ASSERT_EQ(got.size(), 50u);
  for (uint32_t i = 0; i < 50; ++i) EXPECT_EQ(got[i].first, 500 + i);
  EXPECT_GT(inst.db->stats().scan_block_reads, 0u);
}

TEST(KvScan, SeesMemtableUpdates) {
  kv::KvCluster cluster(ScanCluster());
  auto& inst = cluster.AddInstance();
  inst.db->BulkLoad(1'000, 1024);
  inst.db->Put(100, 1024, /*stamp=*/777, nullptr);
  inst.db->Delete(101, nullptr);
  std::vector<std::pair<kv::Key, kv::Value>> got;
  inst.db->Scan(99, 4, [&](IoStatus, auto results) { got = std::move(results); });
  cluster.sim().RunUntil(Milliseconds(50));
  ASSERT_GE(got.size(), 3u);
  EXPECT_EQ(got[0].first, 99u);
  EXPECT_EQ(got[1].first, 100u);
  EXPECT_EQ(got[1].second.stamp, 777u);  // memtable version wins
  EXPECT_EQ(got[2].first, 102u);         // 101 deleted
}

TEST(KvScan, EmptyRange) {
  kv::KvCluster cluster(ScanCluster());
  auto& inst = cluster.AddInstance();
  inst.db->BulkLoad(100, 1024);
  bool called = false;
  inst.db->Scan(10'000, 10, [&](IoStatus, auto results) {
    called = true;
    EXPECT_TRUE(results.empty());
  });
  cluster.sim().RunUntil(Milliseconds(10));
  EXPECT_TRUE(called);
}

TEST(KvScan, CountRespected) {
  kv::KvCluster cluster(ScanCluster());
  auto& inst = cluster.AddInstance();
  inst.db->BulkLoad(1'000, 1024);
  std::vector<std::pair<kv::Key, kv::Value>> got;
  inst.db->Scan(0, 7, [&](IoStatus, auto results) { got = std::move(results); });
  cluster.sim().RunUntil(Milliseconds(50));
  EXPECT_EQ(got.size(), 7u);
}

TEST(KvScan, MergesAcrossFlushedTables) {
  kv::KvCluster cluster(ScanCluster());
  auto& inst = cluster.AddInstance();
  // Write two generations so keys live in different SSTables.
  for (kv::Key k = 0; k < 400; ++k) inst.db->Put(k, 1024, k, nullptr);
  cluster.sim().RunUntil(Milliseconds(200));
  for (kv::Key k = 0; k < 400; k += 2) inst.db->Put(k, 1024, 1000 + k, nullptr);
  cluster.sim().RunUntil(cluster.sim().now() + Milliseconds(200));
  std::vector<std::pair<kv::Key, kv::Value>> got;
  inst.db->Scan(10, 6, [&](IoStatus, auto results) { got = std::move(results); });
  cluster.sim().RunUntil(cluster.sim().now() + Milliseconds(100));
  ASSERT_EQ(got.size(), 6u);
  EXPECT_EQ(got[0].second.stamp, 1010u);  // even key: updated version
  EXPECT_EQ(got[1].second.stamp, 11u);    // odd key: original version
}

}  // namespace
}  // namespace gimbal
