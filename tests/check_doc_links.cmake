# Docs link checker: scans every tracked *.md file for intra-repo markdown
# links and fails if any target file is missing. External links (http/https/
# mailto) and pure #anchors are skipped; a "path#anchor" link is checked for
# the path only. Run as:
#   cmake -DREPO_ROOT=<repo> -P tests/check_doc_links.cmake
#
# Link extraction uses string(FIND) rather than a regex: CMake's regex
# engine cannot express "any char except )" (a ')' inside a bracket set is
# not honoured), so "[a](x); [b](y)" would match as one span.
cmake_minimum_required(VERSION 3.16)

if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "pass -DREPO_ROOT=<repo checkout>")
endif()

file(GLOB_RECURSE MD_FILES ${REPO_ROOT}/*.md)
# Out-of-source build trees may sit inside the checkout; skip anything that
# is not part of the repo proper.
list(FILTER MD_FILES EXCLUDE REGEX "/(build|builds|cmake-build-[^/]*)/")

set(broken 0)
set(checked 0)
foreach(md ${MD_FILES})
  file(READ ${md} rest)
  get_filename_component(md_dir ${md} DIRECTORY)
  while(TRUE)
    # Markdown inline link: [text](target) — seek "](", take up to ")".
    string(FIND "${rest}" "](" open)
    if(open EQUAL -1)
      break()
    endif()
    math(EXPR open "${open} + 2")
    string(SUBSTRING "${rest}" ${open} -1 rest)
    string(FIND "${rest}" ")" close)
    if(close EQUAL -1)
      break()
    endif()
    string(SUBSTRING "${rest}" 0 ${close} target)
    # External and in-page references are out of scope; so is anything with
    # whitespace (a "](" that was not a markdown link, e.g. in code).
    if(target MATCHES "^[a-zA-Z][a-zA-Z0-9+.-]*:" OR target MATCHES "^#" OR
       target MATCHES "[ \t\r\n]")
      continue()
    endif()
    # Drop a trailing anchor or query.
    string(REGEX REPLACE "[#?].*$" "" target "${target}")
    if(target STREQUAL "")
      continue()
    endif()
    if(IS_ABSOLUTE "${target}")
      set(resolved "${target}")
    else()
      set(resolved "${md_dir}/${target}")
    endif()
    math(EXPR checked "${checked} + 1")
    if(NOT EXISTS "${resolved}")
      file(RELATIVE_PATH rel_md ${REPO_ROOT} ${md})
      message(SEND_ERROR "dead link in ${rel_md}: (${target})")
      math(EXPR broken "${broken} + 1")
    endif()
  endwhile()
endforeach()

if(broken GREATER 0)
  message(FATAL_ERROR "${broken} dead intra-repo link(s) found")
endif()
message(STATUS "docs link check: ${checked} intra-repo links OK")
