// Unit tests for common utilities: time helpers, RNG/distributions,
// streaming stats, EWMA, and the latency histogram.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/time.h"

namespace gimbal {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(Microseconds(1), 1000);
  EXPECT_EQ(Milliseconds(1), 1000 * 1000);
  EXPECT_EQ(Seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(ToUs(Microseconds(250)), 250.0);
  EXPECT_DOUBLE_EQ(ToMs(Milliseconds(3)), 3.0);
}

TEST(Time, TransferTime) {
  // 4 KiB at 400 MB/s ~ 10.24 us.
  Tick t = TransferTime(4096, 400e6);
  EXPECT_NEAR(static_cast<double>(t), 10240, 2);
  EXPECT_EQ(TransferTime(0, 400e6), 1);  // rounds up
  EXPECT_EQ(TransferTime(100, 0), 0);    // degenerate bandwidth
}

TEST(Time, RateBps) {
  EXPECT_DOUBLE_EQ(RateBps(1000, Seconds(1)), 1000.0);
  EXPECT_DOUBLE_EQ(RateBps(1000, 0), 0.0);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.5);
}

TEST(Zipfian, SkewConcentratesOnHotKeys) {
  Rng rng(17);
  ZipfianGenerator zipf(1000, 0.99);
  std::map<uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Next(rng)];
  // Rank-0 key should receive far more than uniform share (0.1%).
  EXPECT_GT(counts[0], n / 100);
  // And counts should be monotone-ish: rank 0 > rank 10 > rank 100.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(Zipfian, StaysInRange) {
  Rng rng(19);
  ZipfianGenerator zipf(50, 0.99);
  for (int i = 0; i < 50000; ++i) EXPECT_LT(zipf.Next(rng), 50u);
}

TEST(ScrambledZipfian, SpreadsHotKeys) {
  Rng rng(23);
  ScrambledZipfian zipf(1000, 0.99);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next(rng)];
  // The hottest key should not be key 0 systematically (hashing spreads it),
  // but skew must remain: max count far above uniform.
  int max_count = 0;
  for (auto& [k, v] : counts) max_count = std::max(max_count, v);
  EXPECT_GT(max_count, 1000);
}

TEST(StreamingStats, Basics) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  s.Add(10);
  s.Add(20);
  s.Add(30);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 30.0);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.Add(100);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 100.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e(0.5);
  e.Add(0);
  for (int i = 0; i < 30; ++i) e.Add(100);
  EXPECT_NEAR(e.value(), 100.0, 0.001);
}

TEST(Ewma, WeightsRecentSamples) {
  Ewma e(0.5);
  e.Add(100);
  e.Add(0);  // ewma = 50
  EXPECT_DOUBLE_EQ(e.value(), 50.0);
}

TEST(RateMeter, ComputesRate) {
  RateMeter m;
  m.Add(1000);
  m.Add(1000);
  double rate = m.Roll(0, Seconds(2));
  EXPECT_DOUBLE_EQ(rate, 1000.0);  // 2000 units over 2 s
  EXPECT_EQ(m.accumulated(), 0u);
}

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, EmptyEveryQuantileDefined) {
  // Zero-count convention shared with StreamingStats and obs::Histogram:
  // every quantile of an empty histogram is 0, even for out-of-range or
  // non-finite q.
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Percentile(1.0), 0);
  EXPECT_EQ(h.Percentile(-1.0), 0);
  EXPECT_EQ(h.Percentile(2.0), 0);
  EXPECT_EQ(h.Percentile(std::nan("")), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, QuantileArgumentClamped) {
  LatencyHistogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_EQ(h.Percentile(-0.5), h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(1.5), h.Percentile(1.0));
  EXPECT_EQ(h.Percentile(std::nan("")), h.Percentile(0.0));
}

TEST(StreamingStats, EmptyReportsZeroNotSentinels) {
  StreamingStats s;
  EXPECT_EQ(s.min(), 0.0);  // not +inf
  EXPECT_EQ(s.max(), 0.0);  // not -inf
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_FALSE(std::isnan(s.mean()));
  s.Add(5);
  s.Reset();
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, ExactSmallValues) {
  LatencyHistogram h;
  for (int i = 0; i < 32; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 31);
  EXPECT_EQ(h.Percentile(0.0), 0);
}

TEST(Histogram, PercentileAccuracy) {
  LatencyHistogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(i);
  // Log-linear buckets guarantee ~3% relative error.
  EXPECT_NEAR(static_cast<double>(h.p50()), 5000.0, 5000 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.p99()), 9900.0, 9900 * 0.04);
  EXPECT_NEAR(h.mean(), 5000.5, 1.0);
}

TEST(Histogram, LargeValues) {
  LatencyHistogram h;
  h.Record(Seconds(100));
  h.Record(Seconds(200));
  EXPECT_GE(h.Percentile(0.99), Seconds(100));
  EXPECT_EQ(h.max(), Seconds(200));
}

TEST(Histogram, NegativeClampedToZero) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, Merge) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_LE(a.Percentile(0.25), 11);
  EXPECT_GE(a.Percentile(0.75), 990);
}

class HistogramRoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(HistogramRoundTrip, RelativeErrorBounded) {
  LatencyHistogram h;
  int64_t v = GetParam();
  h.Record(v);
  int64_t p = h.Percentile(0.5);
  EXPECT_GE(p, v);  // bucket upper bound
  if (v > 0) {
    EXPECT_LE(static_cast<double>(p - v), std::max<double>(1.0, 0.04 * v));
  }
}

INSTANTIATE_TEST_SUITE_P(Values, HistogramRoundTrip,
                         ::testing::Values(0, 1, 31, 32, 33, 100, 1000, 4095,
                                           4096, 65535, 1 << 20,
                                           Milliseconds(1), Seconds(1),
                                           Seconds(1000)));

}  // namespace
}  // namespace gimbal
