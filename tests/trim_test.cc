// Tests for NVMe deallocate (TRIM) support across the stack: FTL mapping
// drop, device counters, fabric path, and the KV store's use of it.
#include <gtest/gtest.h>

#include "baselines/fcfs_policy.h"
#include "common/rng.h"
#include "fabric/initiator.h"
#include "kv/cluster.h"
#include "ssd/ssd.h"

namespace gimbal {
namespace {

ssd::SsdConfig SmallSsd() {
  ssd::SsdConfig c;
  c.logical_bytes = 128ull << 20;
  return c;
}

TEST(Trim, FtlDropsMapping) {
  ssd::Ftl ftl(SmallSsd());
  ftl.AllocateOnDie(5, 0);
  ASSERT_NE(ftl.Translate(5), ssd::kInvalidPage);
  uint32_t block = ftl.BlockOf(ftl.Translate(5));
  uint16_t valid_before = ftl.ValidPages(block);
  ftl.Trim(5);
  EXPECT_EQ(ftl.Translate(5), ssd::kInvalidPage);
  EXPECT_EQ(ftl.ValidPages(block), valid_before - 1);
}

TEST(Trim, DeviceCountsTrimmedPages) {
  sim::Simulator sim;
  ssd::Ssd dev(sim, SmallSsd());
  dev.PreconditionClean();
  dev.Trim(0, 64 * 1024);
  EXPECT_EQ(dev.counters().trimmed_pages, 16u);
  // Trimming unmapped space is a no-op.
  dev.Trim(0, 64 * 1024);
  EXPECT_EQ(dev.counters().trimmed_pages, 16u);
}

TEST(Trim, TrimmedReadReturnsUnmapped) {
  sim::Simulator sim;
  ssd::Ssd dev(sim, SmallSsd());
  dev.PreconditionClean();
  dev.Trim(4096, 4096);
  dev.Submit({.cookie = 1, .type = IoType::kRead, .offset = 4096,
              .length = 4096},
             [](const ssd::DeviceCompletion&) {});
  sim.Run();
  EXPECT_EQ(dev.counters().unmapped_pages, 1u);
}

TEST(Trim, ReducesGcRelocationUnderChurn) {
  // Overwrite churn where dead ranges are trimmed should relocate far
  // fewer pages than the same churn without TRIM.
  auto relocated = [](bool trim) {
    sim::Simulator sim;
    ssd::SsdConfig cfg = SmallSsd();
    ssd::Ssd dev(sim, cfg);
    dev.PreconditionClean();
    Rng rng(5);
    const uint32_t chunk = 256 * 1024;
    const uint64_t chunks = cfg.logical_bytes / chunk;
    uint64_t issued = 0;
    // Closed loop: write a random chunk; with TRIM, deallocate another
    // random chunk first (mimicking compaction freeing dead tables).
    std::function<void()> step = [&]() {
      if (issued++ > 3000) return;
      uint64_t c = rng.NextBounded(chunks);
      if (trim) dev.Trim(rng.NextBounded(chunks) * chunk, chunk);
      dev.Submit({.cookie = issued, .type = IoType::kWrite,
                  .offset = c * chunk, .length = chunk},
                 [&](const ssd::DeviceCompletion&) { step(); });
    };
    for (int i = 0; i < 4; ++i) step();
    sim.RunUntil(Seconds(5));
    return dev.ftl().stats().gc_pages_relocated;
  };
  uint64_t with_trim = relocated(true);
  uint64_t without = relocated(false);
  EXPECT_LT(with_trim, without / 2);
}

TEST(Trim, FabricPathReachesDevice) {
  sim::Simulator sim;
  fabric::Network net(sim);
  fabric::Target target(sim, net);
  ssd::Ssd dev(sim, SmallSsd());
  dev.PreconditionClean();
  target.AddPipeline(std::make_unique<baselines::FcfsPolicy>(sim, dev));
  fabric::Initiator init(sim, net, target, 0, 1);
  init.Trim(0, 128 * 1024);
  sim.Run();
  EXPECT_EQ(dev.counters().trimmed_pages, 32u);
}

TEST(Trim, KvCompactionTrimsDeadTables) {
  kv::KvClusterConfig cfg;
  cfg.testbed.num_ssds = 2;
  cfg.testbed.scheme = workload::Scheme::kGimbal;
  cfg.testbed.ssd.logical_bytes = 128ull << 20;
  cfg.hba.backend_bytes = 128ull << 20;
  cfg.db.memtable_bytes = 256 * 1024;
  cfg.db.sstable_target_bytes = 256 * 1024;
  cfg.db.level1_bytes = 1 << 20;
  kv::KvCluster cluster(cfg);
  auto& inst = cluster.AddInstance();
  for (int round = 0; round < 8; ++round) {
    for (kv::Key k = 0; k < 256; ++k) {
      inst.db->Put(k, 1024, static_cast<uint64_t>(round), nullptr);
    }
    cluster.sim().RunUntil(cluster.sim().now() + Milliseconds(150));
  }
  EXPECT_GT(inst.db->stats().compactions, 0u);
  EXPECT_GT(inst.blobs->stats().trims, 0u);
  uint64_t trimmed = 0;
  for (int b = 0; b < 2; ++b) {
    trimmed += cluster.bed().ssd(b)->counters().trimmed_pages;
  }
  EXPECT_GT(trimmed, 0u);
}

}  // namespace
}  // namespace gimbal
