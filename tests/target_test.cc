// Target-node edge cases: core scheduling, staging, multi-pipeline
// isolation, and added-cost accounting.
#include <gtest/gtest.h>

#include "baselines/fcfs_policy.h"
#include "fabric/initiator.h"
#include "fabric/network.h"
#include "fabric/target.h"
#include "ssd/null_device.h"

namespace gimbal::fabric {
namespace {

struct Rig {
  sim::Simulator sim;
  Network net{sim};
  std::unique_ptr<Target> target;
  std::vector<std::unique_ptr<ssd::NullDevice>> devs;

  explicit Rig(TargetConfig cfg = {}, int pipelines = 1) {
    target = std::make_unique<Target>(sim, net, cfg);
    for (int i = 0; i < pipelines; ++i) {
      devs.push_back(std::make_unique<ssd::NullDevice>(sim));
      target->AddPipeline(
          std::make_unique<baselines::FcfsPolicy>(sim, *devs.back()));
    }
  }
};

TEST(Target, PipelinesMapRoundRobinToCores) {
  TargetConfig cfg;
  cfg.cores = 2;
  Rig rig(cfg, 4);
  EXPECT_EQ(rig.target->pipeline_count(), 4);
}

TEST(Target, SingleCoreSerializesPipelines) {
  // Two pipelines on one core: their per-IO CPU cost adds up, halving
  // each pipeline's command rate vs. two cores.
  auto ios_done = [](int cores) {
    TargetConfig cfg;
    cfg.cores = cores;
    cfg.submit_cost = Microseconds(2);
    cfg.complete_cost = Microseconds(2);
    Rig rig(cfg, 2);
    uint64_t done = 0;
    std::vector<std::unique_ptr<Initiator>> inits;
    for (int p = 0; p < 2; ++p) {
      inits.push_back(std::make_unique<Initiator>(
          rig.sim, rig.net, *rig.target, p, static_cast<TenantId>(p + 1)));
    }
    std::function<void(int)> loop = [&](int p) {
      inits[static_cast<size_t>(p)]->Submit(
          IoType::kRead, 0, 4096, IoPriority::kNormal,
          [&, p](const IoCompletion&, Tick) {
            ++done;
            loop(p);
          });
    };
    for (int p = 0; p < 2; ++p) {
      for (int q = 0; q < 16; ++q) loop(p);
    }
    rig.sim.RunUntil(Milliseconds(50));
    return done;
  };
  uint64_t one_core = ios_done(1);
  uint64_t two_cores = ios_done(2);
  EXPECT_GT(two_cores, one_core * 17 / 10);
}

TEST(Target, StagingScalesWithIoSize) {
  TargetConfig nic = TargetConfig::SmartNicLike();
  Rig rig(nic);
  Initiator init(rig.sim, rig.net, rig.target.operator*(), 0, 1);
  Tick small = 0, large = 0;
  init.Submit(IoType::kRead, 0, 4096, IoPriority::kNormal,
              [&](const IoCompletion&, Tick l) { small = l; });
  rig.sim.Run();
  init.Submit(IoType::kRead, 0, 128 * 1024, IoPriority::kNormal,
              [&](const IoCompletion&, Tick l) { large = l; });
  rig.sim.Run();
  // 128K staging at 0.35 ns/B ~ 45 us, plus serialization ~10 us.
  EXPECT_GT(large, small + Microseconds(40));
}

TEST(Target, CompletionCarriesTargetLatencyWindow) {
  Rig rig;
  Initiator init(rig.sim, rig.net, rig.target.operator*(), 0, 1);
  IoCompletion got;
  init.Submit(IoType::kRead, 0, 4096, IoPriority::kNormal,
              [&](const IoCompletion& c, Tick) { got = c; });
  rig.sim.Run();
  // target window covers device execution plus CPU costs but not the
  // network trips.
  EXPECT_GE(got.target_latency, got.device_latency);
  EXPECT_LT(got.target_latency, Microseconds(10));
}

TEST(Target, PipelineIsolation) {
  // Saturating pipeline 0 does not delay pipeline 1 on another core.
  TargetConfig cfg;
  cfg.cores = 2;
  Rig rig(cfg, 2);
  Initiator busy(rig.sim, rig.net, *rig.target, 0, 1);
  Initiator probe(rig.sim, rig.net, *rig.target, 1, 2);
  for (int i = 0; i < 2000; ++i) {
    busy.Submit(IoType::kRead, 0, 4096, IoPriority::kNormal, nullptr);
  }
  Tick lat = 0;
  probe.Submit(IoType::kRead, 0, 4096, IoPriority::kNormal,
               [&](const IoCompletion&, Tick l) { lat = l; });
  rig.sim.Run();
  EXPECT_LT(lat, Microseconds(40));  // unaffected by the other pipeline
}

TEST(Target, TrimCostsOneSubmitSlot) {
  Rig rig;
  Initiator init(rig.sim, rig.net, *rig.target, 0, 1);
  init.Trim(0, 4096);  // null device ignores it; must not crash or hang
  rig.sim.Run();
  SUCCEED();
}

}  // namespace
}  // namespace gimbal::fabric
