// Rack chaos sweep (docs/FAULTS.md, docs/SIMULATOR.md): YCSB and
// TPC-C-lite traffic over a replicated cluster on a 2-node rack while the
// fault injector kills and recovers *whole nodes* — every SSD on the node
// fails atomically and the ToR fabric drops every capsule to or from it.
// Every mix × seed must satisfy, with a collect-everything
// (fail_fast=false) invariant checker:
//   * no acked write is ever lost (kv.ack.lost never fires),
//   * replica placement stays node-disjoint (kv.placement.domain silent),
//   * the dirty-replica ledger balances and drains once the node heals —
//     every blob is back to a node-disjoint replica pair,
//   * uplink byte conservation holds (rack.uplink.conservation silent),
//   * the merged trace digest is bit-identical at --threads=1/2/4.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/invariants.h"
#include "kv/cluster.h"
#include "kv/txn.h"
#include "obs/obs.h"

namespace gimbal::kv {
namespace {

constexpr size_t kTraceLimit = 4u << 20;
constexpr int kNodes = 2;
constexpr int kSsdsPerNode = 2;

std::string ViolationReport(const check::InvariantChecker& chk) {
  std::string out;
  size_t shown = std::min<size_t>(chk.violations().size(), 3);
  for (size_t i = 0; i < shown; ++i) {
    const auto& v = chk.violations()[i];
    out += "\n  [" + std::to_string(v.when) + "] " + v.invariant +
           " tenant=" + std::to_string(v.tenant) +
           " ssd=" + std::to_string(v.ssd) + ": " + v.detail;
  }
  if (chk.violations().size() > shown) {
    out += "\n  ... and " + std::to_string(chk.violations().size() - shown) +
           " more";
  }
  return out;
}

// All node failures heal before the drain window so every mix can assert
// full ledger convergence (same windows as kv_chaos_test.cc).
enum class Mix {
  kNodeOutage,      // node 1 dark for 60ms, then recovers
  kNodeAndMedia,    // node 1 dark while a surviving SSD throws media errors
  kStaggeredNodes,  // both nodes fail whole, staggered, both recover
};
constexpr Mix kAllMixes[] = {Mix::kNodeOutage, Mix::kNodeAndMedia,
                             Mix::kStaggeredNodes};

const char* Name(Mix m) {
  switch (m) {
    case Mix::kNodeOutage: return "node-outage";
    case Mix::kNodeAndMedia: return "node+media";
    case Mix::kStaggeredNodes: return "staggered-nodes";
  }
  return "?";
}

fault::FaultPlan PlanFor(Mix m) {
  fault::FaultPlan plan;
  switch (m) {
    case Mix::kNodeOutage:
      plan.node_failures.push_back({1, Milliseconds(20), Milliseconds(80)});
      break;
    case Mix::kNodeAndMedia:
      plan.node_failures.push_back({1, Milliseconds(20), Milliseconds(80)});
      plan.media_errors.push_back(
          {0, Milliseconds(30), Milliseconds(100), 0.25, Microseconds(150)});
      break;
    case Mix::kStaggeredNodes:
      plan.node_failures.push_back({0, Milliseconds(20), Milliseconds(60)});
      plan.node_failures.push_back({1, Milliseconds(70), Milliseconds(110)});
      break;
  }
  return plan;
}

KvClusterConfig RackConfig(Mix mix, uint64_t seed, int threads,
                           check::InvariantChecker* chk,
                           obs::Observability* obs) {
  KvClusterConfig cfg;
  cfg.testbed.num_ssds = kNodes * kSsdsPerNode;
  cfg.testbed.nodes = kNodes;
  cfg.testbed.target.cores = kSsdsPerNode;  // per node
  cfg.testbed.scheme = workload::Scheme::kGimbal;
  cfg.testbed.ssd.logical_bytes = 128ull << 20;
  cfg.testbed.condition = workload::SsdCondition::kClean;
  cfg.testbed.faults = PlanFor(mix);
  cfg.testbed.fault_seed = seed;
  cfg.testbed.check = chk;
  cfg.testbed.obs = obs;
  cfg.testbed.threads = threads;
  // Mandatory on a rack bed with node outages: capsules to a dark node
  // vanish at the fabric, and the per-IO timeout is the only recovery.
  cfg.testbed.retry.io_timeout = Milliseconds(2);
  cfg.hba.backend_bytes = 128ull << 20;
  cfg.db.memtable_bytes = 256 * 1024;  // rotate often: WAL + flush traffic
  cfg.db.sstable_target_bytes = 256 * 1024;
  cfg.db.level1_bytes = 1 << 20;
  return cfg;
}

// Shared convergence asserts: ledgers drained and balanced, checker silent,
// placement never collapsed onto one node, no acked write lost.
void AssertConverged(check::InvariantChecker& chk,
                     std::vector<KvCluster::Instance*>& insts,
                     const std::string& label) {
  for (size_t i = 0; i < insts.size(); ++i) {
    const auto& bs = insts[i]->blobs->stats();
    EXPECT_EQ(insts[i]->blobs->dirty_count(), 0u) << label << " inst " << i;
    EXPECT_EQ(bs.dirty_repaired + bs.dirty_dropped, bs.dirty_recorded)
        << label << " inst " << i;
  }
  EXPECT_TRUE(chk.CheckDrained()) << label << ViolationReport(chk);
  EXPECT_TRUE(chk.ok()) << label << ViolationReport(chk);
  for (const auto& v : chk.violations()) {
    EXPECT_NE(v.invariant, "kv.ack.lost") << label << ": " << v.detail;
    EXPECT_NE(v.invariant, "kv.placement.domain") << label << ": " << v.detail;
    EXPECT_NE(v.invariant, "rack.uplink.conservation")
        << label << ": " << v.detail;
  }
}

struct ChaosOutcome {
  uint64_t ops = 0;
  uint64_t dirty_recorded = 0;
  uint64_t node_drops = 0;
  uint64_t digest = 0;
};

// One mid-YCSB chaos run: 2 DB instances over the 2x2 rack, closed-loop
// YCSB-A clients, whole-node faults per `mix`, full drain.
ChaosOutcome RunYcsbChaos(Mix mix, uint64_t seed, int threads) {
  check::InvariantChecker chk(/*fail_fast=*/false);
  obs::Observability obs;
  obs.tracer.Enable(kTraceLimit);
  KvCluster cluster(RackConfig(mix, seed, threads, &chk, &obs));

  std::vector<KvCluster::Instance*> insts;
  std::vector<std::unique_ptr<YcsbClient>> clients;
  for (int i = 0; i < 2; ++i) {
    auto& inst = cluster.AddInstance();
    insts.push_back(&inst);
    inst.db->BulkLoad(4'000, 1024);
    workload::YcsbSpec spec;
    spec.workload = workload::YcsbWorkload::kA;
    spec.record_count = 4'000;
    spec.value_bytes = 1024;
    spec.seed = seed * 97 + static_cast<uint64_t>(i);
    clients.push_back(std::make_unique<YcsbClient>(cluster.sim(), *inst.db,
                                                   spec, /*concurrency=*/4));
  }

  for (auto& c : clients) c->Start();
  cluster.sim().RunUntil(Milliseconds(150));
  for (auto& c : clients) c->Stop();
  // The node has healed; give timed-out IOs, WAL retries and the rebuild
  // scanners room to converge, then drain the fabric completely.
  cluster.sim().RunUntil(Milliseconds(600));
  for (auto& ini : cluster.bed().initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  cluster.sim().Run();
  cluster.bed().FlushObservability();

  std::string label = std::string("ycsb/") + Name(mix) +
                      " seed=" + std::to_string(seed) +
                      " t=" + std::to_string(threads);
  ChaosOutcome out;
  for (size_t i = 0; i < clients.size(); ++i) {
    out.ops += clients[i]->stats().ops;
    // Node blackouts are not crashes: nothing may resolve kAborted.
    EXPECT_EQ(clients[i]->stats().aborted, 0u) << label << " inst " << i;
    out.dirty_recorded += insts[i]->blobs->stats().dirty_recorded;
  }
  EXPECT_GT(out.ops, 0u) << label;
  out.node_drops = cluster.bed().net().node_drops();
  EXPECT_GT(out.node_drops, 0u) << label;
  AssertConverged(chk, insts, label);
  out.digest = obs.tracer.Digest();
  EXPECT_EQ(obs.tracer.dropped(), 0u) << label;
  return out;
}

// One mid-transaction chaos run: TPC-C-lite terminals under strict 2PL on
// the same rack bed while a whole node dies and recovers.
ChaosOutcome RunTxnChaos(Mix mix, uint64_t seed, int threads) {
  check::InvariantChecker chk(/*fail_fast=*/false);
  obs::Observability obs;
  obs.tracer.Enable(kTraceLimit);
  KvCluster cluster(RackConfig(mix, seed, threads, &chk, &obs));

  std::vector<KvCluster::Instance*> insts;
  std::vector<std::unique_ptr<TxnCoordinator>> coords;
  std::vector<std::unique_ptr<TxnClient>> clients;
  for (int i = 0; i < 2; ++i) {
    auto& inst = cluster.AddInstance();
    insts.push_back(&inst);
    TxnCoordinator::Config ccfg;
    ccfg.protocol = TxnProtocol::kWaitDie;
    ccfg.max_attempts = 0;  // retry until committed; drain sets give_up
    coords.push_back(
        std::make_unique<TxnCoordinator>(cluster.sim(), *inst.db, ccfg));
    coords.back()->AttachObservability(&obs, inst.id);
    coords.back()->AttachChecker(&chk);
    workload::TpccSpec spec;
    spec.warehouses = 1;
    spec.seed = seed * 97 + static_cast<uint64_t>(i);
    clients.push_back(std::make_unique<TxnClient>(
        cluster.sim(), *coords.back(), spec, /*concurrency=*/4));
  }

  for (auto& c : clients) c->Start();
  cluster.sim().RunUntil(Milliseconds(150));
  for (auto& c : clients) c->Stop();
  for (auto& co : coords) co->set_give_up(true);
  cluster.sim().RunUntil(Milliseconds(600));
  for (auto& ini : cluster.bed().initiators()) {
    if (!ini->shutdown()) ini->Shutdown();
  }
  cluster.sim().Run();
  cluster.bed().FlushObservability();

  std::string label = std::string("txn/") + Name(mix) +
                      " seed=" + std::to_string(seed) +
                      " t=" + std::to_string(threads);
  ChaosOutcome out;
  uint64_t commits = 0;
  for (int i = 0; i < 2; ++i) {
    const auto& cs = coords[static_cast<size_t>(i)]->stats();
    out.ops += cs.submitted;
    commits += cs.commits;
    EXPECT_EQ(cs.stamp_mismatches, 0u) << label << " inst " << i;
    EXPECT_TRUE(coords[static_cast<size_t>(i)]->locks().idle())
        << label << " inst " << i;
    const auto& ls = coords[static_cast<size_t>(i)]->locks().stats();
    EXPECT_EQ(ls.acquires, ls.releases + ls.upgrades)
        << label << " inst " << i;
  }
  EXPECT_GT(commits, 0u) << label;
  for (const auto& v : chk.violations()) {
    EXPECT_NE(v.invariant, "txn.commit.lost") << label << ": " << v.detail;
  }
  AssertConverged(chk, insts, label);
  out.digest = obs.tracer.Digest();
  EXPECT_EQ(obs.tracer.dropped(), 0u) << label;
  return out;
}

// Satellite: every node-failure mix × 3 seeds survives mid-YCSB with zero
// lost acked writes, node-disjoint placement and drained ledgers.
TEST(RackChaos, YcsbSweepAllMixesAndSeeds) {
  for (Mix mix : kAllMixes) {
    uint64_t total_dirty = 0;
    for (uint64_t seed : {1u, 7u, 23u}) {
      ChaosOutcome out = RunYcsbChaos(mix, seed, /*threads=*/1);
      total_dirty += out.dirty_recorded;
    }
    // A whole-node outage must exercise the degraded-write path, or the
    // sweep is vacuous.
    EXPECT_GT(total_dirty, 0u) << Name(mix);
  }
}

// Mid-transaction: strict 2PL rides through whole-node failures with zero
// lost committed transactions and balanced lock ledgers.
TEST(RackChaos, TxnSweepNodeOutages) {
  for (Mix mix : {Mix::kNodeOutage, Mix::kStaggeredNodes}) {
    for (uint64_t seed : {1u, 7u}) {
      RunTxnChaos(mix, seed, /*threads=*/1);
    }
  }
}

// Determinism contract under whole-node chaos: the merged trace digest is
// bit-identical at any worker-thread count. ("Sharded" in the name keys
// this test into the TSan CI shard.)
TEST(RackChaos, ShardedDigestIdenticalAcrossThreadCounts) {
  ChaosOutcome t1 = RunYcsbChaos(Mix::kNodeAndMedia, /*seed=*/5, /*threads=*/1);
  ChaosOutcome t2 = RunYcsbChaos(Mix::kNodeAndMedia, /*seed=*/5, /*threads=*/2);
  ChaosOutcome t4 = RunYcsbChaos(Mix::kNodeAndMedia, /*seed=*/5, /*threads=*/4);
  EXPECT_EQ(t1.digest, t2.digest);
  EXPECT_EQ(t1.digest, t4.digest);
  EXPECT_EQ(t1.ops, t2.ops);
  EXPECT_EQ(t1.ops, t4.ops);
  EXPECT_EQ(t1.node_drops, t2.node_drops);
  EXPECT_EQ(t1.node_drops, t4.node_drops);
}

}  // namespace
}  // namespace gimbal::kv
