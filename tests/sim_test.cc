// Unit tests for the discrete-event engine: ordering, determinism,
// resources, and coroutine integration.
#include <gtest/gtest.h>

#include <vector>

#include "sim/coro.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace gimbal::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(Microseconds(30), [&]() { order.push_back(3); });
  sim.At(Microseconds(10), [&]() { order.push_back(1); });
  sim.At(Microseconds(20), [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Microseconds(30));
}

TEST(Simulator, SameTimestampFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.At(Microseconds(5), [&, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  Tick fired_at = -1;
  sim.At(Microseconds(10), [&]() {
    sim.After(Microseconds(5), [&]() { fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, Microseconds(15));
}

TEST(Simulator, NestedEventsFromCallbacks) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 50) sim.After(Microseconds(1), recurse);
  };
  sim.After(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(sim.now(), Microseconds(49));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.At(Microseconds(10), [&]() { ++fired; });
  sim.At(Microseconds(20), [&]() { ++fired; });
  sim.RunUntil(Microseconds(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Microseconds(15));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.RunUntil(Milliseconds(7));
  EXPECT_EQ(sim.now(), Milliseconds(7));
}

TEST(Simulator, EventCountTracking) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.At(i, []() {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 10u);
}

TEST(FifoResource, SerializesWork) {
  Simulator sim;
  FifoResource res(sim);
  std::vector<Tick> completions;
  for (int i = 0; i < 3; ++i) {
    res.Acquire(Microseconds(10), [&]() { completions.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], Microseconds(10));
  EXPECT_EQ(completions[1], Microseconds(20));
  EXPECT_EQ(completions[2], Microseconds(30));
}

TEST(FifoResource, IdleThenBusy) {
  Simulator sim;
  FifoResource res(sim);
  EXPECT_FALSE(res.busy());
  res.Acquire(Microseconds(5), nullptr);
  EXPECT_TRUE(res.busy());
  sim.Run();
  EXPECT_FALSE(res.busy());
}

TEST(FifoResource, InterleavedArrivals) {
  Simulator sim;
  FifoResource res(sim);
  std::vector<int> order;
  res.Acquire(Microseconds(10), [&]() { order.push_back(1); });
  sim.At(Microseconds(5), [&]() {
    res.Acquire(Microseconds(10), [&]() { order.push_back(2); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), Microseconds(20));
}

TEST(FifoResource, BusyTimeAccounting) {
  Simulator sim;
  FifoResource res(sim);
  res.Acquire(Microseconds(10), nullptr);
  res.Acquire(Microseconds(15), nullptr);
  sim.Run();
  EXPECT_EQ(res.busy_time_total(), Microseconds(25));
}

TEST(Coro, DelayResumesAtRightTime) {
  Simulator sim;
  Tick resumed = -1;
  auto coro = [&]() -> Task {
    co_await Delay{sim, Microseconds(42)};
    resumed = sim.now();
  };
  coro();
  sim.Run();
  EXPECT_EQ(resumed, Microseconds(42));
}

TEST(Coro, SequentialDelays) {
  Simulator sim;
  std::vector<Tick> marks;
  auto coro = [&]() -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await Delay{sim, Microseconds(10)};
      marks.push_back(sim.now());
    }
  };
  coro();
  sim.Run();
  EXPECT_EQ(marks, (std::vector<Tick>{Microseconds(10), Microseconds(20),
                                      Microseconds(30)}));
}

TEST(Coro, AsyncEventDeliversValue) {
  Simulator sim;
  AsyncEvent<int> ev(sim);
  int got = 0;
  auto coro = [&]() -> Task {
    got = co_await ev;
  };
  coro();
  sim.At(Microseconds(5), [&]() { ev.Set(99); });
  sim.Run();
  EXPECT_EQ(got, 99);
}

TEST(Coro, AsyncEventAlreadySet) {
  Simulator sim;
  AsyncEvent<int> ev(sim);
  ev.Set(7);
  int got = 0;
  auto coro = [&]() -> Task {
    got = co_await ev;
  };
  coro();
  sim.Run();
  EXPECT_EQ(got, 7);
}

TEST(Coro, LatchFanIn) {
  Simulator sim;
  AsyncLatch latch(sim, 3);
  bool done = false;
  auto coro = [&]() -> Task {
    co_await latch;
    done = true;
  };
  coro();
  sim.At(Microseconds(1), [&]() { latch.CountDown(); });
  sim.At(Microseconds(2), [&]() { latch.CountDown(); });
  sim.RunUntil(Microseconds(5));
  EXPECT_FALSE(done);
  sim.At(Microseconds(6), [&]() { latch.CountDown(); });
  sim.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace gimbal::sim
