// Unit tests for the discrete-event engine: ordering, determinism,
// resources, and coroutine integration — plus the timing-wheel event queue
// (cross-checked against the reference-heap engine), the allocation-free
// event callback, and the cancellable-timer API (docs/SIMULATOR.md).
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "sim/coro.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace gimbal::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(Microseconds(30), [&]() { order.push_back(3); });
  sim.At(Microseconds(10), [&]() { order.push_back(1); });
  sim.At(Microseconds(20), [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Microseconds(30));
}

TEST(Simulator, SameTimestampFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.At(Microseconds(5), [&, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  Tick fired_at = -1;
  sim.At(Microseconds(10), [&]() {
    sim.After(Microseconds(5), [&]() { fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, Microseconds(15));
}

TEST(Simulator, NestedEventsFromCallbacks) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 50) sim.After(Microseconds(1), recurse);
  };
  sim.After(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(sim.now(), Microseconds(49));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.At(Microseconds(10), [&]() { ++fired; });
  sim.At(Microseconds(20), [&]() { ++fired; });
  sim.RunUntil(Microseconds(15));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Microseconds(15));
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.RunUntil(Milliseconds(7));
  EXPECT_EQ(sim.now(), Milliseconds(7));
}

TEST(Simulator, EventCountTracking) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.At(i, []() {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 10u);
}

TEST(FifoResource, SerializesWork) {
  Simulator sim;
  FifoResource res(sim);
  std::vector<Tick> completions;
  for (int i = 0; i < 3; ++i) {
    res.Acquire(Microseconds(10), [&]() { completions.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], Microseconds(10));
  EXPECT_EQ(completions[1], Microseconds(20));
  EXPECT_EQ(completions[2], Microseconds(30));
}

TEST(FifoResource, IdleThenBusy) {
  Simulator sim;
  FifoResource res(sim);
  EXPECT_FALSE(res.busy());
  res.Acquire(Microseconds(5), nullptr);
  EXPECT_TRUE(res.busy());
  sim.Run();
  EXPECT_FALSE(res.busy());
}

TEST(FifoResource, InterleavedArrivals) {
  Simulator sim;
  FifoResource res(sim);
  std::vector<int> order;
  res.Acquire(Microseconds(10), [&]() { order.push_back(1); });
  sim.At(Microseconds(5), [&]() {
    res.Acquire(Microseconds(10), [&]() { order.push_back(2); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), Microseconds(20));
}

TEST(FifoResource, BusyTimeAccounting) {
  Simulator sim;
  FifoResource res(sim);
  res.Acquire(Microseconds(10), nullptr);
  res.Acquire(Microseconds(15), nullptr);
  sim.Run();
  EXPECT_EQ(res.busy_time_total(), Microseconds(25));
}

TEST(Coro, DelayResumesAtRightTime) {
  Simulator sim;
  Tick resumed = -1;
  auto coro = [&]() -> Task {
    co_await Delay{sim, Microseconds(42)};
    resumed = sim.now();
  };
  coro();
  sim.Run();
  EXPECT_EQ(resumed, Microseconds(42));
}

TEST(Coro, SequentialDelays) {
  Simulator sim;
  std::vector<Tick> marks;
  auto coro = [&]() -> Task {
    for (int i = 0; i < 3; ++i) {
      co_await Delay{sim, Microseconds(10)};
      marks.push_back(sim.now());
    }
  };
  coro();
  sim.Run();
  EXPECT_EQ(marks, (std::vector<Tick>{Microseconds(10), Microseconds(20),
                                      Microseconds(30)}));
}

TEST(Coro, AsyncEventDeliversValue) {
  Simulator sim;
  AsyncEvent<int> ev(sim);
  int got = 0;
  auto coro = [&]() -> Task {
    got = co_await ev;
  };
  coro();
  sim.At(Microseconds(5), [&]() { ev.Set(99); });
  sim.Run();
  EXPECT_EQ(got, 99);
}

TEST(Coro, AsyncEventAlreadySet) {
  Simulator sim;
  AsyncEvent<int> ev(sim);
  ev.Set(7);
  int got = 0;
  auto coro = [&]() -> Task {
    got = co_await ev;
  };
  coro();
  sim.Run();
  EXPECT_EQ(got, 7);
}

TEST(Coro, LatchFanIn) {
  Simulator sim;
  AsyncLatch latch(sim, 3);
  bool done = false;
  auto coro = [&]() -> Task {
    co_await latch;
    done = true;
  };
  coro();
  sim.At(Microseconds(1), [&]() { latch.CountDown(); });
  sim.At(Microseconds(2), [&]() { latch.CountDown(); });
  sim.RunUntil(Microseconds(5));
  EXPECT_FALSE(done);
  sim.At(Microseconds(6), [&]() { latch.CountDown(); });
  sim.Run();
  EXPECT_TRUE(done);
}

// --- InlineFn (allocation-free event callback) -----------------------------

TEST(InlineFn, SmallClosureStaysInline) {
  const uint64_t before = InlineFn::heap_fallbacks();
  int fired = 0;
  InlineFn fn([&fired]() { ++fired; });
  EXPECT_EQ(InlineFn::heap_fallbacks(), before);
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(fired, 1);
}

TEST(InlineFn, CapacitySizedClosureStaysInline) {
  // Exactly kInlineCapacity bytes of captured state — the boundary case the
  // buffer was sized for (the target's completion closure).
  struct Payload {
    unsigned char bytes[InlineFn::kInlineCapacity - sizeof(int*)];
  };
  static_assert(sizeof(Payload) + sizeof(int*) == InlineFn::kInlineCapacity);
  const uint64_t before = InlineFn::heap_fallbacks();
  int sum = 0;
  Payload p{};
  p.bytes[0] = 7;
  InlineFn fn([p, out = &sum]() { *out += p.bytes[0]; });
  EXPECT_EQ(InlineFn::heap_fallbacks(), before);
  fn();
  EXPECT_EQ(sum, 7);
}

TEST(InlineFn, OversizedClosureFallsBackToHeapAndStillWorks) {
  struct Big {
    unsigned char bytes[InlineFn::kInlineCapacity + 64];
  };
  const uint64_t before = InlineFn::heap_fallbacks();
  Big big{};
  big.bytes[100] = 3;
  int got = 0;
  InlineFn fn([big, out = &got]() { *out = big.bytes[100]; });
  EXPECT_EQ(InlineFn::heap_fallbacks(), before + 1);
  fn();
  EXPECT_EQ(got, 3);
}

TEST(InlineFn, MoveTransfersOwnership) {
  int fired = 0;
  InlineFn a([&fired]() { ++fired; });
  InlineFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(fired, 1);
  InlineFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(fired, 2);
}

TEST(InlineFn, NullAndDefaultAreFalsy) {
  InlineFn a;
  InlineFn b(nullptr);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_FALSE(static_cast<bool>(b));
}

// --- Timing wheel vs reference heap ----------------------------------------

// Granularity of a level-0 wheel slot (2^10 ns) — mirrored here so the
// tests can aim events at specific wheel levels without reaching into the
// queue's internals.
constexpr Tick kSlotNs = 1 << 10;
// One lap of level 0 (256 slots); events beyond this distance file into
// level 1 or higher.
constexpr Tick kLevel0Window = 256 * kSlotNs;
// The whole wheel's horizon (4 levels); events beyond it park in the
// overflow heap.
constexpr Tick kWheelHorizon = Tick{1} << 42;

TEST(EventQueue, PopReportsTimeAndDrainsInOrder) {
  EventQueue q;
  q.Push(30, nullptr);
  q.Push(10, nullptr);
  q.Push(20, nullptr);
  EXPECT_EQ(q.size(), 3u);
  Tick t = -1;
  q.Pop(&t);
  EXPECT_EQ(t, 10);
  EXPECT_EQ(q.next_time(), 20);
  q.Pop(&t);
  q.Pop(&t);
  EXPECT_EQ(t, 30);
  EXPECT_TRUE(q.empty());
}

// Regression for the wheel's slot-selection rule: a higher-level slot can
// start earlier than the nearest occupied level-0 slot (its events were
// beyond the level-0 window when filed and the cursor advanced since).
// The scan must take the earliest-starting slot across levels, not the
// first occupied level-0 slot.
TEST(EventQueue, HigherLevelSlotCanPrecedeNearestLevelZeroSlot) {
  EventQueue q;
  std::vector<int> order;
  // B lands in level 1: 300 slots ahead of cursor 0.
  q.Push(300 * kSlotNs, [&order]() { order.push_back(2); });
  // Filler advances the cursor into slot 100.
  q.Push(100 * kSlotNs, [&order]() { order.push_back(1); });
  Tick t;
  q.Pop(&t)();  // fires the filler; cursor now at slot 100
  // A lands in level 0 at slot 350 — *later* than B but found first by a
  // level-0-first scan.
  q.Push(350 * kSlotNs, [&order]() { order.push_back(3); });
  while (!q.empty()) q.Pop(&t)();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FarFutureEventsBeyondHorizonFireInOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(kWheelHorizon * 3, [&order]() { order.push_back(4); });
  q.Push(kWheelHorizon + 5, [&order]() { order.push_back(3); });
  q.Push(kLevel0Window * 2, [&order]() { order.push_back(2); });
  q.Push(17, [&order]() { order.push_back(1); });
  Tick t = -1;
  while (!q.empty()) q.Pop(&t)();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(t, kWheelHorizon * 3);
}

TEST(EventQueue, SameTickBurstAcrossHorizonKeepsInsertionOrder) {
  // A same-tick burst far beyond the horizon migrates overflow -> wheel ->
  // current heap; insertion order must survive all three hops.
  EventQueue q;
  std::vector<int> order;
  const Tick when = kWheelHorizon + 12345;
  for (int i = 0; i < 64; ++i) {
    q.Push(when, [&order, i]() { order.push_back(i); });
  }
  Tick t;
  while (!q.empty()) q.Pop(&t)();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ReferenceHeapEngineHonorsSameContract) {
  EventQueue q(EventQueue::Impl::kReferenceHeap);
  EXPECT_EQ(q.impl(), EventQueue::Impl::kReferenceHeap);
  std::vector<int> order;
  q.Push(20, [&order]() { order.push_back(2); });
  q.Push(10, [&order]() { order.push_back(1); });
  q.Push(10, [&order]() { order.push_back(11); });  // same tick: FIFO
  Tick t;
  while (!q.empty()) q.Pop(&t)();
  EXPECT_EQ(order, (std::vector<int>{1, 11, 2}));
}

// --- TimerHandle -----------------------------------------------------------

TEST(TimerHandle, DefaultHandleIsInert) {
  TimerHandle h;
  EXPECT_FALSE(h.active());
  EXPECT_FALSE(h.Cancel());
  EXPECT_FALSE(h.Reschedule(5));
}

TEST(TimerHandle, CancelPreventsFiringAndGoesInert) {
  Simulator sim;
  int fired = 0;
  TimerHandle h = sim.After(Microseconds(10), [&fired]() { ++fired; });
  EXPECT_TRUE(h.active());
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_TRUE(h.Cancel());
  EXPECT_FALSE(h.active());
  EXPECT_FALSE(h.Cancel());  // second cancel: stale, no-op
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.Run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.now(), 0);  // nothing ran, clock never moved
}

TEST(TimerHandle, CancelAfterFireIsNoOp) {
  Simulator sim;
  int fired = 0;
  TimerHandle h = sim.After(Microseconds(10), [&fired]() { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.active());
  EXPECT_FALSE(h.Cancel());
  EXPECT_FALSE(h.Reschedule(sim.now() + 5));
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(TimerHandle, CancelledNodeRecycledWithoutAliasingOldHandle) {
  Simulator sim;
  int a_fired = 0, b_fired = 0;
  TimerHandle a = sim.After(Microseconds(10), [&a_fired]() { ++a_fired; });
  a.Cancel();
  // b recycles a's node; a's stale handle must not be able to touch it.
  TimerHandle b = sim.After(Microseconds(20), [&b_fired]() { ++b_fired; });
  EXPECT_FALSE(a.Cancel());
  EXPECT_FALSE(a.Reschedule(Microseconds(30)));
  EXPECT_TRUE(b.active());
  sim.Run();
  EXPECT_EQ(a_fired, 0);
  EXPECT_EQ(b_fired, 1);
}

TEST(TimerHandle, RescheduleMovesFiringTime) {
  Simulator sim;
  Tick fired_at = -1;
  TimerHandle h =
      sim.After(Microseconds(10), [&]() { fired_at = sim.now(); });
  EXPECT_TRUE(h.Reschedule(Microseconds(50)));
  EXPECT_TRUE(h.active());
  sim.Run();
  EXPECT_EQ(fired_at, Microseconds(50));
  // The handle tracked the move and is now spent.
  EXPECT_FALSE(h.active());
}

TEST(TimerHandle, RescheduleReentersOrderingAsFreshPush) {
  Simulator sim;
  std::vector<int> order;
  TimerHandle x = sim.At(Microseconds(5), [&order]() { order.push_back(1); });
  sim.At(Microseconds(5), [&order]() { order.push_back(2); });
  // Rescheduling x to its own time demotes it behind the same-tick peer:
  // a rescheduled event orders as if freshly pushed.
  EXPECT_TRUE(x.Reschedule(Microseconds(5)));
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(TimerHandle, RescheduleToNowFiresImmediately) {
  Simulator sim;
  std::vector<int> order;
  sim.At(Microseconds(1), [&]() {
    TimerHandle h =
        sim.After(Microseconds(100), [&order]() { order.push_back(1); });
    EXPECT_TRUE(h.Reschedule(sim.now()));  // pull it back to this tick
    sim.After(0, [&order]() { order.push_back(2); });
  });
  sim.Run();
  EXPECT_EQ(sim.now(), Microseconds(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerHandle, CopiesShareTheClaim) {
  Simulator sim;
  int fired = 0;
  TimerHandle a = sim.After(Microseconds(10), [&fired]() { ++fired; });
  TimerHandle b = a;
  EXPECT_TRUE(b.Cancel());
  EXPECT_FALSE(a.active());
  EXPECT_FALSE(a.Cancel());
  sim.Run();
  EXPECT_EQ(fired, 0);
}

// --- Clear() ---------------------------------------------------------------

// Regression: Clear() used to keep the old insertion sequence running, so
// a reused queue ordered same-tick events differently from a fresh one.
TEST(EventQueue, ClearResetsInsertionSequence) {
  EventQueue q;
  q.Push(10, nullptr);
  q.Push(20, nullptr);
  EXPECT_EQ(q.next_seq(), 2u);
  q.Clear();
  EXPECT_EQ(q.next_seq(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.tombstones(), 0u);
}

TEST(EventQueue, ClearedQueueBehavesLikeFresh) {
  auto run = [](EventQueue& q) {
    std::vector<int> order;
    q.Push(kLevel0Window * 3, [&order]() { order.push_back(2); });
    q.Push(5, [&order]() { order.push_back(1); });
    q.Push(5, [&order]() { order.push_back(11); });
    Tick t;
    while (!q.empty()) q.Pop(&t)();
    return order;
  };
  EventQueue fresh;
  const std::vector<int> want = run(fresh);

  EventQueue reused;
  reused.Push(kWheelHorizon + 7, nullptr);  // park something in overflow
  reused.Push(3, nullptr);
  Tick t;
  reused.Pop(&t);  // advance the cursor off zero
  reused.Clear();
  EXPECT_EQ(run(reused), want);
}

TEST(EventQueue, HandleFromBeforeClearStaysInert) {
  EventQueue q;
  TimerHandle h = q.Push(10, nullptr);
  q.Clear();
  EXPECT_FALSE(h.active());
  // The recycled node now backs a new event; the stale handle must not
  // cancel it out from under the new owner.
  TimerHandle h2 = q.Push(20, nullptr);
  EXPECT_FALSE(h.Cancel());
  EXPECT_TRUE(h2.active());
  EXPECT_EQ(q.size(), 1u);
}

// --- Tombstone accounting ---------------------------------------------------

TEST(EventQueue, TombstonesDrainAsTheQueueAdvances) {
  EventQueue q;
  std::vector<TimerHandle> hs;
  for (int i = 0; i < 16; ++i) hs.push_back(q.Push(100 + i, nullptr));
  for (int i = 0; i < 16; i += 2) hs[i].Cancel();
  EXPECT_EQ(q.size(), 8u);
  EXPECT_EQ(q.tombstones(), 8u);
  Tick t;
  while (!q.empty()) q.Pop(&t);
  EXPECT_EQ(q.tombstones(), 0u);  // surfaced entries were reclaimed
}

// --- Property test: randomized interleavings, wheel vs reference heap ------

// Drives both engines through an identical randomized stream of Push, Pop,
// Cancel and Reschedule — same-tick bursts, far-future overflow parking,
// cancels of already-fired handles, reschedules to now — and asserts the
// two agree on every observable: pop times, fired-callback identity,
// operation return values, and sizes.
TEST(EventQueue, RandomizedOpsMatchReferenceHeap) {
  constexpr int kSeeds = 10;
  constexpr int kOpsPerSeed = 10000;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull);
    EventQueue wheel(EventQueue::Impl::kTimingWheel);
    EventQueue ref(EventQueue::Impl::kReferenceHeap);
    std::vector<std::pair<TimerHandle, TimerHandle>> handles;
    std::vector<int> wfired, rfired;
    Tick now = 0;
    int next_id = 0;

    auto random_delta = [&]() -> Tick {
      switch (rng() % 5) {
        case 0: return 0;  // same tick
        case 1: return static_cast<Tick>(rng() % (2 * kSlotNs));
        case 2: return static_cast<Tick>(rng() % kLevel0Window);
        case 3: return static_cast<Tick>(rng() % kWheelHorizon);
        default:
          return kWheelHorizon + static_cast<Tick>(rng() % kWheelHorizon);
      }
    };
    auto push_one = [&]() {
      const Tick when = now + random_delta();
      const int id = next_id++;
      handles.emplace_back(
          wheel.Push(when, [&wfired, id]() { wfired.push_back(id); }),
          ref.Push(when, [&rfired, id]() { rfired.push_back(id); }));
    };
    auto pop_one = [&]() {
      Tick tw = -1, tr = -2;
      EventFn fw = wheel.Pop(&tw);
      EventFn fr = ref.Pop(&tr);
      ASSERT_EQ(tw, tr) << "pop time diverged, seed " << seed;
      ASSERT_GE(tw, now);
      now = tw;
      fw();
      fr();
      ASSERT_EQ(wfired.back(), rfired.back())
          << "fired different events at t=" << tw << ", seed " << seed;
    };

    for (int op = 0; op < kOpsPerSeed; ++op) {
      const uint64_t what = rng() % 100;
      if (what < 40 || wheel.empty()) {
        if (what < 8) {
          // Same-tick burst: several events on one future tick.
          const Tick when = now + random_delta();
          for (int i = 0; i < 5; ++i) {
            const int id = next_id++;
            handles.emplace_back(
                wheel.Push(when, [&wfired, id]() { wfired.push_back(id); }),
                ref.Push(when, [&rfired, id]() { rfired.push_back(id); }));
          }
        } else {
          push_one();
        }
      } else if (what < 65) {
        pop_one();
        if (HasFatalFailure()) return;
      } else if (what < 85 && !handles.empty()) {
        // Cancel a random handle — often one that already fired or was
        // cancelled before; both engines must agree either way.
        auto& [hw, hr] = handles[rng() % handles.size()];
        ASSERT_EQ(hw.active(), hr.active());
        ASSERT_EQ(hw.Cancel(), hr.Cancel()) << "cancel diverged, seed "
                                            << seed;
      } else if (!handles.empty()) {
        auto& [hw, hr] = handles[rng() % handles.size()];
        const Tick when = now + (rng() % 3 == 0 ? 0 : random_delta());
        ASSERT_EQ(hw.Reschedule(when), hr.Reschedule(when))
            << "reschedule diverged, seed " << seed;
      }
      ASSERT_EQ(wheel.size(), ref.size());
      ASSERT_EQ(wheel.empty(), ref.empty());
    }
    while (!ref.empty()) {
      ASSERT_FALSE(wheel.empty()) << "wheel drained early, seed " << seed;
      pop_one();
      if (HasFatalFailure()) return;
    }
    EXPECT_TRUE(wheel.empty()) << "wheel kept extra events, seed " << seed;
    EXPECT_EQ(wfired, rfired) << "full firing order diverged, seed " << seed;
  }
}

}  // namespace
}  // namespace gimbal::sim
