// Unit tests for the flash translation layer: mapping, allocation, GC
// victim selection, erase accounting, wear levelling, preconditioning.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/rng.h"
#include "ssd/ftl.h"

namespace gimbal::ssd {
namespace {

SsdConfig TinyConfig() {
  SsdConfig c;
  c.channels = 2;
  c.dies_per_channel = 2;          // 4 dies
  c.pages_per_block = 16;          // 64 KiB blocks
  c.logical_bytes = 2ull << 20;    // 2 MiB = 512 pages
  c.over_provisioning = 0.25;
  return c;
}

TEST(Ftl, StartsUnmapped) {
  Ftl ftl(TinyConfig());
  for (Lpn l = 0; l < ftl.config().logical_pages(); ++l) {
    EXPECT_EQ(ftl.Translate(l), kInvalidPage);
  }
}

TEST(Ftl, AllocateMapsAndTranslates) {
  Ftl ftl(TinyConfig());
  Ppn p = ftl.AllocateOnDie(5, 0);
  EXPECT_NE(p, kInvalidPage);
  EXPECT_EQ(ftl.Translate(5), p);
  EXPECT_EQ(ftl.DieOfPpn(p), 0);
}

TEST(Ftl, OverwriteInvalidatesOldPage) {
  Ftl ftl(TinyConfig());
  Ppn p1 = ftl.AllocateOnDie(5, 0);
  uint32_t b1 = ftl.BlockOf(p1);
  EXPECT_EQ(ftl.ValidPages(b1), 1);
  Ppn p2 = ftl.AllocateOnDie(5, 0);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(ftl.Translate(5), p2);
  // Old copy stale; block valid count reflects only live data.
  uint32_t b2 = ftl.BlockOf(p2);
  if (b1 == b2) {
    EXPECT_EQ(ftl.ValidPages(b1), 1);
  } else {
    EXPECT_EQ(ftl.ValidPages(b1), 0);
  }
}

TEST(Ftl, SequentialAllocationFillsBlockContiguously) {
  Ftl ftl(TinyConfig());
  Ppn prev = ftl.AllocateOnDie(0, 2);
  for (Lpn l = 1; l < ftl.config().pages_per_block; ++l) {
    Ppn p = ftl.AllocateOnDie(l, 2);
    EXPECT_EQ(p, prev + 1);
    prev = p;
  }
}

TEST(Ftl, BlocksBelongToCorrectDie) {
  SsdConfig c = TinyConfig();
  Ftl ftl(c);
  for (int die = 0; die < c.dies(); ++die) {
    Ppn p = ftl.AllocateOnDie(static_cast<Lpn>(die), die);
    EXPECT_EQ(ftl.DieOfPpn(p), die);
  }
}

TEST(Ftl, FreeBlockCountDecreasesAsBlocksOpen) {
  SsdConfig c = TinyConfig();
  Ftl ftl(c);
  int before = ftl.FreeBlocks(0);
  // Fill exactly one block on die 0.
  for (uint32_t i = 0; i < c.pages_per_block; ++i) {
    ftl.AllocateOnDie(i, 0);
  }
  // Opening the first block consumed a free block; the next allocation
  // opens another.
  EXPECT_EQ(ftl.FreeBlocks(0), before - 1);
  ftl.AllocateOnDie(100, 0);
  EXPECT_EQ(ftl.FreeBlocks(0), before - 2);
}

TEST(Ftl, VictimSelectionPrefersFewestValid) {
  SsdConfig c = TinyConfig();
  Ftl ftl(c);
  // Fill two blocks on die 0 with distinct LPNs.
  for (uint32_t i = 0; i < 2 * c.pages_per_block; ++i) {
    ftl.AllocateOnDie(i, 0);
  }
  // Invalidate most of the first block by rewriting its LPNs on die 1.
  for (uint32_t i = 0; i < c.pages_per_block - 1; ++i) {
    ftl.AllocateOnDie(i, 1);
  }
  int victim = ftl.SelectGcVictim(0);
  ASSERT_GE(victim, 0);
  EXPECT_EQ(ftl.ValidPages(static_cast<uint32_t>(victim)), 1);
}

TEST(Ftl, VictimNeverOpenBlock) {
  SsdConfig c = TinyConfig();
  Ftl ftl(c);
  // Only a partially-filled open block exists: no victim available.
  ftl.AllocateOnDie(0, 0);
  EXPECT_EQ(ftl.SelectGcVictim(0), -1);
}

TEST(Ftl, CollectValidReturnsLiveLpns) {
  SsdConfig c = TinyConfig();
  Ftl ftl(c);
  for (uint32_t i = 0; i < c.pages_per_block; ++i) ftl.AllocateOnDie(i, 0);
  ftl.AllocateOnDie(3, 1);  // move lpn 3 away
  Ppn p0 = ftl.Translate(0);
  uint32_t block = ftl.BlockOf(p0);
  auto valid = ftl.CollectValid(block);
  std::set<Lpn> vset(valid.begin(), valid.end());
  EXPECT_EQ(vset.count(3), 0u);
  EXPECT_EQ(vset.count(0), 1u);
  EXPECT_EQ(valid.size(), c.pages_per_block - 1);
}

TEST(Ftl, EraseReturnsBlockToFreeList) {
  SsdConfig c = TinyConfig();
  Ftl ftl(c);
  for (uint32_t i = 0; i < c.pages_per_block; ++i) ftl.AllocateOnDie(i, 0);
  uint32_t block = ftl.BlockOf(ftl.Translate(0));
  // Invalidate everything by rewriting on die 1.
  for (uint32_t i = 0; i < c.pages_per_block; ++i) ftl.AllocateOnDie(i, 1);
  EXPECT_EQ(ftl.ValidPages(block), 0);
  int free_before = ftl.FreeBlocks(0);
  ftl.EraseBlock(block);
  EXPECT_EQ(ftl.FreeBlocks(0), free_before + 1);
  EXPECT_EQ(ftl.EraseCount(block), 1u);
}

TEST(Ftl, GcSynchronousReclaimsSpace) {
  SsdConfig c = TinyConfig();
  Ftl ftl(c);
  ftl.PreconditionSequential();
  // Hammer die 0 with overwrites until GC is needed, then run it. Note the
  // hammering deliberately over-fills die 0 with valid data, so GC may not
  // reach the full high watermark — but it must reclaim space and, above
  // all, terminate (regression test for a GC livelock on packed dies).
  Rng rng(1);
  uint32_t pages = c.logical_pages();
  while (!ftl.NeedsGc(0)) {
    ftl.AllocateOnDie(static_cast<Lpn>(rng.NextBounded(pages)), 0);
    if (!ftl.CanAllocate(0)) break;
  }
  int before = ftl.FreeBlocks(0);
  ftl.GcSynchronous(0);
  EXPECT_TRUE(ftl.GcSatisfied(0) || ftl.FreeBlocks(0) >= before);
  EXPECT_GT(ftl.stats().blocks_erased, 0u);
}

TEST(Ftl, PreconditionSequentialMapsEverything) {
  Ftl ftl(TinyConfig());
  ftl.PreconditionSequential();
  for (Lpn l = 0; l < ftl.config().logical_pages(); ++l) {
    EXPECT_NE(ftl.Translate(l), kInvalidPage) << "lpn " << l;
  }
  // Stats are reset after preconditioning.
  EXPECT_EQ(ftl.stats().host_pages_written, 0u);
}

TEST(Ftl, PreconditionSequentialStripesAcrossDies) {
  SsdConfig c = TinyConfig();
  Ftl ftl(c);
  ftl.PreconditionSequential();
  // Consecutive read units land on different dies.
  int die0 = ftl.DieOfPpn(ftl.Translate(0));
  int die1 = ftl.DieOfPpn(ftl.Translate(c.read_unit_pages));
  EXPECT_NE(die0, die1);
  // Pages within one read unit share a die and are physically consecutive.
  EXPECT_EQ(ftl.Translate(1), ftl.Translate(0) + 1);
}

TEST(Ftl, PreconditionRandomMapsEverything) {
  Ftl ftl(TinyConfig());
  ftl.PreconditionRandom(2.0);
  for (Lpn l = 0; l < ftl.config().logical_pages(); ++l) {
    EXPECT_NE(ftl.Translate(l), kInvalidPage);
  }
}

TEST(Ftl, FragmentedStateScattersMapping) {
  SsdConfig c = TinyConfig();
  Ftl clean(c), frag(c);
  clean.PreconditionSequential();
  frag.PreconditionRandom(3.0);
  // Count physically-contiguous consecutive-LPN pairs.
  auto contiguity = [&](const Ftl& f) {
    int contiguous = 0;
    for (Lpn l = 1; l < c.logical_pages(); ++l) {
      if (f.Translate(l) == f.Translate(l - 1) + 1) ++contiguous;
    }
    return contiguous;
  };
  EXPECT_GT(contiguity(clean), contiguity(frag) * 2);
}

TEST(Ftl, WriteAmplificationUnderRandomOverwrite) {
  SsdConfig c;
  c.channels = 2;
  c.dies_per_channel = 2;
  c.pages_per_block = 64;
  c.logical_bytes = 16ull << 20;  // 4096 pages
  c.over_provisioning = 0.12;
  Ftl ftl(c);
  ftl.PreconditionRandom(3.0);
  // Now measure steady-state WA over another pass of random writes.
  Rng rng(99);
  uint32_t pages = c.logical_pages();
  for (uint64_t i = 0; i < 2ull * pages; ++i) {
    int die = ftl.NextWriteDie();
    if (!ftl.CanAllocate(die) || ftl.NeedsGc(die)) ftl.GcSynchronous(die);
    ftl.AllocateOnDie(static_cast<Lpn>(rng.NextBounded(pages)), die);
  }
  double wa = ftl.stats().WriteAmplification();
  // Greedy GC at 12% OP: WA should be substantial but bounded.
  EXPECT_GT(wa, 2.0);
  EXPECT_LT(wa, 10.0);
}

TEST(Ftl, SequentialOverwriteHasLowWriteAmplification) {
  SsdConfig c;
  c.channels = 2;
  c.dies_per_channel = 2;
  c.pages_per_block = 64;
  c.logical_bytes = 16ull << 20;
  c.over_provisioning = 0.12;
  Ftl ftl(c);
  ftl.PreconditionSequential();
  // Sequentially overwrite the space twice: invalidation aligns with
  // blocks, so GC victims are (nearly) empty.
  uint32_t pages = c.logical_pages();
  for (uint64_t i = 0; i < 2ull * pages; ++i) {
    Lpn lpn = static_cast<Lpn>(i % pages);
    int die = ftl.NextWriteDie();
    if (!ftl.CanAllocate(die) || ftl.NeedsGc(die)) ftl.GcSynchronous(die);
    ftl.AllocateOnDie(lpn, die);
  }
  EXPECT_LT(ftl.stats().WriteAmplification(), 1.3);
}

TEST(Ftl, WearLevellingBoundsEraseSkew) {
  SsdConfig c;
  c.channels = 1;
  c.dies_per_channel = 2;
  c.pages_per_block = 32;
  c.logical_bytes = 4ull << 20;
  c.over_provisioning = 0.25;
  Ftl ftl(c);
  ftl.PreconditionRandom(6.0);
  // Compare erase counts across blocks: dynamic wear levelling should keep
  // the spread moderate.
  uint32_t blocks = c.physical_blocks();
  uint32_t lo = UINT32_MAX, hi = 0;
  for (uint32_t b = 0; b < blocks; ++b) {
    lo = std::min(lo, ftl.EraseCount(b));
    hi = std::max(hi, ftl.EraseCount(b));
  }
  EXPECT_LE(hi - lo, hi / 2 + 8);
}

TEST(Ftl, StatsAccounting) {
  SsdConfig c = TinyConfig();
  Ftl ftl(c);
  ftl.AllocateOnDie(0, 0);
  ftl.BeginGcAllocation();
  ftl.AllocateOnDie(1, 0);
  ftl.EndGcAllocation();
  EXPECT_EQ(ftl.stats().host_pages_written, 1u);
  EXPECT_EQ(ftl.stats().gc_pages_relocated, 1u);
  EXPECT_NEAR(ftl.stats().WriteAmplification(), 2.0, 1e-9);
}

TEST(Ftl, NextWriteDieAdvancesPerProgramUnit) {
  SsdConfig c = TinyConfig();
  Ftl ftl(c);
  std::set<int> first_unit;
  for (uint32_t i = 0; i < c.program_unit_pages; ++i) {
    first_unit.insert(ftl.NextWriteDie());
  }
  EXPECT_EQ(first_unit.size(), 1u);  // whole unit on one die
  EXPECT_NE(*first_unit.begin(), ftl.NextWriteDie());  // then advances
}

}  // namespace
}  // namespace gimbal::ssd
