// Tests for the workload layer: fio worker behaviour, YCSB generators,
// MDTS splitting at the initiator, and the report utilities.
#include <gtest/gtest.h>

#include <map>

#include "baselines/fcfs_policy.h"
#include "ssd/null_device.h"
#include "workload/report.h"
#include "workload/runner.h"
#include "workload/ycsb.h"

namespace gimbal::workload {
namespace {

TEST(FioWorkerTest, MixedRatioApproximatelyHonoured) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kVanilla;
  cfg.use_null_device = true;
  Testbed bed(cfg);
  FioSpec spec;
  spec.read_ratio = 0.7;
  spec.io_bytes = 4096;
  spec.queue_depth = 16;
  spec.region_bytes = 1ull << 30;
  FioWorker& w = bed.AddWorker(spec);
  bed.Run(Milliseconds(20), Milliseconds(200));
  double total = static_cast<double>(w.stats().total_ios());
  ASSERT_GT(total, 1000);
  EXPECT_NEAR(static_cast<double>(w.stats().read_ios) / total, 0.7, 0.05);
}

TEST(FioWorkerTest, SequentialCursorWraps) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kVanilla;
  cfg.use_null_device = true;
  Testbed bed(cfg);
  FioSpec spec;
  spec.sequential = true;
  spec.io_bytes = 4096;
  spec.queue_depth = 4;
  spec.region_bytes = 64 * 1024;  // tiny region: must wrap, not overflow
  FioWorker& w = bed.AddWorker(spec);
  bed.Run(Milliseconds(10), Milliseconds(50));
  EXPECT_GT(w.stats().total_ios(), 16u);
}

TEST(FioWorkerTest, DistinctSeedsDistinctSequentialStarts) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kVanilla;
  cfg.use_null_device = true;
  Testbed bed(cfg);
  // Two sequential workers with different seeds must not write the same
  // offsets in lockstep (the interference benches rely on this).
  FioSpec a;
  a.sequential = true;
  a.io_bytes = 4096;
  a.queue_depth = 1;
  a.seed = 1;
  FioSpec b = a;
  b.seed = 2;
  bed.AddWorker(a);
  bed.AddWorker(b);
  bed.Run(Milliseconds(1), Milliseconds(10));
  // Cannot observe offsets directly through stats; this is a smoke test
  // that both made progress (behavioural check lives in the SSD WA tests).
  EXPECT_GT(bed.workers()[0]->stats().total_ios(), 0u);
  EXPECT_GT(bed.workers()[1]->stats().total_ios(), 0u);
}

TEST(FioWorkerTest, StopQuiesces) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kVanilla;
  cfg.use_null_device = true;
  Testbed bed(cfg);
  FioSpec spec;
  spec.io_bytes = 4096;
  spec.queue_depth = 8;
  spec.region_bytes = 1 << 20;
  FioWorker& w = bed.AddWorker(spec);
  w.Start();
  bed.sim().RunUntil(Milliseconds(10));
  w.Stop();
  uint64_t at_stop = w.stats().total_ios();
  bed.sim().RunUntil(Milliseconds(20));
  // Only the outstanding QD can complete after Stop.
  EXPECT_LE(w.stats().total_ios(), at_stop + spec.queue_depth);
  bed.sim().RunUntil(Milliseconds(40));
  EXPECT_TRUE(bed.sim().idle());
}

TEST(InitiatorSplit, LargeIoSplitsIntoMdtsChunks) {
  sim::Simulator sim;
  fabric::Network net(sim);
  fabric::Target target(sim, net);
  ssd::NullDevice dev(sim, 1ull << 30);
  target.AddPipeline(std::make_unique<baselines::FcfsPolicy>(sim, dev));
  fabric::Initiator init(sim, net, target, 0, 1);
  int completions = 0;
  uint32_t reported_length = 0;
  init.Submit(IoType::kRead, 0, 512 * 1024, IoPriority::kNormal,
              [&](const IoCompletion& cpl, Tick) {
                ++completions;
                reported_length = cpl.length;
              });
  sim.Run();
  EXPECT_EQ(completions, 1);               // one aggregated completion
  EXPECT_EQ(reported_length, 512u * 1024); // full length reported
  EXPECT_EQ(target.stats().ios, 4u);       // but 4 fabric commands
}

TEST(InitiatorSplit, UnalignedTailChunk) {
  sim::Simulator sim;
  fabric::Network net(sim);
  fabric::Target target(sim, net);
  ssd::NullDevice dev(sim, 1ull << 30);
  target.AddPipeline(std::make_unique<baselines::FcfsPolicy>(sim, dev));
  fabric::Initiator init(sim, net, target, 0, 1);
  int completions = 0;
  init.Submit(IoType::kWrite, 0, 128 * 1024 + 4096, IoPriority::kNormal,
              [&](const IoCompletion&, Tick) { ++completions; });
  sim.Run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(target.stats().ios, 2u);
  EXPECT_EQ(target.stats().bytes, 128u * 1024 + 4096);
}

TEST(Ycsb, WorkloadMixesMatchSpecs) {
  struct Expect {
    YcsbWorkload wl;
    double reads_lo, reads_hi;
  };
  for (auto [wl, lo, hi] : {Expect{YcsbWorkload::kA, 0.45, 0.55},
                            Expect{YcsbWorkload::kB, 0.92, 0.98},
                            Expect{YcsbWorkload::kC, 1.0, 1.0},
                            Expect{YcsbWorkload::kF, 0.45, 0.55}}) {
    YcsbSpec spec;
    spec.workload = wl;
    spec.record_count = 1000;
    YcsbGenerator gen(spec);
    int reads = 0, total = 20000;
    for (int i = 0; i < total; ++i) {
      if (gen.Next().op == YcsbOp::kRead) ++reads;
    }
    double frac = static_cast<double>(reads) / total;
    EXPECT_GE(frac, lo) << ToString(wl);
    EXPECT_LE(frac, hi) << ToString(wl);
  }
}

TEST(Ycsb, InsertsGrowKeyspace) {
  YcsbSpec spec;
  spec.workload = YcsbWorkload::kD;
  spec.record_count = 1000;
  YcsbGenerator gen(spec);
  uint64_t inserts = 0;
  for (int i = 0; i < 20000; ++i) {
    auto op = gen.Next();
    if (op.op == YcsbOp::kInsert) {
      ++inserts;
      EXPECT_EQ(op.key, gen.record_count() - 1);  // appended at the end
    }
    EXPECT_LT(op.key, gen.record_count());
  }
  EXPECT_GT(inserts, 500u);
  EXPECT_EQ(gen.record_count(), 1000 + inserts);
}

TEST(Ycsb, LatestDistributionFavoursRecentKeys) {
  YcsbSpec spec;
  spec.workload = YcsbWorkload::kD;
  spec.record_count = 10000;
  YcsbGenerator gen(spec);
  uint64_t recent = 0, reads = 0;
  for (int i = 0; i < 30000; ++i) {
    auto op = gen.Next();
    if (op.op != YcsbOp::kRead) continue;
    ++reads;
    if (op.key >= gen.record_count() - gen.record_count() / 10) ++recent;
  }
  // Far more than 10% of reads hit the most recent 10% of keys.
  EXPECT_GT(static_cast<double>(recent) / static_cast<double>(reads), 0.5);
}

TEST(Ycsb, ZipfianReadsSkewed) {
  YcsbSpec spec;
  spec.workload = YcsbWorkload::kC;
  spec.record_count = 10000;
  YcsbGenerator gen(spec);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[gen.Next().key];
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 500);  // hottest key way above uniform (5)
}

TEST(Report, TableFormatsNumbers) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::MBps(1048576.0), "1.0");
  EXPECT_EQ(Table::Us(1500.0), "1.5");
  EXPECT_EQ(Table::Kiops(2000.0), "2.0");
}

TEST(SchemeNames, AllDistinct) {
  std::set<std::string> names;
  for (Scheme s : {Scheme::kVanilla, Scheme::kReflex, Scheme::kParda,
                   Scheme::kFlashFq, Scheme::kGimbal}) {
    EXPECT_TRUE(names.insert(ToString(s)).second);
  }
}

}  // namespace
}  // namespace gimbal::workload
