file(REMOVE_RECURSE
  "libgimbal_baselines.a"
)
