
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/fcfs_policy.cc" "src/CMakeFiles/gimbal_baselines.dir/baselines/fcfs_policy.cc.o" "gcc" "src/CMakeFiles/gimbal_baselines.dir/baselines/fcfs_policy.cc.o.d"
  "/root/repo/src/baselines/flashfq_policy.cc" "src/CMakeFiles/gimbal_baselines.dir/baselines/flashfq_policy.cc.o" "gcc" "src/CMakeFiles/gimbal_baselines.dir/baselines/flashfq_policy.cc.o.d"
  "/root/repo/src/baselines/parda_policy.cc" "src/CMakeFiles/gimbal_baselines.dir/baselines/parda_policy.cc.o" "gcc" "src/CMakeFiles/gimbal_baselines.dir/baselines/parda_policy.cc.o.d"
  "/root/repo/src/baselines/reflex_policy.cc" "src/CMakeFiles/gimbal_baselines.dir/baselines/reflex_policy.cc.o" "gcc" "src/CMakeFiles/gimbal_baselines.dir/baselines/reflex_policy.cc.o.d"
  "/root/repo/src/baselines/timeslice_policy.cc" "src/CMakeFiles/gimbal_baselines.dir/baselines/timeslice_policy.cc.o" "gcc" "src/CMakeFiles/gimbal_baselines.dir/baselines/timeslice_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gimbal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gimbal_ssd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
