file(REMOVE_RECURSE
  "CMakeFiles/gimbal_baselines.dir/baselines/fcfs_policy.cc.o"
  "CMakeFiles/gimbal_baselines.dir/baselines/fcfs_policy.cc.o.d"
  "CMakeFiles/gimbal_baselines.dir/baselines/flashfq_policy.cc.o"
  "CMakeFiles/gimbal_baselines.dir/baselines/flashfq_policy.cc.o.d"
  "CMakeFiles/gimbal_baselines.dir/baselines/parda_policy.cc.o"
  "CMakeFiles/gimbal_baselines.dir/baselines/parda_policy.cc.o.d"
  "CMakeFiles/gimbal_baselines.dir/baselines/reflex_policy.cc.o"
  "CMakeFiles/gimbal_baselines.dir/baselines/reflex_policy.cc.o.d"
  "CMakeFiles/gimbal_baselines.dir/baselines/timeslice_policy.cc.o"
  "CMakeFiles/gimbal_baselines.dir/baselines/timeslice_policy.cc.o.d"
  "libgimbal_baselines.a"
  "libgimbal_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gimbal_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
