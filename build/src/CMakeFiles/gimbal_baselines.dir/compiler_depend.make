# Empty compiler generated dependencies file for gimbal_baselines.
# This may be replaced when dependencies are built.
