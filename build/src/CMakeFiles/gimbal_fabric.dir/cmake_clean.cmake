file(REMOVE_RECURSE
  "CMakeFiles/gimbal_fabric.dir/fabric/initiator.cc.o"
  "CMakeFiles/gimbal_fabric.dir/fabric/initiator.cc.o.d"
  "CMakeFiles/gimbal_fabric.dir/fabric/network.cc.o"
  "CMakeFiles/gimbal_fabric.dir/fabric/network.cc.o.d"
  "CMakeFiles/gimbal_fabric.dir/fabric/target.cc.o"
  "CMakeFiles/gimbal_fabric.dir/fabric/target.cc.o.d"
  "libgimbal_fabric.a"
  "libgimbal_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gimbal_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
