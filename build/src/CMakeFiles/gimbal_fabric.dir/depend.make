# Empty dependencies file for gimbal_fabric.
# This may be replaced when dependencies are built.
