file(REMOVE_RECURSE
  "libgimbal_fabric.a"
)
