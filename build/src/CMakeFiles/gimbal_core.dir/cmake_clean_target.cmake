file(REMOVE_RECURSE
  "libgimbal_core.a"
)
