# Empty dependencies file for gimbal_core.
# This may be replaced when dependencies are built.
