file(REMOVE_RECURSE
  "CMakeFiles/gimbal_core.dir/core/drr_scheduler.cc.o"
  "CMakeFiles/gimbal_core.dir/core/drr_scheduler.cc.o.d"
  "CMakeFiles/gimbal_core.dir/core/gimbal_switch.cc.o"
  "CMakeFiles/gimbal_core.dir/core/gimbal_switch.cc.o.d"
  "CMakeFiles/gimbal_core.dir/core/latency_monitor.cc.o"
  "CMakeFiles/gimbal_core.dir/core/latency_monitor.cc.o.d"
  "CMakeFiles/gimbal_core.dir/core/rate_controller.cc.o"
  "CMakeFiles/gimbal_core.dir/core/rate_controller.cc.o.d"
  "CMakeFiles/gimbal_core.dir/core/token_bucket.cc.o"
  "CMakeFiles/gimbal_core.dir/core/token_bucket.cc.o.d"
  "CMakeFiles/gimbal_core.dir/core/virtual_slot.cc.o"
  "CMakeFiles/gimbal_core.dir/core/virtual_slot.cc.o.d"
  "CMakeFiles/gimbal_core.dir/core/write_cost.cc.o"
  "CMakeFiles/gimbal_core.dir/core/write_cost.cc.o.d"
  "libgimbal_core.a"
  "libgimbal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gimbal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
