
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/drr_scheduler.cc" "src/CMakeFiles/gimbal_core.dir/core/drr_scheduler.cc.o" "gcc" "src/CMakeFiles/gimbal_core.dir/core/drr_scheduler.cc.o.d"
  "/root/repo/src/core/gimbal_switch.cc" "src/CMakeFiles/gimbal_core.dir/core/gimbal_switch.cc.o" "gcc" "src/CMakeFiles/gimbal_core.dir/core/gimbal_switch.cc.o.d"
  "/root/repo/src/core/latency_monitor.cc" "src/CMakeFiles/gimbal_core.dir/core/latency_monitor.cc.o" "gcc" "src/CMakeFiles/gimbal_core.dir/core/latency_monitor.cc.o.d"
  "/root/repo/src/core/rate_controller.cc" "src/CMakeFiles/gimbal_core.dir/core/rate_controller.cc.o" "gcc" "src/CMakeFiles/gimbal_core.dir/core/rate_controller.cc.o.d"
  "/root/repo/src/core/token_bucket.cc" "src/CMakeFiles/gimbal_core.dir/core/token_bucket.cc.o" "gcc" "src/CMakeFiles/gimbal_core.dir/core/token_bucket.cc.o.d"
  "/root/repo/src/core/virtual_slot.cc" "src/CMakeFiles/gimbal_core.dir/core/virtual_slot.cc.o" "gcc" "src/CMakeFiles/gimbal_core.dir/core/virtual_slot.cc.o.d"
  "/root/repo/src/core/write_cost.cc" "src/CMakeFiles/gimbal_core.dir/core/write_cost.cc.o" "gcc" "src/CMakeFiles/gimbal_core.dir/core/write_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gimbal_ssd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
