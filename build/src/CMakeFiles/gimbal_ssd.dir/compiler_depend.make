# Empty compiler generated dependencies file for gimbal_ssd.
# This may be replaced when dependencies are built.
