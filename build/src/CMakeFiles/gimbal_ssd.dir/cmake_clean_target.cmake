file(REMOVE_RECURSE
  "libgimbal_ssd.a"
)
