file(REMOVE_RECURSE
  "CMakeFiles/gimbal_ssd.dir/ssd/ftl.cc.o"
  "CMakeFiles/gimbal_ssd.dir/ssd/ftl.cc.o.d"
  "CMakeFiles/gimbal_ssd.dir/ssd/ssd.cc.o"
  "CMakeFiles/gimbal_ssd.dir/ssd/ssd.cc.o.d"
  "libgimbal_ssd.a"
  "libgimbal_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gimbal_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
