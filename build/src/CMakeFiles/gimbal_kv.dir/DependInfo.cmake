
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/blobstore.cc" "src/CMakeFiles/gimbal_kv.dir/kv/blobstore.cc.o" "gcc" "src/CMakeFiles/gimbal_kv.dir/kv/blobstore.cc.o.d"
  "/root/repo/src/kv/bloom.cc" "src/CMakeFiles/gimbal_kv.dir/kv/bloom.cc.o" "gcc" "src/CMakeFiles/gimbal_kv.dir/kv/bloom.cc.o.d"
  "/root/repo/src/kv/cluster.cc" "src/CMakeFiles/gimbal_kv.dir/kv/cluster.cc.o" "gcc" "src/CMakeFiles/gimbal_kv.dir/kv/cluster.cc.o.d"
  "/root/repo/src/kv/db.cc" "src/CMakeFiles/gimbal_kv.dir/kv/db.cc.o" "gcc" "src/CMakeFiles/gimbal_kv.dir/kv/db.cc.o.d"
  "/root/repo/src/kv/hba.cc" "src/CMakeFiles/gimbal_kv.dir/kv/hba.cc.o" "gcc" "src/CMakeFiles/gimbal_kv.dir/kv/hba.cc.o.d"
  "/root/repo/src/kv/sstable.cc" "src/CMakeFiles/gimbal_kv.dir/kv/sstable.cc.o" "gcc" "src/CMakeFiles/gimbal_kv.dir/kv/sstable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gimbal_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gimbal_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gimbal_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gimbal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gimbal_ssd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
