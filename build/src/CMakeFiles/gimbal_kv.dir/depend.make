# Empty dependencies file for gimbal_kv.
# This may be replaced when dependencies are built.
