file(REMOVE_RECURSE
  "libgimbal_kv.a"
)
