file(REMOVE_RECURSE
  "CMakeFiles/gimbal_kv.dir/kv/blobstore.cc.o"
  "CMakeFiles/gimbal_kv.dir/kv/blobstore.cc.o.d"
  "CMakeFiles/gimbal_kv.dir/kv/bloom.cc.o"
  "CMakeFiles/gimbal_kv.dir/kv/bloom.cc.o.d"
  "CMakeFiles/gimbal_kv.dir/kv/cluster.cc.o"
  "CMakeFiles/gimbal_kv.dir/kv/cluster.cc.o.d"
  "CMakeFiles/gimbal_kv.dir/kv/db.cc.o"
  "CMakeFiles/gimbal_kv.dir/kv/db.cc.o.d"
  "CMakeFiles/gimbal_kv.dir/kv/hba.cc.o"
  "CMakeFiles/gimbal_kv.dir/kv/hba.cc.o.d"
  "CMakeFiles/gimbal_kv.dir/kv/sstable.cc.o"
  "CMakeFiles/gimbal_kv.dir/kv/sstable.cc.o.d"
  "libgimbal_kv.a"
  "libgimbal_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gimbal_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
