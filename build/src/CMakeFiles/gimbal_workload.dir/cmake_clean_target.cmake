file(REMOVE_RECURSE
  "libgimbal_workload.a"
)
