file(REMOVE_RECURSE
  "CMakeFiles/gimbal_workload.dir/workload/fio.cc.o"
  "CMakeFiles/gimbal_workload.dir/workload/fio.cc.o.d"
  "CMakeFiles/gimbal_workload.dir/workload/openloop.cc.o"
  "CMakeFiles/gimbal_workload.dir/workload/openloop.cc.o.d"
  "CMakeFiles/gimbal_workload.dir/workload/report.cc.o"
  "CMakeFiles/gimbal_workload.dir/workload/report.cc.o.d"
  "CMakeFiles/gimbal_workload.dir/workload/runner.cc.o"
  "CMakeFiles/gimbal_workload.dir/workload/runner.cc.o.d"
  "CMakeFiles/gimbal_workload.dir/workload/trace.cc.o"
  "CMakeFiles/gimbal_workload.dir/workload/trace.cc.o.d"
  "CMakeFiles/gimbal_workload.dir/workload/ycsb.cc.o"
  "CMakeFiles/gimbal_workload.dir/workload/ycsb.cc.o.d"
  "libgimbal_workload.a"
  "libgimbal_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gimbal_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
