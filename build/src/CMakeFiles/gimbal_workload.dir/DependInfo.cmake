
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/fio.cc" "src/CMakeFiles/gimbal_workload.dir/workload/fio.cc.o" "gcc" "src/CMakeFiles/gimbal_workload.dir/workload/fio.cc.o.d"
  "/root/repo/src/workload/openloop.cc" "src/CMakeFiles/gimbal_workload.dir/workload/openloop.cc.o" "gcc" "src/CMakeFiles/gimbal_workload.dir/workload/openloop.cc.o.d"
  "/root/repo/src/workload/report.cc" "src/CMakeFiles/gimbal_workload.dir/workload/report.cc.o" "gcc" "src/CMakeFiles/gimbal_workload.dir/workload/report.cc.o.d"
  "/root/repo/src/workload/runner.cc" "src/CMakeFiles/gimbal_workload.dir/workload/runner.cc.o" "gcc" "src/CMakeFiles/gimbal_workload.dir/workload/runner.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/gimbal_workload.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/gimbal_workload.dir/workload/trace.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/gimbal_workload.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/gimbal_workload.dir/workload/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gimbal_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gimbal_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gimbal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gimbal_ssd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
