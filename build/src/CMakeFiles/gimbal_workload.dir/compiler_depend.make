# Empty compiler generated dependencies file for gimbal_workload.
# This may be replaced when dependencies are built.
