# Empty dependencies file for gimbal_tests.
# This may be replaced when dependencies are built.
