
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/gimbal_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/gimbal_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/disconnect_test.cc" "tests/CMakeFiles/gimbal_tests.dir/disconnect_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/disconnect_test.cc.o.d"
  "/root/repo/tests/e2e_test.cc" "tests/CMakeFiles/gimbal_tests.dir/e2e_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/e2e_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/gimbal_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/fabric_test.cc" "tests/CMakeFiles/gimbal_tests.dir/fabric_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/fabric_test.cc.o.d"
  "/root/repo/tests/ftl_test.cc" "tests/CMakeFiles/gimbal_tests.dir/ftl_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/ftl_test.cc.o.d"
  "/root/repo/tests/kv_db_test.cc" "tests/CMakeFiles/gimbal_tests.dir/kv_db_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/kv_db_test.cc.o.d"
  "/root/repo/tests/kv_test.cc" "tests/CMakeFiles/gimbal_tests.dir/kv_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/kv_test.cc.o.d"
  "/root/repo/tests/prio_resource_test.cc" "tests/CMakeFiles/gimbal_tests.dir/prio_resource_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/prio_resource_test.cc.o.d"
  "/root/repo/tests/property_sweep_test.cc" "tests/CMakeFiles/gimbal_tests.dir/property_sweep_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/property_sweep_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/gimbal_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/ssd_test.cc" "tests/CMakeFiles/gimbal_tests.dir/ssd_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/ssd_test.cc.o.d"
  "/root/repo/tests/switch_test.cc" "tests/CMakeFiles/gimbal_tests.dir/switch_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/switch_test.cc.o.d"
  "/root/repo/tests/target_test.cc" "tests/CMakeFiles/gimbal_tests.dir/target_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/target_test.cc.o.d"
  "/root/repo/tests/trace_openloop_test.cc" "tests/CMakeFiles/gimbal_tests.dir/trace_openloop_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/trace_openloop_test.cc.o.d"
  "/root/repo/tests/trim_test.cc" "tests/CMakeFiles/gimbal_tests.dir/trim_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/trim_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/gimbal_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/gimbal_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gimbal_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gimbal_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gimbal_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gimbal_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gimbal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gimbal_ssd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
