file(REMOVE_RECURSE
  "CMakeFiles/priority_tagging.dir/priority_tagging.cpp.o"
  "CMakeFiles/priority_tagging.dir/priority_tagging.cpp.o.d"
  "priority_tagging"
  "priority_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
