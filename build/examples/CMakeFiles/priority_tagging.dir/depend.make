# Empty dependencies file for priority_tagging.
# This may be replaced when dependencies are built.
