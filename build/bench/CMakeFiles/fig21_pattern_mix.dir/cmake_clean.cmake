file(REMOVE_RECURSE
  "CMakeFiles/fig21_pattern_mix.dir/fig21_pattern_mix.cpp.o"
  "CMakeFiles/fig21_pattern_mix.dir/fig21_pattern_mix.cpp.o.d"
  "fig21_pattern_mix"
  "fig21_pattern_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_pattern_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
