# Empty compiler generated dependencies file for fig21_pattern_mix.
# This may be replaced when dependencies are built.
