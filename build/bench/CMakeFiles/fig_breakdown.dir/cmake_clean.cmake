file(REMOVE_RECURSE
  "CMakeFiles/fig_breakdown.dir/fig_breakdown.cpp.o"
  "CMakeFiles/fig_breakdown.dir/fig_breakdown.cpp.o.d"
  "fig_breakdown"
  "fig_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
