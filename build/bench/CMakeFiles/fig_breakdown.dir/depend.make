# Empty dependencies file for fig_breakdown.
# This may be replaced when dependencies are built.
