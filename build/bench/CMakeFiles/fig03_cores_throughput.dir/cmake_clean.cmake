file(REMOVE_RECURSE
  "CMakeFiles/fig03_cores_throughput.dir/fig03_cores_throughput.cpp.o"
  "CMakeFiles/fig03_cores_throughput.dir/fig03_cores_throughput.cpp.o.d"
  "fig03_cores_throughput"
  "fig03_cores_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_cores_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
