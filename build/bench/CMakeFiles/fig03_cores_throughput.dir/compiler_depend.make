# Empty compiler generated dependencies file for fig03_cores_throughput.
# This may be replaced when dependencies are built.
