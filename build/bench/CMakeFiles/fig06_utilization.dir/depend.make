# Empty dependencies file for fig06_utilization.
# This may be replaced when dependencies are built.
