file(REMOVE_RECURSE
  "CMakeFiles/fig06_utilization.dir/fig06_utilization.cpp.o"
  "CMakeFiles/fig06_utilization.dir/fig06_utilization.cpp.o.d"
  "fig06_utilization"
  "fig06_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
