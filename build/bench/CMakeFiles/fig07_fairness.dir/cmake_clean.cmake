file(REMOVE_RECURSE
  "CMakeFiles/fig07_fairness.dir/fig07_fairness.cpp.o"
  "CMakeFiles/fig07_fairness.dir/fig07_fairness.cpp.o.d"
  "fig07_fairness"
  "fig07_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
