# Empty compiler generated dependencies file for fig07_fairness.
# This may be replaced when dependencies are built.
