file(REMOVE_RECURSE
  "CMakeFiles/fig18_threshold.dir/fig18_threshold.cpp.o"
  "CMakeFiles/fig18_threshold.dir/fig18_threshold.cpp.o.d"
  "fig18_threshold"
  "fig18_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
