# Empty compiler generated dependencies file for fig18_threshold.
# This may be replaced when dependencies are built.
