file(REMOVE_RECURSE
  "CMakeFiles/fig22_23_latency_mix.dir/fig22_23_latency_mix.cpp.o"
  "CMakeFiles/fig22_23_latency_mix.dir/fig22_23_latency_mix.cpp.o.d"
  "fig22_23_latency_mix"
  "fig22_23_latency_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_23_latency_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
