# Empty dependencies file for fig22_23_latency_mix.
# This may be replaced when dependencies are built.
