file(REMOVE_RECURSE
  "CMakeFiles/fig09_dynamic.dir/fig09_dynamic.cpp.o"
  "CMakeFiles/fig09_dynamic.dir/fig09_dynamic.cpp.o.d"
  "fig09_dynamic"
  "fig09_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
