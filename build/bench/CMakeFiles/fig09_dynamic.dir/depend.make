# Empty dependencies file for fig09_dynamic.
# This may be replaced when dependencies are built.
