file(REMOVE_RECURSE
  "CMakeFiles/fig20_size_mix.dir/fig20_size_mix.cpp.o"
  "CMakeFiles/fig20_size_mix.dir/fig20_size_mix.cpp.o.d"
  "fig20_size_mix"
  "fig20_size_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_size_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
