# Empty dependencies file for fig20_size_mix.
# This may be replaced when dependencies are built.
