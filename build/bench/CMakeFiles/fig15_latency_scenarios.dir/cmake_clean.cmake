file(REMOVE_RECURSE
  "CMakeFiles/fig15_latency_scenarios.dir/fig15_latency_scenarios.cpp.o"
  "CMakeFiles/fig15_latency_scenarios.dir/fig15_latency_scenarios.cpp.o.d"
  "fig15_latency_scenarios"
  "fig15_latency_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_latency_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
