# Empty compiler generated dependencies file for fig15_latency_scenarios.
# This may be replaced when dependencies are built.
