file(REMOVE_RECURSE
  "CMakeFiles/fig16_perio_cost.dir/fig16_perio_cost.cpp.o"
  "CMakeFiles/fig16_perio_cost.dir/fig16_perio_cost.cpp.o.d"
  "fig16_perio_cost"
  "fig16_perio_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_perio_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
