# Empty dependencies file for fig16_perio_cost.
# This may be replaced when dependencies are built.
