# Empty compiler generated dependencies file for ablation_timeslice.
# This may be replaced when dependencies are built.
