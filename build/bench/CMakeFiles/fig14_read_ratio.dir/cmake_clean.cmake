file(REMOVE_RECURSE
  "CMakeFiles/fig14_read_ratio.dir/fig14_read_ratio.cpp.o"
  "CMakeFiles/fig14_read_ratio.dir/fig14_read_ratio.cpp.o.d"
  "fig14_read_ratio"
  "fig14_read_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_read_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
