# Empty compiler generated dependencies file for fig_generalization.
# This may be replaced when dependencies are built.
