file(REMOVE_RECURSE
  "CMakeFiles/fig_generalization.dir/fig_generalization.cpp.o"
  "CMakeFiles/fig_generalization.dir/fig_generalization.cpp.o.d"
  "fig_generalization"
  "fig_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
