file(REMOVE_RECURSE
  "CMakeFiles/fig13_virtual_view.dir/fig13_virtual_view.cpp.o"
  "CMakeFiles/fig13_virtual_view.dir/fig13_virtual_view.cpp.o.d"
  "fig13_virtual_view"
  "fig13_virtual_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_virtual_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
