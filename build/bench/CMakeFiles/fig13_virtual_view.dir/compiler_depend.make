# Empty compiler generated dependencies file for fig13_virtual_view.
# This may be replaced when dependencies are built.
