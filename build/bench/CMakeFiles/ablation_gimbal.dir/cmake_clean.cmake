file(REMOVE_RECURSE
  "CMakeFiles/ablation_gimbal.dir/ablation_gimbal.cpp.o"
  "CMakeFiles/ablation_gimbal.dir/ablation_gimbal.cpp.o.d"
  "ablation_gimbal"
  "ablation_gimbal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gimbal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
