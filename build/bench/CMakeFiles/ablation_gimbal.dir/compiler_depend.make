# Empty compiler generated dependencies file for ablation_gimbal.
# This may be replaced when dependencies are built.
