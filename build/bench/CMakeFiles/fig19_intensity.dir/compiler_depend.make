# Empty compiler generated dependencies file for fig19_intensity.
# This may be replaced when dependencies are built.
