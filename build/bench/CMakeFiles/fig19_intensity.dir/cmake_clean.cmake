file(REMOVE_RECURSE
  "CMakeFiles/fig19_intensity.dir/fig19_intensity.cpp.o"
  "CMakeFiles/fig19_intensity.dir/fig19_intensity.cpp.o.d"
  "fig19_intensity"
  "fig19_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
