file(REMOVE_RECURSE
  "CMakeFiles/fig10_ycsb.dir/fig10_ycsb.cpp.o"
  "CMakeFiles/fig10_ycsb.dir/fig10_ycsb.cpp.o.d"
  "fig10_ycsb"
  "fig10_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
