# Empty compiler generated dependencies file for fig17_congestion.
# This may be replaced when dependencies are built.
