file(REMOVE_RECURSE
  "CMakeFiles/fig17_congestion.dir/fig17_congestion.cpp.o"
  "CMakeFiles/fig17_congestion.dir/fig17_congestion.cpp.o.d"
  "fig17_congestion"
  "fig17_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
