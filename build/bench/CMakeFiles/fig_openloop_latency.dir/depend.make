# Empty dependencies file for fig_openloop_latency.
# This may be replaced when dependencies are built.
