file(REMOVE_RECURSE
  "CMakeFiles/fig_openloop_latency.dir/fig_openloop_latency.cpp.o"
  "CMakeFiles/fig_openloop_latency.dir/fig_openloop_latency.cpp.o.d"
  "fig_openloop_latency"
  "fig_openloop_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_openloop_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
