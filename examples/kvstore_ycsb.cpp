// KV-store demo: four RocksDB-like instances sharing two Gimbal-managed
// SSDs, running different YCSB mixes concurrently — the §4.3 case study
// end to end (hierarchical blob allocation, WAL group commit, flushes,
// compactions, replication, credit rate limiting, read load balancing).
//
//   $ ./examples/kvstore_ycsb
#include <cstdio>

#include "kv/cluster.h"

using namespace gimbal;
using namespace gimbal::kv;

int main() {
  KvClusterConfig cfg;
  cfg.testbed.scheme = workload::Scheme::kGimbal;
  cfg.testbed.num_ssds = 2;
  cfg.testbed.condition = workload::SsdCondition::kFragmented;
  cfg.testbed.ssd.logical_bytes = 128ull << 20;
  cfg.hba.backend_bytes = 128ull << 20;
  KvCluster cluster(cfg);

  const workload::YcsbWorkload mixes[] = {
      workload::YcsbWorkload::kA, workload::YcsbWorkload::kB,
      workload::YcsbWorkload::kC, workload::YcsbWorkload::kF};

  std::vector<std::unique_ptr<YcsbClient>> clients;
  for (int i = 0; i < 4; ++i) {
    auto& inst = cluster.AddInstance();
    inst.db->BulkLoad(20'000, 1024);
    workload::YcsbSpec spec;
    spec.workload = mixes[i];
    spec.record_count = 20'000;
    spec.seed = static_cast<uint64_t>(i) + 1;
    clients.push_back(
        std::make_unique<YcsbClient>(cluster.sim(), *inst.db, spec, 8));
    clients.back()->Start();
  }

  cluster.sim().RunUntil(Seconds(2));

  std::printf("%-8s %10s %10s %10s %12s %12s\n", "mix", "ops", "kops/s",
              "rd_avg_us", "rd_p999_us", "not_found");
  for (int i = 0; i < 4; ++i) {
    auto& st = clients[static_cast<size_t>(i)]->stats();
    std::printf("%-8s %10llu %10.1f %10.1f %12.1f %12llu\n",
                ToString(mixes[i]),
                static_cast<unsigned long long>(st.ops),
                static_cast<double>(st.ops) / 2.0 / 1000.0,
                st.read_latency.mean() / 1000.0,
                static_cast<double>(st.read_latency.p999()) / 1000.0,
                static_cast<unsigned long long>(st.not_found));
  }

  std::printf("\nper-instance storage engine activity:\n");
  for (int i = 0; i < 4; ++i) {
    auto& inst = *cluster.instances()[static_cast<size_t>(i)];
    const auto& db = inst.db->stats();
    const auto& bs = inst.blobs->stats();
    std::printf(
        "  %-8s flushes=%llu compactions=%llu wal_writes=%llu "
        "block_reads=%llu lb_to_shadow=%llu\n",
        ToString(mixes[i]), static_cast<unsigned long long>(db.flushes),
        static_cast<unsigned long long>(db.compactions),
        static_cast<unsigned long long>(db.wal_writes),
        static_cast<unsigned long long>(db.data_block_reads),
        static_cast<unsigned long long>(bs.balanced_to_shadow));
  }
  return 0;
}
