// Quickstart: build a one-SSD disaggregated storage node with the Gimbal
// storage switch, attach two tenants, push traffic and read the per-SSD
// virtual view.
//
//   $ ./examples/quickstart
//
// This walks the public API at its lowest useful level — simulator,
// network, target, switch, initiators — without the Testbed convenience
// wrapper, so it doubles as a tour of the library's layers.
#include <cstdio>

#include "core/gimbal_switch.h"
#include "fabric/initiator.h"
#include "fabric/network.h"
#include "fabric/target.h"
#include "obs/obs.h"
#include "sim/simulator.h"
#include "ssd/ssd.h"

using namespace gimbal;

int main() {
  // 1. A deterministic discrete-event simulator owns all timing.
  sim::Simulator sim;

  // Optional: a metrics registry + event tracer every layer below reports
  // into (docs/OBSERVABILITY.md catalogues what). The bench binaries wire
  // this up from --metrics-out=/--trace-out=; here we attach one by hand.
  obs::Observability obs;
  obs.tracer.Enable();

  // 2. The SmartNIC JBOF: 100 Gbps fabric, ARM-class target cores, one
  //    NVMe SSD (page-mapped FTL + NAND timing model), preconditioned
  //    clean.
  fabric::Network net(sim);
  fabric::Target target(sim, net, fabric::TargetConfig::SmartNicLike());
  target.AttachObservability(&obs);
  ssd::Ssd ssd_dev(sim, ssd::SsdConfig::SamsungDct983Like());
  ssd_dev.AttachObservability(&obs, /*ssd_index=*/0);
  ssd_dev.PreconditionClean();

  // 3. The Gimbal storage switch orchestrates the SSD's pipeline:
  //    delay-based congestion control, dual token bucket, write-cost
  //    estimation, virtual-slot DRR, credit flow control.
  auto gimbal_switch = std::make_unique<core::GimbalSwitch>(sim, ssd_dev);
  core::GimbalSwitch* sw = gimbal_switch.get();
  int pipeline = target.AddPipeline(std::move(gimbal_switch));

  // 4. Two tenants connect through credit-throttled initiators.
  fabric::Initiator reader(sim, net, target, pipeline, /*tenant=*/1,
                           fabric::ThrottleMode::kCredit);
  fabric::Initiator writer(sim, net, target, pipeline, /*tenant=*/2,
                           fabric::ThrottleMode::kCredit);

  // 5. Closed loops: tenant 1 reads 4 KiB randomly, tenant 2 writes.
  uint64_t read_bytes = 0, write_bytes = 0;
  uint64_t lfsr = 0xACE1u;
  std::function<void()> issue_read = [&]() {
    lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xB400u);
    reader.Submit(IoType::kRead, (lfsr % 100000) * 4096, 4096,
                  IoPriority::kHigh,
                  [&](const IoCompletion& cpl, Tick) {
                    read_bytes += cpl.length;
                    issue_read();
                  });
  };
  std::function<void()> issue_write = [&]() {
    lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xB400u);
    writer.Submit(IoType::kWrite, (lfsr % 100000) * 4096, 4096,
                  IoPriority::kNormal,
                  [&](const IoCompletion& cpl, Tick) {
                    write_bytes += cpl.length;
                    issue_write();
                  });
  };
  for (int i = 0; i < 16; ++i) issue_read();
  for (int i = 0; i < 16; ++i) issue_write();

  // 6. Run one simulated second and inspect the virtual view (§3.7).
  sim.RunUntil(Seconds(1));
  core::VirtualView v1 = sw->View(1);
  core::VirtualView v2 = sw->View(2);
  std::printf("after 1s simulated:\n");
  std::printf("  tenant1 (reads) : %6.1f MB/s, credits=%u\n",
              BytesToMiB(read_bytes), v1.credits);
  std::printf("  tenant2 (writes): %6.1f MB/s, credits=%u\n",
              BytesToMiB(write_bytes), v2.credits);
  std::printf("  switch: state=%s target_rate=%.1f MB/s write_cost=%.2f\n",
              ToString(v1.state),
              sw->rate_controller().target_rate() / (1024.0 * 1024.0),
              sw->write_cost().cost());
  std::printf("  device: WA=%.2f gc_runs=%llu\n",
              ssd_dev.ftl().stats().WriteAmplification(),
              static_cast<unsigned long long>(ssd_dev.counters().gc_runs));

  // 7. Everything above was also recorded by the observability layer:
  //    dump the metrics snapshot and a chrome://tracing-loadable trace.
  std::printf("  obs: %zu metric series, %zu trace events\n",
              obs.metrics.size(), obs.tracer.size());
  obs.metrics.WriteFile("quickstart_metrics.json");
  obs.tracer.WriteFile("quickstart_trace.json");
  std::printf("  wrote quickstart_metrics.json and quickstart_trace.json "
              "(load the trace in chrome://tracing)\n");
  return 0;
}
