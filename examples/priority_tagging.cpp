// Priority tagging demo (§3.5 per-tenant priority queues + §3.7 virtual
// view): one tenant mixes latency-sensitive point reads (tagged high)
// with bulk background reads (tagged low) on a busy Gimbal SSD, then the
// same mix with every request tagged normal. Tags cut the sensitive
// stream's tail without touching aggregate throughput.
//
//   $ ./examples/priority_tagging
#include <cstdio>

#include "workload/runner.h"

using namespace gimbal;
using namespace gimbal::workload;

namespace {

struct Result {
  double sensitive_p99_us;
  double sensitive_mbps;
  double bulk_mbps;
};

Result Run(bool tag_priorities) {
  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.ssd.logical_bytes = 512ull << 20;
  Testbed bed(cfg);

  // The tenant under study: sparse latency-sensitive 4K reads...
  FioSpec sensitive;
  sensitive.io_bytes = 4096;
  sensitive.queue_depth = 2;
  sensitive.rate_cap_bps = 20.0 * 1024 * 1024;
  sensitive.priority = tag_priorities ? IoPriority::kHigh
                                      : IoPriority::kNormal;
  sensitive.seed = 1;
  // ...plus its own bulk scan traffic on the same tenant connection.
  FioSpec bulk;
  bulk.io_bytes = 128 * 1024;
  bulk.sequential = true;
  bulk.queue_depth = 16;
  bulk.priority = tag_priorities ? IoPriority::kLow : IoPriority::kNormal;
  bulk.seed = 2;

  fabric::Initiator& tenant = bed.AddInitiator(0);
  FioWorker ws(bed.sim(), tenant, [&] {
    FioSpec s = sensitive;
    s.region_bytes = bed.device(0).capacity_bytes();
    return s;
  }());
  FioWorker wb(bed.sim(), tenant, [&] {
    FioSpec s = bulk;
    s.region_bytes = bed.device(0).capacity_bytes();
    return s;
  }());
  // Two competing tenants keep the SSD busy.
  for (int i = 0; i < 2; ++i) {
    FioSpec other;
    other.io_bytes = 128 * 1024;
    other.queue_depth = 8;
    other.seed = 10 + static_cast<uint64_t>(i);
    bed.AddWorker(other);
  }

  ws.Start();
  wb.Start();
  for (auto& w : bed.workers()) w->Start();
  bed.sim().RunUntil(Milliseconds(300));
  ws.stats().Reset();
  wb.stats().Reset();
  Tick window = Milliseconds(700);
  bed.sim().RunUntil(bed.sim().now() + window);

  return {static_cast<double>(ws.stats().read_latency.p99()) / 1000.0,
          BytesToMiB(ws.stats().total_bytes()) / ToSec(window),
          BytesToMiB(wb.stats().total_bytes()) / ToSec(window)};
}

}  // namespace

int main() {
  std::printf(
      "One tenant mixes 20 MB/s of latency-sensitive 4K reads with a bulk\n"
      "128K scan, sharing a Gimbal SSD with two other tenants.\n\n");
  Result untagged = Run(false);
  Result tagged = Run(true);
  std::printf("%-22s %14s %16s %12s\n", "config", "sens_p99_us",
              "sens_MBps", "bulk_MBps");
  std::printf("%-22s %14.1f %16.1f %12.1f\n", "all normal priority",
              untagged.sensitive_p99_us, untagged.sensitive_mbps,
              untagged.bulk_mbps);
  std::printf("%-22s %14.1f %16.1f %12.1f\n", "tagged high/low",
              tagged.sensitive_p99_us, tagged.sensitive_mbps,
              tagged.bulk_mbps);
  std::printf(
      "\nTagging lets the client prioritize latency-sensitive requests over\n"
      "its own throughput-oriented traffic (§3.5), without a separate\n"
      "connection or any server-side configuration.\n");
  return 0;
}
