// Dynamic adaptation demo: watch Gimbal's write-cost estimator and
// congestion states react live as a write burst arrives on top of steady
// reads, then departs (§3.4 / Fig 9 behaviour, condensed).
//
//   $ ./examples/dynamic_workload
#include <cstdio>

#include "core/gimbal_switch.h"
#include "workload/runner.h"

using namespace gimbal;
using namespace gimbal::workload;

int main() {
  std::printf(
      "Gimbal live adaptation: steady 4K readers; a heavy write burst "
      "arrives at t=2s and stops at t=5s.\n\n");

  TestbedConfig cfg;
  cfg.scheme = Scheme::kGimbal;
  cfg.condition = SsdCondition::kFragmented;
  cfg.ssd.logical_bytes = 512ull << 20;
  Testbed bed(cfg);

  for (int i = 0; i < 4; ++i) {
    FioSpec rd;
    rd.io_bytes = 4096;
    rd.queue_depth = 16;
    rd.seed = static_cast<uint64_t>(i) + 1;
    bed.AddWorker(rd);
  }
  for (int i = 0; i < 4; ++i) {
    FioSpec wr;
    wr.io_bytes = 4096;
    wr.read_ratio = 0.0;
    wr.queue_depth = 32;
    wr.seed = static_cast<uint64_t>(i) + 101;
    bed.AddWorker(wr);
  }

  auto& sim = bed.sim();
  for (int i = 0; i < 4; ++i) bed.workers()[static_cast<size_t>(i)]->Start();
  sim.At(Seconds(2), [&bed]() {
    for (int i = 4; i < 8; ++i) bed.workers()[static_cast<size_t>(i)]->Start();
    std::printf(">>> write burst ON\n");
  });
  sim.At(Seconds(5), [&bed]() {
    for (int i = 4; i < 8; ++i) bed.workers()[static_cast<size_t>(i)]->Stop();
    std::printf(">>> write burst OFF\n");
  });

  core::GimbalSwitch* sw = bed.gimbal_switch(0);
  std::printf("%6s %12s %12s %10s %12s %-20s\n", "t(s)", "rd_ewma_us",
              "wr_ewma_us", "wr_cost", "rate_MBps", "state");
  std::vector<uint64_t> last(bed.workers().size(), 0);
  for (Tick now = 0; now < Seconds(8); now += Milliseconds(500)) {
    sim.RunUntil(now + Milliseconds(500));
    const auto& rc = sw->rate_controller();
    core::VirtualView v = sw->View(1);
    std::printf("%6.1f %12.1f %12.1f %10.2f %12.1f %-20s\n",
                ToSec(now + Milliseconds(500)),
                rc.monitor(IoType::kRead).ewma_latency() / 1000.0,
                rc.monitor(IoType::kWrite).ewma_latency() / 1000.0,
                sw->write_cost().cost(),
                rc.target_rate() / (1024.0 * 1024.0), ToString(v.state));
  }
  std::printf(
      "\nExpected: write cost decays toward 1 while the buffer absorbs the "
      "burst, then climbs toward the worst case (9) as write latency rises. "
      "After the burst stops it holds the last estimate (no write "
      "completions = no new evidence; with nothing to pace, the stale cost "
      "is harmless and re-calibrates on the next write).\n");
  return 0;
}
