// Multi-tenant fairness demo: the paper's motivating scenario (a small-IO
// tenant squeezed by a large-IO tenant and a writer), run under every
// scheme via the Testbed harness. Shows why f-Util is the right lens.
//
//   $ ./examples/multi_tenant_fairness
#include <cstdio>

#include "workload/report.h"
#include "workload/runner.h"

using namespace gimbal;
using namespace gimbal::workload;

int main() {
  PrintHeader("Example: three unequal tenants on one fragmented SSD",
              "motivating scenario of Gimbal §1/§2.3",
              "only Gimbal keeps all three tenants near their fair share");

  Table t("Per-tenant bandwidth (MB/s) and f-Util");
  t.Columns({"scheme", "4K_reader", "128K_reader", "4K_writer", "fUtil_4Kr",
             "fUtil_128Kr", "fUtil_4Kw"});

  FioSpec small_rd;
  small_rd.io_bytes = 4096;
  small_rd.queue_depth = 32;
  small_rd.seed = 1;
  FioSpec big_rd;
  big_rd.io_bytes = 128 * 1024;
  big_rd.queue_depth = 8;
  big_rd.seed = 2;
  FioSpec small_wr;
  small_wr.io_bytes = 4096;
  small_wr.read_ratio = 0.0;
  small_wr.queue_depth = 32;
  small_wr.seed = 3;

  for (Scheme s : {Scheme::kVanilla, Scheme::kReflex, Scheme::kParda,
                   Scheme::kFlashFq, Scheme::kGimbal}) {
    TestbedConfig cfg;
    cfg.scheme = s;
    cfg.condition = SsdCondition::kFragmented;
    cfg.ssd.logical_bytes = 512ull << 20;

    double s1 = StandaloneBandwidth(cfg, small_rd);
    double s2 = StandaloneBandwidth(cfg, big_rd);
    double s3 = StandaloneBandwidth(cfg, small_wr);

    Testbed bed(cfg);
    FioWorker& w1 = bed.AddWorker(small_rd);
    FioWorker& w2 = bed.AddWorker(big_rd);
    FioWorker& w3 = bed.AddWorker(small_wr);
    bed.Run(Milliseconds(400), Seconds(1));

    double b1 = RateBps(w1.stats().total_bytes(), bed.measured());
    double b2 = RateBps(w2.stats().total_bytes(), bed.measured());
    double b3 = RateBps(w3.stats().total_bytes(), bed.measured());
    t.Row({ToString(s), Table::MBps(b1), Table::MBps(b2), Table::MBps(b3),
           Table::Num(FUtil(b1, s1, 3), 2), Table::Num(FUtil(b2, s2, 3), 2),
           Table::Num(FUtil(b3, s3, 3), 2)});
  }
  t.Print();
  std::printf(
      "\nf-Util ~ 1.0 means the tenant gets exactly its fair share of what "
      "it could do alone.\n");
  return 0;
}
