// Per-SSD health state machine (see docs/FAULTS.md).
//
// Tracks what the fault layer knows about one device:
//
//   healthy ──stall/media burst──▶ degraded ──window ends──▶ healthy
//      │                              │
//      └────────── fail ──────────────┴──▶ failed ──recover──▶ recovering
//                                                                  │
//                              probation elapses ──────────────────┘──▶ healthy
//
// The GimbalSwitch consults the current state so a failed SSD drains and
// fails queued IOs fast instead of letting them rot behind a dead device,
// and so recovery resets the congestion-control EWMAs (the post-failure
// device bears no relation to the pre-failure latency profile).
#pragma once

#include "check/invariants.h"
#include "common/time.h"
#include "core/params.h"  // GIMBAL_MUT
#include "obs/obs.h"
#include "obs/schema.h"
#include "sim/simulator.h"

namespace gimbal::fault {

enum class SsdHealth : uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kFailed = 2,
  kRecovering = 3,
};

constexpr const char* ToString(SsdHealth h) {
  switch (h) {
    case SsdHealth::kHealthy: return "healthy";
    case SsdHealth::kDegraded: return "degraded";
    case SsdHealth::kFailed: return "failed";
    case SsdHealth::kRecovering: return "recovering";
  }
  return "?";
}

// Returns true if `from -> to` is a legal transition of the state machine
// above (self-transitions are legal no-ops).
constexpr bool ValidTransition(SsdHealth from, SsdHealth to) {
  if (from == to) return true;
  switch (from) {
    case SsdHealth::kHealthy:
      return to == SsdHealth::kDegraded || to == SsdHealth::kFailed;
    case SsdHealth::kDegraded:
      return to == SsdHealth::kHealthy || to == SsdHealth::kFailed;
    case SsdHealth::kFailed:
      return to == SsdHealth::kRecovering;
    case SsdHealth::kRecovering:
      return to == SsdHealth::kHealthy || to == SsdHealth::kFailed;
  }
  return false;
}

// One SSD's health, with observability and transition validation. Invalid
// transitions are ignored (e.g. a stall window ending after the device
// already failed must not resurrect it).
class SsdHealthMachine {
 public:
  SsdHealth health() const { return health_; }

  // Attempt the transition; returns true if the state actually changed.
  bool Set(SsdHealth to, Tick now) {
    if (to == health_) return false;
    if (!GIMBAL_MUT(kHealthSkip) && !ValidTransition(health_, to)) {
      return false;
    }
    const SsdHealth from = health_;
    health_ = to;
    if (chk_) {
      chk_->OnHealthTransition(ssd_index_, static_cast<int>(from),
                               static_cast<int>(to));
    }
    if (obs_) {
      m_health_->Set(static_cast<double>(static_cast<int>(to)));
      obs_->tracer.Instant(now, obs::schema::kEvFaultHealth,
                           obs::Labels::Ssd(ssd_index_),
                           {{"from", static_cast<double>(static_cast<int>(from))},
                            {"to", static_cast<double>(static_cast<int>(to))}});
    }
    return true;
  }

  void AttachObservability(obs::Observability* obs, int ssd_index) {
    obs_ = obs;
    ssd_index_ = ssd_index;
    m_health_ = nullptr;
    if (!obs_) return;
    m_health_ = &obs_->metrics.GetGauge(obs::schema::kSsdHealth,
                                        obs::Labels::Ssd(ssd_index_));
    m_health_->Set(static_cast<double>(static_cast<int>(health_)));
  }

  // Invariant hook: every applied transition is re-validated against the
  // checker's independent legality table (docs/TESTING.md).
  void AttachChecker(check::InvariantChecker* chk, int ssd_index) {
    chk_ = chk;
    ssd_index_ = ssd_index;
  }

 private:
  SsdHealth health_ = SsdHealth::kHealthy;
  obs::Observability* obs_ = nullptr;
  check::InvariantChecker* chk_ = nullptr;
  int ssd_index_ = -1;
  obs::Gauge* m_health_ = nullptr;
};

}  // namespace gimbal::fault
