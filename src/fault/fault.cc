#include "fault/fault.h"

#include <algorithm>
#include <cassert>

namespace gimbal::fault {

namespace {
// Per-SSD stream seeds: golden-ratio stride off the injector seed (Rng
// SplitMixes whatever it is given, so nearby seeds still decorrelate). The
// link stream uses the plain seed, which no SSD stream can collide with.
uint64_t SsdSeed(uint64_t seed, int ssd) {
  return seed + 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(ssd + 1);
}
}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, int num_ssds, uint64_t seed)
    : sim_(sim), seed_(seed), link_rng_(seed),
      ssds_(static_cast<size_t>(num_ssds)) {
  for (int i = 0; i < num_ssds; ++i) {
    ssds_[i].rng = Rng(SsdSeed(seed_, i));
    ssds_[i].sim = &sim_;
  }
}

void FaultInjector::ConfigureShards(
    const std::vector<sim::Simulator*>& ssd_sims,
    const std::vector<obs::Observability*>& ssd_obs) {
  assert(static_cast<int>(ssd_sims.size()) == num_ssds());
  assert(static_cast<int>(ssd_obs.size()) == num_ssds());
  assert(scheduled_.empty() && "ConfigureShards must precede Schedule");
  for (int i = 0; i < num_ssds(); ++i) {
    ssds_[i].sim = ssd_sims[i] ? ssd_sims[i] : &sim_;
    ssds_[i].obs = ssd_obs[i];
  }
}

void FaultInjector::AttachObservability(obs::Observability* obs) {
  obs_ = obs;
  m_link_dropped_ = nullptr;
  m_link_delayed_ = nullptr;
  namespace schema = obs::schema;
  for (int i = 0; i < num_ssds(); ++i) {
    SsdState& s = ssds_[i];
    obs::Observability* o = s.obs ? s.obs : obs_;
    s.machine.AttachObservability(o, i);
    s.m_media_errors = nullptr;
    s.m_device_failed = nullptr;
    s.m_stalled = nullptr;
    if (o) {
      s.m_media_errors = &o->metrics.GetCounter(schema::kFaultMediaErrors);
      s.m_device_failed = &o->metrics.GetCounter(schema::kFaultDeviceFailedIos);
      s.m_stalled = &o->metrics.GetCounter(schema::kFaultStalledIos);
    }
  }
  if (!obs_) return;
  obs::MetricsRegistry& reg = obs_->metrics;
  m_link_dropped_ = &reg.GetCounter(schema::kFaultLinkDropped);
  m_link_delayed_ = &reg.GetCounter(schema::kFaultLinkDelayed);
}

void FaultInjector::Inject(const char* kind, int ssd, double arg) {
  obs::Observability* o;
  Tick now;
  if (ssd >= 0) {
    const SsdState& s = ssds_[ssd];
    o = s.obs ? s.obs : obs_;
    now = s.sim->now();
  } else {
    o = obs_;
    now = sim_.now();
  }
  if (!o) return;
  o->tracer.Instant(now, obs::schema::kEvFaultInject,
                    ssd >= 0 ? obs::Labels::Ssd(ssd) : obs::Labels{},
                    {{kind, arg}});
}

bool FaultInjector::Degrading(int ssd, Tick now) const {
  for (const MediaErrorBurst& o : plan_.media_errors) {
    if (o.ssd == ssd && InWindow(now, o.start, o.end)) return true;
  }
  for (const StallWindow& o : plan_.stalls) {
    if (o.ssd == ssd && InWindow(now, o.start, o.end)) return true;
  }
  return false;
}

bool FaultInjector::SetHealth(int ssd, SsdHealth to) {
  SsdState& s = ssds_[ssd];
  if (!s.machine.Set(to, s.sim->now())) return false;
  for (auto& fn : s.observers) fn(to);
  return true;
}

void FaultInjector::Schedule(const FaultPlan& plan) {
  plan_ = plan;
  // Whole-node failures expand into one SsdFailure per SSD on the node,
  // all at the node's fail/recover ticks — the scheduling loop below then
  // treats them exactly like planned per-SSD failures, so every SSD on
  // the node fails (and heals) atomically on its own shard. The rack
  // fabric's message blackout is scheduled separately by the testbed
  // (Network::AddNodeOutage). A node-level trace event marks each edge on
  // the injector's (client) simulator.
  for (const NodeFailure& nf : plan_.node_failures) {
    for (int s = 0; s < num_ssds(); ++s) {
      if (NodeOf(s) == nf.node) {
        plan_.failures.push_back(SsdFailure{s, nf.fail_at, nf.recover_at});
      }
    }
    scheduled_.push_back(sim_.At(nf.fail_at, [this, nf]() {
      Inject("node_fail", -1, static_cast<double>(nf.node));
    }));
    if (nf.recover_at > 0) {
      scheduled_.push_back(sim_.At(nf.recover_at, [this, nf]() {
        Inject("node_recover", -1, static_cast<double>(nf.node));
      }));
    }
  }
  // Per-SSD window edges run on the SSD's simulator: the health observers
  // they fire (the pipeline policies) live on that shard.
  for (const StallWindow& w : plan_.stalls) {
    assert(w.ssd >= 0 && w.ssd < num_ssds());
    sim::Simulator& ssim = *ssds_[w.ssd].sim;
    scheduled_.push_back(ssim.At(w.start, [this, w]() {
      Inject("stall_ns", w.ssd, static_cast<double>(w.extra_latency));
      SetHealth(w.ssd, SsdHealth::kDegraded);
    }));
    scheduled_.push_back(ssim.At(w.end, [this, w]() {
      // Only un-degrade if no other degrading window is still active and
      // the device has not failed meanwhile (Set validates transitions).
      if (!Degrading(w.ssd, ssds_[w.ssd].sim->now()) &&
          (GIMBAL_MUT(kHealthSkip) ||
           health(w.ssd) == SsdHealth::kDegraded)) {
        SetHealth(w.ssd, SsdHealth::kHealthy);
      }
    }));
  }
  for (const MediaErrorBurst& b : plan_.media_errors) {
    assert(b.ssd >= 0 && b.ssd < num_ssds());
    sim::Simulator& ssim = *ssds_[b.ssd].sim;
    scheduled_.push_back(ssim.At(b.start, [this, b]() {
      Inject("media_error_p", b.ssd, b.probability);
      SetHealth(b.ssd, SsdHealth::kDegraded);
    }));
    scheduled_.push_back(ssim.At(b.end, [this, b]() {
      if (!Degrading(b.ssd, ssds_[b.ssd].sim->now()) &&
          (GIMBAL_MUT(kHealthSkip) ||
           health(b.ssd) == SsdHealth::kDegraded)) {
        SetHealth(b.ssd, SsdHealth::kHealthy);
      }
    }));
  }
  for (const SsdFailure& f : plan_.failures) {
    assert(f.ssd >= 0 && f.ssd < num_ssds());
    sim::Simulator& ssim = *ssds_[f.ssd].sim;
    scheduled_.push_back(ssim.At(f.fail_at, [this, f]() {
      Inject("fail", f.ssd, 1.0);
      // A failure during probation kills the pending heal; the re-failed
      // device must wait for its own recovery, not inherit the old one's.
      ssds_[f.ssd].probation.Cancel();
      SetHealth(f.ssd, SsdHealth::kFailed);
    }));
    if (f.recover_at > 0) {
      assert(f.recover_at > f.fail_at);
      scheduled_.push_back(ssim.At(f.recover_at, [this, f]() {
        Inject("recover", f.ssd, 1.0);
        if (!SetHealth(f.ssd, SsdHealth::kRecovering)) return;
        ssds_[f.ssd].probation =
            ssds_[f.ssd].sim->After(plan_.recovery_probation, [this, f]() {
              SetHealth(f.ssd, SsdHealth::kHealthy);
            });
      }));
    }
  }
  for (const LinkFlap& l : plan_.link_flaps) {
    scheduled_.push_back(sim_.At(l.start, [this, l]() {
      Inject("link_flap_p", -1, l.drop_probability);
    }));
  }
}

void FaultInjector::ScheduleTenantCrash(Tick at, TenantId tenant,
                                        std::function<void()> crash_fn) {
  scheduled_.push_back(
      sim_.At(at, [this, tenant, crash_fn = std::move(crash_fn)]() {
        ++crashes_;
        if (obs_) {
          obs_->tracer.Instant(
              sim_.now(), obs::schema::kEvTenantCrash,
              obs::Labels::TenantSsd(static_cast<int32_t>(tenant), -1));
        }
        crash_fn();
      }));
}

void FaultInjector::CancelScheduled() {
  for (sim::TimerHandle& h : scheduled_) h.Cancel();
  scheduled_.clear();
  for (SsdState& s : ssds_) s.probation.Cancel();
}

size_t FaultInjector::pending_scheduled() const {
  size_t n = 0;
  for (const sim::TimerHandle& h : scheduled_) n += h.active() ? 1 : 0;
  for (const SsdState& s : ssds_) n += s.probation.active() ? 1 : 0;
  return n;
}

FaultInjector::IoFault FaultInjector::OnDeviceSubmit(int ssd, IoType /*type*/,
                                                     Tick now) {
  IoFault out;
  SsdState& s = ssds_[ssd];
  if (s.machine.health() == SsdHealth::kFailed) {
    out.force_status = IoStatus::kDeviceFailed;
    out.fault_latency = Microseconds(5);  // fail-fast controller response
    ++s.device_failed_ios;
    if (s.m_device_failed) s.m_device_failed->Add(1);
    return out;
  }
  // Transient media errors: use the strongest active burst. The SSD's
  // private RNG is drawn only while a burst is active, keeping the stream
  // deterministic.
  double p = 0;
  Tick err_latency = 0;
  for (const MediaErrorBurst& b : plan_.media_errors) {
    if (b.ssd == ssd && InWindow(now, b.start, b.end) && b.probability > p) {
      p = b.probability;
      err_latency = b.error_latency;
    }
  }
  if (p > 0 && s.rng.NextDouble() < p) {
    out.force_status = IoStatus::kMediaError;
    out.fault_latency = err_latency;
    ++s.media_errors;
    if (s.m_media_errors) s.m_media_errors->Add(1);
    return out;
  }
  for (const StallWindow& w : plan_.stalls) {
    if (w.ssd == ssd && InWindow(now, w.start, w.end)) {
      out.extra_latency = std::max(out.extra_latency, w.extra_latency);
    }
  }
  if (out.extra_latency > 0) {
    ++s.stalled_ios;
    if (s.m_stalled) s.m_stalled->Add(1);
  }
  return out;
}

FaultInjector::LinkFault FaultInjector::OnLinkMessage(Tick now) {
  LinkFault out;
  double p = 0;
  for (const LinkFlap& l : plan_.link_flaps) {
    if (!InWindow(now, l.start, l.end)) continue;
    p = std::max(p, l.drop_probability);
    out.extra_delay = std::max(out.extra_delay, l.extra_delay);
  }
  if (p > 0 && link_rng_.NextDouble() < p) {
    out.drop = true;
    out.extra_delay = 0;
    ++link_dropped_;
    if (m_link_dropped_) m_link_dropped_->Add(1);
    return out;
  }
  if (out.extra_delay > 0) {
    ++link_delayed_;
    if (m_link_delayed_) m_link_delayed_->Add(1);
  }
  return out;
}

FaultInjector::FaultCounters FaultInjector::counters() const {
  FaultCounters total;
  for (const SsdState& s : ssds_) {
    total.media_errors += s.media_errors;
    total.device_failed_ios += s.device_failed_ios;
    total.stalled_ios += s.stalled_ios;
  }
  total.link_dropped = link_dropped_;
  total.link_delayed = link_delayed_;
  total.crashes = crashes_;
  return total;
}

}  // namespace gimbal::fault
