#include "fault/fault.h"

#include <algorithm>
#include <cassert>

namespace gimbal::fault {

FaultInjector::FaultInjector(sim::Simulator& sim, int num_ssds, uint64_t seed)
    : sim_(sim), rng_(seed), ssds_(static_cast<size_t>(num_ssds)) {}

void FaultInjector::AttachObservability(obs::Observability* obs) {
  obs_ = obs;
  m_media_errors_ = nullptr;
  m_device_failed_ = nullptr;
  m_stalled_ = nullptr;
  m_link_dropped_ = nullptr;
  m_link_delayed_ = nullptr;
  for (int i = 0; i < num_ssds(); ++i) {
    ssds_[i].machine.AttachObservability(obs, i);
  }
  if (!obs_) return;
  namespace schema = obs::schema;
  obs::MetricsRegistry& reg = obs_->metrics;
  m_media_errors_ = &reg.GetCounter(schema::kFaultMediaErrors);
  m_device_failed_ = &reg.GetCounter(schema::kFaultDeviceFailedIos);
  m_stalled_ = &reg.GetCounter(schema::kFaultStalledIos);
  m_link_dropped_ = &reg.GetCounter(schema::kFaultLinkDropped);
  m_link_delayed_ = &reg.GetCounter(schema::kFaultLinkDelayed);
}

void FaultInjector::Inject(const char* kind, int ssd, double arg) {
  if (!obs_) return;
  obs_->tracer.Instant(sim_.now(), obs::schema::kEvFaultInject,
                       ssd >= 0 ? obs::Labels::Ssd(ssd) : obs::Labels{},
                       {{kind, arg}});
}

bool FaultInjector::Degrading(int ssd, Tick now) const {
  for (const MediaErrorBurst& o : plan_.media_errors) {
    if (o.ssd == ssd && InWindow(now, o.start, o.end)) return true;
  }
  for (const StallWindow& o : plan_.stalls) {
    if (o.ssd == ssd && InWindow(now, o.start, o.end)) return true;
  }
  return false;
}

bool FaultInjector::SetHealth(int ssd, SsdHealth to) {
  SsdState& s = ssds_[ssd];
  if (!s.machine.Set(to, sim_.now())) return false;
  for (auto& fn : s.observers) fn(to);
  return true;
}

void FaultInjector::Schedule(const FaultPlan& plan) {
  plan_ = plan;
  for (const StallWindow& w : plan_.stalls) {
    assert(w.ssd >= 0 && w.ssd < num_ssds());
    scheduled_.push_back(sim_.At(w.start, [this, w]() {
      Inject("stall_ns", w.ssd, static_cast<double>(w.extra_latency));
      SetHealth(w.ssd, SsdHealth::kDegraded);
    }));
    scheduled_.push_back(sim_.At(w.end, [this, w]() {
      // Only un-degrade if no other degrading window is still active and
      // the device has not failed meanwhile (Set validates transitions).
      if (!Degrading(w.ssd, sim_.now()) &&
          (GIMBAL_MUT(kHealthSkip) ||
           health(w.ssd) == SsdHealth::kDegraded)) {
        SetHealth(w.ssd, SsdHealth::kHealthy);
      }
    }));
  }
  for (const MediaErrorBurst& b : plan_.media_errors) {
    assert(b.ssd >= 0 && b.ssd < num_ssds());
    scheduled_.push_back(sim_.At(b.start, [this, b]() {
      Inject("media_error_p", b.ssd, b.probability);
      SetHealth(b.ssd, SsdHealth::kDegraded);
    }));
    scheduled_.push_back(sim_.At(b.end, [this, b]() {
      if (!Degrading(b.ssd, sim_.now()) &&
          (GIMBAL_MUT(kHealthSkip) ||
           health(b.ssd) == SsdHealth::kDegraded)) {
        SetHealth(b.ssd, SsdHealth::kHealthy);
      }
    }));
  }
  for (const SsdFailure& f : plan_.failures) {
    assert(f.ssd >= 0 && f.ssd < num_ssds());
    scheduled_.push_back(sim_.At(f.fail_at, [this, f]() {
      Inject("fail", f.ssd, 1.0);
      // A failure during probation kills the pending heal; the re-failed
      // device must wait for its own recovery, not inherit the old one's.
      ssds_[f.ssd].probation.Cancel();
      SetHealth(f.ssd, SsdHealth::kFailed);
    }));
    if (f.recover_at > 0) {
      assert(f.recover_at > f.fail_at);
      scheduled_.push_back(sim_.At(f.recover_at, [this, f]() {
        Inject("recover", f.ssd, 1.0);
        if (!SetHealth(f.ssd, SsdHealth::kRecovering)) return;
        ssds_[f.ssd].probation =
            sim_.After(plan_.recovery_probation, [this, f]() {
              SetHealth(f.ssd, SsdHealth::kHealthy);
            });
      }));
    }
  }
  for (const LinkFlap& l : plan_.link_flaps) {
    scheduled_.push_back(sim_.At(l.start, [this, l]() {
      Inject("link_flap_p", -1, l.drop_probability);
    }));
  }
}

void FaultInjector::ScheduleTenantCrash(Tick at, TenantId tenant,
                                        std::function<void()> crash_fn) {
  scheduled_.push_back(
      sim_.At(at, [this, tenant, crash_fn = std::move(crash_fn)]() {
        ++counters_.crashes;
        if (obs_) {
          obs_->tracer.Instant(
              sim_.now(), obs::schema::kEvTenantCrash,
              obs::Labels::TenantSsd(static_cast<int32_t>(tenant), -1));
        }
        crash_fn();
      }));
}

void FaultInjector::CancelScheduled() {
  for (sim::TimerHandle& h : scheduled_) h.Cancel();
  scheduled_.clear();
  for (SsdState& s : ssds_) s.probation.Cancel();
}

size_t FaultInjector::pending_scheduled() const {
  size_t n = 0;
  for (const sim::TimerHandle& h : scheduled_) n += h.active() ? 1 : 0;
  for (const SsdState& s : ssds_) n += s.probation.active() ? 1 : 0;
  return n;
}

FaultInjector::IoFault FaultInjector::OnDeviceSubmit(int ssd, IoType /*type*/,
                                                     Tick now) {
  IoFault out;
  SsdState& s = ssds_[ssd];
  if (s.machine.health() == SsdHealth::kFailed) {
    out.force_status = IoStatus::kDeviceFailed;
    out.fault_latency = Microseconds(5);  // fail-fast controller response
    ++counters_.device_failed_ios;
    if (m_device_failed_) m_device_failed_->Add(1);
    return out;
  }
  // Transient media errors: use the strongest active burst. The RNG is
  // drawn only while a burst is active, keeping the stream deterministic.
  double p = 0;
  Tick err_latency = 0;
  for (const MediaErrorBurst& b : plan_.media_errors) {
    if (b.ssd == ssd && InWindow(now, b.start, b.end) && b.probability > p) {
      p = b.probability;
      err_latency = b.error_latency;
    }
  }
  if (p > 0 && rng_.NextDouble() < p) {
    out.force_status = IoStatus::kMediaError;
    out.fault_latency = err_latency;
    ++counters_.media_errors;
    if (m_media_errors_) m_media_errors_->Add(1);
    return out;
  }
  for (const StallWindow& w : plan_.stalls) {
    if (w.ssd == ssd && InWindow(now, w.start, w.end)) {
      out.extra_latency = std::max(out.extra_latency, w.extra_latency);
    }
  }
  if (out.extra_latency > 0) {
    ++counters_.stalled_ios;
    if (m_stalled_) m_stalled_->Add(1);
  }
  return out;
}

FaultInjector::LinkFault FaultInjector::OnLinkMessage(Tick now) {
  LinkFault out;
  double p = 0;
  for (const LinkFlap& l : plan_.link_flaps) {
    if (!InWindow(now, l.start, l.end)) continue;
    p = std::max(p, l.drop_probability);
    out.extra_delay = std::max(out.extra_delay, l.extra_delay);
  }
  if (p > 0 && rng_.NextDouble() < p) {
    out.drop = true;
    out.extra_delay = 0;
    ++counters_.link_dropped;
    if (m_link_dropped_) m_link_dropped_->Add(1);
    return out;
  }
  if (out.extra_delay > 0) {
    ++counters_.link_delayed;
    if (m_link_delayed_) m_link_delayed_->Add(1);
  }
  return out;
}

}  // namespace gimbal::fault
