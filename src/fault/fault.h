// Seeded, deterministic fault injection for the disaggregated testbed
// (docs/FAULTS.md).
//
// A FaultPlan declares *when* faults happen on the simulated clock; the
// FaultInjector schedules them on the event queue and answers data-path
// queries from the components that must observe them:
//
//   * FaultyDevice (fault/faulty_device.h) asks OnDeviceSubmit before each
//     command — transient media errors, latency stalls and the failed
//     state are decided there,
//   * Network asks OnLinkMessage per fabric message — link flaps delay or
//     drop capsules,
//   * the GimbalSwitch subscribes to per-SSD health transitions so a
//     failing SSD drains fast and recovery resets the congestion EWMAs,
//   * tenant crashes run an arbitrary callback (the testbed points it at
//     Initiator::Crash) at the planned time.
//
// Determinism: all probabilistic decisions come from one xoshiro RNG
// seeded at construction, and random draws happen only inside active fault
// windows, so the same seed and the same query sequence yield the same
// fault schedule — replayable bug reports, sweepable properties.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "fault/health.h"
#include "nvme/types.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace gimbal::fault {

// (a) Transient per-IO media errors: while active, each command on `ssd`
// fails with `probability` (status=media_error after `error_latency` — the
// drive burned its internal retries before giving up).
struct MediaErrorBurst {
  int ssd = 0;
  Tick start = 0;
  Tick end = 0;
  double probability = 0.01;
  Tick error_latency = Microseconds(500);
};

// (b) SSD latency stall (pathological GC spike): while active, every
// command on `ssd` completes `extra_latency` later than the device model
// says. Marks the SSD degraded for the duration.
struct StallWindow {
  int ssd = 0;
  Tick start = 0;
  Tick end = 0;
  Tick extra_latency = Milliseconds(2);
};

// (c) Full SSD failure: at `fail_at` the device goes dark — inflight and
// new IOs fail with status=device_failed. At `recover_at` (0 = never) it
// enters recovering and returns to healthy after `FaultPlan::
// recovery_probation`.
struct SsdFailure {
  int ssd = 0;
  Tick fail_at = 0;
  Tick recover_at = 0;
};

// (d) Fabric link flap: while active, every message on the shared link is
// dropped with `drop_probability`, and survivors are delayed by
// `extra_delay`. Dropped command/completion capsules surface as initiator
// timeouts.
struct LinkFlap {
  Tick start = 0;
  Tick end = 0;
  double drop_probability = 0.0;
  Tick extra_delay = 0;
};

struct FaultPlan {
  std::vector<MediaErrorBurst> media_errors;
  std::vector<StallWindow> stalls;
  std::vector<SsdFailure> failures;
  std::vector<LinkFlap> link_flaps;
  // recovering -> healthy delay after a failure's recover_at.
  Tick recovery_probation = Milliseconds(10);

  bool empty() const {
    return media_errors.empty() && stalls.empty() && failures.empty() &&
           link_flaps.empty();
  }
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, int num_ssds, uint64_t seed = 1);

  // Schedule every fault in `plan` on the event queue. Call once, before
  // the experiment runs past the earliest fault time. Every scheduled
  // window edge holds a TimerHandle, so a plan can be torn down again.
  void Schedule(const FaultPlan& plan);

  // Cancels every still-pending scheduled fault event (window edges,
  // probation heals). Active windows keep affecting the data path until
  // their stored end time — this only stops future *transitions* — so call
  // it when tearing a testbed down, not to end a fault early.
  void CancelScheduled();

  // Scheduled fault events still pending on the queue (tests).
  size_t pending_scheduled() const;

  // (e) Abrupt tenant crash: runs `crash_fn` (typically Initiator::Crash —
  // no disconnect capsule; the target's keepalive reaper cleans up) at
  // `at`, with a fault.inject trace event.
  void ScheduleTenantCrash(Tick at, TenantId tenant,
                           std::function<void()> crash_fn);

  // --- Data-path queries -----------------------------------------------------

  // Decision for one device command on `ssd`.
  struct IoFault {
    IoStatus force_status = IoStatus::kOk;  // non-ok: do not reach the device
    Tick fault_latency = 0;   // completion latency when force_status != ok
    Tick extra_latency = 0;   // stall add-on when force_status == ok
  };
  IoFault OnDeviceSubmit(int ssd, IoType type, Tick now);

  // Decision for one fabric message.
  struct LinkFault {
    bool drop = false;
    Tick extra_delay = 0;
  };
  LinkFault OnLinkMessage(Tick now);

  // --- Health ----------------------------------------------------------------
  SsdHealth health(int ssd) const { return ssds_[ssd].machine.health(); }
  int num_ssds() const { return static_cast<int>(ssds_.size()); }

  // Observe health transitions of `ssd` (the testbed subscribes each
  // pipeline's policy). Fired after the state changed.
  void Subscribe(int ssd, std::function<void(SsdHealth)> fn) {
    ssds_[ssd].observers.push_back(std::move(fn));
  }

  void AttachObservability(obs::Observability* obs);

  // Attach the invariant checker to every SSD's health machine: each
  // applied transition is re-validated independently (docs/TESTING.md).
  void AttachChecker(check::InvariantChecker* chk) {
    for (int i = 0; i < num_ssds(); ++i) {
      ssds_[i].machine.AttachChecker(chk, i);
    }
  }

  struct FaultCounters {
    uint64_t media_errors = 0;
    uint64_t device_failed_ios = 0;
    uint64_t stalled_ios = 0;
    uint64_t link_dropped = 0;
    uint64_t link_delayed = 0;
    uint64_t crashes = 0;
  };
  const FaultCounters& counters() const { return counters_; }

 private:
  struct SsdState {
    SsdHealthMachine machine;
    std::vector<std::function<void(SsdHealth)>> observers;
    // The recovering->healthy heal armed by a failure's recover_at;
    // cancelled if the device fails again during probation (the state
    // machine would reject the heal anyway — cancelling keeps the event
    // queue free of dead timers).
    sim::TimerHandle probation;
  };

  // Window membership is evaluated at query time against the stored plan
  // (plans are a handful of entries; a linear scan is cheaper than keeping
  // overlap counts consistent). Scheduled events handle only the health
  // transitions and trace emission.
  static bool InWindow(Tick now, Tick start, Tick end) {
    return now >= start && now < end;
  }

  // True while any stall/media-error window is active on `ssd`.
  bool Degrading(int ssd, Tick now) const;
  // Attempts the transition; returns true if the state changed (observers
  // fired).
  bool SetHealth(int ssd, SsdHealth to);
  void Inject(const char* kind, int ssd, double arg);

  sim::Simulator& sim_;
  Rng rng_;
  std::vector<SsdState> ssds_;
  FaultPlan plan_;
  FaultCounters counters_;
  // Handles on every scheduled window edge (starts, ends, failures,
  // recoveries, crashes); fired handles are inert and pruned lazily.
  std::vector<sim::TimerHandle> scheduled_;

  obs::Observability* obs_ = nullptr;

  // Metric handles (null = not observed).
  obs::Counter* m_media_errors_ = nullptr;
  obs::Counter* m_device_failed_ = nullptr;
  obs::Counter* m_stalled_ = nullptr;
  obs::Counter* m_link_dropped_ = nullptr;
  obs::Counter* m_link_delayed_ = nullptr;
};

}  // namespace gimbal::fault
