// Seeded, deterministic fault injection for the disaggregated testbed
// (docs/FAULTS.md).
//
// A FaultPlan declares *when* faults happen on the simulated clock; the
// FaultInjector schedules them on the event queue and answers data-path
// queries from the components that must observe them:
//
//   * FaultyDevice (fault/faulty_device.h) asks OnDeviceSubmit before each
//     command — transient media errors, latency stalls and the failed
//     state are decided there,
//   * Network asks OnLinkMessage per fabric message — link flaps delay or
//     drop capsules,
//   * the GimbalSwitch subscribes to per-SSD health transitions so a
//     failing SSD drains fast and recovery resets the congestion EWMAs,
//   * tenant crashes run an arbitrary callback (the testbed points it at
//     Initiator::Crash) at the planned time.
//
// Determinism: device-path decisions for SSD i come from a per-SSD RNG
// stream (SplitMix-derived from the injector seed and i), and link-path
// decisions from a separate link stream; draws happen only inside active
// fault windows. Per-SSD streams make the fault schedule independent of
// how IOs from different SSDs interleave — which is what lets the sharded
// engine (docs/SIMULATOR.md) run each SSD's pipeline on its own shard and
// still produce the exact serial fault sequence: the link stream is only
// ever drawn from the barrier replay, in canonical message order.
//
// Under sharding, ConfigureShards() pins each SSD's window-edge timers,
// health machine and trace events to that SSD's shard (health observers —
// the policies — live there); link-flap edges and tenant crashes stay on
// the client shard. All per-SSD mutable state (RNG, counters, metric
// handles) is then single-writer.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "fault/health.h"
#include "nvme/types.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace gimbal::fault {

// (a) Transient per-IO media errors: while active, each command on `ssd`
// fails with `probability` (status=media_error after `error_latency` — the
// drive burned its internal retries before giving up).
struct MediaErrorBurst {
  int ssd = 0;
  Tick start = 0;
  Tick end = 0;
  double probability = 0.01;
  Tick error_latency = Microseconds(500);
};

// (b) SSD latency stall (pathological GC spike): while active, every
// command on `ssd` completes `extra_latency` later than the device model
// says. Marks the SSD degraded for the duration.
struct StallWindow {
  int ssd = 0;
  Tick start = 0;
  Tick end = 0;
  Tick extra_latency = Milliseconds(2);
};

// (c) Full SSD failure: at `fail_at` the device goes dark — inflight and
// new IOs fail with status=device_failed. At `recover_at` (0 = never) it
// enters recovering and returns to healthy after `FaultPlan::
// recovery_probation`.
struct SsdFailure {
  int ssd = 0;
  Tick fail_at = 0;
  Tick recover_at = 0;
};

// (d) Fabric link flap: while active, every message on the shared link is
// dropped with `drop_probability`, and survivors are delayed by
// `extra_delay`. Dropped command/completion capsules surface as initiator
// timeouts.
struct LinkFlap {
  Tick start = 0;
  Tick end = 0;
  double drop_probability = 0.0;
  Tick extra_delay = 0;
};

// (f) Whole-node failure (docs/FAULTS.md, rack topology): at `fail_at`
// every SSD on `node` fails atomically (same tick, same semantics as an
// SsdFailure on each) and the rack fabric drops every message to or from
// the node; at `recover_at` (0 = never) the SSDs enter recovering and the
// fabric forwards again. Requires a testbed with nodes configured
// (ConfigureNodes) — on a single-node bed node 0 means "every SSD".
struct NodeFailure {
  int node = 0;
  Tick fail_at = 0;
  Tick recover_at = 0;
};

struct FaultPlan {
  std::vector<MediaErrorBurst> media_errors;
  std::vector<StallWindow> stalls;
  std::vector<SsdFailure> failures;
  std::vector<LinkFlap> link_flaps;
  std::vector<NodeFailure> node_failures;
  // recovering -> healthy delay after a failure's recover_at.
  Tick recovery_probation = Milliseconds(10);

  bool empty() const {
    return media_errors.empty() && stalls.empty() && failures.empty() &&
           link_flaps.empty() && node_failures.empty();
  }
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, int num_ssds, uint64_t seed = 1);

  // Sharded mode: SSD i's window-edge timers, probation heals and trace
  // events run on `ssd_sims[i]` and record into `ssd_obs[i]` (entries may
  // be null to inherit the injector-wide observability). Call before
  // Schedule() and before AttachObservability(). Sizes must equal
  // num_ssds.
  void ConfigureShards(const std::vector<sim::Simulator*>& ssd_sims,
                       const std::vector<obs::Observability*>& ssd_obs);

  // Rack topology: `node_of[ssd]` maps each SSD to its node, so a
  // NodeFailure can expand into that node's per-SSD failures. Call before
  // Schedule(). Without it every SSD counts as node 0.
  void ConfigureNodes(std::vector<int> node_of) {
    assert(scheduled_.empty() && "ConfigureNodes must precede Schedule");
    node_of_ = std::move(node_of);
  }
  int NodeOf(int ssd) const {
    return node_of_.empty() ? 0 : node_of_[static_cast<size_t>(ssd)];
  }

  // Schedule every fault in `plan` on the event queue. Call once, before
  // the experiment runs past the earliest fault time. Every scheduled
  // window edge holds a TimerHandle, so a plan can be torn down again.
  // NodeFailures expand here into one SsdFailure per SSD on the node, all
  // at identical ticks (the atomic whole-node fail/recover).
  void Schedule(const FaultPlan& plan);

  // Cancels every still-pending scheduled fault event (window edges,
  // probation heals). Active windows keep affecting the data path until
  // their stored end time — this only stops future *transitions* — so call
  // it when tearing a testbed down, not to end a fault early.
  void CancelScheduled();

  // Scheduled fault events still pending on the queue (tests).
  size_t pending_scheduled() const;

  // (e) Abrupt tenant crash: runs `crash_fn` (typically Initiator::Crash —
  // no disconnect capsule; the target's keepalive reaper cleans up) at
  // `at`, with a fault.inject trace event. Runs on the injector's own
  // (client) simulator — initiators live there.
  void ScheduleTenantCrash(Tick at, TenantId tenant,
                           std::function<void()> crash_fn);

  // --- Data-path queries -----------------------------------------------------

  // Decision for one device command on `ssd`. `now` must be the clock of
  // the simulator the device runs on (the SSD's shard under sharding).
  struct IoFault {
    IoStatus force_status = IoStatus::kOk;  // non-ok: do not reach the device
    Tick fault_latency = 0;   // completion latency when force_status != ok
    Tick extra_latency = 0;   // stall add-on when force_status == ok
  };
  IoFault OnDeviceSubmit(int ssd, IoType type, Tick now);

  // Decision for one fabric message. Under sharding the network calls this
  // from the barrier replay on the control thread, in canonical message
  // order, so the link RNG stream is thread-count invariant.
  struct LinkFault {
    bool drop = false;
    Tick extra_delay = 0;
  };
  LinkFault OnLinkMessage(Tick now);

  // --- Health ----------------------------------------------------------------
  SsdHealth health(int ssd) const { return ssds_[ssd].machine.health(); }
  int num_ssds() const { return static_cast<int>(ssds_.size()); }

  // Observe health transitions of `ssd` (the testbed subscribes each
  // pipeline's policy). Fired after the state changed.
  void Subscribe(int ssd, std::function<void(SsdHealth)> fn) {
    ssds_[ssd].observers.push_back(std::move(fn));
  }

  void AttachObservability(obs::Observability* obs);

  // Attach the invariant checker to every SSD's health machine: each
  // applied transition is re-validated independently (docs/TESTING.md).
  void AttachChecker(check::InvariantChecker* chk) {
    for (int i = 0; i < num_ssds(); ++i) {
      ssds_[i].machine.AttachChecker(chk, i);
    }
  }

  struct FaultCounters {
    uint64_t media_errors = 0;
    uint64_t device_failed_ios = 0;
    uint64_t stalled_ios = 0;
    uint64_t link_dropped = 0;
    uint64_t link_delayed = 0;
    uint64_t crashes = 0;
  };
  // Aggregated across the per-SSD, link and crash writer contexts. Meant
  // for control context (between runs / at a barrier).
  FaultCounters counters() const;

 private:
  struct SsdState {
    SsdHealthMachine machine;
    std::vector<std::function<void(SsdHealth)>> observers;
    // This SSD's private fault stream and single-writer state (see header
    // comment). sim/obs default to the injector-wide ones in plain mode.
    Rng rng{0};
    sim::Simulator* sim = nullptr;
    obs::Observability* obs = nullptr;
    uint64_t media_errors = 0;
    uint64_t device_failed_ios = 0;
    uint64_t stalled_ios = 0;
    // Metric handles (null = not observed).
    obs::Counter* m_media_errors = nullptr;
    obs::Counter* m_device_failed = nullptr;
    obs::Counter* m_stalled = nullptr;
    // The recovering->healthy heal armed by a failure's recover_at;
    // cancelled if the device fails again during probation (the state
    // machine would reject the heal anyway — cancelling keeps the event
    // queue free of dead timers).
    sim::TimerHandle probation;
  };

  // Window membership is evaluated at query time against the stored plan
  // (plans are a handful of entries; a linear scan is cheaper than keeping
  // overlap counts consistent). Scheduled events handle only the health
  // transitions and trace emission.
  static bool InWindow(Tick now, Tick start, Tick end) {
    return now >= start && now < end;
  }

  // True while any stall/media-error window is active on `ssd`.
  bool Degrading(int ssd, Tick now) const;
  // Attempts the transition; returns true if the state changed (observers
  // fired).
  bool SetHealth(int ssd, SsdHealth to);
  void Inject(const char* kind, int ssd, double arg);

  sim::Simulator& sim_;
  uint64_t seed_;
  Rng link_rng_;
  std::vector<SsdState> ssds_;
  std::vector<int> node_of_;  // empty: single node
  FaultPlan plan_;
  // Writer-context-split counters: link_* are written by the network call
  // path (control thread under sharding), crashes_ by the client shard.
  uint64_t link_dropped_ = 0;
  uint64_t link_delayed_ = 0;
  uint64_t crashes_ = 0;
  // Handles on every scheduled window edge (starts, ends, failures,
  // recoveries, crashes); fired handles are inert and pruned lazily.
  std::vector<sim::TimerHandle> scheduled_;

  obs::Observability* obs_ = nullptr;

  // Link metric handles (null = not observed).
  obs::Counter* m_link_dropped_ = nullptr;
  obs::Counter* m_link_delayed_ = nullptr;
};

}  // namespace gimbal::fault
