// BlockDevice decorator that realizes the FaultInjector's device-level
// faults without touching the SSD model itself.
//
// Per command, the injector decides one of:
//   * pass through untouched (the common case),
//   * pass through with extra completion latency (stall windows),
//   * fail without reaching the device (media error, failed SSD).
// While the SSD is in the failed state, completions still emerging from
// the wrapped model (commands accepted before the failure) are rewritten
// to status=device_failed — the inflight population dies with the device.
#pragma once

#include <memory>

#include "fault/fault.h"
#include "ssd/block_device.h"

namespace gimbal::fault {

class FaultyDevice : public ssd::BlockDevice {
 public:
  FaultyDevice(sim::Simulator& sim, std::unique_ptr<ssd::BlockDevice> inner,
               FaultInjector& injector, int ssd_index)
      : sim_(sim), inner_(std::move(inner)), injector_(injector),
        ssd_index_(ssd_index) {}

  void Submit(const ssd::DeviceIo& io, CompletionFn done) override {
    const FaultInjector::IoFault f =
        injector_.OnDeviceSubmit(ssd_index_, io.type, sim_.now());
    if (f.force_status != IoStatus::kOk) {
      // The command never reaches the device model: complete it locally
      // with the injected status after the fault's response latency.
      ++own_inflight_;
      ssd::DeviceCompletion cpl;
      cpl.cookie = io.cookie;
      cpl.type = io.type;
      cpl.length = io.length;
      cpl.status = f.force_status;
      cpl.submit_time = sim_.now();
      sim_.After(f.fault_latency,
                 [this, cpl, done = std::move(done)]() mutable {
                   cpl.complete_time = sim_.now();
                   --own_inflight_;
                   done(cpl);
                 });
      return;
    }
    inner_->Submit(io, [this, extra = f.extra_latency,
                        done = std::move(done)](
                           const ssd::DeviceCompletion& inner_cpl) {
      ssd::DeviceCompletion cpl = inner_cpl;
      if (injector_.health(ssd_index_) == SsdHealth::kFailed) {
        cpl.status = IoStatus::kDeviceFailed;
      }
      if (extra > 0 && cpl.ok()) {
        ++own_inflight_;
        sim_.After(extra, [this, cpl, done]() mutable {
          cpl.complete_time = sim_.now();
          --own_inflight_;
          done(cpl);
        });
        return;
      }
      done(cpl);
    });
  }

  void Trim(uint64_t offset, uint32_t length) override {
    if (injector_.health(ssd_index_) == SsdHealth::kFailed) return;
    inner_->Trim(offset, length);
  }

  void AttachObservability(obs::Observability* obs, int ssd_index) override {
    inner_->AttachObservability(obs, ssd_index);
  }

  uint64_t capacity_bytes() const override { return inner_->capacity_bytes(); }
  uint32_t inflight() const override {
    return inner_->inflight() + own_inflight_;
  }

  ssd::BlockDevice& inner() { return *inner_; }

 private:
  sim::Simulator& sim_;
  std::unique_ptr<ssd::BlockDevice> inner_;
  FaultInjector& injector_;
  int ssd_index_;
  uint32_t own_inflight_ = 0;
};

}  // namespace gimbal::fault
