// The repo-wide metric and trace-event catalogue.
//
// Every MetricDef and trace-event name the instruments emit lives here so
// the schema has one source of truth in code. docs/OBSERVABILITY.md is the
// human-readable mirror — keep both in sync when adding instruments (the
// doc is part of the review checklist for any PR touching this file).
#pragma once

#include "obs/metrics.h"

namespace gimbal::obs::schema {

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------
inline constexpr MetricDef kTargetAdmitted{
    "fabric.target.admitted", "ios",
    "NVMe-oF command capsules admitted at the target ingress",
    "fabric/target.cc:OnCommandCapsule"};
inline constexpr MetricDef kTargetAdmittedBytes{
    "fabric.target.admitted_bytes", "bytes",
    "payload bytes of admitted command capsules",
    "fabric/target.cc:OnCommandCapsule"};
inline constexpr MetricDef kPolicyDispatched{
    "policy.dispatched", "ios",
    "commands the per-SSD policy handed to the block device",
    "core/io_policy.h:SubmitToDevice"};
inline constexpr MetricDef kPolicyCompleted{
    "policy.completed", "ios",
    "commands completed back to the fabric (ok=true path)",
    "core/io_policy.h:Deliver"};
inline constexpr MetricDef kPolicyCompletedBytes{
    "policy.completed_bytes", "bytes", "payload bytes of completed commands",
    "core/io_policy.h:Deliver"};
inline constexpr MetricDef kClientCompleted{
    "client.completed", "ios",
    "successful completions observed at the client initiator (same event "
    "that feeds the fio worker stats, so totals match stdout exactly)",
    "fabric/initiator.cc:OnFabricCompletion"};
inline constexpr MetricDef kClientCompletedBytes{
    "client.completed_bytes", "bytes",
    "payload bytes of successful client-observed completions",
    "fabric/initiator.cc:OnFabricCompletion"};
inline constexpr MetricDef kPolicyFailed{
    "policy.failed", "ios",
    "commands failed back to the client (disconnect, device failure, media "
    "error)",
    "core/io_policy.h:Deliver/FailRequest"};
inline constexpr MetricDef kClientFailed{
    "client.failed", "ios",
    "failed completions observed at the client initiator (any non-ok "
    "status, including exhausted retry budgets)",
    "fabric/initiator.cc:Finish"};
inline constexpr MetricDef kInitiatorSubmitted{
    "initiator.submitted", "ios",
    "logical IOs accepted by the initiator (retries of one IO are not "
    "re-counted; submitted == client.completed + client.failed once "
    "drained)",
    "fabric/initiator.cc:Submit"};
inline constexpr MetricDef kInitiatorRetries{
    "initiator.retries", "ios",
    "command re-issues after a per-IO timeout (attempt 2 and beyond)",
    "fabric/initiator.cc:OnIoTimeout"};
inline constexpr MetricDef kInitiatorTimeouts{
    "initiator.timeouts", "ios",
    "IOs failed with status=timeout after exhausting the retry budget",
    "fabric/initiator.cc:OnIoTimeout"};
inline constexpr MetricDef kInitiatorLateCompletions{
    "initiator.late_completions", "ios",
    "completions for IOs the initiator no longer tracks (timed out, "
    "retried and completed twice, or crashed)",
    "fabric/initiator.cc:OnFabricCompletion"};
inline constexpr MetricDef kTargetSessionsReaped{
    "fabric.target.sessions_reaped", "tenants",
    "tenant sessions reaped by the keepalive timeout (crashed clients)",
    "fabric/target.cc:ReapStaleSessions"};
inline constexpr MetricDef kFaultMediaErrors{
    "fault.media_errors", "ios",
    "IOs failed with an injected media error",
    "fault/faulty_device.h:Submit"};
inline constexpr MetricDef kFaultDeviceFailedIos{
    "fault.device_failed_ios", "ios",
    "IOs failed because the SSD was in the failed state",
    "fault/faulty_device.h:Submit"};
inline constexpr MetricDef kFaultStalledIos{
    "fault.stalled_ios", "ios",
    "IOs delayed by an injected latency stall",
    "fault/faulty_device.h:Submit"};
inline constexpr MetricDef kFaultLinkDropped{
    "fault.link.dropped", "messages",
    "fabric messages dropped by an injected link flap",
    "fault/fault.cc:OnLinkMessage"};
inline constexpr MetricDef kFaultLinkDelayed{
    "fault.link.delayed", "messages",
    "fabric messages delayed by an injected link flap",
    "fault/fault.cc:OnLinkMessage"};
inline constexpr MetricDef kCongestionSignals{
    "gimbal.congestion.signals", "events",
    "completions whose latency monitor reported the congested state",
    "core/gimbal_switch.cc:OnDeviceCompletion"};
inline constexpr MetricDef kOverloadEvents{
    "gimbal.overload.events", "events",
    "completions whose latency monitor reported the overloaded state",
    "core/gimbal_switch.cc:OnDeviceCompletion"};
inline constexpr MetricDef kPacingStalls{
    "gimbal.pacing.stalls", "events",
    "head-of-line submissions deferred because the token bucket was dry",
    "core/gimbal_switch.cc:Pump"};
inline constexpr MetricDef kCreditGrants{
    "gimbal.credit.grants", "events",
    "credits piggybacked on completions (one grant per completion)",
    "core/gimbal_switch.cc:OnDeviceCompletion"};
inline constexpr MetricDef kDrrPassExhausted{
    "drr.pass_exhausted", "events",
    "Dequeue gave up after its pass budget with schedulable work remaining",
    "core/drr_scheduler.cc:Dequeue"};
inline constexpr MetricDef kDrrOrphanCompletions{
    "drr.orphan_completions", "ios",
    "completions dropped because their tenant was already reaped "
    "(late/duplicate after disconnect)",
    "core/drr_scheduler.cc:OnCompletion"};
inline constexpr MetricDef kSsdReadCommands{
    "ssd.read.commands", "ios", "read commands dispatched inside the SSD",
    "ssd/ssd.cc:DispatchRead"};
inline constexpr MetricDef kSsdWriteCommands{
    "ssd.write.commands", "ios", "write commands dispatched inside the SSD",
    "ssd/ssd.cc:DispatchWrite"};
inline constexpr MetricDef kSsdReadBytes{
    "ssd.read.bytes", "bytes", "bytes read from the SSD",
    "ssd/ssd.cc:DispatchRead"};
inline constexpr MetricDef kSsdWriteBytes{
    "ssd.write.bytes", "bytes", "bytes written to the SSD",
    "ssd/ssd.cc:DispatchWrite"};
inline constexpr MetricDef kSsdGcInvocations{
    "ssd.gc.invocations", "events",
    "garbage-collection activations (low-watermark crossings per die)",
    "ssd/ssd.cc:MaybeStartGc"};
inline constexpr MetricDef kSsdGcPagesRelocated{
    "ssd.gc.pages_relocated", "pages", "valid pages relocated by GC",
    "ssd/ssd.cc:GcRelocateBatch"};
inline constexpr MetricDef kSsdBlocksErased{
    "ssd.gc.blocks_erased", "blocks", "victim blocks erased by GC",
    "ssd/ssd.cc:GcRelocateBatch"};
inline constexpr MetricDef kTargetOrphanCompletions{
    "fabric.target.orphan_completions", "ios",
    "completions whose session was already torn down when they surfaced "
    "(late arrivals past a disconnect)",
    "fabric/target.cc:FinishCompletion"};
inline constexpr MetricDef kSloWindows{
    "slo.windows", "windows",
    "closed per-tenant SLO evaluation windows (windows with >= 1 sample)",
    "obs/slo.cc:CloseWindow"};
inline constexpr MetricDef kSloWindowsViolated{
    "slo.windows_violated", "windows",
    "closed per-tenant windows that violated at least one latency objective",
    "obs/slo.cc:CloseWindow"};
inline constexpr MetricDef kSloTenantWindowsViolated{
    "slo.tenant.windows_violated", "windows",
    "violated windows per tenant (tenant-labelled; folds to tenant=\"other\" "
    "past the registry's cardinality cap)",
    "obs/slo.cc:Export"};
inline constexpr MetricDef kKvFailoverReads{
    "kv.failover_reads", "ios",
    "blob reads retried on the surviving replica after a non-ok completion",
    "kv/blobstore.cc:StartRead"};
inline constexpr MetricDef kKvDegradedWrites{
    "kv.degraded_writes", "ios",
    "replicated writes acked at quorum-of-available (one replica durable, "
    "the other recorded in the dirty-replica ledger)",
    "kv/blobstore.cc:WriteReplicated"};
inline constexpr MetricDef kKvRebuildBytes{
    "kv.rebuild_bytes", "bytes",
    "dirty-replica bytes re-replicated by the background rebuild scanner",
    "kv/blobstore.cc:MarkRepaired"};
inline constexpr MetricDef kKvLostWrites{
    "kv.lost_writes", "ios",
    "acked writes with zero durable replicas — must stay 0 (docs/FAULTS.md)",
    "kv/blobstore.cc:WriteReplicated"};
inline constexpr MetricDef kKvWalRetries{
    "kv.wal_retries", "batches",
    "WAL group-commit batches re-submitted after both replicas failed "
    "(waiters held un-acked until a copy is durable)",
    "kv/db.cc:MaybeFlushWal"};
inline constexpr MetricDef kKvRecoveries{
    "kv.recoveries", "events",
    "DB instances recovered from a simulated crash by WAL replay",
    "kv/db.cc:Recover"};
inline constexpr MetricDef kRackUplinkBytes{
    "rack.uplink.bytes", "bytes",
    "bytes serialized across the shared ToR uplink, both directions",
    "workload/runner.cc:FlushObservability"};
inline constexpr MetricDef kRackNodeUplinkBytes{
    "rack.node.uplink_bytes", "bytes",
    "per-node share of the uplink bytes (ssd label = node id; sums to "
    "rack.uplink.bytes — the rack.uplink.conservation invariant)",
    "workload/runner.cc:FlushObservability"};
inline constexpr MetricDef kRackNodeDrops{
    "rack.node.drops", "messages",
    "fabric messages dropped because their node was down (whole-node "
    "failure blackout; distinct from link-flap drops)",
    "workload/runner.cc:FlushObservability"};
inline constexpr MetricDef kShardEpochs{
    "shard.epochs", "epochs",
    "full synchronization rounds the sharded engine has run (epoch "
    "coarsening makes this shrink on sparse cross-shard traffic; "
    "identical at any thread count)",
    "workload/runner.cc:PublishEngineMetrics"};
inline constexpr MetricDef kShardIdleWakeups{
    "shard.idle_wakeups", "wakeups",
    "worker doorbell rings that claimed zero shards — stays 0 unless "
    "claim racing leaves a woken worker empty-handed (never on sparse "
    "traffic, where single-active epochs ring no doorbell)",
    "workload/runner.cc:PublishEngineMetrics"};
inline constexpr MetricDef kTxnCommits{
    "txn.commits", "txns",
    "transactions committed (every write durably acked through the WAL "
    "group-commit path before the commit was reported)",
    "kv/txn.cc:FinishCommit"};
inline constexpr MetricDef kTxnAborts{
    "txn.aborts", "attempts",
    "transaction attempts aborted by the 2PL conflict policy (NO_WAIT "
    "conflicts, WAIT_DIE dies, WOUND_WAIT wounds) or a faulted read",
    "kv/txn.cc:AbortAttempt"};
inline constexpr MetricDef kTxnWounds{
    "txn.wounds", "txns",
    "younger lock holders wounded by an older requester (WOUND_WAIT only)",
    "kv/txn.cc:Acquire"};
inline constexpr MetricDef kTxnRetries{
    "txn.retries", "attempts",
    "aborted attempts re-executed after the initiator-style capped backoff "
    "(the transaction keeps its original timestamp)",
    "kv/txn.cc:AbortAttempt"};

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------
inline constexpr MetricDef kTargetRate{
    "gimbal.rate.target_bps", "bytes/s",
    "rate controller's current target submission rate",
    "core/rate_controller.cc:OnCompletion"};
inline constexpr MetricDef kCompletionRate{
    "gimbal.rate.completion_bps", "bytes/s",
    "measured completion rate over the last closed window",
    "core/rate_controller.cc:OnCompletion"};
inline constexpr MetricDef kWriteCost{
    "gimbal.write_cost", "ratio",
    "ADMI-estimated cost of one written byte in read-byte equivalents",
    "core/write_cost.h:PeriodicUpdate"};
inline constexpr MetricDef kEwmaRead{
    "gimbal.ewma_ns.read", "ns", "EWMA of read completion latency",
    "core/latency_monitor.cc:Update"};
inline constexpr MetricDef kEwmaWrite{
    "gimbal.ewma_ns.write", "ns", "EWMA of write completion latency",
    "core/latency_monitor.cc:Update"};
inline constexpr MetricDef kThreshRead{
    "gimbal.thresh_ns.read", "ns", "dynamic congestion threshold (reads)",
    "core/latency_monitor.cc:Update"};
inline constexpr MetricDef kThreshWrite{
    "gimbal.thresh_ns.write", "ns", "dynamic congestion threshold (writes)",
    "core/latency_monitor.cc:Update"};
inline constexpr MetricDef kStateRead{
    "gimbal.state.read", "enum",
    "read congestion state (0=under-utilized .. 3=overloaded)",
    "core/latency_monitor.cc:Update"};
inline constexpr MetricDef kStateWrite{
    "gimbal.state.write", "enum",
    "write congestion state (0=under-utilized .. 3=overloaded)",
    "core/latency_monitor.cc:Update"};
inline constexpr MetricDef kQueueDepth{
    "gimbal.queue_depth", "ios", "requests queued in the DRR scheduler",
    "core/gimbal_switch.cc:OnRequest/Pump"};
inline constexpr MetricDef kCreditLast{
    "gimbal.credit.last", "credits",
    "most recent credit granted to this tenant",
    "core/gimbal_switch.cc:OnDeviceCompletion"};
inline constexpr MetricDef kSsdBufferUsed{
    "ssd.buffer.used_bytes", "bytes", "DRAM write-buffer occupancy",
    "ssd/ssd.cc:AdmitWrite/PumpDie"};
inline constexpr MetricDef kSsdHealth{
    "ssd.health", "enum",
    "SSD health state (0=healthy 1=degraded 2=failed 3=recovering)",
    "fault/health.h:SsdHealthMachine::Set"};
inline constexpr MetricDef kSloReadP99{
    "slo.read.p99_ns", "ns",
    "aggregate p99 of client-observed read latency over the tracked run",
    "obs/slo.cc:Export"};
inline constexpr MetricDef kSloReadP999{
    "slo.read.p999_ns", "ns",
    "aggregate p99.9 of client-observed read latency over the tracked run",
    "obs/slo.cc:Export"};
inline constexpr MetricDef kSloWriteP99{
    "slo.write.p99_ns", "ns",
    "aggregate p99 of client-observed write latency over the tracked run",
    "obs/slo.cc:Export"};
inline constexpr MetricDef kSloWriteP999{
    "slo.write.p999_ns", "ns",
    "aggregate p99.9 of client-observed write latency over the tracked run",
    "obs/slo.cc:Export"};
inline constexpr MetricDef kSloTimeInViolation{
    "slo.time_in_violation_ns", "ns",
    "total tenant-time spent in violating windows (violated windows x "
    "window length)",
    "obs/slo.cc:Export"};
inline constexpr MetricDef kSloTenantsViolated{
    "slo.tenants.violated", "tenants",
    "tenants that violated at least one window over their lifetime",
    "obs/slo.cc:CloseWindow"};
inline constexpr MetricDef kKvDirtyReplicas{
    "kv.dirty_replicas", "blobs",
    "dirty-replica ledger depth (blobs awaiting re-replication)",
    "kv/blobstore.cc:RecordDirty/rebuild.cc"};
inline constexpr MetricDef kTxnWaitQueueDepth{
    "txn.wait_queue_depth", "txns",
    "transactions currently parked in lock wait queues (WAIT_DIE / "
    "WOUND_WAIT; NO_WAIT keeps this at 0)",
    "kv/txn.cc:UpdateWaitGauge"};

// ---------------------------------------------------------------------------
// Histograms (log-bucketed; JSON/CSV report count/min/mean/p50/p95/p99/max)
// ---------------------------------------------------------------------------
inline constexpr MetricDef kDeviceLatency{
    "policy.latency.device_ns", "ns",
    "SSD submit-to-complete latency per completed command",
    "core/io_policy.h:Deliver"};
inline constexpr MetricDef kTargetLatency{
    "policy.latency.target_ns", "ns",
    "target-ingress-to-completion latency per completed command",
    "core/io_policy.h:Deliver"};
inline constexpr MetricDef kSloReadLatency{
    "slo.latency.read_ns", "ns",
    "client-observed end-to-end read latency fed to the SLO tracker",
    "obs/slo.cc:Record"};
inline constexpr MetricDef kSloWriteLatency{
    "slo.latency.write_ns", "ns",
    "client-observed end-to-end write latency fed to the SLO tracker",
    "obs/slo.cc:Record"};

// ---------------------------------------------------------------------------
// Trace event names (see docs/OBSERVABILITY.md for args and sites)
// ---------------------------------------------------------------------------
inline constexpr const char* kEvAdmit = "io.admit";
inline constexpr const char* kEvDispatch = "io.dispatch";
inline constexpr const char* kEvComplete = "io.complete";
inline constexpr const char* kEvFail = "io.fail";
inline constexpr const char* kEvCongestionRead = "congestion.read";
inline constexpr const char* kEvCongestionWrite = "congestion.write";
inline constexpr const char* kEvRateUpdate = "rate.update";
inline constexpr const char* kEvCreditGrant = "credit.grant";
inline constexpr const char* kEvWriteCost = "wc.update";
inline constexpr const char* kEvGcStart = "gc.start";
inline constexpr const char* kEvGcEnd = "gc.end";
inline constexpr const char* kEvDisconnect = "tenant.disconnect";
inline constexpr const char* kEvFaultInject = "fault.inject";
inline constexpr const char* kEvFaultHealth = "fault.health";
inline constexpr const char* kEvRetry = "initiator.retry";
inline constexpr const char* kEvTimeout = "initiator.timeout";
inline constexpr const char* kEvTenantCrash = "tenant.crash";
inline constexpr const char* kEvTenantReap = "tenant.reap";
inline constexpr const char* kEvKvFailover = "kv.failover";
inline constexpr const char* kEvKvDegradedWrite = "kv.degraded_write";
inline constexpr const char* kEvKvRebuild = "kv.rebuild";
inline constexpr const char* kEvKvWalRetry = "kv.wal_retry";
inline constexpr const char* kEvKvRecover = "kv.recover";
// Whole-node fail/recover edges ride kEvFaultInject with keys
// "node_fail"/"node_recover" and the node id as the value (fault/fault.cc).
inline constexpr const char* kEvTxnCommit = "txn.commit";
inline constexpr const char* kEvTxnAbort = "txn.abort";
inline constexpr const char* kEvTxnWound = "txn.wound";
inline constexpr const char* kEvTxnWait = "txn.wait";

}  // namespace gimbal::obs::schema
