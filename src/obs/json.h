// Minimal JSON emission helpers for the observability snapshots. Only what
// the exporters need: string escaping and locale-independent number
// formatting (doubles always use '.' and never print NaN/Inf, which JSON
// forbids — non-finite values serialize as 0).
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace gimbal::obs {

inline void JsonEscape(const std::string& in, std::string& out) {
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

inline std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  JsonEscape(s, out);
  out += '"';
  return out;
}

inline std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  // %.17g round-trips doubles; trim to %g-style shortest when integral.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

}  // namespace gimbal::obs
