#include "obs/metrics.h"

#include <cassert>
#include <cstdio>

#include "obs/json.h"

namespace gimbal::obs {

const char* MetricsRegistry::KindName(Kind k) {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

MetricsRegistry::Instance& MetricsRegistry::Resolve(const MetricDef& def,
                                                    Labels labels, Kind kind) {
  Key key{def.name, run_, labels.tenant, labels.ssd};
  auto it = index_.find(key);
  if (it != index_.end()) {
    assert(it->second->kind == kind && "metric re-registered as another kind");
    return *it->second;
  }
  instances_.emplace_back();
  Instance& inst = instances_.back();
  inst.name = def.name;
  inst.unit = def.unit ? def.unit : "";
  inst.help = def.help ? def.help : "";
  inst.site = def.site ? def.site : "";
  inst.run = run_;
  inst.labels = labels;
  inst.kind = kind;
  index_.emplace(std::move(key), &inst);
  return inst;
}

Counter& MetricsRegistry::GetCounter(const MetricDef& def, Labels labels) {
  return Resolve(def, labels, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const MetricDef& def, Labels labels) {
  return Resolve(def, labels, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const MetricDef& def, Labels labels) {
  return Resolve(def, labels, Kind::kHistogram).histogram;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [key, src] : other.index_) {
    auto it = index_.find(key);
    Instance* dst;
    if (it != index_.end()) {
      assert(it->second->kind == src->kind &&
             "metric merged as another kind");
      dst = it->second;
    } else {
      instances_.emplace_back();
      dst = &instances_.back();
      dst->name = src->name;
      dst->unit = src->unit;
      dst->help = src->help;
      dst->site = src->site;
      dst->run = src->run;
      dst->labels = src->labels;
      dst->kind = src->kind;
      index_.emplace(key, dst);
    }
    switch (src->kind) {
      case Kind::kCounter: dst->counter.Add(src->counter.value()); break;
      case Kind::kGauge: dst->gauge.Set(src->gauge.value()); break;
      case Kind::kHistogram: dst->histogram.Merge(src->histogram); break;
    }
  }
}

void MetricsRegistry::DrainDeltaInto(MetricsRegistry& session) {
  last_drain_touched_ = 0;
  for (Instance& src : instances_) {
    // Dirty check first: a clean series costs one integer/double compare,
    // independent of how many series the session has accumulated.
    switch (src.kind) {
      case Kind::kCounter:
        if (src.counter.value() == 0) continue;
        break;
      case Kind::kGauge:
        if (src.pushed_once && src.gauge.value() == src.pushed_gauge) {
          continue;
        }
        break;
      case Kind::kHistogram:
        if (src.histogram.count() == 0) continue;
        break;
    }
    if (src.peer == nullptr) {
      // First push of this series: resolve (or create) the session-side
      // instance under the run label the series was recorded with, exactly
      // as MergeFrom keys it. The pointer stays valid — session instances
      // live in a deque and are never erased.
      Key key{src.name, src.run, src.labels.tenant, src.labels.ssd};
      auto it = session.index_.find(key);
      if (it != session.index_.end()) {
        assert(it->second->kind == src.kind &&
               "metric drained as another kind");
        src.peer = it->second;
      } else {
        session.instances_.emplace_back();
        Instance* dst = &session.instances_.back();
        dst->name = src.name;
        dst->unit = src.unit;
        dst->help = src.help;
        dst->site = src.site;
        dst->run = src.run;
        dst->labels = src.labels;
        dst->kind = src.kind;
        session.index_.emplace(std::move(key), dst);
        src.peer = dst;
      }
    }
    switch (src.kind) {
      case Kind::kCounter:
        src.peer->counter.Add(src.counter.value());
        src.counter.Reset();
        break;
      case Kind::kGauge:
        src.peer->gauge.Set(src.gauge.value());
        src.pushed_gauge = src.gauge.value();
        src.pushed_once = true;
        break;
      case Kind::kHistogram:
        src.peer->histogram.Merge(src.histogram);
        src.histogram.Reset();
        break;
    }
    ++last_drain_touched_;
  }
}

void MetricsRegistry::ResetRun(const std::string& run) {
  for (Instance& inst : instances_) {
    if (inst.run != run) continue;
    // Gauges are point-in-time state (target rate, EWMA latency, write
    // cost); zeroing them would fake values until the next Set. Only the
    // accumulating kinds restart with the measurement window.
    inst.counter.Reset();
    inst.histogram.Reset();
  }
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, inst] : index_) {
    (void)key;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + JsonQuote(inst->name);
    out += ",\"kind\":" + JsonQuote(KindName(inst->kind));
    out += ",\"unit\":" + JsonQuote(inst->unit);
    out += ",\"help\":" + JsonQuote(inst->help);
    out += ",\"site\":" + JsonQuote(inst->site);
    out += ",\"labels\":{";
    out += "\"run\":" + JsonQuote(inst->run);
    if (inst->labels.tenant >= 0) {
      out += ",\"tenant\":" + JsonNumber(inst->labels.tenant);
    } else if (inst->labels.tenant == Labels::kOtherTenant) {
      out += ",\"tenant\":\"other\"";
    }
    if (inst->labels.ssd >= 0) {
      out += ",\"ssd\":" + JsonNumber(inst->labels.ssd);
    }
    out += '}';
    switch (inst->kind) {
      case Kind::kCounter:
        out += ",\"value\":" +
               JsonNumber(static_cast<double>(inst->counter.value()));
        break;
      case Kind::kGauge:
        out += ",\"value\":" + JsonNumber(inst->gauge.value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = inst->histogram;
        out += ",\"count\":" + JsonNumber(static_cast<double>(h.count()));
        out += ",\"min\":" + JsonNumber(static_cast<double>(h.min()));
        out += ",\"mean\":" + JsonNumber(h.mean());
        out += ",\"p50\":" + JsonNumber(static_cast<double>(h.Quantile(0.50)));
        out += ",\"p95\":" + JsonNumber(static_cast<double>(h.Quantile(0.95)));
        out += ",\"p99\":" + JsonNumber(static_cast<double>(h.Quantile(0.99)));
        out +=
            ",\"p999\":" + JsonNumber(static_cast<double>(h.Quantile(0.999)));
        out += ",\"max\":" + JsonNumber(static_cast<double>(h.max()));
        break;
      }
    }
    out += '}';
  }
  out += "]}";
  return out;
}

namespace {
// CSV cells: quote only when needed (labels/help can contain commas).
std::string CsvCell(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string MetricsRegistry::ToCsv() const {
  std::string out =
      "name,kind,unit,run,tenant,ssd,value,count,min,mean,p50,p95,p99,p999,"
      "max\n";
  for (const auto& [key, inst] : index_) {
    (void)key;
    out += CsvCell(inst->name);
    out += ',';
    out += KindName(inst->kind);
    out += ',';
    out += CsvCell(inst->unit);
    out += ',';
    out += CsvCell(inst->run);
    out += ',';
    if (inst->labels.tenant >= 0) {
      out += JsonNumber(inst->labels.tenant);
    } else if (inst->labels.tenant == Labels::kOtherTenant) {
      out += "other";
    }
    out += ',';
    if (inst->labels.ssd >= 0) out += JsonNumber(inst->labels.ssd);
    out += ',';
    switch (inst->kind) {
      case Kind::kCounter:
        out += JsonNumber(static_cast<double>(inst->counter.value()));
        out += ",,,,,,,,";
        break;
      case Kind::kGauge:
        out += JsonNumber(inst->gauge.value());
        out += ",,,,,,,,";
        break;
      case Kind::kHistogram: {
        const Histogram& h = inst->histogram;
        out += ',';  // no scalar value
        out += JsonNumber(static_cast<double>(h.count())) + ',';
        out += JsonNumber(static_cast<double>(h.min())) + ',';
        out += JsonNumber(h.mean()) + ',';
        out += JsonNumber(static_cast<double>(h.Quantile(0.50))) + ',';
        out += JsonNumber(static_cast<double>(h.Quantile(0.95))) + ',';
        out += JsonNumber(static_cast<double>(h.Quantile(0.99))) + ',';
        out += JsonNumber(static_cast<double>(h.Quantile(0.999))) + ',';
        out += JsonNumber(static_cast<double>(h.max()));
        break;
      }
    }
    out += '\n';
  }
  return out;
}

bool MetricsRegistry::WriteFile(const std::string& path) const {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string body = csv ? ToCsv() : ToJson();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace gimbal::obs
