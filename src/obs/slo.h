// Per-tenant / aggregate latency-SLO tracking for open-loop experiments.
//
// A workload that owns client-observed end-to-end latencies feeds every
// sample into Record(); the tracker maintains
//
//   * aggregate lifetime read/write histograms (p99/p99.9 exported as
//     gauges alongside the full distributions),
//   * per-tenant violation accounting over fixed wall-aligned windows:
//     a window violates an objective (say read p99 <= X) when more than
//     the allowed fraction of that window's samples exceeded X — i.e.
//     over/total > 1 - quantile. Windows with no samples are not counted.
//
// The per-window math is O(1) per sample: four compare-and-increment
// counters, no per-window histogram. Per-tenant state lives in a
// SlabArena (common/index_arena.h) so 100k churning sessions cost one
// recycled ~64-byte slot each, and disconnect frees the slot after closing
// the open window. Aggregate totals (windows, violations, tenants ever in
// violation) accumulate tracker-side, so churned tenants keep counting.
//
// Metric schema (obs/schema.h, mirrored in docs/OBSERVABILITY.md):
//   slo.latency.{read,write}_ns          histogram  aggregate e2e latency
//   slo.{read,write}.{p99,p999}_ns       gauge      aggregate quantiles
//   slo.windows / slo.windows_violated   counter    closed windows
//   slo.tenant.windows_violated          counter    per-tenant (folded)
//   slo.time_in_violation_ns             gauge      violated x window len
//   slo.tenants.violated                 gauge      tenants ever violating
#pragma once

#include <cstdint>

#include "common/index_arena.h"
#include "common/time.h"
#include "nvme/types.h"
#include "obs/metrics.h"

namespace gimbal::obs {

// Latency objectives. A zero tick disables that objective; the window is
// the evaluation granularity for violation accounting.
struct SloSpec {
  Tick read_p99 = 0;
  Tick read_p999 = 0;
  Tick write_p99 = 0;
  Tick write_p999 = 0;
  Tick window = Milliseconds(100);

  bool Enabled() const {
    return read_p99 != 0 || read_p999 != 0 || write_p99 != 0 ||
           write_p999 != 0;
  }
};

class SloTracker {
 public:
  explicit SloTracker(SloSpec spec) : spec_(spec) {}

  const SloSpec& spec() const { return spec_; }

  // One client-observed completion. `now` must be non-decreasing per
  // tenant (it is: samples arrive in simulated-event order).
  void Record(TenantId tenant, bool is_write, Tick latency, Tick now);

  // Close the tenant's open window and release its slot. Call when the
  // session disconnects; its totals stay in the aggregate counters.
  void OnDisconnect(TenantId tenant);

  // Close every open window (end of run). Tenant slots stay live so
  // Export() can still emit per-tenant series.
  void FinalizeWindows();

  // Aggregate views.
  const Histogram& read_latency() const { return read_hist_; }
  const Histogram& write_latency() const { return write_hist_; }
  uint64_t windows() const { return windows_; }
  uint64_t windows_violated() const { return windows_violated_; }
  uint64_t tenants_violated() const { return tenants_violated_; }
  Tick time_in_violation() const {
    return static_cast<Tick>(windows_violated_) * spec_.window;
  }
  size_t tracked_tenants() const { return tenants_.size(); }

  // Emit the schema above into `reg`. Call once, after FinalizeWindows().
  void Export(MetricsRegistry& reg) const;

 private:
  struct TenantSlo {
    explicit TenantSlo(TenantId t) : tenant(t) {}
    void Reset(TenantId t) { *this = TenantSlo(t); }

    TenantId tenant = 0;
    uint64_t window_id = 0;   // aligned: sample_time / spec.window
    uint32_t read_n = 0;      // samples in the open window
    uint32_t write_n = 0;
    uint32_t over_read_p99 = 0;  // samples over each objective
    uint32_t over_read_p999 = 0;
    uint32_t over_write_p99 = 0;
    uint32_t over_write_p999 = 0;
    uint64_t violated = 0;    // lifetime violated windows (this tenant)
  };

  void CloseWindow(TenantSlo& t);

  SloSpec spec_;
  Histogram read_hist_;
  Histogram write_hist_;
  uint64_t windows_ = 0;
  uint64_t windows_violated_ = 0;
  uint64_t tenants_violated_ = 0;
  common::SlabArena<TenantSlo> tenants_;
  common::IdIndexMap index_;
};

}  // namespace gimbal::obs
