// Structured event tracing on the simulated clock.
//
// Instruments record point events (Instant) and duration events (Span) with
// the tenant/SSD labels and up to three numeric arguments. Timestamps are
// simulator ticks (nanoseconds), supplied by the caller — the tracer never
// reads a clock itself, so recorded order always matches simulated time at
// each call site.
//
// Exports:
//   * ToChromeJson() — the Chrome trace-event format, loadable in
//     chrome://tracing / https://ui.perfetto.dev (pid = SSD, tid = tenant),
//   * ToJsonl()      — one compact JSON object per line for ad-hoc tooling.
//
// Disabled cost: every record call is an inlined `if (!enabled_) return;`.
// A tracer with no sink attached (the default) therefore adds one branch
// per call site and allocates nothing.
//
// The event buffer is bounded (Enable(limit)); once full, further events
// are counted in dropped() instead of recorded, so a long bench run cannot
// exhaust memory. Exports embed the drop count.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/time.h"
#include "obs/labels.h"

namespace gimbal::obs {

// One named numeric argument. `key` must be a string literal (or otherwise
// outlive the tracer); events store the pointer, not a copy.
struct TraceArg {
  const char* key;
  double value;
};

class EventTracer {
 public:
  static constexpr size_t kDefaultLimit = 1u << 20;  // ~1M events
  static constexpr size_t kMaxArgs = 3;

  bool enabled() const { return enabled_; }
  void Enable(size_t limit = kDefaultLimit) {
    enabled_ = true;
    limit_ = limit;
    events_.reserve(limit < 4096 ? limit : 4096);
  }
  void Disable() { enabled_ = false; }

  // Point event at simulated time `ts`.
  void Instant(Tick ts, const char* name, Labels labels,
               std::initializer_list<TraceArg> args = {}) {
    if (!enabled_) return;
    Push(ts, /*dur=*/-1, name, labels, args);
  }

  // Duration event covering [start, start + dur].
  void Span(Tick start, Tick dur, const char* name, Labels labels,
            std::initializer_list<TraceArg> args = {}) {
    if (!enabled_) return;
    Push(start, dur, name, labels, args);
  }

  struct Event {
    Tick ts = 0;
    Tick dur = -1;  // -1: instant
    const char* name = nullptr;
    Labels labels;
    uint32_t nargs = 0;
    std::array<TraceArg, kMaxArgs> args{};
  };

  // Re-record an event captured by another tracer, subject to this
  // tracer's enable state and buffer limit. The sharded testbed drains
  // per-shard tracers into the session tracer at every epoch barrier,
  // merge-sorted into canonical (ts, shard) order (docs/SIMULATOR.md).
  void Append(const Event& e) {
    if (!enabled_) return;
    if (events_.size() >= limit_) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  // Fold another tracer's drop count in (per-shard drops must surface in
  // the merged tracer, or the digest would silently cover a partial run).
  void AddDropped(size_t n) { dropped_ += n; }

  // Deferred-stitch support (workload::Testbed::MergeShardTracers): move
  // the event buffer out so per-barrier shard batches can be spliced back
  // at the positions they would have been appended at, then restore the
  // rebuilt stream. Enable state and the live drop counter stay put;
  // Restore folds in the drops the splice itself incurred against limit().
  std::vector<Event> TakeForStitch() { return std::move(events_); }
  void RestoreFromStitch(std::vector<Event>&& events, size_t extra_dropped) {
    events_ = std::move(events);
    dropped_ += extra_dropped;
  }

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  size_t dropped() const { return dropped_; }
  size_t limit() const { return limit_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

  // Order-sensitive FNV-1a hash over every recorded event (timestamp,
  // duration, name, labels, args — values hashed by bit pattern). Two runs
  // of a deterministic simulation must produce equal digests; the
  // determinism golden test compares digests across seeds, repeats and
  // event-queue engines (docs/SIMULATOR.md).
  uint64_t Digest() const;

  std::string ToChromeJson() const;
  std::string ToJsonl() const;
  // Writes ToJsonl() if `path` ends in ".jsonl", else ToChromeJson().
  bool WriteFile(const std::string& path) const;

 private:
  void Push(Tick ts, Tick dur, const char* name, Labels labels,
            std::initializer_list<TraceArg> args);

  bool enabled_ = false;
  size_t limit_ = kDefaultLimit;
  size_t dropped_ = 0;
  std::vector<Event> events_;
};

}  // namespace gimbal::obs
