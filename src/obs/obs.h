// The observability bundle handed to instrumented components.
//
// One Observability instance per experiment (the bench harness owns it; see
// bench/bench_util.h). Components receive a nullable pointer through their
// AttachObservability methods — a null pointer means "not observed" and
// costs one branch per instrumentation site.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gimbal::obs {

struct Observability {
  MetricsRegistry metrics;
  EventTracer tracer;
};

}  // namespace gimbal::obs
