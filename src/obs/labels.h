// Label dimensions shared by metrics and trace events.
//
// Everything the observability layer records is attributed along two
// dimensions: the tenant an IO belongs to and the SSD (pipeline) it was
// served by. A value of -1 means "not applicable" (e.g. a per-SSD gauge has
// no tenant). The metrics registry adds a third, registry-level dimension —
// the run label — so one bench binary that builds several testbeds keeps
// their series separate (see MetricsRegistry::set_run).
#pragma once

#include <cstdint>

namespace gimbal::obs {

struct Labels {
  // Tenant value for series folded by the registry's per-tenant
  // cardinality cap (MetricsRegistry::FoldTenant): tenants past the limit
  // share one "other" series so 100k-session churn cannot grow the
  // registry unboundedly. Serialized as tenant="other".
  static constexpr int32_t kOtherTenant = -2;

  int32_t tenant = -1;
  int32_t ssd = -1;

  static Labels Ssd(int ssd_index) { return Labels{-1, ssd_index}; }
  static Labels TenantSsd(int32_t tenant, int ssd_index) {
    return Labels{tenant, ssd_index};
  }

  friend bool operator==(const Labels& a, const Labels& b) {
    return a.tenant == b.tenant && a.ssd == b.ssd;
  }
};

}  // namespace gimbal::obs
