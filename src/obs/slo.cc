#include "obs/slo.h"

#include "obs/schema.h"

namespace gimbal::obs {
namespace {

// A window violates objective (quantile q, threshold) when the fraction of
// samples over the threshold exceeds 1-q. Integer form: over * denom > n,
// with denom = 1/(1-q) (100 for p99, 1000 for p99.9), so no sample-count
// float rounding can flip a verdict.
bool Violates(uint32_t over, uint32_t n, uint64_t denom) {
  return static_cast<uint64_t>(over) * denom > n;
}

}  // namespace

void SloTracker::Record(TenantId tenant, bool is_write, Tick latency,
                        Tick now) {
  (is_write ? write_hist_ : read_hist_).Record(latency);
  const uint64_t wid =
      static_cast<uint64_t>(now) / static_cast<uint64_t>(spec_.window);
  uint32_t slot = index_.Find(tenant);
  if (slot == common::IdIndexMap::kNotFound) {
    slot = tenants_.Allocate(tenant);
    index_.Put(tenant, slot);
    tenants_[slot].window_id = wid;
  }
  TenantSlo& t = tenants_[slot];
  if (t.window_id != wid) {
    CloseWindow(t);
    t.window_id = wid;
  }
  if (is_write) {
    ++t.write_n;
    if (spec_.write_p99 != 0 && latency > spec_.write_p99) ++t.over_write_p99;
    if (spec_.write_p999 != 0 && latency > spec_.write_p999) {
      ++t.over_write_p999;
    }
  } else {
    ++t.read_n;
    if (spec_.read_p99 != 0 && latency > spec_.read_p99) ++t.over_read_p99;
    if (spec_.read_p999 != 0 && latency > spec_.read_p999) ++t.over_read_p999;
  }
}

void SloTracker::CloseWindow(TenantSlo& t) {
  if (t.read_n == 0 && t.write_n == 0) return;
  ++windows_;
  const bool violated =
      (spec_.read_p99 != 0 && Violates(t.over_read_p99, t.read_n, 100)) ||
      (spec_.read_p999 != 0 && Violates(t.over_read_p999, t.read_n, 1000)) ||
      (spec_.write_p99 != 0 && Violates(t.over_write_p99, t.write_n, 100)) ||
      (spec_.write_p999 != 0 && Violates(t.over_write_p999, t.write_n, 1000));
  if (violated) {
    ++windows_violated_;
    if (++t.violated == 1) ++tenants_violated_;
  }
  t.read_n = t.write_n = 0;
  t.over_read_p99 = t.over_read_p999 = 0;
  t.over_write_p99 = t.over_write_p999 = 0;
}

void SloTracker::OnDisconnect(TenantId tenant) {
  const uint32_t slot = index_.Find(tenant);
  if (slot == common::IdIndexMap::kNotFound) return;
  CloseWindow(tenants_[slot]);
  index_.Erase(tenant);
  tenants_.Free(slot);
}

void SloTracker::FinalizeWindows() {
  for (const uint32_t slot : tenants_.live()) CloseWindow(tenants_[slot]);
}

void SloTracker::Export(MetricsRegistry& reg) const {
  namespace s = schema;
  reg.GetHistogram(s::kSloReadLatency).Merge(read_hist_);
  reg.GetHistogram(s::kSloWriteLatency).Merge(write_hist_);
  reg.GetGauge(s::kSloReadP99)
      .Set(static_cast<double>(read_hist_.Quantile(0.99)));
  reg.GetGauge(s::kSloReadP999)
      .Set(static_cast<double>(read_hist_.Quantile(0.999)));
  reg.GetGauge(s::kSloWriteP99)
      .Set(static_cast<double>(write_hist_.Quantile(0.99)));
  reg.GetGauge(s::kSloWriteP999)
      .Set(static_cast<double>(write_hist_.Quantile(0.999)));
  reg.GetCounter(s::kSloWindows).Add(windows_);
  reg.GetCounter(s::kSloWindowsViolated).Add(windows_violated_);
  reg.GetGauge(s::kSloTimeInViolation)
      .Set(static_cast<double>(time_in_violation()));
  reg.GetGauge(s::kSloTenantsViolated)
      .Set(static_cast<double>(tenants_violated_));
  // Per-tenant violation counters for sessions still alive at export time
  // (churned tenants live on in the aggregates). Folding keeps this
  // bounded: tenants past the registry cap sum into tenant="other".
  for (const uint32_t slot : tenants_.live()) {
    const TenantSlo& t = tenants_[slot];
    if (t.violated == 0) continue;
    const Labels l = reg.FoldTenant(
        Labels::TenantSsd(static_cast<int32_t>(t.tenant), -1));
    reg.GetCounter(s::kSloTenantWindowsViolated, l).Add(t.violated);
  }
}

}  // namespace gimbal::obs
