// Metrics registry: named counters, gauges and log-bucketed latency
// histograms with per-tenant / per-SSD / per-run label dimensions.
//
// Usage pattern (hot-path friendly):
//   * instruments declare a static MetricDef (see obs/schema.h for the
//     repo-wide catalogue, mirrored in docs/OBSERVABILITY.md),
//   * at attach time they resolve a handle once with GetCounter/GetGauge/
//     GetHistogram and cache the pointer,
//   * the hot path is then a null-check plus an integer add / double store.
// With no Observability attached the instruments never touch the registry
// at all, so the disabled cost is one pointer compare.
//
// Snapshots serialize to JSON (one object per metric instance) or CSV (one
// row per instance); see MetricsRegistry::ToJson / ToCsv / WriteFile.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <tuple>

#include "common/histogram.h"
#include "obs/labels.h"

namespace gimbal::obs {

// Static descriptor of a metric family. The registry copies the strings, so
// call-site string literals are the expected usage.
struct MetricDef {
  const char* name;  // dotted lowercase, e.g. "policy.completed"
  const char* unit;  // "ios", "bytes", "ns", "bytes/s", "ratio", ...
  const char* help;  // one-line meaning
  const char* site;  // emitting call site, e.g. "core/gimbal_switch.cc"
};

class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  void Reset() { value_ = 0; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Reset() { value_ = 0; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Log-bucketed (HDR-style) histogram over non-negative integer samples,
// reporting count/min/mean/max and p50/p95/p99/p99.9. Quantiles of an
// empty histogram are defined as 0 (see LatencyHistogram::Percentile).
class Histogram {
 public:
  void Record(int64_t v) { hist_.Record(v); }
  void Reset() { hist_.Reset(); }

  void Merge(const Histogram& other) { hist_.Merge(other.hist_); }

  uint64_t count() const { return hist_.count(); }
  int64_t min() const { return hist_.min(); }
  int64_t max() const { return hist_.max(); }
  double mean() const { return hist_.mean(); }
  int64_t Quantile(double q) const { return hist_.Percentile(q); }
  const LatencyHistogram& hist() const { return hist_; }

 private:
  LatencyHistogram hist_;
};

class MetricsRegistry {
 public:
  // Resolve (creating on first use) the instance of `def` with `labels`
  // under the current run label. Returned references stay valid for the
  // registry's lifetime. Kind mismatches on the same (name, labels, run)
  // key are a programming error and assert in debug builds.
  Counter& GetCounter(const MetricDef& def, Labels labels = {});
  Gauge& GetGauge(const MetricDef& def, Labels labels = {});
  Histogram& GetHistogram(const MetricDef& def, Labels labels = {});

  // Per-tenant series cardinality cap: labels whose tenant id is at or
  // above the limit fold into the shared Labels::kOtherTenant series.
  // Instrumentation sites that resolve per-tenant metric handles pass
  // their labels through here first, so a tenant-churn workload keeps the
  // registry (and snapshot size) bounded while trace events — which are
  // per-event, not per-series — keep exact tenant ids. The default is far
  // above any figure experiment's tenant count, so small runs see exact
  // per-tenant series.
  Labels FoldTenant(Labels l) const {
    if (l.tenant >= tenant_series_limit_) l.tenant = Labels::kOtherTenant;
    return l;
  }
  void set_tenant_series_limit(int32_t limit) {
    tenant_series_limit_ = limit;
  }
  int32_t tenant_series_limit() const { return tenant_series_limit_; }

  // Run label applied to instances resolved from now on. The bench harness
  // sets it per testbed (e.g. "gimbal:a") so one binary's successive runs
  // stay distinct series.
  void set_run(std::string run) { run_ = std::move(run); }
  const std::string& run() const { return run_; }

  // Zero every counter and histogram carrying run label `run` (used at the
  // end of a warmup so totals cover only the measurement window, mirroring
  // WorkerStats::Reset). Gauges are point-in-time state and keep their
  // warmed-up values.
  void ResetRun(const std::string& run);

  size_t size() const { return instances_.size(); }

  // Fold another registry's instances into this one: counters add,
  // histograms merge bucket counts, gauges take the other registry's
  // value. Instances keep the run label they were resolved under in
  // `other`. Used by the sharded testbed, where each shard records into a
  // private registry (single-writer, no locks) and the results are merged
  // into the session registry when the testbed tears down; every
  // (name, run, labels) key has exactly one writing shard by construction,
  // so gauge overwrite is exact, not a race resolution.
  void MergeFrom(const MetricsRegistry& other);

  // Delta flush for repeated shard-to-session merging: push only what
  // changed since the previous drain, then reset the pushed accumulators.
  // Counters add their value and zero (skipped entirely at 0), histograms
  // merge their buckets and clear (skipped when empty), gauges overwrite
  // only when Set() changed the value since the last push (first Set always
  // pushes). Unlike MergeFrom, the session-side instance for every series
  // is resolved once and cached, so a steady-state drain is a linear walk
  // of the shard's instances with no map lookups — O(dirty series), not
  // O(all series ever created) — and a drained series can never be added
  // twice (the double-merge hazard MergeFrom callers had to avoid with an
  // external ResetRun).
  void DrainDeltaInto(MetricsRegistry& session);
  // Series the last DrainDeltaInto call actually pushed (tests).
  size_t last_drain_touched() const { return last_drain_touched_; }

  // {"metrics":[{...}, ...]} — one object per instance with name, kind,
  // unit, help, site, labels and the value(s).
  std::string ToJson() const;
  // Header + one row per instance; histogram columns empty for scalars.
  std::string ToCsv() const;
  // Writes ToCsv() if `path` ends in ".csv", else ToJson(). Returns false
  // (and leaves no partial file behind) if the file cannot be opened.
  bool WriteFile(const std::string& path) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instance {
    std::string name, unit, help, site, run;
    Labels labels;
    Kind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
    // DrainDeltaInto state: the session-side instance this one drains into
    // (resolved once; deque storage keeps it stable) and the last gauge
    // value pushed, so clean series cost one compare per drain.
    Instance* peer = nullptr;
    double pushed_gauge = 0;
    bool pushed_once = false;
  };

  static const char* KindName(Kind k);
  Instance& Resolve(const MetricDef& def, Labels labels, Kind kind);

  // Key: (name, run, tenant, ssd). std::map keeps snapshot output sorted
  // and deterministic.
  using Key = std::tuple<std::string, std::string, int32_t, int32_t>;
  std::map<Key, Instance*> index_;
  std::deque<Instance> instances_;  // deque: stable element addresses
  std::string run_;
  int32_t tenant_series_limit_ = 256;
  size_t last_drain_touched_ = 0;
};

}  // namespace gimbal::obs
