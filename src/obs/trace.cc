#include "obs/trace.h"

#include <cstdio>
#include <set>

#include "obs/json.h"

namespace gimbal::obs {

void EventTracer::Push(Tick ts, Tick dur, const char* name, Labels labels,
                       std::initializer_list<TraceArg> args) {
  if (events_.size() >= limit_) {
    ++dropped_;
    return;
  }
  Event e;
  e.ts = ts;
  e.dur = dur;
  e.name = name;
  e.labels = labels;
  for (const TraceArg& a : args) {
    if (e.nargs >= kMaxArgs) break;
    e.args[e.nargs++] = a;
  }
  events_.push_back(e);
}

namespace {

// FNV-1a, 64-bit.
constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t FnvByte(uint64_t h, uint8_t b) {
  return (h ^ b) * kFnvPrime;
}

inline uint64_t FnvU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) h = FnvByte(h, static_cast<uint8_t>(v >> (8 * i)));
  return h;
}

inline uint64_t FnvStr(uint64_t h, const char* s) {
  for (; *s; ++s) h = FnvByte(h, static_cast<uint8_t>(*s));
  return FnvByte(h, 0);  // terminator keeps "ab","c" distinct from "a","bc"
}

inline uint64_t FnvDouble(uint64_t h, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return FnvU64(h, bits);
}

void AppendArgs(const EventTracer::Event& e, std::string& out) {
  out += "{";
  for (uint32_t i = 0; i < e.nargs; ++i) {
    if (i) out += ',';
    out += JsonQuote(e.args[i].key) + ":" + JsonNumber(e.args[i].value);
  }
  out += '}';
}

}  // namespace

uint64_t EventTracer::Digest() const {
  uint64_t h = kFnvOffset;
  for (const Event& e : events_) {
    h = FnvU64(h, static_cast<uint64_t>(e.ts));
    h = FnvU64(h, static_cast<uint64_t>(e.dur));
    h = FnvStr(h, e.name);
    h = FnvU64(h, static_cast<uint64_t>(static_cast<uint32_t>(e.labels.tenant)));
    h = FnvU64(h, static_cast<uint64_t>(static_cast<uint32_t>(e.labels.ssd)));
    h = FnvU64(h, e.nargs);
    for (uint32_t i = 0; i < e.nargs; ++i) {
      h = FnvStr(h, e.args[i].key);
      h = FnvDouble(h, e.args[i].value);
    }
  }
  h = FnvU64(h, dropped_);
  return h;
}

std::string EventTracer::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  // Name the pid/tid tracks so chrome://tracing shows "ssd N" / "tenant N"
  // instead of bare numbers.
  std::set<int32_t> ssds;
  std::set<std::pair<int32_t, int32_t>> tenants;  // (ssd, tenant)
  for (const Event& e : events_) {
    const int32_t pid = e.labels.ssd >= 0 ? e.labels.ssd : 0;
    const int32_t tid = e.labels.tenant >= 0 ? e.labels.tenant : 0;
    ssds.insert(pid);
    tenants.insert({pid, tid});
  }
  for (int32_t s : ssds) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + JsonNumber(s) +
           ",\"args\":{\"name\":\"ssd " + JsonNumber(s) + "\"}}";
  }
  for (const auto& [s, t] : tenants) {
    out += ",{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + JsonNumber(s) +
           ",\"tid\":" + JsonNumber(t) + ",\"args\":{\"name\":\"tenant " +
           JsonNumber(t) + "\"}}";
  }
  for (const Event& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":" + JsonQuote(e.name);
    out += ",\"cat\":\"gimbal\"";
    // Chrome trace timestamps are microseconds; ticks are nanoseconds.
    if (e.dur >= 0) {
      out += ",\"ph\":\"X\",\"ts\":" +
             JsonNumber(static_cast<double>(e.ts) / 1000.0) +
             ",\"dur\":" + JsonNumber(static_cast<double>(e.dur) / 1000.0);
    } else {
      out += ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
             JsonNumber(static_cast<double>(e.ts) / 1000.0);
    }
    out += ",\"pid\":" + JsonNumber(e.labels.ssd >= 0 ? e.labels.ssd : 0);
    out += ",\"tid\":" + JsonNumber(e.labels.tenant >= 0 ? e.labels.tenant : 0);
    out += ",\"args\":";
    AppendArgs(e, out);
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":" +
         JsonNumber(static_cast<double>(dropped_)) + "}}";
  return out;
}

std::string EventTracer::ToJsonl() const {
  std::string out;
  for (const Event& e : events_) {
    out += "{\"ts\":" + JsonNumber(static_cast<double>(e.ts));
    out += ",\"ev\":" + JsonQuote(e.name);
    if (e.dur >= 0) out += ",\"dur\":" + JsonNumber(static_cast<double>(e.dur));
    if (e.labels.tenant >= 0) {
      out += ",\"tenant\":" + JsonNumber(e.labels.tenant);
    }
    if (e.labels.ssd >= 0) out += ",\"ssd\":" + JsonNumber(e.labels.ssd);
    for (uint32_t i = 0; i < e.nargs; ++i) {
      out += ',' + JsonQuote(e.args[i].key) + ':' + JsonNumber(e.args[i].value);
    }
    out += "}\n";
  }
  return out;
}

bool EventTracer::WriteFile(const std::string& path) const {
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string body = jsonl ? ToJsonl() : ToChromeJson();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace gimbal::obs
