// SSD congestion control with rate pacing (§3.2-3.3, Algorithm 1).
//
// Self-clocked: the switch calls OnCompletion for every SSD completion and
// consults the dual token bucket before every submission. Per-IO-type
// latency monitors turn completion delays into one of four congestion
// states; the target submission rate reacts per Algorithm 1:
//
//   overloaded            -> snap to measured completion rate, discard
//                            bucket tokens, then additive decrease
//   congested             -> additive decrease by the completed IO's size
//   congestion avoidance  -> additive increase by the completed IO's size
//   under-utilized        -> aggressive probe: increase by beta x size
#pragma once

#include "common/stats.h"
#include "core/latency_monitor.h"
#include "core/params.h"
#include "core/token_bucket.h"
#include "nvme/types.h"

namespace gimbal::core {

class RateController {
 public:
  explicit RateController(const GimbalParams& params)
      : params_(params),
        read_monitor_(params),
        write_monitor_(params),
        bucket_(params),
        target_rate_(params.initial_rate) {}

  // Algorithm 1, Completion(): returns the congestion state observed.
  CongestionState OnCompletion(IoType type, Tick latency, uint32_t bytes,
                               Tick now);

  // Algorithm 1, Submission() precondition: refresh buckets, then check.
  // `write_cost` comes from the WriteCostEstimator.
  bool TrySubmit(IoType type, uint64_t bytes, Tick now, double write_cost) {
    bucket_.Update(now, target_rate_, write_cost);
    if (!bucket_.HasTokens(type, bytes)) return false;
    bucket_.Consume(type, bytes);
    return true;
  }

  double target_rate() const { return target_rate_; }
  const LatencyMonitor& monitor(IoType type) const {
    return type == IoType::kRead ? read_monitor_ : write_monitor_;
  }
  const DualTokenBucket& bucket() const { return bucket_; }
  double completion_rate() const { return completion_meter_.last_rate(); }

  // Fault recovery (docs/FAULTS.md): clear both latency EWMAs and their
  // congestion state so post-recovery completions are not judged against
  // fault-era history. Target rate and bucket fill are kept — they re-adapt
  // within a few completions.
  void ResetMonitors() {
    read_monitor_.Reset();
    write_monitor_.Reset();
  }

  // Attach metrics/trace sinks (propagated to both latency monitors).
  void AttachObservability(obs::Observability* obs, int ssd_index,
                           const sim::Simulator* sim);

  // Attach the invariant checker (propagated to both latency monitors and
  // the token bucket).
  void AttachChecker(check::InvariantChecker* chk, int ssd_index) {
    read_monitor_.AttachChecker(chk, ssd_index, IoType::kRead);
    write_monitor_.AttachChecker(chk, ssd_index, IoType::kWrite);
    bucket_.AttachChecker(chk, ssd_index);
  }

  // Simulated time until the read bucket could cover `bytes` at the current
  // rate (used by the switch to schedule a poke when pacing stalls with no
  // completions outstanding).
  Tick PacingDelay(IoType type, uint64_t bytes, double write_cost) const;

 private:
  const GimbalParams& params_;
  LatencyMonitor read_monitor_;
  LatencyMonitor write_monitor_;
  DualTokenBucket bucket_;
  double target_rate_;
  RateMeter completion_meter_;
  Tick window_start_ = 0;
  bool window_started_ = false;

  // Observability (null = not observed).
  obs::Observability* obs_ = nullptr;
  int ssd_index_ = -1;
  obs::Gauge* m_target_rate_ = nullptr;
  obs::Gauge* m_completion_rate_ = nullptr;
};

}  // namespace gimbal::core
