#include "core/rate_controller.h"

#include <algorithm>

#include "obs/schema.h"

namespace gimbal::core {

namespace {
// Generous ceiling: far above any modeled device, merely prevents the
// under-utilized probe from pushing the float to absurd magnitudes.
constexpr double kMaxRate = 64e9;
}  // namespace

CongestionState RateController::OnCompletion(IoType type, Tick latency,
                                             uint32_t bytes, Tick now) {
  // Roll the completion-rate measurement window.
  if (!window_started_) {
    window_started_ = true;
    window_start_ = now;
  }
  completion_meter_.Add(bytes);
  if (now - window_start_ >= params_.completion_rate_window) {
    completion_meter_.Roll(window_start_, now);
    window_start_ = now;
  }

  LatencyMonitor& mon =
      type == IoType::kRead ? read_monitor_ : write_monitor_;
  CongestionState state = mon.Update(latency);

  const double size = static_cast<double>(bytes);
  switch (state) {
    case CongestionState::kOverloaded: {
      // The device is saturated far beyond the knee: incremental decrease
      // will not converge. Snap to the measured completion rate and keep
      // draining (Algorithm 1 lines 3-5 + 6-7).
      double cpl_rate = completion_meter_.last_rate();
      if (cpl_rate > 0) target_rate_ = cpl_rate;
      bucket_.DiscardTokens();
      target_rate_ -= size;
      break;
    }
    case CongestionState::kCongested:
      target_rate_ -= size;
      break;
    case CongestionState::kCongestionAvoidance:
      target_rate_ += size;
      break;
    case CongestionState::kUnderUtilized:
      target_rate_ += params_.beta * size;
      break;
  }
  target_rate_ = std::clamp(target_rate_, params_.min_rate, kMaxRate);

  if (obs_) {
    const double before = m_target_rate_->value();
    m_target_rate_->Set(target_rate_);
    m_completion_rate_->Set(completion_meter_.last_rate());
    // One rate up/down decision per completion (Algorithm 1).
    obs_->tracer.Instant(now, obs::schema::kEvRateUpdate,
                         obs::Labels::Ssd(ssd_index_),
                         {{"bps", target_rate_},
                          {"dir", target_rate_ > before   ? 1.0
                                  : target_rate_ < before ? -1.0
                                                          : 0.0},
                          {"state", static_cast<double>(
                               static_cast<int>(state))}});
  }
  return state;
}

void RateController::AttachObservability(obs::Observability* obs,
                                         int ssd_index,
                                         const sim::Simulator* sim) {
  obs_ = obs;
  ssd_index_ = ssd_index;
  read_monitor_.AttachObservability(obs, ssd_index, IoType::kRead, sim);
  write_monitor_.AttachObservability(obs, ssd_index, IoType::kWrite, sim);
  if (!obs_) return;
  const obs::Labels l = obs::Labels::Ssd(ssd_index_);
  m_target_rate_ = &obs_->metrics.GetGauge(obs::schema::kTargetRate, l);
  m_completion_rate_ =
      &obs_->metrics.GetGauge(obs::schema::kCompletionRate, l);
  m_target_rate_->Set(target_rate_);
}

Tick RateController::PacingDelay(IoType type, uint64_t bytes,
                                 double write_cost) const {
  // The bucket models the Algorithm-4 split itself: its ETA runs at the
  // per-bucket share until the sibling bucket fills and spills, then at
  // the full target rate — so the poke lands when the tokens actually
  // exist instead of up to wc x early. Target rate and write cost can
  // drift while waiting; the pump simply re-polls if the estimate aged.
  const Tick eta = bucket_.RefillEta(type, bytes, target_rate_, write_cost);
  if (eta == DualTokenBucket::kNever) return Milliseconds(1);
  return std::min<Tick>(eta, Milliseconds(10));
}

}  // namespace gimbal::core
