// Dual token bucket rate pacer (§3.3, Appendix C.1, Algorithm 4).
//
// Tokens are generated at the congestion controller's target rate and split
// between a read bucket and a write bucket in proportion write_cost:1, so
// writes are paced at their own (costlier) rate rather than the aggregate
// one. Overflow transfers between buckets; both are capped.
#pragma once

#include <cstdint>

#include "check/invariants.h"
#include "common/time.h"
#include "core/params.h"
#include "nvme/types.h"

namespace gimbal::core {

class DualTokenBucket {
 public:
  explicit DualTokenBucket(const GimbalParams& params)
      : cap_(static_cast<double>(params.bucket_cap_bytes)) {}

  // Accrue tokens for the elapsed time at `target_rate` (bytes/sec), split
  // by the current write cost. Call before every dequeue attempt
  // (Algorithm 1's update_token_buckets()).
  void Update(Tick now, double target_rate, double write_cost);

  // Whether an IO of `bytes` of `type` can be submitted now.
  bool HasTokens(IoType type, uint64_t bytes) const {
    return tokens(type) >= static_cast<double>(bytes);
  }

  // Consume tokens for a submitted IO.
  void Consume(IoType type, uint64_t bytes);

  // Overloaded state: discard accumulated tokens to kill bursts (Alg 1).
  void DiscardTokens();

  // Simulated time until the bucket for `type` could cover `bytes` when
  // tokens arrive at `fill_rate` bytes/sec split by `write_cost` per
  // Algorithm 4: the bucket refills at its own share (wc/(1+wc) for reads,
  // 1/(1+wc) for writes) until the sibling bucket hits capacity, after
  // which the sibling's share spills over and tokens arrive at the full
  // rate. Returns 0 when the bucket already covers it and kNever when
  // fill_rate is non-positive (the caller picks a retry policy; the
  // bucket cannot).
  static constexpr Tick kNever = -1;
  Tick RefillEta(IoType type, uint64_t bytes, double fill_rate,
                 double write_cost) const;

  double tokens(IoType type) const {
    return type == IoType::kRead ? read_tokens_ : write_tokens_;
  }
  double capacity() const { return cap_; }

  // Invariant hooks: accrual never outruns target_rate x elapsed, tokens
  // stay in [0, cap], consumes decrement exactly (docs/TESTING.md).
  void AttachChecker(check::InvariantChecker* chk, int ssd_index) {
    chk_ = chk;
    ssd_index_ = ssd_index;
  }

 private:
  check::InvariantChecker* chk_ = nullptr;
  int ssd_index_ = -1;
  double cap_;
  double read_tokens_ = 0;
  double write_tokens_ = 0;
  Tick last_update_ = 0;
  bool started_ = false;
};

}  // namespace gimbal::core
