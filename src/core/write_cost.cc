// WriteCostEstimator is header-only; this translation unit exists so the
// module shows up in the library and can grow out-of-line logic later.
#include "core/write_cost.h"
