#include "core/drr_scheduler.h"

#include <algorithm>
#include <cassert>

#include "obs/schema.h"

namespace gimbal::core {

TenantState& DrrScheduler::GetTenant(TenantId id) {
  uint32_t slot = index_.Find(id);
  if (slot == common::IdIndexMap::kNotFound) {
    slot = tenants_.Allocate(id);
    index_.Put(id, slot);
  }
  return tenants_[slot];
}

const TenantState* DrrScheduler::FindTenant(TenantId id) const {
  const uint32_t slot = index_.Find(id);
  return slot == common::IdIndexMap::kNotFound ? nullptr : &tenants_[slot];
}

void DrrScheduler::Reap(TenantId id) {
  const uint32_t slot = index_.Find(id);
  assert(slot != common::IdIndexMap::kNotFound);
  index_.Erase(id);
  tenants_.Free(slot);
}

void DrrScheduler::UpdateBusy(TenantState& t) {
  bool busy = IsBusy(t);
  if (busy == t.busy) return;
  t.busy = busy;
  busy_tenants_ += busy ? 1 : -1;
}

void DrrScheduler::Activate(TenantState& t) {
  if (t.in_active || t.in_deferred) return;
  t.in_active = true;
  t.new_round = true;
  active_.push_back(&t);
}

bool DrrScheduler::OpenSlot(TenantState& t) {
  if (!t.TryOpenSlot(AllottedSlots())) return false;
  if (chk_) {
    chk_->OnSlotOpen(t.id(), ssd_index_, t.SlotsInUse(), AllottedSlots());
  }
  return true;
}

void DrrScheduler::AttachObservability(obs::Observability* obs,
                                       int ssd_index) {
  if (!obs) {
    m_pass_exhausted_ = nullptr;
    m_orphan_completions_ = nullptr;
    return;
  }
  const obs::Labels l = obs::Labels::Ssd(ssd_index);
  m_pass_exhausted_ = &obs->metrics.GetCounter(obs::schema::kDrrPassExhausted, l);
  m_orphan_completions_ =
      &obs->metrics.GetCounter(obs::schema::kDrrOrphanCompletions, l);
}

void DrrScheduler::GrantRounds(TenantState& t, uint64_t rounds) {
  const uint64_t deficit_before = t.deficit;
  const double frac_before = t.deficit_frac;
  double step = t.weight * static_cast<double>(params_.drr_quantum);
  if (GIMBAL_MUT(kDrrSkew) && t.id() % 2 == 0) step *= 4.0;
  // Carry the sub-byte remainder across rounds: truncating each grant
  // independently starves any tenant with weight x quantum < 1 (its grant
  // rounds to zero forever). The checker replays the same arithmetic, so
  // deficits and carries must match it bit-for-bit.
  const double total = static_cast<double>(rounds) * step + t.deficit_frac;
  const uint64_t whole = static_cast<uint64_t>(total);
  t.deficit_frac = total - static_cast<double>(whole);
  t.deficit += whole;
  if (chk_) {
    chk_->OnDrrQuantum(t.id(), ssd_index_, deficit_before, t.deficit,
                       t.weight, rounds, frac_before, t.deficit_frac);
  }
}

void DrrScheduler::BoostStarvedRound() {
  uint64_t best = 0;
  bool found = false;
  for (TenantState* t : active_) {
    const IoRequest& head = t->Peek();
    const uint64_t weighted =
        cost_.WeightedBytes(head.type == IoType::kWrite, head.length);
    if (t->deficit >= weighted) return;  // someone can serve already
    const double step =
        t->weight * static_cast<double>(params_.drr_quantum);
    if (step <= 0) continue;
    const double shortfall =
        static_cast<double>(weighted - t->deficit) - t->deficit_frac;
    // +2: ceil, plus one spare round so carry rounding cannot leave the
    // winner one byte short and trigger another full rotation.
    const double rounds_d = shortfall <= 0 ? 1.0 : shortfall / step + 2.0;
    if (rounds_d > 1e15) continue;  // degenerate weight; let kMaxPasses report
    const uint64_t rounds = static_cast<uint64_t>(rounds_d);
    if (!found || rounds < best) {
      best = rounds;
      found = true;
    }
  }
  if (!found || best <= 1) return;  // the single-round path covers it
  for (TenantState* t : active_) {
    GrantRounds(*t, best);
    t->new_round = false;
  }
}

void DrrScheduler::Enqueue(const IoRequest& req) {
  TenantState& t = GetTenant(req.tenant);
  t.Enqueue(req);
  ++queued_total_;
  UpdateBusy(t);
  Activate(t);
  NotifyBacklog(t);
}

std::optional<DrrScheduler::Scheduled> DrrScheduler::Dequeue() {
  // Keep cycling DRR rounds until a request qualifies or no tenant remains
  // schedulable. Rounds are free when nobody else competes — a head IO
  // whose weighted size spans several quanta (e.g. a 128 KiB write at
  // write cost 9) simply accumulates deficit across consecutive rounds,
  // exactly as §3.5 describes. Termination: every pass either removes a
  // tenant (idle/deferred) or raises every remaining tenant's deficit by a
  // quantum, and weighted sizes are bounded by slot_bytes x worst cost.
  constexpr int kMaxPasses = 100000;
  size_t rotations = 0;  // consecutive rotations with no serve/removal
  for (int i = 0; i < kMaxPasses && !active_.empty(); ++i) {
    TenantState* t = active_.front();
    if (!t->HasQueued()) {
      // Idle tenant leaves the round and forfeits its deficit.
      t->deficit = 0;
      t->deficit_frac = 0;
      t->in_active = false;
      t->DropEmptyOpenSlot();
      active_.pop_front();
      UpdateBusy(*t);
      NotifyBacklog(*t);
      rotations = 0;
      continue;
    }
    if (!t->HasOpenSlot() && !OpenSlot(*t)) {
      // Out of virtual slots: move to deferred, zero the deficit
      // (Algorithm 2 / §3.5).
      t->deficit = 0;
      t->deficit_frac = 0;
      t->in_active = false;
      t->in_deferred = true;
      active_.pop_front();
      NotifyBacklog(*t);
      rotations = 0;
      continue;
    }
    if (t->new_round) {
      GrantRounds(*t, 1);
      t->new_round = false;
    }
    const IoRequest& head = t->Peek();
    uint64_t weighted =
        cost_.WeightedBytes(head.type == IoType::kWrite, head.length);
    if (t->deficit < weighted) {
      // Not enough deficit this round: rotate to the back and earn a new
      // quantum when the head of the list comes around again.
      active_.pop_front();
      t->in_active = false;
      Activate(*t);
      if (++rotations >= active_.size()) {
        // A full rotation granted everyone a quantum yet served nothing:
        // jump everyone forward by the same whole-round count instead of
        // spinning one byte-fraction at a time.
        BoostStarvedRound();
        rotations = 0;
      }
      continue;
    }
    Scheduled out;
    out.req = t->Pop();
    --queued_total_;
    t->deficit -= weighted;
    if (chk_) {
      chk_->OnDrrServe(t->id(), ssd_index_, weighted, t->weight);
    }
    out.slot_id = t->ChargeSlot(weighted, params_.slot_bytes);
    // If the slot filled and no further slot can open, the tenant defers
    // immediately so it cannot monopolize the next dequeue.
    if (!t->HasOpenSlot() && !OpenSlot(*t)) {
      t->deficit = 0;
      t->deficit_frac = 0;
      t->in_active = false;
      t->in_deferred = true;
      active_.pop_front();
    }
    UpdateBusy(*t);
    NotifyBacklog(*t);
    return out;
  }
  if (!active_.empty()) {
    // Schedulable work remains but kMaxPasses rounds could not serve it —
    // a scheduler bug by construction (BoostStarvedRound bounds the rounds
    // any finite weight needs). Report loudly instead of stalling silently.
    ++pass_exhausted_;
    if (m_pass_exhausted_) m_pass_exhausted_->Add(1);
    if (chk_) {
      chk_->OnDrrPassExhausted(ssd_index_, kMaxPasses,
                               static_cast<uint64_t>(active_.size()),
                               queued_total_);
    }
  }
  return std::nullopt;
}

std::vector<IoRequest> DrrScheduler::Disconnect(TenantId tenant) {
  const uint32_t slot = index_.Find(tenant);
  if (slot == common::IdIndexMap::kNotFound) return {};
  TenantState& t = tenants_[slot];
  active_.erase(std::remove(active_.begin(), active_.end(), &t),
                active_.end());
  t.in_active = false;
  t.in_deferred = false;
  t.deficit = 0;
  t.deficit_frac = 0;
  std::vector<IoRequest> dropped = t.DrainQueues();
  queued_total_ -= static_cast<uint32_t>(dropped.size());
  t.DropEmptyOpenSlot();
  t.disconnected = true;
  UpdateBusy(t);
  NotifyBacklog(t);
  // Everything — including the service weight, which once lived in a side
  // map this path forgot to clear — rides in the arena slot and is reaped
  // with it, so churn cannot grow memory unboundedly.
  if (!IsBusy(t)) Reap(tenant);
  return dropped;
}

std::vector<IoRequest> DrrScheduler::DrainAll() {
  std::vector<IoRequest> dropped;
  for (uint32_t slot : tenants_.live()) {
    TenantState& t = tenants_[slot];
    std::vector<IoRequest> d = t.DrainQueues();
    queued_total_ -= static_cast<uint32_t>(d.size());
    dropped.insert(dropped.end(), d.begin(), d.end());
    t.DropEmptyOpenSlot();
    t.deficit = 0;
    t.deficit_frac = 0;
    t.in_active = false;
    t.in_deferred = false;
    UpdateBusy(t);
    NotifyBacklog(t);
  }
  active_.clear();
  // Arena live order depends on churn history; sort so the fail-fast
  // completions reach clients in a reproducible order.
  std::sort(dropped.begin(), dropped.end(),
            [](const IoRequest& a, const IoRequest& b) {
              return a.tenant != b.tenant ? a.tenant < b.tenant : a.id < b.id;
            });
  return dropped;
}

void DrrScheduler::OnCompletion(TenantId tenant, uint64_t slot_id) {
  const uint32_t slot = index_.Find(tenant);
  if (slot == common::IdIndexMap::kNotFound) {
    // Late or duplicate completion for a tenant whose state was already
    // reaped (Disconnect + last inflight drained). Creating state here
    // would resurrect a ghost entry that nothing ever erases again — a
    // leak under tenant churn. Drop it, count it.
    ++orphan_completions_;
    if (m_orphan_completions_) m_orphan_completions_->Add(1);
    return;
  }
  TenantState& t = tenants_[slot];
  t.OnCompletion(slot_id);
  ++t.ios_completed;
  if (!t.HasQueued()) t.ReapQuiescentOpenSlot();
  if (t.disconnected) {
    UpdateBusy(t);
    NotifyBacklog(t);
    if (!IsBusy(t)) Reap(tenant);
    return;
  }
  if (t.in_deferred) {
    if (t.HasQueued()) {
      // Algorithm 2, Sched_Complete: a freed slot re-activates the tenant
      // at the end of the active list.
      if (OpenSlot(t)) {
        t.in_deferred = false;
        Activate(t);
      }
    } else {
      // Nothing left to schedule: leave the deferred list and go idle.
      t.in_deferred = false;
    }
  }
  UpdateBusy(t);
  NotifyBacklog(t);
}

void DrrScheduler::SetTenantWeight(TenantId id, double weight) {
  assert(weight > 0);
  GetTenant(id).weight = weight;
}

double DrrScheduler::TenantWeight(TenantId id) const {
  const TenantState* t = FindTenant(id);
  return t == nullptr ? 1.0 : t->weight;
}

uint32_t DrrScheduler::CreditFor(TenantId tenant) const {
  const TenantState* t = FindTenant(tenant);
  if (t == nullptr) return AllottedSlots() * 4;
  uint32_t credit = AllottedSlots() * t->last_slot_io_count();
  return credit > 0 ? credit : 1;
}

}  // namespace gimbal::core
