#include "core/gimbal_switch.h"

namespace gimbal::core {

GimbalSwitch::GimbalSwitch(sim::Simulator& sim, ssd::BlockDevice& device,
                           GimbalParams params)
    : PolicyBase(sim, device),
      params_(params),
      write_cost_(params_),
      rate_(params_),
      scheduler_(params_, write_cost_) {}

void GimbalSwitch::AttachObservability(obs::Observability* obs,
                                       int ssd_index) {
  PolicyBase::AttachObservability(obs, ssd_index);
  rate_.AttachObservability(obs, ssd_index, &sim_);
  write_cost_.AttachObservability(obs, ssd_index, &sim_);
  scheduler_.AttachObservability(obs, ssd_index);
  if (!obs) {
    m_congestion_signals_ = nullptr;
    m_overload_events_ = nullptr;
    m_pacing_stalls_ = nullptr;
    m_credit_grants_ = nullptr;
    m_queue_depth_ = nullptr;
    return;
  }
  namespace schema = obs::schema;
  const obs::Labels l = obs::Labels::Ssd(ssd_index);
  obs::MetricsRegistry& reg = obs->metrics;
  m_congestion_signals_ = &reg.GetCounter(schema::kCongestionSignals, l);
  m_overload_events_ = &reg.GetCounter(schema::kOverloadEvents, l);
  m_pacing_stalls_ = &reg.GetCounter(schema::kPacingStalls, l);
  m_credit_grants_ = &reg.GetCounter(schema::kCreditGrants, l);
  m_queue_depth_ = &reg.GetGauge(schema::kQueueDepth, l);
}

void GimbalSwitch::AttachChecker(check::InvariantChecker* chk,
                                 int ssd_index) {
  PolicyBase::AttachChecker(chk, ssd_index);
  rate_.AttachChecker(chk, ssd_index);
  scheduler_.AttachChecker(chk, ssd_index);
}

void GimbalSwitch::OnRequest(const IoRequest& req) {
  ++stats_.requests;
  if (health_ == fault::SsdHealth::kFailed) {
    // Fail fast rather than queueing behind a dead device: the client
    // learns immediately and can redirect (docs/FAULTS.md).
    FailRequest(req, IoStatus::kDeviceFailed);
    return;
  }
  scheduler_.Enqueue(req);
  if (m_queue_depth_) {
    m_queue_depth_->Set(static_cast<double>(scheduler_.queued_total()));
  }
  Pump();
}

void GimbalSwitch::OnTenantDisconnect(TenantId tenant) {
  // Fail still-queued requests back to the client; the head-of-line
  // request (if it belongs to this tenant) was already charged to a slot
  // and will submit/complete normally, as will device-inflight IOs.
  if (obs_) {
    obs_->tracer.Instant(
        sim_.now(), obs::schema::kEvDisconnect,
        obs::Labels::TenantSsd(static_cast<int32_t>(tenant), ssd_index_));
  }
  for (const IoRequest& req : scheduler_.Disconnect(tenant)) {
    FailRequest(req, IoStatus::kAborted);
  }
  if (m_queue_depth_) {
    m_queue_depth_->Set(static_cast<double>(scheduler_.queued_total()));
  }
}

void GimbalSwitch::OnSsdHealthChange(fault::SsdHealth health) {
  health_ = health;
  if (health == fault::SsdHealth::kFailed) {
    // Fail-fast drain: everything queued behind the dead device returns to
    // the clients now instead of timing out one retry at a time. The
    // head-of-line request was already charged to a virtual slot, so the
    // slot is returned before failing it; device-inflight IOs come back as
    // status=device_failed through the normal completion path.
    if (head_) {
      scheduler_.OnCompletion(head_->req.tenant, head_->slot_id);
      FailRequest(head_->req, IoStatus::kDeviceFailed);
      head_.reset();
    }
    for (const IoRequest& req : scheduler_.DrainAll()) {
      FailRequest(req, IoStatus::kDeviceFailed);
    }
    if (m_queue_depth_) {
      m_queue_depth_->Set(static_cast<double>(scheduler_.queued_total()));
    }
  } else if (health == fault::SsdHealth::kRecovering) {
    // Forget fault-era latency history before fresh traffic arrives, so
    // the first post-recovery completions are not judged overloaded
    // against a stalled EWMA.
    rate_.ResetMonitors();
  }
}

void GimbalSwitch::MaybeUpdateWriteCost() {
  // §3.4: periodic ADMI update driven by the write EWMA latency.
  Tick now = sim_.now();
  if (now - last_cost_update_ < params_.write_cost_period) return;
  last_cost_update_ = now;
  write_cost_.PeriodicUpdate(rate_.monitor(IoType::kWrite).ewma_latency());
}

void GimbalSwitch::Pump() {
  // Algorithm 1, Submission(): drain the DRR while the buckets allow.
  while (true) {
    if (!head_) {
      head_ = scheduler_.Dequeue();
      if (!head_) return;  // nothing eligible (idle or all deferred)
    }
    const IoRequest& req = head_->req;
    if (!rate_.TrySubmit(req.type, req.length, sim_.now(),
                         write_cost_.cost())) {
      // Pacing stall: retry when enough tokens will have accrued. The
      // completion path also re-pumps, whichever comes first.
      ++stats_.pacing_stalls;
      if (m_pacing_stalls_) m_pacing_stalls_->Add(1);
      SchedulePoke(
          rate_.PacingDelay(req.type, req.length, write_cost_.cost()));
      return;
    }
    ++io_outstanding_;
    SubmitToDevice(req, head_->slot_id);
    head_.reset();
    if (m_queue_depth_) {
      m_queue_depth_->Set(static_cast<double>(scheduler_.queued_total()));
    }
  }
}

void GimbalSwitch::SchedulePoke(Tick delay) {
  if (poke_timer_.active()) return;
  if (delay < Microseconds(1)) delay = Microseconds(1);
  poke_timer_ = sim_.After(delay, [this]() { Pump(); });
}

void GimbalSwitch::OnDeviceCompletion(const IoRequest& req,
                                      const ssd::DeviceCompletion& dc,
                                      uint64_t slot_id) {
  ++stats_.completions;
  --io_outstanding_;

  // Algorithm 1, Completion(): latency feedback -> congestion state ->
  // target rate adjustment. Faulted completions are excluded — a media
  // error's response time says nothing about queueing delay, and letting
  // it poison the EWMAs would throttle the healthy tenants sharing the SSD
  // (docs/FAULTS.md).
  if (dc.ok()) {
    CongestionState state =
        rate_.OnCompletion(req.type, dc.latency(), req.length, sim_.now());
    if (state == CongestionState::kCongested) {
      ++stats_.congestion_signals;
      if (m_congestion_signals_) m_congestion_signals_->Add(1);
    }
    if (state == CongestionState::kOverloaded) {
      ++stats_.overload_events;
      if (m_overload_events_) m_overload_events_->Add(1);
    }
    MaybeUpdateWriteCost();
  }

  // Algorithm 2, Sched_Complete(): return the IO to its virtual slot.
  scheduler_.OnCompletion(req.tenant, slot_id);

  // §3.6: piggyback the tenant's refreshed credit on the completion.
  const uint32_t credit = scheduler_.CreditFor(req.tenant);
  if (chk_) chk_->OnCreditGrant(req.tenant, ssd_index_, credit);
  if (obs_) {
    m_credit_grants_->Add(1);
    const obs::Labels l =
        obs::Labels::TenantSsd(static_cast<int32_t>(req.tenant), ssd_index_);
    obs_->metrics.GetGauge(obs::schema::kCreditLast, l)
        .Set(static_cast<double>(credit));
    obs_->tracer.Instant(sim_.now(), obs::schema::kEvCreditGrant, l,
                         {{"credit", static_cast<double>(credit)}});
  }
  Deliver(req, dc, credit);

  // Self-clocking: every completion drives the next submission.
  Pump();
}

VirtualView GimbalSwitch::View(TenantId tenant) const {
  VirtualView v;
  const double rate = rate_.target_rate();
  const double wc = write_cost_.cost();
  v.read_headroom_bps = rate * wc / (1.0 + wc);
  v.write_headroom_bps = rate * 1.0 / (1.0 + wc);
  v.credits = scheduler_.CreditFor(tenant);
  // Report the worse of the two monitors' states.
  auto rs = rate_.monitor(IoType::kRead).state();
  auto ws = rate_.monitor(IoType::kWrite).state();
  v.state = static_cast<int>(rs) > static_cast<int>(ws) ? rs : ws;
  return v;
}

}  // namespace gimbal::core
