// The Gimbal storage switch pipeline for one SSD (§3, Figure 5).
//
// Composition of the paper's four techniques:
//   ingress  — per-tenant priority queues feeding a virtual-slot DRR
//              scheduler (DrrScheduler / TenantState),
//   egress   — delay-based congestion control with dual-token-bucket rate
//              pacing (RateController),
//   sidecar  — the ADMI write-cost estimator informing both the scheduler's
//              weighted sizes and the bucket split (WriteCostEstimator),
//   feedback — per-tenant credits piggybacked on completions for the
//              end-to-end flow control (§3.6) and exposed through the
//              per-SSD virtual view (§3.7).
//
// Self-clocked per Algorithm 1: Pump() runs on every request arrival and
// every SSD completion; when pacing (not workload) is the bottleneck a
// one-shot poke is scheduled for the token-refill time.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/drr_scheduler.h"
#include "core/io_policy.h"
#include "core/params.h"
#include "core/rate_controller.h"
#include "core/write_cost.h"

namespace gimbal::core {

// Read/write headroom of one SSD as exposed to clients (§3.7). Clients use
// it for rate limiting, load balancing and prioritization decisions.
struct VirtualView {
  double read_headroom_bps = 0;   // paced read bandwidth currently offered
  double write_headroom_bps = 0;  // paced write bandwidth currently offered
  uint32_t credits = 0;           // this tenant's current total credit
  CongestionState state = CongestionState::kUnderUtilized;
};

class GimbalSwitch : public PolicyBase {
 public:
  GimbalSwitch(sim::Simulator& sim, ssd::BlockDevice& device,
               GimbalParams params = {});

  // IoPolicy ------------------------------------------------------------------
  void OnRequest(const IoRequest& req) override;
  void OnTenantDisconnect(TenantId tenant) override;
  void OnSsdHealthChange(fault::SsdHealth health) override;
  uint32_t CreditFor(TenantId tenant) const override {
    return scheduler_.CreditFor(tenant);
  }
  std::string name() const override { return "gimbal"; }
  void AttachObservability(obs::Observability* obs, int ssd_index) override;
  void AttachChecker(check::InvariantChecker* chk, int ssd_index) override;

  // Per-SSD virtual view for `tenant` (§3.7).
  VirtualView View(TenantId tenant) const;

  // Extension: proportional service weights (see DrrScheduler).
  void SetTenantWeight(TenantId tenant, double weight) {
    scheduler_.SetTenantWeight(tenant, weight);
  }

  // Introspection for tests and the Fig 9/17/18 timelines.
  const RateController& rate_controller() const { return rate_; }
  const WriteCostEstimator& write_cost() const { return write_cost_; }
  const DrrScheduler& scheduler() const { return scheduler_; }
  const GimbalParams& params() const { return params_; }
  uint32_t io_outstanding() const { return io_outstanding_; }
  fault::SsdHealth ssd_health() const { return health_; }

  struct SwitchStats {
    uint64_t requests = 0;
    uint64_t completions = 0;
    uint64_t congestion_signals = 0;
    uint64_t overload_events = 0;
    uint64_t pacing_stalls = 0;
  };
  const SwitchStats& stats() const { return stats_; }

 private:
  void Pump();
  void OnDeviceCompletion(const IoRequest& req,
                          const ssd::DeviceCompletion& dc,
                          uint64_t slot_id) override;
  void SchedulePoke(Tick delay);
  void MaybeUpdateWriteCost();

  GimbalParams params_;
  WriteCostEstimator write_cost_;
  RateController rate_;
  DrrScheduler scheduler_;

  // Head-of-line request dequeued from the DRR but awaiting bucket tokens
  // (Gimbal does not reorder after the scheduler; see Appendix C.1).
  std::optional<DrrScheduler::Scheduled> head_;

  uint32_t io_outstanding_ = 0;
  // Last health transition observed from the fault layer; stays kHealthy
  // forever when no FaultInjector is wired up.
  fault::SsdHealth health_ = fault::SsdHealth::kHealthy;
  // The armed pacing poke (fires Pump when tokens should have accrued).
  // One poke at a time: re-arming while active would only move the wakeup
  // later than the tokens need.
  sim::TimerHandle poke_timer_;
  Tick last_cost_update_ = 0;
  SwitchStats stats_;

  // Observability (null = not observed; see docs/OBSERVABILITY.md).
  obs::Counter* m_congestion_signals_ = nullptr;
  obs::Counter* m_overload_events_ = nullptr;
  obs::Counter* m_pacing_stalls_ = nullptr;
  obs::Counter* m_credit_grants_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
};

}  // namespace gimbal::core
