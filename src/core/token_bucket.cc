#include "core/token_bucket.h"

namespace gimbal::core {

void DualTokenBucket::Update(Tick now, double target_rate, double write_cost) {
  if (!started_) {
    started_ = true;
    last_update_ = now;
    return;
  }
  Tick elapsed = now - last_update_;
  if (elapsed <= 0) return;
  last_update_ = now;

  const double read_before = read_tokens_;
  const double write_before = write_tokens_;
  const double avail =
      target_rate * static_cast<double>(elapsed) / kNsPerSec;
  // Algorithm 4: read bucket gets wc/(1+wc), write bucket 1/(1+wc).
  read_tokens_ += avail * write_cost / (1.0 + write_cost);
  write_tokens_ += avail * 1.0 / (1.0 + write_cost);

  // Overflow transfers to the sibling bucket, then both clamp at capacity.
  if (read_tokens_ > cap_) {
    write_tokens_ += read_tokens_ - cap_;
    read_tokens_ = cap_;
  }
  if (write_tokens_ > cap_) {
    read_tokens_ += write_tokens_ - cap_;
    if (read_tokens_ > cap_) read_tokens_ = cap_;
    write_tokens_ = cap_;
  }
  if (chk_) {
    chk_->OnBucketUpdate(ssd_index_, elapsed, target_rate, read_before,
                         write_before, read_tokens_, write_tokens_, cap_);
  }
}

void DualTokenBucket::Consume(IoType type, uint64_t bytes) {
  double& t = type == IoType::kRead ? read_tokens_ : write_tokens_;
  const double before = t;
  uint64_t charged = bytes;
  if (GIMBAL_MUT(kBucketOverrun)) charged = bytes / 2;
  t -= static_cast<double>(charged);
  if (chk_) {
    chk_->OnBucketConsume(ssd_index_, type == IoType::kRead, bytes, before,
                          t, cap_);
  }
}

void DualTokenBucket::DiscardTokens() {
  read_tokens_ = 0;
  write_tokens_ = 0;
}

Tick DualTokenBucket::RefillEta(IoType type, uint64_t bytes,
                                double fill_rate, double write_cost) const {
  const double need = static_cast<double>(bytes) - tokens(type);
  if (need <= 0) return 0;
  if (fill_rate <= 0) return kNever;
  if (write_cost <= 0) write_cost = 1.0;
  // Two-segment estimate mirroring Update(): until the sibling bucket
  // reaches capacity this bucket earns only its Algorithm-4 share of the
  // fill rate; once the sibling is full its share spills over and tokens
  // arrive at the full rate. Using the unsplit rate throughout would fire
  // a write-side poke up to wc x too early and busy-repoll.
  const bool is_read = type == IoType::kRead;
  const double own_rate = fill_rate * (is_read ? write_cost : 1.0) /
                          (1.0 + write_cost);
  const double sib_rate = fill_rate - own_rate;
  const double sib_room =
      cap_ - tokens(is_read ? IoType::kWrite : IoType::kRead);
  double eta_sec;
  if (sib_room <= 0) {
    // Sibling already at capacity: its share spills immediately.
    eta_sec = need / fill_rate;
  } else if (sib_rate <= 0 || own_rate <= 0) {
    // Degenerate split: everything flows into one bucket.
    eta_sec = need / (own_rate > 0 ? own_rate : fill_rate);
  } else {
    const double spill_sec = sib_room / sib_rate;
    const double gained = own_rate * spill_sec;
    eta_sec = need <= gained ? need / own_rate
                             : spill_sec + (need - gained) / fill_rate;
  }
  // +1 tick: round up so the poke never fires one tick short of the tokens
  // it waited for.
  return static_cast<Tick>(eta_sec * kNsPerSec) + 1;
}

}  // namespace gimbal::core
