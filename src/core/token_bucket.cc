#include "core/token_bucket.h"

namespace gimbal::core {

void DualTokenBucket::Update(Tick now, double target_rate, double write_cost) {
  if (!started_) {
    started_ = true;
    last_update_ = now;
    return;
  }
  Tick elapsed = now - last_update_;
  if (elapsed <= 0) return;
  last_update_ = now;

  const double read_before = read_tokens_;
  const double write_before = write_tokens_;
  const double avail =
      target_rate * static_cast<double>(elapsed) / kNsPerSec;
  // Algorithm 4: read bucket gets wc/(1+wc), write bucket 1/(1+wc).
  read_tokens_ += avail * write_cost / (1.0 + write_cost);
  write_tokens_ += avail * 1.0 / (1.0 + write_cost);

  // Overflow transfers to the sibling bucket, then both clamp at capacity.
  if (read_tokens_ > cap_) {
    write_tokens_ += read_tokens_ - cap_;
    read_tokens_ = cap_;
  }
  if (write_tokens_ > cap_) {
    read_tokens_ += write_tokens_ - cap_;
    if (read_tokens_ > cap_) read_tokens_ = cap_;
    write_tokens_ = cap_;
  }
  if (chk_) {
    chk_->OnBucketUpdate(ssd_index_, elapsed, target_rate, read_before,
                         write_before, read_tokens_, write_tokens_, cap_);
  }
}

void DualTokenBucket::Consume(IoType type, uint64_t bytes) {
  double& t = type == IoType::kRead ? read_tokens_ : write_tokens_;
  const double before = t;
  uint64_t charged = bytes;
  if (GIMBAL_MUT(kBucketOverrun)) charged = bytes / 2;
  t -= static_cast<double>(charged);
  if (chk_) {
    chk_->OnBucketConsume(ssd_index_, type == IoType::kRead, bytes, before,
                          t, cap_);
  }
}

void DualTokenBucket::DiscardTokens() {
  read_tokens_ = 0;
  write_tokens_ = 0;
}

Tick DualTokenBucket::RefillEta(IoType type, uint64_t bytes,
                                double fill_rate) const {
  const double need = static_cast<double>(bytes) - tokens(type);
  if (need <= 0) return 0;
  if (fill_rate <= 0) return kNever;
  // +1 tick: round up so the poke never fires one tick short of the tokens
  // it waited for.
  return static_cast<Tick>(need * kNsPerSec / fill_rate) + 1;
}

}  // namespace gimbal::core
