#include "core/virtual_slot.h"

#include <cassert>
#include <cstddef>

namespace gimbal::core {

namespace {
constexpr int kPriorityWeight[kNumPriorities] = {4, 2, 1};
}

const IoRequest& TenantState::Peek() {
  assert(queued_ > 0);
  // Advance the weighted round-robin cursor to a non-empty queue.
  for (int hops = 0; hops < 2 * kNumPriorities; ++hops) {
    if (rr_budget_ > 0 && !queues_[rr_cursor_].empty()) {
      return queues_[rr_cursor_].front();
    }
    rr_cursor_ = (rr_cursor_ + 1) % kNumPriorities;
    rr_budget_ = kPriorityWeight[rr_cursor_];
  }
  // All budgets skipped empty queues: fall back to the first non-empty.
  for (auto& q : queues_) {
    if (!q.empty()) return q.front();
  }
  assert(false && "HasQueued() was true but all queues empty");
  return queues_[0].front();
}

IoRequest TenantState::Pop() {
  // Peek positions the cursor on the queue to serve.
  Peek();
  for (int p = 0; p < kNumPriorities; ++p) {
    int idx = (rr_cursor_ + p) % kNumPriorities;
    if (!queues_[idx].empty()) {
      IoRequest req = queues_[idx].front();
      queues_[idx].pop_front();
      --queued_;
      if (idx == rr_cursor_ && rr_budget_ > 0) --rr_budget_;
      return req;
    }
  }
  assert(false && "Pop on empty tenant");
  return IoRequest{};
}

uint64_t TenantState::ChargeSlot(uint64_t weighted_bytes,
                                 uint64_t slot_bytes) {
  assert(HasOpenSlot());
  VirtualSlot& slot = slots_.back();
  ++slot.submits;
  slot.weighted_bytes += weighted_bytes;
  if (slot.weighted_bytes >= slot_bytes) slot.is_full = true;
  return slot.id;
}

bool TenantState::OnCompletion(uint64_t slot_id) {
  for (size_t i = 0; i < slots_.size(); ++i) {
    VirtualSlot& slot = slots_[i];
    if (slot.id != slot_id) continue;
    assert(slot.completions < slot.submits);
    ++slot.completions;
    if (slot.Complete()) {
      last_slot_io_count_ = slot.submits;
      slots_.erase(slots_.begin() + static_cast<long>(i));
      return true;
    }
    return false;
  }
  assert(false && "completion for an unknown slot");
  return false;
}

}  // namespace gimbal::core
