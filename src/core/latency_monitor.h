// Per-IO-type latency monitor implementing Gimbal's delay-based congestion
// detection (§3.2 and the update_latency procedure of Algorithm 1).
//
// Keeps an EWMA of completion latencies and a *dynamic* threshold that
// decays toward the EWMA (so congestion is detected promptly for small IOs)
// and jumps halfway to Thresh_max when exceeded (so signals become more
// frequent as latency approaches the ceiling).
#pragma once

#include "check/invariants.h"
#include "common/stats.h"
#include "common/time.h"
#include "core/params.h"
#include "nvme/types.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace gimbal::core {

// The four congestion states of §3.3.
enum class CongestionState {
  kUnderUtilized,       // ewma < Thresh_min
  kCongestionAvoidance, // Thresh_min <= ewma < Thresh_cur
  kCongested,           // Thresh_cur <= ewma < Thresh_max
  kOverloaded,          // ewma >= Thresh_max
};

const char* ToString(CongestionState s);

class LatencyMonitor {
 public:
  explicit LatencyMonitor(const GimbalParams& params);

  // Record a completion latency; returns the resulting congestion state.
  // Mirrors Algorithm 1's update_latency line by line.
  CongestionState Update(Tick latency);

  double ewma_latency() const { return ewma_.initialized() ? ewma_.value() : 0; }
  double threshold() const { return threshold_; }
  CongestionState state() const { return state_; }

  void Reset();

  // Attach metrics/trace sinks. `type` selects the read or write metric
  // family; `sim` supplies timestamps for state-transition trace events.
  void AttachObservability(obs::Observability* obs, int ssd_index, IoType type,
                           const sim::Simulator* sim);

  // Invariant hook: every Update() reports EWMA/threshold/state for the
  // §3.2 sanity checks (docs/TESTING.md).
  void AttachChecker(check::InvariantChecker* chk, int ssd_index,
                     IoType type) {
    chk_ = chk;
    ssd_index_ = ssd_index;
    chk_is_read_ = type == IoType::kRead;
  }

 private:
  const GimbalParams& params_;
  Ewma ewma_;
  double threshold_;
  CongestionState state_ = CongestionState::kUnderUtilized;

  // Observability (null = not observed).
  check::InvariantChecker* chk_ = nullptr;
  bool chk_is_read_ = true;
  obs::Observability* obs_ = nullptr;
  const sim::Simulator* obs_sim_ = nullptr;
  int ssd_index_ = -1;
  const char* transition_event_ = nullptr;
  obs::Gauge* m_ewma_ = nullptr;
  obs::Gauge* m_thresh_ = nullptr;
  obs::Gauge* m_state_ = nullptr;
};

}  // namespace gimbal::core
