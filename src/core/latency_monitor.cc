#include "core/latency_monitor.h"

#include "obs/schema.h"

namespace gimbal::core {

const char* ToString(CongestionState s) {
  switch (s) {
    case CongestionState::kUnderUtilized: return "under-utilized";
    case CongestionState::kCongestionAvoidance: return "congestion-avoidance";
    case CongestionState::kCongested: return "congested";
    case CongestionState::kOverloaded: return "overloaded";
  }
  return "?";
}

LatencyMonitor::LatencyMonitor(const GimbalParams& params)
    : params_(params),
      ewma_(params.alpha_d),
      threshold_(static_cast<double>(params.thresh_max)) {}

void LatencyMonitor::Reset() {
  ewma_.Reset();
  threshold_ = static_cast<double>(params_.thresh_max);
  state_ = CongestionState::kUnderUtilized;
}

void LatencyMonitor::AttachObservability(obs::Observability* obs,
                                         int ssd_index, IoType type,
                                         const sim::Simulator* sim) {
  obs_ = obs;
  obs_sim_ = sim;
  ssd_index_ = ssd_index;
  if (!obs_) return;
  namespace schema = obs::schema;
  const bool read = type == IoType::kRead;
  const obs::Labels l = obs::Labels::Ssd(ssd_index_);
  obs::MetricsRegistry& reg = obs_->metrics;
  m_ewma_ = &reg.GetGauge(read ? schema::kEwmaRead : schema::kEwmaWrite, l);
  m_thresh_ =
      &reg.GetGauge(read ? schema::kThreshRead : schema::kThreshWrite, l);
  m_state_ = &reg.GetGauge(read ? schema::kStateRead : schema::kStateWrite, l);
  transition_event_ =
      read ? schema::kEvCongestionRead : schema::kEvCongestionWrite;
}

CongestionState LatencyMonitor::Update(Tick latency) {
  ewma_.Add(static_cast<double>(latency));
  const double ewma = ewma_.value();
  const double max = static_cast<double>(params_.thresh_max);
  const double min = static_cast<double>(params_.thresh_min);

  if (ewma > max) {
    // Algorithm 1: thresh = thresh_max; state = overloaded.
    threshold_ = max;
    state_ = CongestionState::kOverloaded;
  } else if (ewma > threshold_) {
    // Congestion signal: back the threshold off halfway to the ceiling so
    // further signals require genuinely higher latency (Reno-style).
    threshold_ = (threshold_ + max) / 2.0;
    state_ = CongestionState::kCongested;
  } else if (ewma > min) {
    // Decay the threshold toward the EWMA so the next latency rise is
    // detected promptly.
    threshold_ -= params_.alpha_t * (threshold_ - ewma);
    state_ = CongestionState::kCongestionAvoidance;
  } else {
    threshold_ -= params_.alpha_t * (threshold_ - ewma);
    state_ = CongestionState::kUnderUtilized;
  }
  // The threshold never drops below the congestion-free floor.
  if (threshold_ < min) threshold_ = min;

  if (chk_) {
    chk_->OnLatencySample(ssd_index_, chk_is_read_, ewma, threshold_, min,
                          max, static_cast<int>(state_));
  }
  if (obs_) {
    m_ewma_->Set(ewma);
    m_thresh_->Set(threshold_);
    const double state_num = static_cast<double>(static_cast<int>(state_));
    if (m_state_->value() != state_num && obs_sim_) {
      obs_->tracer.Instant(obs_sim_->now(), transition_event_,
                           obs::Labels::Ssd(ssd_index_),
                           {{"state", state_num},
                            {"ewma_ns", ewma},
                            {"thresh_ns", threshold_}});
    }
    m_state_->Set(state_num);
  }
  return state_;
}

}  // namespace gimbal::core
