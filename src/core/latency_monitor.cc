#include "core/latency_monitor.h"

namespace gimbal::core {

const char* ToString(CongestionState s) {
  switch (s) {
    case CongestionState::kUnderUtilized: return "under-utilized";
    case CongestionState::kCongestionAvoidance: return "congestion-avoidance";
    case CongestionState::kCongested: return "congested";
    case CongestionState::kOverloaded: return "overloaded";
  }
  return "?";
}

LatencyMonitor::LatencyMonitor(const GimbalParams& params)
    : params_(params),
      ewma_(params.alpha_d),
      threshold_(static_cast<double>(params.thresh_max)) {}

void LatencyMonitor::Reset() {
  ewma_.Reset();
  threshold_ = static_cast<double>(params_.thresh_max);
  state_ = CongestionState::kUnderUtilized;
}

CongestionState LatencyMonitor::Update(Tick latency) {
  ewma_.Add(static_cast<double>(latency));
  const double ewma = ewma_.value();
  const double max = static_cast<double>(params_.thresh_max);
  const double min = static_cast<double>(params_.thresh_min);

  if (ewma > max) {
    // Algorithm 1: thresh = thresh_max; state = overloaded.
    threshold_ = max;
    state_ = CongestionState::kOverloaded;
  } else if (ewma > threshold_) {
    // Congestion signal: back the threshold off halfway to the ceiling so
    // further signals require genuinely higher latency (Reno-style).
    threshold_ = (threshold_ + max) / 2.0;
    state_ = CongestionState::kCongested;
  } else if (ewma > min) {
    // Decay the threshold toward the EWMA so the next latency rise is
    // detected promptly.
    threshold_ -= params_.alpha_t * (threshold_ - ewma);
    state_ = CongestionState::kCongestionAvoidance;
  } else {
    threshold_ -= params_.alpha_t * (threshold_ - ewma);
    state_ = CongestionState::kUnderUtilized;
  }
  // The threshold never drops below the congestion-free floor.
  if (threshold_ < min) threshold_ = min;
  return state_;
}

}  // namespace gimbal::core
