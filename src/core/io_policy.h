// The pluggable per-SSD multi-tenancy policy interface.
//
// The NVMe-oF target owns one policy instance per SSD pipeline and feeds it
// every arriving request; the policy decides when to hand commands to the
// block device and reports completions (with an optional piggybacked
// credit, §3.6) back to the target. Gimbal and all baselines (ReFlex,
// Parda, FlashFQ, vanilla FCFS) implement this interface, so experiments
// swap schemes by swapping one object.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "check/invariants.h"
#include "fault/health.h"
#include "nvme/types.h"
#include "obs/obs.h"
#include "obs/schema.h"
#include "sim/simulator.h"
#include "ssd/block_device.h"

namespace gimbal::core {

class IoPolicy {
 public:
  // Invoked when the policy completes a request: the original request plus
  // completion metadata (device latency, piggybacked credit).
  using CompletionFn =
      std::function<void(const IoRequest&, const IoCompletion&)>;

  virtual ~IoPolicy() = default;

  // A request arrived at the target ingress for this SSD.
  virtual void OnRequest(const IoRequest& req) = 0;

  // NVMe Dataset Management (deallocate/TRIM): control-plane, bypasses the
  // data-path scheduler.
  virtual void OnTrim(uint64_t offset, uint32_t length) {
    (void)offset;
    (void)length;
  }

  // Tenant connection teardown. Policies holding queued requests fail
  // them back through the completion path (status=aborted); inflight
  // device IOs complete normally.
  virtual void OnTenantDisconnect(TenantId tenant) { (void)tenant; }

  // The fault layer observed a health transition of this policy's SSD
  // (docs/FAULTS.md). Policies may drain and fail queued IOs fast on
  // kFailed and reset latency feedback on recovery; the default ignores it
  // (the FaultyDevice still fails whatever such a policy submits).
  virtual void OnSsdHealthChange(fault::SsdHealth health) { (void)health; }

  // Current total credit for a tenant (Algorithm 3's credit_obtain);
  // policies without flow control grant effectively-unlimited credit.
  virtual uint32_t CreditFor(TenantId tenant) const {
    (void)tenant;
    return UINT32_MAX;
  }

  virtual std::string name() const = 0;

  void set_completion_fn(CompletionFn fn) { complete_ = std::move(fn); }

  // Attach metrics/trace sinks; `ssd_index` labels everything this policy
  // emits. A null `obs` (the default state) disables all instrumentation.
  virtual void AttachObservability(obs::Observability* obs, int ssd_index) {
    (void)obs;
    (void)ssd_index;
  }

  // Attach the online invariant checker (docs/TESTING.md); same contract as
  // AttachObservability: null detaches, cost when detached is one branch
  // per hook site.
  virtual void AttachChecker(check::InvariantChecker* chk, int ssd_index) {
    (void)chk;
    (void)ssd_index;
  }

 protected:
  CompletionFn complete_;
};

// Shared plumbing: request tracking, device submission with latency
// measurement, and an overridable device-completion hook.
class PolicyBase : public IoPolicy {
 public:
  PolicyBase(sim::Simulator& sim, ssd::BlockDevice& device)
      : sim_(sim), device_(device) {}

  void OnTrim(uint64_t offset, uint32_t length) override {
    device_.Trim(offset, length);
  }

  void AttachObservability(obs::Observability* obs, int ssd_index) override {
    obs_ = obs;
    ssd_index_ = ssd_index;
    tenant_metrics_.clear();
  }

  void AttachChecker(check::InvariantChecker* chk, int ssd_index) override {
    chk_ = chk;
    ssd_index_ = ssd_index;
  }

  uint32_t device_inflight() const { return device_.inflight(); }

 protected:
  // Hand one command to the SSD; OnDeviceCompletion fires when it finishes.
  // `tag` is round-tripped untouched (Gimbal uses it for the virtual-slot
  // id the IO was charged to).
  void SubmitToDevice(const IoRequest& req, uint64_t tag = 0) {
    if (obs_) {
      TenantMetrics& tm = MetricsFor(req.tenant);
      tm.dispatched->Add(1);
      obs_->tracer.Instant(
          sim_.now(), obs::schema::kEvDispatch,
          obs::Labels::TenantSsd(static_cast<int32_t>(req.tenant), ssd_index_),
          {{"bytes", static_cast<double>(req.length)},
           {"write", req.type == IoType::kWrite ? 1.0 : 0.0}});
    }
    if (chk_) chk_->OnPolicyDispatch(req.tenant, ssd_index_);
    uint64_t cookie = next_cookie_++;
    tracked_.emplace(cookie, Tracked{req, tag});
    ssd::DeviceIo io;
    io.cookie = cookie;
    io.type = req.type;
    io.offset = req.offset;
    io.length = req.length;
    device_.Submit(io, [this](const ssd::DeviceCompletion& dc) {
      auto it = tracked_.find(dc.cookie);
      Tracked t = it->second;
      tracked_.erase(it);
      if (chk_) {
        chk_->OnDeviceReturn(t.req.tenant, ssd_index_,
                             dc.status == IoStatus::kOk);
      }
      OnDeviceCompletion(t.req, dc, t.tag);
    });
  }

  // Subclasses update their state, then call Deliver().
  virtual void OnDeviceCompletion(const IoRequest& req,
                                  const ssd::DeviceCompletion& dc,
                                  uint64_t tag) = 0;

  // Send the completion up to the target/fabric. Failed completions (a
  // non-ok device status) are counted separately and excluded from the
  // latency histograms — a media error's response time is not a service
  // latency sample.
  void Deliver(const IoRequest& req, const ssd::DeviceCompletion& dc,
               uint32_t credit = 0) {
    IoCompletion cpl;
    cpl.id = req.id;
    cpl.tenant = req.tenant;
    cpl.type = req.type;
    cpl.length = req.length;
    cpl.status = dc.status;
    cpl.device_latency = dc.latency();
    cpl.target_latency = sim_.now() - req.target_arrival;
    cpl.credit = credit;
    if (obs_) {
      const obs::Labels l =
          obs::Labels::TenantSsd(static_cast<int32_t>(req.tenant), ssd_index_);
      if (cpl.ok()) {
        TenantMetrics& tm = MetricsFor(req.tenant);
        tm.completed->Add(1);
        tm.completed_bytes->Add(req.length);
        tm.device_latency->Record(cpl.device_latency);
        tm.target_latency->Record(cpl.target_latency);
        // The device-service span renders as a bar from SSD submit to now.
        obs_->tracer.Span(
            sim_.now() - cpl.device_latency, cpl.device_latency,
            obs::schema::kEvComplete, l,
            {{"bytes", static_cast<double>(req.length)},
             {"write", req.type == IoType::kWrite ? 1.0 : 0.0},
             {"credit", static_cast<double>(credit)}});
      } else {
        obs_->metrics
            .GetCounter(obs::schema::kPolicyFailed,
                        obs_->metrics.FoldTenant(l))
            .Add(1);
        obs_->tracer.Instant(
            sim_.now(), obs::schema::kEvFail, l,
            {{"bytes", static_cast<double>(req.length)},
             {"status", static_cast<double>(static_cast<int>(cpl.status))}});
      }
    }
    if (chk_) chk_->OnPolicyDeliver(req.tenant, ssd_index_, cpl.ok());
    if (complete_) complete_(req, cpl);
  }

  // Fail a request that never reached the device (disconnect teardown,
  // fail-fast drain of a failed SSD) back to the client with `status`.
  void FailRequest(const IoRequest& req, IoStatus status) {
    IoCompletion cpl;
    cpl.id = req.id;
    cpl.tenant = req.tenant;
    cpl.type = req.type;
    cpl.length = req.length;
    cpl.status = status;
    cpl.target_latency = sim_.now() - req.target_arrival;
    if (obs_) {
      const obs::Labels l =
          obs::Labels::TenantSsd(static_cast<int32_t>(req.tenant), ssd_index_);
      obs_->metrics
          .GetCounter(obs::schema::kPolicyFailed, obs_->metrics.FoldTenant(l))
          .Add(1);
      obs_->tracer.Instant(
          sim_.now(), obs::schema::kEvFail, l,
          {{"bytes", static_cast<double>(req.length)},
           {"status", static_cast<double>(static_cast<int>(status))}});
    }
    if (chk_) chk_->OnPolicyFail(req.tenant, ssd_index_);
    if (complete_) complete_(req, cpl);
  }

  // Per-(tenant, ssd) metric handles, resolved once per tenant. Only valid
  // while obs_ is non-null.
  struct TenantMetrics {
    obs::Counter* dispatched = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* completed_bytes = nullptr;
    obs::Histogram* device_latency = nullptr;
    obs::Histogram* target_latency = nullptr;
  };
  TenantMetrics& MetricsFor(TenantId tenant) {
    // Cache and series are keyed by the folded tenant label, so both stay
    // bounded by the registry's tenant_series_limit under session churn.
    const obs::Labels l = obs_->metrics.FoldTenant(
        obs::Labels::TenantSsd(static_cast<int32_t>(tenant), ssd_index_));
    auto it = tenant_metrics_.find(l.tenant);
    if (it != tenant_metrics_.end()) return it->second;
    namespace schema = obs::schema;
    obs::MetricsRegistry& reg = obs_->metrics;
    TenantMetrics tm;
    tm.dispatched = &reg.GetCounter(schema::kPolicyDispatched, l);
    tm.completed = &reg.GetCounter(schema::kPolicyCompleted, l);
    tm.completed_bytes = &reg.GetCounter(schema::kPolicyCompletedBytes, l);
    tm.device_latency = &reg.GetHistogram(schema::kDeviceLatency, l);
    tm.target_latency = &reg.GetHistogram(schema::kTargetLatency, l);
    return tenant_metrics_.emplace(l.tenant, tm).first->second;
  }

  sim::Simulator& sim_;
  ssd::BlockDevice& device_;
  obs::Observability* obs_ = nullptr;
  check::InvariantChecker* chk_ = nullptr;
  int ssd_index_ = -1;

 private:
  struct Tracked {
    IoRequest req;
    uint64_t tag;
  };
  std::unordered_map<uint64_t, Tracked> tracked_;
  // Keyed by *folded* tenant label (not TenantId): bounded cardinality.
  std::unordered_map<int32_t, TenantMetrics> tenant_metrics_;
  uint64_t next_cookie_ = 1;
};

}  // namespace gimbal::core
