// Gimbal tunables, with the defaults the paper derives in §4.2.
#pragma once

#include <cstdint>

#include "common/time.h"

namespace gimbal::core {

struct GimbalParams {
  // --- Delay-based congestion control (§3.2) -------------------------------
  // Thresh_min: upper bound of "congestion-free" latency; must exceed the
  // worst single-outstanding-IO latency (230us on the paper's SSD).
  Tick thresh_min = Microseconds(250);
  // Thresh_max: above this EWMA latency the device is overloaded. Paper:
  // 1500us for the DCT983 (3ms for the P3600 in §5.8).
  Tick thresh_max = Microseconds(1500);
  // alpha_T: how aggressively the dynamic threshold chases the EWMA latency
  // (higher -> congestion signals are generated speculatively earlier).
  double alpha_t = 0.5;  // 2^-1
  // alpha_D: EWMA weight for the measured IO latency.
  double alpha_d = 0.5;  // 2^-1

  // --- Rate control (§3.3, Algorithm 1) ------------------------------------
  // beta: multiplier on additive increase in the under-utilized state.
  double beta = 8.0;
  // Window over which the completion rate is measured (used when entering
  // the overloaded state).
  Tick completion_rate_window = Milliseconds(50);
  // Initial target rate before any feedback (bytes/sec).
  double initial_rate = 400e6;
  // Floor so the pipeline can always probe its way back up.
  double min_rate = 4e6;

  // --- Dual token bucket (Appendix C.1, Algorithm 4) ------------------------
  uint64_t bucket_cap_bytes = 128 * 1024;

  // --- Write cost estimation (§3.4) -----------------------------------------
  // Worst-case write cost: max random-read IOPS / max random-write IOPS
  // from the datasheet (9 for the DCT983).
  double write_cost_worst = 9.0;
  // Additive decrement applied while write EWMA latency < Thresh_min.
  double write_cost_delta = 0.5;
  // Update cadence for the ADMI adjustment.
  Tick write_cost_period = Milliseconds(1);

  // --- Virtual slots / DRR (§3.5, Algorithm 2) ------------------------------
  // Slot size: the de-facto maximum NVMe-oF IO size.
  uint32_t slot_bytes = 128 * 1024;
  // Slots for a single tenant: minimum outstanding 128K reads that reach the
  // device's full sequential bandwidth.
  uint32_t slots_threshold = 8;
  // DRR quantum added per round (the maximum IO size).
  uint32_t drr_quantum = 128 * 1024;
};

}  // namespace gimbal::core

// --- Mutation testing (tests/mutation_smoke.cc, docs/TESTING.md) -----------
//
// With -DGIMBAL_MUTATIONS=1 the library carries a handful of seeded,
// runtime-selectable off-by-one bugs at the exact invariants the checker
// guards; the mutation-smoke test flips one at a time and asserts the
// checker reports the matching violation. In a normal build GIMBAL_MUT(x)
// is the literal `false`, so every mutation site folds away to the original
// code at compile time.
#ifdef GIMBAL_MUTATIONS
namespace gimbal::mut {
enum class Mutation {
  kNone,
  kCreditLeak,      // initiator issues one IO beyond its credit pool
  kDrrSkew,         // even-numbered tenants earn a 4x DRR quantum
  kBucketOverrun,   // token bucket charges only half the consumed bytes
  kSlotOverrun,     // virtual-slot allotment off by one
  kHealthSkip,      // SSD health machine skips transition validation
  kLockLeak,        // 2PL ReleaseAll forgets the last held lock
  kPhantomUnlock,   // 2PL ReleaseAll reports one lock released twice
  kPlacementCollapse,  // HBA excludes only the exact backend, not its node
  kUplinkLeak,      // ToR uplink accounting drops node 0's bytes
};
inline Mutation g_active = Mutation::kNone;
}  // namespace gimbal::mut
#define GIMBAL_MUT(m) (::gimbal::mut::g_active == ::gimbal::mut::Mutation::m)
#else
#define GIMBAL_MUT(m) false
#endif
