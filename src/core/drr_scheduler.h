// Two-level hierarchical IO scheduler (§3.5, Algorithm 2).
//
// Level 1: deficit round-robin across tenants, with deficits measured in
// cost-weighted bytes (a write IO costs write_cost x size). Tenants whose
// virtual-slot allotment is exhausted move to a *deferred* list: their
// deficit is zeroed and stops accumulating until a slot completes
// (Algorithm 2's active/deferred discipline), which also prevents
// deceptive idleness.
//
// Level 2: within a tenant, client-tagged priority queues are served by
// weighted round-robin (TenantState::Peek/Pop).
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "check/invariants.h"
#include "common/index_arena.h"
#include "core/params.h"
#include "core/virtual_slot.h"
#include "core/write_cost.h"
#include "nvme/types.h"
#include "obs/obs.h"

namespace gimbal::core {

class DrrScheduler {
 public:
  DrrScheduler(const GimbalParams& params, const WriteCostEstimator& cost)
      : params_(params), cost_(cost) {}

  // Ingress: queue a request on its tenant's priority queue.
  void Enqueue(const IoRequest& req);

  // A dequeued request plus the virtual slot it was charged to.
  struct Scheduled {
    IoRequest req;
    uint64_t slot_id = 0;
  };

  // Pick the next request per DRR; returns nullopt when no tenant is
  // eligible (all idle or deferred).
  std::optional<Scheduled> Dequeue();

  // Egress: an IO completed; credits its slot and possibly re-activates a
  // deferred tenant (Algorithm 2, Sched_Complete).
  void OnCompletion(TenantId tenant, uint64_t slot_id);

  // Tenant teardown: removes the tenant from scheduling and returns its
  // still-queued requests (the caller fails them back to the client).
  // IOs already at the device complete normally; the tenant's state is
  // reaped once the last one returns.
  std::vector<IoRequest> Disconnect(TenantId tenant);

  // Device failure (docs/FAULTS.md): drain every tenant's queues and
  // return all still-queued requests, sorted by (tenant, id) for a
  // deterministic fail order. Tenants stay registered — unlike
  // Disconnect() they reconnect to the SSD when it recovers — and slots
  // charged to device-inflight IOs are returned through OnCompletion as
  // their (failed) completions arrive.
  std::vector<IoRequest> DrainAll();

  size_t tenant_count() const { return tenants_.size(); }

  // The backing arena, exposed for churn tests: after a full
  // connect/disconnect/drain cycle tenant_count() must be zero AND every
  // arena slot must be back on the free-list (capacity == free_count), or
  // a slot leaked.
  const common::SlabArena<TenantState>& tenant_arena() const {
    return tenants_;
  }

  // Per-tenant slot allotment: the threshold divided evenly among busy
  // tenants, never below one (§3.5).
  uint32_t AllottedSlots() const {
    uint32_t busy = busy_tenants_ > 0 ? busy_tenants_ : 1;
    uint32_t share = params_.slots_threshold / busy;
    return share > 0 ? share : 1;
  }

  // Total credit granted to a tenant (§3.6): allotted slots x IO count of
  // its most recently completed slot.
  uint32_t CreditFor(TenantId tenant) const;

  TenantState& GetTenant(TenantId id);
  const TenantState* FindTenant(TenantId id) const;
  uint32_t queued_total() const { return queued_total_; }

  // Extension beyond the paper (its future-work "flexible scheduling
  // policies"): per-tenant service weights. A tenant with weight w earns
  // w x the DRR quantum per round, i.e. a w-proportional share of the
  // cost-normalized service. Weight must be > 0; default 1.
  //
  // The weight lives inside TenantState (SetTenantWeight materializes the
  // tenant if needed), so Disconnect reaps it with everything else. The old
  // side `weights_` map leaked: Disconnect() returned early for a tenant
  // that had a weight but never did IO, leaving the entry behind forever.
  void SetTenantWeight(TenantId id, double weight);
  double TenantWeight(TenantId id) const;

  // Robustness counters (also exported as drr.* metrics when observed):
  // Dequeue giving up after kMaxPasses with schedulable work remaining, and
  // completions dropped because their tenant was already reaped.
  uint64_t pass_exhausted() const { return pass_exhausted_; }
  uint64_t orphan_completions() const { return orphan_completions_; }

  // Attach metrics sinks for the robustness counters. Null detaches.
  void AttachObservability(obs::Observability* obs, int ssd_index);

  // Invariant hooks: quantum grants, serves, slot opens and backlog
  // transitions (docs/TESTING.md). Null detaches.
  void AttachChecker(check::InvariantChecker* chk, int ssd_index) {
    chk_ = chk;
    ssd_index_ = ssd_index;
    if (chk_) {
      chk_->ConfigureDrr(ssd_index, params_.drr_quantum, params_.slot_bytes,
                         params_.write_cost_worst);
    }
  }

 private:
  void Activate(TenantState& t);
  void UpdateBusy(TenantState& t);
  // Return a no-longer-needed tenant's slot to the arena.
  void Reap(TenantId id);
  // Grant `rounds` DRR quanta to `t` at once (weight x quantum each),
  // carrying the fractional remainder, and report to the checker.
  void GrantRounds(TenantState& t, uint64_t rounds);
  // Called when a full rotation of the active list produced no service:
  // advance every active tenant by the minimum number of whole rounds that
  // lets at least one of them cover its head-of-line IO. Preserves exact
  // DRR proportions (everyone advances the same round count) while keeping
  // Dequeue O(active) even for weights with weight x quantum << 1.
  void BoostStarvedRound();
  // TryOpenSlot under the current allotment, reporting the new occupancy
  // to the checker.
  bool OpenSlot(TenantState& t);
  // Report whether `t` is eligible for service (queued work and not
  // deferred); the checker measures fairness only across such tenants.
  void NotifyBacklog(TenantState& t) {
    if (chk_) {
      chk_->OnDrrBacklog(t.id(), ssd_index_,
                         t.HasQueued() && !t.in_deferred);
    }
  }
  bool IsBusy(const TenantState& t) const {
    return t.HasQueued() || t.SlotsInUse() > 0;
  }

  const GimbalParams& params_;
  const WriteCostEstimator& cost_;
  // Dense per-tenant state: one arena slot per live tenant, indexed by id.
  // Replaces three parallel unordered_maps (state/weights/busy) whose node
  // churn dominated at 100k-session scale; dispatch now does zero hashing
  // on the hot path (active_ carries stable TenantState pointers).
  common::SlabArena<TenantState> tenants_;
  common::IdIndexMap index_;
  std::deque<TenantState*> active_;
  uint32_t busy_tenants_ = 0;
  uint32_t queued_total_ = 0;
  uint64_t pass_exhausted_ = 0;
  uint64_t orphan_completions_ = 0;
  check::InvariantChecker* chk_ = nullptr;
  int ssd_index_ = -1;
  obs::Counter* m_pass_exhausted_ = nullptr;
  obs::Counter* m_orphan_completions_ = nullptr;
};

}  // namespace gimbal::core
