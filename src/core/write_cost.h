// Dynamic write-cost estimator (§3.4).
//
// write_cost = achieved-read-bandwidth / achieved-write-bandwidth, i.e. how
// many read-equivalents one written byte costs the device. It cannot be read
// from the SSD, so Gimbal calibrates it online in an ADMI
// (Additive-Decrease, Multiplicative-Increase) fashion driven by write
// latency: while writes are absorbed by the device's DRAM buffer (EWMA
// write latency below Thresh_min) the cost decays by delta toward 1; once
// latency rises, it jumps halfway to the datasheet worst case.
#pragma once

#include "common/time.h"
#include "core/params.h"
#include "obs/obs.h"
#include "obs/schema.h"
#include "sim/simulator.h"

namespace gimbal::core {

class WriteCostEstimator {
 public:
  explicit WriteCostEstimator(const GimbalParams& params)
      : params_(params), cost_(params.write_cost_worst) {}

  // Periodic ADMI update (call every write_cost_period) given the current
  // EWMA write latency. No-ops if no writes were observed yet.
  void PeriodicUpdate(double write_ewma_latency_ns) {
    if (write_ewma_latency_ns <= 0) return;
    const double before = cost_;
    if (write_ewma_latency_ns < static_cast<double>(params_.thresh_min)) {
      cost_ -= params_.write_cost_delta;   // additive decrease
      if (cost_ < 1.0) cost_ = 1.0;        // never cheaper than a read
    } else {
      cost_ = (cost_ + params_.write_cost_worst) / 2.0;  // converge to worst
    }
    if (obs_ && cost_ != before) {
      m_cost_->Set(cost_);
      if (obs_sim_) {
        obs_->tracer.Instant(obs_sim_->now(), obs::schema::kEvWriteCost,
                             obs::Labels::Ssd(ssd_index_),
                             {{"cost", cost_}});
      }
    }
  }

  // Attach metrics/trace sinks; `sim` supplies timestamps for wc.update
  // trace events.
  void AttachObservability(obs::Observability* obs, int ssd_index,
                           const sim::Simulator* sim) {
    obs_ = obs;
    obs_sim_ = sim;
    ssd_index_ = ssd_index;
    if (!obs_) return;
    m_cost_ = &obs_->metrics.GetGauge(obs::schema::kWriteCost,
                                      obs::Labels::Ssd(ssd_index_));
    m_cost_->Set(cost_);
  }

  double cost() const { return cost_; }
  double worst() const { return params_.write_cost_worst; }

  // Weighted size used by the virtual-slot DRR scheduler (§3.5).
  uint64_t WeightedBytes(bool is_write, uint64_t bytes) const {
    return is_write ? static_cast<uint64_t>(cost_ * static_cast<double>(bytes))
                    : bytes;
  }

 private:
  const GimbalParams& params_;
  double cost_;

  // Observability (null = not observed).
  obs::Observability* obs_ = nullptr;
  const sim::Simulator* obs_sim_ = nullptr;
  int ssd_index_ = -1;
  obs::Gauge* m_cost_ = nullptr;
};

}  // namespace gimbal::core
