// Virtual slots and per-tenant scheduler state (§3.5, Algorithm 2).
//
// A virtual slot is a group of IOs totalling up to 128 KiB of
// cost-weighted bytes (1 x 128 KiB, 32 x 4 KiB, ...). Slots normalize IO
// cost across sizes/types: a tenant may only have `allotted` slots with
// incomplete IOs, which upper-bounds its share of the SSD's internal
// resources regardless of how it shapes its requests, and fixes the
// deceptive-idleness problem (an allotted slot cannot be stolen).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/params.h"
#include "nvme/types.h"

namespace gimbal::core {

struct VirtualSlot {
  uint64_t id = 0;           // identifies the slot an inflight IO belongs to
  uint32_t submits = 0;      // IOs placed into the slot
  uint32_t completions = 0;  // IOs completed
  uint64_t weighted_bytes = 0;
  bool is_full = false;      // closed: no further IOs may join

  bool Complete() const { return is_full && submits == completions; }
};

// Scheduler-side view of one tenant. Instances live in the scheduler's
// SlabArena and are recycled across connect/disconnect churn: Reset()
// reinitializes every field but keeps the queue/slot buffers' capacity.
class TenantState {
 public:
  explicit TenantState(TenantId id) : id_(id) {}

  // Arena-recycle hook: restore the freshly-constructed state for a new
  // tenant without surrendering heap buffers.
  void Reset(TenantId id) {
    deficit = 0;
    deficit_frac = 0.0;
    in_active = false;
    in_deferred = false;
    new_round = true;
    disconnected = false;
    weight = 1.0;
    busy = false;
    ios_completed = 0;
    bytes_completed = 0;
    id_ = id;
    for (auto& q : queues_) q.clear();
    queued_ = 0;
    rr_cursor_ = 0;
    rr_budget_ = 0;
    slots_.clear();
    next_slot_id_ = 1;
    last_slot_io_count_ = 4;
  }

  TenantId id() const { return id_; }

  // --- Priority queues (§3.5) ----------------------------------------------
  void Enqueue(const IoRequest& req) {
    queues_[static_cast<int>(req.priority)].push_back(req);
    ++queued_;
  }
  bool HasQueued() const { return queued_ > 0; }
  uint32_t queued() const { return queued_; }

  // Peek/pop the next request by weighted round-robin over the priority
  // queues (weights 4/2/1 for high/normal/low).
  const IoRequest& Peek();
  IoRequest Pop();

  // --- Virtual slots --------------------------------------------------------
  // Slots whose IOs have not all completed (open or closed).
  uint32_t SlotsInUse() const {
    return static_cast<uint32_t>(slots_.size());
  }
  bool HasOpenSlot() const {
    return !slots_.empty() && !slots_.back().is_full;
  }
  // Open a new slot if the allotment permits. Returns false when the
  // tenant must move to the deferred list.
  bool TryOpenSlot(uint32_t allotted) {
    if (GIMBAL_MUT(kSlotOverrun)) ++allotted;
    if (SlotsInUse() >= allotted) return false;
    slots_.push_back(VirtualSlot{.id = next_slot_id_++});
    return true;
  }
  // Charge a submitted IO to the open slot; closes it when full. Returns
  // the slot id the IO belongs to (carried alongside the inflight IO so
  // its completion is attributed exactly). `slot_bytes` is the slot
  // capacity (128 KiB).
  uint64_t ChargeSlot(uint64_t weighted_bytes, uint64_t slot_bytes);
  // Discard an open slot that never received an IO (a tenant that went
  // idle right after a slot was opened for it); such a slot would never
  // complete and would pin the tenant "busy" forever.
  void DropEmptyOpenSlot() {
    if (HasOpenSlot() && slots_.back().submits == 0) slots_.pop_back();
  }
  // Close out an open slot whose IOs have all completed, when the tenant
  // has nothing queued to fill it further. Without this a quiescent tenant
  // would hold a never-completing open slot forever, pinning it "busy" and
  // shrinking everyone else's allotment.
  bool ReapQuiescentOpenSlot() {
    if (!HasOpenSlot()) return false;
    VirtualSlot& slot = slots_.back();
    if (slot.submits == 0 || slot.completions < slot.submits) return false;
    last_slot_io_count_ = slot.submits;
    slots_.pop_back();
    return true;
  }
  // Record a completion against slot `slot_id`. Returns true if that
  // completion closed out a (full) slot; the freed slot's IO count is
  // stored as last_slot_io_count for the credit computation (§3.6).
  bool OnCompletion(uint64_t slot_id);

  uint32_t last_slot_io_count() const { return last_slot_io_count_; }

  // Remove and return every queued request (tenant disconnect).
  std::vector<IoRequest> DrainQueues() {
    std::vector<IoRequest> out;
    out.reserve(queued_);
    for (auto& q : queues_) {
      for (auto& r : q) out.push_back(r);
      q.clear();
    }
    queued_ = 0;
    return out;
  }

  // --- DRR state -------------------------------------------------------------
  uint64_t deficit = 0;
  // Sub-byte remainder of the quantum grant, carried across rounds so a
  // weight small enough that weight x quantum < 1 byte still accumulates
  // service instead of truncating to a zero grant forever.
  double deficit_frac = 0.0;
  bool in_active = false;
  bool in_deferred = false;
  bool new_round = true;  // quantum refresh pending at head of round
  bool disconnected = false;  // reaped once the last inflight IO completes

  // Service weight (scheduler extension): a tenant earns weight x quantum
  // per DRR round. Folded into TenantState (rather than a side map) so the
  // dispatch hot path touches exactly one cache line per tenant.
  double weight = 1.0;
  // Whether the tenant currently counts toward the busy-tenant divisor of
  // AllottedSlots() (§3.5). Maintained by DrrScheduler::UpdateBusy.
  bool busy = false;

  // Completed-IO statistics for reporting.
  uint64_t ios_completed = 0;
  uint64_t bytes_completed = 0;

 private:
  TenantId id_;
  std::deque<IoRequest> queues_[kNumPriorities];
  uint32_t queued_ = 0;
  int rr_cursor_ = 0;      // priority queue being served
  int rr_budget_ = 0;      // remaining weight for the cursor queue
  std::vector<VirtualSlot> slots_;  // front = oldest
  uint64_t next_slot_id_ = 1;
  uint32_t last_slot_io_count_ = 4;  // conservative initial credit basis
};

}  // namespace gimbal::core
