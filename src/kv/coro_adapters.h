// C++20 coroutine adapters for the KV store's callback API.
//
// The simulator is single-threaded, so these are thin awaitable shims:
//
//   sim::Task Client(kv::KvDb& db, sim::Simulator& sim) {
//     IoStatus st = co_await kv::AwaitPut(db, 42, 1024, 1);
//     auto [found, value] = co_await kv::AwaitGet(db, 42);
//     auto rows = co_await kv::AwaitScan(db, 0, 10);
//   }
//
// Each awaitable surfaces the op's terminal IoStatus (docs/FAULTS.md):
// AwaitPut returns it; AwaitGet/AwaitScan keep their value-shaped results
// and expose `status()` for callers that care about fault handling.
#pragma once

#include <coroutine>
#include <utility>
#include <vector>

#include "kv/db.h"

namespace gimbal::kv {

// co_await AwaitPut(db, key, bytes, stamp) -> IoStatus (kOk once durable).
class AwaitPut {
 public:
  AwaitPut(KvDb& db, Key key, uint32_t bytes, uint64_t stamp)
      : db_(db), key_(key), bytes_(bytes), stamp_(stamp) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    db_.Put(key_, bytes_, stamp_, [this, h](IoStatus st) {
      status_ = st;
      h.resume();
    });
  }
  IoStatus await_resume() const noexcept { return status_; }

 private:
  KvDb& db_;
  Key key_;
  uint32_t bytes_;
  uint64_t stamp_;
  IoStatus status_ = IoStatus::kOk;
};

// co_await AwaitGet(db, key) -> std::pair<bool, Value>.
class AwaitGet {
 public:
  AwaitGet(KvDb& db, Key key) : db_(db), key_(key) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    db_.Get(key_, [this, h](IoStatus st, bool found, Value v) {
      status_ = st;
      result_ = {found, v};
      h.resume();
    });
  }
  std::pair<bool, Value> await_resume() const noexcept { return result_; }
  IoStatus status() const noexcept { return status_; }

 private:
  KvDb& db_;
  Key key_;
  IoStatus status_ = IoStatus::kOk;
  std::pair<bool, Value> result_{false, Value{}};
};

// co_await AwaitScan(db, start, count) -> std::vector<std::pair<Key,Value>>.
class AwaitScan {
 public:
  AwaitScan(KvDb& db, Key start, uint32_t count)
      : db_(db), start_(start), count_(count) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    db_.Scan(start_, count_, [this, h](IoStatus st, auto results) {
      status_ = st;
      results_ = std::move(results);
      h.resume();
    });
  }
  std::vector<std::pair<Key, Value>> await_resume() noexcept {
    return std::move(results_);
  }
  IoStatus status() const noexcept { return status_; }

 private:
  KvDb& db_;
  Key start_;
  uint32_t count_;
  IoStatus status_ = IoStatus::kOk;
  std::vector<std::pair<Key, Value>> results_;
};

}  // namespace gimbal::kv
