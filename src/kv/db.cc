#include "kv/db.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "obs/schema.h"

namespace gimbal::kv {

KvDb::KvDb(sim::Simulator& sim, Blobstore& blobs, LocalBlobAllocator& alloc,
           KvDbConfig config)
    : sim_(sim), blobs_(blobs), alloc_(alloc), config_(config) {
  levels_.resize(static_cast<size_t>(config_.levels));
}

void KvDb::AttachObservability(obs::Observability* obs, int32_t instance) {
  obs_ = obs;
  instance_ = instance;
  if (!obs_) return;
  const obs::Labels l = obs::Labels::TenantSsd(instance, -1);
  m_wal_retries_ = &obs_->metrics.GetCounter(obs::schema::kKvWalRetries, l);
  m_recoveries_ = &obs_->metrics.GetCounter(obs::schema::kKvRecoveries, l);
}

uint64_t KvDb::BytesAt(int level) const {
  uint64_t total = 0;
  for (const auto& t : levels_[level]) total += t->data_bytes();
  return total;
}

uint64_t KvDb::LevelLimit(int level) const {
  assert(level >= 1);
  double limit = static_cast<double>(config_.level1_bytes);
  for (int l = 1; l < level; ++l) limit *= config_.level_multiplier;
  return static_cast<uint64_t>(limit);
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

void KvDb::Put(Key key, uint32_t value_bytes, uint64_t stamp, PutDone done) {
  ++stats_.puts;
  PutInternal(key, Value{value_bytes, stamp, false}, std::move(done));
}

void KvDb::Delete(Key key, PutDone done) {
  ++stats_.deletes;
  PutInternal(key, Value{0, 0, true}, std::move(done));
}

void KvDb::PutInternal(Key key, const Value& value, PutDone done) {
  if (immutables_.size() >= static_cast<size_t>(config_.max_immutables)) {
    // RocksDB-style write stall: flushes cannot keep up.
    ++stats_.write_stalls;
    stalled_.push_back(StalledPut{key, value, std::move(done)});
    return;
  }
  memtable_.Put(key, value);
  if (config_.wal) {
    AppendWal(key, value, value.bytes + Memtable::kEntryOverhead,
              std::move(done));
  } else if (done) {
    // No WAL: "durable" as soon as it is in memory. Weaker contract by
    // configuration, not a fault path.
    sim_.After(0, [done = std::move(done)]() { done(IoStatus::kOk); });
  }
  if (memtable_.bytes() >= config_.memtable_bytes) RotateMemtable();
}

void KvDb::AppendWal(Key key, const Value& value, uint32_t bytes,
                     PutDone done) {
  wal_batch_bytes_ += bytes;
  wal_batch_records_.emplace_back(key, value);
  if (done) wal_batch_waiters_.push_back(std::move(done));
  MaybeFlushWal();
}

bool KvDb::EnsureWalSpace(uint32_t bytes) {
  if (wal_blob_.valid() && wal_used_ + bytes <= wal_blob_.bytes) return true;
  // After a failed commit the next segment avoids the failed backend; if
  // the exclusion is unsatisfiable (single-backend cluster) fall back to
  // unconstrained placement and let the retry loop ride out the fault.
  auto blob = alloc_.AllocateMicro(wal_avoid_backend_);
  if (!blob && wal_avoid_backend_ >= 0) blob = alloc_.AllocateMicro();
  if (!blob) return false;
  wal_blob_ = *blob;
  wal_used_ = 0;
  wal_blobs_.push_back(*blob);
  if (config_.replicate) {
    auto shadow = alloc_.AllocateMicro(/*exclude_backend=*/blob->backend);
    wal_shadow_ = shadow.value_or(BlobAddr{});
    if (shadow) wal_shadow_blobs_.push_back(*shadow);
  }
  return true;
}

void KvDb::MaybeFlushWal() {
  if (wal_inflight_ || wal_batch_bytes_ == 0) return;
  uint32_t batch = static_cast<uint32_t>(
      std::min<uint64_t>(wal_batch_bytes_, 256 * 1024));
  const uint64_t epoch = epoch_;
  if (!EnsureWalSpace(batch)) {
    // Allocator exhausted (blobs pinned by in-flight flushes): retry soon
    // so group-committed Puts are never stranded.
    sim_.After(Milliseconds(1), [this, epoch]() {
      if (epoch == epoch_) MaybeFlushWal();
    });
    return;
  }
  wal_inflight_ = true;
  ++stats_.wal_writes;
  auto waiters = std::make_shared<std::vector<PutDone>>(
      std::move(wal_batch_waiters_));
  auto records = std::make_shared<std::vector<std::pair<Key, Value>>>(
      std::move(wal_batch_records_));
  wal_batch_waiters_.clear();
  wal_batch_records_.clear();
  const uint64_t batch_bytes = wal_batch_bytes_;
  wal_batch_bytes_ = 0;
  wal_inflight_waiters_ = waiters;  // a crash aborts these (SimulateCrash)

  BlobAddr dst = wal_blob_;
  dst.offset += wal_used_;
  dst.bytes = batch;
  BlobAddr sdst = wal_shadow_;
  if (sdst.valid()) {
    sdst.offset += wal_used_;
    sdst.bytes = batch;
  }
  wal_used_ += batch;

  blobs_.WriteReplicated(
      dst, sdst, config_.wal_priority,
      [this, waiters, records, dst, batch_bytes, epoch](IoStatus st) {
        if (epoch != epoch_) return;  // crash already failed the waiters
        wal_inflight_ = false;
        wal_inflight_waiters_.reset();
        if (st == IoStatus::kOk) {
          // Durable (possibly degraded to one replica — the dirty ledger
          // tracks the missing copy). Commit the records and ack.
          wal_retry_attempts_ = 0;
          wal_avoid_backend_ = -1;
          for (auto& r : *records) wal_records_.push_back(r);
          for (auto& w : *waiters) {
            if (w) w(IoStatus::kOk);
          }
          MaybeFlushWal();  // group-commit the batch accumulated meanwhile
          return;
        }
        if (st == IoStatus::kAborted) {
          // Teardown mid-commit: the batch was never acked; fail it so
          // closed-loop clients unwind instead of waiting forever.
          stats_.aborted_ops += waiters->size();
          for (auto& w : *waiters) {
            if (w) w(IoStatus::kAborted);
          }
          return;
        }
        // Both replicas failed. The ack is HELD — the batch goes back to
        // the head of the queue, the failed segment is abandoned so the
        // next attempt gets fresh placement off the failed backend, and we
        // retry under capped backoff. No acked write is ever lost because
        // no ack ever precedes a durable copy.
        ++stats_.wal_retries;
        if (m_wal_retries_) m_wal_retries_->Add();
        if (obs_) {
          obs_->tracer.Instant(
              sim_.now(), obs::schema::kEvKvWalRetry,
              obs::Labels::TenantSsd(instance_, dst.backend),
              {{"attempt", static_cast<double>(wal_retry_attempts_ + 1)},
               {"status", static_cast<double>(st)}});
        }
        wal_batch_waiters_.insert(wal_batch_waiters_.begin(),
                                  std::make_move_iterator(waiters->begin()),
                                  std::make_move_iterator(waiters->end()));
        wal_batch_records_.insert(wal_batch_records_.begin(), records->begin(),
                                  records->end());
        wal_batch_bytes_ += batch_bytes;
        wal_avoid_backend_ = dst.backend;
        wal_blob_ = BlobAddr{};
        wal_shadow_ = BlobAddr{};
        wal_used_ = 0;
        const Tick backoff =
            blobs_.RetryBackoff(dst.backend, ++wal_retry_attempts_);
        sim_.After(backoff > 0 ? backoff : 1, [this, epoch]() {
          if (epoch == epoch_) MaybeFlushWal();
        });
      });
}

void KvDb::RotateMemtable() {
  Immutable imm;
  imm.table = std::make_shared<Memtable>(std::move(memtable_));
  imm.wal_blobs = std::move(wal_blobs_);
  imm.wal_shadow_blobs = std::move(wal_shadow_blobs_);
  imm.wal_records = std::move(wal_records_);
  memtable_ = Memtable{};
  wal_blobs_.clear();
  wal_shadow_blobs_.clear();
  wal_records_.clear();
  wal_blob_ = BlobAddr{};
  wal_shadow_ = BlobAddr{};
  wal_used_ = 0;
  immutables_.push_back(std::move(imm));
  MaybeStartFlush();
}

void KvDb::AllocatePlacement(SsTable& table) {
  const uint32_t micro = 256 * 1024;
  uint64_t need = table.data_bytes();
  while (need > 0) {
    auto primary = alloc_.AllocateMicro();
    assert(primary && "blobstore out of space");
    table.primary_blobs.push_back(*primary);
    if (config_.replicate) {
      auto shadow = alloc_.AllocateMicro(primary->backend);
      if (shadow) table.shadow_blobs.push_back(*shadow);
    }
    need = need > micro ? need - micro : 0;
  }
}

void KvDb::FreePlacement(const SsTable& table) {
  // TRIM before returning the blobs to the allocator: the SSD's GC stops
  // relocating the dead table data, which keeps write amplification down
  // under compaction churn.
  for (const auto& b : table.primary_blobs) {
    blobs_.Trim(b);
    alloc_.FreeMicro(b);
  }
  for (const auto& b : table.shadow_blobs) {
    blobs_.Trim(b);
    alloc_.FreeMicro(b);
  }
}

void KvDb::WriteTables(
    std::vector<std::pair<Key, Value>> entries,
    std::function<void(std::vector<SsTableRef>)> install) {
  auto outputs = std::make_shared<std::vector<SsTableRef>>();
  // Chunk sorted entries into target-sized tables.
  std::vector<std::pair<Key, Value>> chunk;
  uint64_t chunk_bytes = 0;
  auto flush_chunk = [&]() {
    if (chunk.empty()) return;
    auto table = std::make_shared<SsTable>(next_table_id_++, std::move(chunk));
    AllocatePlacement(*table);
    outputs->push_back(std::move(table));
    chunk = {};
    chunk_bytes = 0;
  };
  for (auto& e : entries) {
    chunk_bytes += e.second.bytes + Memtable::kEntryOverhead;
    chunk.push_back(std::move(e));
    if (chunk_bytes >= config_.sstable_target_bytes) flush_chunk();
  }
  flush_chunk();

  // Gather all blob writes and issue them with bounded parallelism.
  struct WriteJob {
    BlobAddr primary, shadow;
  };
  auto jobs = std::make_shared<std::vector<WriteJob>>();
  for (const auto& t : *outputs) {
    for (size_t i = 0; i < t->primary_blobs.size(); ++i) {
      WriteJob j;
      j.primary = t->primary_blobs[i];
      j.shadow = i < t->shadow_blobs.size() ? t->shadow_blobs[i] : BlobAddr{};
      stats_.compaction_write_bytes += j.primary.bytes;
      jobs->push_back(j);
    }
  }
  const uint64_t epoch = epoch_;
  if (jobs->empty()) {
    sim_.After(0, [outputs, install = std::move(install)]() {
      install(*outputs);
    });
    return;
  }
  auto next = std::make_shared<size_t>(0);
  auto inflight = std::make_shared<int>(0);
  // The stored pipeline functions capture only weak self-references —
  // strong references ride in the in-flight completions — so the pipeline
  // state frees itself once the last IO completes instead of living in a
  // shared_ptr cycle.
  auto pump = std::make_shared<std::function<void()>>();
  auto submit = std::make_shared<std::function<void(WriteJob, int)>>();
  *submit = [this, jobs, next, inflight, outputs, install,
             wpump = std::weak_ptr<std::function<void()>>(pump),
             wsubmit = std::weak_ptr<std::function<void(WriteJob, int)>>(
                 submit),
             epoch](WriteJob j, int attempts) {
    auto pump_s = wpump.lock();
    auto submit_s = wsubmit.lock();
    blobs_.WriteReplicated(
        j.primary, j.shadow, config_.background_priority,
        [this, j, attempts, jobs, next, inflight, outputs, install, pump_s,
         submit_s, epoch](IoStatus st) {
          if (epoch != epoch_) return;  // the job died with the process
          if (st != IoStatus::kOk && st != IoStatus::kAborted) {
            // Both replicas failed. Rewrite the same pair after backoff:
            // the shadow is placed off the primary's backend, so one
            // recovered SSD is enough to land it (degraded + ledger).
            ++stats_.write_job_retries;
            const Tick backoff =
                blobs_.RetryBackoff(j.primary.backend, attempts + 1);
            sim_.After(backoff > 0 ? backoff : 1,
                       [this, submit_s, pump_s, j, attempts, epoch]() {
                         if (epoch != epoch_) return;
                         (*submit_s)(j, attempts + 1);
                       });
            return;
          }
          // kOk, or kAborted at teardown — either way the pipeline drains.
          --*inflight;
          if (*next >= jobs->size() && *inflight == 0) {
            install(*outputs);
            return;
          }
          (*pump_s)();
        });
  };
  *pump = [this, jobs, next, inflight,
           wsubmit =
               std::weak_ptr<std::function<void(WriteJob, int)>>(submit)]() {
    auto submit_s = wsubmit.lock();
    while (*next < jobs->size() && *inflight < config_.compaction_io_depth) {
      WriteJob j = (*jobs)[(*next)++];
      ++*inflight;
      (*submit_s)(j, 0);
    }
  };
  (*pump)();
}

void KvDb::MaybeStartFlush() {
  if (flush_active_ || immutables_.empty()) return;
  flush_active_ = true;
  ++stats_.flushes;
  const uint64_t epoch = epoch_;
  // Oldest immutable flushes first (ordering matters for recency).
  std::shared_ptr<Memtable> imm = immutables_.front().table;
  WriteTables(imm->Sorted(), [this, epoch](std::vector<SsTableRef> tables) {
    if (epoch != epoch_) return;  // crashed mid-flush: L0 never installed
    for (auto& t : tables) levels_[0].push_back(t);
    // WAL of the flushed memtable is obsolete: trim + free.
    for (const auto& b : immutables_.front().wal_blobs) {
      blobs_.Trim(b);
      alloc_.FreeMicro(b);
    }
    for (const auto& b : immutables_.front().wal_shadow_blobs) {
      blobs_.Trim(b);
      alloc_.FreeMicro(b);
    }
    immutables_.pop_front();
    flush_active_ = false;
    DrainStalled();
    MaybeStartFlush();
    MaybeCompact();
  });
}

void KvDb::DrainStalled() {
  while (!stalled_.empty() &&
         immutables_.size() < static_cast<size_t>(config_.max_immutables)) {
    StalledPut p = std::move(stalled_.front());
    stalled_.pop_front();
    PutInternal(p.key, p.value, std::move(p.done));
  }
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

std::vector<std::pair<Key, Value>> KvDb::MergeInputs(
    const std::vector<SsTableRef>& inputs, bool to_bottom) const {
  // Collect (key, recency, value); newest wins.
  struct Tagged {
    Key key;
    uint64_t recency;
    Value value;
  };
  std::vector<Tagged> all;
  for (const auto& t : inputs) {
    for (const auto& [k, v] : t->entries()) {
      all.push_back(Tagged{k, t->id(), v});
    }
  }
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.recency > b.recency;
  });
  std::vector<std::pair<Key, Value>> merged;
  merged.reserve(all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    if (i > 0 && all[i].key == all[i - 1].key) continue;  // older version
    if (to_bottom && all[i].value.tombstone) continue;    // drop tombstones
    merged.emplace_back(all[i].key, all[i].value);
  }
  return merged;
}

void KvDb::MaybeCompact() {
  if (compaction_active_) return;
  if (levels_[0].size() >=
      static_cast<size_t>(config_.l0_compaction_trigger)) {
    CompactIntoNext(0);
    return;
  }
  for (int l = 1; l + 1 < config_.levels; ++l) {
    if (BytesAt(l) > LevelLimit(l)) {
      CompactIntoNext(l);
      return;
    }
  }
}

void KvDb::CompactIntoNext(int level) {
  compaction_active_ = true;
  ++stats_.compactions;
  const int next_level = level + 1;
  const uint64_t epoch = epoch_;

  // Choose inputs: all of L0 (ranges overlap), or one file from Ln picked
  // round-robin.
  std::vector<SsTableRef> upper;
  if (level == 0) {
    upper = levels_[0];
  } else {
    auto& files = levels_[level];
    upper.push_back(files[static_cast<size_t>(compact_cursor_) % files.size()]);
    ++compact_cursor_;
  }
  Key lo = upper.front()->min_key(), hi = upper.front()->max_key();
  for (const auto& t : upper) {
    lo = std::min(lo, t->min_key());
    hi = std::max(hi, t->max_key());
  }
  std::vector<SsTableRef> lower;
  for (const auto& t : levels_[next_level]) {
    if (t->max_key() >= lo && t->min_key() <= hi) lower.push_back(t);
  }

  std::vector<SsTableRef> inputs = upper;
  inputs.insert(inputs.end(), lower.begin(), lower.end());

  // Read every input blob (the merge scan), bounded parallelism, then
  // write the merged outputs and swap the manifest.
  auto addrs = std::make_shared<std::vector<std::pair<BlobAddr, BlobAddr>>>();
  for (const auto& t : inputs) {
    for (size_t i = 0; i < t->primary_blobs.size(); ++i) {
      BlobAddr s =
          i < t->shadow_blobs.size() ? t->shadow_blobs[i] : BlobAddr{};
      addrs->emplace_back(t->primary_blobs[i], s);
      stats_.compaction_read_bytes += t->primary_blobs[i].bytes;
    }
  }
  bool to_bottom = next_level == config_.levels - 1;
  auto finish_reads = [this, inputs, upper, lower, level, next_level,
                       to_bottom, epoch]() {
    if (epoch != epoch_) return;  // crashed: compaction abandoned
    std::vector<std::pair<Key, Value>> merged = MergeInputs(inputs, to_bottom);
    if (merged.empty()) {
      // Everything was tombstones: just drop the inputs.
      for (const auto& t : upper) FreePlacement(*t);
      for (const auto& t : lower) FreePlacement(*t);
      auto gone = [&](const SsTableRef& t) {
        for (const auto& u : upper) {
          if (u == t) return true;
        }
        for (const auto& d : lower) {
          if (d == t) return true;
        }
        return false;
      };
      auto& up = levels_[level];
      up.erase(std::remove_if(up.begin(), up.end(), gone), up.end());
      auto& down = levels_[next_level];
      down.erase(std::remove_if(down.begin(), down.end(), gone), down.end());
      compaction_active_ = false;
      MaybeCompact();
      return;
    }
    WriteTables(std::move(merged), [this, upper, lower, level, next_level,
                                    epoch](std::vector<SsTableRef> outputs) {
      if (epoch != epoch_) return;  // crashed: outputs never installed
      auto gone = [&](const SsTableRef& t) {
        for (const auto& u : upper) {
          if (u == t) return true;
        }
        for (const auto& d : lower) {
          if (d == t) return true;
        }
        return false;
      };
      auto& up = levels_[level];
      up.erase(std::remove_if(up.begin(), up.end(), gone), up.end());
      auto& down = levels_[next_level];
      down.erase(std::remove_if(down.begin(), down.end(), gone), down.end());
      for (auto& t : outputs) down.push_back(t);
      std::sort(down.begin(), down.end(),
                [](const SsTableRef& a, const SsTableRef& b) {
                  return a->min_key() < b->min_key();
                });
      for (const auto& t : upper) FreePlacement(*t);
      for (const auto& t : lower) FreePlacement(*t);
      compaction_active_ = false;
      MaybeCompact();
    });
  };

  if (addrs->empty()) {
    sim_.After(0, finish_reads);
    return;
  }
  auto next = std::make_shared<size_t>(0);
  auto inflight = std::make_shared<int>(0);
  auto worst = std::make_shared<IoStatus>(IoStatus::kOk);
  // Weak self-reference in the stored function; strong refs live in the
  // in-flight read completions (see WriteTables for the pattern).
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [this, addrs, next, inflight, worst, finish_reads,
           wpump = std::weak_ptr<std::function<void()>>(pump), epoch]() {
    auto pump_s = wpump.lock();
    while (*next < addrs->size() && *inflight < config_.compaction_io_depth) {
      auto [p, s] = (*addrs)[(*next)++];
      ++*inflight;
      blobs_.ReadBalanced(
          p, s, config_.background_priority,
          [this, addrs, next, inflight, worst, finish_reads, pump_s,
           epoch](IoStatus st) {
            if (epoch != epoch_) return;  // crashed: compaction abandoned
            // kAborted is teardown, not a data fault — let the scan drain.
            if (st != IoStatus::kOk && st != IoStatus::kAborted &&
                *worst == IoStatus::kOk) {
              *worst = st;
            }
            --*inflight;
            if (*next >= addrs->size() && *inflight == 0) {
              if (*worst != IoStatus::kOk) {
                // A merge-scan read exhausted its failover budget: abort
                // this compaction cleanly and re-attempt after backoff.
                // Inputs stay installed, so reads are unaffected.
                ++stats_.compaction_read_retries;
                compaction_active_ = false;
                const Tick backoff = blobs_.RetryBackoff(
                    addrs->front().first.backend, ++compaction_retry_attempts_);
                sim_.After(backoff > 0 ? backoff : 1, [this, epoch]() {
                  if (epoch == epoch_) MaybeCompact();
                });
                return;
              }
              compaction_retry_attempts_ = 0;
              finish_reads();
              return;
            }
            (*pump_s)();
          });
    }
  };
  (*pump)();
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

void KvDb::Get(Key key, GetDone done) {
  ++stats_.gets;
  const uint64_t epoch = epoch_;
  auto shared_done = std::make_shared<GetDone>(std::move(done));
  auto respond = [this, shared_done, epoch](IoStatus st, bool found, Value v) {
    if (epoch != epoch_) {  // the process died while the op was in flight
      ++stats_.aborted_ops;
      st = IoStatus::kAborted;
      found = false;
      v = Value{};
    }
    if (found) ++stats_.gets_found;
    sim_.After(0, [st, found, v, shared_done]() {
      if (*shared_done) (*shared_done)(st, found, v);
    });
  };
  // Memory hits: memtable, then immutables newest-first.
  if (auto v = memtable_.Get(key)) {
    ++stats_.memory_hits;
    respond(IoStatus::kOk, !v->tombstone, *v);
    return;
  }
  for (auto it = immutables_.rbegin(); it != immutables_.rend(); ++it) {
    if (auto v = it->table->Get(key)) {
      ++stats_.memory_hits;
      respond(IoStatus::kOk, !v->tombstone, *v);
      return;
    }
  }

  // Candidate SSTables: L0 newest-first, then one file per deeper level.
  auto candidates = std::make_shared<std::vector<SsTableRef>>();
  for (auto it = levels_[0].rbegin(); it != levels_[0].rend(); ++it) {
    if ((*it)->MayContain(key)) candidates->push_back(*it);
  }
  for (int l = 1; l < config_.levels; ++l) {
    const auto& files = levels_[l];
    auto it = std::lower_bound(files.begin(), files.end(), key,
                               [](const SsTableRef& t, Key k) {
                                 return t->max_key() < k;
                               });
    if (it != files.end() && (*it)->MayContain(key)) {
      candidates->push_back(*it);
    }
  }
  if (candidates->empty()) {
    respond(IoStatus::kOk, false, Value{});
    return;
  }

  // Probe candidates in recency order; each probe costs one data-block IO.
  // The stored function holds only a weak self-reference; the in-flight
  // read completion carries the strong one, so the probe chain frees
  // itself when the last hop resolves.
  auto probe = std::make_shared<std::function<void(size_t)>>();
  *probe = [this, candidates,
            wprobe = std::weak_ptr<std::function<void(size_t)>>(probe),
            respond, key](size_t i) {
    if (i >= candidates->size()) {
      respond(IoStatus::kOk, false, Value{});
      return;
    }
    SsTableRef t = (*candidates)[i];
    uint64_t off = t->BlockOffsetOf(key);
    auto [p, s] = t->BlobForOffset(off, 4096);
    ++stats_.data_block_reads;
    auto probe_s = wprobe.lock();
    blobs_.ReadBalanced(p, s, config_.read_priority,
                        [t, key, probe_s, i, respond](IoStatus st) {
                          if (st != IoStatus::kOk) {
                            // Failover budget exhausted (or teardown):
                            // surface the fault instead of inventing a
                            // not-found.
                            respond(st, false, Value{});
                            return;
                          }
                          auto v = t->Lookup(key);
                          if (v) {
                            respond(IoStatus::kOk, !v->tombstone,
                                    v->tombstone ? Value{} : *v);
                            return;
                          }
                          (*probe_s)(i + 1);  // bloom false positive
                        });
  };
  (*probe)(0);
}

void KvDb::Scan(Key start, uint32_t count, ScanDone done) {
  ++stats_.scans;
  const uint64_t epoch = epoch_;
  // Merge the live view of [start, ...): newest source wins per key.
  // Memtable recency > immutables (newest-first) > tables by id.
  std::map<Key, std::pair<uint64_t, Value>> merged;  // key -> (recency, v)
  auto offer = [&](Key k, uint64_t recency, const Value& v) {
    auto it = merged.find(k);
    if (it == merged.end() || it->second.first < recency) {
      merged[k] = {recency, v};
    }
  };
  constexpr uint64_t kMemRecency = UINT64_MAX;
  {
    auto snap = memtable_.Sorted();
    auto it = std::lower_bound(
        snap.begin(), snap.end(), start,
        [](const auto& e, Key k) { return e.first < k; });
    for (uint32_t n = 0; it != snap.end() && n < count; ++it, ++n) {
      offer(it->first, kMemRecency, it->second);
    }
  }
  uint64_t imm_recency = kMemRecency - 1;
  for (auto imm = immutables_.rbegin(); imm != immutables_.rend(); ++imm) {
    auto snap = imm->table->Sorted();
    auto it = std::lower_bound(
        snap.begin(), snap.end(), start,
        [](const auto& e, Key k) { return e.first < k; });
    for (uint32_t n = 0; it != snap.end() && n < count; ++it, ++n) {
      offer(it->first, imm_recency, it->second);
    }
    --imm_recency;
  }

  // Overlapping SSTables contribute entries and cost IO proportional to
  // the bytes scanned in each.
  uint32_t block_reads = 0;
  std::vector<std::pair<BlobAddr, BlobAddr>> ios;
  for (int l = 0; l < config_.levels; ++l) {
    for (const auto& t : levels_[l]) {
      if (t->max_key() < start) continue;
      const auto& entries = t->entries();
      auto it = std::lower_bound(
          entries.begin(), entries.end(), start,
          [](const auto& e, Key k) { return e.first < k; });
      if (it == entries.end()) continue;
      uint64_t touched = 0;
      for (uint32_t n = 0; it != entries.end() && n < count; ++it, ++n) {
        offer(it->first, t->id(), it->second);
        touched += it->second.bytes + Memtable::kEntryOverhead;
      }
      // One 256 KiB streaming read per touched chunk.
      uint64_t off = t->BlockOffsetOf(start);
      for (uint64_t done_bytes = 0; done_bytes < touched;
           done_bytes += 256 * 1024) {
        auto [p, s] = t->BlobForOffset(
            std::min<uint64_t>(off + done_bytes,
                               t->data_bytes() > 0 ? t->data_bytes() - 1 : 0),
            static_cast<uint32_t>(
                std::min<uint64_t>(256 * 1024, touched - done_bytes)));
        ios.emplace_back(p, s);
        ++block_reads;
      }
    }
  }
  stats_.scan_block_reads += block_reads;

  // Assemble results: first `count` live keys.
  auto results = std::make_shared<std::vector<std::pair<Key, Value>>>();
  for (const auto& [k, rv] : merged) {
    if (rv.second.tombstone) continue;
    results->push_back({k, rv.second});
    if (results->size() >= count) break;
  }

  auto shared_done = std::make_shared<ScanDone>(std::move(done));
  if (ios.empty()) {
    sim_.After(0, [results, shared_done]() {
      if (*shared_done) (*shared_done)(IoStatus::kOk, std::move(*results));
    });
    return;
  }
  auto remaining = std::make_shared<size_t>(ios.size());
  auto worst = std::make_shared<IoStatus>(IoStatus::kOk);
  for (auto& [p, s] : ios) {
    blobs_.ReadBalanced(
        p, s, config_.read_priority,
        [this, remaining, worst, results, shared_done, epoch](IoStatus st) {
          if (st != IoStatus::kOk && *worst == IoStatus::kOk) *worst = st;
          if (--*remaining > 0) return;
          IoStatus final_st = *worst;
          if (epoch != epoch_) {  // crashed mid-scan
            ++stats_.aborted_ops;
            final_st = IoStatus::kAborted;
            results->clear();
          }
          if (*shared_done) (*shared_done)(final_st, std::move(*results));
        });
  }
}

// ---------------------------------------------------------------------------
// Crash / recovery
// ---------------------------------------------------------------------------

void KvDb::SimulateCrash() {
  ++epoch_;
  ++stats_.crashes;
  // Collapse every surviving WAL segment — immutables oldest-first, then
  // the active memtable's — into one durable list for Recover(). The
  // SSTable manifest (levels_) models durable metadata and survives.
  std::vector<BlobAddr> blobs;
  std::vector<BlobAddr> shadows;
  std::vector<std::pair<Key, Value>> records;
  for (auto& imm : immutables_) {
    blobs.insert(blobs.end(), imm.wal_blobs.begin(), imm.wal_blobs.end());
    shadows.insert(shadows.end(), imm.wal_shadow_blobs.begin(),
                   imm.wal_shadow_blobs.end());
    records.insert(records.end(), imm.wal_records.begin(),
                   imm.wal_records.end());
  }
  blobs.insert(blobs.end(), wal_blobs_.begin(), wal_blobs_.end());
  shadows.insert(shadows.end(), wal_shadow_blobs_.begin(),
                 wal_shadow_blobs_.end());
  records.insert(records.end(), wal_records_.begin(), wal_records_.end());
  memtable_ = Memtable{};
  immutables_.clear();
  wal_blobs_ = std::move(blobs);
  wal_shadow_blobs_ = std::move(shadows);
  wal_records_ = std::move(records);
  wal_blob_ = BlobAddr{};  // never append into pre-crash durable bytes
  wal_shadow_ = BlobAddr{};
  wal_used_ = 0;

  // Un-acked work dies with the process: the batch on the wire, the batch
  // still queueing, and stalled writers all fail kAborted. Callbacks fire
  // from the event loop, not mid-crash, so clients re-enter a consistent
  // DB.
  std::vector<PutDone> aborted;
  if (wal_inflight_waiters_) {
    for (auto& w : *wal_inflight_waiters_) aborted.push_back(std::move(w));
    wal_inflight_waiters_->clear();
    wal_inflight_waiters_.reset();
  }
  for (auto& w : wal_batch_waiters_) aborted.push_back(std::move(w));
  wal_batch_waiters_.clear();
  wal_batch_records_.clear();
  wal_batch_bytes_ = 0;
  wal_inflight_ = false;
  wal_retry_attempts_ = 0;
  wal_avoid_backend_ = -1;
  for (auto& p : stalled_) aborted.push_back(std::move(p.done));
  stalled_.clear();
  stats_.aborted_ops += aborted.size();
  if (!aborted.empty()) {
    sim_.After(0, [aborted = std::make_shared<std::vector<PutDone>>(
                       std::move(aborted))]() {
      for (auto& w : *aborted) {
        if (w) w(IoStatus::kAborted);
      }
    });
  }

  // In-flight flush/compaction continuations are epoch-guarded and never
  // land; their allocated output blobs leak until teardown, like a real
  // crash leaks orphan files until GC.
  flush_active_ = false;
  compaction_active_ = false;
  compaction_retry_attempts_ = 0;
}

void KvDb::Recover(PutDone done) {
  ++stats_.recoveries;
  if (m_recoveries_) m_recoveries_->Add();
  const uint64_t epoch = epoch_;
  // Snapshot the segment list before replay: replay can rotate the
  // memtable, which moves wal_blobs_ into a fresh immutable.
  const std::vector<BlobAddr> rblobs = wal_blobs_;
  const std::vector<BlobAddr> rshadows = wal_shadow_blobs_;
  // Replay applies synchronously in commit order (last writer wins), so
  // recovered state is visible to the very next operation; the reads
  // below pay the recovery IO in simulated time.
  stats_.replayed_records += wal_records_.size();
  if (obs_) {
    obs_->tracer.Instant(
        sim_.now(), obs::schema::kEvKvRecover,
        obs::Labels::TenantSsd(instance_, -1),
        {{"records", static_cast<double>(wal_records_.size())},
         {"segments", static_cast<double>(rblobs.size())}});
  }
  for (const auto& [k, v] : wal_records_) {
    memtable_.Put(k, v);
  }
  if (memtable_.bytes() >= config_.memtable_bytes) RotateMemtable();

  auto shared_done = std::make_shared<PutDone>(std::move(done));
  if (rblobs.empty()) {
    sim_.After(0, [shared_done]() {
      if (*shared_done) (*shared_done)(IoStatus::kOk);
    });
    return;
  }
  auto remaining = std::make_shared<size_t>(rblobs.size());
  auto worst = std::make_shared<IoStatus>(IoStatus::kOk);
  for (size_t i = 0; i < rblobs.size(); ++i) {
    const BlobAddr p = rblobs[i];
    const BlobAddr s = i < rshadows.size() ? rshadows[i] : BlobAddr{};
    blobs_.ReadBalanced(
        p, s, config_.read_priority,
        [remaining, worst, shared_done, epoch, this](IoStatus st) {
          if (st != IoStatus::kOk && *worst == IoStatus::kOk) *worst = st;
          if (--*remaining > 0) return;
          const IoStatus final_st =
              epoch != epoch_ ? IoStatus::kAborted : *worst;
          if (*shared_done) (*shared_done)(final_st);
        });
  }
}

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

void KvDb::BulkLoad(uint64_t keys, uint32_t value_bytes) {
  std::vector<std::pair<Key, Value>> chunk;
  uint64_t chunk_bytes = 0;
  int bottom = config_.levels - 1;
  for (uint64_t k = 0; k < keys; ++k) {
    chunk.emplace_back(k, Value{value_bytes, 0, false});
    chunk_bytes += value_bytes + Memtable::kEntryOverhead;
    if (chunk_bytes >= config_.sstable_target_bytes || k + 1 == keys) {
      auto table =
          std::make_shared<SsTable>(next_table_id_++, std::move(chunk));
      AllocatePlacement(*table);
      levels_[static_cast<size_t>(bottom)].push_back(table);
      chunk = {};
      chunk_bytes = 0;
    }
  }
}

}  // namespace gimbal::kv
