#include "kv/db.h"

#include <algorithm>
#include <map>
#include <cassert>

namespace gimbal::kv {

KvDb::KvDb(sim::Simulator& sim, Blobstore& blobs, LocalBlobAllocator& alloc,
           KvDbConfig config)
    : sim_(sim), blobs_(blobs), alloc_(alloc), config_(config) {
  levels_.resize(static_cast<size_t>(config_.levels));
}

uint64_t KvDb::BytesAt(int level) const {
  uint64_t total = 0;
  for (const auto& t : levels_[level]) total += t->data_bytes();
  return total;
}

uint64_t KvDb::LevelLimit(int level) const {
  assert(level >= 1);
  double limit = static_cast<double>(config_.level1_bytes);
  for (int l = 1; l < level; ++l) limit *= config_.level_multiplier;
  return static_cast<uint64_t>(limit);
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

void KvDb::Put(Key key, uint32_t value_bytes, uint64_t stamp, PutDone done) {
  ++stats_.puts;
  PutInternal(key, Value{value_bytes, stamp, false}, std::move(done));
}

void KvDb::Delete(Key key, PutDone done) {
  ++stats_.deletes;
  PutInternal(key, Value{0, 0, true}, std::move(done));
}

void KvDb::PutInternal(Key key, const Value& value, PutDone done) {
  if (immutables_.size() >= static_cast<size_t>(config_.max_immutables)) {
    // RocksDB-style write stall: flushes cannot keep up.
    ++stats_.write_stalls;
    stalled_.push_back(StalledPut{key, value, std::move(done)});
    return;
  }
  memtable_.Put(key, value);
  if (config_.wal) {
    AppendWal(value.bytes + Memtable::kEntryOverhead, std::move(done));
  } else if (done) {
    sim_.After(0, std::move(done));
  }
  if (memtable_.bytes() >= config_.memtable_bytes) RotateMemtable();
}

void KvDb::AppendWal(uint32_t bytes, PutDone done) {
  wal_batch_bytes_ += bytes;
  if (done) wal_batch_waiters_.push_back(std::move(done));
  MaybeFlushWal();
}

bool KvDb::EnsureWalSpace(uint32_t bytes) {
  if (wal_blob_.valid() && wal_used_ + bytes <= wal_blob_.bytes) return true;
  auto blob = alloc_.AllocateMicro();
  if (!blob) return false;
  wal_blob_ = *blob;
  wal_used_ = 0;
  wal_blobs_.push_back(*blob);
  if (config_.replicate) {
    auto shadow = alloc_.AllocateMicro(/*exclude_backend=*/blob->backend);
    wal_shadow_ = shadow.value_or(BlobAddr{});
    if (shadow) wal_shadow_blobs_.push_back(*shadow);
  }
  return true;
}

void KvDb::MaybeFlushWal() {
  if (wal_inflight_ || wal_batch_bytes_ == 0) return;
  uint32_t batch = static_cast<uint32_t>(
      std::min<uint64_t>(wal_batch_bytes_, 256 * 1024));
  if (!EnsureWalSpace(batch)) {
    // Allocator exhausted (blobs pinned by in-flight flushes): retry soon
    // so group-committed Puts are never stranded.
    sim_.After(Milliseconds(1), [this]() { MaybeFlushWal(); });
    return;
  }
  wal_inflight_ = true;
  ++stats_.wal_writes;
  auto waiters = std::make_shared<std::vector<PutDone>>(
      std::move(wal_batch_waiters_));
  wal_batch_waiters_.clear();
  wal_batch_bytes_ = 0;

  BlobAddr dst = wal_blob_;
  dst.offset += wal_used_;
  dst.bytes = batch;
  BlobAddr sdst = wal_shadow_;
  if (sdst.valid()) {
    sdst.offset += wal_used_;
    sdst.bytes = batch;
  }
  wal_used_ += batch;

  blobs_.WriteReplicated(dst, sdst, config_.wal_priority, [this, waiters]() {
    wal_inflight_ = false;
    for (auto& w : *waiters) {
      if (w) w();
    }
    MaybeFlushWal();  // group-commit the batch that accumulated meanwhile
  });
}

void KvDb::RotateMemtable() {
  Immutable imm;
  imm.table = std::make_shared<Memtable>(std::move(memtable_));
  imm.wal_blobs = std::move(wal_blobs_);
  imm.wal_shadow_blobs = std::move(wal_shadow_blobs_);
  memtable_ = Memtable{};
  wal_blobs_.clear();
  wal_shadow_blobs_.clear();
  wal_blob_ = BlobAddr{};
  wal_shadow_ = BlobAddr{};
  wal_used_ = 0;
  immutables_.push_back(std::move(imm));
  MaybeStartFlush();
}

void KvDb::AllocatePlacement(SsTable& table) {
  const uint32_t micro = 256 * 1024;
  uint64_t need = table.data_bytes();
  while (need > 0) {
    auto primary = alloc_.AllocateMicro();
    assert(primary && "blobstore out of space");
    table.primary_blobs.push_back(*primary);
    if (config_.replicate) {
      auto shadow = alloc_.AllocateMicro(primary->backend);
      if (shadow) table.shadow_blobs.push_back(*shadow);
    }
    need = need > micro ? need - micro : 0;
  }
}

void KvDb::FreePlacement(const SsTable& table) {
  // TRIM before returning the blobs to the allocator: the SSD's GC stops
  // relocating the dead table data, which keeps write amplification down
  // under compaction churn.
  for (const auto& b : table.primary_blobs) {
    blobs_.Trim(b);
    alloc_.FreeMicro(b);
  }
  for (const auto& b : table.shadow_blobs) {
    blobs_.Trim(b);
    alloc_.FreeMicro(b);
  }
}

void KvDb::WriteTables(
    std::vector<std::pair<Key, Value>> entries,
    std::function<void(std::vector<SsTableRef>)> install) {
  auto outputs = std::make_shared<std::vector<SsTableRef>>();
  // Chunk sorted entries into target-sized tables.
  std::vector<std::pair<Key, Value>> chunk;
  uint64_t chunk_bytes = 0;
  auto flush_chunk = [&]() {
    if (chunk.empty()) return;
    auto table = std::make_shared<SsTable>(next_table_id_++, std::move(chunk));
    AllocatePlacement(*table);
    outputs->push_back(std::move(table));
    chunk = {};
    chunk_bytes = 0;
  };
  for (auto& e : entries) {
    chunk_bytes += e.second.bytes + Memtable::kEntryOverhead;
    chunk.push_back(std::move(e));
    if (chunk_bytes >= config_.sstable_target_bytes) flush_chunk();
  }
  flush_chunk();

  // Gather all blob writes and issue them with bounded parallelism.
  struct WriteJob {
    BlobAddr primary, shadow;
  };
  auto jobs = std::make_shared<std::vector<WriteJob>>();
  for (const auto& t : *outputs) {
    for (size_t i = 0; i < t->primary_blobs.size(); ++i) {
      WriteJob j;
      j.primary = t->primary_blobs[i];
      j.shadow = i < t->shadow_blobs.size() ? t->shadow_blobs[i] : BlobAddr{};
      stats_.compaction_write_bytes += j.primary.bytes;
      jobs->push_back(j);
    }
  }
  if (jobs->empty()) {
    sim_.After(0, [outputs, install = std::move(install)]() {
      install(*outputs);
    });
    return;
  }
  auto next = std::make_shared<size_t>(0);
  auto inflight = std::make_shared<int>(0);
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [this, jobs, next, inflight, outputs, install, pump]() {
    while (*next < jobs->size() && *inflight < config_.compaction_io_depth) {
      WriteJob j = (*jobs)[(*next)++];
      ++*inflight;
      blobs_.WriteReplicated(j.primary, j.shadow, config_.background_priority,
                             [this, inflight, next, jobs, outputs, install,
                              pump]() {
                               --*inflight;
                               if (*next >= jobs->size() && *inflight == 0) {
                                 install(*outputs);
                                 return;
                               }
                               (*pump)();
                             });
    }
  };
  (*pump)();
}

void KvDb::MaybeStartFlush() {
  if (flush_active_ || immutables_.empty()) return;
  flush_active_ = true;
  ++stats_.flushes;
  // Oldest immutable flushes first (ordering matters for recency).
  std::shared_ptr<Memtable> imm = immutables_.front().table;
  WriteTables(imm->Sorted(), [this](std::vector<SsTableRef> tables) {
    for (auto& t : tables) levels_[0].push_back(t);
    // WAL of the flushed memtable is obsolete: trim + free.
    for (const auto& b : immutables_.front().wal_blobs) {
      blobs_.Trim(b);
      alloc_.FreeMicro(b);
    }
    for (const auto& b : immutables_.front().wal_shadow_blobs) {
      blobs_.Trim(b);
      alloc_.FreeMicro(b);
    }
    immutables_.pop_front();
    flush_active_ = false;
    DrainStalled();
    MaybeStartFlush();
    MaybeCompact();
  });
}

void KvDb::DrainStalled() {
  while (!stalled_.empty() &&
         immutables_.size() < static_cast<size_t>(config_.max_immutables)) {
    StalledPut p = std::move(stalled_.front());
    stalled_.pop_front();
    PutInternal(p.key, p.value, std::move(p.done));
  }
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

std::vector<std::pair<Key, Value>> KvDb::MergeInputs(
    const std::vector<SsTableRef>& inputs, bool to_bottom) const {
  // Collect (key, recency, value); newest wins.
  struct Tagged {
    Key key;
    uint64_t recency;
    Value value;
  };
  std::vector<Tagged> all;
  for (const auto& t : inputs) {
    for (const auto& [k, v] : t->entries()) {
      all.push_back(Tagged{k, t->id(), v});
    }
  }
  std::sort(all.begin(), all.end(), [](const Tagged& a, const Tagged& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.recency > b.recency;
  });
  std::vector<std::pair<Key, Value>> merged;
  merged.reserve(all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    if (i > 0 && all[i].key == all[i - 1].key) continue;  // older version
    if (to_bottom && all[i].value.tombstone) continue;    // drop tombstones
    merged.emplace_back(all[i].key, all[i].value);
  }
  return merged;
}

void KvDb::MaybeCompact() {
  if (compaction_active_) return;
  if (levels_[0].size() >=
      static_cast<size_t>(config_.l0_compaction_trigger)) {
    CompactIntoNext(0);
    return;
  }
  for (int l = 1; l + 1 < config_.levels; ++l) {
    if (BytesAt(l) > LevelLimit(l)) {
      CompactIntoNext(l);
      return;
    }
  }
}

void KvDb::CompactIntoNext(int level) {
  compaction_active_ = true;
  ++stats_.compactions;
  const int next_level = level + 1;

  // Choose inputs: all of L0 (ranges overlap), or one file from Ln picked
  // round-robin.
  std::vector<SsTableRef> upper;
  if (level == 0) {
    upper = levels_[0];
  } else {
    auto& files = levels_[level];
    upper.push_back(files[static_cast<size_t>(compact_cursor_) % files.size()]);
    ++compact_cursor_;
  }
  Key lo = upper.front()->min_key(), hi = upper.front()->max_key();
  for (const auto& t : upper) {
    lo = std::min(lo, t->min_key());
    hi = std::max(hi, t->max_key());
  }
  std::vector<SsTableRef> lower;
  for (const auto& t : levels_[next_level]) {
    if (t->max_key() >= lo && t->min_key() <= hi) lower.push_back(t);
  }

  std::vector<SsTableRef> inputs = upper;
  inputs.insert(inputs.end(), lower.begin(), lower.end());

  // Read every input blob (the merge scan), bounded parallelism, then
  // write the merged outputs and swap the manifest.
  auto addrs = std::make_shared<std::vector<std::pair<BlobAddr, BlobAddr>>>();
  for (const auto& t : inputs) {
    for (size_t i = 0; i < t->primary_blobs.size(); ++i) {
      BlobAddr s =
          i < t->shadow_blobs.size() ? t->shadow_blobs[i] : BlobAddr{};
      addrs->emplace_back(t->primary_blobs[i], s);
      stats_.compaction_read_bytes += t->primary_blobs[i].bytes;
    }
  }
  bool to_bottom = next_level == config_.levels - 1;
  auto finish_reads = [this, inputs, upper, lower, level, next_level,
                       to_bottom]() {
    std::vector<std::pair<Key, Value>> merged = MergeInputs(inputs, to_bottom);
    if (merged.empty()) {
      // Everything was tombstones: just drop the inputs.
      for (const auto& t : upper) FreePlacement(*t);
      for (const auto& t : lower) FreePlacement(*t);
      auto gone = [&](const SsTableRef& t) {
        for (const auto& u : upper) {
          if (u == t) return true;
        }
        for (const auto& d : lower) {
          if (d == t) return true;
        }
        return false;
      };
      auto& up = levels_[level];
      up.erase(std::remove_if(up.begin(), up.end(), gone), up.end());
      auto& down = levels_[next_level];
      down.erase(std::remove_if(down.begin(), down.end(), gone), down.end());
      compaction_active_ = false;
      MaybeCompact();
      return;
    }
    WriteTables(std::move(merged), [this, upper, lower, level, next_level](
                                       std::vector<SsTableRef> outputs) {
      auto gone = [&](const SsTableRef& t) {
        for (const auto& u : upper) {
          if (u == t) return true;
        }
        for (const auto& d : lower) {
          if (d == t) return true;
        }
        return false;
      };
      auto& up = levels_[level];
      up.erase(std::remove_if(up.begin(), up.end(), gone), up.end());
      auto& down = levels_[next_level];
      down.erase(std::remove_if(down.begin(), down.end(), gone), down.end());
      for (auto& t : outputs) down.push_back(t);
      std::sort(down.begin(), down.end(),
                [](const SsTableRef& a, const SsTableRef& b) {
                  return a->min_key() < b->min_key();
                });
      for (const auto& t : upper) FreePlacement(*t);
      for (const auto& t : lower) FreePlacement(*t);
      compaction_active_ = false;
      MaybeCompact();
    });
  };

  if (addrs->empty()) {
    sim_.After(0, finish_reads);
    return;
  }
  auto next = std::make_shared<size_t>(0);
  auto inflight = std::make_shared<int>(0);
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [this, addrs, next, inflight, finish_reads, pump]() {
    while (*next < addrs->size() && *inflight < config_.compaction_io_depth) {
      auto [p, s] = (*addrs)[(*next)++];
      ++*inflight;
      blobs_.ReadBalanced(p, s, config_.background_priority,
                          [addrs, next, inflight, finish_reads, pump]() {
                            --*inflight;
                            if (*next >= addrs->size() && *inflight == 0) {
                              finish_reads();
                              return;
                            }
                            (*pump)();
                          });
    }
  };
  (*pump)();
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

void KvDb::Get(Key key, GetDone done) {
  ++stats_.gets;
  auto shared_done = std::make_shared<GetDone>(std::move(done));
  auto respond = [this, shared_done](bool found, Value v) {
    if (found) ++stats_.gets_found;
    sim_.After(0, [found, v, shared_done]() {
      if (*shared_done) (*shared_done)(found, v);
    });
  };
  // Memory hits: memtable, then immutables newest-first.
  if (auto v = memtable_.Get(key)) {
    ++stats_.memory_hits;
    respond(!v->tombstone, *v);
    return;
  }
  for (auto it = immutables_.rbegin(); it != immutables_.rend(); ++it) {
    if (auto v = it->table->Get(key)) {
      ++stats_.memory_hits;
      respond(!v->tombstone, *v);
      return;
    }
  }

  // Candidate SSTables: L0 newest-first, then one file per deeper level.
  auto candidates = std::make_shared<std::vector<SsTableRef>>();
  for (auto it = levels_[0].rbegin(); it != levels_[0].rend(); ++it) {
    if ((*it)->MayContain(key)) candidates->push_back(*it);
  }
  for (int l = 1; l < config_.levels; ++l) {
    const auto& files = levels_[l];
    auto it = std::lower_bound(files.begin(), files.end(), key,
                               [](const SsTableRef& t, Key k) {
                                 return t->max_key() < k;
                               });
    if (it != files.end() && (*it)->MayContain(key)) {
      candidates->push_back(*it);
    }
  }
  if (candidates->empty()) {
    respond(false, Value{});
    return;
  }

  // Probe candidates in recency order; each probe costs one data-block IO.
  auto probe = std::make_shared<std::function<void(size_t)>>();
  *probe = [this, candidates, probe, respond, key](size_t i) {
    if (i >= candidates->size()) {
      respond(false, Value{});
      return;
    }
    SsTableRef t = (*candidates)[i];
    uint64_t off = t->BlockOffsetOf(key);
    auto [p, s] = t->BlobForOffset(off, 4096);
    ++stats_.data_block_reads;
    blobs_.ReadBalanced(p, s, config_.read_priority,
                        [t, key, probe, i, respond]() {
                          auto v = t->Lookup(key);
                          if (v) {
                            respond(!v->tombstone,
                                    v->tombstone ? Value{} : *v);
                            return;
                          }
                          (*probe)(i + 1);  // bloom false positive
                        });
  };
  (*probe)(0);
}

void KvDb::Scan(Key start, uint32_t count, ScanDone done) {
  ++stats_.scans;
  // Merge the live view of [start, ...): newest source wins per key.
  // Memtable recency > immutables (newest-first) > tables by id.
  std::map<Key, std::pair<uint64_t, Value>> merged;  // key -> (recency, v)
  auto offer = [&](Key k, uint64_t recency, const Value& v) {
    auto it = merged.find(k);
    if (it == merged.end() || it->second.first < recency) {
      merged[k] = {recency, v};
    }
  };
  constexpr uint64_t kMemRecency = UINT64_MAX;
  {
    auto snap = memtable_.Sorted();
    auto it = std::lower_bound(
        snap.begin(), snap.end(), start,
        [](const auto& e, Key k) { return e.first < k; });
    for (uint32_t n = 0; it != snap.end() && n < count; ++it, ++n) {
      offer(it->first, kMemRecency, it->second);
    }
  }
  uint64_t imm_recency = kMemRecency - 1;
  for (auto imm = immutables_.rbegin(); imm != immutables_.rend(); ++imm) {
    auto snap = imm->table->Sorted();
    auto it = std::lower_bound(
        snap.begin(), snap.end(), start,
        [](const auto& e, Key k) { return e.first < k; });
    for (uint32_t n = 0; it != snap.end() && n < count; ++it, ++n) {
      offer(it->first, imm_recency, it->second);
    }
    --imm_recency;
  }

  // Overlapping SSTables contribute entries and cost IO proportional to
  // the bytes scanned in each.
  uint32_t block_reads = 0;
  std::vector<std::pair<BlobAddr, BlobAddr>> ios;
  for (int l = 0; l < config_.levels; ++l) {
    for (const auto& t : levels_[l]) {
      if (t->max_key() < start) continue;
      const auto& entries = t->entries();
      auto it = std::lower_bound(
          entries.begin(), entries.end(), start,
          [](const auto& e, Key k) { return e.first < k; });
      if (it == entries.end()) continue;
      uint64_t touched = 0;
      for (uint32_t n = 0; it != entries.end() && n < count; ++it, ++n) {
        offer(it->first, t->id(), it->second);
        touched += it->second.bytes + Memtable::kEntryOverhead;
      }
      // One 256 KiB streaming read per touched chunk.
      uint64_t off = t->BlockOffsetOf(start);
      for (uint64_t done_bytes = 0; done_bytes < touched;
           done_bytes += 256 * 1024) {
        auto [p, s] = t->BlobForOffset(
            std::min<uint64_t>(off + done_bytes,
                               t->data_bytes() > 0 ? t->data_bytes() - 1 : 0),
            static_cast<uint32_t>(
                std::min<uint64_t>(256 * 1024, touched - done_bytes)));
        ios.emplace_back(p, s);
        ++block_reads;
      }
    }
  }
  stats_.scan_block_reads += block_reads;

  // Assemble results: first `count` live keys.
  auto results = std::make_shared<std::vector<std::pair<Key, Value>>>();
  for (const auto& [k, rv] : merged) {
    if (rv.second.tombstone) continue;
    results->push_back({k, rv.second});
    if (results->size() >= count) break;
  }

  auto shared_done = std::make_shared<ScanDone>(std::move(done));
  if (ios.empty()) {
    sim_.After(0, [results, shared_done]() {
      if (*shared_done) (*shared_done)(std::move(*results));
    });
    return;
  }
  auto remaining = std::make_shared<size_t>(ios.size());
  for (auto& [p, s] : ios) {
    blobs_.ReadBalanced(p, s, config_.read_priority,
                        [remaining, results, shared_done]() {
                          if (--*remaining > 0) return;
                          if (*shared_done) (*shared_done)(std::move(*results));
                        });
  }
}

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

void KvDb::BulkLoad(uint64_t keys, uint32_t value_bytes) {
  std::vector<std::pair<Key, Value>> chunk;
  uint64_t chunk_bytes = 0;
  int bottom = config_.levels - 1;
  for (uint64_t k = 0; k < keys; ++k) {
    chunk.emplace_back(k, Value{value_bytes, 0, false});
    chunk_bytes += value_bytes + Memtable::kEntryOverhead;
    if (chunk_bytes >= config_.sstable_target_bytes || k + 1 == keys) {
      auto table =
          std::make_shared<SsTable>(next_table_id_++, std::move(chunk));
      AllocatePlacement(*table);
      levels_[static_cast<size_t>(bottom)].push_back(table);
      chunk = {};
      chunk_bytes = 0;
    }
  }
}

}  // namespace gimbal::kv
