#include "kv/rebuild.h"

namespace gimbal::kv {

void RebuildScanner::Pump() {
  if (active_) return;
  Blobstore::DirtyReplica d;
  if (!blobs_.TakeDirty(&d)) return;
  active_ = true;
  // Read the surviving copy, then rewrite the dirty one. The dirty address
  // is no failover target (its copy is the one missing), so the source is
  // read directly; if the source's backend degrades mid-rebuild the
  // attempt fails and requeues like any other.
  blobs_.Read(d.source, prio_, [this, d](IoStatus read_st) {
    if (read_st != IoStatus::kOk) {
      FinishAttempt(d, read_st);
      return;
    }
    blobs_.Write(d.dirty, prio_, [this, d](IoStatus write_st) {
      FinishAttempt(d, write_st);
    });
  });
}

void RebuildScanner::FinishAttempt(const Blobstore::DirtyReplica& d,
                                   IoStatus st) {
  active_ = false;
  if (st == IoStatus::kOk) {
    ++stats_.repairs;
    consecutive_fails_ = 0;
    blobs_.MarkRepaired(d);
    Pump();
    return;
  }
  ++stats_.failed_attempts;
  blobs_.RequeueDirty(d);
  if (st == IoStatus::kAborted) {
    // Teardown: the initiator is shutting down. Go quiet instead of
    // spinning against it; a Poke() restarts the drain if one ever comes.
    return;
  }
  // Probe-by-repair: back off (capped exponential, the initiator's own
  // policy) and try again. The attempt that lands after the SSD's recovery
  // succeeds and resets the backoff.
  ++consecutive_fails_;
  const Tick backoff = blobs_.RetryBackoff(d.dirty.backend,
                                           consecutive_fails_);
  sim_.After(backoff > 0 ? backoff : 1, [this]() { Pump(); });
}

}  // namespace gimbal::kv
