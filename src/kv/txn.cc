#include "kv/txn.h"

#include <algorithm>
#include <cassert>

#include "core/params.h"
#include "obs/schema.h"

namespace gimbal::kv {

const char* ToString(TxnProtocol p) {
  switch (p) {
    case TxnProtocol::kNoWait:
      return "no_wait";
    case TxnProtocol::kWaitDie:
      return "wait_die";
    case TxnProtocol::kWoundWait:
      return "wound_wait";
  }
  return "?";
}

// --- LockManager -----------------------------------------------------------

void LockManager::AttachObservability(obs::Observability* obs,
                                      int32_t instance) {
  instance_ = instance;
  obs_ = obs;
  if (obs_ == nullptr) return;
  const obs::Labels l =
      obs_->metrics.FoldTenant(obs::Labels::TenantSsd(instance_, -1));
  m_wounds_ = &obs_->metrics.GetCounter(obs::schema::kTxnWounds, l);
  m_wait_depth_ =
      &obs_->metrics.GetGauge(obs::schema::kTxnWaitQueueDepth, l);
}

void LockManager::Begin(TxnId txn, uint64_t ts, WoundFn wound) {
  TxnEntry& e = txns_[txn];
  e.ts = ts;
  e.wound = std::move(wound);
  if (chk_ != nullptr) {
    chk_->OnTxnBegin(static_cast<TenantId>(instance_), txn, ts);
  }
}

bool LockManager::CompatibleWithHolders(const LockState& s, TxnId txn,
                                        LockMode mode) {
  if (s.xholder != kNoTxn && s.xholder != txn) return false;
  if (mode == LockMode::kExclusive) {
    if (s.xholder != kNoTxn && s.xholder != txn) return false;
    for (TxnId h : s.sharers) {
      if (h != txn) return false;
    }
  }
  return true;
}

void LockManager::ForEachConflict(
    const LockState& s, TxnId txn, LockMode mode,
    const std::function<void(TxnId, bool queued)>& fn) {
  // Conflicting holders.
  if (s.xholder != kNoTxn && s.xholder != txn) fn(s.xholder, false);
  if (mode == LockMode::kExclusive) {
    for (TxnId h : s.sharers) {
      if (h != txn) fn(h, false);
    }
  }
  // Conflicting queued requests: an X request conflicts with everything;
  // an S request conflicts with queued X (and X-upgrade) requests. Queued
  // requests of an upgrading holder are not skipped — an upgrade parked in
  // the queue is an X intent like any other.
  for (const Request& r : s.queue) {
    if (r.txn == txn) continue;
    if (mode == LockMode::kExclusive || r.mode == LockMode::kExclusive) {
      fn(r.txn, true);
    }
  }
}

void LockManager::GrantNow(LockState& s, TxnId txn, Key key, LockMode mode,
                           bool upgrade) {
  TxnEntry& e = txns_[txn];
  if (mode == LockMode::kExclusive) {
    if (upgrade) {
      s.sharers.erase(std::find(s.sharers.begin(), s.sharers.end(), txn));
    }
    s.xholder = txn;
  } else {
    s.sharers.push_back(txn);
  }
  if (!upgrade) e.held.push_back(key);
  ++stats_.acquires;
  if (upgrade) ++stats_.upgrades;
  if (chk_ != nullptr) {
    chk_->OnTxnLockAcquire(static_cast<TenantId>(instance_), txn, key,
                           mode == LockMode::kExclusive, upgrade);
  }
}

void LockManager::InsertByTs(LockState& s, Request req) {
  // Oldest (smallest ts) first; FIFO among equals. Timestamp order keeps
  // WAIT_DIE/WOUND_WAIT wait-for edges acyclic (see header) and makes the
  // queue's service order independent of arrival interleavings that the
  // sharded engine could otherwise expose.
  auto it = std::find_if(s.queue.begin(), s.queue.end(),
                         [&](const Request& r) { return r.ts > req.ts; });
  s.queue.insert(it, std::move(req));
}

void LockManager::UpdateWaitGauge() {
  if (m_wait_depth_ != nullptr) {
    m_wait_depth_->Set(static_cast<double>(waiting_));
  }
}

LockManager::Outcome LockManager::Acquire(TxnId txn, Key key, LockMode mode,
                                          GrantFn on_grant) {
  auto tit = txns_.find(txn);
  assert(tit != txns_.end() && "Acquire before Begin");
  TxnEntry& e = tit->second;
  LockState& s = table_[key];

  // Re-acquire of an already-held lock in the same or weaker mode.
  const bool holds_x = s.xholder == txn;
  const bool holds_s =
      std::find(s.sharers.begin(), s.sharers.end(), txn) != s.sharers.end();
  if (holds_x || (holds_s && mode == LockMode::kShared)) {
    if (s.sharers.empty() && s.xholder == kNoTxn && s.queue.empty()) {
      table_.erase(key);  // never materialized any state
    }
    return Outcome::kGranted;
  }
  const bool upgrade = holds_s && mode == LockMode::kExclusive;

  // Collect the conflict set once; the grant test and every protocol
  // decision key off it. For an upgrade only the *other holders* block —
  // queued requests sit behind the S lock the upgrader already holds.
  std::vector<std::pair<TxnId, bool>> conflicts;
  if (upgrade) {
    for (TxnId h : s.sharers) {
      if (h != txn) conflicts.emplace_back(h, false);
    }
    if (s.xholder != kNoTxn && s.xholder != txn) {
      conflicts.emplace_back(s.xholder, false);
    }
  } else {
    ForEachConflict(s, txn, mode, [&](TxnId t, bool queued) {
      // A queued request strictly younger than this one will sit BEHIND it
      // in the ts-ordered queue, so it cannot delay this grant. Counting
      // it would park an older requester that is compatible with every
      // holder — if those holders are themselves waiting elsewhere, the
      // oldest transaction in the system stalls on nothing and WOUND_WAIT
      // loses its liveness anchor (the oldest txn must always progress).
      if (queued && txns_[t].ts > e.ts) return;
      conflicts.emplace_back(t, queued);
    });
  }

  if (conflicts.empty()) {
    GrantNow(s, txn, key, mode, upgrade);
    return Outcome::kGranted;
  }

  switch (protocol_) {
    case TxnProtocol::kNoWait:
      ++stats_.aborts;
      if (s.sharers.empty() && s.xholder == kNoTxn && s.queue.empty()) {
        table_.erase(key);
      }
      return Outcome::kAbort;
    case TxnProtocol::kWaitDie: {
      // Wait only when older than EVERY conflicting holder and waiter, so
      // wait-for edges always point old -> young (deadlock-free; see
      // header). Anything else dies and retries with its original ts.
      for (const auto& [t, queued] : conflicts) {
        (void)queued;
        if (txns_[t].ts <= e.ts) {
          ++stats_.aborts;
          return Outcome::kAbort;
        }
      }
      break;  // wait
    }
    case TxnProtocol::kWoundWait: {
      // Wound every younger conflicting *holder* that is not pinned in its
      // commit, then wait. Wound callbacks are collected BY VALUE and
      // fired after the queue insertion: a parked victim aborts
      // synchronously inside its callback, and its ReleaseAll destroys the
      // TxnEntry the original std::function lives in.
      std::vector<WoundFn> fire;
      for (const auto& [t, queued] : conflicts) {
        if (queued) continue;
        TxnEntry& victim = txns_[t];
        if (victim.ts <= e.ts || victim.pinned || victim.wounded) continue;
        victim.wounded = true;
        ++stats_.wounds;
        if (m_wounds_ != nullptr) m_wounds_->Add();
        if (chk_ != nullptr) {
          chk_->OnTxnWound(static_cast<TenantId>(instance_), txn, e.ts, t,
                           victim.ts);
        }
        if (obs_ != nullptr) {
          obs_->tracer.Instant(
              sim_ != nullptr ? sim_->now() : 0, obs::schema::kEvTxnWound,
              obs::Labels::TenantSsd(instance_, -1),
              {{"wounder_ts", static_cast<double>(e.ts)},
               {"victim_ts", static_cast<double>(victim.ts)}});
        }
        if (victim.wound) fire.push_back(victim.wound);
      }
      // GIMBAL_MUT(kLockLeak): seeded bug — the wounder "forgets" to queue
      // itself after wounding, and its eventual ReleaseAll misses the lock
      // it still thinks it owns. Modeled below at queue time.
      InsertByTs(s, Request{txn, e.ts, mode, upgrade, std::move(on_grant)});
      e.queued.push_back(key);
      ++stats_.waits;
      ++waiting_;
      stats_.max_queue_depth =
          std::max<uint64_t>(stats_.max_queue_depth, s.queue.size());
      UpdateWaitGauge();
      if (obs_ != nullptr) {
        obs_->tracer.Instant(sim_ != nullptr ? sim_->now() : 0,
                             obs::schema::kEvTxnWait,
                             obs::Labels::TenantSsd(instance_, -1),
                             {{"ts", static_cast<double>(e.ts)}});
      }
      for (WoundFn& f : fire) f();
      return Outcome::kWaiting;
    }
  }

  // WAIT_DIE wait path (WOUND_WAIT queued above, NO_WAIT never reaches).
  InsertByTs(s, Request{txn, e.ts, mode, upgrade, std::move(on_grant)});
  e.queued.push_back(key);
  ++stats_.waits;
  ++waiting_;
  stats_.max_queue_depth =
      std::max<uint64_t>(stats_.max_queue_depth, s.queue.size());
  UpdateWaitGauge();
  if (obs_ != nullptr) {
    obs_->tracer.Instant(sim_ != nullptr ? sim_->now() : 0,
                         obs::schema::kEvTxnWait,
                         obs::Labels::TenantSsd(instance_, -1),
                         {{"ts", static_cast<double>(e.ts)}});
  }
  return Outcome::kWaiting;
}

void LockManager::PinCommit(TxnId txn) {
  auto it = txns_.find(txn);
  if (it != txns_.end()) it->second.pinned = true;
}

void LockManager::Promote(Key key, std::vector<GrantFn>* fired) {
  auto sit = table_.find(key);
  if (sit == table_.end()) return;
  LockState& s = sit->second;

  // An upgrade parked anywhere in the queue is granted the moment its
  // owner is the sole remaining holder — it cannot be serviced in queue
  // order (the queue head may be waiting for the upgrader's own S lock,
  // the classic upgrade deadlock).
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = s.queue.begin(); it != s.queue.end(); ++it) {
      if (!it->upgrade) continue;
      if (s.xholder != kNoTxn) break;
      if (s.sharers.size() != 1 || s.sharers[0] != it->txn) continue;
      Request req = std::move(*it);
      s.queue.erase(it);
      --waiting_;
      TxnEntry& e = txns_[req.txn];
      e.queued.erase(
          std::find(e.queued.begin(), e.queued.end(), key));
      GrantNow(s, req.txn, key, req.mode, /*upgrade=*/true);
      fired->push_back(std::move(req.grant));
      progressed = true;
      break;
    }
    // Grant from the head while compatible: one X, or a run of S.
    while (!s.queue.empty()) {
      Request& head = s.queue.front();
      if (head.upgrade) {
        // Handled by the scan above; a non-sole-holder upgrade blocks the
        // queue behind the S lock it already holds.
        break;
      }
      if (!CompatibleWithHolders(s, head.txn, head.mode)) break;
      Request req = std::move(head);
      s.queue.pop_front();
      --waiting_;
      TxnEntry& e = txns_[req.txn];
      e.queued.erase(
          std::find(e.queued.begin(), e.queued.end(), key));
      GrantNow(s, req.txn, key, req.mode, /*upgrade=*/false);
      fired->push_back(std::move(req.grant));
      progressed = true;
    }
  }
  // WOUND_WAIT grant-time re-validation: head drains preserve ts order,
  // but the sole-holder upgrade promotion can grant a YOUNGER upgrader
  // while an OLDER request sits parked in the queue — the old waiter then
  // waits old -> young, which can close a cycle across two keys (neither
  // side gets wounded: both wound scans ran before the upgrade grant).
  // Re-apply the wound rule on behalf of every queued request: conflicting
  // holders younger than the waiter are wounded, exactly as if the waiter
  // were acquiring now.
  if (protocol_ == TxnProtocol::kWoundWait) {
    for (const Request& r : s.queue) {
      const uint64_t rts = txns_[r.txn].ts;
      if (txns_[r.txn].wounded) continue;
      auto maybe_wound = [&](TxnId h) {
        if (h == r.txn) return;
        TxnEntry& victim = txns_[h];
        if (victim.ts <= rts || victim.pinned || victim.wounded) return;
        victim.wounded = true;
        ++stats_.wounds;
        if (m_wounds_ != nullptr) m_wounds_->Add();
        if (chk_ != nullptr) {
          chk_->OnTxnWound(static_cast<TenantId>(instance_), r.txn, rts, h,
                           victim.ts);
        }
        if (obs_ != nullptr) {
          obs_->tracer.Instant(
              sim_ != nullptr ? sim_->now() : 0, obs::schema::kEvTxnWound,
              obs::Labels::TenantSsd(instance_, -1),
              {{"wounder_ts", static_cast<double>(rts)},
               {"victim_ts", static_cast<double>(victim.ts)}});
        }
        // Fired as a value copy with the grants: a synchronously-aborting
        // victim erases its own TxnEntry (and the original std::function).
        if (victim.wound) fired->push_back(victim.wound);
      };
      if (s.xholder != kNoTxn) maybe_wound(s.xholder);
      if (r.mode == LockMode::kExclusive) {
        for (TxnId h : s.sharers) maybe_wound(h);
      }
    }
  }
  // WAIT_DIE grant-time re-validation: the enqueue rule ("wait only when
  // older than every conflicting holder and waiter") keeps edges old ->
  // young at enqueue, but a grant can break it afterwards — an older
  // waiter jumps the ts-ordered queue, becomes holder, and a younger
  // waiter parked earlier now waits young -> old, which can close a cycle
  // across two keys. Re-apply the die rule: any queued request left
  // conflicting with an older-or-equal holder dies (booked as a WAIT_DIE
  // abort, not a wound; its callback fires with the grants).
  if (protocol_ == TxnProtocol::kWaitDie) {
    for (const Request& r : s.queue) {
      TxnEntry& re = txns_[r.txn];
      if (re.wounded) continue;
      auto older_holder = [&](TxnId h) {
        return h != r.txn && txns_[h].ts <= re.ts;
      };
      bool die = s.xholder != kNoTxn && older_holder(s.xholder);
      if (!die && r.mode == LockMode::kExclusive) {
        for (TxnId h : s.sharers) {
          if (older_holder(h)) {
            die = true;
            break;
          }
        }
      }
      if (!die) continue;
      re.wounded = true;
      ++stats_.aborts;
      if (re.wound) fired->push_back(re.wound);
    }
  }
  if (s.sharers.empty() && s.xholder == kNoTxn && s.queue.empty()) {
    table_.erase(sit);
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  auto tit = txns_.find(txn);
  if (tit == txns_.end()) return;  // idempotent (double-release is a no-op)
  TxnEntry e = std::move(tit->second);
  txns_.erase(tit);

  std::vector<Key> touched;
  touched.reserve(e.held.size() + e.queued.size());

  size_t held_count = e.held.size();
  if (GIMBAL_MUT(kLockLeak) && held_count > 1) {
    // Seeded bug: "forget" the last held key — it stays locked forever and
    // the checker's acquired/released ledger goes unbalanced
    // (drain.txn.locks), with waiters behind it parked for good.
    --held_count;
  }
  for (size_t i = 0; i < held_count; ++i) {
    const Key key = e.held[i];
    auto sit = table_.find(key);
    if (sit == table_.end()) continue;
    LockState& s = sit->second;
    if (s.xholder == txn) {
      s.xholder = kNoTxn;
    } else {
      auto it = std::find(s.sharers.begin(), s.sharers.end(), txn);
      if (it != s.sharers.end()) s.sharers.erase(it);
    }
    ++stats_.releases;
    if (chk_ != nullptr) {
      chk_->OnTxnLockRelease(static_cast<TenantId>(instance_), txn, key);
    }
    touched.push_back(key);
  }
  if (GIMBAL_MUT(kPhantomUnlock) && !e.held.empty()) {
    // Seeded bug: release the first key twice — the second release is of a
    // lock the transaction no longer holds (txn.lock.phantom).
    if (chk_ != nullptr) {
      chk_->OnTxnLockRelease(static_cast<TenantId>(instance_), txn,
                             e.held[0]);
    }
  }
  // Cancel parked requests (an aborted waiter never received its lock).
  for (const Key key : e.queued) {
    auto sit = table_.find(key);
    if (sit == table_.end()) continue;
    LockState& s = sit->second;
    auto it = std::find_if(s.queue.begin(), s.queue.end(),
                           [&](const Request& r) { return r.txn == txn; });
    if (it != s.queue.end()) {
      s.queue.erase(it);
      --waiting_;
    }
    touched.push_back(key);
  }

  // Promote newly grantable waiters; grants fire only after the whole
  // table settles, so a grantee that synchronously releases (read-only
  // commit) sees consistent state.
  std::vector<GrantFn> fired;
  for (const Key key : touched) Promote(key, &fired);
  UpdateWaitGauge();
  for (GrantFn& f : fired) {
    if (f) f();
  }
}

bool LockManager::Holds(TxnId txn, Key key) const {
  auto sit = table_.find(key);
  if (sit == table_.end()) return false;
  const LockState& s = sit->second;
  return s.xholder == txn ||
         std::find(s.sharers.begin(), s.sharers.end(), txn) !=
             s.sharers.end();
}

size_t LockManager::held_count(TxnId txn) const {
  auto it = txns_.find(txn);
  return it == txns_.end() ? 0 : it->second.held.size();
}

// --- TxnCoordinator --------------------------------------------------------

TxnCoordinator::TxnCoordinator(sim::Simulator& sim, KvDb& db, Config cfg)
    : sim_(sim), db_(db), cfg_(cfg), locks_(cfg.protocol) {
  locks_.AttachSim(&sim_);
}

TxnCoordinator::TxnCoordinator(sim::Simulator& sim, KvDb& db)
    : TxnCoordinator(sim, db, Config()) {}

void TxnCoordinator::AttachObservability(obs::Observability* obs,
                                         int32_t instance) {
  instance_ = instance;
  obs_ = obs;
  locks_.AttachObservability(obs, instance);
  if (obs_ == nullptr) return;
  const obs::Labels l =
      obs_->metrics.FoldTenant(obs::Labels::TenantSsd(instance_, -1));
  m_commits_ = &obs_->metrics.GetCounter(obs::schema::kTxnCommits, l);
  m_aborts_ = &obs_->metrics.GetCounter(obs::schema::kTxnAborts, l);
  m_retries_ = &obs_->metrics.GetCounter(obs::schema::kTxnRetries, l);
}

void TxnCoordinator::AttachChecker(check::InvariantChecker* chk) {
  chk_ = chk;
  locks_.AttachChecker(chk);
}

void TxnCoordinator::Submit(TxnRequest req, TxnDone done) {
  auto t = std::make_shared<Txn>();
  t->ts = next_ts_++;
  t->req = std::move(req);
  t->done = std::move(done);
  ++stats_.submitted;
  StartAttempt(t);
}

void TxnCoordinator::StartAttempt(const std::shared_ptr<Txn>& t) {
  t->id = next_txn_++;
  ++t->attempts;
  t->next_op = 0;
  t->wounded = false;
  t->in_commit = false;
  t->commit_total = t->commit_resolved = t->commit_acked = 0;
  t->commit_status = IoStatus::kOk;
  t->acked_keys.clear();
  t->lock_waiting = false;
  // Wounded mid-IO: flag only, the IO completion aborts. Wounded while
  // parked in a lock queue: abort right here — a parked transaction has
  // no pending event, deferring would park the wounder behind it forever.
  locks_.Begin(t->id, t->ts, [this, t]() {
    t->wounded = true;
    if (t->lock_waiting) {
      t->lock_waiting = false;
      AbortAttempt(t, IoStatus::kAborted);
    }
  });
  ExecuteNext(t);
}

void TxnCoordinator::ExecuteNext(const std::shared_ptr<Txn>& t) {
  if (t->wounded) {
    AbortAttempt(t, IoStatus::kAborted);
    return;
  }
  if (t->next_op >= t->req.ops.size()) {
    Commit(t);
    return;
  }
  const TxnOp& op = t->req.ops[t->next_op];
  const LockMode mode =
      op.write ? LockMode::kExclusive : LockMode::kShared;
  const TxnId attempt = t->id;
  // Arm before the call: a grant (or a wound-abort) can fire from inside
  // Acquire when the protocol synchronously unblocks this request, and it
  // must find the flag set so the state is consistent on return.
  t->lock_waiting = true;
  const LockManager::Outcome out = locks_.Acquire(
      t->id, op.key, mode, [this, t, attempt, op]() {
        OnLockGranted(t, attempt, op);
      });
  switch (out) {
    case LockManager::Outcome::kGranted:
      OnLockGranted(t, attempt, op);
      break;
    case LockManager::Outcome::kWaiting:
      break;  // resumes via the grant callback (or the wound abort)
    case LockManager::Outcome::kAbort:
      t->lock_waiting = false;
      AbortAttempt(t, IoStatus::kAborted);
      break;
  }
}

void TxnCoordinator::OnLockGranted(const std::shared_ptr<Txn>& t,
                                   TxnId attempt, const TxnOp& op) {
  if (Stale(t, attempt)) return;
  t->lock_waiting = false;
  if (t->wounded) {
    AbortAttempt(t, IoStatus::kAborted);
    return;
  }
  if (op.write) {
    // Writes are staged: the X lock is held, the payload goes to the WAL
    // at commit. Nothing to read back — advance.
    ++t->next_op;
    ExecuteNext(t);
    return;
  }
  IssueRead(t, attempt, op);
}

void TxnCoordinator::IssueRead(const std::shared_ptr<Txn>& t, TxnId attempt,
                               const TxnOp& op) {
  if (op.scan_len > 0) {
    ++stats_.scans;
    db_.Scan(op.key, op.scan_len,
             [this, t, attempt](IoStatus st,
                                std::vector<std::pair<Key, Value>>) {
               if (Stale(t, attempt)) return;
               if (st != IoStatus::kOk || t->wounded) {
                 AbortAttempt(t, st == IoStatus::kOk ? IoStatus::kAborted
                                                     : st);
                 return;
               }
               ++t->next_op;
               ExecuteNext(t);
             });
    return;
  }
  ++stats_.reads;
  db_.Get(op.key, [this, t, attempt, key = op.key](IoStatus st, bool found,
                                                   Value value) {
    if (Stale(t, attempt)) return;
    if (st != IoStatus::kOk || t->wounded) {
      AbortAttempt(t, st == IoStatus::kOk ? IoStatus::kAborted : st);
      return;
    }
    // Serializability oracle: under a correctly-held S lock this read must
    // observe the stamp of the last committed write to the key. A lock
    // manager that let a writer slip past surfaces here.
    auto it = oracle_.find(key);
    if (it != oracle_.end() && (!found || value.stamp != it->second)) {
      ++stats_.stamp_mismatches;
    }
    ++t->next_op;
    ExecuteNext(t);
  });
}

void TxnCoordinator::Commit(const std::shared_ptr<Txn>& t) {
  t->in_commit = true;
  locks_.PinCommit(t->id);
  t->stamp = next_stamp_++;
  const TxnId attempt = t->id;
  uint32_t writes = 0;
  for (const TxnOp& op : t->req.ops) {
    if (op.write) ++writes;
  }
  t->commit_total = writes;
  if (writes == 0) {
    FinishCommit(t);
    return;
  }
  // Every write rides the WAL group-commit path; its ack is held until at
  // least one replica is durable (PR 7), so a "committed" transaction can
  // never lose a write.
  for (const TxnOp& op : t->req.ops) {
    if (!op.write) continue;
    db_.Put(op.key, op.bytes, t->stamp,
            [this, t, attempt, key = op.key](IoStatus st) {
              if (Stale(t, attempt)) return;
              ++t->commit_resolved;
              if (st == IoStatus::kOk) {
                ++t->commit_acked;
                t->acked_keys.push_back(key);
              } else if (t->commit_status == IoStatus::kOk) {
                t->commit_status = st;
              }
              if (t->commit_resolved == t->commit_total) FinishCommit(t);
            });
  }
}

void TxnCoordinator::FinishCommit(const std::shared_ptr<Txn>& t) {
  // The oracle advances for every durably acked key — also on the failure
  // path (a crash can fail the transaction as a whole after some writes
  // committed; those keys' latest durable stamp is still this one).
  for (const Key key : t->acked_keys) oracle_[key] = t->stamp;

  if (t->commit_acked != t->commit_total) {
    // A write died un-acked (process crash mid-commit): the transaction is
    // NOT reported committed. Locks were pinned, so this attempt cannot
    // have wounded anyone; it terminates here — re-running a half-durable
    // commit would double-apply writes under a fresh stamp.
    if (chk_ != nullptr) {
      chk_->OnTxnAbort(static_cast<TenantId>(instance_), t->id);
    }
    locks_.ReleaseAll(t->id);
    ++stats_.failed;
    TxnResult r;
    r.committed = false;
    r.status = t->commit_status == IoStatus::kOk ? IoStatus::kAborted
                                                 : t->commit_status;
    Terminal(t, r);
    return;
  }

  for (const TxnOp& op : t->req.ops) {
    if (op.write && oracle_.find(op.key) == oracle_.end()) {
      oracle_[op.key] = t->stamp;  // zero-write path never reaches here
    }
  }
  stats_.writes += t->commit_total;
  ++stats_.commits;
  if (m_commits_ != nullptr) m_commits_->Add();
  if (obs_ != nullptr) {
    obs_->tracer.Instant(sim_.now(), obs::schema::kEvTxnCommit,
                         obs::Labels::TenantSsd(instance_, -1),
                         {{"ts", static_cast<double>(t->ts)},
                          {"writes", static_cast<double>(t->commit_total)},
                          {"attempts", static_cast<double>(t->attempts)}});
  }
  if (chk_ != nullptr) {
    chk_->OnTxnCommit(static_cast<TenantId>(instance_), t->id,
                      t->commit_acked, t->commit_total);
  }
  // Strict 2PL: locks release only after the commit is durable and
  // reported to the checker.
  locks_.ReleaseAll(t->id);
  TxnResult r;
  r.committed = true;
  r.commit_stamp = t->stamp;
  Terminal(t, r);
}

void TxnCoordinator::AbortAttempt(const std::shared_ptr<Txn>& t,
                                  IoStatus status) {
  t->lock_waiting = false;
  ++stats_.attempt_aborts;
  if (m_aborts_ != nullptr) m_aborts_->Add();
  if (obs_ != nullptr) {
    obs_->tracer.Instant(sim_.now(), obs::schema::kEvTxnAbort,
                         obs::Labels::TenantSsd(instance_, -1),
                         {{"ts", static_cast<double>(t->ts)},
                          {"attempt", static_cast<double>(t->attempts)}});
  }
  if (chk_ != nullptr) {
    chk_->OnTxnAbort(static_cast<TenantId>(instance_), t->id);
  }
  locks_.ReleaseAll(t->id);
  const TxnId stale_guard = t->id;
  t->id = kNoTxn;  // invalidate in-flight callbacks of this attempt
  (void)stale_guard;

  if (give_up_ ||
      (cfg_.max_attempts > 0 && t->attempts >= cfg_.max_attempts)) {
    ++stats_.failed;
    TxnResult r;
    r.committed = false;
    r.status = status;
    Terminal(t, r);
    return;
  }
  ++stats_.retries;
  if (m_retries_ != nullptr) m_retries_->Add();
  // Capped exponential backoff (the initiator's policy) plus a
  // deterministic per-attempt jitter: NO_WAIT retry storms on a hot key
  // would otherwise re-collide in lockstep forever. The jitter keys off
  // the globally-unique attempt id, so it is reproducible bit-for-bit.
  const Tick delay = fabric::BackoffFor(cfg_.retry, t->attempts) +
                     static_cast<Tick>(next_txn_ % 7) * Microseconds(13);
  sim_.After(delay, [this, t]() { StartAttempt(t); });
}

void TxnCoordinator::Terminal(const std::shared_ptr<Txn>& t, TxnResult r) {
  r.attempts = t->attempts;
  if (t->done) {
    TxnDone done = std::move(t->done);
    t->done = nullptr;
    done(r);
  }
}

// --- TxnClient -------------------------------------------------------------

TxnClient::TxnClient(sim::Simulator& sim, TxnCoordinator& coord,
                     workload::TpccSpec spec, int concurrency)
    : sim_(sim), coord_(coord), gen_(spec), concurrency_(concurrency) {}

void TxnClient::Start() {
  if (running_) return;
  running_ = true;
  for (int i = 0; i < concurrency_; ++i) IssueOne();
}

void TxnClient::IssueOne() {
  workload::TpccTxn txn = gen_.Next();
  TxnRequest req;
  req.ops.reserve(txn.ops.size());
  for (const workload::TpccOp& op : txn.ops) {
    TxnOp o;
    o.key = op.key;
    o.write = op.write;
    o.bytes = op.write ? gen_.spec().value_bytes : 0;
    req.ops.push_back(o);
  }
  const Tick start = sim_.now();
  const workload::TpccTxnType type = txn.type;
  coord_.Submit(std::move(req), [this, start, type](TxnResult r) {
    ++stats_.txns;
    stats_.attempts += static_cast<uint64_t>(r.attempts);
    if (r.committed) {
      ++stats_.committed;
      if (type == workload::TpccTxnType::kNewOrder) {
        ++stats_.new_orders;
      } else {
        ++stats_.payments;
      }
      stats_.commit_latency.Record(sim_.now() - start);
    } else {
      ++stats_.failed;
    }
    if (running_) IssueOne();
  });
}

}  // namespace gimbal::kv
