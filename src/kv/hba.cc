#include "kv/hba.h"

#include <cassert>

#include "core/params.h"

namespace gimbal::kv {

GlobalBlobAllocator::GlobalBlobAllocator(int backends, HbaConfig config)
    : config_(config),
      megas_per_backend_(config.backend_bytes / config.mega_bytes) {
  bitmaps_.assign(static_cast<size_t>(backends),
                  std::vector<bool>(megas_per_backend_, false));
}

std::optional<BlobAddr> GlobalBlobAllocator::AllocateMega(int backend) {
  auto& bm = bitmaps_[static_cast<size_t>(backend)];
  for (uint64_t i = 0; i < bm.size(); ++i) {
    if (!bm[i]) {
      bm[i] = true;
      return BlobAddr{backend, i * config_.mega_bytes,
                      static_cast<uint32_t>(config_.mega_bytes)};
    }
  }
  return std::nullopt;
}

void GlobalBlobAllocator::FreeMega(const BlobAddr& mega) {
  assert(mega.valid());
  uint64_t index = mega.offset / config_.mega_bytes;
  auto& bm = bitmaps_[static_cast<size_t>(mega.backend)];
  assert(bm[index]);
  bm[index] = false;
}

uint64_t GlobalBlobAllocator::FreeMegasOn(int backend) const {
  uint64_t free = 0;
  for (bool used : bitmaps_[static_cast<size_t>(backend)]) {
    if (!used) ++free;
  }
  return free;
}

LocalBlobAllocator::LocalBlobAllocator(GlobalBlobAllocator& global,
                                       std::function<uint32_t(int)> credit_of)
    : global_(global), credit_of_(std::move(credit_of)) {
  free_micros_.resize(static_cast<size_t>(global_.backends()));
}

int LocalBlobAllocator::PreferredBackend(int exclude_backend) const {
  int best = -1;
  uint64_t best_credit = 0;
  const int exclude_node =
      exclude_backend >= 0 ? NodeOf(exclude_backend) : -1;
  for (int b = 0; b < global_.backends(); ++b) {
    // Failure-domain exclusion: skip every backend on the excluded
    // backend's node, not just the backend itself.
    if (GIMBAL_MUT(kPlacementCollapse) ? b == exclude_backend
                                       : exclude_node >= 0 &&
                                             NodeOf(b) == exclude_node) {
      continue;
    }
    // Backends with no space left are not candidates.
    if (free_micros_[static_cast<size_t>(b)].empty() &&
        global_.FreeMegasOn(b) == 0) {
      continue;
    }
    uint64_t credit = credit_of_ ? credit_of_(b) : 1;
    if (best < 0 || credit > best_credit) {
      best = b;
      best_credit = credit;
    }
  }
  return best;
}

bool LocalBlobAllocator::RefillFrom(int backend) {
  auto mega = global_.AllocateMega(backend);
  if (!mega) return false;
  const uint32_t micro = global_.config().micro_bytes;
  auto& pool = free_micros_[static_cast<size_t>(backend)];
  for (uint64_t off = 0; off + micro <= mega->bytes; off += micro) {
    pool.push_back(BlobAddr{backend, mega->offset + off, micro});
  }
  return true;
}

std::optional<BlobAddr> LocalBlobAllocator::AllocateMicro(
    int exclude_backend) {
  int backend = PreferredBackend(exclude_backend);
  if (backend < 0) return std::nullopt;
  auto& pool = free_micros_[static_cast<size_t>(backend)];
  if (pool.empty() && !RefillFrom(backend)) return std::nullopt;
  BlobAddr out = pool.back();
  pool.pop_back();
  return out;
}

void LocalBlobAllocator::FreeMicro(const BlobAddr& micro) {
  assert(micro.valid());
  free_micros_[static_cast<size_t>(micro.backend)].push_back(micro);
  // Note: micro blobs are retained by the local agent; mega blobs return
  // to the global pool only when an instance shuts down. This matches the
  // paper's free-list behaviour and keeps allocation O(1).
}

size_t LocalBlobAllocator::FreeMicrosOn(int backend) const {
  return free_micros_[static_cast<size_t>(backend)].size();
}

}  // namespace gimbal::kv
