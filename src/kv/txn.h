// Transaction layer over the KV store: strict two-phase locking with the
// three classic conflict policies (NO_WAIT, WAIT_DIE, WOUND_WAIT), a
// multi-key coordinator, and the closed-loop transactional client the
// TPC-C-lite driver (workload/tpcc.h) runs through.
//
// SmartOffloading (PAPERS.md) shows multi-key transactions over
// disaggregated storage are the canonical stressor for exactly the
// machinery Gimbal adds — bursty commit batches hit the write-cost
// estimator, abort/retry storms hit the credit flow control — so this
// layer deliberately reuses the existing paths end to end: reads go
// through `KvDb::Get` (failover, load balancing), commits through the WAL
// group-commit path (PR 7's ack-holding: a transaction is reported
// committed only once every one of its writes has a durable replica, so
// no committed transaction is ever lost), and retries back off with the
// initiator's bounded-exponential policy.
//
// Determinism: every structure here lives on the client shard next to the
// DB instance that owns it and is driven purely by simulated-time events,
// so sharded runs are bit-identical at any worker-thread count. Conflict
// decisions are keyed on transaction timestamps (a monotonic counter a
// restarted transaction keeps), never on wall clock or iteration order of
// unordered containers.
//
// Deadlock freedom (asserted by tests/txn_lock_test.cc):
//   * NO_WAIT never enqueues a waiter — conflicts abort immediately.
//   * WAIT_DIE lets a requester wait only when it is older (smaller ts)
//     than every conflicting holder AND every conflicting queued waiter
//     ahead of it in the ts-ordered queue (younger queued requests sit
//     behind it and are ignored), so wait-for edges always point
//     old -> young: acyclic.
//   * WOUND_WAIT wounds younger conflicting holders (unless they are
//     pinned mid-commit — commit never blocks on a lock, so pinned
//     holders are sinks) and queues the requester in timestamp order, so
//     wait-for edges always point young -> old: acyclic.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "fabric/initiator.h"
#include "kv/db.h"
#include "obs/obs.h"
#include "sim/simulator.h"
#include "workload/tpcc.h"

namespace gimbal::kv {

enum class TxnProtocol { kNoWait, kWaitDie, kWoundWait };
const char* ToString(TxnProtocol p);

enum class LockMode { kShared, kExclusive };

using TxnId = uint64_t;
inline constexpr TxnId kNoTxn = 0;

// Per-key reader/writer lock table with strict 2PL discipline. Waiting
// requests queue in timestamp order (oldest first) and are promoted
// synchronously when a release makes them grantable; an S->X upgrade by
// the sole remaining holder is promoted ahead of fresh requests.
class LockManager {
 public:
  // Fired when a queued request is granted (the lock is held by then).
  using GrantFn = std::function<void()>;
  // Fired at most once per transaction when the protocol demands its
  // abort while it is not the requester: a WOUND_WAIT wound by an older
  // requester, or a WAIT_DIE grant-time re-validation (an older waiter
  // jumped the queue and became holder ahead of this younger one — left
  // waiting, the young->old edge could close a two-key cycle). The victim
  // must abort and ReleaseAll; if it is parked in a lock queue it must do
  // so immediately (a parked transaction has no pending event to abort
  // from), if it is mid-IO it may defer to the IO completion.
  using WoundFn = std::function<void()>;

  enum class Outcome {
    kGranted,  // lock held now; the grant callback was not retained
    kWaiting,  // queued; the grant callback fires on promotion
    kAbort,    // protocol says abort (NO_WAIT conflict / WAIT_DIE die)
  };

  explicit LockManager(TxnProtocol protocol) : protocol_(protocol) {}

  // Register a transaction before its first Acquire. `ts` is the conflict
  // priority (smaller = older); a restarted transaction keeps its original
  // ts so it eventually wins every WAIT_DIE/WOUND_WAIT conflict.
  void Begin(TxnId txn, uint64_t ts, WoundFn wound);

  // Acquire `key` in `mode` for `txn`. Re-acquiring a held lock (same or
  // weaker mode) is a no-op kGranted; holding S and requesting X is an
  // upgrade. On kWaiting the callback is retained and fired on promotion;
  // on kAbort the caller must ReleaseAll (the transaction keeps its held
  // locks until then — the failed request itself holds nothing).
  Outcome Acquire(TxnId txn, Key key, LockMode mode, GrantFn on_grant);

  // The transaction entered commit: it will never acquire again and can no
  // longer be wounded (its locks are guaranteed to release in bounded
  // time, so older waiters are safe waiting for it).
  void PinCommit(TxnId txn);

  // Strict 2PL release: drop every lock `txn` holds, cancel any queued
  // request it still has parked, promote newly grantable waiters, and
  // forget the transaction. Terminal for `txn`'s lock state.
  void ReleaseAll(TxnId txn);

  // --- Introspection (tests, checker drain) --------------------------------
  bool Holds(TxnId txn, Key key) const;
  size_t held_count(TxnId txn) const;
  size_t table_keys() const { return table_.size(); }  // keys with state
  size_t total_waiting() const { return waiting_; }
  bool idle() const { return table_.empty() && txns_.empty(); }

  struct Stats {
    uint64_t acquires = 0;       // granted lock acquisitions (incl. upgrades)
    uint64_t upgrades = 0;       // S->X promotions among the acquires
    uint64_t waits = 0;          // requests that had to queue
    uint64_t aborts = 0;         // kAbort outcomes (NO_WAIT + WAIT_DIE die)
    uint64_t wounds = 0;         // WOUND_WAIT victims wounded
    uint64_t releases = 0;       // individual key locks released
    uint64_t max_queue_depth = 0;  // deepest single-key wait queue seen
  };
  const Stats& stats() const { return stats_; }

  // `instance` labels txn.* metrics and the checker's per-instance txn
  // ledgers (docs/OBSERVABILITY.md, docs/TESTING.md). A null `obs` still
  // records the instance label (direct-drive tests with a checker only).
  void AttachObservability(obs::Observability* obs, int32_t instance);
  void AttachChecker(check::InvariantChecker* chk) { chk_ = chk; }
  // Timestamps for txn.wait / txn.wound trace events; null traces at t=0.
  void AttachSim(const sim::Simulator* sim) { sim_ = sim; }

 private:
  struct Request {
    TxnId txn = kNoTxn;
    uint64_t ts = 0;
    LockMode mode = LockMode::kShared;
    bool upgrade = false;  // txn already holds S on this key
    GrantFn grant;
  };
  struct LockState {
    std::vector<TxnId> sharers;    // granted S holders (insertion order)
    TxnId xholder = kNoTxn;        // granted X holder (excludes sharers)
    std::deque<Request> queue;     // ts-ordered, oldest first
  };
  struct TxnEntry {
    uint64_t ts = 0;
    bool pinned = false;
    bool wounded = false;
    WoundFn wound;
    std::vector<Key> held;    // keys this txn holds (S or X)
    std::vector<Key> queued;  // keys with a parked request (<= 1 in
                              // practice: the coordinator executes ops
                              // serially, but the table does not rely on it)
  };

  // True when `txn` may hold `key` in `mode` alongside current holders.
  static bool CompatibleWithHolders(const LockState& s, TxnId txn,
                                    LockMode mode);
  // Conflicting txns among holders and queued waiters (for the WAIT_DIE
  // wait/die decision and the WOUND_WAIT wound set).
  void ForEachConflict(const LockState& s, TxnId txn, LockMode mode,
                       const std::function<void(TxnId, bool queued)>& fn);
  void GrantNow(LockState& s, TxnId txn, Key key, LockMode mode,
                bool upgrade);
  void InsertByTs(LockState& s, Request req);
  // Promote grantable queue heads after a release; collected grant
  // callbacks fire after the table mutation settles.
  void Promote(Key key, std::vector<GrantFn>* fired);
  void UpdateWaitGauge();

  TxnProtocol protocol_;
  std::unordered_map<Key, LockState> table_;
  std::unordered_map<TxnId, TxnEntry> txns_;
  size_t waiting_ = 0;
  Stats stats_;

  int32_t instance_ = -1;
  obs::Observability* obs_ = nullptr;
  const sim::Simulator* sim_ = nullptr;
  obs::Counter* m_wounds_ = nullptr;
  obs::Gauge* m_wait_depth_ = nullptr;
  check::InvariantChecker* chk_ = nullptr;
};

// One operation of a transaction, executed in order. Reads take S locks
// and pay the `KvDb::Get` path; writes take X locks (upgrading a held S)
// and are staged until commit, where they pay the WAL group-commit path.
// `scan_len > 0` turns a read into a range scan anchored at `key` (the
// anchor is locked; this layer does not claim phantom protection).
struct TxnOp {
  Key key = 0;
  bool write = false;
  uint32_t bytes = 0;     // write payload size
  uint32_t scan_len = 0;  // reads only
};

struct TxnRequest {
  std::vector<TxnOp> ops;
};

struct TxnResult {
  bool committed = false;
  IoStatus status = IoStatus::kOk;  // terminal status when not committed
  int attempts = 0;                 // execution attempts including the last
  uint64_t commit_stamp = 0;        // stamp the writes committed with
};

// Stages multi-key read/write sets through one `KvDb` under the lock
// manager's 2PL discipline. Aborted attempts retry with the initiator's
// capped exponential backoff (jittered deterministically by transaction id
// so NO_WAIT retry storms cannot lockstep-livelock) and keep their
// original timestamp. Commit acks only after every write's WAL batch is
// durable; locks release strictly after the commit ack (strict 2PL).
//
// Serializability oracle: the coordinator stamps each commit with a fresh
// sequence number and remembers, per key, the stamp of the last committed
// write. Every locked read compares the value it observed against the
// oracle — under correct 2PL they always match; a broken lock manager
// surfaces as `stamp_mismatches` (tests assert 0).
class TxnCoordinator {
 public:
  struct Config {
    TxnProtocol protocol = TxnProtocol::kWaitDie;
    // Attempts per transaction before giving up (0 = retry until
    // committed; the drain contract then relies on give_up()).
    int max_attempts = 0;
    fabric::RetryParams retry;  // backoff between attempts
  };

  using TxnDone = std::function<void(TxnResult)>;

  TxnCoordinator(sim::Simulator& sim, KvDb& db, Config cfg);
  TxnCoordinator(sim::Simulator& sim, KvDb& db);  // default Config

  void Submit(TxnRequest req, TxnDone done);

  // When set, aborted attempts terminate with their status instead of
  // retrying — the drain path for tests and benches tearing down while
  // transactions are still in flight.
  void set_give_up(bool v) { give_up_ = v; }

  LockManager& locks() { return locks_; }
  const Config& config() const { return cfg_; }

  struct Stats {
    uint64_t submitted = 0;
    uint64_t commits = 0;
    uint64_t attempt_aborts = 0;  // attempts that died (incl. retried ones)
    uint64_t retries = 0;         // re-executions after an aborted attempt
    uint64_t failed = 0;          // transactions terminal without commit
    uint64_t reads = 0;           // locked reads issued
    uint64_t scans = 0;
    uint64_t writes = 0;            // committed write ops
    uint64_t stamp_mismatches = 0;  // serializability oracle violations
  };
  const Stats& stats() const { return stats_; }

  void AttachObservability(obs::Observability* obs, int32_t instance);
  void AttachChecker(check::InvariantChecker* chk);

 private:
  struct Txn {
    TxnId id = kNoTxn;       // current attempt's id (fresh per attempt)
    uint64_t ts = 0;         // conflict priority, kept across retries
    TxnRequest req;
    TxnDone done;
    int attempts = 0;
    size_t next_op = 0;
    bool wounded = false;
    bool lock_waiting = false;  // parked in a lock queue (wound aborts now)
    bool in_commit = false;
    uint32_t commit_total = 0;     // write Puts issued at commit
    uint32_t commit_resolved = 0;  // write acks resolved (any status)
    uint32_t commit_acked = 0;     // write acks resolved kOk
    IoStatus commit_status = IoStatus::kOk;  // first non-ok write status
    // Keys whose commit write was durably acked — the oracle advances for
    // exactly these even when the commit as a whole fails (crash paths).
    std::vector<Key> acked_keys;
    uint64_t stamp = 0;  // commit stamp (assigned at PinCommit)
  };

  void StartAttempt(const std::shared_ptr<Txn>& t);
  void ExecuteNext(const std::shared_ptr<Txn>& t);
  void OnLockGranted(const std::shared_ptr<Txn>& t, TxnId attempt,
                     const TxnOp& op);
  void IssueRead(const std::shared_ptr<Txn>& t, TxnId attempt,
                 const TxnOp& op);
  void Commit(const std::shared_ptr<Txn>& t);
  void FinishCommit(const std::shared_ptr<Txn>& t);
  void AbortAttempt(const std::shared_ptr<Txn>& t, IoStatus status);
  void Terminal(const std::shared_ptr<Txn>& t, TxnResult r);
  bool Stale(const std::shared_ptr<Txn>& t, TxnId attempt) const {
    return t->id != attempt;
  }

  sim::Simulator& sim_;
  KvDb& db_;
  Config cfg_;
  LockManager locks_;
  uint64_t next_ts_ = 1;     // conflict priority source
  uint64_t next_txn_ = 1;    // attempt id source (also RNG-free jitter key)
  uint64_t next_stamp_ = 1;  // commit sequence
  bool give_up_ = false;
  std::unordered_map<Key, uint64_t> oracle_;  // last committed stamp
  Stats stats_;

  int32_t instance_ = -1;
  obs::Observability* obs_ = nullptr;
  obs::Counter* m_commits_ = nullptr;
  obs::Counter* m_aborts_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  check::InvariantChecker* chk_ = nullptr;
};

// Closed-loop transactional client: `concurrency` terminals, each running
// TPC-C-lite transactions (workload/tpcc.h) back to back through one
// coordinator — the transactional analogue of YcsbClient.
class TxnClient {
 public:
  TxnClient(sim::Simulator& sim, TxnCoordinator& coord,
            workload::TpccSpec spec, int concurrency = 4);

  void Start();
  void Stop() { running_ = false; }

  struct Stats {
    uint64_t txns = 0;  // terminal transactions (committed + failed)
    uint64_t committed = 0;
    uint64_t failed = 0;
    uint64_t new_orders = 0;  // committed, by type
    uint64_t payments = 0;
    uint64_t attempts = 0;  // attempts across terminal transactions
    LatencyHistogram commit_latency;  // submit-to-commit, committed only
    void Reset() { *this = Stats{}; }
  };
  Stats& stats() { return stats_; }

 private:
  void IssueOne();

  sim::Simulator& sim_;
  TxnCoordinator& coord_;
  workload::TpccGenerator gen_;
  int concurrency_;
  bool running_ = false;
  Stats stats_;
};

}  // namespace gimbal::kv
