// Bloom filter over 64-bit keys, as RocksDB keeps per SSTable to avoid
// probing files that cannot contain a key. Filters live in client memory
// (RocksDB caches filter blocks), so probes cost no storage IO; false
// positives cause the extra data-block read a real system would pay.
#pragma once

#include <cstdint>
#include <vector>

namespace gimbal::kv {

class BloomFilter {
 public:
  // `expected_keys` with ~10 bits/key gives ~1% false positives.
  explicit BloomFilter(uint64_t expected_keys, int bits_per_key = 10);

  void Add(uint64_t key);
  bool MayContain(uint64_t key) const;

  uint64_t bit_count() const { return bits_.size() * 64; }
  uint64_t memory_bytes() const { return bits_.size() * 8; }

 private:
  static uint64_t Hash(uint64_t key, uint64_t seed);

  std::vector<uint64_t> bits_;
  int num_hashes_;
};

}  // namespace gimbal::kv
