// Background re-replication: drains the blobstore's dirty-replica ledger
// (docs/FAULTS.md).
//
// A degraded replicated write leaves one copy missing; each ledger entry
// names the dirty address and the surviving source. The scanner repairs one
// entry at a time at background priority — read the source, rewrite the
// dirty copy — so rebuild traffic competes with flush/compaction, not with
// foreground reads.
//
// Recovery detection is probe-by-repair: a repair against a still-failed
// backend fails fast (the policy drains a failed SSD's queue), the entry is
// requeued, and the next attempt waits a capped exponential backoff reusing
// the initiator's retry policy. The first attempt after the SSD recovers
// simply succeeds — no subscription to the injector's health machine is
// needed, which matters under the sharded engine: health machines live on
// SSD shards, and reading them from the client shard would break the
// bit-identical-at-any-thread-count contract. Completions observed by the
// blobstore also Poke() the scanner when a down backend serves an IO again.
//
// Fault-free runs never record dirty replicas, so the scanner arms no
// timers and is entirely absent from the event schedule.
#pragma once

#include "kv/blobstore.h"
#include "sim/simulator.h"

namespace gimbal::kv {

class RebuildScanner {
 public:
  RebuildScanner(sim::Simulator& sim, Blobstore& blobs,
                 IoPriority prio = IoPriority::kLow)
      : sim_(sim), blobs_(blobs), prio_(prio) {}

  // Wake the scanner: a dirty replica was recorded, or a down backend was
  // observed up again. Wired as the blobstore's dirty callback.
  void Poke() { Pump(); }

  bool active() const { return active_; }

  struct Stats {
    uint64_t repairs = 0;
    uint64_t failed_attempts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void Pump();
  void FinishAttempt(const Blobstore::DirtyReplica& d, IoStatus st);

  sim::Simulator& sim_;
  Blobstore& blobs_;
  IoPriority prio_;
  bool active_ = false;        // one repair in flight at a time
  int consecutive_fails_ = 0;  // drives the probe backoff
  Stats stats_;
};

}  // namespace gimbal::kv
