// Vocabulary types for the LSM key-value store and blobstore.
//
// Values carry their byte size and a version stamp instead of a payload:
// the simulator models IO timing, not data movement, and 24 instances x
// 100K x 1 KiB of real bytes would only burn host memory. The stamp lets
// tests verify read-your-writes semantics exactly.
#pragma once

#include <cstdint>

namespace gimbal::kv {

using Key = uint64_t;

struct Value {
  uint32_t bytes = 0;   // logical payload size (drives IO sizes)
  uint64_t stamp = 0;   // version for correctness checks
  bool tombstone = false;

  bool operator==(const Value&) const = default;
};

// Address of one contiguous blob on one remote backend SSD.
struct BlobAddr {
  int backend = -1;
  uint64_t offset = 0;
  uint32_t bytes = 0;

  bool valid() const { return backend >= 0; }
  bool operator==(const BlobAddr&) const = default;
};

}  // namespace gimbal::kv
