// Immutable sorted-string table (Appendix E).
//
// Entries are kept in host memory (the simulator moves timing, not bytes);
// the table knows its blob placement so lookups issue the same data-block
// IO a real SSTable read would: one page-sized read of the block that
// holds the key's rank. Bloom filters are in-memory, as RocksDB caches
// filter blocks.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "kv/bloom.h"
#include "kv/types.h"

namespace gimbal::kv {

class SsTable {
 public:
  // `id` orders tables by recency (higher = newer data wins in merges).
  SsTable(uint64_t id, std::vector<std::pair<Key, Value>> entries,
          uint32_t entry_overhead = 16);

  uint64_t id() const { return id_; }
  Key min_key() const { return entries_.front().first; }
  Key max_key() const { return entries_.back().first; }
  uint64_t count() const { return entries_.size(); }
  uint64_t data_bytes() const { return data_bytes_; }

  bool KeyInRange(Key key) const {
    return key >= min_key() && key <= max_key();
  }
  // Bloom + range check: false means the key is definitely absent.
  bool MayContain(Key key) const {
    return KeyInRange(key) && bloom_.MayContain(key);
  }

  // Ground-truth lookup (what the data block read would deserialize).
  std::optional<Value> Lookup(Key key) const;

  // Byte offset of the data block containing `key`'s rank — which blob in
  // the placement list a point read must touch.
  uint64_t BlockOffsetOf(Key key) const;

  const std::vector<std::pair<Key, Value>>& entries() const {
    return entries_;
  }

  // Blob placement, set by the DB after allocation. Parallel lists: chunk
  // i of the file lives at primary_blobs[i] (and shadow_blobs[i] when
  // replicated).
  std::vector<BlobAddr> primary_blobs;
  std::vector<BlobAddr> shadow_blobs;

  // Map a file-relative offset to the blob (pair of replicas) holding it.
  // Returns {primary, shadow}; shadow is invalid when unreplicated.
  std::pair<BlobAddr, BlobAddr> BlobForOffset(uint64_t file_offset,
                                              uint32_t read_bytes) const;

 private:
  uint64_t id_;
  std::vector<std::pair<Key, Value>> entries_;
  uint64_t data_bytes_;
  double bytes_per_entry_;
  BloomFilter bloom_;
};

using SsTableRef = std::shared_ptr<SsTable>;

}  // namespace gimbal::kv
