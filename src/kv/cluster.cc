#include "kv/cluster.h"

namespace gimbal::kv {

KvCluster::KvCluster(KvClusterConfig cfg)
    : cfg_(cfg),
      bed_(cfg.testbed),
      global_(cfg.testbed.num_ssds, cfg.hba) {}

KvCluster::Instance& KvCluster::AddInstance() {
  auto inst = std::make_unique<Instance>();
  inst->id = static_cast<int>(instances_.size());
  for (int b = 0; b < cfg_.testbed.num_ssds; ++b) {
    inst->initiators.push_back(&bed_.AddInitiator(b, cfg_.throttle));
  }
  inst->blobs = std::make_unique<Blobstore>(bed_.sim(), inst->initiators,
                                            cfg_.load_balance_reads);
  inst->blobs->AttachObservability(bed_.client_obs(), inst->id);
  inst->blobs->AttachChecker(&bed_.checker());
  Blobstore* blobs = inst->blobs.get();
  // The local allocator's load signal is the §3.7 virtual-view credit.
  inst->alloc = std::make_unique<LocalBlobAllocator>(
      global_, [blobs](int backend) { return blobs->credits(backend); });
  if (bed_.nodes() > 1) {
    // Rack bed: replica placement spreads across failure domains — the
    // allocator excludes the whole node, the blobstore proves it per write.
    std::vector<int> node_of(static_cast<size_t>(cfg_.testbed.num_ssds));
    for (int b = 0; b < cfg_.testbed.num_ssds; ++b) {
      node_of[static_cast<size_t>(b)] = bed_.node_of(b);
    }
    inst->blobs->SetNodeMap(node_of);
    inst->alloc->SetNodeMap(std::move(node_of));
  }
  inst->db = std::make_unique<KvDb>(bed_.sim(), *inst->blobs, *inst->alloc,
                                    cfg_.db);
  inst->db->AttachObservability(bed_.client_obs(), inst->id);
  // Re-replication rides at background priority next to flush/compaction;
  // the ledger callback wakes it on a new dirty entry or an observed
  // backend recovery. Fault-free it never runs.
  inst->rebuild = std::make_unique<RebuildScanner>(
      bed_.sim(), *inst->blobs, cfg_.db.background_priority);
  RebuildScanner* rebuild = inst->rebuild.get();
  inst->blobs->SetDirtyCallback([rebuild]() { rebuild->Poke(); });
  instances_.push_back(std::move(inst));
  return *instances_.back();
}

YcsbClient::YcsbClient(sim::Simulator& sim, KvDb& db,
                       workload::YcsbSpec spec, int concurrency)
    : sim_(sim), db_(db), gen_(spec), concurrency_(concurrency) {}

void YcsbClient::Start() {
  if (running_) return;
  running_ = true;
  for (int i = 0; i < concurrency_; ++i) IssueOne();
}

void YcsbClient::Finish(Tick start, bool is_read) {
  Tick lat = sim_.now() - start;
  stats_.op_latency.Record(lat);
  if (is_read) stats_.read_latency.Record(lat);
  ++stats_.ops;
  if (running_) IssueOne();
}

bool YcsbClient::Note(IoStatus st) {
  if (st == IoStatus::kOk) return true;
  if (st == IoStatus::kAborted) {
    ++stats_.aborted;
  } else {
    ++stats_.failed;
  }
  return false;
}

void YcsbClient::IssueOne() {
  auto op = gen_.Next();
  Tick start = sim_.now();
  const uint32_t vb = gen_.spec().value_bytes;
  switch (op.op) {
    case workload::YcsbOp::kRead:
      ++stats_.reads;
      db_.Get(op.key, [this, start](IoStatus st, bool found, Value) {
        if (Note(st) && !found) ++stats_.not_found;
        Finish(start, true);
      });
      break;
    case workload::YcsbOp::kUpdate:
      ++stats_.updates;
      db_.Put(op.key, vb, next_stamp_++, [this, start](IoStatus st) {
        Note(st);
        Finish(start, false);
      });
      break;
    case workload::YcsbOp::kInsert:
      ++stats_.inserts;
      db_.Put(op.key, vb, next_stamp_++, [this, start](IoStatus st) {
        Note(st);
        Finish(start, false);
      });
      break;
    case workload::YcsbOp::kScan:
      ++stats_.scans;
      db_.Scan(op.key, op.scan_length,
               [this, start](IoStatus st, auto results) {
                 Note(st);
                 stats_.scanned_records += results.size();
                 Finish(start, true);
               });
      break;
    case workload::YcsbOp::kReadModifyWrite:
      ++stats_.rmws;
      db_.Get(op.key,
              [this, start, key = op.key, vb](IoStatus st, bool found, Value) {
                if (Note(st) && !found) ++stats_.not_found;
                // The write half proceeds regardless: a failed read does
                // not invalidate the modify-write (blind RMW semantics).
                db_.Put(key, vb, next_stamp_++, [this, start](IoStatus wst) {
                  Note(wst);
                  Finish(start, false);
                });
              });
      break;
  }
}

}  // namespace gimbal::kv
