// LSM-tree key-value store over the blobstore — the RocksDB stand-in of
// the paper's case study (§4.3, Appendix E).
//
// Write path: WAL append (group-committed, replicated) + memtable insert;
// full memtables rotate to an immutable list and flush to L0 SSTables.
// Background leveled compaction merges L0 into L1 and size-triggered
// levels below. Read path: memtable -> immutables -> L0 (newest first) ->
// L1..Ln, bloom-filtered, one data-block read per probed table, with
// replica load balancing by virtual-view credits.
//
// IO priorities exercise Gimbal's per-tenant priority queues (§3.5):
// point reads are latency-sensitive (high), WAL writes normal, and
// flush/compaction traffic low.
//
// Fault tolerance (docs/FAULTS.md): every callback carries the operation's
// terminal IoStatus. A Put is acked only once its WAL batch has at least
// one durable replica — when both replicas fail the batch is re-queued and
// re-submitted on fresh placement (excluding the failed backend) under
// capped backoff, waiters held the whole time. Flush/compaction jobs retry
// the same way. SimulateCrash() models a tenant process crash (volatile
// state lost, un-acked waiters fail with kAborted); Recover() replays the
// replicated WAL — paying the read IO — and rebuilds the memtable.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "kv/blobstore.h"
#include "kv/hba.h"
#include "kv/memtable.h"
#include "kv/sstable.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace gimbal::kv {

struct KvDbConfig {
  uint64_t memtable_bytes = 4ull << 20;
  uint64_t sstable_target_bytes = 4ull << 20;
  int l0_compaction_trigger = 4;
  uint64_t level1_bytes = 32ull << 20;
  double level_multiplier = 10.0;
  int levels = 4;               // L0..L3
  int max_immutables = 2;       // write-stall threshold
  int compaction_io_depth = 4;  // parallel 256K IOs per compaction
  bool wal = true;
  bool replicate = true;
  IoPriority read_priority = IoPriority::kHigh;
  IoPriority wal_priority = IoPriority::kNormal;
  IoPriority background_priority = IoPriority::kLow;
};

class KvDb {
 public:
  // Status propagation contract (docs/FAULTS.md): kOk means the op is
  // durable (Put: WAL committed with >= 1 replica) or resolved (Get/Scan);
  // kAborted means the op died with the process (crash/teardown) and was
  // never acked; any other status is a fault the caller may retry.
  using PutDone = std::function<void(IoStatus)>;
  using GetDone = std::function<void(IoStatus, bool found, Value value)>;
  using ScanDone = std::function<void(
      IoStatus, std::vector<std::pair<Key, Value>> results)>;

  KvDb(sim::Simulator& sim, Blobstore& blobs, LocalBlobAllocator& alloc,
       KvDbConfig config = {});

  // Asynchronous point operations. Callbacks fire in simulated time once
  // the op is durable (Put/Delete: WAL committed) or resolved (Get).
  void Put(Key key, uint32_t value_bytes, uint64_t stamp, PutDone done);
  void Delete(Key key, PutDone done);
  void Get(Key key, GetDone done);

  // Range scan: up to `count` live records with key >= start, in key
  // order (YCSB-E style). Pays one data-block read per 256 KiB of data
  // touched in every overlapping SSTable.
  void Scan(Key start, uint32_t count, ScanDone done);

  // Synchronously install `keys` records (0..keys-1) into the bottom
  // level with blob placement but no simulated IO — the YCSB load phase,
  // analogous to device preconditioning.
  void BulkLoad(uint64_t keys, uint32_t value_bytes);

  // --- Crash / recovery (docs/FAULTS.md) -----------------------------------
  // Abrupt process death: memtable and immutables (volatile memory) are
  // dropped, un-acked Put waiters and in-flight Get/Scan callbacks fail
  // with kAborted, and every in-flight background job is abandoned (its
  // completions no-op via an epoch guard). The durable state — SSTable
  // manifest and the replicated WAL blobs with their committed records —
  // survives for Recover(). The blobstore (connections, dirty ledger) is
  // not part of the process image and keeps draining.
  void SimulateCrash();
  // Replay the committed WAL into a fresh memtable. Replayed state is
  // visible to the very next operation; `done(kOk)` fires once the replay
  // reads (one per WAL blob, read priority) have been paid for.
  void Recover(PutDone done);
  // Sorted live view of the memtable — convergence checks in tests.
  std::vector<std::pair<Key, Value>> MemtableSnapshot() const {
    return memtable_.Sorted();
  }

  // kv.wal_retries / kv.recoveries counters and their trace events;
  // `instance` labels the series (docs/OBSERVABILITY.md).
  void AttachObservability(obs::Observability* obs, int32_t instance);

  struct Stats {
    uint64_t puts = 0;
    uint64_t deletes = 0;
    uint64_t gets = 0;
    uint64_t gets_found = 0;
    uint64_t scans = 0;
    uint64_t scan_block_reads = 0;
    uint64_t data_block_reads = 0;  // SSTable probes that cost IO
    uint64_t memory_hits = 0;       // served from memtable/immutables
    uint64_t wal_writes = 0;
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t compaction_read_bytes = 0;
    uint64_t compaction_write_bytes = 0;
    uint64_t write_stalls = 0;
    uint64_t wal_retries = 0;        // batches re-submitted, ack held
    uint64_t write_job_retries = 0;  // flush/compaction blob rewrites
    uint64_t compaction_read_retries = 0;
    uint64_t crashes = 0;
    uint64_t recoveries = 0;
    uint64_t replayed_records = 0;
    uint64_t aborted_ops = 0;  // callbacks failed kAborted by a crash
  };
  const Stats& stats() const { return stats_; }

  // Introspection for tests.
  size_t FilesAt(int level) const { return levels_[level].size(); }
  uint64_t BytesAt(int level) const;
  uint64_t memtable_bytes() const { return memtable_.bytes(); }
  size_t immutable_count() const { return immutables_.size(); }
  bool flush_active() const { return flush_active_; }
  bool compaction_active() const { return compaction_active_; }
  bool wal_inflight() const { return wal_inflight_; }
  size_t wal_waiters() const { return wal_batch_waiters_.size(); }
  const KvDbConfig& config() const { return config_; }

 private:
  struct Immutable {
    std::shared_ptr<Memtable> table;
    std::vector<BlobAddr> wal_blobs;  // primary WAL blobs to free on flush
    std::vector<BlobAddr> wal_shadow_blobs;
    // WAL-committed records backing this table (replayed on recovery).
    std::vector<std::pair<Key, Value>> wal_records;
  };
  struct StalledPut {
    Key key;
    Value value;
    PutDone done;
  };

  void PutInternal(Key key, const Value& value, PutDone done);
  void AppendWal(Key key, const Value& value, uint32_t bytes, PutDone done);
  void MaybeFlushWal();
  bool EnsureWalSpace(uint32_t bytes);
  void RotateMemtable();
  void MaybeStartFlush();
  void MaybeCompact();
  void CompactIntoNext(int level);
  // Merge inputs (newest table wins per key); drop tombstones when
  // `to_bottom` (nothing below can hold older versions).
  std::vector<std::pair<Key, Value>> MergeInputs(
      const std::vector<SsTableRef>& inputs, bool to_bottom) const;
  // Build output tables from merged entries, allocate + write their blobs
  // (priority low), then `install`.
  void WriteTables(std::vector<std::pair<Key, Value>> entries,
                   std::function<void(std::vector<SsTableRef>)> install);
  void AllocatePlacement(SsTable& table);
  void FreePlacement(const SsTable& table);
  uint64_t LevelLimit(int level) const;
  void DrainStalled();

  sim::Simulator& sim_;
  Blobstore& blobs_;
  LocalBlobAllocator& alloc_;
  KvDbConfig config_;

  Memtable memtable_;
  std::deque<Immutable> immutables_;
  std::vector<std::vector<SsTableRef>> levels_;
  std::deque<StalledPut> stalled_;

  // Crash epoch: bumped by SimulateCrash(). Every async continuation that
  // touches DB state captures the epoch it was created under and no-ops on
  // mismatch — the crashed process's in-flight work cannot haunt the
  // recovered one.
  uint64_t epoch_ = 0;

  // WAL group commit state.
  uint64_t wal_batch_bytes_ = 0;
  std::vector<PutDone> wal_batch_waiters_;
  std::vector<std::pair<Key, Value>> wal_batch_records_;
  bool wal_inflight_ = false;
  BlobAddr wal_blob_;
  BlobAddr wal_shadow_;
  uint64_t wal_used_ = 0;  // bytes consumed in the current WAL blob
  std::vector<BlobAddr> wal_blobs_;  // blobs of the active memtable's WAL
  std::vector<BlobAddr> wal_shadow_blobs_;
  // Records committed to the active memtable's WAL (recovery replay).
  std::vector<std::pair<Key, Value>> wal_records_;
  // Waiters of the batch currently on the wire, so a crash can abort them.
  std::shared_ptr<std::vector<PutDone>> wal_inflight_waiters_;
  int wal_retry_attempts_ = 0;   // consecutive both-replica failures
  int wal_avoid_backend_ = -1;   // last backend a WAL write failed on

  bool flush_active_ = false;
  bool compaction_active_ = false;
  int compaction_retry_attempts_ = 0;
  uint64_t next_table_id_ = 1;
  int compact_cursor_ = 0;
  Stats stats_;

  int32_t instance_ = -1;
  obs::Observability* obs_ = nullptr;
  obs::Counter* m_wal_retries_ = nullptr;
  obs::Counter* m_recoveries_ = nullptr;
};

}  // namespace gimbal::kv
