// LSM-tree key-value store over the blobstore — the RocksDB stand-in of
// the paper's case study (§4.3, Appendix E).
//
// Write path: WAL append (group-committed, replicated) + memtable insert;
// full memtables rotate to an immutable list and flush to L0 SSTables.
// Background leveled compaction merges L0 into L1 and size-triggered
// levels below. Read path: memtable -> immutables -> L0 (newest first) ->
// L1..Ln, bloom-filtered, one data-block read per probed table, with
// replica load balancing by virtual-view credits.
//
// IO priorities exercise Gimbal's per-tenant priority queues (§3.5):
// point reads are latency-sensitive (high), WAL writes normal, and
// flush/compaction traffic low.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "kv/blobstore.h"
#include "kv/hba.h"
#include "kv/memtable.h"
#include "kv/sstable.h"
#include "sim/simulator.h"

namespace gimbal::kv {

struct KvDbConfig {
  uint64_t memtable_bytes = 4ull << 20;
  uint64_t sstable_target_bytes = 4ull << 20;
  int l0_compaction_trigger = 4;
  uint64_t level1_bytes = 32ull << 20;
  double level_multiplier = 10.0;
  int levels = 4;               // L0..L3
  int max_immutables = 2;       // write-stall threshold
  int compaction_io_depth = 4;  // parallel 256K IOs per compaction
  bool wal = true;
  bool replicate = true;
  IoPriority read_priority = IoPriority::kHigh;
  IoPriority wal_priority = IoPriority::kNormal;
  IoPriority background_priority = IoPriority::kLow;
};

class KvDb {
 public:
  using PutDone = std::function<void()>;
  using GetDone = std::function<void(bool found, Value value)>;

  KvDb(sim::Simulator& sim, Blobstore& blobs, LocalBlobAllocator& alloc,
       KvDbConfig config = {});

  // Asynchronous point operations. Callbacks fire in simulated time once
  // the op is durable (Put/Delete: WAL committed) or resolved (Get).
  void Put(Key key, uint32_t value_bytes, uint64_t stamp, PutDone done);
  void Delete(Key key, PutDone done);
  void Get(Key key, GetDone done);

  // Range scan: up to `count` live records with key >= start, in key
  // order (YCSB-E style). Pays one data-block read per 256 KiB of data
  // touched in every overlapping SSTable.
  using ScanDone =
      std::function<void(std::vector<std::pair<Key, Value>> results)>;
  void Scan(Key start, uint32_t count, ScanDone done);

  // Synchronously install `keys` records (0..keys-1) into the bottom
  // level with blob placement but no simulated IO — the YCSB load phase,
  // analogous to device preconditioning.
  void BulkLoad(uint64_t keys, uint32_t value_bytes);

  struct Stats {
    uint64_t puts = 0;
    uint64_t deletes = 0;
    uint64_t gets = 0;
    uint64_t gets_found = 0;
    uint64_t scans = 0;
    uint64_t scan_block_reads = 0;
    uint64_t data_block_reads = 0;  // SSTable probes that cost IO
    uint64_t memory_hits = 0;       // served from memtable/immutables
    uint64_t wal_writes = 0;
    uint64_t flushes = 0;
    uint64_t compactions = 0;
    uint64_t compaction_read_bytes = 0;
    uint64_t compaction_write_bytes = 0;
    uint64_t write_stalls = 0;
  };
  const Stats& stats() const { return stats_; }

  // Introspection for tests.
  size_t FilesAt(int level) const { return levels_[level].size(); }
  uint64_t BytesAt(int level) const;
  uint64_t memtable_bytes() const { return memtable_.bytes(); }
  size_t immutable_count() const { return immutables_.size(); }
  bool flush_active() const { return flush_active_; }
  bool compaction_active() const { return compaction_active_; }
  const KvDbConfig& config() const { return config_; }

 private:
  struct Immutable {
    std::shared_ptr<Memtable> table;
    std::vector<BlobAddr> wal_blobs;  // primary WAL blobs to free on flush
    std::vector<BlobAddr> wal_shadow_blobs;
  };
  struct StalledPut {
    Key key;
    Value value;
    PutDone done;
  };

  void PutInternal(Key key, const Value& value, PutDone done);
  void AppendWal(uint32_t bytes, PutDone done);
  void MaybeFlushWal();
  bool EnsureWalSpace(uint32_t bytes);
  void RotateMemtable();
  void MaybeStartFlush();
  void MaybeCompact();
  void CompactIntoNext(int level);
  // Merge inputs (newest table wins per key); drop tombstones when
  // `to_bottom` (nothing below can hold older versions).
  std::vector<std::pair<Key, Value>> MergeInputs(
      const std::vector<SsTableRef>& inputs, bool to_bottom) const;
  // Build output tables from merged entries, allocate + write their blobs
  // (priority low), then `install`.
  void WriteTables(std::vector<std::pair<Key, Value>> entries,
                   std::function<void(std::vector<SsTableRef>)> install);
  void AllocatePlacement(SsTable& table);
  void FreePlacement(const SsTable& table);
  uint64_t LevelLimit(int level) const;
  void DrainStalled();

  sim::Simulator& sim_;
  Blobstore& blobs_;
  LocalBlobAllocator& alloc_;
  KvDbConfig config_;

  Memtable memtable_;
  std::deque<Immutable> immutables_;
  std::vector<std::vector<SsTableRef>> levels_;
  std::deque<StalledPut> stalled_;

  // WAL group commit state.
  uint64_t wal_batch_bytes_ = 0;
  std::vector<PutDone> wal_batch_waiters_;
  bool wal_inflight_ = false;
  BlobAddr wal_blob_;
  BlobAddr wal_shadow_;
  uint64_t wal_used_ = 0;  // bytes consumed in the current WAL blob
  std::vector<BlobAddr> wal_blobs_;  // blobs of the active memtable's WAL
  std::vector<BlobAddr> wal_shadow_blobs_;

  bool flush_active_ = false;
  bool compaction_active_ = false;
  uint64_t next_table_id_ = 1;
  int compact_cursor_ = 0;
  Stats stats_;
};

}  // namespace gimbal::kv
