#include "kv/sstable.h"

#include <algorithm>
#include <cassert>

namespace gimbal::kv {

SsTable::SsTable(uint64_t id, std::vector<std::pair<Key, Value>> entries,
                 uint32_t entry_overhead)
    : id_(id), entries_(std::move(entries)), bloom_(entries_.size()) {
  assert(!entries_.empty());
  assert(std::is_sorted(entries_.begin(), entries_.end(),
                        [](const auto& a, const auto& b) {
                          return a.first < b.first;
                        }));
  data_bytes_ = 0;
  for (const auto& [k, v] : entries_) {
    bloom_.Add(k);
    data_bytes_ += v.bytes + entry_overhead;
  }
  bytes_per_entry_ =
      static_cast<double>(data_bytes_) / static_cast<double>(entries_.size());
}

std::optional<Value> SsTable::Lookup(Key key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& e, Key k) { return e.first < k; });
  if (it == entries_.end() || it->first != key) return std::nullopt;
  return it->second;
}

uint64_t SsTable::BlockOffsetOf(Key key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& e, Key k) { return e.first < k; });
  uint64_t rank = static_cast<uint64_t>(it - entries_.begin());
  if (rank >= entries_.size()) rank = entries_.size() - 1;
  uint64_t offset =
      static_cast<uint64_t>(static_cast<double>(rank) * bytes_per_entry_);
  // Align down to the 4 KiB data-block grid.
  return offset & ~uint64_t{4095};
}

std::pair<BlobAddr, BlobAddr> SsTable::BlobForOffset(
    uint64_t file_offset, uint32_t read_bytes) const {
  assert(!primary_blobs.empty() && "table has no placement");
  uint64_t remaining = file_offset;
  for (size_t i = 0; i < primary_blobs.size(); ++i) {
    if (remaining < primary_blobs[i].bytes) {
      BlobAddr p = primary_blobs[i];
      p.offset += remaining;
      p.bytes = read_bytes;
      BlobAddr s;
      if (i < shadow_blobs.size()) {
        s = shadow_blobs[i];
        s.offset += remaining;
        s.bytes = read_bytes;
      }
      return {p, s};
    }
    remaining -= primary_blobs[i].bytes;
  }
  // Offset beyond placement (estimation edge): read the last blob's tail.
  BlobAddr p = primary_blobs.back();
  p.bytes = read_bytes;
  BlobAddr s;
  if (!shadow_blobs.empty()) {
    s = shadow_blobs.back();
    s.bytes = read_bytes;
  }
  return {p, s};
}

}  // namespace gimbal::kv
