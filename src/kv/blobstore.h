// Blobstore: the NVMe-oF-aware storage layer the LSM tree runs on (§4.3).
//
// One DB instance owns one Blobstore, which owns one Initiator per remote
// backend SSD. It provides:
//   * plain blob read/write (rounded up to device pages),
//   * replicated writes — primary and shadow complete before the callback
//     fires (the paper's flash-failure tolerance),
//   * load-balanced reads — the copy whose backend currently advertises
//     more credits (§3.7 virtual view) is chosen,
//   * the per-backend credit reading the hierarchical blob allocator's
//     load-aware placement uses.
// Client-side rate limiting is inherited from the Initiator's credit
// throttle (§4.3's "IO rate limiter ... automatically supported").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fabric/initiator.h"
#include "kv/types.h"

namespace gimbal::kv {

class Blobstore {
 public:
  using DoneFn = std::function<void()>;

  // `backends[i]` is this instance's initiator to backend SSD i. Not owned.
  explicit Blobstore(std::vector<fabric::Initiator*> backends,
                     bool load_balance_reads = true)
      : backends_(std::move(backends)),
        load_balance_reads_(load_balance_reads) {}

  void Read(const BlobAddr& addr, IoPriority prio, DoneFn done);
  void Write(const BlobAddr& addr, IoPriority prio, DoneFn done);

  // Write both copies; `done` fires when the slower one finishes.
  void WriteReplicated(const BlobAddr& primary, const BlobAddr& shadow,
                       IoPriority prio, DoneFn done);

  // Read whichever replica's backend has more credits (falls back to the
  // primary when balancing is disabled or the shadow is missing).
  void ReadBalanced(const BlobAddr& primary, const BlobAddr& shadow,
                    IoPriority prio, DoneFn done);

  // Deallocate a blob on its backend (NVMe TRIM): tells the SSD the data
  // is dead so garbage collection stops relocating it.
  void Trim(const BlobAddr& addr);

  uint32_t credits(int backend) const {
    return backends_[static_cast<size_t>(backend)]->credits();
  }
  int backend_count() const { return static_cast<int>(backends_.size()); }
  bool load_balance_reads() const { return load_balance_reads_; }

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t read_bytes = 0;
    uint64_t write_bytes = 0;
    uint64_t balanced_to_shadow = 0;  // reads steered off-primary
    uint64_t trims = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  static uint32_t PageAligned(uint32_t bytes) {
    return (bytes + 4095u) & ~4095u;
  }

  std::vector<fabric::Initiator*> backends_;
  bool load_balance_reads_;
  uint64_t lb_rr_ = 0;  // epsilon-probe counter for replica selection
  Stats stats_;
};

}  // namespace gimbal::kv
