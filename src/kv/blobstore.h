// Blobstore: the NVMe-oF-aware storage layer the LSM tree runs on (§4.3).
//
// One DB instance owns one Blobstore, which owns one Initiator per remote
// backend SSD. It provides:
//   * plain blob read/write (rounded up to device pages), with the IO's
//     terminal IoStatus propagated to the caller (docs/FAULTS.md),
//   * replicated writes — both copies are attempted; if exactly one
//     replica fails the write is acked degraded (quorum-of-available) and
//     the missing copy is recorded in the dirty-replica ledger for the
//     background rebuild scanner (kv/rebuild.h),
//   * load-balanced reads with failover — the copy whose backend currently
//     advertises more credits (§3.7 virtual view) is chosen; on a media
//     error / timeout / device failure the surviving replica is retried
//     under a per-blob budget with the initiator's capped backoff,
//   * the per-backend credit reading the hierarchical blob allocator's
//     load-aware placement uses.
//
// Backend health is tracked client-side, from the completion statuses this
// instance observes (kDeviceFailed marks a backend down, kOk marks it back
// up). Under the sharded engine the injector's health machines live on the
// SSD shards, so the client deliberately never reads them directly — the
// observed view is driven purely by events that already cross the shard
// boundary, which keeps every schedule bit-identical at any thread count.
//
// Fault-free runs are event-for-event identical to the pre-fault-tolerance
// blobstore: no timers are armed and no submit order changes unless a
// completion actually fails.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "check/invariants.h"
#include "fabric/initiator.h"
#include "kv/types.h"
#include "obs/obs.h"
#include "sim/simulator.h"

namespace gimbal::kv {

class Blobstore {
 public:
  // Terminal status of the blob operation (kOk for a degraded-acked
  // replicated write; the dirty ledger tracks the missing copy).
  using DoneFn = std::function<void(IoStatus)>;

  // One missing replica: `dirty` is the address whose write failed,
  // `source` the surviving copy the rebuild scanner re-reads.
  struct DirtyReplica {
    BlobAddr dirty;
    BlobAddr source;
  };

  // `backends[i]` is this instance's initiator to backend SSD i. Not owned.
  Blobstore(sim::Simulator& sim, std::vector<fabric::Initiator*> backends,
            bool load_balance_reads = true)
      : sim_(sim),
        backends_(std::move(backends)),
        load_balance_reads_(load_balance_reads),
        down_(backends_.size(), 0) {}

  void Read(const BlobAddr& addr, IoPriority prio, DoneFn done);
  void Write(const BlobAddr& addr, IoPriority prio, DoneFn done);

  // Write both copies. Both durable -> done(kOk). Exactly one durable ->
  // done(kOk) degraded + dirty-replica ledger entry (never on kAborted —
  // teardown is not a fault). Both failed -> done(non-ok); the caller must
  // not treat the data as durable.
  void WriteReplicated(const BlobAddr& primary, const BlobAddr& shadow,
                       IoPriority prio, DoneFn done);

  // Read whichever replica's backend has more credits (falls back to the
  // primary when balancing is disabled or the shadow is missing), never
  // knowingly targeting a down backend while the other copy is up. On a
  // non-ok completion the other replica is retried with capped backoff
  // until the per-blob budget (1 + the initiator's max_retries) runs out.
  void ReadBalanced(const BlobAddr& primary, const BlobAddr& shadow,
                    IoPriority prio, DoneFn done);

  // Deallocate a blob on its backend (NVMe TRIM): tells the SSD the data
  // is dead so garbage collection stops relocating it. Dirty-ledger
  // entries overlapping the range are invalidated (their data is moot).
  void Trim(const BlobAddr& addr);

  // --- Dirty-replica ledger (consumed by kv/rebuild.h) ---------------------
  size_t dirty_count() const { return dirty_.size(); }
  bool TakeDirty(DirtyReplica* out);
  // A repair attempt failed; the entry goes to the back of the ledger.
  void RequeueDirty(const DirtyReplica& d);
  // The scanner wrote the dirty copy successfully.
  void MarkRepaired(const DirtyReplica& d);
  // Invoked whenever the ledger grows or a down backend is observed up
  // again — the rebuild scanner's wake-up signal.
  void SetDirtyCallback(std::function<void()> cb) { dirty_cb_ = std::move(cb); }

  // Observed backend health (client-side view; see file header).
  bool backend_down(int backend) const {
    return down_[static_cast<size_t>(backend)] != 0;
  }

  // Rack topology: the node each backend SSD lives on, for the
  // kv.placement.domain invariant (replicated copies must land on distinct
  // failure domains). Empty — the default — means node == backend, which
  // is exactly the single-node bed's behavior.
  void SetNodeMap(std::vector<int> node_of) { node_of_ = std::move(node_of); }
  int NodeOf(int backend) const {
    return node_of_.empty() ? backend : node_of_[static_cast<size_t>(backend)];
  }

  uint32_t credits(int backend) const {
    return backends_[static_cast<size_t>(backend)]->credits();
  }
  int backend_count() const { return static_cast<int>(backends_.size()); }
  bool load_balance_reads() const { return load_balance_reads_; }
  // Bounded-exponential backoff before attempt `n` (1-based), reusing the
  // backend initiator's client retry policy.
  Tick RetryBackoff(int backend, int n) const {
    return fabric::BackoffFor(
        backends_[static_cast<size_t>(backend)]->retry_params(), n);
  }
  // Per-blob transmission budget for failover reads.
  int ReadBudget(int backend) const {
    return 1 + backends_[static_cast<size_t>(backend)]->retry_params()
                   .max_retries;
  }

  // Metric/trace sinks + the instance id used as the tenant label on
  // kv.* series and the checker's KV ledgers.
  void AttachObservability(obs::Observability* obs, int32_t instance);
  void AttachChecker(check::InvariantChecker* chk) { chk_ = chk; }
  int32_t instance() const { return instance_; }

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t read_bytes = 0;
    uint64_t write_bytes = 0;
    uint64_t balanced_to_shadow = 0;  // reads steered off-primary
    uint64_t trims = 0;
    uint64_t failover_reads = 0;   // read attempts retried on the other copy
    uint64_t degraded_writes = 0;  // replicated writes acked at one copy
    uint64_t dirty_recorded = 0;
    uint64_t dirty_repaired = 0;
    uint64_t dirty_dropped = 0;  // invalidated by Trim before repair
    uint64_t rebuild_bytes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct ReadCtx {
    BlobAddr primary, shadow;
    IoPriority prio;
    DoneFn done;
    int attempts = 0;  // transmissions so far
    int budget = 1;
  };

  static uint32_t PageAligned(uint32_t bytes) {
    return (bytes + 4095u) & ~4095u;
  }
  static bool Overlap(const BlobAddr& a, const BlobAddr& b) {
    return a.valid() && b.valid() && a.backend == b.backend &&
           a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
  }

  // Update the observed health view from a completion on `backend`.
  void ObserveStatus(int backend, IoStatus status);
  void StartRead(const std::shared_ptr<ReadCtx>& ctx, bool use_shadow);
  void RecordDirty(const BlobAddr& dirty, const BlobAddr& source);
  void UpdateDirtyGauge();

  sim::Simulator& sim_;
  std::vector<fabric::Initiator*> backends_;
  bool load_balance_reads_;
  uint64_t lb_rr_ = 0;  // epsilon-probe counter for replica selection
  std::vector<int> node_of_;   // backend -> node; empty = node == backend
  std::vector<uint8_t> down_;  // observed per-backend down flags
  std::deque<DirtyReplica> dirty_;
  std::function<void()> dirty_cb_;
  Stats stats_;

  int32_t instance_ = -1;
  obs::Observability* obs_ = nullptr;
  obs::Counter* m_failover_ = nullptr;
  obs::Counter* m_degraded_ = nullptr;
  obs::Counter* m_rebuild_bytes_ = nullptr;
  obs::Counter* m_lost_ = nullptr;
  obs::Gauge* m_dirty_ = nullptr;
  check::InvariantChecker* chk_ = nullptr;
};

}  // namespace gimbal::kv
