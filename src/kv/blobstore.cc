#include "kv/blobstore.h"

#include <cassert>
#include <memory>

namespace gimbal::kv {

void Blobstore::Read(const BlobAddr& addr, IoPriority prio, DoneFn done) {
  assert(addr.valid());
  ++stats_.reads;
  stats_.read_bytes += addr.bytes;
  backends_[static_cast<size_t>(addr.backend)]->Submit(
      IoType::kRead, addr.offset, PageAligned(addr.bytes), prio,
      [done = std::move(done)](const IoCompletion&, Tick) {
        if (done) done();
      });
}

void Blobstore::Write(const BlobAddr& addr, IoPriority prio, DoneFn done) {
  assert(addr.valid());
  ++stats_.writes;
  stats_.write_bytes += addr.bytes;
  backends_[static_cast<size_t>(addr.backend)]->Submit(
      IoType::kWrite, addr.offset, PageAligned(addr.bytes), prio,
      [done = std::move(done)](const IoCompletion&, Tick) {
        if (done) done();
      });
}

void Blobstore::Trim(const BlobAddr& addr) {
  assert(addr.valid());
  ++stats_.trims;
  backends_[static_cast<size_t>(addr.backend)]->Trim(addr.offset,
                                                     PageAligned(addr.bytes));
}

void Blobstore::WriteReplicated(const BlobAddr& primary,
                                const BlobAddr& shadow, IoPriority prio,
                                DoneFn done) {
  if (!shadow.valid()) {
    Write(primary, prio, std::move(done));
    return;
  }
  auto remaining = std::make_shared<int>(2);
  auto joint = [remaining, done = std::move(done)]() {
    if (--*remaining == 0 && done) done();
  };
  Write(primary, prio, joint);
  Write(shadow, prio, joint);
}

void Blobstore::ReadBalanced(const BlobAddr& primary, const BlobAddr& shadow,
                             IoPriority prio, DoneFn done) {
  if (!load_balance_reads_ || !shadow.valid()) {
    Read(primary, prio, std::move(done));
    return;
  }
  // §4.3: the replica whose remote SSD holds more credits absorbs the
  // read. Credits are only refreshed by completions on that backend, so a
  // small fraction of reads deliberately probes the *less*-credited
  // replica to keep its estimate fresh (else a cold backend's stale low
  // credit would pin all traffic to one copy forever).
  bool shadow_wins = credits(shadow.backend) > credits(primary.backend);
  if (++lb_rr_ % 16 == 0) shadow_wins = !shadow_wins;
  if (shadow_wins) {
    ++stats_.balanced_to_shadow;
    Read(shadow, prio, std::move(done));
  } else {
    Read(primary, prio, std::move(done));
  }
}

}  // namespace gimbal::kv
