#include "kv/blobstore.h"

#include <cassert>
#include <memory>
#include <utility>

#include "obs/schema.h"

namespace gimbal::kv {

void Blobstore::AttachObservability(obs::Observability* obs,
                                    int32_t instance) {
  obs_ = obs;
  instance_ = instance;
  if (!obs_) return;
  const obs::Labels l = obs::Labels::TenantSsd(instance, -1);
  m_failover_ = &obs_->metrics.GetCounter(obs::schema::kKvFailoverReads, l);
  m_degraded_ = &obs_->metrics.GetCounter(obs::schema::kKvDegradedWrites, l);
  m_rebuild_bytes_ =
      &obs_->metrics.GetCounter(obs::schema::kKvRebuildBytes, l);
  m_lost_ = &obs_->metrics.GetCounter(obs::schema::kKvLostWrites, l);
  m_dirty_ = &obs_->metrics.GetGauge(obs::schema::kKvDirtyReplicas, l);
}

void Blobstore::ObserveStatus(int backend, IoStatus status) {
  uint8_t& d = down_[static_cast<size_t>(backend)];
  if (status == IoStatus::kDeviceFailed) {
    d = 1;
  } else if (status == IoStatus::kOk && d != 0) {
    // The backend served an IO again: it recovered. Wake the rebuild
    // scanner — dirty replicas destined here can drain now.
    d = 0;
    if (dirty_cb_ && !dirty_.empty()) dirty_cb_();
  }
}

void Blobstore::Read(const BlobAddr& addr, IoPriority prio, DoneFn done) {
  assert(addr.valid());
  ++stats_.reads;
  stats_.read_bytes += addr.bytes;
  backends_[static_cast<size_t>(addr.backend)]->Submit(
      IoType::kRead, addr.offset, PageAligned(addr.bytes), prio,
      [this, backend = addr.backend, done = std::move(done)](
          const IoCompletion& cpl, Tick) {
        ObserveStatus(backend, cpl.status);
        if (done) done(cpl.status);
      });
}

void Blobstore::Write(const BlobAddr& addr, IoPriority prio, DoneFn done) {
  assert(addr.valid());
  ++stats_.writes;
  stats_.write_bytes += addr.bytes;
  backends_[static_cast<size_t>(addr.backend)]->Submit(
      IoType::kWrite, addr.offset, PageAligned(addr.bytes), prio,
      [this, backend = addr.backend, done = std::move(done)](
          const IoCompletion& cpl, Tick) {
        ObserveStatus(backend, cpl.status);
        if (done) done(cpl.status);
      });
}

void Blobstore::Trim(const BlobAddr& addr) {
  assert(addr.valid());
  ++stats_.trims;
  backends_[static_cast<size_t>(addr.backend)]->Trim(addr.offset,
                                                     PageAligned(addr.bytes));
  // Dirty entries whose data (either copy) this trim kills are moot: the
  // blob was freed (flushed WAL, compacted table) before its repair ran.
  for (auto it = dirty_.begin(); it != dirty_.end();) {
    if (Overlap(it->dirty, addr) || Overlap(it->source, addr)) {
      ++stats_.dirty_dropped;
      if (chk_) {
        chk_->OnKvDirtyDrop(static_cast<TenantId>(instance_),
                            it->dirty.backend, it->dirty.bytes);
      }
      it = dirty_.erase(it);
    } else {
      ++it;
    }
  }
  UpdateDirtyGauge();
}

// ---------------------------------------------------------------------------
// Replicated writes + dirty-replica ledger
// ---------------------------------------------------------------------------

void Blobstore::UpdateDirtyGauge() {
  if (m_dirty_) m_dirty_->Set(static_cast<double>(dirty_.size()));
}

void Blobstore::RecordDirty(const BlobAddr& dirty, const BlobAddr& source) {
  ++stats_.dirty_recorded;
  dirty_.push_back(DirtyReplica{dirty, source});
  if (chk_) {
    chk_->OnKvDirtyRecord(static_cast<TenantId>(instance_), dirty.backend,
                          dirty.bytes);
  }
  UpdateDirtyGauge();
  if (dirty_cb_) dirty_cb_();
}

bool Blobstore::TakeDirty(DirtyReplica* out) {
  if (dirty_.empty()) return false;
  *out = dirty_.front();
  dirty_.pop_front();
  UpdateDirtyGauge();
  return true;
}

void Blobstore::RequeueDirty(const DirtyReplica& d) {
  dirty_.push_back(d);
  UpdateDirtyGauge();
}

void Blobstore::MarkRepaired(const DirtyReplica& d) {
  ++stats_.dirty_repaired;
  stats_.rebuild_bytes += d.dirty.bytes;
  if (m_rebuild_bytes_) m_rebuild_bytes_->Add(d.dirty.bytes);
  if (chk_) {
    chk_->OnKvDirtyRepair(static_cast<TenantId>(instance_), d.dirty.backend,
                          d.dirty.bytes);
  }
  if (obs_) {
    obs_->tracer.Instant(
        sim_.now(), obs::schema::kEvKvRebuild,
        obs::Labels::TenantSsd(instance_, d.dirty.backend),
        {{"bytes", static_cast<double>(d.dirty.bytes)}});
  }
  UpdateDirtyGauge();
}

void Blobstore::WriteReplicated(const BlobAddr& primary,
                                const BlobAddr& shadow, IoPriority prio,
                                DoneFn done) {
  if (!shadow.valid()) {
    Write(primary, prio, std::move(done));
    return;
  }
  if (chk_) {
    // Every replicated write proves its placement: the two copies must sit
    // on distinct failure domains (kv.placement.domain, docs/TESTING.md).
    chk_->OnKvReplicaPlacement(static_cast<TenantId>(instance_),
                               primary.backend, shadow.backend,
                               NodeOf(primary.backend),
                               NodeOf(shadow.backend));
  }
  struct JoinCtx {
    int remaining = 2;
    IoStatus primary_status = IoStatus::kOk;
    IoStatus shadow_status = IoStatus::kOk;
  };
  auto ctx = std::make_shared<JoinCtx>();
  auto joint = [this, ctx, primary, shadow,
                done = std::move(done)]() {
    if (--ctx->remaining != 0) return;
    const bool p_ok = ctx->primary_status == IoStatus::kOk;
    const bool s_ok = ctx->shadow_status == IoStatus::kOk;
    if (p_ok && s_ok) {
      if (chk_) {
        chk_->OnKvWriteAck(static_cast<TenantId>(instance_), primary.backend,
                           /*durable=*/2, /*acked=*/true);
      }
      if (done) done(IoStatus::kOk);
      return;
    }
    if (p_ok != s_ok) {
      const IoStatus bad =
          p_ok ? ctx->shadow_status : ctx->primary_status;
      if (bad == IoStatus::kAborted) {
        // Teardown, not a fault: the caller is shutting down and must not
        // treat the write as replicated-durable.
        if (done) done(IoStatus::kAborted);
        return;
      }
      // Quorum-of-available: one copy is durable — ack, and queue the
      // missing copy for background re-replication.
      ++stats_.degraded_writes;
      if (m_degraded_) m_degraded_->Add();
      const BlobAddr& dirty = p_ok ? shadow : primary;
      const BlobAddr& source = p_ok ? primary : shadow;
      if (obs_) {
        obs_->tracer.Instant(
            sim_.now(), obs::schema::kEvKvDegradedWrite,
            obs::Labels::TenantSsd(instance_, dirty.backend),
            {{"bytes", static_cast<double>(dirty.bytes)},
             {"status", static_cast<double>(bad)}});
      }
      RecordDirty(dirty, source);
      if (chk_) {
        chk_->OnKvWriteAck(static_cast<TenantId>(instance_), dirty.backend,
                           /*durable=*/1, /*acked=*/true);
      }
      if (done) done(IoStatus::kOk);
      return;
    }
    // Both replicas failed: no ack — propagate so the caller retries (the
    // WAL holds its waiters; kv.lost_writes stays 0 by construction).
    if (chk_) {
      chk_->OnKvWriteAck(static_cast<TenantId>(instance_), primary.backend,
                         /*durable=*/0, /*acked=*/false);
    }
    const IoStatus st = ctx->primary_status != IoStatus::kAborted
                            ? ctx->primary_status
                            : ctx->shadow_status;
    if (done) done(st);
  };
  Write(primary, prio, [ctx, joint](IoStatus st) {
    ctx->primary_status = st;
    joint();
  });
  Write(shadow, prio, [ctx, joint](IoStatus st) {
    ctx->shadow_status = st;
    joint();
  });
}

// ---------------------------------------------------------------------------
// Load-balanced reads with failover
// ---------------------------------------------------------------------------

void Blobstore::StartRead(const std::shared_ptr<ReadCtx>& ctx,
                          bool use_shadow) {
  const BlobAddr& addr = use_shadow ? ctx->shadow : ctx->primary;
  ++ctx->attempts;
  if (use_shadow) ++stats_.balanced_to_shadow;
  Read(addr, ctx->prio, [this, ctx, use_shadow](IoStatus st) {
    if (st == IoStatus::kOk || st == IoStatus::kAborted ||
        ctx->attempts >= ctx->budget) {
      if (ctx->done) ctx->done(st);
      return;
    }
    // Failover: retry the other replica (or the same one when this blob is
    // unreplicated) after the initiator-policy backoff for this attempt.
    const bool next_shadow = ctx->shadow.valid() ? !use_shadow : false;
    const BlobAddr& next =
        next_shadow ? ctx->shadow : ctx->primary;
    ++stats_.failover_reads;
    if (m_failover_) m_failover_->Add();
    if (obs_) {
      obs_->tracer.Instant(
          sim_.now(), obs::schema::kEvKvFailover,
          obs::Labels::TenantSsd(instance_, next.backend),
          {{"attempt", static_cast<double>(ctx->attempts)},
           {"status", static_cast<double>(st)}});
    }
    const Tick backoff = RetryBackoff(next.backend, ctx->attempts);
    if (backoff > 0) {
      sim_.After(backoff,
                 [this, ctx, next_shadow]() { StartRead(ctx, next_shadow); });
    } else {
      StartRead(ctx, next_shadow);
    }
  });
}

void Blobstore::ReadBalanced(const BlobAddr& primary, const BlobAddr& shadow,
                             IoPriority prio, DoneFn done) {
  if (!shadow.valid()) {
    // Unreplicated: no failover target, but still budget-retry the single
    // copy on transient errors (media-error windows end).
    auto ctx = std::make_shared<ReadCtx>();
    ctx->primary = primary;
    ctx->shadow = shadow;
    ctx->prio = prio;
    ctx->done = std::move(done);
    ctx->budget = ReadBudget(primary.backend);
    StartRead(ctx, /*use_shadow=*/false);
    return;
  }
  // §4.3: the replica whose remote SSD holds more credits absorbs the
  // read. Credits are only refreshed by completions on that backend, so a
  // small fraction of reads deliberately probes the *less*-credited
  // replica to keep its estimate fresh (else a cold backend's stale low
  // credit would pin all traffic to one copy forever).
  bool shadow_wins = false;
  if (load_balance_reads_) {
    shadow_wins = credits(shadow.backend) > credits(primary.backend);
    if (++lb_rr_ % 16 == 0) shadow_wins = !shadow_wins;
  }
  // Never knowingly read a down backend while the other copy is up — this
  // also keeps the forced probe off a failed replica (it re-learns health
  // through the failover path's completions instead).
  if (shadow_wins && backend_down(shadow.backend) &&
      !backend_down(primary.backend)) {
    shadow_wins = false;
  } else if (!shadow_wins && backend_down(primary.backend) &&
             !backend_down(shadow.backend)) {
    shadow_wins = true;
  }
  auto ctx = std::make_shared<ReadCtx>();
  ctx->primary = primary;
  ctx->shadow = shadow;
  ctx->prio = prio;
  ctx->done = std::move(done);
  ctx->budget = ReadBudget(primary.backend);
  StartRead(ctx, shadow_wins);
}

}  // namespace gimbal::kv
