// KV cluster harness: N RocksDB-like instances over a pool of remote SSDs,
// wired exactly as §4.3 describes — per-instance initiators to every
// backend, a shared rack-scale global blob allocator, per-instance local
// allocators, blobstore with replication + credit-based load balancing —
// plus a closed-loop YCSB client per instance (§5.6's setup).
#pragma once

#include <memory>
#include <vector>

#include "common/histogram.h"
#include "kv/blobstore.h"
#include "kv/db.h"
#include "kv/hba.h"
#include "kv/rebuild.h"
#include "workload/runner.h"
#include "workload/ycsb.h"

namespace gimbal::kv {

struct KvClusterConfig {
  workload::TestbedConfig testbed;  // num_ssds = number of backends
  HbaConfig hba;
  KvDbConfig db;
  bool load_balance_reads = true;
  // Fig 13 ablation: force a client throttle regardless of scheme.
  std::optional<fabric::ThrottleMode> throttle;
};

class KvCluster {
 public:
  struct Instance {
    int id = -1;  // tenant label on kv.* metrics and checker ledgers
    std::vector<fabric::Initiator*> initiators;  // one per backend
    std::unique_ptr<Blobstore> blobs;
    std::unique_ptr<LocalBlobAllocator> alloc;
    std::unique_ptr<KvDb> db;
    // Drains the blobstore's dirty-replica ledger after degraded writes.
    std::unique_ptr<RebuildScanner> rebuild;
  };

  explicit KvCluster(KvClusterConfig cfg);

  Instance& AddInstance();

  workload::Testbed& bed() { return bed_; }
  sim::Simulator& sim() { return bed_.sim(); }
  GlobalBlobAllocator& global_allocator() { return global_; }
  std::vector<std::unique_ptr<Instance>>& instances() { return instances_; }

 private:
  KvClusterConfig cfg_;
  workload::Testbed bed_;
  GlobalBlobAllocator global_;
  std::vector<std::unique_ptr<Instance>> instances_;
};

// Closed-loop YCSB driver against one DB instance.
class YcsbClient {
 public:
  YcsbClient(sim::Simulator& sim, KvDb& db, workload::YcsbSpec spec,
             int concurrency = 4);

  void Start();
  void Stop() { running_ = false; }

  struct Stats {
    uint64_t ops = 0;
    uint64_t reads = 0;
    uint64_t updates = 0;
    uint64_t inserts = 0;
    uint64_t rmws = 0;
    uint64_t scans = 0;
    uint64_t scanned_records = 0;
    uint64_t not_found = 0;
    uint64_t failed = 0;   // ops resolved with a fault status
    uint64_t aborted = 0;  // ops killed by a crash / teardown (kAborted)
    LatencyHistogram read_latency;  // client-observed Get latency
    LatencyHistogram op_latency;    // all ops end-to-end
    void Reset() { *this = Stats{}; }
  };
  Stats& stats() { return stats_; }

 private:
  void IssueOne();
  void Finish(Tick start, bool is_read);
  // Tally a terminal status; returns true when the op resolved kOk.
  bool Note(IoStatus st);

  sim::Simulator& sim_;
  KvDb& db_;
  workload::YcsbGenerator gen_;
  int concurrency_;
  bool running_ = false;
  uint64_t next_stamp_ = 1;
  Stats stats_;
};

}  // namespace gimbal::kv
