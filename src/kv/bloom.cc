#include "kv/bloom.h"

#include <algorithm>

namespace gimbal::kv {

BloomFilter::BloomFilter(uint64_t expected_keys, int bits_per_key) {
  uint64_t bits = std::max<uint64_t>(64, expected_keys * bits_per_key);
  bits_.assign((bits + 63) / 64, 0);
  // Optimal hash count ~ 0.69 * bits_per_key.
  num_hashes_ = std::clamp(static_cast<int>(bits_per_key * 0.69), 1, 12);
}

uint64_t BloomFilter::Hash(uint64_t key, uint64_t seed) {
  // SplitMix64-style mix with a per-hash seed.
  uint64_t z = key + seed * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void BloomFilter::Add(uint64_t key) {
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = Hash(key, static_cast<uint64_t>(i) + 1) % bit_count();
    bits_[bit / 64] |= uint64_t{1} << (bit % 64);
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  for (int i = 0; i < num_hashes_; ++i) {
    uint64_t bit = Hash(key, static_cast<uint64_t>(i) + 1) % bit_count();
    if ((bits_[bit / 64] & (uint64_t{1} << (bit % 64))) == 0) return false;
  }
  return true;
}

}  // namespace gimbal::kv
