// In-memory write buffer of the LSM tree (RocksDB's memtable, Appendix E).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "kv/types.h"

namespace gimbal::kv {

class Memtable {
 public:
  // Approximate bytes a stored entry occupies on flush (key + metadata).
  static constexpr uint32_t kEntryOverhead = 16;

  void Put(Key key, const Value& value) {
    auto [it, inserted] = entries_.insert_or_assign(key, value);
    (void)it;
    if (inserted) {
      bytes_ += value.bytes + kEntryOverhead;
    }  // overwrite: size delta is negligible for fixed-size YCSB values
  }

  std::optional<Value> Get(Key key) const {
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  uint64_t bytes() const { return bytes_; }
  uint64_t count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // Sorted snapshot for flushing into an SSTable.
  std::vector<std::pair<Key, Value>> Sorted() const {
    return {entries_.begin(), entries_.end()};
  }

 private:
  std::map<Key, Value> entries_;
  uint64_t bytes_ = 0;
};

}  // namespace gimbal::kv
