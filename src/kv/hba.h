// Hierarchical blob allocator (§4.3).
//
// Two levels, exactly as the paper describes:
//   * a rack-scale *global* allocator divides each backend SSD into mega
//     blobs (large contiguous chunks) tracked by bitmap;
//   * each DB instance runs a *local* agent that carves mega blobs into
//     micro blobs and serves file allocations from its free list, going
//     back to the global allocator only when the local pool is empty.
// Both levels are load-aware: given a per-backend credit reading (§3.7's
// virtual view), they prefer the least-loaded backend.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "kv/types.h"

namespace gimbal::kv {

struct HbaConfig {
  uint64_t backend_bytes = 512ull << 20;
  uint64_t mega_bytes = 4ull << 20;     // paper: 4 GB, scaled with capacity
  uint32_t micro_bytes = 256 * 1024;    // paper: 256 KB
};

// Rack-scale global allocator (one per cluster, shared by all instances).
class GlobalBlobAllocator {
 public:
  GlobalBlobAllocator(int backends, HbaConfig config);

  // Allocate one mega blob on `backend`; nullopt when that SSD is full.
  std::optional<BlobAddr> AllocateMega(int backend);
  void FreeMega(const BlobAddr& mega);

  int backends() const { return static_cast<int>(bitmaps_.size()); }
  uint64_t FreeMegasOn(int backend) const;
  const HbaConfig& config() const { return config_; }

 private:
  HbaConfig config_;
  uint64_t megas_per_backend_;
  std::vector<std::vector<bool>> bitmaps_;  // [backend][mega] true = in use
};

// Per-instance local agent: micro-blob free lists over owned mega blobs.
class LocalBlobAllocator {
 public:
  // `credit_of(backend)` reads the virtual-view load signal; higher credit
  // = less loaded = preferred (§4.3's "maximum credit" policy).
  LocalBlobAllocator(GlobalBlobAllocator& global,
                     std::function<uint32_t(int)> credit_of);

  // Rack topology (docs/SIMULATOR.md): `node_of[b]` is the failure domain
  // backend `b` lives on. Exclusion below is domain-wide, so replicas never
  // share a node. Unset, every backend is its own domain — exactly the
  // pre-rack per-backend exclusion.
  void SetNodeMap(std::vector<int> node_of) { node_of_ = std::move(node_of); }
  int NodeOf(int backend) const {
    return node_of_.empty() ? backend : node_of_[static_cast<size_t>(backend)];
  }

  // Allocate one micro blob. `exclude_backend` (>=0) forces the choice
  // off that backend's entire failure domain — used to place a shadow
  // replica off the primary's node.
  std::optional<BlobAddr> AllocateMicro(int exclude_backend = -1);
  void FreeMicro(const BlobAddr& micro);

  // Pick the least-loaded backend by credits (ties: lowest index).
  int PreferredBackend(int exclude_backend = -1) const;

  size_t FreeMicrosOn(int backend) const;

 private:
  bool RefillFrom(int backend);

  GlobalBlobAllocator& global_;
  std::function<uint32_t(int)> credit_of_;
  std::vector<int> node_of_;  // empty: node == backend
  std::vector<std::vector<BlobAddr>> free_micros_;  // per backend
};

}  // namespace gimbal::kv
