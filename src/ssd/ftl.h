// Flash translation layer: page-level logical-to-physical mapping, per-die
// block allocation, greedy garbage-collection victim selection, and dynamic
// wear levelling.
//
// The FTL is a *pure state machine* — it never touches the simulator clock.
// The timed Ssd device charges NAND time for the operations the FTL
// reports, and the preconditioning helpers drive the same state machine
// synchronously (so "fragment this SSD" takes milliseconds of wall time,
// not minutes of simulated events).
#pragma once

#include <cstdint>
#include <vector>

#include "ssd/config.h"

namespace gimbal::ssd {

// Physical page number: block * pages_per_block + offset_in_block.
using Ppn = uint32_t;
using Lpn = uint32_t;
constexpr uint32_t kInvalidPage = UINT32_MAX;

class Ftl {
 public:
  explicit Ftl(const SsdConfig& config);

  // --- Address translation -------------------------------------------------
  // Returns the physical page backing `lpn`, or kInvalidPage if never
  // written (reads of unwritten space are serviced as zeroes).
  Ppn Translate(Lpn lpn) const { return l2p_[lpn]; }

  int DieOfBlock(uint32_t block) const {
    return static_cast<int>(block % static_cast<uint32_t>(config_.dies()));
  }
  int DieOfPpn(Ppn ppn) const { return DieOfBlock(BlockOf(ppn)); }
  uint32_t BlockOf(Ppn ppn) const { return ppn / config_.pages_per_block; }

  // --- Writes --------------------------------------------------------------
  // Map `lpn` to the next free page of `die`'s open block, invalidating any
  // previous mapping. Opens a new block (wear-levelled pick from the die's
  // free list) when the current one fills. Requires CanAllocate(die).
  Ppn AllocateOnDie(Lpn lpn, int die);

  // True if the die has an open page or at least one free block.
  bool CanAllocate(int die) const;

  // Free blocks currently available on `die` (open block excluded).
  int FreeBlocks(int die) const { return static_cast<int>(free_blocks_[die].size()); }

  // Drop the mapping of `lpn` (NVMe deallocate / TRIM): its physical copy
  // becomes stale immediately, so GC never has to relocate it.
  void Trim(Lpn lpn) {
    Invalidate(lpn);
    l2p_[lpn] = kInvalidPage;
  }

  // --- Garbage collection ---------------------------------------------------
  bool NeedsGc(int die) const {
    return FreeBlocks(die) < config_.gc_low_watermark;
  }
  bool GcSatisfied(int die) const {
    return FreeBlocks(die) >= config_.gc_high_watermark;
  }
  // Host-visible allocation must keep a reserve so GC can always proceed.
  bool HostWriteAllowed(int die) const {
    return FreeBlocks(die) > config_.host_write_reserve;
  }

  // Greedy victim: fully-written block on `die` with the fewest valid pages
  // (never the open block). Returns the block id or -1 if none.
  int SelectGcVictim(int die) const;

  // All still-valid logical pages in `block`, in block order.
  std::vector<Lpn> CollectValid(uint32_t block) const;

  // Erase `block`: it must have zero valid pages; returns it to the die's
  // free list and bumps its erase count.
  void EraseBlock(uint32_t block);

  // Synchronous GC used by preconditioning: relocate + erase until the die
  // reaches the high watermark. Counts relocated pages into stats.
  void GcSynchronous(int die);

  // --- Preconditioning ------------------------------------------------------
  // Write the whole logical space sequentially, striping program units
  // round-robin across dies (the clean, "bathtub-fresh" state).
  void PreconditionSequential();
  // Sequential fill, then `overwrite_factor` x logical-capacity of uniform
  // random 4 KiB overwrites — the fragmented steady state.
  void PreconditionRandom(double overwrite_factor, uint64_t seed = 42);

  // --- Introspection --------------------------------------------------------
  uint16_t ValidPages(uint32_t block) const { return valid_count_[block]; }
  uint32_t EraseCount(uint32_t block) const { return erase_count_[block]; }
  const SsdConfig& config() const { return config_; }

  struct Stats {
    uint64_t host_pages_written = 0;   // pages allocated on behalf of host
    uint64_t gc_pages_relocated = 0;   // pages moved by GC
    uint64_t blocks_erased = 0;
    double WriteAmplification() const {
      if (host_pages_written == 0) return 1.0;
      return 1.0 + static_cast<double>(gc_pages_relocated) /
                       static_cast<double>(host_pages_written);
    }
  };
  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }

  // Tag the next allocations as GC relocations (accounting only).
  void BeginGcAllocation() { allocating_for_gc_ = true; }
  void EndGcAllocation() { allocating_for_gc_ = false; }

  // Round-robin die cursor used by writers that do not care which die a
  // page lands on; advances one program unit at a time so that sequential
  // data is striped in read-unit-sized chunks.
  int NextWriteDie();

 private:
  void OpenNewBlock(int die);
  void Invalidate(Lpn lpn);

  SsdConfig config_;
  std::vector<Ppn> l2p_;                  // lpn -> ppn
  std::vector<Lpn> p2l_;                  // ppn -> lpn (kInvalidPage if stale)
  std::vector<uint16_t> valid_count_;     // per block
  std::vector<uint16_t> write_ptr_;       // per block: next free page offset
  std::vector<uint32_t> erase_count_;     // per block (wear levelling)
  std::vector<std::vector<uint32_t>> free_blocks_;  // per die
  std::vector<int32_t> open_block_;       // per die, -1 if none
  Stats stats_;
  bool allocating_for_gc_ = false;
  int write_die_cursor_ = 0;
  uint32_t write_die_budget_ = 0;  // pages left before cursor advances
};

}  // namespace gimbal::ssd
