#include "ssd/ftl.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"

namespace gimbal::ssd {

Ftl::Ftl(const SsdConfig& config) : config_(config) {
  const uint32_t blocks = config_.physical_blocks();
  const uint32_t pages = blocks * config_.pages_per_block;
  l2p_.assign(config_.logical_pages(), kInvalidPage);
  p2l_.assign(pages, kInvalidPage);
  valid_count_.assign(blocks, 0);
  write_ptr_.assign(blocks, 0);
  erase_count_.assign(blocks, 0);
  free_blocks_.resize(config_.dies());
  open_block_.assign(config_.dies(), -1);
  // Block b lives on die b % dies; hand every block to its die's free list.
  for (uint32_t b = 0; b < blocks; ++b) {
    free_blocks_[DieOfBlock(b)].push_back(b);
  }
}

bool Ftl::CanAllocate(int die) const {
  if (open_block_[die] >= 0 &&
      write_ptr_[open_block_[die]] < config_.pages_per_block) {
    return true;
  }
  return !free_blocks_[die].empty();
}

void Ftl::OpenNewBlock(int die) {
  auto& free = free_blocks_[die];
  assert(!free.empty() && "die out of free blocks");
  // Dynamic wear levelling: pick the free block with the lowest erase count.
  size_t best = 0;
  for (size_t i = 1; i < free.size(); ++i) {
    if (erase_count_[free[i]] < erase_count_[free[best]]) best = i;
  }
  uint32_t block = free[best];
  free[best] = free.back();
  free.pop_back();
  open_block_[die] = static_cast<int32_t>(block);
  assert(write_ptr_[block] == 0);
}

void Ftl::Invalidate(Lpn lpn) {
  Ppn old = l2p_[lpn];
  if (old == kInvalidPage) return;
  uint32_t block = BlockOf(old);
  assert(valid_count_[block] > 0);
  --valid_count_[block];
  p2l_[old] = kInvalidPage;
}

Ppn Ftl::AllocateOnDie(Lpn lpn, int die) {
  assert(lpn < l2p_.size());
  if (open_block_[die] < 0 ||
      write_ptr_[open_block_[die]] >= config_.pages_per_block) {
    OpenNewBlock(die);
  }
  Invalidate(lpn);
  uint32_t block = static_cast<uint32_t>(open_block_[die]);
  uint16_t off = write_ptr_[block]++;
  Ppn ppn = block * config_.pages_per_block + off;
  l2p_[lpn] = ppn;
  p2l_[ppn] = lpn;
  ++valid_count_[block];
  if (allocating_for_gc_) {
    ++stats_.gc_pages_relocated;
  } else {
    ++stats_.host_pages_written;
  }
  return ppn;
}

int Ftl::SelectGcVictim(int die) const {
  int best = -1;
  uint16_t best_valid = UINT16_MAX;
  const uint32_t dies = static_cast<uint32_t>(config_.dies());
  for (uint32_t b = static_cast<uint32_t>(die); b < valid_count_.size();
       b += dies) {
    if (static_cast<int32_t>(b) == open_block_[die]) continue;
    if (write_ptr_[b] < config_.pages_per_block) continue;  // not full
    if (valid_count_[b] < best_valid) {
      best_valid = valid_count_[b];
      best = static_cast<int>(b);
      if (best_valid == 0) break;  // cannot do better
    }
  }
  return best;
}

std::vector<Lpn> Ftl::CollectValid(uint32_t block) const {
  std::vector<Lpn> out;
  out.reserve(valid_count_[block]);
  Ppn base = block * config_.pages_per_block;
  for (uint32_t i = 0; i < config_.pages_per_block; ++i) {
    if (p2l_[base + i] != kInvalidPage) out.push_back(p2l_[base + i]);
  }
  return out;
}

void Ftl::EraseBlock(uint32_t block) {
  assert(valid_count_[block] == 0);
  assert(write_ptr_[block] == config_.pages_per_block &&
         "erasing a partially written block");
  Ppn base = block * config_.pages_per_block;
  for (uint32_t i = 0; i < config_.pages_per_block; ++i) {
    p2l_[base + i] = kInvalidPage;
  }
  write_ptr_[block] = 0;
  ++erase_count_[block];
  ++stats_.blocks_erased;
  free_blocks_[DieOfBlock(block)].push_back(block);
}

void Ftl::GcSynchronous(int die) {
  while (!GcSatisfied(die)) {
    int victim = SelectGcVictim(die);
    if (victim < 0) return;  // nothing reclaimable
    if (valid_count_[victim] >= config_.pages_per_block) {
      // Every candidate is fully valid: relocation cannot gain space on
      // this die (it is packed solid). Bail out rather than livelock.
      return;
    }
    BeginGcAllocation();
    for (Lpn lpn : CollectValid(static_cast<uint32_t>(victim))) {
      AllocateOnDie(lpn, die);
    }
    EndGcAllocation();
    EraseBlock(static_cast<uint32_t>(victim));
  }
}

int Ftl::NextWriteDie() {
  if (write_die_budget_ == 0) {
    write_die_cursor_ = (write_die_cursor_ + 1) % config_.dies();
    write_die_budget_ = config_.program_unit_pages;
  }
  --write_die_budget_;
  return write_die_cursor_;
}

void Ftl::PreconditionSequential() {
  const uint32_t pages = config_.logical_pages();
  for (Lpn lpn = 0; lpn < pages; ++lpn) {
    int die = NextWriteDie();
    if (!CanAllocate(die) || NeedsGc(die)) GcSynchronous(die);
    AllocateOnDie(lpn, die);
  }
  // Preconditioning is device state, not workload history.
  stats_ = Stats{};
}

void Ftl::PreconditionRandom(double overwrite_factor, uint64_t seed) {
  PreconditionSequential();
  Rng rng(seed);
  const uint32_t pages = config_.logical_pages();
  const uint64_t total =
      static_cast<uint64_t>(overwrite_factor * static_cast<double>(pages));
  for (uint64_t i = 0; i < total; ++i) {
    Lpn lpn = static_cast<Lpn>(rng.NextBounded(pages));
    int die = NextWriteDie();
    if (!CanAllocate(die) || NeedsGc(die)) GcSynchronous(die);
    AllocateOnDie(lpn, die);
  }
  stats_ = Stats{};
}

}  // namespace gimbal::ssd
