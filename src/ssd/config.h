// SSD model configuration, calibrated to the devices the paper used.
//
// The default parameter set targets the Samsung DCT983 960GB numbers the
// paper reports (4 KB random read ~1.6 GB/s, 128 KB read ~3.2 GB/s, clean
// sequential write ~1.0 GB/s, fragmented 4 KB random write ~180 MB/s,
// worst-case write cost ~9). `IntelP3600Like()` is the §5.8 generalization
// device (2-bit MLC: lower large-read bandwidth, higher random write).
#pragma once

#include <cstdint>

#include "common/time.h"

namespace gimbal::ssd {

struct SsdConfig {
  // --- Geometry -----------------------------------------------------------
  int channels = 8;
  int dies_per_channel = 4;             // 32 dies total
  uint32_t page_bytes = 4096;           // logical & physical page size
  uint32_t pages_per_block = 128;       // 512 KiB blocks
  uint64_t logical_bytes = 512ull << 20;  // scaled-down logical capacity
  double over_provisioning = 0.12;      // physical = logical * (1 + OP)

  // --- NAND timing ---------------------------------------------------------
  Tick read_latency = Microseconds(65);     // sense, per read unit
  Tick program_latency = Microseconds(500); // per multi-plane program unit
  Tick erase_latency = Milliseconds(3);
  // Erases execute in suspendable slices so queued host reads are not
  // blocked for a full block erase (real controllers implement
  // erase/program suspension for exactly this reason).
  int erase_slices = 4;
  uint32_t read_unit_pages = 4;         // max pages per sense (multi-plane)
  uint32_t program_unit_pages = 4;      // pages per program (16 KiB)

  // --- Data path -----------------------------------------------------------
  double channel_bw = 400e6;            // bytes/sec per channel
  Tick cmd_cost = Nanoseconds(2400);    // controller per-command processing
  double dram_bw = 6e9;                 // write-buffer copy bandwidth
  Tick dram_latency = Microseconds(8);  // buffer-hit read / write-ack latency
  // Sustained-write buffer (capacitor-backed region of the DRAM). Small on
  // purpose: datacenter SSDs only ack writes from a power-safe area, so a
  // sustained writer quickly sees NAND-bound latency — the signal Gimbal's
  // write-cost estimator keys off (§3.4).
  uint64_t write_buffer_bytes = 4ull << 20;

  // --- Garbage collection ---------------------------------------------------
  // Watermarks are deliberately small: physical_blocks() adds
  // gc_high_watermark blocks per die *on top of* the over-provisioned
  // capacity, so at GC steady state (free ~ high watermark) the occupied
  // blocks hold logical/(logical*(1+OP)) ~ 0.89 valid data — the regime
  // that yields the paper's fragmented write-amplification of ~4-5.
  int gc_low_watermark = 3;    // free blocks per die that trigger GC
  int gc_high_watermark = 4;   // GC runs until this many free blocks
  int host_write_reserve = 2;  // host drain stalls at/below this many free

  // Nominal program drain bandwidth (bytes/sec) with all dies streaming —
  // used for the write buffer's progressive admission backpressure.
  double nominal_drain_bps() const {
    return static_cast<double>(dies()) * program_unit_pages * page_bytes *
           kNsPerSec / static_cast<double>(program_latency);
  }

  // Derived quantities.
  int dies() const { return channels * dies_per_channel; }
  uint64_t block_bytes() const {
    return static_cast<uint64_t>(pages_per_block) * page_bytes;
  }
  uint32_t logical_pages() const {
    return static_cast<uint32_t>(logical_bytes / page_bytes);
  }
  uint32_t physical_blocks() const {
    double phys = static_cast<double>(logical_bytes) * (1.0 + over_provisioning);
    uint32_t blocks = static_cast<uint32_t>(phys / block_bytes());
    // Round up to a whole number of blocks per die, plus GC headroom.
    uint32_t per_die = (blocks + dies() - 1) / dies() + gc_high_watermark;
    return per_die * dies();
  }
  uint32_t blocks_per_die() const { return physical_blocks() / dies(); }
  uint32_t read_unit_bytes() const { return read_unit_pages * page_bytes; }
  uint32_t program_unit_bytes() const { return program_unit_pages * page_bytes; }

  static SsdConfig SamsungDct983Like() { return SsdConfig{}; }

  static SsdConfig IntelP3600Like() {
    SsdConfig c;
    // 2-bit MLC: faster programs (lower write cost), slower large reads.
    c.channel_bw = 260e6;                    // ~2.1 GB/s 128K reads
    c.program_latency = Microseconds(380);
    c.read_latency = Microseconds(85);
    c.over_provisioning = 0.25;              // DC-class OP, higher frag write
    c.cmd_cost = Nanoseconds(2900);
    return c;
  }
};

}  // namespace gimbal::ssd
