#include "ssd/ssd.h"

#include <cassert>

#include "obs/schema.h"

namespace gimbal::ssd {

void Ssd::AttachObservability(obs::Observability* obs, int ssd_index) {
  obs_ = obs;
  ssd_index_ = ssd_index;
  if (!obs_) return;
  namespace schema = obs::schema;
  const obs::Labels l = obs::Labels::Ssd(ssd_index_);
  obs::MetricsRegistry& reg = obs_->metrics;
  m_read_cmds_ = &reg.GetCounter(schema::kSsdReadCommands, l);
  m_write_cmds_ = &reg.GetCounter(schema::kSsdWriteCommands, l);
  m_read_bytes_ = &reg.GetCounter(schema::kSsdReadBytes, l);
  m_write_bytes_ = &reg.GetCounter(schema::kSsdWriteBytes, l);
  m_gc_runs_ = &reg.GetCounter(schema::kSsdGcInvocations, l);
  m_gc_pages_ = &reg.GetCounter(schema::kSsdGcPagesRelocated, l);
  m_gc_erased_ = &reg.GetCounter(schema::kSsdBlocksErased, l);
  m_buffer_used_ = &reg.GetGauge(schema::kSsdBufferUsed, l);
}

Ssd::Ssd(sim::Simulator& sim, SsdConfig config)
    : sim_(sim), config_(config), ftl_(config), cmd_engine_(sim) {
  die_res_.reserve(config_.dies());
  for (int d = 0; d < config_.dies(); ++d) {
    die_res_.push_back(std::make_unique<sim::PrioResource>(sim_));
  }
  channel_res_.reserve(config_.channels);
  for (int c = 0; c < config_.channels; ++c) {
    channel_res_.push_back(std::make_unique<sim::FifoResource>(sim_));
  }
  pump_active_.assign(config_.dies(), 0);
  gc_active_.assign(config_.dies(), 0);
}

Ssd::~Ssd() {
  // A testbed destroyed with IOs still dispatched (teardown mid-run, a
  // failed device drained administratively) also destroys the simulator's
  // queued die/channel events — the completions that would have freed
  // this state never run, so reap it here.
  while (pending_ops_) {
    PendingIo* op = pending_ops_;
    pending_ops_ = op->next;
    delete op;
  }
}

void Ssd::Submit(const DeviceIo& io, CompletionFn done) {
  assert(io.length > 0);
  assert(io.offset % config_.page_bytes == 0);
  assert(io.length % config_.page_bytes == 0);
  assert(io.offset + io.length <= config_.logical_bytes);
  ++inflight_;
  const Tick submit_time = sim_.now();
  // Controller front-end: each NVMe command costs cmd_cost of serialized
  // controller compute. This is the small-IO IOPS bound.
  cmd_engine_.Acquire(config_.cmd_cost,
                      [this, io, done = std::move(done), submit_time]() mutable {
                        if (io.type == IoType::kRead) {
                          DispatchRead(io, std::move(done), submit_time);
                        } else {
                          DispatchWrite(io, std::move(done), submit_time);
                        }
                      });
}

void Ssd::Trim(uint64_t offset, uint32_t length) {
  assert(offset % config_.page_bytes == 0);
  assert(length % config_.page_bytes == 0);
  const uint32_t first = static_cast<uint32_t>(offset / config_.page_bytes);
  const uint32_t npages = length / config_.page_bytes;
  for (uint32_t i = 0; i < npages; ++i) {
    Lpn lpn = first + i;
    // Copies still in the write buffer will be programmed and then count
    // as stale; the common case (cold data) just drops the mapping.
    if (ftl_.Translate(lpn) != kInvalidPage) {
      ftl_.Trim(lpn);
      ++counters_.trimmed_pages;
    }
  }
}

void Ssd::FinishPart(PendingIo* op) {
  if (--op->remaining == 0) {
    op->cpl.complete_time = sim_.now();
    --inflight_;
    op->done(op->cpl);
    UnlinkPending(op);
    delete op;
  }
}

void Ssd::DispatchRead(const DeviceIo& io, CompletionFn done,
                       Tick submit_time) {
  ++counters_.read_commands;
  counters_.read_bytes += io.length;
  if (m_read_cmds_) {
    m_read_cmds_->Add(1);
    m_read_bytes_->Add(io.length);
  }

  const uint32_t first = static_cast<uint32_t>(io.offset / config_.page_bytes);
  const uint32_t npages = io.length / config_.page_bytes;

  // Classify pages and coalesce NAND reads: physically-consecutive pages on
  // one die merge into a single multi-plane sense of up to read_unit_pages.
  std::vector<ReadGroup> groups;
  uint32_t buffered = 0;
  Ppn prev_ppn = kInvalidPage;
  for (uint32_t i = 0; i < npages; ++i) {
    Lpn lpn = first + i;
    if (buffer_map_.count(lpn)) {
      ++buffered;
      ++counters_.buffer_hit_pages;
      prev_ppn = kInvalidPage;
      continue;
    }
    Ppn ppn = ftl_.Translate(lpn);
    if (ppn == kInvalidPage) {
      ++counters_.unmapped_pages;
      prev_ppn = kInvalidPage;
      continue;
    }
    int die = ftl_.DieOfPpn(ppn);
    if (!groups.empty() && prev_ppn != kInvalidPage && ppn == prev_ppn + 1 &&
        groups.back().die == die &&
        groups.back().pages < config_.read_unit_pages) {
      ++groups.back().pages;
    } else {
      groups.push_back(ReadGroup{die, 1});
    }
    prev_ppn = ppn;
  }

  auto* op = new PendingIo;
  LinkPending(op);
  op->cpl.cookie = io.cookie;
  op->cpl.type = io.type;
  op->cpl.length = io.length;
  op->cpl.submit_time = submit_time;
  op->done = std::move(done);
  op->remaining = static_cast<int>(groups.size()) + (buffered > 0 ? 1 : 0);

  if (op->remaining == 0) {
    // Entirely unmapped: the controller returns zeroes at DRAM speed.
    op->remaining = 1;
    sim_.After(config_.dram_latency, [this, op]() { FinishPart(op); });
    return;
  }
  if (buffered > 0) {
    // Pages still in the write buffer are served from DRAM.
    Tick t = config_.dram_latency +
             TransferTime(uint64_t{buffered} * config_.page_bytes,
                          config_.dram_bw);
    sim_.After(t, [this, op]() { FinishPart(op); });
  }
  for (const ReadGroup& g : groups) {
    const uint64_t bytes = uint64_t{g.pages} * config_.page_bytes;
    const int ch = ChannelOfDie(g.die);
    die_res_[g.die]->AcquireHigh(config_.read_latency, [this, op, ch,
                                                        bytes]() {
      channel_res_[ch]->Acquire(TransferTime(bytes, config_.channel_bw),
                                [this, op]() { FinishPart(op); });
    });
  }
}

void Ssd::DispatchWrite(const DeviceIo& io, CompletionFn done,
                        Tick submit_time) {
  ++counters_.write_commands;
  counters_.write_bytes += io.length;
  if (m_write_cmds_) {
    m_write_cmds_->Add(1);
    m_write_bytes_->Add(io.length);
  }
  if (admit_wait_.empty() && buffer_free() >= io.length) {
    AdmitWrite(io, std::move(done), submit_time);
  } else {
    admit_wait_.push_back(WaitingWrite{io, std::move(done), submit_time});
  }
}

void Ssd::AdmitWrite(const DeviceIo& io, CompletionFn done, Tick submit_time) {
  buffer_used_ += io.length;
  if (m_buffer_used_) {
    m_buffer_used_->Set(static_cast<double>(buffer_used_));
  }
  const uint32_t first = static_cast<uint32_t>(io.offset / config_.page_bytes);
  const uint32_t npages = io.length / config_.page_bytes;
  for (uint32_t i = 0; i < npages; ++i) {
    ++buffer_map_[first + i];
    drain_.push_back(first + i);
  }
  // The host sees the write complete once the data is in the DRAM buffer.
  auto* op = new PendingIo;
  LinkPending(op);
  op->cpl.cookie = io.cookie;
  op->cpl.type = io.type;
  op->cpl.length = io.length;
  op->cpl.submit_time = submit_time;
  op->done = std::move(done);
  op->remaining = 1;
  // Progressive backpressure: the controller acks buffered writes roughly
  // in program order, so the ack latency grows with the bytes queued ahead
  // (real drives pace program credits rather than acking at DRAM speed
  // until a hard cliff). This smooth, linear latency ramp is what gives
  // delay-based congestion control a usable gradient.
  Tick backpressure = static_cast<Tick>(
      static_cast<double>(buffer_used_) * kNsPerSec /
      config_.nominal_drain_bps());
  Tick t = config_.dram_latency + TransferTime(io.length, config_.dram_bw) +
           backpressure;
  sim_.After(t, [this, op]() { FinishPart(op); });
  KickAllPumps();
}

void Ssd::AdmitWaiters() {
  while (!admit_wait_.empty() && buffer_free() >= admit_wait_.front().io.length) {
    WaitingWrite w = std::move(admit_wait_.front());
    admit_wait_.pop_front();
    AdmitWrite(w.io, std::move(w.done), w.submit_time);
  }
}

void Ssd::KickAllPumps() {
  if (drain_.empty()) return;
  // Rotate the starting die so low-rate writes stripe across dies instead
  // of always landing on die 0.
  int start = kick_cursor_;
  kick_cursor_ = (kick_cursor_ + 1) % config_.dies();
  for (int i = 0; i < config_.dies() && !drain_.empty(); ++i) {
    PumpDie((start + i) % config_.dies());
  }
}

void Ssd::PumpDie(int die) {
  if (pump_active_[die]) return;
  if (drain_.empty()) return;
  if (!ftl_.HostWriteAllowed(die) || !ftl_.CanAllocate(die)) {
    // This die cannot take host writes right now; GC (if it can make
    // progress) will re-kick the pumps after its next erase. Other dies
    // keep pulling from the shared FIFO meanwhile.
    MaybeStartGc(die);
    return;
  }
  pump_active_[die] = 1;
  // Pull one program unit's worth of buffered pages for this die.
  auto batch = std::make_shared<std::vector<Lpn>>();
  while (!drain_.empty() && batch->size() < config_.program_unit_pages) {
    batch->push_back(drain_.front());
    drain_.pop_front();
  }
  const uint64_t bytes = batch->size() * uint64_t{config_.page_bytes};
  const int ch = ChannelOfDie(die);
  channel_res_[ch]->Acquire(
      TransferTime(bytes, config_.channel_bw), [this, die, batch, bytes]() {
        die_res_[die]->AcquireLow(config_.program_latency, [this, die, batch,
                                                            bytes]() {
          // Mapping updates happen at program completion.
          for (Lpn lpn : *batch) {
            ftl_.AllocateOnDie(lpn, die);
            auto it = buffer_map_.find(lpn);
            if (it != buffer_map_.end() && --it->second == 0) {
              buffer_map_.erase(it);
            }
          }
          buffer_used_ -= bytes;
          if (m_buffer_used_) {
            m_buffer_used_->Set(static_cast<double>(buffer_used_));
          }
          pump_active_[die] = 0;
          AdmitWaiters();
          MaybeStartGc(die);
          PumpDie(die);
        });
      });
}

void Ssd::MaybeStartGc(int die) {
  if (gc_active_[die]) return;
  if (!ftl_.NeedsGc(die)) return;
  gc_active_[die] = 1;
  ++counters_.gc_runs;
  if (obs_) {
    m_gc_runs_->Add(1);
    obs_->tracer.Instant(sim_.now(), obs::schema::kEvGcStart,
                         obs::Labels::Ssd(ssd_index_),
                         {{"die", static_cast<double>(die)},
                          {"free_blocks",
                           static_cast<double>(ftl_.FreeBlocks(die))}});
  }
  GcStep(die);
}

void Ssd::GcStep(int die) {
  if (ftl_.GcSatisfied(die)) {
    gc_active_[die] = 0;
    if (obs_) {
      obs_->tracer.Instant(sim_.now(), obs::schema::kEvGcEnd,
                           obs::Labels::Ssd(ssd_index_),
                           {{"die", static_cast<double>(die)}});
    }
    PumpDie(die);
    return;
  }
  int victim = ftl_.SelectGcVictim(die);
  if (victim < 0 ||
      ftl_.ValidPages(static_cast<uint32_t>(victim)) >=
          config_.pages_per_block) {
    // Nothing reclaimable, or the die is packed solid with valid data
    // (relocation would gain nothing): stand down until state changes.
    gc_active_[die] = 0;
    if (obs_) {
      obs_->tracer.Instant(sim_.now(), obs::schema::kEvGcEnd,
                           obs::Labels::Ssd(ssd_index_),
                           {{"die", static_cast<double>(die)}});
    }
    return;
  }
  auto valid = std::make_shared<std::vector<Lpn>>(
      ftl_.CollectValid(static_cast<uint32_t>(victim)));
  GcRelocateBatch(die, static_cast<uint32_t>(victim), std::move(valid), 0);
}

void Ssd::GcRelocateBatch(int die, uint32_t victim,
                          std::shared_ptr<std::vector<Lpn>> valid,
                          size_t index) {
  if (index >= valid->size()) {
    // All survivors relocated (or invalidated by host writes): erase, in
    // suspendable slices so host reads queued at high priority interleave.
    const int slices = config_.erase_slices > 0 ? config_.erase_slices : 1;
    const Tick slice = config_.erase_latency / slices;
    // The stored function holds only a weak self-reference — the strong
    // one rides in the queued erase-slice closure — so the chain frees
    // itself (and doesn't outlive a torn-down testbed) once the last
    // slice runs or its event is dropped.
    auto run_slice = std::make_shared<std::function<void(int)>>();
    *run_slice = [this, die, victim, slices, slice,
                  wrs = std::weak_ptr<std::function<void(int)>>(run_slice)](
                     int i) {
      auto self = wrs.lock();
      die_res_[die]->AcquireLow(slice, [this, die, victim, slices, i,
                                        self]() {
        if (i + 1 < slices) {
          (*self)(i + 1);
          return;
        }
        ftl_.EraseBlock(victim);
        if (m_gc_erased_) m_gc_erased_->Add(1);
        AdmitWaiters();
        // A freed block may unblock pumps beyond this die (pages can have
        // been redistributed while it was packed).
        KickAllPumps();
        GcStep(die);
      });
    };
    (*run_slice)(0);
    return;
  }
  size_t end = std::min(index + config_.program_unit_pages, valid->size());
  // One multi-plane copyback: sense then program on the same die. Host IOs
  // queued on the die FIFO interleave between GC steps — that queueing is
  // the read/write interference the paper measures.
  die_res_[die]->AcquireLow(config_.read_latency, [this, die, victim, valid,
                                                   index, end]() {
    die_res_[die]->AcquireLow(config_.program_latency, [this, die, victim,
                                                        valid, index, end]() {
      ftl_.BeginGcAllocation();
      uint64_t relocated = 0;
      for (size_t i = index; i < end; ++i) {
        Lpn lpn = (*valid)[i];
        // Skip pages the host overwrote after victim selection — their
        // valid copy now lives elsewhere.
        Ppn cur = ftl_.Translate(lpn);
        if (cur == kInvalidPage || ftl_.BlockOf(cur) != victim) continue;
        ftl_.AllocateOnDie(lpn, die);
        ++relocated;
      }
      ftl_.EndGcAllocation();
      if (m_gc_pages_ && relocated) m_gc_pages_->Add(relocated);
      GcRelocateBatch(die, victim, valid, end);
    });
  });
}

}  // namespace gimbal::ssd
