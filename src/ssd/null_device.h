// NULL block device: completes every command after a fixed (near-zero)
// latency without performing IO. Mirrors SPDK's null bdev, which the paper
// uses to measure the switch's maximum IOPS (Table 1b).
#pragma once

#include "sim/simulator.h"
#include "ssd/block_device.h"

namespace gimbal::ssd {

class NullDevice : public BlockDevice {
 public:
  NullDevice(sim::Simulator& sim, uint64_t capacity = 1ull << 30,
             Tick latency = Microseconds(2))
      : sim_(sim), capacity_(capacity), latency_(latency) {}

  void Submit(const DeviceIo& io, CompletionFn done) override {
    ++inflight_;
    DeviceCompletion cpl;
    cpl.cookie = io.cookie;
    cpl.type = io.type;
    cpl.length = io.length;
    cpl.submit_time = sim_.now();
    sim_.After(latency_, [this, cpl, done = std::move(done)]() mutable {
      cpl.complete_time = sim_.now();
      --inflight_;
      done(cpl);
    });
  }

  uint64_t capacity_bytes() const override { return capacity_; }
  uint32_t inflight() const override { return inflight_; }

 private:
  sim::Simulator& sim_;
  uint64_t capacity_;
  Tick latency_;
  uint32_t inflight_ = 0;
};

}  // namespace gimbal::ssd
