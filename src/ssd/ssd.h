// Timed NVMe SSD model.
//
// Composes the pure-state FTL with a timing layer:
//   * a controller command engine (serial per-command processing cost —
//     this is what bounds small-IO IOPS, as on real devices),
//   * per-die NAND resources (sense / program / erase occupancy),
//   * per-channel transfer resources (this is what bounds large-IO
//     bandwidth),
//   * a DRAM write buffer that absorbs writes until its drain rate is
//     exceeded (the behaviour Gimbal's write-cost estimator exploits, §3.4),
//   * a per-die garbage collector whose relocation traffic interferes with
//     host IO (the clean-vs-fragmented asymmetry of §2.3 / Appendix A).
//
// All phenomena the paper measures on real SSDs — load/latency impulse
// response, read/write interference, IO-size bandwidth asymmetry, write
// amplification — emerge from these mechanisms rather than being scripted.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/resource.h"
#include "sim/simulator.h"
#include "ssd/block_device.h"
#include "ssd/config.h"
#include "ssd/ftl.h"

namespace gimbal::ssd {

struct SsdCounters {
  uint64_t read_commands = 0;
  uint64_t write_commands = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  uint64_t buffer_hit_pages = 0;   // reads served from the DRAM write buffer
  uint64_t unmapped_pages = 0;     // reads of never-written space
  uint64_t gc_runs = 0;
  uint64_t trimmed_pages = 0;
};

class Ssd : public BlockDevice {
 public:
  Ssd(sim::Simulator& sim, SsdConfig config);
  ~Ssd() override;

  // BlockDevice interface -----------------------------------------------------
  void Submit(const DeviceIo& io, CompletionFn done) override;
  void Trim(uint64_t offset, uint32_t length) override;
  void AttachObservability(obs::Observability* obs, int ssd_index) override;
  uint64_t capacity_bytes() const override { return config_.logical_bytes; }
  uint32_t inflight() const override { return inflight_; }

  // Device conditioning (§5.1): run synchronously before the experiment.
  void PreconditionClean() { ftl_.PreconditionSequential(); }
  void PreconditionFragmented(double overwrite_factor = 3.0, uint64_t seed = 42) {
    ftl_.PreconditionRandom(overwrite_factor, seed);
  }

  const SsdConfig& config() const { return config_; }
  const Ftl& ftl() const { return ftl_; }
  const SsdCounters& counters() const { return counters_; }
  uint64_t buffer_used() const { return buffer_used_; }

 private:
  struct ReadGroup {
    int die = 0;
    uint32_t pages = 0;
  };
  struct PendingIo {  // shared completion state for a dispatched command
    int remaining = 0;
    DeviceCompletion cpl;
    CompletionFn done;
    // Intrusive in-flight list: a testbed torn down mid-run drops the
    // resource events that would have finished these, so ~Ssd reaps them.
    PendingIo* prev = nullptr;
    PendingIo* next = nullptr;
  };
  struct WaitingWrite {
    DeviceIo io;
    CompletionFn done;
    Tick submit_time;
  };

  void DispatchRead(const DeviceIo& io, CompletionFn done, Tick submit_time);
  void DispatchWrite(const DeviceIo& io, CompletionFn done, Tick submit_time);
  void AdmitWrite(const DeviceIo& io, CompletionFn done, Tick submit_time);
  void AdmitWaiters();
  void KickAllPumps();
  void PumpDie(int die);
  void MaybeStartGc(int die);
  void GcStep(int die);
  void GcRelocateBatch(int die, uint32_t victim,
                       std::shared_ptr<std::vector<Lpn>> valid, size_t index);
  void FinishPart(PendingIo* op);
  void LinkPending(PendingIo* op) {
    op->next = pending_ops_;
    if (pending_ops_) pending_ops_->prev = op;
    pending_ops_ = op;
  }
  void UnlinkPending(PendingIo* op) {
    if (op->prev) {
      op->prev->next = op->next;
    } else {
      pending_ops_ = op->next;
    }
    if (op->next) op->next->prev = op->prev;
  }

  uint64_t buffer_free() const {
    return config_.write_buffer_bytes - buffer_used_;
  }
  int ChannelOfDie(int die) const { return die % config_.channels; }

  sim::Simulator& sim_;
  SsdConfig config_;
  Ftl ftl_;

  sim::FifoResource cmd_engine_;
  // Dies serve host reads at high priority ahead of queued programs, GC
  // copybacks and erase slices (controller read-priority / suspension).
  std::vector<std::unique_ptr<sim::PrioResource>> die_res_;
  std::vector<std::unique_ptr<sim::FifoResource>> channel_res_;

  // Write buffer state. Buffered pages sit in one global drain FIFO;
  // per-die pumps *pull* a program unit at a time whenever their die can
  // accept a write (blocked or GC-busy dies simply don't pull, so one
  // packed die never wedges the pipeline). Pull order rotates across dies
  // so sequential data lands striped in read-unit-sized chunks even at
  // low rate.
  uint64_t buffer_used_ = 0;
  std::unordered_map<Lpn, uint32_t> buffer_map_;  // lpn -> buffered copies
  std::deque<Lpn> drain_;
  std::deque<WaitingWrite> admit_wait_;
  std::vector<uint8_t> pump_active_;  // per die
  int kick_cursor_ = 0;               // rotating first-die for pump kicks

  // GC state.
  std::vector<uint8_t> gc_active_;  // per die

  SsdCounters counters_;
  uint32_t inflight_ = 0;
  PendingIo* pending_ops_ = nullptr;  // head of the in-flight intrusive list

  // Observability (null = not observed; see docs/OBSERVABILITY.md).
  obs::Observability* obs_ = nullptr;
  int ssd_index_ = -1;
  obs::Counter* m_read_cmds_ = nullptr;
  obs::Counter* m_write_cmds_ = nullptr;
  obs::Counter* m_read_bytes_ = nullptr;
  obs::Counter* m_write_bytes_ = nullptr;
  obs::Counter* m_gc_runs_ = nullptr;
  obs::Counter* m_gc_pages_ = nullptr;
  obs::Counter* m_gc_erased_ = nullptr;
  obs::Gauge* m_buffer_used_ = nullptr;
};

}  // namespace gimbal::ssd
