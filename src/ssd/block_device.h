// Abstract block device the storage switch submits NVMe commands to.
//
// Implementations: the full NAND/FTL SSD model (ssd.h) and the NULL device
// used for the Table 1 overhead experiments (null_device.h).
#pragma once

#include <cstdint>
#include <functional>

#include "common/time.h"
#include "nvme/types.h"
#include "obs/obs.h"

namespace gimbal::ssd {

// One command handed to the device. `cookie` is opaque to the device and
// returned in the completion so the switch can match it.
struct DeviceIo {
  uint64_t cookie = 0;
  IoType type = IoType::kRead;
  uint64_t offset = 0;   // bytes, page aligned
  uint32_t length = 0;   // bytes, page multiple
};

struct DeviceCompletion {
  uint64_t cookie = 0;
  IoType type = IoType::kRead;
  uint32_t length = 0;
  IoStatus status = IoStatus::kOk;  // non-ok only from fault-injected devices
  Tick submit_time = 0;
  Tick complete_time = 0;
  Tick latency() const { return complete_time - submit_time; }
  bool ok() const { return status == IoStatus::kOk; }
};

class BlockDevice {
 public:
  using CompletionFn = std::function<void(const DeviceCompletion&)>;

  virtual ~BlockDevice() = default;

  // Submit a command; `done` fires (in simulated time) on completion.
  virtual void Submit(const DeviceIo& io, CompletionFn done) = 0;

  // Deallocate (TRIM) a page-aligned range: the device may drop the
  // mapping so GC stops relocating dead data. Instantaneous control-plane
  // operation; devices without support ignore it.
  virtual void Trim(uint64_t offset, uint32_t length) {
    (void)offset;
    (void)length;
  }

  // Attach metrics/trace sinks; `ssd_index` labels everything this device
  // emits. Devices without instrumentation ignore it.
  virtual void AttachObservability(obs::Observability* obs, int ssd_index) {
    (void)obs;
    (void)ssd_index;
  }

  // Device capacity in bytes.
  virtual uint64_t capacity_bytes() const = 0;

  // Commands accepted but not yet completed.
  virtual uint32_t inflight() const = 0;
};

}  // namespace gimbal::ssd
