// NVMe / NVMe-oF vocabulary types shared by the fabric, the switch and the
// SSD model. Offsets and lengths are in bytes and must be 4 KiB aligned
// (the device's logical page size).
#pragma once

#include <cstdint>

#include "common/time.h"

namespace gimbal {

using TenantId = uint32_t;

enum class IoType : uint8_t { kRead = 0, kWrite = 1 };

constexpr const char* ToString(IoType t) {
  return t == IoType::kRead ? "read" : "write";
}

// Maximum data transfer size of one NVMe-oF command (the paper's "de facto
// maximum IO size", which sizes Gimbal's virtual slot). Initiators split
// larger application IOs into chained commands, as real stacks do per the
// controller's MDTS.
constexpr uint32_t kMaxTransferBytes = 128 * 1024;

// Writes up to this size inline their payload into the command capsule
// (§2.1: "some NVMe-oF implementations allow inlining small data blocks
// (e.g., 4KB) into the capsule, reducing the number of RDMA messages and
// improving the IO latency"). Initiator and target agree on the constant.
constexpr uint32_t kInlineWriteBytes = 4096;

// Priority classes a client can tag onto an NVMe-oF request (§3.5,
// "per-tenant priority queues"). Lower value = higher priority.
enum class IoPriority : uint8_t { kHigh = 0, kNormal = 1, kLow = 2 };
constexpr int kNumPriorities = 3;

// Terminal status of one IO, modelled on NVMe status codes. Every admitted
// request reaches exactly one terminal status — the fault subsystem
// (docs/FAULTS.md) relies on this invariant.
enum class IoStatus : uint8_t {
  kOk = 0,           // completed successfully
  kMediaError,       // unrecoverable media error on the device
  kTimeout,          // initiator gave up after exhausting its retry budget
  kAborted,          // failed back on tenant disconnect/crash before service
  kDeviceFailed,     // the SSD behind the pipeline has failed
};

constexpr const char* ToString(IoStatus s) {
  switch (s) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kMediaError: return "media_error";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kAborted: return "aborted";
    case IoStatus::kDeviceFailed: return "device_failed";
  }
  return "?";
}

// An IO as the switch/scheduler sees it: one NVMe command from one tenant.
struct IoRequest {
  uint64_t id = 0;                // unique per fabric connection
  TenantId tenant = 0;
  IoType type = IoType::kRead;
  uint64_t offset = 0;            // bytes, 4 KiB aligned
  uint32_t length = 0;            // bytes, 4 KiB multiple
  IoPriority priority = IoPriority::kNormal;
  Tick client_submit = 0;         // when the client issued it
  Tick target_arrival = 0;        // when the target ingress saw it
};

// Completion information travelling back up the stack.
struct IoCompletion {
  uint64_t id = 0;
  TenantId tenant = 0;
  IoType type = IoType::kRead;
  uint32_t length = 0;
  IoStatus status = IoStatus::kOk;
  Tick device_latency = 0;   // SSD submit -> SSD complete (switch viewpoint)
  Tick target_latency = 0;   // target arrival -> completion sent
  uint32_t credit = 0;       // piggybacked Gimbal credit (§3.6); 0 if unused

  bool ok() const { return status == IoStatus::kOk; }
};

}  // namespace gimbal
