// Dense index-pool arenas for per-tenant hot-path state.
//
// At 100k+ concurrent sessions the per-tenant `unordered_map`s that grew up
// in the scheduler, target, and checker become the dominant cost: every
// lookup is a pointer chase through a node allocated who-knows-where, and a
// churned tenant leaves a tombstone bucket behind. The two classes here
// replace that pattern:
//
//   SlabArena<T>   — slot storage with stable addresses (deque-backed) and a
//                    free-list. Freed slots are *recycled*, not destroyed:
//                    Allocate() on a recycled slot calls T::Reset(args...)
//                    so a TenantState's deque/vector capacity survives churn
//                    instead of being reallocated per connect. A dense
//                    live-index list (swap-remove) makes iteration O(live)
//                    and gives tests an exact "no orphaned slots" probe.
//
//   IdIndexMap     — open-addressing uint64 -> uint32 map (linear probing,
//                    backshift deletion) from an external id (TenantId,
//                    ledger key) to an arena slot. One flat allocation, no
//                    per-entry nodes, O(1) amortized everything.
//
// Both containers are deterministic: the same operation sequence produces
// the same slot assignments and the same live-iteration order, so they are
// safe anywhere the simulation schedule or the golden digests can see.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

namespace gimbal::common {

template <typename T>
class SlabArena {
 public:
  static constexpr uint32_t kNullSlot = UINT32_MAX;

  // Returns the slot index. A fresh slot is constructed with `args`; a
  // recycled one gets T::Reset(args...) instead, preserving its buffers.
  template <typename... Args>
  uint32_t Allocate(Args&&... args) {
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slots_[slot].Reset(std::forward<Args>(args)...);
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back(std::forward<Args>(args)...);
      pos_.push_back(0);
    }
    pos_[slot] = static_cast<uint32_t>(live_.size());
    live_.push_back(slot);
    return slot;
  }

  void Free(uint32_t slot) {
    assert(slot < pos_.size());
    const uint32_t p = pos_[slot];
    assert(p < live_.size() && live_[p] == slot && "double free");
    const uint32_t moved = live_.back();
    live_[p] = moved;
    pos_[moved] = p;
    live_.pop_back();
    pos_[slot] = kNullSlot;
    free_.push_back(slot);
  }

  T& operator[](uint32_t slot) { return slots_[slot]; }
  const T& operator[](uint32_t slot) const { return slots_[slot]; }

  // Live slot indices in allocation-churn order (not sorted). Callers that
  // need a canonical order must sort on a key of their own.
  const std::vector<uint32_t>& live() const { return live_; }
  size_t size() const { return live_.size(); }
  bool empty() const { return live_.empty(); }
  // High-water slot count: live + free. Stays flat across churn because
  // freed slots are recycled before new ones are carved.
  size_t capacity() const { return slots_.size(); }
  size_t free_count() const { return free_.size(); }

 private:
  std::deque<T> slots_;          // deque: growth never moves elements
  std::vector<uint32_t> free_;   // recycled slot indices (LIFO)
  std::vector<uint32_t> live_;   // dense list of live slots
  std::vector<uint32_t> pos_;    // slot -> index in live_, kNullSlot if free
};

// Open-addressing hash map from a 64-bit id to a 32-bit arena slot.
// Linear probing with backshift deletion (no tombstones), power-of-two
// capacity, grown at ~70% load. Value kNotFound is reserved.
class IdIndexMap {
 public:
  static constexpr uint32_t kNotFound = UINT32_MAX;

  IdIndexMap() { cells_.resize(kMinCapacity); }

  uint32_t Find(uint64_t key) const {
    const uint64_t mask = cells_.size() - 1;
    for (uint64_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      const Cell& c = cells_[i];
      if (!c.used) return kNotFound;
      if (c.key == key) return c.value;
    }
  }

  // Inserts or overwrites.
  void Put(uint64_t key, uint32_t value) {
    assert(value != kNotFound);
    if ((size_ + 1) * 10 >= cells_.size() * 7) Grow();
    const uint64_t mask = cells_.size() - 1;
    for (uint64_t i = Hash(key) & mask;; i = (i + 1) & mask) {
      Cell& c = cells_[i];
      if (!c.used) {
        c = Cell{key, value, true};
        ++size_;
        return;
      }
      if (c.key == key) {
        c.value = value;
        return;
      }
    }
  }

  bool Erase(uint64_t key) {
    const uint64_t mask = cells_.size() - 1;
    uint64_t i = Hash(key) & mask;
    for (;; i = (i + 1) & mask) {
      if (!cells_[i].used) return false;
      if (cells_[i].key == key) break;
    }
    // Backshift: close the gap so probe chains stay contiguous.
    uint64_t hole = i;
    for (uint64_t j = (hole + 1) & mask; cells_[j].used; j = (j + 1) & mask) {
      const uint64_t home = Hash(cells_[j].key) & mask;
      // Move j into the hole unless j's home lies (cyclically) after the
      // hole — then the entry is already as close to home as it can be.
      const bool movable = ((j - home) & mask) >= ((j - hole) & mask);
      if (movable) {
        cells_[hole] = cells_[j];
        hole = j;
      }
    }
    cells_[hole] = Cell{};
    --size_;
    return true;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Cell {
    uint64_t key = 0;
    uint32_t value = 0;
    bool used = false;
  };
  static constexpr size_t kMinCapacity = 16;

  static uint64_t Hash(uint64_t x) {
    // SplitMix64 finalizer: full avalanche so sequential tenant ids spread.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void Grow() {
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(old.size() * 2, Cell{});
    size_ = 0;
    for (const Cell& c : old) {
      if (c.used) Put(c.key, c.value);
    }
  }

  std::vector<Cell> cells_;
  size_t size_ = 0;
};

}  // namespace gimbal::common
