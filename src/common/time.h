// Simulated-time vocabulary used across the library.
//
// All simulation timestamps and durations are expressed in integer
// nanoseconds. We deliberately use a plain signed 64-bit tick (rather than
// std::chrono) because the simulator does arithmetic on these values in hot
// paths and mixes them with byte counts when computing rates.
#pragma once

#include <cstdint>

namespace gimbal {

// A point in simulated time or a span of simulated time, in nanoseconds.
using Tick = int64_t;

constexpr Tick kNsPerUs = 1'000;
constexpr Tick kNsPerMs = 1'000'000;
constexpr Tick kNsPerSec = 1'000'000'000;

constexpr Tick Nanoseconds(int64_t n) { return n; }
constexpr Tick Microseconds(int64_t n) { return n * kNsPerUs; }
constexpr Tick Milliseconds(int64_t n) { return n * kNsPerMs; }
constexpr Tick Seconds(double n) { return static_cast<Tick>(n * kNsPerSec); }

constexpr double ToUs(Tick t) { return static_cast<double>(t) / kNsPerUs; }
constexpr double ToMs(Tick t) { return static_cast<double>(t) / kNsPerMs; }
constexpr double ToSec(Tick t) { return static_cast<double>(t) / kNsPerSec; }

// Time to move `bytes` at `bytes_per_sec`, rounded up to a whole nanosecond.
constexpr Tick TransferTime(uint64_t bytes, double bytes_per_sec) {
  if (bytes_per_sec <= 0) return 0;
  double ns = static_cast<double>(bytes) * kNsPerSec / bytes_per_sec;
  return static_cast<Tick>(ns) + 1;
}

// Bytes/sec achieved when `bytes` complete over `elapsed` ticks.
constexpr double RateBps(uint64_t bytes, Tick elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) * kNsPerSec / static_cast<double>(elapsed);
}

constexpr double BytesToMiB(uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

constexpr uint64_t KiB(uint64_t n) { return n * 1024; }
constexpr uint64_t MiB(uint64_t n) { return n * 1024 * 1024; }
constexpr uint64_t GiB(uint64_t n) { return n * 1024 * 1024 * 1024; }

}  // namespace gimbal
