// Deterministic random number generation for simulation workloads.
//
// xoshiro256** core generator plus the distributions the workload layer
// needs (uniform, exponential, Zipfian, YCSB "latest"). Everything is
// seed-reproducible so experiments are exactly repeatable.
#pragma once

#include <cmath>
#include <cstdint>

namespace gimbal {

// xoshiro256** by Blackman & Vigna (public domain reference implementation
// re-expressed). Fast, high-quality, and much cheaper than std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 returns 0.
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection-free approximation is fine here; the
    // simulator does not need exact uniformity beyond 2^-64 bias.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Exponentially distributed value with the given mean.
  double NextExponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999999999;
    return -mean * std::log1p(-u);
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

// Zipfian generator over [0, n) using the Gray/Jain rejection-inversion
// method popularized by the YCSB reference implementation. theta is the
// skew (YCSB default 0.99).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99)
      : n_(n), theta_(theta) {
    zeta_n_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zeta_n_);
  }

  uint64_t Next(Rng& rng) const {
    double u = rng.NextDouble();
    double uz = u * zeta_n_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  double zeta_n_, zeta2_, alpha_, eta_;
};

// "Scrambled" Zipfian: hashes the Zipfian rank so hot keys are spread over
// the key space, matching YCSB's ScrambledZipfianGenerator.
class ScrambledZipfian {
 public:
  explicit ScrambledZipfian(uint64_t n, double theta = 0.99)
      : zipf_(n, theta), n_(n) {}

  uint64_t Next(Rng& rng) const {
    uint64_t r = zipf_.Next(rng);
    return Fnv1a(r) % n_;
  }

 private:
  static uint64_t Fnv1a(uint64_t v) {
    uint64_t h = 0xCBF29CE484222325ull;
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001B3ull;
    }
    return h;
  }
  ZipfianGenerator zipf_;
  uint64_t n_;
};

}  // namespace gimbal
