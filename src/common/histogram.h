// Latency histogram with HDR-style log-linear bucketing.
//
// Buckets are arranged as 64 "exponents" x 32 linear sub-buckets, giving
// ~3% relative error across the full int64 range, with O(1) record and
// O(buckets) percentile queries. This is what every worker and every bench
// uses to report avg/p50/p99/p99.9 latencies.
#pragma once

#include <array>
#include <cstdint>

namespace gimbal {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 5;                  // 32 sub-buckets
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kExponents = 64 - kSubBits;    // enough for int64
  static constexpr int kBuckets = kExponents * kSub;

  void Record(int64_t value) {
    if (value < 0) value = 0;
    ++counts_[BucketIndex(static_cast<uint64_t>(value))];
    ++total_;
    sum_ += value;
    if (value > max_) max_ = value;
    if (value < min_ || total_ == 1) min_ = value;
  }

  void Merge(const LatencyHistogram& other) {
    for (int i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    if (other.total_ > 0) {
      if (total_ == 0 || other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
    total_ += other.total_;
    sum_ += other.sum_;
  }

  void Reset() { *this = LatencyHistogram{}; }

  // Bucket-wise difference against an earlier snapshot of this histogram
  // (every snapshot bucket count <= the corresponding one here — i.e. a
  // copy taken before a window of interest on a monotonically-recording
  // histogram). Isolates the samples recorded since the snapshot, e.g. the
  // read tail inside a fault window. min/max degrade to bucket resolution:
  // the removed samples' exact extremes are unrecoverable.
  LatencyHistogram Subtract(const LatencyHistogram& snapshot) const {
    LatencyHistogram out;
    int lo = -1, hi = -1;
    for (int i = 0; i < kBuckets; ++i) {
      out.counts_[i] = counts_[i] - snapshot.counts_[i];
      out.total_ += out.counts_[i];
      if (out.counts_[i] > 0) {
        if (lo < 0) lo = i;
        hi = i;
      }
    }
    out.sum_ = sum_ - snapshot.sum_;
    if (out.total_ > 0) {
      out.min_ = lo > 0 ? BucketUpperBound(lo - 1) + 1 : 0;
      out.max_ = BucketUpperBound(hi);
    }
    return out;
  }

  // Value at quantile q, clamped into [0,1]. Returns an upper bound of the
  // bucket that contains the q-th sample (standard HDR semantics). An empty
  // histogram has every quantile defined as 0, matching the zero-count
  // conventions of StreamingStats (mean/min/max of nothing are 0, not NaN).
  int64_t Percentile(double q) const {
    if (total_ == 0) return 0;
    if (!(q > 0.0)) q = 0.0;  // also catches NaN
    if (q > 1.0) q = 1.0;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total_));
    if (rank >= total_) rank = total_ - 1;
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen > rank) return BucketUpperBound(i);
    }
    return max_;
  }

  int64_t p50() const { return Percentile(0.50); }
  int64_t p90() const { return Percentile(0.90); }
  int64_t p99() const { return Percentile(0.99); }
  int64_t p999() const { return Percentile(0.999); }

  uint64_t count() const { return total_; }
  int64_t min() const { return total_ ? min_ : 0; }
  int64_t max() const { return max_; }
  double mean() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(total_);
  }

 private:
  // Values < 32 get exact buckets [0..31]. Larger values are shifted right
  // until they fit in [32, 63]; the shift amount e and the 5 bits below the
  // msb identify the bucket, which spans 2^e consecutive values.
  static int BucketIndex(uint64_t v) {
    if (v < kSub) return static_cast<int>(v);
    int msb = 63 - __builtin_clzll(v);
    int e = msb - kSubBits;  // >= 0
    int sub = static_cast<int>(v >> e) & (kSub - 1);
    int idx = (e + 1) * kSub + sub;
    return idx < kBuckets ? idx : kBuckets - 1;
  }

  static int64_t BucketUpperBound(int index) {
    if (index < kSub) return index;
    int e = index / kSub - 1;
    uint64_t sub = static_cast<uint64_t>(index & (kSub - 1));
    uint64_t lower = (uint64_t{kSub} | sub) << e;
    uint64_t width = uint64_t{1} << e;
    return static_cast<int64_t>(lower + width - 1);
  }

  std::array<uint64_t, kBuckets> counts_{};
  uint64_t total_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace gimbal
