// Streaming statistics: mean/min/max accumulators and an exponentially
// weighted moving average (the EWMA that drives Gimbal's latency monitor).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace gimbal {

// Simple streaming accumulator (count / sum / min / max / mean).
//
// Zero-count convention (shared with LatencyHistogram and obs::Histogram):
// after construction or Reset(), mean/min/max all report 0 — never the
// +/-infinity sentinels used internally, and never NaN.
class StreamingStats {
 public:
  void Add(double v) {
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  void Reset() { *this = StreamingStats{}; }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exponentially weighted moving average with weight `alpha` on the newest
// sample: ewma = (1-alpha)*ewma + alpha*sample. The first sample initializes
// the average directly, matching the behaviour Gimbal's latency monitor
// needs (no cold-start bias toward zero).
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void Add(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ = (1.0 - alpha_) * value_ + alpha_ * sample;
    }
  }

  void Reset() { initialized_ = false; value_ = 0; }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double value_ = 0;
  bool initialized_ = false;
};

// Windowed rate meter: counts bytes (or ops) completed and reports the rate
// over the elapsed window. Used by Gimbal's overloaded-state handling, which
// snaps the target rate to the measured completion rate.
class RateMeter {
 public:
  void Add(uint64_t amount) { accumulated_ += amount; }

  // Close the window that started at `window_start` and ended `now`;
  // returns the rate in units/sec and restarts the window.
  double Roll(int64_t window_start, int64_t now) {
    int64_t elapsed = now - window_start;
    double rate = elapsed > 0
                      ? static_cast<double>(accumulated_) * 1e9 /
                            static_cast<double>(elapsed)
                      : 0.0;
    last_rate_ = rate;
    accumulated_ = 0;
    return rate;
  }

  double last_rate() const { return last_rate_; }
  uint64_t accumulated() const { return accumulated_; }

 private:
  uint64_t accumulated_ = 0;
  double last_rate_ = 0;
};

}  // namespace gimbal
