#include "check/invariants.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace gimbal::check {
namespace {

// Sentinel for violations not tied to a tenant (bucket, latency, health);
// renders as tenant=-1, matching the obs::Labels convention.
constexpr TenantId kNoTenant = static_cast<TenantId>(-1);

// Tolerances for double-precision token accounting. Buckets hold at most a
// few hundred MB of tokens, so absolute slack of a few bytes dwarfs any
// rounding the arithmetic can accumulate in one step while staying far
// below the smallest real overrun (an IO is >= 512 bytes).
constexpr double kTokenEps = 1.0;

// Worst-case rounds of quantum lead one continuously backlogged tenant can
// legitimately build over another. DRR's per-round skew is O(quantum +
// max_weighted); slot deferral and priority WRR add small constant factors,
// so 16 rounds is a generous envelope that still catches a linearly
// diverging scheduler within a few tens of milliseconds of simulated time.
constexpr double kSkewRounds = 16.0;

std::string Format(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return std::string(buf);
}

// Independent copy of the health legality table (docs/FAULTS.md). Kept
// deliberately out of sync with fault::ValidTransition so a bug (or seeded
// mutation) there cannot blind the checker. Numeric values follow
// fault::SsdHealth: 0 healthy, 1 degraded, 2 failed, 3 recovering.
bool LegalHealthTransition(int from, int to) {
  if (from == to) return true;
  switch (from) {
    case 0: return to == 1 || to == 2;
    case 1: return to == 0 || to == 2;
    case 2: return to == 3;
    case 3: return to == 0 || to == 2;
    default: return false;
  }
}

}  // namespace

void InvariantChecker::Violate(const char* invariant, TenantId tenant,
                               int ssd, std::string detail) {
  Violation v;
  v.when = now();
  v.invariant = invariant;
  v.tenant = static_cast<int32_t>(tenant);
  v.ssd = ssd;
  v.detail = std::move(detail);
  violations_.push_back(v);
  if (!fail_fast_) return;

  std::fprintf(stderr,
               "\n=== INVARIANT VIOLATION ===\n"
               "t=%" PRId64 "ns invariant=%s tenant=%d ssd=%d\n"
               "  %s\n",
               v.when, v.invariant.c_str(), v.tenant, v.ssd,
               v.detail.c_str());
  if (tracer_ != nullptr && !tracer_->events().empty()) {
    const auto& events = tracer_->events();
    const size_t n = std::min<size_t>(events.size(), 16);
    std::fprintf(stderr, "last %zu trace events:\n", n);
    for (size_t i = events.size() - n; i < events.size(); ++i) {
      const auto& e = events[i];
      std::fprintf(stderr, "  [%12" PRIu64 "] %-24s tenant=%d ssd=%d\n",
                   e.ts, e.name, e.labels.tenant, e.labels.ssd);
    }
  }
  std::fprintf(stderr, "===========================\n");
  std::abort();
}

// --- Client ----------------------------------------------------------------

void InvariantChecker::OnClientAdmit(TenantId tenant, int ssd,
                                     size_t queued) {
  const LockGuard lock(*this);
  ++checks_run_;
  ClientLedger& c = Client(tenant, ssd);
  ++c.admitted;
  // Every admitted IO is queued, in flight, or terminal — so the local
  // queue depth must equal admitted minus everything that has left it.
  const uint64_t left = c.issued + (c.terminal - c.terminal_issued);
  if (c.admitted < left || c.admitted - left != queued) {
    Violate("client.conservation.queued", tenant, ssd,
            Format("admitted=%" PRIu64 " issued=%" PRIu64
                   " failed_unissued=%" PRIu64 " but local queue=%zu",
                   c.admitted, c.issued, c.terminal - c.terminal_issued,
                   queued));
  }
}

void InvariantChecker::OnClientIssue(TenantId tenant, int ssd, size_t queued,
                                     uint32_t inflight, uint32_t credit_total,
                                     bool credit_throttled) {
  const LockGuard lock(*this);
  ++checks_run_;
  ClientLedger& c = Client(tenant, ssd);
  ++c.issued;
  if (c.issued > c.admitted) {
    Violate("client.conservation.queued", tenant, ssd,
            Format("issued=%" PRIu64 " exceeds admitted=%" PRIu64, c.issued,
                   c.admitted));
    return;
  }
  const uint64_t left = c.issued + (c.terminal - c.terminal_issued);
  if (c.admitted - left != queued) {
    Violate("client.conservation.queued", tenant, ssd,
            Format("admitted=%" PRIu64 " issued=%" PRIu64
                   " failed_unissued=%" PRIu64 " but local queue=%zu",
                   c.admitted, c.issued, c.terminal - c.terminal_issued,
                   queued));
  }
  if (c.issued - c.terminal_issued != inflight) {
    Violate("client.conservation.inflight", tenant, ssd,
            Format("ledger in-flight=%" PRIu64
                   " but initiator inflight=%u",
                   c.issued - c.terminal_issued, inflight));
  }
  // §3.6 Algorithm 3: issue while credit_total > inflight, i.e. after the
  // issue the pool is never exceeded.
  if (credit_throttled && inflight > credit_total) {
    Violate("client.credit.law", tenant, ssd,
            Format("inflight=%u exceeds credit_total=%u after issue",
                   inflight, credit_total));
  }
}

void InvariantChecker::OnClientTerminal(TenantId tenant, int ssd, bool ok,
                                        bool was_issued, uint32_t inflight) {
  const LockGuard lock(*this);
  ++checks_run_;
  (void)ok;
  ClientLedger& c = Client(tenant, ssd);
  ++c.terminal;
  if (was_issued) ++c.terminal_issued;
  if (c.terminal > c.admitted) {
    Violate("client.terminal.overrun", tenant, ssd,
            Format("terminal=%" PRIu64 " exceeds admitted=%" PRIu64,
                   c.terminal, c.admitted));
    return;
  }
  if (c.terminal_issued > c.issued) {
    Violate("client.terminal.overrun", tenant, ssd,
            Format("terminal_issued=%" PRIu64 " exceeds issued=%" PRIu64,
                   c.terminal_issued, c.issued));
    return;
  }
  if (c.issued - c.terminal_issued != inflight) {
    Violate("client.conservation.inflight", tenant, ssd,
            Format("ledger in-flight=%" PRIu64
                   " but initiator inflight=%u",
                   c.issued - c.terminal_issued, inflight));
  }
}

void InvariantChecker::OnClientCreditUpdate(TenantId tenant, int ssd,
                                            uint32_t credit) {
  const LockGuard lock(*this);
  ++checks_run_;
  ClientLedger& c = Client(tenant, ssd);
  if (credit > c.max_credit_granted) {
    Violate("client.credit.bound", tenant, ssd,
            Format("client adopted credit=%u but switch never granted more "
                   "than %u",
                   credit, c.max_credit_granted));
  }
}

// --- Target / policy -------------------------------------------------------

void InvariantChecker::OnTargetAdmit(TenantId tenant, int ssd) {
  const LockGuard lock(*this);
  ++checks_run_;
  ++Policy(tenant, ssd).target_admitted;
}

void InvariantChecker::OnPolicyDispatch(TenantId tenant, int ssd) {
  const LockGuard lock(*this);
  ++checks_run_;
  PolicyLedger& p = Policy(tenant, ssd);
  ++p.dispatched;
  if (p.dispatched > p.target_admitted) {
    Violate("policy.dispatch", tenant, ssd,
            Format("dispatched=%" PRIu64 " exceeds target admits=%" PRIu64,
                   p.dispatched, p.target_admitted));
  }
}

void InvariantChecker::OnDeviceReturn(TenantId tenant, int ssd, bool ok) {
  const LockGuard lock(*this);
  ++checks_run_;
  (void)ok;
  PolicyLedger& p = Policy(tenant, ssd);
  ++p.device_returns;
  if (p.device_returns > p.dispatched) {
    Violate("policy.device.return", tenant, ssd,
            Format("device returns=%" PRIu64 " exceed dispatches=%" PRIu64,
                   p.device_returns, p.dispatched));
  }
}

void InvariantChecker::OnPolicyDeliver(TenantId tenant, int ssd, bool ok) {
  const LockGuard lock(*this);
  ++checks_run_;
  (void)ok;
  PolicyLedger& p = Policy(tenant, ssd);
  ++p.delivered;
  if (p.delivered > p.device_returns) {
    Violate("policy.deliver", tenant, ssd,
            Format("delivered=%" PRIu64 " exceed device returns=%" PRIu64,
                   p.delivered, p.device_returns));
    return;
  }
  if (p.delivered + p.failed > p.target_admitted) {
    Violate("policy.deliver", tenant, ssd,
            Format("delivered+failed=%" PRIu64 " exceed target admits=%" PRIu64,
                   p.delivered + p.failed, p.target_admitted));
  }
}

void InvariantChecker::OnPolicyFail(TenantId tenant, int ssd) {
  const LockGuard lock(*this);
  ++checks_run_;
  PolicyLedger& p = Policy(tenant, ssd);
  ++p.failed;
  if (p.delivered + p.failed > p.target_admitted) {
    Violate("policy.deliver", tenant, ssd,
            Format("delivered+failed=%" PRIu64 " exceed target admits=%" PRIu64,
                   p.delivered + p.failed, p.target_admitted));
  }
}

// --- Gimbal switch ---------------------------------------------------------

void InvariantChecker::ConfigureDrr(int ssd, uint64_t quantum_bytes,
                                    uint64_t slot_bytes, double cost_worst) {
  const LockGuard lock(*this);
  DrrState& d = drr_[ssd];
  d.quantum = quantum_bytes;
  d.max_weighted =
      static_cast<uint64_t>(static_cast<double>(slot_bytes) * cost_worst);
}

void InvariantChecker::OnCreditGrant(TenantId tenant, int ssd,
                                     uint32_t credit) {
  const LockGuard lock(*this);
  ++checks_run_;
  ClientLedger& c = Client(tenant, ssd);
  c.max_credit_granted = std::max(c.max_credit_granted, credit);
}

void InvariantChecker::OnDrrQuantum(TenantId tenant, int ssd,
                                    uint64_t deficit_before,
                                    uint64_t deficit_after, double weight,
                                    uint64_t rounds, double frac_before,
                                    double frac_after) {
  const LockGuard lock(*this);
  ++checks_run_;
  DrrState& d = drr_[ssd];
  // §3.5 Algorithm 2 with fractional carry: `rounds` rounds grant
  // floor(rounds x weight x quantum + carry) whole bytes and the remainder
  // stays in the carry. Same double arithmetic as the scheduler
  // (GrantRounds), so equality is exact. The carry itself must stay in
  // [0, 1) — a drifting carry would mint or destroy service.
  if (frac_before < 0.0 || frac_before >= 1.0) {
    Violate("drr.quantum.carry", tenant, ssd,
            Format("carry %.9f outside [0,1) before grant", frac_before));
  }
  const double step = weight * static_cast<double>(d.quantum);
  const double total = static_cast<double>(rounds) * step + frac_before;
  const uint64_t expected = static_cast<uint64_t>(total);
  const double expected_frac = total - static_cast<double>(expected);
  if (deficit_after < deficit_before ||
      deficit_after - deficit_before != expected) {
    Violate("drr.quantum.grant", tenant, ssd,
            Format("grant=%" PRIu64 " but rounds=%" PRIu64
                   " x weight=%.3f x quantum=%" PRIu64 " + carry = %" PRIu64,
                   deficit_after - deficit_before, rounds, weight, d.quantum,
                   expected));
  } else if (frac_after != expected_frac) {
    Violate("drr.quantum.carry", tenant, ssd,
            Format("carry after grant %.9f, expected %.9f", frac_after,
                   expected_frac));
  }
  // A deficit only accumulates while it cannot cover the head-of-line IO,
  // so right after a grant it is bounded by one grant plus the costliest
  // single IO.
  if (deficit_after > expected + d.max_weighted) {
    Violate("drr.deficit.bound", tenant, ssd,
            Format("deficit=%" PRIu64 " exceeds grant=%" PRIu64
                   " + max weighted IO=%" PRIu64,
                   deficit_after, expected, d.max_weighted));
  }
}

void InvariantChecker::OnDrrPassExhausted(int ssd, uint64_t passes,
                                          uint64_t active, uint64_t queued) {
  const LockGuard lock(*this);
  ++checks_run_;
  Violate("drr.pass.exhausted", 0, ssd,
          Format("Dequeue gave up after %" PRIu64 " passes with %" PRIu64
                 " active tenants and %" PRIu64 " queued IOs",
                 passes, active, queued));
}

void InvariantChecker::OnDrrBacklog(TenantId tenant, int ssd,
                                    bool backlogged) {
  const LockGuard lock(*this);
  DrrState& d = drr_[ssd];
  const uint32_t pos = d.index.Find(tenant);
  const bool member = pos != common::IdIndexMap::kNotFound;
  if (backlogged == member) return;  // idempotent: no membership change
  // Fairness is only promised between tenants backlogged over the same
  // interval; any membership change starts a fresh comparison epoch.
  // Members re-baseline lazily at their first serve of the new epoch —
  // they receive no service before that serve, so the captured baseline is
  // identical to an eager reset at O(1) cost per membership change.
  ++d.epoch;
  d.serves_since_scan = 0;
  if (backlogged) {
    d.index.Put(tenant, static_cast<uint32_t>(d.members.size()));
    d.members.push_back(DrrMember{tenant, 0.0, 0.0, d.epoch});
  } else {
    const uint32_t last = static_cast<uint32_t>(d.members.size() - 1);
    if (pos != last) {
      d.members[pos] = d.members[last];
      d.index.Put(d.members[pos].tenant, pos);
    }
    d.members.pop_back();
    d.index.Erase(tenant);
  }
}

void InvariantChecker::CheckDrrSkew(const DrrState& d, int ssd) {
  double lo = 0.0, hi = 0.0;
  bool first = true;
  TenantId lo_t = 0, hi_t = 0;
  for (const DrrMember& m : d.members) {
    // A member unserved since the last membership change sits exactly at
    // its (pending) baseline.
    const double rel = m.epoch == d.epoch ? m.service - m.base : 0.0;
    if (first || rel < lo) { lo = rel; lo_t = m.tenant; }
    if (first || rel > hi) { hi = rel; hi_t = m.tenant; }
    first = false;
  }
  const double bound =
      kSkewRounds * static_cast<double>(d.quantum + d.max_weighted);
  if (hi - lo > bound) {
    Violate("drr.service.skew", hi_t, ssd,
            Format("normalized service skew %.0f (tenant %u ahead of %u) "
                   "exceeds %.0f over one backlogged epoch",
                   hi - lo, hi_t, lo_t, bound));
  }
}

void InvariantChecker::OnDrrServe(TenantId tenant, int ssd,
                                  uint64_t weighted_bytes, double weight) {
  const LockGuard lock(*this);
  ++checks_run_;
  DrrState& d = drr_[ssd];
  if (weight <= 0.0) weight = 1.0;
  const uint32_t pos = d.index.Find(tenant);
  // A serve for a tenant outside the backlogged set has no comparison
  // peers; the old lifetime-service ledger ignored it for skew purposes
  // too (it was never in the baseline map).
  if (pos == common::IdIndexMap::kNotFound) return;
  DrrMember& m = d.members[pos];
  if (m.epoch != d.epoch) {  // lazy re-baseline (see OnDrrBacklog)
    m.base = m.service;
    m.epoch = d.epoch;
  }
  m.service += static_cast<double>(weighted_bytes) / weight;
  if (d.members.size() < 2) return;
  // Amortize the O(members) min/max scan: run it once every |members|
  // serves. Detection lags by at most one scan period, which a linearly
  // diverging scheduler crosses within the same order of simulated time;
  // per-serve checker cost stays O(1) no matter how many tenants churn.
  if (++d.serves_since_scan < d.members.size()) return;
  d.serves_since_scan = 0;
  CheckDrrSkew(d, ssd);
}

void InvariantChecker::OnSlotOpen(TenantId tenant, int ssd,
                                  uint32_t slots_in_use, uint32_t allotted) {
  const LockGuard lock(*this);
  ++checks_run_;
  if (slots_in_use > allotted) {
    Violate("slot.occupancy", tenant, ssd,
            Format("slots in use=%u exceed allotment=%u", slots_in_use,
                   allotted));
  }
}

// --- Token bucket ----------------------------------------------------------

void InvariantChecker::OnBucketUpdate(int ssd, Tick elapsed,
                                      double target_rate, double read_before,
                                      double write_before, double read_after,
                                      double write_after, double cap) {
  const LockGuard lock(*this);
  ++checks_run_;
  const double before = read_before + write_before;
  const double after = read_after + write_after;
  const double expected =
      target_rate * static_cast<double>(elapsed) / kNsPerSec;
  if (after - before > expected + kTokenEps) {
    Violate("bucket.conservation", kNoTenant, ssd,
            Format("accrued %.1f tokens in %" PRIu64
                   "ns but rate %.0f B/s allows %.1f",
                   after - before, elapsed, target_rate, expected));
  }
  if (read_after > cap + kTokenEps || write_after > cap + kTokenEps) {
    Violate("bucket.ceiling", kNoTenant, ssd,
            Format("tokens read=%.1f write=%.1f exceed capacity=%.1f",
                   read_after, write_after, cap));
  }
  if (read_after < -kTokenEps || write_after < -kTokenEps) {
    Violate("bucket.conservation", kNoTenant, ssd,
            Format("negative tokens read=%.1f write=%.1f", read_after,
                   write_after));
  }
}

void InvariantChecker::OnBucketConsume(int ssd, bool is_read, uint64_t bytes,
                                       double before, double after,
                                       double cap) {
  const LockGuard lock(*this);
  ++checks_run_;
  (void)cap;
  const double delta = before - after;
  const double want = static_cast<double>(bytes);
  if (delta > want + kTokenEps || delta < want - kTokenEps) {
    Violate("bucket.conservation", kNoTenant, ssd,
            Format("%s consume of %" PRIu64 " bytes drained %.1f tokens",
                   is_read ? "read" : "write", bytes, delta));
  }
  if (after < -kTokenEps) {
    Violate("bucket.conservation", kNoTenant, ssd,
            Format("%s bucket overdrawn to %.1f by %" PRIu64 "-byte consume",
                   is_read ? "read" : "write", after, bytes));
  }
}

// --- Latency monitor -------------------------------------------------------

void InvariantChecker::OnLatencySample(int ssd, bool is_read, double ewma,
                                       double threshold, double thresh_min,
                                       double thresh_max, int state) {
  const LockGuard lock(*this);
  ++checks_run_;
  const char* dir = is_read ? "read" : "write";
  if (ewma < 0.0) {
    Violate("latency.sanity", kNoTenant, ssd,
            Format("%s EWMA negative: %.1f", dir, ewma));
    return;
  }
  if (threshold < thresh_min - 1e-6 || threshold > thresh_max + 1e-6) {
    Violate("latency.sanity", kNoTenant, ssd,
            Format("%s threshold %.1f outside [%.1f, %.1f]", dir, threshold,
                   thresh_min, thresh_max));
  }
  // State 3 (overloaded) requires EWMA above Thresh_max; state 0
  // (under-utilized) requires EWMA at or below Thresh_min (§3.2 Alg 1).
  if (state == 3 && ewma <= thresh_max) {
    Violate("latency.sanity", kNoTenant, ssd,
            Format("%s state overloaded but EWMA %.1f <= Thresh_max %.1f",
                   dir, ewma, thresh_max));
  }
  if (state == 0 && ewma > thresh_min + 1e-6) {
    Violate("latency.sanity", kNoTenant, ssd,
            Format("%s state under-utilized but EWMA %.1f > Thresh_min %.1f",
                   dir, ewma, thresh_min));
  }
}

// --- SSD health ------------------------------------------------------------

void InvariantChecker::OnHealthTransition(int ssd, int from, int to) {
  const LockGuard lock(*this);
  ++checks_run_;
  if (!LegalHealthTransition(from, to)) {
    static const char* kNames[] = {"healthy", "degraded", "failed",
                                   "recovering"};
    auto name = [](int s) {
      return (s >= 0 && s < 4) ? kNames[s] : "invalid";
    };
    Violate("health.transition", kNoTenant, ssd,
            Format("illegal SSD health transition %s -> %s", name(from),
                   name(to)));
  }
}

// --- KV fault tolerance ------------------------------------------------------

void InvariantChecker::OnKvWriteAck(TenantId instance, int ssd, int durable,
                                    bool acked) {
  const LockGuard lock(*this);
  ++checks_run_;
  if (acked && durable < 1) {
    Violate("kv.ack.lost", instance, ssd,
            Format("write acked with %d durable replicas — acked data could "
                   "be lost",
                   durable));
  }
}

void InvariantChecker::OnKvDirtyRecord(TenantId instance, int ssd,
                                       uint64_t bytes) {
  const LockGuard lock(*this);
  ++checks_run_;
  KvLedger& l = kv_[Key(instance, ssd)];
  ++l.recorded;
  l.recorded_bytes += bytes;
}

void InvariantChecker::OnKvDirtyRepair(TenantId instance, int ssd,
                                       uint64_t bytes) {
  const LockGuard lock(*this);
  ++checks_run_;
  KvLedger& l = kv_[Key(instance, ssd)];
  ++l.repaired;
  l.repaired_bytes += bytes;
  if (l.repaired + l.dropped > l.recorded) {
    Violate("kv.dirty.balance", instance, ssd,
            Format("repaired=%" PRIu64 " + dropped=%" PRIu64
                   " exceed recorded=%" PRIu64,
                   l.repaired, l.dropped, l.recorded));
  }
}

void InvariantChecker::OnKvDirtyDrop(TenantId instance, int ssd,
                                     uint64_t bytes) {
  const LockGuard lock(*this);
  ++checks_run_;
  KvLedger& l = kv_[Key(instance, ssd)];
  ++l.dropped;
  l.dropped_bytes += bytes;
  if (l.repaired + l.dropped > l.recorded) {
    Violate("kv.dirty.balance", instance, ssd,
            Format("repaired=%" PRIu64 " + dropped=%" PRIu64
                   " exceed recorded=%" PRIu64,
                   l.repaired, l.dropped, l.recorded));
  }
}

// --- Rack topology ----------------------------------------------------------

void InvariantChecker::OnKvReplicaPlacement(TenantId instance, int primary,
                                            int shadow, int primary_node,
                                            int shadow_node) {
  const LockGuard lock(*this);
  ++checks_run_;
  if (primary_node == shadow_node) {
    Violate("kv.placement.domain", instance, primary,
            Format("replicas share failure domain: primary backend %d and "
                   "shadow backend %d both on node %d",
                   primary, shadow, primary_node));
  }
}

void InvariantChecker::OnRackUplink(int node, uint64_t bytes,
                                    uint64_t node_total_sum,
                                    uint64_t uplink_total) {
  const LockGuard lock(*this);
  ++checks_run_;
  if (node_total_sum != uplink_total) {
    Violate("rack.uplink.conservation", kNoTenant, node,
            Format("per-node uplink bytes sum to %" PRIu64
                   " but the uplink carried %" PRIu64 " (last: %" PRIu64
                   " bytes for node %d)",
                   node_total_sum, uplink_total, bytes, node));
  }
}

// --- Transactions ----------------------------------------------------------

InvariantChecker::TxnState* InvariantChecker::FindTxn(TenantId instance,
                                                      uint64_t txn) {
  auto it = txn_live_.find(TxnKey(instance, txn));
  return it == txn_live_.end() ? nullptr : &it->second;
}

void InvariantChecker::OnTxnBegin(TenantId instance, uint64_t txn,
                                  uint64_t ts) {
  const LockGuard lock(*this);
  ++checks_run_;
  TxnLedger& l = txns_[static_cast<int32_t>(instance)];
  ++l.begun;
  ++l.live;
  auto [it, inserted] = txn_live_.try_emplace(TxnKey(instance, txn));
  if (!inserted) {
    Violate("txn.lifecycle", instance, -1,
            Format("txn %" PRIu64 " began twice", txn));
    return;
  }
  it->second.ts = ts;
}

void InvariantChecker::OnTxnLockAcquire(TenantId instance, uint64_t txn,
                                        uint64_t key, bool exclusive,
                                        bool upgrade) {
  const LockGuard lock(*this);
  ++checks_run_;
  (void)exclusive;
  TxnState* t = FindTxn(instance, txn);
  if (t == nullptr) {
    Violate("txn.lifecycle", instance, -1,
            Format("lock acquire on key %" PRIu64 " by unknown txn %" PRIu64,
                   key, txn));
    return;
  }
  // Strict two-phase discipline: the growing phase ends at the first
  // release; any acquire after that would let another transaction slip
  // between this one's reads and writes.
  if (t->releasing) {
    Violate("txn.two_phase", instance, -1,
            Format("txn %" PRIu64 " acquired key %" PRIu64
                   " after entering its release phase",
                   txn, key));
  }
  const bool held =
      std::find(t->held.begin(), t->held.end(), key) != t->held.end();
  if (upgrade != held) {
    Violate("txn.lock.conservation", instance, -1,
            Format("txn %" PRIu64 " %s key %" PRIu64 " it %s hold", txn,
                   upgrade ? "upgraded" : "freshly acquired", key,
                   held ? "already" : "does not"));
    return;
  }
  // Upgrades change the mode of a lock already in the ledger; only fresh
  // acquisitions enter the acquired/released conservation count (each held
  // key releases exactly once no matter how many times it was upgraded).
  if (!held) {
    t->held.push_back(key);
    ++txns_[static_cast<int32_t>(instance)].acquired;
  }
}

void InvariantChecker::OnTxnLockRelease(TenantId instance, uint64_t txn,
                                        uint64_t key) {
  const LockGuard lock(*this);
  ++checks_run_;
  TxnState* t = FindTxn(instance, txn);
  if (t == nullptr) {
    Violate("txn.lock.phantom", instance, -1,
            Format("lock release of key %" PRIu64 " by unknown txn %" PRIu64,
                   key, txn));
    return;
  }
  t->releasing = true;
  auto it = std::find(t->held.begin(), t->held.end(), key);
  if (it == t->held.end()) {
    Violate("txn.lock.phantom", instance, -1,
            Format("txn %" PRIu64 " released key %" PRIu64 " it does not hold",
                   txn, key));
    return;
  }
  t->held.erase(it);
  ++txns_[static_cast<int32_t>(instance)].released;
  if (t->terminal && t->held.empty()) txn_live_.erase(TxnKey(instance, txn));
}

void InvariantChecker::OnTxnWound(TenantId instance, uint64_t wounder,
                                  uint64_t wounder_ts, uint64_t victim,
                                  uint64_t victim_ts) {
  const LockGuard lock(*this);
  ++checks_run_;
  // Wound-wait legality: only an older (smaller-ts) transaction may wound;
  // a younger wounder would re-introduce the abort cycles the timestamp
  // order exists to break.
  if (wounder_ts >= victim_ts) {
    Violate("txn.wound.order", instance, -1,
            Format("txn %" PRIu64 " (ts=%" PRIu64 ") wounded txn %" PRIu64
                   " (ts=%" PRIu64 ") but is not older",
                   wounder, wounder_ts, victim, victim_ts));
  }
}

void InvariantChecker::OnTxnCommit(TenantId instance, uint64_t txn,
                                   uint64_t writes_acked,
                                   uint64_t writes_total) {
  const LockGuard lock(*this);
  ++checks_run_;
  TxnState* t = FindTxn(instance, txn);
  if (t == nullptr) {
    Violate("txn.lifecycle", instance, -1,
            Format("commit of unknown txn %" PRIu64, txn));
    return;
  }
  // "No committed transaction is ever lost": a commit may only be reported
  // once every one of its writes was durably acked through the WAL path.
  if (writes_acked != writes_total) {
    Violate("txn.commit.lost", instance, -1,
            Format("txn %" PRIu64 " committed with %" PRIu64 " of %" PRIu64
                   " writes durably acked",
                   txn, writes_acked, writes_total));
  }
  TxnLedger& l = txns_[static_cast<int32_t>(instance)];
  ++l.committed;
  --l.live;
  // Commit fires before ReleaseAll (strict 2PL) — keep auditing the
  // releases; the drain check catches any lock that never comes back.
  t->terminal = true;
  if (t->held.empty()) txn_live_.erase(TxnKey(instance, txn));
}

void InvariantChecker::OnTxnAbort(TenantId instance, uint64_t txn) {
  const LockGuard lock(*this);
  ++checks_run_;
  TxnState* t = FindTxn(instance, txn);
  if (t == nullptr) {
    Violate("txn.lifecycle", instance, -1,
            Format("abort of unknown txn %" PRIu64, txn));
    return;
  }
  TxnLedger& l = txns_[static_cast<int32_t>(instance)];
  ++l.aborted;
  --l.live;
  t->terminal = true;
  if (t->held.empty()) txn_live_.erase(TxnKey(instance, txn));
}

// --- End-of-run ------------------------------------------------------------

bool InvariantChecker::CheckDrained() {
  const LockGuard lock(*this);
  const size_t before = violations_.size();
  for (const uint32_t slot : clients_.live()) {
    const ClientLedger& c = clients_[slot];
    ++checks_run_;
    if (c.terminal != c.admitted) {
      Violate("drain.client.balance", c.tenant, c.ssd,
              Format("admitted=%" PRIu64 " but terminal=%" PRIu64
                     " after drain",
                     c.admitted, c.terminal));
    }
    if (c.terminal_issued != c.issued) {
      Violate("drain.client.balance", c.tenant, c.ssd,
              Format("issued=%" PRIu64 " but terminal_issued=%" PRIu64
                     " after drain",
                     c.issued, c.terminal_issued));
    }
  }
  for (const uint32_t slot : policies_.live()) {
    const PolicyLedger& p = policies_[slot];
    ++checks_run_;
    if (p.delivered + p.failed != p.target_admitted) {
      Violate("drain.policy.balance", p.tenant, p.ssd,
              Format("target admits=%" PRIu64 " but delivered=%" PRIu64
                     " + failed=%" PRIu64 " after drain",
                     p.target_admitted, p.delivered, p.failed));
    }
    if (p.device_returns != p.dispatched) {
      Violate("drain.policy.balance", p.tenant, p.ssd,
              Format("dispatched=%" PRIu64 " but device returns=%" PRIu64
                     " after drain",
                     p.dispatched, p.device_returns));
    }
  }
  for (const auto& [key, l] : kv_) {
    ++checks_run_;
    // Key(instance, ssd) packs ssd into the low 16 bits, instance above.
    const TenantId instance = static_cast<TenantId>(key >> 16);
    const int ssd = static_cast<int>(key & 0xFFFF);
    if (l.repaired + l.dropped != l.recorded) {
      Violate("drain.kv.dirty", instance, ssd,
              Format("dirty replicas recorded=%" PRIu64 " but repaired=%"
                     PRIu64 " + dropped=%" PRIu64
                     " after drain — replica count did not converge",
                     l.recorded, l.repaired, l.dropped));
    }
  }
  for (const auto& [instance, l] : txns_) {
    ++checks_run_;
    if (l.acquired != l.released) {
      Violate("drain.txn.locks", static_cast<TenantId>(instance), -1,
              Format("locks acquired=%" PRIu64 " but released=%" PRIu64
                     " after drain — lock table leaked",
                     l.acquired, l.released));
    }
    if (l.live != 0 || l.committed + l.aborted != l.begun) {
      Violate("drain.txn.locks", static_cast<TenantId>(instance), -1,
              Format("begun=%" PRIu64 " committed=%" PRIu64 " aborted=%"
                     PRIu64 " live=%" PRIu64 " after drain",
                     l.begun, l.committed, l.aborted, l.live));
    }
  }
  for (const auto& [key, t] : txn_live_) {
    ++checks_run_;
    if (!t.held.empty()) {
      Violate("drain.txn.locks", static_cast<TenantId>(key >> 48), -1,
              Format("txn %" PRIu64 " still holds %zu locks after drain",
                     key & ((1ull << 48) - 1), t.held.size()));
    }
  }
  return violations_.size() == before;
}

}  // namespace gimbal::check
