// Online invariant checker (docs/TESTING.md).
//
// Attaches to a Testbed the way obs::Observability does — every layer keeps
// a nullable pointer and fires a hook at the events that matter — and
// verifies, as the simulation runs, the conservation and fairness
// properties the paper states:
//
//   * per-tenant IO conservation at the client: every admitted IO is
//     queued, in flight, or terminal at all times, and the checker's
//     independent ledger must agree with the initiator's own counters,
//   * credit-pool conservation in the end-to-end flow control (§3.6,
//     Algorithm 3): a credit-throttled client never holds more IOs in
//     flight than its credit total, and never believes a credit the
//     switch did not grant,
//   * DRR fairness (§3.5, Algorithm 2): quantum grants are exactly
//     weight x quantum, deficits stay bounded, and the cost-normalized
//     service skew between continuously backlogged tenants is bounded,
//   * virtual-slot occupancy never exceeds the allotment (§3.5),
//   * dual-token-bucket compliance (§3.3, Appendix C.1, Algorithm 4):
//     tokens never exceed capacity, never go negative, accrue no faster
//     than target_rate x elapsed, and each submission consumes exactly
//     its size,
//   * latency-EWMA/threshold sanity (§3.2): the dynamic threshold stays
//     inside [Thresh_min, Thresh_max] and the congestion state matches
//     the EWMA,
//   * SSD-health transition legality (docs/FAULTS.md), validated against
//     an independent copy of the legality table,
//   * layered target/policy conservation: dispatches never exceed target
//     admissions, device completions never exceed dispatches.
//
// A violation records the simulated timestamp, tenant/SSD labels and a
// detail string; with fail_fast (the default, and what every Testbed-owned
// checker uses) it also prints a report — including a trace-context
// snippet when a tracer is attached — and aborts the run. Tests that
// *expect* violations (tests/mutation_smoke.cc) construct the checker with
// fail_fast=false and inspect violations() instead.
//
// CheckDrained() runs the end-of-run balance checks (admitted == terminal,
// nothing in flight) and may only be called after the testbed has fully
// quiesced (workers stopped, initiators shut down, event queue drained).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/index_arena.h"
#include "common/time.h"
#include "nvme/types.h"
#include "obs/trace.h"
#include "sim/shard.h"
#include "sim/simulator.h"

namespace gimbal::check {

class InvariantChecker {
 public:
  explicit InvariantChecker(bool fail_fast = true)
      : fail_fast_(fail_fast) {}

  // Timestamps for violations; null is allowed (violations stamp 0).
  void AttachSim(const sim::Simulator* sim) { sim_ = sim; }
  // Trace-context snippets in fail-fast reports; null is allowed.
  void AttachTracer(const obs::EventTracer* tracer) { tracer_ = tracer; }

  // Sharded testbeds with a worker pool fire hooks from several shard
  // threads; enable the checker-wide mutex before the first epoch runs.
  // Serial runs leave it off and pay nothing. The epoch barrier orders
  // every cross-shard dependency (a credit granted in epoch k is read by
  // the client no earlier than epoch k+1), and clean-run checker state
  // never feeds back into the schedule, so lock timing cannot perturb
  // determinism.
  void SetConcurrent(bool on) { concurrent_ = on; }

  struct Violation {
    Tick when = 0;
    std::string invariant;  // stable name, catalogued in docs/TESTING.md
    int32_t tenant = -1;
    int32_t ssd = -1;
    std::string detail;
  };

  const std::vector<Violation>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }
  uint64_t checks_run() const { return checks_run_; }

  // --- Client (initiator) hooks --------------------------------------------
  // An IO was admitted into the local queue (post MDTS split; one call per
  // wire command). `queued` is the initiator's local queue depth after.
  void OnClientAdmit(TenantId tenant, int ssd, size_t queued);
  // An IO moved from queued to issued. `inflight`/`credit_total` are the
  // initiator's counters after the move; `credit_throttled` selects the
  // Algorithm 3 credit-law check.
  void OnClientIssue(TenantId tenant, int ssd, size_t queued,
                     uint32_t inflight, uint32_t credit_total,
                     bool credit_throttled);
  // An IO reached its terminal status (completed or failed). `was_issued`
  // distinguishes IOs failed straight out of the local queue; `inflight`
  // is the initiator's counter after any decrement.
  void OnClientTerminal(TenantId tenant, int ssd, bool ok, bool was_issued,
                        uint32_t inflight);
  // The client adopted a piggybacked credit from a completion.
  void OnClientCreditUpdate(TenantId tenant, int ssd, uint32_t credit);

  // --- Target / policy hooks -----------------------------------------------
  void OnTargetAdmit(TenantId tenant, int ssd);
  void OnPolicyDispatch(TenantId tenant, int ssd);       // handed to the SSD
  void OnDeviceReturn(TenantId tenant, int ssd, bool ok);
  void OnPolicyDeliver(TenantId tenant, int ssd, bool ok);
  void OnPolicyFail(TenantId tenant, int ssd);           // never dispatched

  // --- Gimbal switch hooks -------------------------------------------------
  // Per-SSD DRR constants, registered once at attach time.
  void ConfigureDrr(int ssd, uint64_t quantum_bytes, uint64_t slot_bytes,
                    double cost_worst);
  // The switch granted a credit (piggybacked on a completion).
  void OnCreditGrant(TenantId tenant, int ssd, uint32_t credit);
  // A DRR grant of `rounds` quanta: deficit and fractional carry
  // before/after. The grant must equal floor(rounds x weight x quantum +
  // carry) with the remainder carried — verified with the scheduler's own
  // arithmetic, so equality is exact.
  void OnDrrQuantum(TenantId tenant, int ssd, uint64_t deficit_before,
                    uint64_t deficit_after, double weight, uint64_t rounds,
                    double frac_before, double frac_after);
  // Dequeue exhausted its pass budget with schedulable work remaining —
  // always a violation (the scheduler must make progress in bounded
  // rounds).
  void OnDrrPassExhausted(int ssd, uint64_t passes, uint64_t active,
                          uint64_t queued);
  // A request was served (popped) by the DRR.
  void OnDrrServe(TenantId tenant, int ssd, uint64_t weighted_bytes,
                  double weight);
  // The tenant's switch-side backlog state after a queue mutation
  // (idempotent; membership changes reset the skew baseline).
  void OnDrrBacklog(TenantId tenant, int ssd, bool backlogged);
  // A virtual slot was opened; `slots_in_use` includes the new slot.
  void OnSlotOpen(TenantId tenant, int ssd, uint32_t slots_in_use,
                  uint32_t allotted);

  // --- Token bucket hooks --------------------------------------------------
  // After an accrual step: tokens gained must not exceed
  // target_rate x elapsed, and both buckets must respect [0, cap].
  void OnBucketUpdate(int ssd, Tick elapsed, double target_rate,
                      double read_before, double write_before,
                      double read_after, double write_after, double cap);
  // After a consume: the bucket must decrement by exactly `bytes` and may
  // not be overdrawn.
  void OnBucketConsume(int ssd, bool is_read, uint64_t bytes, double before,
                       double after, double cap);

  // --- Latency monitor hook ------------------------------------------------
  void OnLatencySample(int ssd, bool is_read, double ewma, double threshold,
                       double thresh_min, double thresh_max, int state);

  // --- SSD health hook -----------------------------------------------------
  // Fired after a transition was *applied*; legality is re-validated here
  // against an independent table (fault::ValidTransition itself is a
  // mutation target). States use the fault::SsdHealth numeric values.
  void OnHealthTransition(int ssd, int from, int to);

  // --- KV fault tolerance (docs/FAULTS.md) ---------------------------------
  // A replicated blob write was acked to the DB with `durable` copies on
  // stable storage. "No acked write is ever lost": an ack with zero durable
  // replicas is an immediate violation, regardless of later rebuilds.
  void OnKvWriteAck(TenantId instance, int ssd, int durable, bool acked);
  // A blob entered the dirty-replica ledger (degraded write: `ssd` is the
  // backend missing its copy).
  void OnKvDirtyRecord(TenantId instance, int ssd, uint64_t bytes);
  // The rebuild scanner re-replicated a dirty blob onto `ssd`.
  void OnKvDirtyRepair(TenantId instance, int ssd, uint64_t bytes);
  // A dirty blob was invalidated before repair (its data was trimmed —
  // flushed WAL or compacted table — so re-replication became moot).
  void OnKvDirtyDrop(TenantId instance, int ssd, uint64_t bytes);

  // --- Rack topology (docs/SIMULATOR.md) -----------------------------------
  // A replicated write placed its copies on `primary`/`shadow` backends
  // living on `primary_node`/`shadow_node`. Node-disjointness is the rack
  // durability story: two replicas in one failure domain means a single
  // node failure loses acked data ("kv.placement.domain").
  void OnKvReplicaPlacement(TenantId instance, int primary, int shadow,
                            int primary_node, int shadow_node);
  // `bytes` just crossed the shared ToR uplink attributed to `node`;
  // `node_total_sum` is the per-node accounting total and `uplink_total`
  // the uplink-wide byte counter. Every byte must be attributed to exactly
  // one node ("rack.uplink.conservation").
  void OnRackUplink(int node, uint64_t bytes, uint64_t node_total_sum,
                    uint64_t uplink_total);

  // --- Transactions (kv/txn.h, docs/TESTING.md) ----------------------------
  // Independent audit of the 2PL lock manager and coordinator. The checker
  // keeps its own per-transaction held-lock multiset and per-instance
  // ledger, so a lock leak or phantom release in the lock manager is caught
  // against state the lock manager cannot corrupt.
  // A transaction registered with its conflict timestamp.
  void OnTxnBegin(TenantId instance, uint64_t txn, uint64_t ts);
  // A lock was granted (`upgrade`: an S holder was promoted to X). Strict
  // two-phase discipline: acquiring after the transaction entered its
  // release phase is a violation.
  void OnTxnLockAcquire(TenantId instance, uint64_t txn, uint64_t key,
                        bool exclusive, bool upgrade);
  // A held lock was released. Releasing a key the transaction does not
  // hold is the phantom-unlock violation.
  void OnTxnLockRelease(TenantId instance, uint64_t txn, uint64_t key);
  // WOUND_WAIT wounded `victim`: legal only when the wounder is older.
  void OnTxnWound(TenantId instance, uint64_t wounder, uint64_t wounder_ts,
                  uint64_t victim, uint64_t victim_ts);
  // The transaction was reported committed with `writes_acked` of
  // `writes_total` writes durably acked — any shortfall is a lost
  // committed transaction ("txn.commit.lost").
  void OnTxnCommit(TenantId instance, uint64_t txn, uint64_t writes_acked,
                   uint64_t writes_total);
  void OnTxnAbort(TenantId instance, uint64_t txn);

  // --- End-of-run ----------------------------------------------------------
  // Balance checks over every ledger; call only after a full drain.
  // Returns true when no new violation was recorded.
  bool CheckDrained();

 private:
  // Ledgers live in dense arenas (common/index_arena.h) rather than
  // unordered_maps: at 100k churned sessions the per-node allocations and
  // pointer chases dominated the checker's cost. Ledgers are never freed —
  // CheckDrained() audits every tenant that ever existed — so the arena
  // acts as a dense bump allocator with O(1) flat-hash lookup.
  struct ClientLedger {
    ClientLedger(TenantId t, int s) : tenant(t), ssd(s) {}
    void Reset(TenantId t, int s) { *this = ClientLedger(t, s); }
    TenantId tenant = 0;
    int ssd = -1;
    uint64_t admitted = 0;
    uint64_t issued = 0;
    uint64_t terminal = 0;         // ok + failed, issued or not
    uint64_t terminal_issued = 0;  // terminal IOs that had been issued
    // Highest credit the switch ever granted this (tenant, ssd); starts at
    // the client's optimistic initial grant.
    uint32_t max_credit_granted = 8;
  };
  struct PolicyLedger {
    PolicyLedger(TenantId t, int s) : tenant(t), ssd(s) {}
    void Reset(TenantId t, int s) { *this = PolicyLedger(t, s); }
    TenantId tenant = 0;
    int ssd = -1;
    uint64_t target_admitted = 0;
    uint64_t dispatched = 0;
    uint64_t device_returns = 0;
    uint64_t delivered = 0;  // ok + non-ok through Deliver()
    uint64_t failed = 0;     // FailRequest() (never dispatched)
  };
  // One currently-backlogged tenant in a DRR's fairness comparison.
  // Cost-normalized service accrues while the tenant stays backlogged; the
  // baseline is (re-)captured lazily at the member's first serve of each
  // comparison epoch. Between a membership change and that first serve the
  // member receives no service, so the lazy capture equals the eager one —
  // but a churn storm pays O(1) per join/leave instead of O(members).
  struct DrrMember {
    TenantId tenant = 0;
    double service = 0.0;  // normalized service since joining the set
    double base = 0.0;     // baseline at the current comparison epoch
    uint64_t epoch = 0;    // epoch `base` was captured for
  };
  struct DrrState {
    uint64_t quantum = 128 * 1024;
    uint64_t max_weighted = 9 * 128 * 1024;
    uint64_t epoch = 0;             // bumped on every membership change
    uint64_t serves_since_scan = 0;
    std::vector<DrrMember> members;  // dense, swap-remove on leave
    common::IdIndexMap index;        // tenant -> position in members
  };
  // Dirty-replica bookkeeping per (instance, backend). Low cardinality
  // (instances x backends), so a plain map suffices. "Replica count
  // converges to 2 after faults clear": once drained, every recorded dirty
  // blob was either repaired or invalidated by a trim.
  struct KvLedger {
    uint64_t recorded = 0;
    uint64_t repaired = 0;
    uint64_t dropped = 0;
    uint64_t recorded_bytes = 0;
    uint64_t repaired_bytes = 0;
    uint64_t dropped_bytes = 0;
  };
  // Live transaction-attempt state: the checker's own copy of the held-lock
  // set, audited against every release. Erased at the terminal event (after
  // verifying every lock came back), so steady state stays O(in-flight).
  struct TxnState {
    uint64_t ts = 0;
    bool releasing = false;  // saw a release: acquires now violate 2PL
    bool terminal = false;   // committed/aborted; erased once held empties
    std::vector<uint64_t> held;
  };
  // Per-instance lifetime balance, audited at CheckDrained().
  struct TxnLedger {
    uint64_t begun = 0;
    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t acquired = 0;
    uint64_t released = 0;
    uint64_t live = 0;  // begun minus terminal
  };

  static uint64_t Key(TenantId tenant, int ssd) {
    return (static_cast<uint64_t>(tenant) << 16) ^
           static_cast<uint64_t>(static_cast<uint16_t>(ssd));
  }
  ClientLedger& Client(TenantId tenant, int ssd) {
    const uint64_t key = Key(tenant, ssd);
    uint32_t slot = client_index_.Find(key);
    if (slot == common::IdIndexMap::kNotFound) {
      slot = clients_.Allocate(tenant, ssd);
      client_index_.Put(key, slot);
    }
    return clients_[slot];
  }
  PolicyLedger& Policy(TenantId tenant, int ssd) {
    const uint64_t key = Key(tenant, ssd);
    uint32_t slot = policy_index_.Find(key);
    if (slot == common::IdIndexMap::kNotFound) {
      slot = policies_.Allocate(tenant, ssd);
      policy_index_.Put(key, slot);
    }
    return policies_[slot];
  }

  // The clock of the shard executing the current hook; falls back to the
  // attached (client) simulator outside shard execution.
  Tick now() const {
    if (const sim::Simulator* s = sim::ShardedEngine::CurrentSim()) {
      return s->now();
    }
    return sim_ ? sim_->now() : 0;
  }
  void Violate(const char* invariant, TenantId tenant, int ssd,
               std::string detail);
  void CheckDrrSkew(const DrrState& d, int ssd);

  struct LockGuard {
    explicit LockGuard(const InvariantChecker& c) : c(c) {
      if (c.concurrent_) c.mu_.lock();
    }
    ~LockGuard() {
      if (c.concurrent_) c.mu_.unlock();
    }
    const InvariantChecker& c;
  };

  bool fail_fast_;
  bool concurrent_ = false;
  mutable std::mutex mu_;
  const sim::Simulator* sim_ = nullptr;
  const obs::EventTracer* tracer_ = nullptr;
  uint64_t checks_run_ = 0;
  std::vector<Violation> violations_;
  common::SlabArena<ClientLedger> clients_;
  common::IdIndexMap client_index_;
  common::SlabArena<PolicyLedger> policies_;
  common::IdIndexMap policy_index_;
  std::unordered_map<int, DrrState> drr_;
  std::unordered_map<uint64_t, KvLedger> kv_;  // Key(instance, backend)
  // Txn ids are globally unique per coordinator attempt; instances are low
  // cardinality. Keyed (instance, txn) and instance respectively.
  std::unordered_map<uint64_t, TxnState> txn_live_;  // Key(instance, txn&..)
  std::unordered_map<int32_t, TxnLedger> txns_;
  TxnState* FindTxn(TenantId instance, uint64_t txn);
  static uint64_t TxnKey(TenantId instance, uint64_t txn) {
    return (static_cast<uint64_t>(instance) << 48) ^ txn;
  }
};

}  // namespace gimbal::check
