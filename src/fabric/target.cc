#include "fabric/target.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "obs/schema.h"

namespace gimbal::fabric {

Target::Target(sim::Simulator& sim, Network& net, TargetConfig config)
    : sim_(sim), net_(net), config_(config) {
  cores_.reserve(config_.cores);
  core_sims_.reserve(config_.cores);
  for (int i = 0; i < config_.cores; ++i) {
    cores_.push_back(std::make_unique<sim::FifoResource>(sim_));
    core_sims_.push_back(&sim_);
  }
}

void Target::ConfigureShards(const std::vector<sim::Simulator*>& core_sims) {
  assert(pipelines_.empty() && "ConfigureShards must precede AddPipeline");
  assert(static_cast<int>(core_sims.size()) == config_.cores);
  cores_.clear();
  core_sims_ = core_sims;
  for (int i = 0; i < config_.cores; ++i) {
    cores_.push_back(std::make_unique<sim::FifoResource>(*core_sims_[i]));
  }
}

int Target::AddPipeline(std::unique_ptr<core::IoPolicy> policy,
                        obs::Observability* obs) {
  auto p = std::make_unique<Pipeline>();
  p->policy = std::move(policy);
  // Shared-nothing: pipelines spread round-robin over the cores (§4.1:
  // one A72 core fully drives one PCIe Gen3 SSD).
  p->core = static_cast<int>(pipelines_.size()) % config_.cores;
  p->sim = core_sims_[p->core];
  p->obs_override = obs;
  Pipeline* raw = p.get();
  p->policy->set_completion_fn(
      [this, raw](const IoRequest& req, const IoCompletion& cpl) {
        FinishCompletion(*raw, req, cpl);
      });
  // Global pipeline id: this target's base plus the local slot, so fabric
  // routing and the `ssd` metric label stay rack-wide unique.
  const int id = base_ + static_cast<int>(pipelines_.size());
  p->id = id;
  p->policy->AttachObservability(ObsOf(*p), id);
  p->policy->AttachChecker(chk_, id);
  pipelines_.push_back(std::move(p));
  return id;
}

void Target::AttachObservability(obs::Observability* obs) {
  obs_ = obs;
  for (size_t i = 0; i < pipelines_.size(); ++i) {
    Pipeline& p = *pipelines_[i];
    p.policy->AttachObservability(ObsOf(p), p.id);
    // Drop cached admit counter handles; they re-resolve against the new
    // registry (or run label) on the next capsule.
    for (uint32_t slot : p.sessions.live()) {
      p.sessions[slot].admit_ios = nullptr;
      p.sessions[slot].admit_bytes = nullptr;
    }
  }
}

void Target::AttachChecker(check::InvariantChecker* chk) {
  chk_ = chk;
  for (const auto& p : pipelines_) {
    p->policy->AttachChecker(chk_, p->id);
  }
}

Target::Session& Target::SessionFor(Pipeline& p, TenantId tenant) {
  uint32_t slot = p.session_index.Find(tenant);
  if (slot == common::IdIndexMap::kNotFound) {
    slot = p.sessions.Allocate(tenant);
    p.session_index.Put(tenant, slot);
  }
  return p.sessions[slot];
}

Target::Session* Target::FindSession(Pipeline& p, TenantId tenant) {
  const uint32_t slot = p.session_index.Find(tenant);
  return slot == common::IdIndexMap::kNotFound ? nullptr : &p.sessions[slot];
}

void Target::FreeSessionIfDrained(Pipeline& p, TenantId tenant) {
  const uint32_t slot = p.session_index.Find(tenant);
  if (slot == common::IdIndexMap::kNotFound) return;
  Session& s = p.sessions[slot];
  if (s.outstanding > 0) return;
  if (!s.parting && s.sink != nullptr) return;
  Untrack(p, s);
  p.session_index.Erase(tenant);
  p.sessions.Free(slot);
}

void Target::Connect(int pipeline, TenantId tenant, CompletionSink* sink) {
  Pipeline& p = Pipe(pipeline);
  Session& s = SessionFor(p, tenant);
  // A reconnect simply replaces the sink; an in-flight teardown is
  // cancelled (the new connection adopts any still-draining IOs).
  s.sink = sink;
  s.parting = false;
}

void Target::OnConnectCapsule(int pipeline, TenantId tenant,
                              CompletionSink* sink) {
  Pipeline& p = Pipe(pipeline);
  CoreOf(p).Acquire(config_.submit_cost, [this, &p, tenant, sink]() {
    Session& s = SessionFor(p, tenant);
    s.sink = sink;
    s.parting = false;
  });
}

void Target::OnCommandCapsule(int pipeline, IoRequest req) {
  Pipeline& p = Pipe(pipeline);
  ++p.stats.ios;
  p.stats.bytes += req.length;
  Session& s = SessionFor(p, req.tenant);
  ++s.outstanding;
  if (obs::Observability* o = ObsOf(p)) {
    const obs::Labels l =
        obs::Labels::TenantSsd(static_cast<int32_t>(req.tenant), pipeline);
    if (!s.admit_ios) {
      // Resolved once per session; a run-label change invalidates the
      // cache via Testbed re-attach. The metric series uses the folded
      // tenant label so a 100k-tenant churn cannot explode the registry.
      const obs::Labels ml = o->metrics.FoldTenant(l);
      s.admit_ios = &o->metrics.GetCounter(obs::schema::kTargetAdmitted, ml);
      s.admit_bytes =
          &o->metrics.GetCounter(obs::schema::kTargetAdmittedBytes, ml);
    }
    s.admit_ios->Add(1);
    s.admit_bytes->Add(req.length);
    o->tracer.Instant(p.sim->now(), obs::schema::kEvAdmit, l,
                      {{"bytes", static_cast<double>(req.length)},
                       {"write", req.type == IoType::kWrite ? 1.0 : 0.0}});
  }
  // Target-side latency is measured from capsule arrival to the completion
  // capsule being handed to the NIC (the (b)-(e) window of §2.1).
  req.target_arrival = p.sim->now();
  TouchSession(pipeline, req.tenant);
  // Step (b): submission processing on the pipeline's core.
  CoreOf(p).Acquire(
      config_.submit_cost + config_.added_cost, [this, &p, req]() mutable {
        if (req.type == IoType::kWrite && req.length > kInlineWriteBytes) {
          // RDMA_READ of the client payload: control message out, data in,
          // then staging through node memory.
          net_.Send(Direction::kTargetToClient, p.id, kRdmaControlBytes,
                    [this, &p, req]() mutable {
                      net_.Send(Direction::kClientToTarget, p.id, req.length,
                                [this, &p, req]() mutable {
                                  p.sim->After(StagingDelay(req.length),
                                               [this, &p, req]() {
                                                 DeliverToPolicy(p, req);
                                               });
                                });
                    });
        } else if (req.type == IoType::kWrite) {
          // Inlined payload arrived with the capsule: just stage it.
          p.sim->After(StagingDelay(req.length),
                       [this, &p, req]() { DeliverToPolicy(p, req); });
        } else {
          DeliverToPolicy(p, req);
        }
      });
}

// Policy ingress. The checker's target-admit ledger counts here — after
// the RDMA_READ for large writes — because a link flap can still eat the
// payload fetch between capsule arrival and this point, and a command the
// policy never saw cannot be expected to terminate (the client's retry
// covers it instead).
void Target::DeliverToPolicy(Pipeline& p, const IoRequest& req) {
  // A write's staging delay can let the tenant's disconnect overtake it:
  // the capsule arrived before the disconnect (FIFO), but by the time the
  // payload is staged the policy has already dropped the tenant. Handing
  // it over now would resurrect scheduler state nothing ever reaps — fail
  // it back to the client instead, through the normal completion path so
  // the session's outstanding count still drains.
  if (const Session* s = FindSession(p, req.tenant);
      s == nullptr || s->parting || s->sink == nullptr) {
    IoCompletion cpl;
    cpl.id = req.id;
    cpl.tenant = req.tenant;
    cpl.type = req.type;
    cpl.length = req.length;
    cpl.status = IoStatus::kAborted;
    FinishCompletion(p, req, cpl);
    return;
  }
  if (chk_) chk_->OnTargetAdmit(req.tenant, p.id);
  p.policy->OnRequest(req);
}

void Target::OnTrimCapsule(int pipeline, uint64_t offset, uint32_t length) {
  Pipeline& p = Pipe(pipeline);
  CoreOf(p).Acquire(config_.submit_cost, [&p, offset, length]() {
    p.policy->OnTrim(offset, length);
  });
}

void Target::OnDisconnectCapsule(int pipeline, TenantId tenant) {
  Pipeline& p = Pipe(pipeline);
  if (Session* s = FindSession(p, tenant)) {
    Untrack(p, *s);  // graceful exit: nothing left for the crash reaper
    s->parting = true;
  }
  CoreOf(p).Acquire(config_.submit_cost, [this, &p, tenant]() {
    // A whirlwind session can disconnect while its connect capsule is
    // still queued on the core: the arrival-time FindSession above saw
    // nothing to mark, and the sink registered only moments ago. The core
    // is FIFO, so re-marking here is ordered after the connect callback
    // and the slot cannot be left live with a dangling sink.
    if (Session* s = FindSession(p, tenant)) {
      Untrack(p, *s);
      s->parting = true;
    }
    p.policy->OnTenantDisconnect(tenant);
    // Queued IOs failed synchronously above but their completion capsules
    // are still queued on the core; the last FinishCompletion frees the
    // slot. An idle session has nothing outstanding and frees right here.
    FreeSessionIfDrained(p, tenant);
  });
}

void Target::OnKeepaliveCapsule(int pipeline, TenantId tenant) {
  TouchSession(pipeline, tenant);
}

void Target::TouchSession(int pipeline, TenantId tenant) {
  if (config_.session_timeout <= 0) return;
  Pipeline& p = Pipe(pipeline);
  Session& s = SessionFor(p, tenant);
  s.last_seen = p.sim->now();
  if (!s.tracked) {
    s.tracked = true;
    ++p.tracked_sessions;
  }
  if (p.reaper_timer.active()) return;
  // Scan at half the timeout so a dead session is reaped at most 1.5x the
  // timeout after its last capsule. One timer per pipeline, on the
  // pipeline's shard.
  p.reaper_timer = p.sim->After(config_.session_timeout / 2,
                                [this, &p]() { ReapStaleSessions(p); });
}

void Target::ReapStaleSessions(Pipeline& p) {
  const Tick now = p.sim->now();
  // Collect-then-reap, sorted: arena live order depends on churn history
  // and the reap order is client-visible (failed completions).
  std::vector<TenantId> stale;
  for (uint32_t slot : p.sessions.live()) {
    const Session& s = p.sessions[slot];
    if (s.tracked && now - s.last_seen >= config_.session_timeout) {
      stale.push_back(s.tenant);
    }
  }
  std::sort(stale.begin(), stale.end());
  for (TenantId tenant : stale) {
    Session* s = FindSession(p, tenant);
    Untrack(p, *s);
    s->parting = true;
    ++p.sessions_reaped;
    if (obs::Observability* o = ObsOf(p)) {
      const obs::Labels l =
          obs::Labels::TenantSsd(static_cast<int32_t>(tenant), p.id);
      o->metrics
          .GetCounter(obs::schema::kTargetSessionsReaped,
                      o->metrics.FoldTenant(l))
          .Add(1);
      o->tracer.Instant(now, obs::schema::kEvTenantReap, l);
    }
    // Same teardown as a disconnect capsule: queued IOs fail back with
    // status=aborted, scheduler state is reclaimed once inflight drains.
    CoreOf(p).Acquire(config_.submit_cost, [this, &p, tenant]() {
      p.policy->OnTenantDisconnect(tenant);
      FreeSessionIfDrained(p, tenant);
    });
  }
  // Self-terminate once nothing is tracked so the event queue can drain.
  if (p.tracked_sessions > 0) {
    p.reaper_timer = p.sim->After(config_.session_timeout / 2,
                                  [this, &p]() { ReapStaleSessions(p); });
  }
}

int Target::session_count() const {
  int n = 0;
  for (const auto& p : pipelines_) n += p->tracked_sessions;
  return n;
}

uint64_t Target::sessions_reaped() const {
  uint64_t n = 0;
  for (const auto& p : pipelines_) n += p->sessions_reaped;
  return n;
}

size_t Target::live_sessions() const {
  size_t n = 0;
  for (const auto& p : pipelines_) n += p->sessions.size();
  return n;
}

uint64_t Target::completions_orphaned() const {
  uint64_t n = 0;
  for (const auto& p : pipelines_) n += p->completions_orphaned;
  return n;
}

Target::TargetStats Target::stats() const {
  TargetStats total;
  for (const auto& p : pipelines_) {
    total.ios += p->stats.ios;
    total.bytes += p->stats.bytes;
  }
  return total;
}

void Target::FinishCompletion(Pipeline& p, const IoRequest& req,
                              IoCompletion cpl) {
  // Step (e) prologue: completion processing on the core.
  CoreOf(p).Acquire(config_.complete_cost, [this, &p, req, cpl]() mutable {
    cpl.target_latency = p.sim->now() - req.target_arrival;
    Session* s = FindSession(p, req.tenant);
    if (s != nullptr && s->outstanding > 0) --s->outstanding;
    if (s == nullptr || s->sink == nullptr) {
      // The session was already torn down (a command capsule delayed by a
      // link fault can slip past its tenant's disconnect). The client side
      // terminated this IO long ago; drop the completion, count it.
      ++p.completions_orphaned;
      if (s != nullptr) FreeSessionIfDrained(p, req.tenant);
      return;
    }
    CompletionSink* sink = s->sink;
    // May recycle the slot; `sink` is captured by value below and the
    // Initiator object outlives its fabric traffic (testbed-owned, or
    // graveyard-held by the fleet until drained).
    FreeSessionIfDrained(p, req.tenant);
    if (req.type == IoType::kRead && cpl.ok()) {
      // Step (d): stage data out of node memory, RDMA_WRITE it, then the
      // completion capsule follows on the same direction.
      p.sim->After(StagingDelay(req.length), [this, &p, req, cpl, sink]() {
        net_.Send(Direction::kTargetToClient, p.id, req.length + kCapsuleBytes,
                  [cpl, sink]() { sink->OnFabricCompletion(cpl); });
      });
    } else {
      net_.Send(Direction::kTargetToClient, p.id, kCapsuleBytes,
                [cpl, sink]() { sink->OnFabricCompletion(cpl); });
    }
  });
}

}  // namespace gimbal::fabric
