#include "fabric/target.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "obs/schema.h"

namespace gimbal::fabric {

Target::Target(sim::Simulator& sim, Network& net, TargetConfig config)
    : sim_(sim), net_(net), config_(config) {
  cores_.reserve(config_.cores);
  core_sims_.reserve(config_.cores);
  for (int i = 0; i < config_.cores; ++i) {
    cores_.push_back(std::make_unique<sim::FifoResource>(sim_));
    core_sims_.push_back(&sim_);
  }
}

void Target::ConfigureShards(const std::vector<sim::Simulator*>& core_sims) {
  assert(pipelines_.empty() && "ConfigureShards must precede AddPipeline");
  assert(static_cast<int>(core_sims.size()) == config_.cores);
  cores_.clear();
  core_sims_ = core_sims;
  for (int i = 0; i < config_.cores; ++i) {
    cores_.push_back(std::make_unique<sim::FifoResource>(*core_sims_[i]));
  }
}

int Target::AddPipeline(std::unique_ptr<core::IoPolicy> policy,
                        obs::Observability* obs) {
  auto p = std::make_unique<Pipeline>();
  p->policy = std::move(policy);
  // Shared-nothing: pipelines spread round-robin over the cores (§4.1:
  // one A72 core fully drives one PCIe Gen3 SSD).
  p->core = static_cast<int>(pipelines_.size()) % config_.cores;
  p->sim = core_sims_[p->core];
  p->obs_override = obs;
  Pipeline* raw = p.get();
  p->policy->set_completion_fn(
      [this, raw](const IoRequest& req, const IoCompletion& cpl) {
        FinishCompletion(*raw, req, cpl);
      });
  const int id = static_cast<int>(pipelines_.size());
  p->id = id;
  p->policy->AttachObservability(ObsOf(*p), id);
  p->policy->AttachChecker(chk_, id);
  pipelines_.push_back(std::move(p));
  return id;
}

void Target::AttachObservability(obs::Observability* obs) {
  obs_ = obs;
  for (int i = 0; i < static_cast<int>(pipelines_.size()); ++i) {
    pipelines_[i]->policy->AttachObservability(ObsOf(*pipelines_[i]), i);
    pipelines_[i]->admit.clear();
  }
}

void Target::AttachChecker(check::InvariantChecker* chk) {
  chk_ = chk;
  for (int i = 0; i < static_cast<int>(pipelines_.size()); ++i) {
    pipelines_[i]->policy->AttachChecker(chk_, i);
  }
}

void Target::Connect(int pipeline, TenantId tenant, CompletionSink* sink) {
  pipelines_[pipeline]->sinks[tenant] = sink;
}

void Target::OnCommandCapsule(int pipeline, IoRequest req) {
  Pipeline& p = *pipelines_[pipeline];
  ++p.stats.ios;
  p.stats.bytes += req.length;
  if (obs::Observability* o = ObsOf(p)) {
    const obs::Labels l =
        obs::Labels::TenantSsd(static_cast<int32_t>(req.tenant), pipeline);
    Pipeline::AdmitCounters& ac = p.admit[req.tenant];
    if (!ac.ios) {
      // Resolved once per (tenant, pipeline); a run-label change invalidates
      // the cache via Testbed re-attach.
      ac.ios = &o->metrics.GetCounter(obs::schema::kTargetAdmitted, l);
      ac.bytes = &o->metrics.GetCounter(obs::schema::kTargetAdmittedBytes, l);
    }
    ac.ios->Add(1);
    ac.bytes->Add(req.length);
    o->tracer.Instant(p.sim->now(), obs::schema::kEvAdmit, l,
                      {{"bytes", static_cast<double>(req.length)},
                       {"write", req.type == IoType::kWrite ? 1.0 : 0.0}});
  }
  // Target-side latency is measured from capsule arrival to the completion
  // capsule being handed to the NIC (the (b)-(e) window of §2.1).
  req.target_arrival = p.sim->now();
  TouchSession(pipeline, req.tenant);
  // Step (b): submission processing on the pipeline's core.
  CoreOf(p).Acquire(
      config_.submit_cost + config_.added_cost, [this, &p, req]() mutable {
        if (req.type == IoType::kWrite && req.length > kInlineWriteBytes) {
          // RDMA_READ of the client payload: control message out, data in,
          // then staging through node memory.
          net_.Send(Direction::kTargetToClient, p.id, kRdmaControlBytes,
                    [this, &p, req]() mutable {
                      net_.Send(Direction::kClientToTarget, p.id, req.length,
                                [this, &p, req]() mutable {
                                  p.sim->After(StagingDelay(req.length),
                                               [this, &p, req]() {
                                                 DeliverToPolicy(p, req);
                                               });
                                });
                    });
        } else if (req.type == IoType::kWrite) {
          // Inlined payload arrived with the capsule: just stage it.
          p.sim->After(StagingDelay(req.length),
                       [this, &p, req]() { DeliverToPolicy(p, req); });
        } else {
          DeliverToPolicy(p, req);
        }
      });
}

// Policy ingress. The checker's target-admit ledger counts here — after
// the RDMA_READ for large writes — because a link flap can still eat the
// payload fetch between capsule arrival and this point, and a command the
// policy never saw cannot be expected to terminate (the client's retry
// covers it instead).
void Target::DeliverToPolicy(Pipeline& p, const IoRequest& req) {
  if (chk_) chk_->OnTargetAdmit(req.tenant, p.id);
  p.policy->OnRequest(req);
}

void Target::OnTrimCapsule(int pipeline, uint64_t offset, uint32_t length) {
  Pipeline& p = *pipelines_[pipeline];
  CoreOf(p).Acquire(config_.submit_cost, [&p, offset, length]() {
    p.policy->OnTrim(offset, length);
  });
}

void Target::OnDisconnectCapsule(int pipeline, TenantId tenant) {
  Pipeline& p = *pipelines_[pipeline];
  p.last_seen.erase(tenant);  // graceful exit: nothing left to reap
  CoreOf(p).Acquire(config_.submit_cost, [&p, tenant]() {
    p.policy->OnTenantDisconnect(tenant);
  });
}

void Target::OnKeepaliveCapsule(int pipeline, TenantId tenant) {
  TouchSession(pipeline, tenant);
}

void Target::TouchSession(int pipeline, TenantId tenant) {
  if (config_.session_timeout <= 0) return;
  Pipeline& p = *pipelines_[pipeline];
  p.last_seen[tenant] = p.sim->now();
  if (p.reaper_timer.active()) return;
  // Scan at half the timeout so a dead session is reaped at most 1.5x the
  // timeout after its last capsule. One timer per pipeline, on the
  // pipeline's shard.
  p.reaper_timer = p.sim->After(config_.session_timeout / 2,
                                [this, &p]() { ReapStaleSessions(p); });
}

void Target::ReapStaleSessions(Pipeline& p) {
  const Tick now = p.sim->now();
  // Collect-then-reap, sorted: map order is implementation-defined and
  // the reap order is client-visible (failed completions).
  std::vector<TenantId> stale;
  for (const auto& [tenant, seen] : p.last_seen) {
    if (now - seen >= config_.session_timeout) stale.push_back(tenant);
  }
  std::sort(stale.begin(), stale.end());
  for (TenantId tenant : stale) {
    p.last_seen.erase(tenant);
    ++p.sessions_reaped;
    if (obs::Observability* o = ObsOf(p)) {
      const obs::Labels l =
          obs::Labels::TenantSsd(static_cast<int32_t>(tenant), p.id);
      o->metrics.GetCounter(obs::schema::kTargetSessionsReaped, l).Add(1);
      o->tracer.Instant(now, obs::schema::kEvTenantReap, l);
    }
    // Same teardown as a disconnect capsule: queued IOs fail back with
    // status=aborted, scheduler state is reclaimed once inflight drains.
    CoreOf(p).Acquire(config_.submit_cost, [&p, tenant]() {
      p.policy->OnTenantDisconnect(tenant);
    });
  }
  // Self-terminate once nothing is tracked so the event queue can drain.
  if (!p.last_seen.empty()) {
    p.reaper_timer = p.sim->After(config_.session_timeout / 2,
                                  [this, &p]() { ReapStaleSessions(p); });
  }
}

int Target::session_count() const {
  int n = 0;
  for (const auto& p : pipelines_) n += static_cast<int>(p->last_seen.size());
  return n;
}

uint64_t Target::sessions_reaped() const {
  uint64_t n = 0;
  for (const auto& p : pipelines_) n += p->sessions_reaped;
  return n;
}

Target::TargetStats Target::stats() const {
  TargetStats total;
  for (const auto& p : pipelines_) {
    total.ios += p->stats.ios;
    total.bytes += p->stats.bytes;
  }
  return total;
}

void Target::FinishCompletion(Pipeline& p, const IoRequest& req,
                              IoCompletion cpl) {
  // Step (e) prologue: completion processing on the core.
  CoreOf(p).Acquire(config_.complete_cost, [this, &p, req, cpl]() mutable {
    cpl.target_latency = p.sim->now() - req.target_arrival;
    auto it = p.sinks.find(req.tenant);
    assert(it != p.sinks.end() && "completion for unconnected tenant");
    CompletionSink* sink = it->second;
    if (req.type == IoType::kRead && cpl.ok()) {
      // Step (d): stage data out of node memory, RDMA_WRITE it, then the
      // completion capsule follows on the same direction.
      p.sim->After(StagingDelay(req.length), [this, &p, req, cpl, sink]() {
        net_.Send(Direction::kTargetToClient, p.id, req.length + kCapsuleBytes,
                  [cpl, sink]() { sink->OnFabricCompletion(cpl); });
      });
    } else {
      net_.Send(Direction::kTargetToClient, p.id, kCapsuleBytes,
                [cpl, sink]() { sink->OnFabricCompletion(cpl); });
    }
  });
}

}  // namespace gimbal::fabric
