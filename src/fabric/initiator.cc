#include "fabric/initiator.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>
#include <vector>

#include "core/params.h"
#include "obs/schema.h"

namespace gimbal::fabric {

Initiator::Initiator(sim::Simulator& sim, Network& net, Target& target,
                     int pipeline, TenantId tenant, ThrottleMode mode,
                     baselines::PardaParams parda, RetryParams retry,
                     ConnectMode connect)
    : sim_(sim), net_(net), target_(target), pipeline_(pipeline),
      tenant_(tenant), mode_(mode), parda_(parda), retry_(retry) {
  if (connect == ConnectMode::kDirect) {
    target_.Connect(pipeline_, tenant_, this);
  } else {
    // The connect capsule leads every command on the FIFO fabric, so the
    // sink is registered before the first completion could need it.
    ++control_inflight_;
    net_.Send(Direction::kClientToTarget, pipeline_, kCapsuleBytes, [this]() {
      --control_inflight_;
      target_.OnConnectCapsule(pipeline_, tenant_, this);
    });
  }
  if (retry_.keepalive_interval > 0) {
    keepalive_timer_ =
        sim_.After(retry_.keepalive_interval, [this]() { KeepaliveTick(); });
  }
}

void Initiator::KeepaliveTick() {
  // The heartbeat dies with the process — that silence is exactly what the
  // target's session reaper detects after a Crash(). Shutdown/Crash cancel
  // the armed timer, so this guard only covers a same-tick race.
  if (shutdown_) return;
  ++control_inflight_;
  net_.Send(Direction::kClientToTarget, pipeline_, kCapsuleBytes, [this]() {
    --control_inflight_;
    target_.OnKeepaliveCapsule(pipeline_, tenant_);
  });
  keepalive_timer_ =
      sim_.After(retry_.keepalive_interval, [this]() { KeepaliveTick(); });
}

bool Initiator::CanIssue() const {
  switch (mode_) {
    case ThrottleMode::kNone:
      return true;
    case ThrottleMode::kCredit:
      // Algorithm 3: submit while credit_tot > inflight.
      return credit_total_ + (GIMBAL_MUT(kCreditLeak) ? 1u : 0u) > inflight_;
    case ThrottleMode::kParda:
      return parda_.CanIssue(inflight_);
  }
  return true;
}

void Initiator::Submit(IoType type, uint64_t offset, uint32_t length,
                       IoPriority prio, DoneFn done) {
  if (shutdown_) {
    // Rejected at the door: never admitted, so it counts toward neither
    // the submitted nor the failed totals.
    if (done) {
      IoCompletion cpl;
      cpl.tenant = tenant_;
      cpl.type = type;
      cpl.length = length;
      cpl.status = IoStatus::kAborted;
      sim_.After(0, [done = std::move(done), cpl]() { done(cpl, 0); });
    }
    return;
  }
  if (length > kMaxTransferBytes) {
    // MDTS splitting: chain commands of at most the fabric's maximum
    // transfer size; the caller's completion fires when the last chunk
    // returns, reporting the aggregate length.
    auto remaining = std::make_shared<uint32_t>(
        (length + kMaxTransferBytes - 1) / kMaxTransferBytes);
    auto shared_done = std::make_shared<DoneFn>(std::move(done));
    // The chain fails as a unit: the aggregate carries the first non-ok
    // chunk status.
    auto worst = std::make_shared<IoStatus>(IoStatus::kOk);
    uint32_t total = length;
    for (uint64_t off = offset; off < offset + length;
         off += kMaxTransferBytes) {
      uint32_t chunk = static_cast<uint32_t>(
          std::min<uint64_t>(kMaxTransferBytes, offset + length - off));
      Submit(type, off, chunk, prio,
             [remaining, shared_done, worst, total](const IoCompletion& cpl,
                                                    Tick e2e) {
               if (!cpl.ok() && *worst == IoStatus::kOk) *worst = cpl.status;
               if (--*remaining > 0) return;
               if (*shared_done) {
                 IoCompletion agg = cpl;
                 agg.length = total;
                 agg.status = *worst;
                 (*shared_done)(agg, e2e);
               }
             });
    }
    return;
  }
  Pending p;
  p.req.id = next_id_++;
  p.req.tenant = tenant_;
  p.req.type = type;
  p.req.offset = offset;
  p.req.length = length;
  p.req.priority = prio;
  p.done = std::move(done);
  // Admitted: from here the IO must reach exactly one terminal status
  // (ok/failed), which is the no-IO-lost invariant the fault tests sweep.
  if (m_submitted_) m_submitted_->Add(1);
  pending_.push_back(std::move(p));
  if (chk_) chk_->OnClientAdmit(tenant_, pipeline_, pending_.size());
  IssueLoop();
}

void Initiator::FailLocally(Pending p, IoStatus status, bool was_issued) {
  IoCompletion cpl;
  cpl.id = p.req.id;
  cpl.tenant = tenant_;
  cpl.type = p.req.type;
  cpl.length = p.req.length;
  cpl.status = status;
  const Tick e2e =
      p.req.client_submit > 0 ? sim_.now() - p.req.client_submit : 0;
  if (m_failed_) m_failed_->Add(1);
  if (chk_) {
    chk_->OnClientTerminal(tenant_, pipeline_, /*ok=*/false, was_issued,
                           inflight_);
  }
  if (p.done) {
    sim_.After(0, [done = std::move(p.done), cpl, e2e]() { done(cpl, e2e); });
  }
}

void Initiator::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  keepalive_timer_.Cancel();
  // Issued IOs keep their timeout timers: each either completes normally
  // or is aborted when its timer fires (no retransmission follows a
  // disconnect). Fail everything still queued locally.
  std::deque<Pending> pending = std::move(pending_);
  pending_.clear();
  for (auto& p : pending) {
    FailLocally(std::move(p), IoStatus::kAborted, /*was_issued=*/false);
  }
  // The disconnect capsule trails any already-issued commands (the fabric
  // is FIFO per direction), so the target sees them first.
  ++control_inflight_;
  net_.Send(Direction::kClientToTarget, pipeline_, kCapsuleBytes, [this]() {
    --control_inflight_;
    target_.OnDisconnectCapsule(pipeline_, tenant_);
  });
}

void Initiator::Crash() {
  if (shutdown_) return;
  shutdown_ = true;
  crashed_ = true;
  keepalive_timer_.Cancel();
  if (obs_) {
    obs_->tracer.Instant(
        sim_.now(), obs::schema::kEvTenantCrash,
        obs::Labels::TenantSsd(static_cast<int32_t>(tenant_), pipeline_));
  }
  // Everything the process held dies with it: queued and issued IOs fail
  // locally, no disconnect capsule crosses the fabric, the keepalive loop
  // stops. The target learns of the death from its session timeout;
  // completions still in flight arrive for unknown ids and count as late.
  std::deque<Pending> pending = std::move(pending_);
  pending_.clear();
  for (auto& p : pending) {
    FailLocally(std::move(p), IoStatus::kAborted, /*was_issued=*/false);
  }
  std::vector<uint64_t> ids;
  ids.reserve(issued_.size());
  for (const auto& [id, p] : issued_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());  // deterministic fail order
  for (uint64_t id : ids) {
    auto it = issued_.find(id);
    Pending p = std::move(it->second);
    issued_.erase(it);
    --inflight_;
    p.timer.Cancel();
    FailLocally(std::move(p), IoStatus::kAborted, /*was_issued=*/true);
  }
}

void Initiator::Trim(uint64_t offset, uint32_t length) {
  ++control_inflight_;
  net_.Send(Direction::kClientToTarget, pipeline_, kCapsuleBytes,
            [this, offset, length]() {
              --control_inflight_;
              target_.OnTrimCapsule(pipeline_, offset, length);
            });
}

void Initiator::SendCommand(const IoRequest& req) {
  // Step (a): the command capsule crosses the fabric. Small writes inline
  // their payload into the capsule; larger writes move later via the
  // target's RDMA_READ.
  uint64_t capsule = kCapsuleBytes;
  if (req.type == IoType::kWrite && req.length <= kInlineWriteBytes) {
    capsule += req.length;
  }
  net_.Send(Direction::kClientToTarget, pipeline_, capsule, [this, req]() {
    target_.OnCommandCapsule(pipeline_, req);
  });
}

void Initiator::IssueLoop() {
  while (!pending_.empty() && CanIssue()) {
    Pending p = std::move(pending_.front());
    pending_.pop_front();
    p.req.client_submit = sim_.now();
    p.attempts = 1;
    ++inflight_;
    IoRequest req = p.req;
    issued_.emplace(req.id, std::move(p));
    if (chk_) {
      chk_->OnClientIssue(tenant_, pipeline_, pending_.size(), inflight_,
                          credit_total_, mode_ == ThrottleMode::kCredit);
    }
    SendCommand(req);
    ArmTimeout(req.id, 1);
  }
}

void Initiator::ArmTimeout(uint64_t id, int attempt) {
  if (retry_.io_timeout <= 0) return;
  auto it = issued_.find(id);
  assert(it != issued_.end());
  it->second.timer.Cancel();  // no-op unless a stale timer is still armed
  it->second.timer = sim_.After(
      retry_.io_timeout, [this, id, attempt]() { OnTimeout(id, attempt); });
}

void Initiator::OnTimeout(uint64_t id, int attempt) {
  auto it = issued_.find(id);
  // Completed meanwhile, superseded by a newer attempt's timer, or swept
  // up by Crash(): this timer is stale.
  if (it == issued_.end() || it->second.attempts != attempt) return;
  Pending& p = it->second;
  if (shutdown_ || p.attempts > retry_.max_retries) {
    // Terminal: retry budget exhausted (status=timeout), or the connection
    // shut down while the completion was missing — no retransmission will
    // follow a disconnect, so the IO is aborted rather than left dangling.
    // A still-later completion of some attempt hits the unknown-id path.
    const IoStatus status =
        shutdown_ ? IoStatus::kAborted : IoStatus::kTimeout;
    if (!shutdown_) {
      ++timeouts_;
      if (m_timeouts_) m_timeouts_->Add(1);
      if (obs_) {
        obs_->tracer.Instant(
            sim_.now(), obs::schema::kEvTimeout,
            obs::Labels::TenantSsd(static_cast<int32_t>(tenant_), pipeline_),
            {{"attempts", static_cast<double>(p.attempts)}});
      }
    }
    Pending out = std::move(it->second);
    issued_.erase(it);
    --inflight_;
    FailLocally(std::move(out), status, /*was_issued=*/true);
    IssueLoop();
    return;
  }
  // Retry n (1-based) retransmits the SAME command id after a bounded
  // exponential backoff, so a late completion of any attempt still
  // completes the IO; the target may execute a command twice, which is why
  // fault-time accounting balances at the client, not the target
  // (docs/FAULTS.md). The entry stays issued_ during the backoff.
  const int retry_n = p.attempts;
  const Tick backoff = BackoffFor(retry_, retry_n);
  ++retries_;
  if (m_retries_) m_retries_->Add(1);
  if (obs_) {
    obs_->tracer.Instant(
        sim_.now(), obs::schema::kEvRetry,
        obs::Labels::TenantSsd(static_cast<int32_t>(tenant_), pipeline_),
        {{"retry", static_cast<double>(retry_n)},
         {"backoff_ns", static_cast<double>(backoff)}});
  }
  p.timer = sim_.After(backoff, [this, id, attempt]() {
    auto it2 = issued_.find(id);
    if (it2 == issued_.end() || it2->second.attempts != attempt) return;
    if (shutdown_) {
      // Shut down mid-backoff: no retransmission will follow, so the IO
      // terminates here instead of dangling without a timer.
      Pending out = std::move(it2->second);
      issued_.erase(it2);
      --inflight_;
      FailLocally(std::move(out), IoStatus::kAborted, /*was_issued=*/true);
      return;
    }
    ++it2->second.attempts;
    SendCommand(it2->second.req);
    ArmTimeout(id, it2->second.attempts);
  });
}

void Initiator::OnFabricCompletion(const IoCompletion& cpl) {
  auto it = issued_.find(cpl.id);
  if (it == issued_.end()) {
    // Late completion of an attempt that already timed out (or of an IO
    // failed by Crash), or the duplicate produced by a retry the target
    // executed twice. The IO already reached its terminal status; this
    // straggler is counted and dropped.
    ++late_completions_;
    if (m_late_) m_late_->Add(1);
    return;
  }
  Pending p = std::move(it->second);
  issued_.erase(it);
  --inflight_;
  // Completion beats the timeout: tear the timer down instead of leaving a
  // dead event to churn the queue until it fires.
  p.timer.Cancel();

  const Tick e2e = sim_.now() - p.req.client_submit;
  if (chk_) {
    if (cpl.credit > 0) {
      chk_->OnClientCreditUpdate(tenant_, pipeline_, cpl.credit);
    }
    chk_->OnClientTerminal(tenant_, pipeline_, cpl.ok(), /*was_issued=*/true,
                           inflight_);
  }
  if (cpl.credit > 0) credit_total_ = cpl.credit;  // §3.6 credit update
  // Faulted completions carry no queueing-delay signal: keep them out of
  // the PARDA latency window, as the target keeps them out of its EWMAs.
  if (mode_ == ThrottleMode::kParda && cpl.ok()) {
    parda_.OnCompletion(e2e, sim_.now());
  }

  if (cpl.ok()) {
    if (m_completed_) {
      m_completed_->Add(1);
      m_completed_bytes_->Add(cpl.length);
    }
  } else if (m_failed_) {
    m_failed_->Add(1);
  }
  if (p.done) p.done(cpl, e2e);
  IssueLoop();
}

void Initiator::AttachObservability(obs::Observability* obs) {
  obs_ = obs;
  if (!obs) {
    m_submitted_ = nullptr;
    m_completed_ = nullptr;
    m_completed_bytes_ = nullptr;
    m_failed_ = nullptr;
    m_retries_ = nullptr;
    m_timeouts_ = nullptr;
    m_late_ = nullptr;
    return;
  }
  namespace schema = obs::schema;
  // Folded label: a churned fleet of 100k tenants shares the "other"
  // series instead of growing the registry per session.
  const obs::Labels l = obs->metrics.FoldTenant(
      obs::Labels::TenantSsd(static_cast<int32_t>(tenant_), pipeline_));
  obs::MetricsRegistry& reg = obs->metrics;
  m_submitted_ = &reg.GetCounter(schema::kInitiatorSubmitted, l);
  m_completed_ = &reg.GetCounter(schema::kClientCompleted, l);
  m_completed_bytes_ = &reg.GetCounter(schema::kClientCompletedBytes, l);
  m_failed_ = &reg.GetCounter(schema::kClientFailed, l);
  m_retries_ = &reg.GetCounter(schema::kInitiatorRetries, l);
  m_timeouts_ = &reg.GetCounter(schema::kInitiatorTimeouts, l);
  m_late_ = &reg.GetCounter(schema::kInitiatorLateCompletions, l);
}

}  // namespace gimbal::fabric
