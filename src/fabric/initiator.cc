#include "fabric/initiator.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "obs/schema.h"

namespace gimbal::fabric {

Initiator::Initiator(sim::Simulator& sim, Network& net, Target& target,
                     int pipeline, TenantId tenant, ThrottleMode mode,
                     baselines::PardaParams parda)
    : sim_(sim), net_(net), target_(target), pipeline_(pipeline),
      tenant_(tenant), mode_(mode), parda_(parda) {
  target_.Connect(pipeline_, tenant_, this);
}

bool Initiator::CanIssue() const {
  switch (mode_) {
    case ThrottleMode::kNone:
      return true;
    case ThrottleMode::kCredit:
      // Algorithm 3: submit while credit_tot > inflight.
      return credit_total_ > inflight_;
    case ThrottleMode::kParda:
      return parda_.CanIssue(inflight_);
  }
  return true;
}

void Initiator::Submit(IoType type, uint64_t offset, uint32_t length,
                       IoPriority prio, DoneFn done) {
  if (shutdown_) {
    if (done) {
      IoCompletion cpl;
      cpl.tenant = tenant_;
      cpl.type = type;
      cpl.length = length;
      cpl.ok = false;
      sim_.After(0, [done = std::move(done), cpl]() { done(cpl, 0); });
    }
    return;
  }
  if (length > kMaxTransferBytes) {
    // MDTS splitting: chain commands of at most the fabric's maximum
    // transfer size; the caller's completion fires when the last chunk
    // returns, reporting the aggregate length.
    auto remaining = std::make_shared<uint32_t>(
        (length + kMaxTransferBytes - 1) / kMaxTransferBytes);
    auto shared_done = std::make_shared<DoneFn>(std::move(done));
    uint32_t total = length;
    for (uint64_t off = offset; off < offset + length;
         off += kMaxTransferBytes) {
      uint32_t chunk = static_cast<uint32_t>(
          std::min<uint64_t>(kMaxTransferBytes, offset + length - off));
      Submit(type, off, chunk, prio,
             [remaining, shared_done, total](const IoCompletion& cpl,
                                             Tick e2e) {
               if (--*remaining > 0) return;
               if (*shared_done) {
                 IoCompletion agg = cpl;
                 agg.length = total;
                 (*shared_done)(agg, e2e);
               }
             });
    }
    return;
  }
  Pending p;
  p.req.id = next_id_++;
  p.req.tenant = tenant_;
  p.req.type = type;
  p.req.offset = offset;
  p.req.length = length;
  p.req.priority = prio;
  p.done = std::move(done);
  pending_.push_back(std::move(p));
  IssueLoop();
}

void Initiator::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  // Fail everything still queued locally.
  std::deque<Pending> pending = std::move(pending_);
  pending_.clear();
  for (auto& p : pending) {
    if (!p.done) continue;
    IoCompletion cpl;
    cpl.id = p.req.id;
    cpl.tenant = tenant_;
    cpl.type = p.req.type;
    cpl.length = p.req.length;
    cpl.ok = false;
    sim_.After(0, [done = std::move(p.done), cpl]() { done(cpl, 0); });
  }
  // The disconnect capsule trails any already-issued commands (the fabric
  // is FIFO per direction), so the target sees them first.
  net_.Send(Direction::kClientToTarget, kCapsuleBytes, [this]() {
    target_.OnDisconnectCapsule(pipeline_, tenant_);
  });
}

void Initiator::Trim(uint64_t offset, uint32_t length) {
  net_.Send(Direction::kClientToTarget, kCapsuleBytes,
            [this, offset, length]() {
              target_.OnTrimCapsule(pipeline_, offset, length);
            });
}

void Initiator::IssueLoop() {
  while (!pending_.empty() && CanIssue()) {
    Pending p = std::move(pending_.front());
    pending_.pop_front();
    p.req.client_submit = sim_.now();
    ++inflight_;
    IoRequest req = p.req;
    issued_.emplace(req.id, std::move(p));
    // Step (a): the command capsule crosses the fabric. Small writes
    // inline their payload into the capsule; larger writes move later via
    // the target's RDMA_READ.
    uint64_t capsule = kCapsuleBytes;
    if (req.type == IoType::kWrite && req.length <= kInlineWriteBytes) {
      capsule += req.length;
    }
    net_.Send(Direction::kClientToTarget, capsule, [this, req]() {
      target_.OnCommandCapsule(pipeline_, req);
    });
  }
}

void Initiator::OnFabricCompletion(const IoCompletion& cpl) {
  auto it = issued_.find(cpl.id);
  assert(it != issued_.end() && "completion for unknown IO");
  Pending p = std::move(it->second);
  issued_.erase(it);
  --inflight_;

  const Tick e2e = sim_.now() - p.req.client_submit;
  if (cpl.credit > 0) credit_total_ = cpl.credit;  // §3.6 credit update
  if (mode_ == ThrottleMode::kParda) parda_.OnCompletion(e2e, sim_.now());

  if (cpl.ok && m_completed_) {
    m_completed_->Add(1);
    m_completed_bytes_->Add(cpl.length);
  }
  if (p.done) p.done(cpl, e2e);
  IssueLoop();
}

void Initiator::AttachObservability(obs::Observability* obs) {
  if (!obs) {
    m_completed_ = nullptr;
    m_completed_bytes_ = nullptr;
    return;
  }
  const obs::Labels l =
      obs::Labels::TenantSsd(static_cast<int32_t>(tenant_), pipeline_);
  m_completed_ = &obs->metrics.GetCounter(obs::schema::kClientCompleted, l);
  m_completed_bytes_ =
      &obs->metrics.GetCounter(obs::schema::kClientCompletedBytes, l);
}

}  // namespace gimbal::fabric
