// Network is header-only; see network.h.
#include "fabric/network.h"
