#include "fabric/network.h"

#include <algorithm>
#include <cassert>

#include "check/invariants.h"
#include "core/params.h"

namespace gimbal::fabric {

void Network::ConfigureRack(std::vector<int> node_of, int num_nodes,
                            double uplink_bps) {
  assert(num_nodes > 0);
  assert(uplink_bps > 0);
  node_of_ = std::move(node_of);
  num_nodes_ = num_nodes;
  uplink_bps_ = uplink_bps;
  for (int d = 0; d < 2; ++d) {
    uplink_res_[d] = std::make_unique<sim::FifoResource>(sim_);
    node_res_[d].clear();
    for (int n = 0; n < num_nodes; ++n) {
      node_res_[d].push_back(std::make_unique<sim::FifoResource>(sim_));
    }
    node_busy_[d].assign(static_cast<size_t>(num_nodes), 0);
  }
  node_uplink_bytes_.assign(static_cast<size_t>(num_nodes), 0);
}

void Network::AddNodeOutage(int node, Tick fail_at, Tick recover_at) {
  assert(rack() && node >= 0 && node < num_nodes_);
  outages_.push_back(Outage{node, fail_at, recover_at});
}

bool Network::NodeDown(int node, Tick when) const {
  for (const Outage& o : outages_) {
    if (o.node == node && when >= o.fail_at &&
        (o.recover_at == 0 || when < o.recover_at)) {
      return true;
    }
  }
  return false;
}

void Network::AccountUplink(int node, uint64_t bytes) {
  uplink_bytes_total_ += bytes;
  uplink_busy_accum_ += TransferTime(bytes, uplink_bps_);
  if (!(GIMBAL_MUT(kUplinkLeak) && node == 0)) {
    node_uplink_bytes_[static_cast<size_t>(node)] += bytes;
  }
  if (chk_) {
    uint64_t sum = 0;
    for (uint64_t v : node_uplink_bytes_) sum += v;
    chk_->OnRackUplink(node, bytes, sum, uplink_bytes_total_);
  }
}

void Network::SendRackPlain(Direction dir, int node, uint64_t bytes,
                            Tick extra, sim::EventFn deliver) {
  if (NodeDown(node, sim_.now())) {
    ++node_drops_;
    return;
  }
  bytes_sent_ += bytes;
  AccountUplink(node, bytes);
  const Tick uplink_t = TransferTime(bytes, uplink_bps_);
  const Tick link_t = TransferTime(bytes, config_.bandwidth_bps);
  const int d = dir == Direction::kClientToTarget ? 0 : 1;
  sim::FifoResource& uplink = *uplink_res_[d];
  sim::FifoResource& link = *node_res_[d][static_cast<size_t>(node)];
  // Client-to-target crosses the ToR uplink first, then the node's access
  // link; target-to-client the reverse. The second stage runs inside the
  // first stage's completion, so the tandem keeps FIFO order per stage.
  auto chain = [](sim::FifoResource& first, Tick first_t,
                  sim::FifoResource* second, Tick second_t, Tick extra_t,
                  sim::EventFn done) {
    first.AcquireDeferred(
        first_t, 0,
        [second, second_t, extra_t, done = std::move(done)]() mutable {
          second->AcquireDeferred(second_t, extra_t, std::move(done));
        });
  };
  if (dir == Direction::kClientToTarget) {
    chain(uplink, uplink_t, &link, link_t, extra, std::move(deliver));
  } else {
    chain(link, link_t, &uplink, uplink_t, extra, std::move(deliver));
  }
}

void Network::BufferSend(Direction dir, int ssd, uint64_t bytes,
                         sim::EventFn deliver) {
  int src = sim::ShardedEngine::CurrentShard();
  Tick when;
  if (src < 0) {
    // Control context (e.g. a Shutdown() between runs): attribute to the
    // client shard at its current time.
    src = 0;
    when = client_sim_->now();
  } else {
    when = sim::ShardedEngine::CurrentSim()->now();
  }
  assert(ssd >= 0 && ssd < static_cast<int>(ssd_sims_.size()));
  sim::Simulator* dest = dir == Direction::kClientToTarget
                             ? ssd_sims_[static_cast<size_t>(ssd)]
                             : client_sim_;
  outbox_[static_cast<size_t>(src)].push_back(
      PendingSend{when, dir, node_of(ssd), bytes, dest, std::move(deliver)});
}

size_t Network::ReplayPending() {
  size_t total = 0;
  for (const auto& box : outbox_) total += box.size();
  if (total == 0) return 0;
  // Canonical order: (send time, source shard, per-shard issue order).
  // Each outbox is already time-sorted — a shard's clock is monotone within
  // an epoch — so concatenating in shard order and stable-sorting by time
  // alone yields exactly that order, independent of worker-thread count.
  std::vector<PendingSend> batch;
  batch.reserve(total);
  for (auto& box : outbox_) {
    for (PendingSend& p : box) batch.push_back(std::move(p));
    box.clear();
  }
  std::stable_sort(batch.begin(), batch.end(),
                   [](const PendingSend& a, const PendingSend& b) {
                     return a.when < b.when;
                   });
  size_t replayed = 0;
  for (PendingSend& p : batch) {
    Tick fault_delay = 0;
    if (faults_) {
      // Link-fault draws happen here, in canonical replay order on the
      // control thread, so the fault RNG stream is thread-count invariant.
      const fault::FaultInjector::LinkFault lf = faults_->OnLinkMessage(p.when);
      if (lf.drop) {
        ++messages_dropped_;
        continue;
      }
      fault_delay = lf.extra_delay;
    }
    if (rack()) {
      // Rack replay: fold into the shared uplink and the node's access
      // link, in traversal order, with per-stage FIFO frontiers that
      // persist across barriers — the replay equivalent of the plain
      // path's chained FifoResources.
      if (NodeDown(p.node, p.when)) {
        ++node_drops_;
        continue;
      }
      bytes_sent_ += p.bytes;
      AccountUplink(p.node, p.bytes);
      const int d = p.dir == Direction::kClientToTarget ? 0 : 1;
      const Tick uplink_t = TransferTime(p.bytes, uplink_bps_);
      const Tick link_t = TransferTime(p.bytes, config_.bandwidth_bps);
      Tick& uplink_busy = uplink_busy_[d];
      Tick& link_busy = node_busy_[d][static_cast<size_t>(p.node)];
      Tick finish;
      if (p.dir == Direction::kClientToTarget) {
        const Tick f1 = std::max(p.when, uplink_busy) + uplink_t;
        uplink_busy = f1;
        finish = std::max(f1, link_busy) + link_t;
        link_busy = finish;
      } else {
        const Tick f1 = std::max(p.when, link_busy) + link_t;
        link_busy = f1;
        finish = std::max(f1, uplink_busy) + uplink_t;
        uplink_busy = finish;
      }
      p.dest->At(finish + config_.base_latency + fault_delay,
                 std::move(p.deliver));
      ++replayed;
      continue;
    }
    bytes_sent_ += p.bytes;
    // Fold into the per-direction FIFO link — the replay equivalent of the
    // plain path's FifoResource::AcquireDeferred: serialize back-to-back
    // from the later of the send time and the link frontier, then the base
    // latency elapses off-link. The frontier persists across barriers.
    Tick& busy = busy_until_[p.dir == Direction::kClientToTarget ? 0 : 1];
    const Tick start = std::max(p.when, busy);
    const Tick finish = start + TransferTime(p.bytes, config_.bandwidth_bps);
    busy = finish;
    p.dest->At(finish + config_.base_latency + fault_delay,
               std::move(p.deliver));
    ++replayed;
  }
  return replayed;
}

}  // namespace gimbal::fabric
