#include "fabric/network.h"

#include <algorithm>
#include <cassert>

namespace gimbal::fabric {

void Network::BufferSend(Direction dir, int ssd, uint64_t bytes,
                         sim::EventFn deliver) {
  int src = sim::ShardedEngine::CurrentShard();
  Tick when;
  if (src < 0) {
    // Control context (e.g. a Shutdown() between runs): attribute to the
    // client shard at its current time.
    src = 0;
    when = client_sim_->now();
  } else {
    when = sim::ShardedEngine::CurrentSim()->now();
  }
  assert(ssd >= 0 && ssd < static_cast<int>(ssd_sims_.size()));
  sim::Simulator* dest = dir == Direction::kClientToTarget
                             ? ssd_sims_[static_cast<size_t>(ssd)]
                             : client_sim_;
  outbox_[static_cast<size_t>(src)].push_back(
      PendingSend{when, dir, bytes, dest, std::move(deliver)});
}

size_t Network::ReplayPending() {
  size_t total = 0;
  for (const auto& box : outbox_) total += box.size();
  if (total == 0) return 0;
  // Canonical order: (send time, source shard, per-shard issue order).
  // Each outbox is already time-sorted — a shard's clock is monotone within
  // an epoch — so concatenating in shard order and stable-sorting by time
  // alone yields exactly that order, independent of worker-thread count.
  std::vector<PendingSend> batch;
  batch.reserve(total);
  for (auto& box : outbox_) {
    for (PendingSend& p : box) batch.push_back(std::move(p));
    box.clear();
  }
  std::stable_sort(batch.begin(), batch.end(),
                   [](const PendingSend& a, const PendingSend& b) {
                     return a.when < b.when;
                   });
  size_t replayed = 0;
  for (PendingSend& p : batch) {
    Tick fault_delay = 0;
    if (faults_) {
      // Link-fault draws happen here, in canonical replay order on the
      // control thread, so the fault RNG stream is thread-count invariant.
      const fault::FaultInjector::LinkFault lf = faults_->OnLinkMessage(p.when);
      if (lf.drop) {
        ++messages_dropped_;
        continue;
      }
      fault_delay = lf.extra_delay;
    }
    bytes_sent_ += p.bytes;
    // Fold into the per-direction FIFO link — the replay equivalent of the
    // plain path's FifoResource::AcquireDeferred: serialize back-to-back
    // from the later of the send time and the link frontier, then the base
    // latency elapses off-link. The frontier persists across barriers.
    Tick& busy = busy_until_[p.dir == Direction::kClientToTarget ? 0 : 1];
    const Tick start = std::max(p.when, busy);
    const Tick finish = start + TransferTime(p.bytes, config_.bandwidth_bps);
    busy = finish;
    p.dest->At(finish + config_.base_latency + fault_delay,
               std::move(p.deliver));
    ++replayed;
  }
  return replayed;
}

}  // namespace gimbal::fabric
