#include "fabric/network.h"

#include <algorithm>
#include <cassert>

#include "check/invariants.h"
#include "core/params.h"

namespace gimbal::fabric {

void Network::ConfigureRack(std::vector<int> node_of, int num_nodes,
                            double uplink_bps) {
  assert(num_nodes > 0);
  assert(uplink_bps > 0);
  node_of_ = std::move(node_of);
  num_nodes_ = num_nodes;
  uplink_bps_ = uplink_bps;
  for (int d = 0; d < 2; ++d) {
    uplink_res_[d] = std::make_unique<sim::FifoResource>(sim_);
    node_res_[d].clear();
    for (int n = 0; n < num_nodes; ++n) {
      node_res_[d].push_back(std::make_unique<sim::FifoResource>(sim_));
    }
    node_busy_[d].assign(static_cast<size_t>(num_nodes), 0);
  }
  node_uplink_bytes_.assign(static_cast<size_t>(num_nodes), 0);
}

void Network::AddNodeOutage(int node, Tick fail_at, Tick recover_at) {
  assert(rack() && node >= 0 && node < num_nodes_);
  outages_.push_back(Outage{node, fail_at, recover_at});
}

bool Network::NodeDown(int node, Tick when) const {
  for (const Outage& o : outages_) {
    if (o.node == node && when >= o.fail_at &&
        (o.recover_at == 0 || when < o.recover_at)) {
      return true;
    }
  }
  return false;
}

void Network::AccountUplink(int node, uint64_t bytes) {
  uplink_bytes_total_ += bytes;
  uplink_busy_accum_ += TransferTime(bytes, uplink_bps_);
  if (!(GIMBAL_MUT(kUplinkLeak) && node == 0)) {
    node_uplink_bytes_[static_cast<size_t>(node)] += bytes;
  }
  if (chk_) {
    uint64_t sum = 0;
    for (uint64_t v : node_uplink_bytes_) sum += v;
    chk_->OnRackUplink(node, bytes, sum, uplink_bytes_total_);
  }
}

void Network::SendRackPlain(Direction dir, int node, uint64_t bytes,
                            Tick extra, sim::EventFn deliver) {
  if (NodeDown(node, sim_.now())) {
    ++node_drops_;
    return;
  }
  bytes_sent_ += bytes;
  AccountUplink(node, bytes);
  const Tick uplink_t = TransferTime(bytes, uplink_bps_);
  const Tick link_t = TransferTime(bytes, config_.bandwidth_bps);
  const int d = dir == Direction::kClientToTarget ? 0 : 1;
  sim::FifoResource& uplink = *uplink_res_[d];
  sim::FifoResource& link = *node_res_[d][static_cast<size_t>(node)];
  // Client-to-target crosses the ToR uplink first, then the node's access
  // link; target-to-client the reverse. The second stage runs inside the
  // first stage's completion, so the tandem keeps FIFO order per stage.
  auto chain = [](sim::FifoResource& first, Tick first_t,
                  sim::FifoResource* second, Tick second_t, Tick extra_t,
                  sim::EventFn done) {
    first.AcquireDeferred(
        first_t, 0,
        [second, second_t, extra_t, done = std::move(done)]() mutable {
          second->AcquireDeferred(second_t, extra_t, std::move(done));
        });
  };
  if (dir == Direction::kClientToTarget) {
    chain(uplink, uplink_t, &link, link_t, extra, std::move(deliver));
  } else {
    chain(link, link_t, &uplink, uplink_t, extra, std::move(deliver));
  }
}

void Network::BufferSend(Direction dir, int ssd, uint64_t bytes,
                         sim::EventFn deliver) {
  int src = sim::ShardedEngine::CurrentShard();
  Tick when;
  if (src < 0) {
    // Control context (e.g. a Shutdown() between runs): attribute to the
    // client shard at its current time.
    src = 0;
    when = client_sim_->now();
  } else {
    when = sim::ShardedEngine::CurrentSim()->now();
  }
  assert(ssd >= 0 && ssd < static_cast<int>(ssd_sims_.size()));
  sim::Simulator* dest = dir == Direction::kClientToTarget
                             ? ssd_sims_[static_cast<size_t>(ssd)]
                             : client_sim_;
  outbox_[static_cast<size_t>(src)].push_back(
      PendingSend{when, dir, node_of(ssd), bytes, dest, std::move(deliver)});
  ++pending_count_;
}

size_t Network::ReplayPending() {
  // Canonical order: (send time, source shard, per-shard issue order).
  // Each outbox is already time-sorted — a shard's clock is monotone
  // within an epoch — so an in-place k-way merge over the outboxes with a
  // lowest-source-index tie break visits exactly that order without
  // materializing or sorting a combined batch (the old path moved every
  // ~120-byte closure twice and stable_sorted them each barrier).
  int nonempty = 0;
  std::vector<PendingSend>* only = nullptr;
  for (auto& box : outbox_) {
    if (!box.empty()) {
      ++nonempty;
      only = &box;
    }
  }
  if (nonempty == 0) return 0;

  // Link frontiers live in locals for the whole batch; written back below.
  Tick busy[2] = {busy_until_[0], busy_until_[1]};
  Tick up_busy[2] = {uplink_busy_[0], uplink_busy_[1]};
  if (rack() && uplink_delta_.size() != node_uplink_bytes_.size()) {
    uplink_delta_.assign(node_uplink_bytes_.size(), 0);
  }
  touched_nodes_.clear();

  size_t replayed = 0;
  auto replay_one = [&](PendingSend& p) {
    Tick fault_delay = 0;
    if (faults_) {
      // Link-fault draws happen here, in canonical replay order on the
      // control thread, so the fault RNG stream is thread-count invariant.
      const fault::FaultInjector::LinkFault lf = faults_->OnLinkMessage(p.when);
      if (lf.drop) {
        ++messages_dropped_;
        return;
      }
      fault_delay = lf.extra_delay;
    }
    const int d = p.dir == Direction::kClientToTarget ? 0 : 1;
    if (rack()) {
      // Rack replay: fold into the shared uplink and the node's access
      // link, in traversal order, with per-stage FIFO frontiers that
      // persist across barriers — the replay equivalent of the plain
      // path's chained FifoResources. Byte accounting accumulates into
      // the per-batch delta applied after the loop.
      if (NodeDown(p.node, p.when)) {
        ++node_drops_;
        return;
      }
      bytes_sent_ += p.bytes;
      uplink_bytes_total_ += p.bytes;
      uplink_busy_accum_ += TransferTime(p.bytes, uplink_bps_);
      if (std::find(touched_nodes_.begin(), touched_nodes_.end(), p.node) ==
          touched_nodes_.end()) {
        touched_nodes_.push_back(p.node);
      }
      if (!(GIMBAL_MUT(kUplinkLeak) && p.node == 0)) {
        uplink_delta_[static_cast<size_t>(p.node)] += p.bytes;
      }
      const Tick uplink_t = TransferTime(p.bytes, uplink_bps_);
      const Tick link_t = TransferTime(p.bytes, config_.bandwidth_bps);
      Tick& uplink_busy = up_busy[d];
      Tick& link_busy = node_busy_[d][static_cast<size_t>(p.node)];
      Tick finish;
      if (p.dir == Direction::kClientToTarget) {
        const Tick f1 = std::max(p.when, uplink_busy) + uplink_t;
        uplink_busy = f1;
        finish = std::max(f1, link_busy) + link_t;
        link_busy = finish;
      } else {
        const Tick f1 = std::max(p.when, link_busy) + link_t;
        link_busy = f1;
        finish = std::max(f1, uplink_busy) + uplink_t;
        uplink_busy = finish;
      }
      p.dest->At(finish + config_.base_latency + fault_delay,
                 std::move(p.deliver));
      ++replayed;
      return;
    }
    bytes_sent_ += p.bytes;
    // Fold into the per-direction FIFO link — the replay equivalent of the
    // plain path's FifoResource::AcquireDeferred: serialize back-to-back
    // from the later of the send time and the link frontier, then the base
    // latency elapses off-link. The frontier persists across barriers.
    const Tick start = std::max(p.when, busy[d]);
    const Tick finish = start + TransferTime(p.bytes, config_.bandwidth_bps);
    busy[d] = finish;
    p.dest->At(finish + config_.base_latency + fault_delay,
               std::move(p.deliver));
    ++replayed;
  };

  if (nonempty == 1) {
    // Common case: a coarsened epoch ends with one shard's sends buffered.
    for (PendingSend& p : *only) replay_one(p);
    only->clear();
  } else {
    // K-way merge; k is the shard count, so a linear scan per pop beats a
    // heap for the handful of sources a testbed has. Strict `<` with an
    // ascending source scan gives the lowest source index on time ties.
    std::vector<size_t> cur(outbox_.size(), 0);
    for (;;) {
      int best = -1;
      Tick best_when = 0;
      for (size_t s = 0; s < outbox_.size(); ++s) {
        if (cur[s] >= outbox_[s].size()) continue;
        const Tick w = outbox_[s][cur[s]].when;
        if (best < 0 || w < best_when) {
          best = static_cast<int>(s);
          best_when = w;
        }
      }
      if (best < 0) break;
      replay_one(outbox_[static_cast<size_t>(best)][cur[static_cast<size_t>(
          best)]++]);
    }
    for (auto& box : outbox_) box.clear();
  }

  busy_until_[0] = busy[0];
  busy_until_[1] = busy[1];
  uplink_busy_[0] = up_busy[0];
  uplink_busy_[1] = up_busy[1];
  if (!touched_nodes_.empty()) {
    // Apply the batch's per-node deltas, then run the conservation check
    // once per touched node against the post-batch totals — the same
    // violation the per-message check would have raised (a leaked byte
    // leaves the sums unequal forever), at a fraction of the cost.
    for (int n : touched_nodes_) {
      node_uplink_bytes_[static_cast<size_t>(n)] +=
          uplink_delta_[static_cast<size_t>(n)];
    }
    if (chk_) {
      uint64_t sum = 0;
      for (uint64_t v : node_uplink_bytes_) sum += v;
      for (int n : touched_nodes_) {
        chk_->OnRackUplink(n, uplink_delta_[static_cast<size_t>(n)], sum,
                           uplink_bytes_total_);
      }
    }
    for (int n : touched_nodes_) uplink_delta_[static_cast<size_t>(n)] = 0;
  }
  pending_count_ = 0;
  return replayed;
}

}  // namespace gimbal::fabric
