// NVMe-oF initiator: the client side of one tenant's connection to one
// remote SSD pipeline.
//
// Owns the client half of the end-to-end flow control (§3.6, Algorithm 3):
// IOs queue locally and are issued only while the throttle allows —
//   kNone   : no client-side limit (ReFlex / FlashFQ / vanilla setups),
//   kCredit : outstanding < the credit piggybacked on completions (Gimbal),
//   kParda  : outstanding < the PARDA latency-driven window.
// The queue-then-issue behaviour is exactly the "IO rate limiter" the
// RocksDB case study gets for free (§4.3).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "baselines/parda_policy.h"
#include "fabric/network.h"
#include "fabric/target.h"
#include "nvme/types.h"
#include "obs/obs.h"

namespace gimbal::fabric {

enum class ThrottleMode { kNone, kCredit, kParda };

class Initiator : public CompletionSink {
 public:
  // Completion callback: the completion plus client-observed end-to-end
  // latency.
  using DoneFn = std::function<void(const IoCompletion&, Tick e2e_latency)>;

  Initiator(sim::Simulator& sim, Network& net, Target& target, int pipeline,
            TenantId tenant, ThrottleMode mode = ThrottleMode::kNone,
            baselines::PardaParams parda = {});

  // Queue an IO for issue; `done` fires when its completion returns.
  void Submit(IoType type, uint64_t offset, uint32_t length, IoPriority prio,
              DoneFn done);

  // NVMe deallocate (TRIM) for a page-aligned range. Control-plane:
  // bypasses the credit throttle and data-path scheduling.
  void Trim(uint64_t offset, uint32_t length);

  // Graceful teardown: locally-queued IOs fail immediately (ok=false);
  // issued IOs either complete normally or come back failed from the
  // target's queues; a disconnect capsule tells the target to reap the
  // tenant. No new Submits are accepted afterwards.
  void Shutdown();
  bool shutdown() const { return shutdown_; }

  // Algorithm 3's device-busy signal, observable by applications.
  bool DeviceBusy() const { return !CanIssue(); }

  uint32_t inflight() const { return inflight_; }
  uint32_t queued() const { return static_cast<uint32_t>(pending_.size()); }
  // Client-visible credit total (the §3.7 virtual-view load signal the KV
  // load balancer uses: more credits = less loaded SSD).
  uint32_t credits() const { return credit_total_; }
  double parda_window() const { return parda_.window(); }
  TenantId tenant() const { return tenant_; }
  int pipeline() const { return pipeline_; }

  void OnFabricCompletion(const IoCompletion& cpl) override;

  // Attach metrics sinks. Client-side completion counters tick at the same
  // event as the fio worker stats, so metric totals and stdout agree
  // exactly regardless of IOs in flight at window edges.
  void AttachObservability(obs::Observability* obs);

 private:
  struct Pending {
    IoRequest req;
    DoneFn done;
  };

  bool CanIssue() const;
  void IssueLoop();

  sim::Simulator& sim_;
  Network& net_;
  Target& target_;
  int pipeline_;
  TenantId tenant_;
  ThrottleMode mode_;
  baselines::PardaWindow parda_;

  std::deque<Pending> pending_;
  std::unordered_map<uint64_t, Pending> issued_;
  uint64_t next_id_ = 1;
  uint32_t inflight_ = 0;
  uint32_t credit_total_ = 8;  // optimistic initial grant, refined by cpl
  bool shutdown_ = false;

  // Observability (null = not observed).
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_completed_bytes_ = nullptr;
};

}  // namespace gimbal::fabric
