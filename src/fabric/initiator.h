// NVMe-oF initiator: the client side of one tenant's connection to one
// remote SSD pipeline.
//
// Owns the client half of the end-to-end flow control (§3.6, Algorithm 3):
// IOs queue locally and are issued only while the throttle allows —
//   kNone   : no client-side limit (ReFlex / FlashFQ / vanilla setups),
//   kCredit : outstanding < the credit piggybacked on completions (Gimbal),
//   kParda  : outstanding < the PARDA latency-driven window.
// The queue-then-issue behaviour is exactly the "IO rate limiter" the
// RocksDB case study gets for free (§4.3).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "baselines/parda_policy.h"
#include "check/invariants.h"
#include "fabric/network.h"
#include "fabric/target.h"
#include "nvme/types.h"
#include "obs/obs.h"

namespace gimbal::fabric {

enum class ThrottleMode { kNone, kCredit, kParda };

// Client-side fault tolerance knobs (docs/FAULTS.md). Defaults keep every
// mechanism off so fault-free experiments are event-for-event unchanged:
// no timers are armed and the event queue still drains to idle.
struct RetryParams {
  // Give up on an issued command this long after (re)transmission and
  // retry it. 0 disables timeouts (and with them retries).
  Tick io_timeout = 0;
  // Retransmissions allowed per command before failing it status=timeout.
  int max_retries = 3;
  // Retry n backs off min(backoff_base * 2^(n-1), backoff_cap) before
  // retransmitting.
  Tick backoff_base = Microseconds(50);
  Tick backoff_cap = Milliseconds(5);
  // Heartbeat capsule period for the target's crash reaper. 0 = none.
  Tick keepalive_interval = 0;
};

// Backoff before retry `n` (1-based): bounded exponential.
inline Tick BackoffFor(const RetryParams& p, int n) {
  Tick b = p.backoff_base;
  for (int i = 1; i < n && b < p.backoff_cap; ++i) b *= 2;
  return b < p.backoff_cap ? b : p.backoff_cap;
}

// How the initiator registers its completion sink with the target.
// kDirect pokes the session table immediately — fine at setup time, racy
// for mid-run churn under the sharded engine. kCapsule sends a connect
// capsule over the fabric so registration happens on the pipeline's shard
// in FIFO order with the commands that follow (the open-loop fleet's
// session churn uses this).
enum class ConnectMode { kDirect, kCapsule };

class Initiator : public CompletionSink {
 public:
  // Completion callback: the completion plus client-observed end-to-end
  // latency.
  using DoneFn = std::function<void(const IoCompletion&, Tick e2e_latency)>;

  Initiator(sim::Simulator& sim, Network& net, Target& target, int pipeline,
            TenantId tenant, ThrottleMode mode = ThrottleMode::kNone,
            baselines::PardaParams parda = {}, RetryParams retry = {},
            ConnectMode connect = ConnectMode::kDirect);

  // Queue an IO for issue; `done` fires when its completion returns.
  void Submit(IoType type, uint64_t offset, uint32_t length, IoPriority prio,
              DoneFn done);

  // NVMe deallocate (TRIM) for a page-aligned range. Control-plane:
  // bypasses the credit throttle and data-path scheduling.
  void Trim(uint64_t offset, uint32_t length);

  // Graceful teardown: locally-queued IOs fail immediately
  // (status=aborted); issued IOs either complete normally or come back
  // failed from the target's queues; a disconnect capsule tells the target
  // to reap the tenant. No new Submits are accepted afterwards.
  void Shutdown();
  bool shutdown() const { return shutdown_; }

  // Abrupt death (docs/FAULTS.md): like Shutdown but nothing crosses the
  // fabric — no disconnect capsule, no more keepalives. Issued IOs fail
  // locally (status=aborted); their completions, if any still arrive, are
  // counted as late and dropped. The target only learns of the death via
  // its keepalive session timeout.
  void Crash();
  bool crashed() const { return crashed_; }

  uint64_t retries() const { return retries_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t late_completions() const { return late_completions_; }
  const RetryParams& retry_params() const { return retry_; }

  // Algorithm 3's device-busy signal, observable by applications.
  bool DeviceBusy() const { return !CanIssue(); }

  uint32_t inflight() const { return inflight_; }
  uint32_t queued() const { return static_cast<uint32_t>(pending_.size()); }
  // Control capsules (connect/keepalive/disconnect/trim) sent but not yet
  // delivered. Their network callbacks capture `this`, so an initiator
  // must not be destroyed while any is pending — the open-loop fleet's
  // graveyard sweep waits for zero here as well as zero inflight/queued.
  uint32_t control_inflight() const { return control_inflight_; }
  // Client-visible credit total (the §3.7 virtual-view load signal the KV
  // load balancer uses: more credits = less loaded SSD).
  uint32_t credits() const { return credit_total_; }
  double parda_window() const { return parda_.window(); }
  TenantId tenant() const { return tenant_; }
  int pipeline() const { return pipeline_; }

  void OnFabricCompletion(const IoCompletion& cpl) override;

  // Attach metrics sinks. Client-side completion counters tick at the same
  // event as the fio worker stats, so metric totals and stdout agree
  // exactly regardless of IOs in flight at window edges.
  void AttachObservability(obs::Observability* obs);

  // Attach the invariant checker: admit/issue/terminal conservation and
  // the §3.6 credit law are checked at every transition (docs/TESTING.md).
  void AttachChecker(check::InvariantChecker* chk) { chk_ = chk; }

 private:
  struct Pending {
    IoRequest req;
    DoneFn done;
    // Transmissions so far (1 = original). Timeout/backoff timers carry
    // the attempt they were armed for and no-op on mismatch (the handle
    // below makes stale firings rare, not impossible — the guard stays).
    int attempts = 0;
    // The IO's one armed timer: the timeout while a transmission is
    // outstanding, the backoff while a retry waits. Cancelled when the IO
    // reaches a terminal status, so completed IOs leave nothing behind in
    // the event queue.
    sim::TimerHandle timer;
  };

  bool CanIssue() const;
  void IssueLoop();
  void SendCommand(const IoRequest& req);
  void ArmTimeout(uint64_t id, int attempt);
  void OnTimeout(uint64_t id, int attempt);
  void KeepaliveTick();
  // `was_issued` tells the checker whether the IO ever left the local
  // queue (its in-flight ledger only covers issued IOs).
  void FailLocally(Pending p, IoStatus status, bool was_issued);

  sim::Simulator& sim_;
  Network& net_;
  Target& target_;
  int pipeline_;
  TenantId tenant_;
  ThrottleMode mode_;
  baselines::PardaWindow parda_;
  RetryParams retry_;

  std::deque<Pending> pending_;
  std::unordered_map<uint64_t, Pending> issued_;
  // The armed heartbeat; cancelled by Shutdown()/Crash() so a dead client
  // stops ticking immediately instead of leaving a timer to fire inert.
  sim::TimerHandle keepalive_timer_;
  uint64_t next_id_ = 1;
  uint32_t inflight_ = 0;
  uint32_t control_inflight_ = 0;
  uint32_t credit_total_ = 8;  // optimistic initial grant, refined by cpl
  bool shutdown_ = false;
  bool crashed_ = false;
  uint64_t retries_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t late_completions_ = 0;

  // Observability (null = not observed).
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_completed_bytes_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_timeouts_ = nullptr;
  obs::Counter* m_late_ = nullptr;
  obs::Observability* obs_ = nullptr;
  check::InvariantChecker* chk_ = nullptr;
};

}  // namespace gimbal::fabric
