// NVMe-oF target node: the (SmartNIC or server) JBOF brain.
//
// Shared-nothing pipelines as in §4.1: each SSD gets a pipeline bound to a
// CPU core (cores are FifoResources — wimpy SmartNIC cores are simply
// slower per operation). The target implements the five-step NVMe-oF
// request flow of §2.1:
//   (a) command capsule arrives from the initiator,
//   (b) submission processing on the pipeline's core (+ RDMA_READ of the
//       payload for writes),
//   (c) the per-SSD IoPolicy decides when the SSD executes it,
//   (d) for reads, RDMA_WRITE of the data back to the client,
//   (e) completion capsule (carrying Gimbal's piggybacked credit, §3.6).
//
// Under the sharded engine (docs/SIMULATOR.md) each core — and so each
// pipeline — lives on its own shard: ConfigureShards() rebuilds the core
// FifoResources on the shard simulators, and every pipeline-side path
// (admission, staging, reaping, completion) runs on and reads the clock of
// its pipeline's shard. All mutable per-pipeline state (stats, session
// table, reaper timer, counter caches) is therefore single-writer; the
// aggregate accessors (stats(), session_count(), sessions_reaped()) fold
// by value and are meant for control context, between runs.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <vector>

#include "common/index_arena.h"
#include "core/io_policy.h"
#include "fabric/network.h"
#include "nvme/types.h"
#include "obs/obs.h"
#include "sim/resource.h"

namespace gimbal::fabric {

struct TargetConfig {
  int cores = 4;
  // Per-IO CPU occupancy of the NVMe-oF stack on this node's cores.
  // SmartNIC (ARM A72) defaults; ServerLike() models the Xeon case.
  Tick submit_cost = Nanoseconds(900);
  Tick complete_cost = Nanoseconds(600);
  // Extra per-IO processing injected on the submission path (the Fig 16
  // "added per-IO processing cost" knob; also how offloads are modelled).
  Tick added_cost = 0;
  // Data staging latency through the node's memory (store-and-forward),
  // per byte; adds latency but does not occupy a core. This is what makes
  // large-IO latency diverge between SmartNIC and server (Fig 2).
  double staging_ns_per_byte = 0.35;
  // Keepalive-based crash detection (docs/FAULTS.md): sessions that send
  // neither a command nor a keepalive capsule for this long are reaped as
  // crashed — their queued IOs fail back and their scheduler state is
  // reclaimed, exactly as on a graceful disconnect. 0 disables tracking
  // (the default: a reaper timer would keep the event queue alive, so
  // existing Run()-to-idle experiments stay untouched).
  Tick session_timeout = 0;

  static TargetConfig SmartNicLike() { return TargetConfig{}; }
  static TargetConfig ServerLike() {
    TargetConfig c;
    c.submit_cost = Nanoseconds(600);
    c.complete_cost = Nanoseconds(400);
    c.staging_ns_per_byte = 0.04;
    return c;
  }
};

// Where completions are delivered on the client side.
class CompletionSink {
 public:
  virtual ~CompletionSink() = default;
  virtual void OnFabricCompletion(const IoCompletion& cpl) = 0;
};

class Target {
 public:
  Target(sim::Simulator& sim, Network& net, TargetConfig config = {});

  // Sharded mode: rebuild core c's FifoResource on core_sims[c] so each
  // pipeline executes on its shard. Must be called before any AddPipeline
  // (pipelines capture their core's simulator); size must equal
  // config.cores. Entries for cores the testbed leaves unused may point at
  // the client simulator.
  void ConfigureShards(const std::vector<sim::Simulator*>& core_sims);

  // Rack topology (docs/SIMULATOR.md): pipeline ids handed out by
  // AddPipeline — and accepted by every capsule entry point — start at
  // `base`. A multi-node testbed gives node n's target base = first global
  // SSD index on that node, so initiators address pipelines by global id
  // no matter which node owns them. Must precede AddPipeline.
  void SetPipelineBase(int base) {
    assert(pipelines_.empty() && "SetPipelineBase must precede AddPipeline");
    base_ = base;
  }
  int pipeline_base() const { return base_; }

  // Attach an SSD pipeline driven by `policy`; returns the pipeline id.
  // The policy must already be bound to its block device. `obs` overrides
  // the target-wide observability for this pipeline (the sharded testbed
  // passes the pipeline's shard-private instance); null inherits.
  int AddPipeline(std::unique_ptr<core::IoPolicy> policy,
                  obs::Observability* obs = nullptr);

  // Register the client-side sink for a tenant's completions on a pipeline.
  // Direct variant: mutates the session table immediately (setup-time use;
  // under sharding it is only safe before Run()).
  void Connect(int pipeline, TenantId tenant, CompletionSink* sink);

  // Capsule variant: runs after the connect capsule's network trip, i.e.
  // on the pipeline's shard, so mid-run connects (session churn) are safe
  // under the sharded engine. Charges one submit_cost of admin processing.
  void OnConnectCapsule(int pipeline, TenantId tenant, CompletionSink* sink);

  // Entry point used by initiators (called after the capsule's network
  // trip, so under sharding it already runs on the pipeline's shard):
  // step (b) onward.
  void OnCommandCapsule(int pipeline, IoRequest req);

  // Dataset Management (TRIM) capsule: cheap control-plane processing,
  // straight to the policy/device.
  void OnTrimCapsule(int pipeline, uint64_t offset, uint32_t length);

  // Tenant teardown: the policy fails its queued IOs back through the
  // completion path (so the sink stays registered — a reconnect simply
  // replaces it) and reaps the tenant once inflight IOs drain.
  void OnDisconnectCapsule(int pipeline, TenantId tenant);

  // NVMe-oF keepalive: refreshes the session's liveness timestamp. Only
  // meaningful with config.session_timeout > 0.
  void OnKeepaliveCapsule(int pipeline, TenantId tenant);

  // Sessions currently tracked by the crash reaper (0 when disabled).
  int session_count() const;
  uint64_t sessions_reaped() const;

  // Session-table occupancy across all pipelines. Unlike session_count()
  // this also counts sessions the crash reaper is not tracking; after a
  // full churn cycle (every tenant disconnected and drained) it must
  // return to the number of still-connected setup-time sessions — the
  // churn property test asserts it reaches zero on a fleet-only testbed.
  size_t live_sessions() const;
  // Completions whose session had already been torn down (e.g. a command
  // capsule delayed by a link fault past its tenant's disconnect); dropped
  // at the target rather than delivered to a dangling sink.
  uint64_t completions_orphaned() const;

  // Attach metrics/trace sinks; propagated to every pipeline's policy
  // (existing and future) that has no per-pipeline override, which
  // forwards to its device-facing components. Pipeline index doubles as
  // the `ssd` label. Pass nullptr to detach.
  void AttachObservability(obs::Observability* obs);

  // Attach the invariant checker; propagated like AttachObservability.
  void AttachChecker(check::InvariantChecker* chk);

  core::IoPolicy& policy(int pipeline) { return *Pipe(pipeline).policy; }
  int pipeline_count() const { return static_cast<int>(pipelines_.size()); }
  const TargetConfig& config() const { return config_; }

  struct TargetStats {
    uint64_t ios = 0;
    uint64_t bytes = 0;
  };
  TargetStats stats() const;

 private:
  // One tenant's connection state on one pipeline. Everything that used to
  // live in three parallel per-tenant maps (sinks / last_seen / admit
  // counter caches) now shares an arena slot, recycled across churn.
  struct Session {
    explicit Session(TenantId t) : tenant(t) {}
    void Reset(TenantId t) { *this = Session(t); }

    TenantId tenant = 0;
    CompletionSink* sink = nullptr;
    Tick last_seen = 0;
    bool tracked = false;  // counted/scanned by the crash reaper
    // Disconnect (graceful or reaped) seen: the slot is freed once the
    // last admitted command's completion has been processed. FIFO fabric
    // order guarantees no command capsule trails the disconnect capsule,
    // so no new IOs can land on a parting session.
    bool parting = false;
    // Command capsules admitted minus completions processed. A payload
    // fetch eaten by a link fault leaves this stuck >0 and the slot merely
    // leaks (as the old sink map did for every session); it never frees
    // under a pending delivery.
    uint32_t outstanding = 0;
    // Per-tenant admit counter handles, resolved lazily (see target.cc).
    obs::Counter* admit_ios = nullptr;
    obs::Counter* admit_bytes = nullptr;
  };

  struct Pipeline {
    std::unique_ptr<core::IoPolicy> policy;
    int id = 0;
    int core = 0;
    // The shard this pipeline executes on (== the target's simulator in
    // plain mode) and the observability it records into.
    sim::Simulator* sim = nullptr;
    obs::Observability* obs_override = nullptr;
    TargetStats stats;
    common::SlabArena<Session> sessions;
    common::IdIndexMap session_index;  // tenant -> arena slot
    int tracked_sessions = 0;          // sessions with tracked == true
    uint64_t sessions_reaped = 0;
    uint64_t completions_orphaned = 0;
    // This pipeline's armed reaper scan; not re-armed when no session
    // remains tracked, so Run()-to-idle experiments still drain.
    sim::TimerHandle reaper_timer;
  };

  // Resolve a global pipeline id to this target's local slot.
  Pipeline& Pipe(int pipeline) {
    return *pipelines_[static_cast<size_t>(pipeline - base_)];
  }
  sim::FifoResource& CoreOf(const Pipeline& p) { return *cores_[p.core]; }
  obs::Observability* ObsOf(const Pipeline& p) const {
    return p.obs_override ? p.obs_override : obs_;
  }
  // Session-table plumbing. Deferred callbacks must re-resolve by tenant
  // id (not hold a Session*): a freed slot can be recycled for another
  // tenant while the callback waits its turn on the core.
  Session& SessionFor(Pipeline& p, TenantId tenant);
  Session* FindSession(Pipeline& p, TenantId tenant);
  void Untrack(Pipeline& p, Session& s) {
    if (s.tracked) {
      s.tracked = false;
      --p.tracked_sessions;
    }
  }
  // Free the slot once a parting (or sink-less ghost) session has no
  // outstanding commands left.
  void FreeSessionIfDrained(Pipeline& p, TenantId tenant);
  void DeliverToPolicy(Pipeline& p, const IoRequest& req);
  void FinishCompletion(Pipeline& p, const IoRequest& req, IoCompletion cpl);
  void TouchSession(int pipeline, TenantId tenant);
  void ReapStaleSessions(Pipeline& p);
  Tick StagingDelay(uint32_t bytes) const {
    return static_cast<Tick>(config_.staging_ns_per_byte *
                             static_cast<double>(bytes));
  }

  sim::Simulator& sim_;
  Network& net_;
  TargetConfig config_;
  std::vector<std::unique_ptr<sim::FifoResource>> cores_;
  std::vector<sim::Simulator*> core_sims_;  // parallel to cores_
  std::vector<std::unique_ptr<Pipeline>> pipelines_;
  int base_ = 0;  // global id of this target's first pipeline
  obs::Observability* obs_ = nullptr;  // null = not observed
  check::InvariantChecker* chk_ = nullptr;
};

}  // namespace gimbal::fabric
