// NVMe-oF target node: the (SmartNIC or server) JBOF brain.
//
// Shared-nothing pipelines as in §4.1: each SSD gets a pipeline bound to a
// CPU core (cores are FifoResources — wimpy SmartNIC cores are simply
// slower per operation). The target implements the five-step NVMe-oF
// request flow of §2.1:
//   (a) command capsule arrives from the initiator,
//   (b) submission processing on the pipeline's core (+ RDMA_READ of the
//       payload for writes),
//   (c) the per-SSD IoPolicy decides when the SSD executes it,
//   (d) for reads, RDMA_WRITE of the data back to the client,
//   (e) completion capsule (carrying Gimbal's piggybacked credit, §3.6).
//
// Under the sharded engine (docs/SIMULATOR.md) each core — and so each
// pipeline — lives on its own shard: ConfigureShards() rebuilds the core
// FifoResources on the shard simulators, and every pipeline-side path
// (admission, staging, reaping, completion) runs on and reads the clock of
// its pipeline's shard. All mutable per-pipeline state (stats, session
// table, reaper timer, counter caches) is therefore single-writer; the
// aggregate accessors (stats(), session_count(), sessions_reaped()) fold
// by value and are meant for control context, between runs.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/io_policy.h"
#include "fabric/network.h"
#include "nvme/types.h"
#include "obs/obs.h"
#include "sim/resource.h"

namespace gimbal::fabric {

struct TargetConfig {
  int cores = 4;
  // Per-IO CPU occupancy of the NVMe-oF stack on this node's cores.
  // SmartNIC (ARM A72) defaults; ServerLike() models the Xeon case.
  Tick submit_cost = Nanoseconds(900);
  Tick complete_cost = Nanoseconds(600);
  // Extra per-IO processing injected on the submission path (the Fig 16
  // "added per-IO processing cost" knob; also how offloads are modelled).
  Tick added_cost = 0;
  // Data staging latency through the node's memory (store-and-forward),
  // per byte; adds latency but does not occupy a core. This is what makes
  // large-IO latency diverge between SmartNIC and server (Fig 2).
  double staging_ns_per_byte = 0.35;
  // Keepalive-based crash detection (docs/FAULTS.md): sessions that send
  // neither a command nor a keepalive capsule for this long are reaped as
  // crashed — their queued IOs fail back and their scheduler state is
  // reclaimed, exactly as on a graceful disconnect. 0 disables tracking
  // (the default: a reaper timer would keep the event queue alive, so
  // existing Run()-to-idle experiments stay untouched).
  Tick session_timeout = 0;

  static TargetConfig SmartNicLike() { return TargetConfig{}; }
  static TargetConfig ServerLike() {
    TargetConfig c;
    c.submit_cost = Nanoseconds(600);
    c.complete_cost = Nanoseconds(400);
    c.staging_ns_per_byte = 0.04;
    return c;
  }
};

// Where completions are delivered on the client side.
class CompletionSink {
 public:
  virtual ~CompletionSink() = default;
  virtual void OnFabricCompletion(const IoCompletion& cpl) = 0;
};

class Target {
 public:
  Target(sim::Simulator& sim, Network& net, TargetConfig config = {});

  // Sharded mode: rebuild core c's FifoResource on core_sims[c] so each
  // pipeline executes on its shard. Must be called before any AddPipeline
  // (pipelines capture their core's simulator); size must equal
  // config.cores. Entries for cores the testbed leaves unused may point at
  // the client simulator.
  void ConfigureShards(const std::vector<sim::Simulator*>& core_sims);

  // Attach an SSD pipeline driven by `policy`; returns the pipeline id.
  // The policy must already be bound to its block device. `obs` overrides
  // the target-wide observability for this pipeline (the sharded testbed
  // passes the pipeline's shard-private instance); null inherits.
  int AddPipeline(std::unique_ptr<core::IoPolicy> policy,
                  obs::Observability* obs = nullptr);

  // Register the client-side sink for a tenant's completions on a pipeline.
  void Connect(int pipeline, TenantId tenant, CompletionSink* sink);

  // Entry point used by initiators (called after the capsule's network
  // trip, so under sharding it already runs on the pipeline's shard):
  // step (b) onward.
  void OnCommandCapsule(int pipeline, IoRequest req);

  // Dataset Management (TRIM) capsule: cheap control-plane processing,
  // straight to the policy/device.
  void OnTrimCapsule(int pipeline, uint64_t offset, uint32_t length);

  // Tenant teardown: the policy fails its queued IOs back through the
  // completion path (so the sink stays registered — a reconnect simply
  // replaces it) and reaps the tenant once inflight IOs drain.
  void OnDisconnectCapsule(int pipeline, TenantId tenant);

  // NVMe-oF keepalive: refreshes the session's liveness timestamp. Only
  // meaningful with config.session_timeout > 0.
  void OnKeepaliveCapsule(int pipeline, TenantId tenant);

  // Sessions currently tracked by the crash reaper (0 when disabled).
  int session_count() const;
  uint64_t sessions_reaped() const;

  // Attach metrics/trace sinks; propagated to every pipeline's policy
  // (existing and future) that has no per-pipeline override, which
  // forwards to its device-facing components. Pipeline index doubles as
  // the `ssd` label. Pass nullptr to detach.
  void AttachObservability(obs::Observability* obs);

  // Attach the invariant checker; propagated like AttachObservability.
  void AttachChecker(check::InvariantChecker* chk);

  core::IoPolicy& policy(int pipeline) { return *pipelines_[pipeline]->policy; }
  int pipeline_count() const { return static_cast<int>(pipelines_.size()); }
  const TargetConfig& config() const { return config_; }

  struct TargetStats {
    uint64_t ios = 0;
    uint64_t bytes = 0;
  };
  TargetStats stats() const;

 private:
  struct Pipeline {
    std::unique_ptr<core::IoPolicy> policy;
    int id = 0;
    int core = 0;
    // The shard this pipeline executes on (== the target's simulator in
    // plain mode) and the observability it records into.
    sim::Simulator* sim = nullptr;
    obs::Observability* obs_override = nullptr;
    TargetStats stats;
    std::unordered_map<TenantId, CompletionSink*> sinks;
    // Last command/keepalive capsule per tenant; populated only while
    // session_timeout > 0.
    std::unordered_map<TenantId, Tick> last_seen;
    uint64_t sessions_reaped = 0;
    // This pipeline's armed reaper scan; not re-armed when no session
    // remains tracked, so Run()-to-idle experiments still drain.
    sim::TimerHandle reaper_timer;
    // Per-tenant admit counter handles, resolved lazily (see target.cc).
    struct AdmitCounters {
      obs::Counter* ios = nullptr;
      obs::Counter* bytes = nullptr;
    };
    std::unordered_map<TenantId, AdmitCounters> admit;
  };

  sim::FifoResource& CoreOf(const Pipeline& p) { return *cores_[p.core]; }
  obs::Observability* ObsOf(const Pipeline& p) const {
    return p.obs_override ? p.obs_override : obs_;
  }
  void DeliverToPolicy(Pipeline& p, const IoRequest& req);
  void FinishCompletion(Pipeline& p, const IoRequest& req, IoCompletion cpl);
  void TouchSession(int pipeline, TenantId tenant);
  void ReapStaleSessions(Pipeline& p);
  Tick StagingDelay(uint32_t bytes) const {
    return static_cast<Tick>(config_.staging_ns_per_byte *
                             static_cast<double>(bytes));
  }

  sim::Simulator& sim_;
  Network& net_;
  TargetConfig config_;
  std::vector<std::unique_ptr<sim::FifoResource>> cores_;
  std::vector<sim::Simulator*> core_sims_;  // parallel to cores_
  std::vector<std::unique_ptr<Pipeline>> pipelines_;
  obs::Observability* obs_ = nullptr;  // null = not observed
  check::InvariantChecker* chk_ = nullptr;
};

}  // namespace gimbal::fabric
