// Fabric network model for NVMe-oF/RDMA traffic.
//
// Models the storage node's NIC as a full-duplex shared link: messages
// serialize on the direction's bandwidth and then experience a fixed
// propagation/switching latency. Capsules are 64 B; RDMA data moves in
// messages of the IO's size (§2.1's five-step request flow is built from
// these primitives by the target).
#pragma once

#include <cstdint>

#include "fault/fault.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace gimbal::fabric {

struct NetworkConfig {
  double bandwidth_bps = 100e9 / 8;       // 100 Gbps, in bytes/sec
  Tick base_latency = Microseconds(5);    // NIC + switch + propagation
};

enum class Direction { kClientToTarget, kTargetToClient };

constexpr uint32_t kCapsuleBytes = 64;      // command/completion capsule
constexpr uint32_t kRdmaControlBytes = 16;  // RDMA_READ request header

class Network {
 public:
  Network(sim::Simulator& sim, NetworkConfig config = {})
      : sim_(sim), config_(config), c2t_(sim), t2c_(sim) {}

  // Deliver a `bytes`-sized message in `dir`; `deliver` runs after
  // serialization on the shared link plus the base latency. During a
  // scheduled link flap (docs/FAULTS.md) the message may be silently
  // dropped — recovery is the initiator's per-IO timeout — or delayed.
  void Send(Direction dir, uint64_t bytes, sim::EventFn deliver) {
    Tick fault_delay = 0;
    if (faults_) {
      const fault::FaultInjector::LinkFault lf =
          faults_->OnLinkMessage(sim_.now());
      if (lf.drop) {
        ++messages_dropped_;
        return;
      }
      fault_delay = lf.extra_delay;
    }
    sim::FifoResource& link =
        dir == Direction::kClientToTarget ? c2t_ : t2c_;
    bytes_sent_ += bytes;
    // Serialize on the link, then the base latency elapses off-link; the
    // deferred form hands `deliver` through unwrapped so the schedule
    // path stays allocation-free.
    link.AcquireDeferred(TransferTime(bytes, config_.bandwidth_bps),
                         config_.base_latency + fault_delay,
                         std::move(deliver));
  }

  // Route every message through `faults` (null detaches).
  void set_fault_injector(fault::FaultInjector* faults) { faults_ = faults; }

  const NetworkConfig& config() const { return config_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  sim::Simulator& sim_;
  NetworkConfig config_;
  sim::FifoResource c2t_;
  sim::FifoResource t2c_;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  fault::FaultInjector* faults_ = nullptr;  // null = fault-free link
};

}  // namespace gimbal::fabric
