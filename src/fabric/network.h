// Fabric network model for NVMe-oF/RDMA traffic.
//
// Models the storage node's NIC as a full-duplex shared link: messages
// serialize on the direction's bandwidth and then experience a fixed
// propagation/switching latency. Capsules are 64 B; RDMA data moves in
// messages of the IO's size (§2.1's five-step request flow is built from
// these primitives by the target).
//
// Two execution modes share one visible contract:
//
//   * Plain (default): Send() acquires the direction's FifoResource
//     immediately, exactly as before the sharded engine existed.
//   * Sharded (ConfigureSharded): Send() buffers the message in a
//     per-source-shard outbox, and at every epoch barrier ReplayPending()
//     folds all buffered messages into the shared link in one canonical
//     order — (send time, source shard, per-shard issue order) — keeping
//     per-direction FIFO serialization state across epochs. Deliveries
//     land on the destination shard's queue at
//     serialization end + base_latency, which the engine's lookahead
//     guarantees is never in any shard's past (docs/SIMULATOR.md).
//
// Because the canonical replay order is a pure function of simulated
// times and shard structure, the resulting schedule is bit-identical for
// any worker-thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "sim/resource.h"
#include "sim/shard.h"
#include "sim/simulator.h"

namespace gimbal::check {
class InvariantChecker;
}  // namespace gimbal::check

namespace gimbal::fabric {

struct NetworkConfig {
  double bandwidth_bps = 100e9 / 8;       // 100 Gbps, in bytes/sec
  Tick base_latency = Microseconds(5);    // NIC + switch + propagation
};

enum class Direction { kClientToTarget, kTargetToClient };

constexpr uint32_t kCapsuleBytes = 64;      // command/completion capsule
constexpr uint32_t kRdmaControlBytes = 16;  // RDMA_READ request header

class Network {
 public:
  Network(sim::Simulator& sim, NetworkConfig config = {})
      : sim_(sim), config_(config), c2t_(sim), t2c_(sim) {}

  // Deliver a `bytes`-sized message in `dir`; `deliver` runs after
  // serialization on the shared link plus the base latency. `ssd`
  // identifies the target-side pipeline the message belongs to — it picks
  // the destination shard in sharded mode (client-to-target lands on the
  // pipeline's shard; target-to-client always lands on the client shard)
  // and is ignored in plain mode. During a scheduled link flap
  // (docs/FAULTS.md) the message may be silently dropped — recovery is
  // the initiator's per-IO timeout — or delayed.
  void Send(Direction dir, int ssd, uint64_t bytes, sim::EventFn deliver) {
    if (!ssd_sims_.empty()) {
      BufferSend(dir, ssd, bytes, std::move(deliver));
      return;
    }
    Tick fault_delay = 0;
    if (faults_) {
      const fault::FaultInjector::LinkFault lf =
          faults_->OnLinkMessage(sim_.now());
      if (lf.drop) {
        ++messages_dropped_;
        return;
      }
      fault_delay = lf.extra_delay;
    }
    if (rack()) {
      SendRackPlain(dir, node_of(ssd), bytes,
                    config_.base_latency + fault_delay, std::move(deliver));
      return;
    }
    sim::FifoResource& link =
        dir == Direction::kClientToTarget ? c2t_ : t2c_;
    bytes_sent_ += bytes;
    // Serialize on the link, then the base latency elapses off-link; the
    // deferred form hands `deliver` through unwrapped so the schedule
    // path stays allocation-free.
    link.AcquireDeferred(TransferTime(bytes, config_.bandwidth_bps),
                         config_.base_latency + fault_delay,
                         std::move(deliver));
  }

  // Compatibility form for direct unit-test use; routes like ssd 0.
  void Send(Direction dir, uint64_t bytes, sim::EventFn deliver) {
    Send(dir, 0, bytes, std::move(deliver));
  }

  // Enter sharded mode: client-to-target messages for pipeline i deliver
  // onto `ssd_sims[i]`, target-to-client messages onto `client_sim`.
  // `client_sim` must be the engine's shard 0.
  void ConfigureSharded(sim::Simulator* client_sim,
                        std::vector<sim::Simulator*> ssd_sims,
                        int num_shards) {
    client_sim_ = client_sim;
    ssd_sims_ = std::move(ssd_sims);
    outbox_.resize(static_cast<size_t>(num_shards));
  }

  // Fold every buffered cross-shard message into the shared link in
  // canonical order and schedule its delivery. Runs on the control thread
  // at epoch barriers, while all shards are quiescent. Returns the number
  // of messages replayed.
  //
  // The replay is a k-way merge over the per-source outboxes (each is
  // time-sorted: shard clocks are monotone within an epoch) with link
  // frontiers held in locals for the whole batch and uplink byte
  // accounting folded per (batch, node) rather than per message — the
  // conservation invariant is still checked against the post-batch sums.
  size_t ReplayPending();

  // True while buffered cross-shard sends await replay. The sharded
  // engine's coarsening probe: a coarsened epoch must end at the first
  // sub-epoch that buffers a send (sim/shard.h).
  bool has_pending() const { return pending_count_ > 0; }

  // Route every message through `faults` (null detaches).
  void set_fault_injector(fault::FaultInjector* faults) { faults_ = faults; }

  // --- Rack topology (docs/SIMULATOR.md) -----------------------------------
  // Place the pipelines on `num_nodes` target nodes behind a shared ToR
  // uplink: `node_of[ssd]` is the node pipeline `ssd` lives on. A message
  // serializes on the shared uplink and then on the destination node's
  // access link (access link first, uplink second target-to-client), then
  // the base latency elapses. Call before any Send; composes with
  // ConfigureSharded in either order.
  void ConfigureRack(std::vector<int> node_of, int num_nodes,
                     double uplink_bps);
  bool rack() const { return num_nodes_ > 0; }
  int nodes() const { return num_nodes_; }
  int node_of(int ssd) const {
    return rack() ? node_of_[static_cast<size_t>(ssd)] : 0;
  }

  // Register a node outage window [fail_at, recover_at) (recover_at 0 =
  // never recovers): every message to or from the node whose *send time*
  // falls inside the window is dropped. Down-ness is a pure function of
  // (node, send time), so sharded replay on the control thread makes the
  // same drop decisions at any worker-thread count.
  void AddNodeOutage(int node, Tick fail_at, Tick recover_at);
  bool NodeDown(int node, Tick when) const;

  // Fires the rack.uplink.conservation check on every uplink crossing.
  void AttachChecker(check::InvariantChecker* chk) { chk_ = chk; }

  const NetworkConfig& config() const { return config_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  double uplink_bps() const { return uplink_bps_; }
  uint64_t uplink_bytes() const { return uplink_bytes_total_; }
  uint64_t node_uplink_bytes(int node) const {
    return node_uplink_bytes_[static_cast<size_t>(node)];
  }
  // Messages dropped because a node was down (separate from link flaps).
  uint64_t node_drops() const { return node_drops_; }
  // Total uplink serialization time ever scheduled (utilization numerator).
  Tick uplink_busy_time() const { return uplink_busy_accum_; }

 private:
  struct PendingSend {
    Tick when = 0;
    Direction dir = Direction::kClientToTarget;
    int node = 0;
    uint64_t bytes = 0;
    sim::Simulator* dest = nullptr;
    sim::EventFn deliver;
  };

  void BufferSend(Direction dir, int ssd, uint64_t bytes,
                  sim::EventFn deliver);
  // Plain-mode rack path: chain uplink and node access link FifoResources.
  void SendRackPlain(Direction dir, int node, uint64_t bytes, Tick extra,
                     sim::EventFn deliver);
  // Per-node uplink byte accounting + the conservation check.
  void AccountUplink(int node, uint64_t bytes);

  sim::Simulator& sim_;
  NetworkConfig config_;
  sim::FifoResource c2t_;
  sim::FifoResource t2c_;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  fault::FaultInjector* faults_ = nullptr;  // null = fault-free link

  // Sharded mode state. Outboxes are per source shard (single writer
  // during an epoch; drained at the barrier). busy_until_ carries each
  // direction's FIFO serialization frontier across epochs — the replay
  // equivalent of the FifoResources' internal queues.
  sim::Simulator* client_sim_ = nullptr;
  std::vector<sim::Simulator*> ssd_sims_;  // empty = plain mode
  std::vector<std::vector<PendingSend>> outbox_;
  size_t pending_count_ = 0;
  Tick busy_until_[2] = {0, 0};

  // Rack mode state (num_nodes_ == 0 = flat single-node fabric). Indexed
  // [direction][...] with 0 = client-to-target, 1 = target-to-client.
  std::vector<int> node_of_;  // pipeline -> node
  int num_nodes_ = 0;
  double uplink_bps_ = 0;
  struct Outage {
    int node;
    Tick fail_at;
    Tick recover_at;  // 0 = never
  };
  std::vector<Outage> outages_;
  // Plain-mode resources: one shared uplink + one access link per node,
  // per direction.
  std::unique_ptr<sim::FifoResource> uplink_res_[2];
  std::vector<std::unique_ptr<sim::FifoResource>> node_res_[2];
  // Sharded-mode serialization frontiers (replay equivalents of the above;
  // persist across epoch barriers like busy_until_).
  Tick uplink_busy_[2] = {0, 0};
  std::vector<Tick> node_busy_[2];
  // Uplink accounting (rack.uplink.* metrics + conservation invariant).
  uint64_t uplink_bytes_total_ = 0;
  std::vector<uint64_t> node_uplink_bytes_;
  // Replay scratch: per-node byte deltas for the current batch plus the
  // touched-node list used to reset them (kept as members so barriers
  // don't allocate).
  std::vector<uint64_t> uplink_delta_;
  std::vector<int> touched_nodes_;
  uint64_t node_drops_ = 0;
  Tick uplink_busy_accum_ = 0;
  check::InvariantChecker* chk_ = nullptr;
};

}  // namespace gimbal::fabric
