// A serially-shared resource (a CPU core, a NAND channel, a link).
//
// Work items occupy the resource for a duration; queued items run FIFO.
// This is the building block for the target's reactor cores (Fig 3 / 16 /
// Table 1) and for the SSD's channels.
#pragma once

#include <deque>
#include <functional>

#include "common/time.h"
#include "sim/simulator.h"

namespace gimbal::sim {

class FifoResource {
 public:
  explicit FifoResource(Simulator& sim) : sim_(sim) {}

  // Occupy the resource for `duration`, then invoke `done` (may be null).
  // If busy, the request queues behind earlier ones.
  void Acquire(Tick duration, EventFn done) {
    queue_.push_back(Item{duration, std::move(done)});
    busy_accum_ += duration;
    if (!busy_) StartNext();
  }

  bool busy() const { return busy_; }
  size_t queue_depth() const { return queue_.size(); }

  // Total busy time ever scheduled; used for utilization accounting.
  Tick busy_time_total() const { return busy_accum_; }

 private:
  struct Item {
    Tick duration;
    EventFn done;
  };

  void StartNext() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    Item item = std::move(queue_.front());
    queue_.pop_front();
    sim_.After(item.duration, [this, done = std::move(item.done)]() {
      if (done) done();
      StartNext();
    });
  }

  Simulator& sim_;
  std::deque<Item> queue_;
  bool busy_ = false;
  Tick busy_accum_ = 0;
};

// A two-priority serially-shared resource: high-priority work (host reads
// on a NAND die) is served before queued low-priority work (programs, GC,
// erase slices), but never preempts the occupant mid-operation. This
// models the read-priority / suspension behaviour of real SSD controllers.
class PrioResource {
 public:
  explicit PrioResource(Simulator& sim) : sim_(sim) {}

  void AcquireHigh(Tick duration, EventFn done) {
    high_.push_back(Item{duration, std::move(done)});
    busy_accum_ += duration;
    if (!busy_) StartNext();
  }
  void AcquireLow(Tick duration, EventFn done) {
    low_.push_back(Item{duration, std::move(done)});
    busy_accum_ += duration;
    if (!busy_) StartNext();
  }

  bool busy() const { return busy_; }
  size_t queue_depth() const { return high_.size() + low_.size(); }
  Tick busy_time_total() const { return busy_accum_; }

 private:
  struct Item {
    Tick duration;
    EventFn done;
  };

  void StartNext() {
    std::deque<Item>& q = !high_.empty() ? high_ : low_;
    if (q.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    Item item = std::move(q.front());
    q.pop_front();
    sim_.After(item.duration, [this, done = std::move(item.done)]() {
      if (done) done();
      StartNext();
    });
  }

  Simulator& sim_;
  std::deque<Item> high_;
  std::deque<Item> low_;
  bool busy_ = false;
  Tick busy_accum_ = 0;
};

}  // namespace gimbal::sim
