// A serially-shared resource (a CPU core, a NAND channel, a link).
//
// Work items occupy the resource for a duration; queued items run FIFO.
// This is the building block for the target's reactor cores (Fig 3 / 16 /
// Table 1) and for the SSD's channels.
//
// The occupant's callback is parked in the resource (running_) rather than
// captured inside the completion closure, so the event scheduled on the
// simulator captures only `this` and stays within EventFn's inline buffer
// — nested wrapping of an EventFn in another closure would spill every
// resource completion to the heap.
#pragma once

#include <deque>
#include <utility>

#include "common/time.h"
#include "sim/simulator.h"

namespace gimbal::sim {

class FifoResource {
 public:
  explicit FifoResource(Simulator& sim) : sim_(sim) {}

  // Occupy the resource for `duration`, then invoke `done` (may be null).
  // If busy, the request queues behind earlier ones.
  void Acquire(Tick duration, EventFn done) {
    AcquireDeferred(duration, 0, std::move(done));
  }

  // Occupy the resource for `duration`; `done` then fires `extra` ticks
  // later without occupying it (a link's propagation delay after
  // serialization, staging latency after a core step). Equivalent to
  // wrapping `done` in an After() from the completion callback, minus the
  // extra closure layer.
  void AcquireDeferred(Tick duration, Tick extra, EventFn done) {
    queue_.push_back(Item{duration, extra, std::move(done)});
    busy_accum_ += duration;
    if (!busy_) StartNext();
  }

  bool busy() const { return busy_; }
  size_t queue_depth() const { return queue_.size(); }

  // Total busy time ever scheduled; used for utilization accounting.
  Tick busy_time_total() const { return busy_accum_; }

 private:
  struct Item {
    Tick duration;
    Tick extra;
    EventFn done;
  };

  void StartNext() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    running_ = std::move(queue_.front());
    queue_.pop_front();
    sim_.After(running_.duration, [this]() {
      Item item = std::move(running_);
      // Keep the historical event order: the occupant's continuation is
      // scheduled/run before the next occupant starts.
      if (item.extra > 0) {
        sim_.After(item.extra, std::move(item.done));
      } else if (item.done) {
        item.done();
      }
      StartNext();
    });
  }

  Simulator& sim_;
  std::deque<Item> queue_;
  Item running_{};
  bool busy_ = false;
  Tick busy_accum_ = 0;
};

// A two-priority serially-shared resource: high-priority work (host reads
// on a NAND die) is served before queued low-priority work (programs, GC,
// erase slices), but never preempts the occupant mid-operation. This
// models the read-priority / suspension behaviour of real SSD controllers.
class PrioResource {
 public:
  explicit PrioResource(Simulator& sim) : sim_(sim) {}

  void AcquireHigh(Tick duration, EventFn done) {
    high_.push_back(Item{duration, std::move(done)});
    busy_accum_ += duration;
    if (!busy_) StartNext();
  }
  void AcquireLow(Tick duration, EventFn done) {
    low_.push_back(Item{duration, std::move(done)});
    busy_accum_ += duration;
    if (!busy_) StartNext();
  }

  bool busy() const { return busy_; }
  size_t queue_depth() const { return high_.size() + low_.size(); }
  Tick busy_time_total() const { return busy_accum_; }

 private:
  struct Item {
    Tick duration;
    EventFn done;
  };

  void StartNext() {
    std::deque<Item>& q = !high_.empty() ? high_ : low_;
    if (q.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    running_ = std::move(q.front());
    q.pop_front();
    sim_.After(running_.duration, [this]() {
      Item item = std::move(running_);
      if (item.done) item.done();
      StartNext();
    });
  }

  Simulator& sim_;
  std::deque<Item> high_;
  std::deque<Item> low_;
  Item running_{};
  bool busy_ = false;
  Tick busy_accum_ = 0;
};

}  // namespace gimbal::sim
