// Minimal C++20 coroutine support for writing sequential-looking logic
// (the key-value store, examples) on top of the event-driven simulator.
//
// `Task` is an eager fire-and-forget coroutine: it starts running when
// created and suspends whenever it awaits a `Delay` or an `AsyncEvent`.
// Because the simulator is single-threaded there is no synchronization.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace gimbal::sim {

// Fire-and-forget coroutine handle. The coroutine owns its own frame and
// destroys it at final_suspend; Task is just a started marker.
struct Task {
  struct promise_type {
    Task get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

// co_await Delay{sim, ticks}: resume after `ticks` of simulated time.
struct Delay {
  Simulator& sim;
  Tick ticks;

  bool await_ready() const noexcept { return ticks <= 0; }
  void await_suspend(std::coroutine_handle<> h) const {
    sim.After(ticks, [h]() { h.resume(); });
  }
  void await_resume() const noexcept {}
};

// A one-shot event carrying a value of type T. A coroutine co_awaits it;
// a callback elsewhere Sets it (at most once), which resumes the waiter.
// Multiple waiters are supported; they resume in registration order.
template <typename T>
class AsyncEvent {
 public:
  explicit AsyncEvent(Simulator& sim) : sim_(sim) {}

  void Set(T value) {
    value_ = std::move(value);
    ready_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) sim_.After(0, [h]() { h.resume(); });
  }

  bool ready() const { return ready_; }
  const T& value() const { return value_; }

  struct Awaiter {
    AsyncEvent& ev;
    bool await_ready() const noexcept { return ev.ready_; }
    void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
    const T& await_resume() const noexcept { return ev.value_; }
  };

  Awaiter operator co_await() { return Awaiter{*this}; }

 private:
  Simulator& sim_;
  std::vector<std::coroutine_handle<>> waiters_;
  T value_{};
  bool ready_ = false;
};

// Counting latch for fan-out/fan-in: arm with N, co_await until N arrivals.
class AsyncLatch {
 public:
  AsyncLatch(Simulator& sim, int count) : sim_(sim), remaining_(count) {}

  void CountDown() {
    if (--remaining_ == 0) {
      auto waiters = std::move(waiters_);
      waiters_.clear();
      for (auto h : waiters) sim_.After(0, [h]() { h.resume(); });
    }
  }

  struct Awaiter {
    AsyncLatch& latch;
    bool await_ready() const noexcept { return latch.remaining_ <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      latch.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };
  Awaiter operator co_await() { return Awaiter{*this}; }

 private:
  Simulator& sim_;
  int remaining_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace gimbal::sim
