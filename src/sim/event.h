// Allocation-free event callback for the simulator hot path.
//
// `EventFn` used to be `std::function<void()>`; with libstdc++'s 16-byte
// inline buffer, nearly every closure the stack schedules (an IoRequest by
// value plus a `this` pointer is already 56 bytes) paid one heap
// allocation per simulated event. `InlineFn` is a move-only callable
// wrapper whose inline buffer is sized for the largest hot-path closure in
// the tree — the target's completion step captures an IoRequest (48 B), an
// IoCompletion (40 B) and two pointers — so the schedule path allocates
// nothing. Larger closures still work; they fall back to the heap like
// std::function would, and a counter records that it happened so the
// regression is visible in tests and in bench_sim.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace gimbal::sim {

class InlineFn {
 public:
  // Sized for the largest closure the simulator schedules per-IO — the
  // target's completion step captures an IoRequest (48 B), an IoCompletion
  // (40 B), a pipeline pointer, a sink pointer and `this` (see header
  // comment); anything bigger spills to the heap.
  static constexpr size_t kInlineCapacity = 120;

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT: std::function accepted nullptr too

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every sim.After()/At() call site.
    using T = std::decay_t<F>;
    if constexpr (sizeof(T) <= kInlineCapacity &&
                  alignof(T) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<T>) {
      ::new (static_cast<void*>(buf_)) T(std::forward<F>(f));
      ops_ = &InlineOps<T>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) T*(new T(std::forward<F>(f)));
      ops_ = &HeapOps<T>::ops;
      heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void Reset() {
    if (ops_) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  // Closures that exceeded kInlineCapacity since process start (process-
  // wide; relaxed-atomic because sharded testbeds construct closures from
  // several shard threads). bench_sim asserts this stays flat across the
  // hot loop.
  static uint64_t heap_fallbacks() {
    return heap_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct from `from` into `to`, destroying `from`.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void*);
  };

  template <typename T>
  struct InlineOps {
    static void Invoke(void* p) { (*static_cast<T*>(p))(); }
    static void Relocate(void* from, void* to) {
      T* src = static_cast<T*>(from);
      ::new (to) T(std::move(*src));
      src->~T();
    }
    static void Destroy(void* p) { static_cast<T*>(p)->~T(); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  template <typename T>
  struct HeapOps {
    static T*& Ptr(void* p) { return *static_cast<T**>(p); }
    static void Invoke(void* p) { (*Ptr(p))(); }
    static void Relocate(void* from, void* to) {
      ::new (to) T*(Ptr(from));
    }
    static void Destroy(void* p) { delete Ptr(p); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy};
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;

  static inline std::atomic<uint64_t> heap_fallbacks_{0};
};

using EventFn = InlineFn;

}  // namespace gimbal::sim
