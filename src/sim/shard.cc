#include "sim/shard.h"

#include <algorithm>
#include <cassert>

namespace gimbal::sim {

namespace {
thread_local int tls_shard = -1;
thread_local Simulator* tls_sim = nullptr;
}  // namespace

int ShardedEngine::CurrentShard() { return tls_shard; }
Simulator* ShardedEngine::CurrentSim() { return tls_sim; }

ShardedEngine::ShardedEngine(int num_shards, const Config& config)
    : lookahead_(config.lookahead),
      threads_(std::clamp(config.threads, 1, num_shards)),
      adaptive_(config.adaptive),
      serial_grain_(config.serial_grain) {
  assert(num_shards >= 1);
  assert(lookahead_ > 0 && "conservative lookahead requires a positive "
                           "minimum cross-shard latency");
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Simulator>(config.impl));
  }
  shards_[0]->set_engine(this);
  active_.reserve(static_cast<size_t>(num_shards));
  const int nworkers = threads_ - 1;
  slots_.reserve(static_cast<size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  for (int i = 0; i < nworkers; ++i) {
    workers_.emplace_back([this, i]() { WorkerMain(i); });
  }
}

ShardedEngine::~ShardedEngine() {
  quit_.store(true, std::memory_order_release);
  ++seq_;
  for (auto& s : slots_) Ring(*s, seq_);
  for (std::thread& t : workers_) t.join();
  shards_[0]->set_engine(nullptr);
}

// Doorbell ring: publish the epoch with a release store the worker
// acquires, then issue the futex wake only if the worker actually parked.
// The seq_cst fence pairs with the one in WorkerMain's park path: either
// the worker's post-park recheck sees the new `go`, or this load sees
// `parked` and notifies — a wakeup can never be lost.
void ShardedEngine::Ring(WorkerSlot& slot, uint64_t seq) {
  slot.go.store(seq, std::memory_order_release);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (slot.parked.load(std::memory_order_relaxed)) slot.go.notify_all();
}

void ShardedEngine::WaitDone(WorkerSlot& slot, uint64_t seq) {
  int spins = 0;
  uint64_t done;
  while ((done = slot.done.load(std::memory_order_acquire)) < seq) {
    if (++spins > kSpinLimit) {
      waiting_.store(1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      done = slot.done.load(std::memory_order_acquire);
      if (done >= seq) break;
      slot.done.wait(done, std::memory_order_acquire);
      spins = 0;
    }
  }
  waiting_.store(0, std::memory_order_relaxed);
}

bool ShardedEngine::RunClaimedShards() {
  const uint64_t n = active_.size();
  bool claimed = false;
  for (;;) {
    const uint64_t idx = next_claim_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= n) return claimed;
    claimed = true;
    const int shard_idx = active_[static_cast<size_t>(idx)];
    Simulator* s = shards_[static_cast<size_t>(shard_idx)].get();
    tls_shard = shard_idx;
    tls_sim = s;
    s->StepUntil(epoch_end_);
    tls_shard = -1;
    tls_sim = nullptr;
  }
}

void ShardedEngine::WorkerMain(int index) {
  WorkerSlot& slot = *slots_[static_cast<size_t>(index)];
  uint64_t seen = 0;
  for (;;) {
    // Spin hot briefly (epochs on a busy run are microseconds apart), then
    // park on the futex-backed atomic wait so an idle or oversubscribed
    // engine neither burns a core nor yield-storms. The parked flag lets
    // the control thread skip the wake syscall while we are still
    // spinning — the common case on a loaded run.
    int spins = 0;
    uint64_t go;
    while ((go = slot.go.load(std::memory_order_acquire)) == seen) {
      if (++spins > kSpinLimit) {
        slot.parked.store(1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        go = slot.go.load(std::memory_order_acquire);
        if (go != seen) {
          slot.parked.store(0, std::memory_order_relaxed);
          break;
        }
        slot.go.wait(seen, std::memory_order_acquire);
        slot.parked.store(0, std::memory_order_relaxed);
        spins = 0;
      }
    }
    seen = go;  // sequence values may skip when this worker sat out epochs
    if (quit_.load(std::memory_order_acquire)) return;
    if (!RunClaimedShards()) {
      idle_wakeups_.fetch_add(1, std::memory_order_relaxed);
    }
    slot.done.store(seen, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiting_.load(std::memory_order_relaxed)) slot.done.notify_all();
  }
}

bool ShardedEngine::ComputeEpoch(Tick deadline) {
  Tick earliest = kNone;
  sole_live_ = -1;
  int live_shards = 0;
  const int n = num_shards();
  for (int i = 0; i < n; ++i) {
    EventQueue& q = shards_[static_cast<size_t>(i)]->queue();
    if (q.empty()) continue;
    ++live_shards;
    sole_live_ = i;
    const Tick t = q.next_time();
    if (earliest == kNone || t < earliest) earliest = t;
  }
  if (live_shards != 1) sole_live_ = -1;
  if (earliest == kNone || (deadline != kNone && earliest > deadline)) {
    return false;
  }
  // Uniform conservative bound: any shard may send to any other, and no
  // send issued at or after `earliest` can deliver inside the epoch.
  epoch_end_ = earliest + lookahead_ - 1;
  if (deadline != kNone) epoch_end_ = std::min(epoch_end_, deadline);
  return true;
}

// Coarsened epoch: exactly one shard holds events and (right after a
// barrier) no send is buffered, so nothing can influence that shard until
// one of its own sends completes a round trip. Run its uniform sub-epochs
// back to back on the control thread. Each quiet sub-boundary still runs
// the barrier hook — replay is a no-op there, but the testbed's trace
// batch marks must land exactly where the uniform engine would have put
// them, which is what keeps the stitched trace byte-identical. Stop at the
// first sub-epoch that buffers a send: its delivery seeds another shard at
// send + W, and the engine returns to normal epochs.
void ShardedEngine::RunCoarse(Tick deadline) {
  Simulator* s = shards_[static_cast<size_t>(sole_live_)].get();
  for (;;) {
    tls_shard = sole_live_;
    tls_sim = s;
    s->StepUntil(epoch_end_);
    tls_shard = -1;
    tls_sim = nullptr;
    if (pending_sends_fn_()) break;
    EventQueue& q = s->queue();
    if (q.empty()) break;
    const Tick t = q.next_time();
    if (deadline != kNone && t > deadline) break;
    if (barrier_fn_) barrier_fn_();  // quiet sub-epoch close
    epoch_end_ = t + lookahead_ - 1;
    if (deadline != kNone) epoch_end_ = std::min(epoch_end_, deadline);
  }
  // Idle shards advance to the (final) epoch end exactly as RunEpoch's
  // uniform path would have advanced them sub-epoch by sub-epoch.
  const int n = num_shards();
  for (int i = 0; i < n; ++i) {
    if (i == sole_live_) continue;
    Simulator* idle = shards_[static_cast<size_t>(i)].get();
    if (idle->now() < epoch_end_) idle->StepUntil(epoch_end_);
  }
}

void ShardedEngine::RunEpoch(Tick deadline) {
  if (adaptive_ && sole_live_ >= 0 && pending_sends_fn_) {
    RunCoarse(deadline);
    return;
  }
  active_.clear();
  size_t live = 0;
  const int n = num_shards();
  for (int i = 0; i < n; ++i) {
    Simulator* s = shards_[static_cast<size_t>(i)].get();
    if (!s->queue().empty() && s->queue().next_time() <= epoch_end_) {
      active_.push_back(i);
      live += s->queue().size();
    } else if (s->now() < epoch_end_) {
      // Idle shard: advance its clock directly so injected deliveries and
      // later control-context At() calls see a consistent `now`.
      s->StepUntil(epoch_end_);
    }
  }
  if (active_.empty()) return;
  const int want = std::min(static_cast<int>(slots_.size()),
                            static_cast<int>(active_.size()) - 1);
  if (want <= 0 || live < serial_grain_) {
    // Serial fast path: identical schedule, no synchronization, and no
    // worker is woken — epochs with one active shard or a handful of
    // events cost nothing in sync.
    for (int i : active_) {
      Simulator* s = shards_[static_cast<size_t>(i)].get();
      tls_shard = i;
      tls_sim = s;
      s->StepUntil(epoch_end_);
      tls_shard = -1;
      tls_sim = nullptr;
    }
    return;
  }
  // Ring exactly `want` doorbells: workers beyond the active-shard count
  // stay parked (their `go` never moves), which is what keeps
  // idle_wakeups() at zero on sparse traffic. Epoch state written above is
  // published by the release store in Ring().
  next_claim_.store(0, std::memory_order_relaxed);
  ++seq_;
  for (int i = 0; i < want; ++i) Ring(*slots_[static_cast<size_t>(i)], seq_);
  RunClaimedShards();
  for (int i = 0; i < want; ++i) {
    WaitDone(*slots_[static_cast<size_t>(i)], seq_);
  }
}

void ShardedEngine::Barrier() {
  ++epochs_;
  if (barrier_fn_) barrier_fn_();
}

void ShardedEngine::RunEnd() {
  if (run_end_fn_) run_end_fn_();
}

void ShardedEngine::EngineRunUntil(Tick deadline) {
  // Replay sends buffered from control context (e.g. a Shutdown() between
  // runs) before the first epoch: running an epoch first could advance a
  // shard's clock past the buffered send's delivery time.
  Barrier();
  while (ComputeEpoch(deadline)) {
    RunEpoch(deadline);
    Barrier();
  }
  for (auto& s : shards_) {
    if (s->now() < deadline) s->StepUntil(deadline);
  }
  RunEnd();
}

void ShardedEngine::EngineRunToIdle() {
  Barrier();  // see EngineRunUntil
  while (ComputeEpoch(kNone)) {
    RunEpoch(kNone);
    Barrier();
  }
  // A coarsened final epoch can leave the live shard ahead of the rest;
  // equalize on the furthest clock so control-context sends issued after
  // this run (e.g. Shutdown capsules) deliver in every shard's future,
  // exactly as the uniform-epoch engine left things.
  Tick latest = 0;
  for (auto& s : shards_) latest = std::max(latest, s->now());
  for (auto& s : shards_) {
    if (s->now() < latest) s->StepUntil(latest);
  }
  RunEnd();
}

}  // namespace gimbal::sim
