#include "sim/shard.h"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace gimbal::sim {

namespace {
thread_local int tls_shard = -1;
thread_local Simulator* tls_sim = nullptr;
}  // namespace

int ShardedEngine::CurrentShard() { return tls_shard; }
Simulator* ShardedEngine::CurrentSim() { return tls_sim; }

ShardedEngine::ShardedEngine(int num_shards, const Config& config)
    : lookahead_(config.lookahead),
      threads_(std::clamp(config.threads, 1, num_shards)) {
  assert(num_shards >= 1);
  assert(lookahead_ > 0 && "conservative lookahead requires a positive "
                           "minimum cross-shard latency");
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Simulator>(config.impl));
  }
  shards_[0]->set_engine(this);
  active_.reserve(static_cast<size_t>(num_shards));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this]() { WorkerMain(); });
  }
}

ShardedEngine::~ShardedEngine() {
  quit_.store(true, std::memory_order_release);
  epoch_seq_.fetch_add(1, std::memory_order_release);
  epoch_seq_.notify_all();
  for (std::thread& t : workers_) t.join();
  shards_[0]->set_engine(nullptr);
}

Tick ShardedEngine::NextEventTime() const {
  Tick t = kNone;
  for (const auto& s : shards_) {
    EventQueue& q = const_cast<Simulator&>(*s).queue();
    if (q.empty()) continue;
    const Tick n = q.next_time();
    if (t == kNone || n < t) t = n;
  }
  return t;
}

void ShardedEngine::RunClaimedShards() {
  const uint64_t n = active_.size();
  for (;;) {
    const uint64_t idx = next_claim_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= n) return;
    const int shard_idx = active_[static_cast<size_t>(idx)];
    Simulator* s = shards_[static_cast<size_t>(shard_idx)].get();
    tls_shard = shard_idx;
    tls_sim = s;
    s->StepUntil(epoch_last_);
    tls_shard = -1;
    tls_sim = nullptr;
  }
}

void ShardedEngine::WorkerMain() {
  uint64_t seen = 0;
  for (;;) {
    // Spin hot briefly (epochs on a busy run are microseconds apart), then
    // park on the futex-backed atomic wait so an idle or oversubscribed
    // engine neither burns a core nor yield-storms.
    int spins = 0;
    while (epoch_seq_.load(std::memory_order_acquire) == seen) {
      if (++spins > 4096) epoch_seq_.wait(seen, std::memory_order_acquire);
    }
    ++seen;
    if (quit_.load(std::memory_order_acquire)) return;
    RunClaimedShards();
    finished_.fetch_add(1, std::memory_order_release);
    finished_.notify_all();
  }
}

void ShardedEngine::RunEpoch(Tick epoch_last) {
  epoch_last_ = epoch_last;
  active_.clear();
  for (int i = 0; i < num_shards(); ++i) {
    Simulator* s = shards_[static_cast<size_t>(i)].get();
    if (!s->queue().empty() && s->queue().next_time() <= epoch_last) {
      active_.push_back(i);
    } else if (s->now() < epoch_last) {
      // Idle shard: advance its clock directly so injected deliveries and
      // later control-context At() calls see a consistent `now`.
      s->StepUntil(epoch_last);
    }
  }
  if (active_.empty()) return;
  if (workers_.empty() || active_.size() == 1) {
    // Serial fast path: identical schedule, no synchronization.
    for (int i : active_) {
      Simulator* s = shards_[static_cast<size_t>(i)].get();
      tls_shard = i;
      tls_sim = s;
      s->StepUntil(epoch_last);
      tls_shard = -1;
      tls_sim = nullptr;
    }
    return;
  }
  // All workers are parked at the epoch_seq_ spin (enforced by last
  // epoch's finished_ wait), so resetting the claim state here is safe.
  next_claim_.store(0, std::memory_order_relaxed);
  finished_.store(0, std::memory_order_relaxed);
  epoch_seq_.fetch_add(1, std::memory_order_release);
  epoch_seq_.notify_all();
  RunClaimedShards();
  const int nworkers = static_cast<int>(workers_.size());
  int spins = 0;
  int done;
  while ((done = finished_.load(std::memory_order_acquire)) < nworkers) {
    if (++spins > 4096) finished_.wait(done, std::memory_order_acquire);
  }
}

void ShardedEngine::Barrier() {
  ++epochs_;
  if (barrier_fn_) barrier_fn_();
}

void ShardedEngine::EngineRunUntil(Tick deadline) {
  // Replay sends buffered from control context (e.g. a Shutdown() between
  // runs) before the first epoch: running an epoch first could advance a
  // shard's clock past the buffered send's delivery time.
  Barrier();
  for (;;) {
    const Tick t = NextEventTime();
    if (t == kNone || t > deadline) break;
    RunEpoch(std::min(t + lookahead_ - 1, deadline));
    Barrier();
  }
  for (auto& s : shards_) {
    if (s->now() < deadline) s->StepUntil(deadline);
  }
}

void ShardedEngine::EngineRunToIdle() {
  Barrier();  // see EngineRunUntil
  for (;;) {
    const Tick t = NextEventTime();
    if (t == kNone) break;
    RunEpoch(t + lookahead_ - 1);
    Barrier();
  }
}

}  // namespace gimbal::sim
