// The discrete-event simulator driving every experiment in this repository.
//
// Single-threaded and deterministic: entities schedule callbacks at future
// simulated times; Run()/RunUntil() drain the event queue in time order.
// All latencies, bandwidths and timelines reported by the benches are
// measured in this simulated clock, so results are machine-independent.
//
// At()/After() return a TimerHandle: callers that may need to cancel or
// reschedule the event (per-IO timeouts, keepalives, reapers, pacing
// pokes) keep it; fire-and-forget callers simply drop it. See
// docs/SIMULATOR.md for the event-queue design and the ordering contract.
#pragma once

#include <cassert>
#include <cstdint>

#include "sim/event_queue.h"

namespace gimbal::sim {

class Simulator {
 public:
  // Drives a group of simulators as one logical clock. When a Simulator
  // has an engine attached (sim/shard.h attaches the sharded engine to
  // shard 0), its Run()/RunUntil() delegate to the engine so existing
  // driving code — `bed.sim().RunUntil(t)` — advances the whole sharded
  // testbed. The engine itself advances individual shards with
  // StepUntil(), which never delegates.
  class Engine {
   public:
    virtual ~Engine() = default;
    virtual void EngineRunUntil(Tick deadline) = 0;
    virtual void EngineRunToIdle() = 0;
  };

  // kReferenceHeap swaps in the binary-heap ordering oracle; identical
  // observable behaviour, used by the determinism A/B tests and bench_sim.
  explicit Simulator(EventQueue::Impl impl = EventQueue::Impl::kTimingWheel)
      : queue_(impl) {}

  Tick now() const { return now_; }

  // Schedule `fn` to run at absolute time `when` (>= now).
  TimerHandle At(Tick when, EventFn fn) {
    assert(when >= now_);
    return queue_.Push(when, std::move(fn));
  }

  // Schedule `fn` to run `delay` ticks from now.
  TimerHandle After(Tick delay, EventFn fn) {
    return At(now_ + delay, std::move(fn));
  }

  // Run until the event queue is empty (the whole engine's queues, when
  // this simulator fronts a sharded engine).
  void Run() {
    if (engine_) {
      engine_->EngineRunToIdle();
      return;
    }
    while (!queue_.empty()) Step();
  }

  // Run events with time <= deadline; leaves now() == deadline.
  void RunUntil(Tick deadline) {
    if (engine_) {
      engine_->EngineRunUntil(deadline);
      return;
    }
    StepUntil(deadline);
  }

  // Engine-internal form of RunUntil: never delegates, so the engine can
  // advance this shard without recursing into itself.
  void StepUntil(Tick deadline) {
    while (!queue_.empty() && queue_.next_time() <= deadline) Step();
    if (now_ < deadline) now_ = deadline;
  }

  void set_engine(Engine* engine) { engine_ = engine; }

  // Run at most `max_events` events; returns number executed.
  uint64_t RunEvents(uint64_t max_events) {
    uint64_t n = 0;
    while (n < max_events && !queue_.empty()) {
      Step();
      ++n;
    }
    return n;
  }

  bool idle() const { return queue_.empty(); }
  uint64_t events_executed() const { return events_executed_; }
  // Live (not cancelled) events still scheduled.
  size_t pending_events() const { return queue_.size(); }
  EventQueue& queue() { return queue_; }

 private:
  void Step() {
    Tick when;
    EventFn fn = queue_.Pop(&when);
    assert(when >= now_);
    now_ = when;
    ++events_executed_;
    fn();
  }

  EventQueue queue_;
  Tick now_ = 0;
  uint64_t events_executed_ = 0;
  Engine* engine_ = nullptr;
};

}  // namespace gimbal::sim
