// Priority queue of timed events for the discrete-event simulator.
//
// Events fire in (time, insertion-order) order so the simulation is fully
// deterministic even when many events share a timestamp.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/time.h"

namespace gimbal::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  void Push(Tick when, EventFn fn) {
    heap_.push_back(Event{when, next_seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later);
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  Tick next_time() const { return heap_.front().when; }

  // Removes and returns the earliest event's callback; sets *when.
  EventFn Pop(Tick* when) {
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    *when = ev.when;
    return std::move(ev.fn);
  }

  void Clear() { heap_.clear(); }

 private:
  struct Event {
    Tick when;
    uint64_t seq;
    EventFn fn;
  };
  // Max-heap comparator inverted: "a fires later than b".
  static bool Later(const Event& a, const Event& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  std::vector<Event> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace gimbal::sim
