// Priority queue of timed events for the discrete-event simulator.
//
// Events fire in (time, insertion-order) order so the simulation is fully
// deterministic even when many events share a timestamp. Two engines
// implement that contract behind one class:
//
//   * kTimingWheel (default) — a 4-level hierarchical timing wheel
//     (256 slots/level, 1.024 us base granularity, ~73 simulated minutes
//     of horizon) with a far-future overflow min-heap. Push and Cancel are
//     O(1); Pop is amortized O(1) plus a small per-slot heap, instead of
//     the O(log n) percolation a binary heap pays at every operation.
//   * kReferenceHeap — the original binary-heap algorithm, kept as the
//     ordering oracle: the determinism golden test runs whole testbeds on
//     both engines and asserts bit-identical event traces, and the
//     property test cross-checks randomized Push/Pop/Cancel/Reschedule
//     interleavings between the two.
//
// Both engines store callbacks in a pooled, recycled node slab (EventFn is
// sim/event.h's allocation-free InlineFn), and both support first-class
// cancellation: Push returns a TimerHandle that can Cancel or Reschedule
// the event while it is pending. Cancellation destroys the callback and
// recycles the node immediately; the queue keeps only a 24-byte tombstone
// entry that is skipped (and reclaimed) when it surfaces. A cancelled or
// fired handle goes inert — Cancel/Reschedule on it are safe no-ops — so
// completed IOs can always tear down their timers without bookkeeping.
//
// Ordering contract (see docs/SIMULATOR.md): every live event fires in
// ascending (when, seq); seq is assigned at Push and re-assigned at
// Reschedule, i.e. a rescheduled event orders as if freshly pushed.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/time.h"
#include "sim/event.h"

namespace gimbal::sim {

class EventQueue;

// A claim on one pending event. Copyable; all copies refer to the same
// event, and each operation validates against the event's generation, so a
// stale handle (event already fired, cancelled or rescheduled elsewhere)
// is inert. Default-constructed handles are inert. A handle must not
// outlive its queue.
class TimerHandle {
 public:
  TimerHandle() = default;

  // True while the event is still pending.
  inline bool active() const;
  // Cancels the pending event; returns true if this call cancelled it
  // (false if it already fired, was cancelled, or the handle is inert).
  inline bool Cancel();
  // Moves the pending event to absolute time `when`, reusing its callback
  // and node; the event re-enters the ordering as if freshly pushed (new
  // seq). This handle tracks the moved event. Returns false (and does
  // nothing) if the event is no longer pending.
  inline bool Reschedule(Tick when);

 private:
  friend class EventQueue;
  TimerHandle(EventQueue* queue, uint32_t node, uint32_t gen)
      : queue_(queue), node_(node), gen_(gen) {}

  EventQueue* queue_ = nullptr;
  uint32_t node_ = 0;
  uint32_t gen_ = 0;
};

class EventQueue {
 public:
  enum class Impl { kTimingWheel, kReferenceHeap };

  explicit EventQueue(Impl impl = Impl::kTimingWheel) : impl_(impl) {}

  TimerHandle Push(Tick when, EventFn fn) {
    const uint32_t node = AllocNode(when, std::move(fn));
    const Entry e{when, pool_[node].seq, node, pool_[node].gen};
    if (impl_ == Impl::kReferenceHeap) {
      HeapPush(heap_, e);
    } else {
      InsertEntry(e);
    }
    ++live_;
    return TimerHandle(this, node, pool_[node].gen);
  }

  bool empty() const { return live_ == 0; }
  size_t size() const { return live_; }

  // Earliest live event's time. Requires !empty().
  Tick next_time() {
    const Entry* top = PeekLive();
    assert(top != nullptr);
    return top->when;
  }

  // Removes and returns the earliest live event's callback; sets *when.
  EventFn Pop(Tick* when) {
    const Entry* top = PeekLive();
    assert(top != nullptr);
    const Entry e = *top;
    DropTop();
    *when = e.when;
    Node& n = pool_[e.node];
    EventFn fn = std::move(n.fn);
    FreeNode(e.node);
    --live_;
    if (impl_ == Impl::kTimingWheel && e.when > cursor_) cursor_ = e.when;
    return fn;
  }

  // Empties the queue and resets all ordering state — including the
  // insertion sequence, so a cleared queue behaves exactly like a freshly
  // constructed one (Testbed reuse must not leak seq across runs). The
  // node slab is retained but every generation is bumped, so handles taken
  // before the Clear stay inert rather than aliasing recycled nodes.
  void Clear() {
    heap_.clear();
    overflow_.clear();
    current_.clear();
    for (auto& level : levels_) {
      for (auto& slot : level) slot.clear();
    }
    occupancy_.fill({});
    used_slots_.fill(0);
    free_head_ = kNone;
    for (uint32_t i = 0; i < pool_.size(); ++i) {
      Node& n = pool_[i];
      if (n.fn) n.fn.Reset();
      ++n.gen;
      n.next_free = free_head_;
      free_head_ = i;
    }
    live_ = 0;
    tombstones_ = 0;
    next_seq_ = 0;
    cursor_ = 0;
  }

  Impl impl() const { return impl_; }
  uint64_t next_seq() const { return next_seq_; }
  // Tombstone entries currently parked in the queue (cancelled or
  // rescheduled-away events whose 24-byte entries have not surfaced yet).
  size_t tombstones() const { return tombstones_; }

 private:
  friend class TimerHandle;

  // --- Storage -------------------------------------------------------------

  static constexpr uint32_t kNone = UINT32_MAX;

  struct Node {
    Tick when = 0;
    uint64_t seq = 0;
    uint32_t gen = 0;
    uint32_t next_free = kNone;
    EventFn fn;
  };

  struct Entry {
    Tick when;
    uint64_t seq;
    uint32_t node;
    uint32_t gen;
  };

  // Max-heap comparator inverted: "a fires later than b".
  static bool Later(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  uint32_t AllocNode(Tick when, EventFn fn) {
    uint32_t id;
    if (free_head_ != kNone) {
      id = free_head_;
      free_head_ = pool_[id].next_free;
    } else {
      id = static_cast<uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    Node& n = pool_[id];
    n.when = when;
    n.seq = next_seq_++;
    n.fn = std::move(fn);
    n.next_free = kNone;
    return id;
  }

  void FreeNode(uint32_t id) {
    Node& n = pool_[id];
    if (n.fn) n.fn.Reset();
    ++n.gen;  // all outstanding entries/handles for this node go stale
    n.next_free = free_head_;
    free_head_ = id;
  }

  bool Stale(const Entry& e) const { return pool_[e.node].gen != e.gen; }

  // --- TimerHandle backend -------------------------------------------------

  // Generation match alone decides liveness: FreeNode, Clear and
  // Reschedule all bump the node's generation, so a matching handle can
  // only refer to a still-pending event (which may carry a null callback —
  // Push(when, nullptr) is a legal "pure timer").
  bool NodeActive(uint32_t node, uint32_t gen) const {
    return node < pool_.size() && pool_[node].gen == gen;
  }

  bool CancelNode(uint32_t node, uint32_t gen) {
    if (!NodeActive(node, gen)) return false;
    FreeNode(node);
    --live_;
    ++tombstones_;
    return true;
  }

  // Returns the new generation, or 0 if the event was no longer pending.
  uint32_t RescheduleNode(uint32_t node, uint32_t gen, Tick when) {
    if (!NodeActive(node, gen)) return 0;
    Node& n = pool_[node];
    ++n.gen;  // strand the old entry as a tombstone
    ++tombstones_;
    n.when = when;
    n.seq = next_seq_++;
    const Entry e{when, n.seq, node, n.gen};
    if (impl_ == Impl::kReferenceHeap) {
      HeapPush(heap_, e);
    } else {
      InsertEntry(e);
    }
    return n.gen;
  }

  // --- Binary heaps (reference engine + wheel overflow/current) ------------

  static void HeapPush(std::vector<Entry>& heap, const Entry& e) {
    heap.push_back(e);
    std::push_heap(heap.begin(), heap.end(), Later);
  }

  static void HeapPop(std::vector<Entry>& heap) {
    std::pop_heap(heap.begin(), heap.end(), Later);
    heap.pop_back();
  }

  // Discards stale tombstones at the top of `heap`; returns its live top
  // or nullptr if it drained empty.
  const Entry* HeapLiveTop(std::vector<Entry>& heap) {
    while (!heap.empty()) {
      if (!Stale(heap.front())) return &heap.front();
      --tombstones_;
      HeapPop(heap);
    }
    return nullptr;
  }

  // --- Timing wheel --------------------------------------------------------

  // 256 slots per level, 2^10 ns (1.024 us) base granularity. Level k slot
  // spans 2^(10+8k) ns; level 3's window ends ~2^42 ns (~73 min) past the
  // cursor, beyond which events park in the overflow heap.
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr uint32_t kSlots = 1u << kSlotBits;
  static constexpr uint32_t kSlotMask = kSlots - 1;
  static constexpr int kGranularityBits = 10;
  static constexpr int Shift(int level) {
    return kGranularityBits + level * kSlotBits;
  }

  static uint64_t SlotOf(Tick when, int level) {
    return static_cast<uint64_t>(when) >> Shift(level);
  }

  void MarkOccupied(int level, uint32_t slot) {
    uint64_t& word = occupancy_[level][slot >> 6];
    const uint64_t bit = 1ull << (slot & 63);
    if ((word & bit) == 0) {
      word |= bit;
      ++used_slots_[level];
    }
  }
  void ClearOccupied(int level, uint32_t slot) {
    uint64_t& word = occupancy_[level][slot >> 6];
    const uint64_t bit = 1ull << (slot & 63);
    if ((word & bit) != 0) {
      word &= ~bit;
      --used_slots_[level];
    }
  }

  // Routes an entry into the current heap, a wheel slot, or overflow,
  // based on its distance from the cursor.
  void InsertEntry(const Entry& e) {
    assert(e.when >= 0);
    if (SlotOf(e.when, 0) <= SlotOf(cursor_, 0)) {
      HeapPush(current_, e);
      return;
    }
    for (int k = 0; k < kLevels; ++k) {
      if (SlotOf(e.when, k) - SlotOf(cursor_, k) < kSlots) {
        const uint32_t slot = static_cast<uint32_t>(SlotOf(e.when, k)) &
                              kSlotMask;
        levels_[k][slot].push_back(e);
        MarkOccupied(k, slot);
        return;
      }
    }
    HeapPush(overflow_, e);
  }

  // Moves overflow events that now fit the wheel's horizon into the wheel,
  // so the wheel scan alone determines the next event among them.
  void MigrateOverflow() {
    while (const Entry* top = HeapLiveTop(overflow_)) {
      if (SlotOf(top->when, kLevels - 1) - SlotOf(cursor_, kLevels - 1) >=
          kSlots) {
        return;  // still beyond the horizon
      }
      const Entry e = *top;
      HeapPop(overflow_);
      InsertEntry(e);
    }
  }

  static constexpr uint64_t kNoSlot = UINT64_MAX;
  static constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

  // Finds the next occupied slot at `level` at or after the cursor's slot,
  // within the level's one-lap window. The cursor's own slot is included:
  // a cascade can advance the cursor into a slot that was strictly ahead
  // when its entries were filed, and skipping it would strand them.
  // Returns the absolute slot number, or kNoSlot if the window is empty.
  uint64_t NextOccupied(int level) const {
    const uint64_t cur = SlotOf(cursor_, level);
    const uint32_t s = static_cast<uint32_t>(cur) & kSlotMask;
    const auto& bm = occupancy_[level];
    constexpr uint32_t kWords = kSlots / 64;
    uint32_t w = s >> 6;
    // First probe: the cursor's word with bits below the cursor masked off;
    // then the remaining words in circular order; finally the cursor's word
    // again for the bits that wrapped (offsets near the top of the lap).
    uint64_t word = bm[w] & (~0ull << (s & 63));
    for (uint32_t i = 0; i <= kWords; ++i) {
      if (word) {
        const uint32_t slot =
            (w << 6) | static_cast<uint32_t>(__builtin_ctzll(word));
        return cur + ((slot - s) & kSlotMask);
      }
      w = (w + 1) & (kWords - 1);
      word = bm[w];
      if (i == kWords - 1) word &= ~(~0ull << (s & 63));  // wrapped partial
    }
    return kNoSlot;
  }

  // Advances the cursor through occupied wheel slots in order of their
  // start time until the current heap provably holds the earliest wheel
  // events, cascading higher-level slots down as it goes. A higher-level
  // slot can start *earlier* than the nearest occupied level-0 slot (its
  // entries were beyond the level-0 window when filed and the cursor has
  // advanced since), so each step picks the earliest-starting occupied
  // slot across all levels — on equal start times the highest level, so
  // outer shells cascade inward before anything at that time is surfaced.
  void AdvanceWheel() {
    while (true) {
      int best_k = -1;
      uint64_t best_j = 0;
      Tick best_start = 0;
      // Runner-up start time among the non-chosen levels' first slots;
      // used to skip the rescan after a plain level-0 drain (below).
      Tick second_start = kTickMax;
      for (int k = 0; k < kLevels; ++k) {
        if (used_slots_[k] == 0) continue;
        const uint64_t j = NextOccupied(k);
        if (j == kNoSlot) continue;
        const Tick start = static_cast<Tick>(j << Shift(k));
        if (best_k < 0) {
          best_k = k;
          best_j = j;
          best_start = start;
        } else if (start <= best_start) {
          second_start = std::min(second_start, best_start);
          best_k = k;
          best_j = j;
          best_start = start;
        } else {
          second_start = std::min(second_start, start);
        }
      }
      if (best_k < 0) return;  // wheel exhausted
      // Done once the current heap is populated and the earliest-starting
      // occupied slot begins after the cursor's level-0 slot ends — then
      // nothing in the wheel can precede the current heap's top.
      if (!current_.empty()) {
        const Tick slot_end =
            static_cast<Tick>(((SlotOf(cursor_, 0) + 1) << Shift(0)) - 1);
        if (best_start > slot_end) return;
      }
      const uint32_t slot = static_cast<uint32_t>(best_j) & kSlotMask;
      ClearOccupied(best_k, slot);
      if (best_start > cursor_) cursor_ = best_start;
      // Drain the bucket in place and clear() it afterwards so the slot
      // keeps its buffer — slots recycle, and a swap-with-temporary here
      // would pay a heap allocation per slot lap. Safe to insert while
      // iterating: a level-k slot spans exactly 256 level-(k-1) slots, so
      // every cascading entry re-routes to a lower level or the current
      // heap, never back into this bucket.
      std::vector<Entry>& bucket = levels_[best_k][slot];
      const size_t count = bucket.size();
      for (size_t i = 0; i < count; ++i) {
        // The Stale() check random-indexes the node slab; the bucket scan
        // is sequential, so fetch a few nodes ahead to hide that latency.
        if (i + 8 < count) __builtin_prefetch(&pool_[bucket[i + 8].node]);
        const Entry& e = bucket[i];
        if (Stale(e)) {
          --tombstones_;
          continue;
        }
        if (best_k == 0) {
          // Drain into the current heap (heapified once below).
          current_.push_back(e);
        } else {
          // Cascade: re-route; entries land in levels < best_k or the
          // current heap relative to the (possibly advanced) cursor.
          InsertEntry(e);
        }
      }
      if (best_k == 0) std::make_heap(current_.begin(), current_.end(), Later);
      bucket.clear();
      // Fast exit after a level-0 drain: it added no wheel occupancy, the
      // cursor now sits in the drained slot, and every remaining level-0
      // slot starts after it — so only the other levels' first slots
      // (second_start, unchanged since the scan) could still precede the
      // current heap's top. If none does, skip the rescan.
      if (best_k == 0 && !current_.empty()) {
        const Tick slot_end =
            static_cast<Tick>(((SlotOf(cursor_, 0) + 1) << Shift(0)) - 1);
        if (second_start > slot_end) return;
      }
    }
  }

  // Returns the earliest live entry across the active engine's structures
  // (discarding surfaced tombstones), or nullptr when no live event
  // exists. The returned pointer is the engine's current top: DropTop()
  // removes exactly that entry.
  const Entry* PeekLive() {
    if (impl_ == Impl::kReferenceHeap) {
      top_in_overflow_ = false;
      return HeapLiveTop(heap_);
    }
    MigrateOverflow();
    const Entry* cur = HeapLiveTop(current_);
    if (cur == nullptr) {
      AdvanceWheel();
      MigrateOverflow();
      cur = HeapLiveTop(current_);
    }
    const Entry* over = HeapLiveTop(overflow_);
    if (cur == nullptr) {
      top_in_overflow_ = over != nullptr;
      return over;
    }
    if (over != nullptr && Later(*cur, *over)) {
      top_in_overflow_ = true;
      return over;
    }
    top_in_overflow_ = false;
    return cur;
  }

  // Removes the entry PeekLive() just returned.
  void DropTop() {
    if (impl_ == Impl::kReferenceHeap) {
      HeapPop(heap_);
    } else if (top_in_overflow_) {
      HeapPop(overflow_);
    } else {
      HeapPop(current_);
    }
  }

  Impl impl_;

  // Shared node slab: callbacks live here and never move once placed;
  // queue structures shuffle 24-byte entries only.
  std::vector<Node> pool_;
  uint32_t free_head_ = kNone;
  size_t live_ = 0;
  size_t tombstones_ = 0;
  uint64_t next_seq_ = 0;

  // kReferenceHeap engine.
  std::vector<Entry> heap_;

  // kTimingWheel engine. cursor_ is the time of the latest pop (or slot
  // advance); every live event at or before the cursor's level-0 slot is
  // in current_.
  Tick cursor_ = 0;
  std::vector<Entry> current_;
  std::array<std::array<std::vector<Entry>, kSlots>, kLevels> levels_;
  std::array<std::array<uint64_t, kSlots / 64>, kLevels> occupancy_{};
  // Occupied-slot count per level, so the slot scan skips empty levels —
  // in a typical testbed only levels 0-1 ever hold events.
  std::array<uint16_t, kLevels> used_slots_{};
  std::vector<Entry> overflow_;
  bool top_in_overflow_ = false;
};

inline bool TimerHandle::active() const {
  return queue_ != nullptr && queue_->NodeActive(node_, gen_);
}

inline bool TimerHandle::Cancel() {
  return queue_ != nullptr && queue_->CancelNode(node_, gen_);
}

inline bool TimerHandle::Reschedule(Tick when) {
  if (queue_ == nullptr) return false;
  const uint32_t gen = queue_->RescheduleNode(node_, gen_, when);
  if (gen == 0) return false;
  gen_ = gen;
  return true;
}

}  // namespace gimbal::sim
