// Conservative-lookahead parallel scheduler over per-shard simulators.
//
// A sharded testbed partitions the event space structurally: shard 0 owns
// the client domain (initiators, workers, KV layer, crash timers) and each
// further shard owns one target core together with every SSD pipeline
// mapped onto it (GimbalSwitch/DRR/token bucket, device model, per-core
// FifoResource). Within a shard, events execute exactly as on the serial
// engine — same EventQueue, same (when, seq) ordering contract.
//
// Shards only interact through the fabric: an initiator-to-target
// submission or a target-to-client completion always crosses the modeled
// network and therefore arrives at least NetworkConfig::base_latency after
// it was sent. That minimum is the engine's *lookahead* W, and it makes a
// conservative PDES protocol safe (docs/SIMULATOR.md):
//
//   epoch k:  T = earliest pending event across all shards
//             E = T + W            (exclusive epoch end)
//             every shard runs its events in [T, E) independently
//             barrier: cross-shard sends buffered during the epoch are
//             folded into the shared link in one canonical order and
//             injected into their destination shards; they all deliver at
//             >= send_time + W >= E, so no shard ever receives an event in
//             its past.
//
// Determinism: the schedule inside a shard never depends on other shards
// within an epoch, and the barrier replays buffered sends in a canonical
// (send_time, source shard, issue order) order — so the full event trace
// is bit-identical for any worker-thread count, including 1. The thread
// count only chooses how many shards execute concurrently per epoch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace gimbal::sim {

class ShardedEngine : public Simulator::Engine {
 public:
  struct Config {
    int threads = 1;  // worker pool size (clamped to [1, num_shards])
    Tick lookahead = 0;  // min cross-shard latency; must be > 0
    EventQueue::Impl impl = EventQueue::Impl::kTimingWheel;
  };

  ShardedEngine(int num_shards, const Config& config);
  ~ShardedEngine() override;

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  Simulator& shard(int i) { return *shards_[i]; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int threads() const { return threads_; }

  // Runs on the control thread at every epoch barrier (all shards
  // quiescent) and once more when the engine goes idle. The testbed hooks
  // the network's cross-shard replay and the trace merge here.
  void set_barrier_fn(std::function<void()> fn) { barrier_fn_ = std::move(fn); }

  // Simulator::Engine: shard 0 delegates its Run()/RunUntil() here, so
  // `testbed.sim().RunUntil(t)` drives the whole sharded testbed.
  void EngineRunUntil(Tick deadline) override;
  void EngineRunToIdle() override;

  // Epoch barriers executed so far (tests / bench reporting).
  uint64_t epochs() const { return epochs_; }

  // Shard context of the currently-executing event, or -1 / nullptr when
  // no shard event is running (control thread between epochs, or a plain
  // unsharded simulator). Thread-local.
  static int CurrentShard();
  static Simulator* CurrentSim();

 private:
  static constexpr Tick kNone = -1;

  Tick NextEventTime() const;   // earliest pending event, or kNone
  void RunEpoch(Tick epoch_last);  // all shards advance to epoch_last
  void Barrier();
  void WorkerMain();
  void RunClaimedShards();      // claim loop shared by workers and control

  std::vector<std::unique_ptr<Simulator>> shards_;
  Tick lookahead_;
  int threads_;
  std::function<void()> barrier_fn_;
  uint64_t epochs_ = 0;

  // Two-phase epoch barrier. The control thread prepares `active_` /
  // `epoch_last_` / `next_claim_` while every worker is parked spinning on
  // `epoch_seq_` (guaranteed because it waited for `finished_` to reach
  // the worker count last epoch), publishes the epoch with a release
  // increment of `epoch_seq_`, joins the claim loop itself, and then waits
  // for all workers to post `finished_`. Workers spin hot briefly, then
  // yield, then sleep, so an idle engine costs ~nothing between runs.
  std::vector<int> active_;  // shard indices with events in this epoch
  Tick epoch_last_ = 0;      // inclusive end of the current epoch
  std::atomic<uint64_t> epoch_seq_{0};
  std::atomic<uint64_t> next_claim_{0};
  std::atomic<int> finished_{0};
  std::atomic<bool> quit_{false};
  std::vector<std::thread> workers_;
};

}  // namespace gimbal::sim
